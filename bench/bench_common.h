#ifndef LTE_BENCH_BENCH_COMMON_H_
#define LTE_BENCH_BENCH_COMMON_H_

// Shared configuration for the paper-reproduction benchmark binaries.
//
// Every binary prints the same rows/series the paper's table or figure
// reports. By default the workload is scaled down (smaller datasets, fewer
// meta-tasks, fewer test UIRs) so the whole suite finishes in minutes on a
// laptop; setting LTE_BENCH_FULL=1 in the environment switches to
// paper-scale parameters. The *shape* of the results (who wins, by roughly
// what factor, where crossovers fall) is preserved at either scale; see
// EXPERIMENTS.md for paper-vs-measured numbers.

#include <cstdlib>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/subspace.h"
#include "data/synthetic.h"
#include "eval/experiment.h"

namespace lte::bench {

inline bool FullScale() {
  const char* env = std::getenv("LTE_BENCH_FULL");
  return env != nullptr && std::string(env) == "1";
}

/// LTE_BENCH_SMOKE=1 shrinks the workload further than the default
/// scaled-down mode and lets binaries skip their slowest sections. CI runs
/// the benches this way on every push — as an end-to-end crash/regression
/// check, not as a measurement.
inline bool SmokeMode() {
  const char* env = std::getenv("LTE_BENCH_SMOKE");
  return env != nullptr && std::string(env) == "1";
}

/// Where to write machine-readable results (empty = don't). CI sets
/// LTE_BENCH_JSON and uploads the file as a workflow artifact so multi-core
/// numbers are recorded per run.
inline std::string JsonOutputPath() {
  const char* env = std::getenv("LTE_BENCH_JSON");
  return env != nullptr ? std::string(env) : std::string();
}

struct Scale {
  int64_t sdss_rows;
  int64_t car_rows;
  int64_t num_meta_tasks;
  int64_t eval_rows;
  int64_t pool_rows;
  /// Test UIRs averaged per configuration point.
  int64_t uirs_per_config;
  int64_t k_u;
  int64_t k_q;
  int64_t embedding;
  int64_t epochs;
  std::vector<int64_t> budgets;
};

inline Scale GetScale() {
  if (FullScale()) {
    // Paper Section VIII-A parameters.
    return Scale{100000, 50000, 15000, 5000, 2000, 20,
                 100,    200,   100,   4,    {30, 45, 60, 75, 90, 105}};
  }
  return Scale{12000, 8000, 150, 800, 500, 3,
               50,    60,   24,  20,  {15, 30, 45}};
}

/// The SDSS subspace decomposition used throughout: 4 fixed 2-D subspaces
/// over the 8 photometric attributes.
inline std::vector<data::Subspace> SdssSubspaces() {
  return {data::Subspace{{0, 1}}, data::Subspace{{2, 3}},
          data::Subspace{{4, 5}}, data::Subspace{{6, 7}}};
}

/// CAR: 5 attributes -> two 2-D subspaces and one 1-D subspace (exercising
/// the interval-geometry path).
inline std::vector<data::Subspace> CarSubspaces() {
  return {data::Subspace{{0, 1}}, data::Subspace{{2, 3}},
          data::Subspace{{4}}};
}

/// Runner options shared by the benchmarks. `alpha`/`psi` configure
/// meta-task generation: the paper uses (1, 50) for the convex-UIR
/// comparisons of Section VIII-B and (4, 20) for the generalized-UIR
/// studies of Section VIII-C (scaled to k_u here).
inline eval::RunnerOptions BaseRunnerOptions(int64_t alpha, int64_t psi,
                                             uint64_t seed = 42) {
  const Scale s = GetScale();
  eval::RunnerOptions opt;
  opt.explorer.task_gen.k_u = s.k_u;
  opt.explorer.task_gen.k_q = s.k_q;
  opt.explorer.task_gen.delta = 5;
  opt.explorer.task_gen.alpha = alpha;
  opt.explorer.task_gen.psi = psi;
  opt.explorer.learner.embedding_size = s.embedding;
  opt.explorer.learner.clf_hidden = {s.embedding};
  opt.explorer.learner.num_memory_modes = 6;
  opt.explorer.num_meta_tasks = s.num_meta_tasks;
  opt.explorer.trainer.epochs = s.epochs;
  opt.explorer.trainer.task_batch_size = 15;
  opt.explorer.trainer.local_steps = FullScale() ? 30 : 5;
  opt.explorer.trainer.local_batch_size = 10;
  opt.explorer.trainer.local_lr = 0.2;
  opt.explorer.trainer.global_lr = 0.3;
  opt.explorer.trainer.num_threads = 0;  // Auto: one lane per hardware thread.
  opt.explorer.num_threads = 0;          // Subspaces fan out the same way.
  opt.explorer.online_steps = 40;
  opt.explorer.online_batch_size = 10;
  opt.explorer.online_lr = 0.2;
  opt.eval_sample_rows = s.eval_rows;
  opt.pool_rows = s.pool_rows;
  opt.seed = seed;
  return opt;
}

/// Convex-mode ψ for comparisons with the convexity-assuming baselines
/// (paper VIII-B uses ψ=50 at k_u=100; scaled proportionally).
inline int64_t ConvexPsi() { return GetScale().k_u / 2; }

/// Generalized-mode (α=4, ψ=20 at k_u=100; scaled proportionally).
inline int64_t GeneralPsi() { return std::max<int64_t>(5, GetScale().k_u / 5); }

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("scale: %s (LTE_BENCH_FULL=%d)\n",
              FullScale() ? "paper-scale" : "scaled-down", FullScale() ? 1 : 0);
  std::printf("================================================================\n");
}

}  // namespace lte::bench

#endif  // LTE_BENCH_BENCH_COMMON_H_
