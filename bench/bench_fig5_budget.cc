// Reproduces paper Figure 5: F1-score w.r.t. the labelling budget B at 2, 4,
// 6, and 8 dimensions (SDSS, convex conjunctive UIRs).
//
// Expected shape (paper): accuracy rises with budget for every method; DSM
// is competitive at 2D (its convexity assumption fits) but degrades rapidly
// with dimension, while Meta/Meta* dominate at 4-8D across all budgets.
//
// Extension (DESIGN.md §2f): a per-policy label-efficiency sweep — starting
// from the smallest budget, the iterative protocol keeps acquiring labels
// through each SuggestPolicy, tracing F1-vs-labels curves into the JSON
// artifact. On the noise-free convex workload pure uncertainty sampling is
// the one to beat; the sweep records how much exploration each alternative
// pays for its robustness.

#include "bench_common.h"
#include "eval/report.h"

namespace lte::bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  PrintHeader("Figure 5: F1-score w.r.t. budget B at 2/4/6/8D (SDSS)");

  Rng rng(2);
  eval::RunnerOptions opt = BaseRunnerOptions(1, ConvexPsi());
  if (SmokeMode()) {
    opt.explorer.num_meta_tasks = 40;
    opt.explorer.trainer.epochs = 1;
    opt.eval_sample_rows = 400;
  }
  data::Table sdss =
      data::MakeSdssLike(SmokeMode() ? 6000 : scale.sdss_rows, &rng);
  eval::ExperimentRunner runner(std::move(sdss), SdssSubspaces(), opt);
  if (!runner.Init().ok()) {
    std::printf("runner init failed\n");
    return;
  }

  const std::vector<eval::Method> methods =
      SmokeMode() ? std::vector<eval::Method>{eval::Method::kDsm,
                                              eval::Method::kMeta}
                  : std::vector<eval::Method>{
                        eval::Method::kDsm, eval::Method::kBasic,
                        eval::Method::kMeta, eval::Method::kMetaStar};
  const std::vector<int64_t> budgets =
      SmokeMode() ? std::vector<int64_t>(scale.budgets.begin(),
                                         scale.budgets.begin() + 2)
                  : scale.budgets;
  const std::vector<int64_t> subspace_counts =
      SmokeMode() ? std::vector<int64_t>{1, 2}
                  : std::vector<int64_t>{1, 2, 3, 4};
  const int64_t num_uirs = SmokeMode() ? 1 : scale.uirs_per_config;

  for (int64_t num_subspaces : subspace_counts) {
    std::vector<eval::GroundTruthUir> uirs;
    for (int64_t i = 0; i < num_uirs; ++i) {
      uirs.push_back(
          runner.GenerateUir({"convex", 1, ConvexPsi()}, num_subspaces));
    }
    std::vector<std::string> header = {"method"};
    for (int64_t b : budgets) header.push_back("B=" + std::to_string(b));
    eval::TextTable table(header);
    for (eval::Method m : methods) {
      std::vector<double> row;
      for (int64_t b : budgets) {
        double f1 = 0.0;
        if (!runner.MeanF1(m, uirs, b, &f1).ok()) f1 = -1.0;
        row.push_back(f1);
      }
      table.AddRow(eval::MethodName(m), row);
    }
    std::printf("\nFigure 5: %lldD user interest space\n",
                static_cast<long long>(2 * num_subspaces));
    table.Print();
  }

  // Policy label-efficiency sweep: iterative acquisition from the smallest
  // budget on the 2-subspace convex task (noise-free oracle).
  const int64_t start_budget = budgets.front();
  std::vector<eval::GroundTruthUir> sweep_uirs;
  for (int64_t i = 0; i < num_uirs; ++i) {
    sweep_uirs.push_back(runner.GenerateUir({"convex", 1, ConvexPsi()}, 2));
  }
  eval::PolicySweepOptions sweep;
  sweep.variant = core::Variant::kMeta;
  sweep.rounds = SmokeMode() ? 3 : 6;
  sweep.batch = 5;
  sweep.candidate_pool = SmokeMode() ? 120 : 200;

  struct PolicyCurve {
    std::string policy;
    double final_f1 = 0.0;
    std::vector<int64_t> labels;
    std::vector<double> f1;
  };
  std::vector<policy::PolicyOptions> menu(5);
  menu[0].kind = policy::PolicyKind::kUncertainty;
  menu[1].kind = policy::PolicyKind::kEpsilonGreedy;
  menu[1].epsilon = 0.2;
  menu[2].kind = policy::PolicyKind::kTauFirst;
  menu[2].tau = 10;
  menu[3].kind = policy::PolicyKind::kSoftmax;
  menu[4].kind = policy::PolicyKind::kBootstrap;

  std::vector<PolicyCurve> curves;
  for (size_t pi = 0; pi < menu.size(); ++pi) {
    PolicyCurve curve;
    curve.policy = policy::PolicyKindName(menu[pi].kind);
    double sum_final = 0.0;
    int64_t runs = 0;
    for (size_t ui = 0; ui < sweep_uirs.size(); ++ui) {
      sweep.policy = menu[pi];
      sweep.session_seed = 0xF165u + 131 * ui + pi;
      eval::PolicyTrajectory traj;
      if (!runner.RunLteIterative(sweep, sweep_uirs[ui], start_budget, &traj)
               .ok()) {
        continue;
      }
      if (curve.labels.empty()) {
        curve.labels = traj.labels;
        curve.f1.assign(traj.f1.size(), 0.0);
      }
      for (size_t r = 0; r < traj.f1.size() && r < curve.f1.size(); ++r) {
        curve.f1[r] += traj.f1[r];
      }
      sum_final += traj.final_f1;
      ++runs;
    }
    if (runs > 0) {
      for (double& v : curve.f1) v /= static_cast<double>(runs);
      curve.final_f1 = sum_final / static_cast<double>(runs);
    }
    curves.push_back(std::move(curve));
  }

  eval::TextTable ptable({"policy", "start F1", "final F1", "labels"});
  for (const PolicyCurve& c : curves) {
    ptable.AddRow(c.policy,
                  {c.f1.empty() ? 0.0 : c.f1.front(), c.final_f1,
                   c.labels.empty() ? 0.0
                                    : static_cast<double>(c.labels.back())});
  }
  std::printf("\nPolicy label-efficiency sweep (convex 4D, start B=%lld)\n",
              static_cast<long long>(start_budget));
  ptable.Print();

  const std::string json_path = JsonOutputPath();
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("could not open %s for writing\n", json_path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"fig5_budget\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n",
                 SmokeMode() ? "smoke" : (FullScale() ? "full" : "scaled"));
    std::fprintf(f, "  \"start_budget\": %lld,\n",
                 static_cast<long long>(start_budget));
    std::fprintf(f, "  \"policy_sweep\": [\n");
    for (size_t i = 0; i < curves.size(); ++i) {
      const PolicyCurve& c = curves[i];
      std::fprintf(f,
                   "    {\"policy\": \"%s\", \"final_f1\": %.6f, "
                   "\"curve\": [",
                   c.policy.c_str(), c.final_f1);
      for (size_t r = 0; r < c.labels.size(); ++r) {
        std::fprintf(f, "{\"labels\": %lld, \"f1\": %.6f}%s",
                     static_cast<long long>(c.labels[r]), c.f1[r],
                     r + 1 < c.labels.size() ? ", " : "");
      }
      std::fprintf(f, "]}%s\n", i + 1 < curves.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote JSON results to %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace lte::bench

int main() {
  lte::bench::Run();
  return 0;
}
