// Reproduces paper Figure 5: F1-score w.r.t. the labelling budget B at 2, 4,
// 6, and 8 dimensions (SDSS, convex conjunctive UIRs).
//
// Expected shape (paper): accuracy rises with budget for every method; DSM
// is competitive at 2D (its convexity assumption fits) but degrades rapidly
// with dimension, while Meta/Meta* dominate at 4-8D across all budgets.

#include "bench_common.h"
#include "eval/report.h"

namespace lte::bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  PrintHeader("Figure 5: F1-score w.r.t. budget B at 2/4/6/8D (SDSS)");

  Rng rng(2);
  data::Table sdss = data::MakeSdssLike(scale.sdss_rows, &rng);
  eval::ExperimentRunner runner(std::move(sdss), SdssSubspaces(),
                                BaseRunnerOptions(1, ConvexPsi()));
  if (!runner.Init().ok()) {
    std::printf("runner init failed\n");
    return;
  }

  const std::vector<eval::Method> methods = {
      eval::Method::kDsm, eval::Method::kBasic, eval::Method::kMeta,
      eval::Method::kMetaStar};

  for (int64_t num_subspaces : {1, 2, 3, 4}) {
    std::vector<eval::GroundTruthUir> uirs;
    for (int64_t i = 0; i < scale.uirs_per_config; ++i) {
      uirs.push_back(
          runner.GenerateUir({"convex", 1, ConvexPsi()}, num_subspaces));
    }
    std::vector<std::string> header = {"method"};
    for (int64_t b : scale.budgets) header.push_back("B=" + std::to_string(b));
    eval::TextTable table(header);
    for (eval::Method m : methods) {
      std::vector<double> row;
      for (int64_t b : scale.budgets) {
        double f1 = 0.0;
        if (!runner.MeanF1(m, uirs, b, &f1).ok()) f1 = -1.0;
        row.push_back(f1);
      }
      table.AddRow(eval::MethodName(m), row);
    }
    std::printf("\nFigure 5: %lldD user interest space\n",
                static_cast<long long>(2 * num_subspaces));
    table.Print();
  }
}

}  // namespace
}  // namespace lte::bench

int main() {
  lte::bench::Run();
  return 0;
}
