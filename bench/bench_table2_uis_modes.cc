// Reproduces paper Table II (accuracy w.r.t. UIS modes, B=30) and prints
// Table III (the mode definitions) for both datasets.
//
// UIS modes M1-M7 generate ground-truth regions of increasing complexity
// (α = number of convex parts, ψ = part size); per the paper's statistics
// most generated UISs are concave and over half are disconnected. DSM
// degenerates to plain SVM on non-convex regions, so the paper's competitors
// here are SVM, SVM^r (SVM + tabular preprocessing), Basic, Meta, Meta*.
//
// Expected shape: Meta* > Meta > Basic > SVM^r > SVM on every mode and both
// datasets; the gap widens as the region gets harder (M4).

#include "bench_common.h"
#include "eval/report.h"

namespace lte::bench {
namespace {

// Scales a paper-mode ψ (defined against k_u=100) to the configured k_u.
int64_t ScaledPsi(int64_t paper_psi) {
  const Scale s = GetScale();
  return std::max<int64_t>(3, paper_psi * s.k_u / 100);
}

void RunDataset(const std::string& name, data::Table table,
                std::vector<data::Subspace> subspaces, uint64_t seed) {
  const Scale scale = GetScale();
  // Meta-learners for the generalized study are trained with alpha=4,
  // psi=20 (paper Section VIII-C), independent of the test mode.
  eval::ExperimentRunner runner(
      std::move(table), std::move(subspaces),
      BaseRunnerOptions(4, ScaledPsi(20), seed));
  if (!runner.Init().ok()) {
    std::printf("runner init failed for %s\n", name.c_str());
    return;
  }

  const std::vector<eval::UisMode> paper_modes = eval::BenchmarkModes();
  const int64_t b30 = scale.budgets.size() > 1 ? scale.budgets[1] : 30;

  std::vector<std::string> header = {"method"};
  for (const auto& m : paper_modes) header.push_back(m.name);
  eval::TextTable table2(header);

  // Shared test UIRs per mode. Table II measures UIS-level accuracy: each
  // test target is a single subspace's (possibly concave/disconnected)
  // region; the conjunctive multi-subspace study is Figure 7(c).
  std::vector<std::vector<eval::GroundTruthUir>> uirs_per_mode;
  for (const eval::UisMode& mode : paper_modes) {
    eval::UisMode scaled = mode;
    scaled.psi = ScaledPsi(mode.psi);
    std::vector<eval::GroundTruthUir> uirs;
    for (int64_t i = 0; i < 2 * scale.uirs_per_config; ++i) {
      uirs.push_back(runner.GenerateUir(scaled, /*num_subspaces=*/1));
    }
    uirs_per_mode.push_back(std::move(uirs));
  }

  for (eval::Method m : {eval::Method::kMetaStar, eval::Method::kMeta,
                         eval::Method::kBasic, eval::Method::kSvmR,
                         eval::Method::kSvm}) {
    std::vector<double> row;
    for (const auto& uirs : uirs_per_mode) {
      double f1 = 0.0;
      if (!runner.MeanF1(m, uirs, b30, &f1).ok()) f1 = -1.0;
      row.push_back(f1);
    }
    table2.AddRow(eval::MethodName(m), row);
  }
  std::printf("\nTable II (%s): F1 w.r.t. UIS modes, B=%lld\n", name.c_str(),
              static_cast<long long>(b30));
  table2.Print();
}

void Run() {
  PrintHeader("Table II / Table III: accuracy w.r.t. UIS modes");

  // Table III: the mode definitions.
  eval::TextTable table3({"mode", "alpha", "psi (paper)", "psi (scaled)"});
  for (const eval::UisMode& m : eval::BenchmarkModes()) {
    table3.AddRow({m.name, std::to_string(m.alpha), std::to_string(m.psi),
                   std::to_string(ScaledPsi(m.psi))});
  }
  std::printf("\nTable III: modes of test benchmarks\n");
  table3.Print();

  const Scale scale = GetScale();
  Rng rng(4);
  RunDataset("CAR", data::MakeCarLike(scale.car_rows, &rng), CarSubspaces(),
             41);
  RunDataset("SDSS", data::MakeSdssLike(scale.sdss_rows, &rng),
             SdssSubspaces(), 42);
}

}  // namespace
}  // namespace lte::bench

int main() {
  lte::bench::Run();
  return 0;
}
