// Multi-session serving throughput: N concurrent users against one shared
// ExplorationModel.
//
// The serving architecture (DESIGN.md "Serving architecture") pre-trains one
// immutable ExplorationModel and gives every user a private
// ExplorationSession; all sessions fan their scans out on the one
// process-wide thread pool. This bench sweeps sessions S x per-session
// threads T, reports aggregate prediction throughput (rows/s), and verifies
// the determinism contract as it goes: every user's predictions under
// concurrency must be byte-identical to a standalone sequential run of the
// same user.
//
// Expected shape: aggregate throughput scales with S until the pool's
// hardware lanes saturate (sessions share the pool, they don't stack
// thread-for-thread), and per-session threads trade single-user latency
// against cross-user fairness without ever changing results.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <numeric>
#include <thread>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "bench_common.h"
#include "core/exploration_session.h"
#include "eval/report.h"
#include "serving/coalesced_scan_scheduler.h"

namespace lte::bench {
namespace {

/// One row of the sessions x threads sweep, kept for the JSON artifact.
struct SweepRow {
  int64_t sessions = 0;
  int64_t threads_per_session = 0;
  double wall_s = 0.0;
  double rows_per_s = 0.0;
  bool bit_identical = true;
};

/// One row of the coalesced-vs-independent sweep, kept for the JSON artifact.
struct CoalescedRow {
  int64_t sessions = 0;
  double independent_wall_s = 0.0;
  double coalesced_wall_s = 0.0;
  double speedup = 0.0;
  int64_t encode_passes = 0;
  int64_t encode_pass_bound = 0;
  bool encode_amortized = false;
  bool bit_identical = true;
};

/// Everything one simulated user produces, for exact comparison against the
/// sequential baseline.
struct UserOutcome {
  std::vector<double> predictions;
  std::vector<int64_t> matches;

  bool operator==(const UserOutcome& other) const {
    return predictions == other.predictions && matches == other.matches;
  }
};

/// Scripted per-user labels: user `u` likes a subspace point iff its first
/// coordinate falls below a per-user quantile of the initial tuples' first
/// coordinates. Distinct users get distinct thresholds (distinct adapted
/// regions), and every label set is guaranteed mixed.
std::vector<std::vector<double>> UserLabels(const core::ExplorationModel& model,
                                            int64_t u) {
  std::vector<std::vector<double>> labels(
      static_cast<size_t>(model.num_subspaces()));
  for (int64_t s = 0; s < model.num_subspaces(); ++s) {
    const auto& tuples = *model.InitialTuples(s);
    std::vector<double> firsts;
    firsts.reserve(tuples.size());
    for (const auto& t : tuples) firsts.push_back(t[0]);
    std::sort(firsts.begin(), firsts.end());
    const size_t q = (static_cast<size_t>(3 + (u % 5)) * firsts.size()) / 10;
    const double threshold = firsts[std::min(q, firsts.size() - 1)];
    for (const auto& t : tuples) {
      labels[static_cast<size_t>(s)].push_back(t[0] < threshold ? 1.0 : 0.0);
    }
  }
  return labels;
}

/// Runs user `u` end to end on a fresh session: fast-adapt, `reps` full-table
/// batch predictions, and one bounded retrieval. Returns false on any non-OK
/// status.
bool RunUser(const std::shared_ptr<const core::ExplorationModel>& model,
             const data::Table& table, const std::vector<int64_t>& all_rows,
             int64_t u, int64_t threads_per_session, int64_t reps,
             UserOutcome* out) {
  core::ExplorationSession session(model, threads_per_session);
  Rng rng(1000 + static_cast<uint64_t>(u));
  if (!session
           .StartExploration(UserLabels(*model, u), core::Variant::kBasic,
                             &rng)
           .ok()) {
    return false;
  }
  for (int64_t r = 0; r < reps; ++r) {
    if (!session.PredictRows(table, all_rows, &out->predictions).ok()) {
      return false;
    }
  }
  return session.RetrieveMatches(table, /*limit=*/200, &out->matches).ok();
}

void Run() {
  PrintHeader("Multi-session serving: sessions x threads throughput sweep");
  std::printf("hardware threads available: %lld\n",
              static_cast<long long>(DefaultThreadCount()));

  const int64_t rows = SmokeMode() ? 10000 : (FullScale() ? 100000 : 30000);
  const int64_t reps = SmokeMode() ? 2 : 5;
  Rng data_rng(11);
  const data::Table sdss = data::MakeSdssLike(rows, &data_rng);

  // One shared model: contexts + initial tuples only (Basic-variant serving,
  // as in bench_fig6_runtime) — the sweep measures the serving path, not
  // meta-training.
  core::ExplorerOptions opt = BaseRunnerOptions(1, ConvexPsi()).explorer;
  auto model = std::make_shared<core::ExplorationModel>(opt);
  Rng pretrain_rng(42);
  if (!model->Pretrain(sdss, SdssSubspaces(), /*train_meta=*/false,
                      &pretrain_rng)
           .ok()) {
    std::printf("pretrain failed\n");
    return;
  }

  std::vector<int64_t> all_rows(static_cast<size_t>(sdss.num_rows()));
  std::iota(all_rows.begin(), all_rows.end(), 0);

  const std::vector<int64_t> session_sweep =
      SmokeMode() ? std::vector<int64_t>{1, 4}
                  : std::vector<int64_t>{1, 2, 4, 8};
  const std::vector<int64_t> thread_sweep =
      SmokeMode() ? std::vector<int64_t>{1, 2}
                  : std::vector<int64_t>{1, 2, 4};
  const int64_t max_sessions =
      *std::max_element(session_sweep.begin(), session_sweep.end());

  // Sequential baselines, one per user: the ground truth every concurrent
  // run must reproduce byte-for-byte.
  std::vector<UserOutcome> baseline(static_cast<size_t>(max_sessions));
  for (int64_t u = 0; u < max_sessions; ++u) {
    if (!RunUser(model, sdss, all_rows, u, /*threads_per_session=*/1, reps,
                 &baseline[static_cast<size_t>(u)])) {
      std::printf("baseline run failed for user %lld\n",
                  static_cast<long long>(u));
      return;
    }
  }

  bool all_identical = true;
  std::vector<SweepRow> results;
  eval::TextTable table({"sessions x threads/sess", "wall (s)",
                         "rows/s (aggregate)", "identical"});
  for (int64_t threads_per_session : thread_sweep) {
    for (int64_t sessions : session_sweep) {
      std::vector<UserOutcome> outcomes(static_cast<size_t>(sessions));
      std::vector<char> ok(static_cast<size_t>(sessions), 1);
      Stopwatch sw;
      {
        std::vector<std::thread> users;
        users.reserve(static_cast<size_t>(sessions));
        for (int64_t u = 0; u < sessions; ++u) {
          users.emplace_back([&, u] {
            ok[static_cast<size_t>(u)] =
                RunUser(model, sdss, all_rows, u, threads_per_session, reps,
                        &outcomes[static_cast<size_t>(u)])
                    ? 1
                    : 0;
          });
        }
        for (std::thread& t : users) t.join();
      }

      SweepRow row;
      row.sessions = sessions;
      row.threads_per_session = threads_per_session;
      row.wall_s = sw.ElapsedSeconds();
      row.rows_per_s =
          row.wall_s > 0.0
              ? static_cast<double>(sessions * reps * rows) / row.wall_s
              : 0.0;
      for (int64_t u = 0; u < sessions; ++u) {
        if (ok[static_cast<size_t>(u)] == 0 ||
            !(outcomes[static_cast<size_t>(u)] ==
              baseline[static_cast<size_t>(u)])) {
          row.bit_identical = false;
          all_identical = false;
        }
      }
      table.AddRow(std::to_string(sessions) + " x " +
                       std::to_string(threads_per_session),
                   {row.wall_s, row.rows_per_s,
                    row.bit_identical ? 1.0 : 0.0},
                   2);
      results.push_back(row);
    }
  }
  table.Print();
  std::printf("all concurrent runs byte-identical to sequential: %s\n",
              all_identical ? "yes" : "NO — determinism contract violated");

  // ---------------------------------------------------------------------
  // Coalesced vs independent: S pre-adapted sessions scanning the full
  // table, either each on its own (S independent gather+encode passes per
  // block) or through one CoalescedScanScheduler (ONE shared pass per
  // block, DESIGN.md §2c). Adaptation happens outside the timed region —
  // this measures the steady-state serving scan only.
  PrintHeader("Coalesced scheduler vs independent sessions (full-table scan)");
  const std::vector<int64_t> coalesced_sweep =
      SmokeMode() ? std::vector<int64_t>{1, 4, 16}
                  : std::vector<int64_t>{1, 4, 16, 64};
  const int64_t max_coalesced =
      *std::max_element(coalesced_sweep.begin(), coalesced_sweep.end());

  std::vector<std::unique_ptr<core::ExplorationSession>> sessions;
  std::vector<std::vector<double>> expected(
      static_cast<size_t>(max_coalesced));
  bool setup_ok = true;
  for (int64_t u = 0; u < max_coalesced; ++u) {
    sessions.push_back(std::make_unique<core::ExplorationSession>(
        model, /*num_threads=*/1));
    Rng rng(1000 + static_cast<uint64_t>(u));
    if (!sessions.back()
             ->StartExploration(UserLabels(*model, u), core::Variant::kBasic,
                                &rng)
             .ok() ||
        !sessions.back()
             ->PredictRows(sdss, all_rows, &expected[static_cast<size_t>(u)])
             .ok()) {
      std::printf("coalesced sweep setup failed for user %lld\n",
                  static_cast<long long>(u));
      setup_ok = false;
      break;
    }
  }

  const int64_t num_blocks =
      (sdss.num_rows() + core::kServingBlockRows - 1) / core::kServingBlockRows;
  bool coalesced_identical = true;
  bool coalesced_amortized = true;
  std::vector<CoalescedRow> coalesced_results;
  if (setup_ok) {
    eval::TextTable ctable({"sessions", "indep (s)", "coalesced (s)",
                            "speedup", "encode passes", "bound", "identical"});
    for (const int64_t s_count : coalesced_sweep) {
      std::vector<std::vector<double>> indep_out(
          static_cast<size_t>(s_count));
      std::vector<std::vector<double>> coal_out(static_cast<size_t>(s_count));
      std::vector<char> ok(static_cast<size_t>(s_count), 1);

      Stopwatch indep_sw;
      {
        std::vector<std::thread> users;
        for (int64_t u = 0; u < s_count; ++u) {
          users.emplace_back([&, u] {
            for (int64_t r = 0; r < reps; ++r) {
              if (!sessions[static_cast<size_t>(u)]
                       ->PredictRows(sdss, all_rows,
                                     &indep_out[static_cast<size_t>(u)])
                       .ok()) {
                ok[static_cast<size_t>(u)] = 0;
              }
            }
          });
        }
        for (std::thread& t : users) t.join();
      }
      const double indep_wall = indep_sw.ElapsedSeconds();

      // Full-batch flush at S requests. Submitters stay in lockstep (each
      // blocks until its wave's shared pass completes), so the generous
      // deadline never actually expires — it just keeps a descheduled
      // straggler from splitting a wave into two passes.
      serving::CoalescedScanOptions copt;
      copt.max_batch_requests = s_count;
      copt.flush_deadline_micros = 1000000;
      serving::CoalescedScanScheduler scheduler(model, &sdss, copt);
      Stopwatch coal_sw;
      {
        std::vector<std::thread> users;
        for (int64_t u = 0; u < s_count; ++u) {
          users.emplace_back([&, u] {
            for (int64_t r = 0; r < reps; ++r) {
              if (!scheduler
                       .PredictRows(*sessions[static_cast<size_t>(u)],
                                    all_rows,
                                    &coal_out[static_cast<size_t>(u)])
                       .ok()) {
                ok[static_cast<size_t>(u)] = 0;
              }
            }
          });
        }
        for (std::thread& t : users) t.join();
      }
      const double coal_wall = coal_sw.ElapsedSeconds();
      const serving::CoalescedScanStats stats = scheduler.stats();

      CoalescedRow row;
      row.sessions = s_count;
      row.independent_wall_s = indep_wall;
      row.coalesced_wall_s = coal_wall;
      row.speedup = coal_wall > 0.0 ? indep_wall / coal_wall : 0.0;
      row.encode_passes = stats.encode_passes;
      // Perfect coalescing: every resubmission wave lands in one shared
      // pass, so at most reps passes per (block, subspace) — independent of
      // the session count. Independent sessions pay s_count times this.
      row.encode_pass_bound = reps * num_blocks * model->num_subspaces();
      row.encode_amortized = row.encode_passes <= row.encode_pass_bound;
      for (int64_t u = 0; u < s_count; ++u) {
        if (ok[static_cast<size_t>(u)] == 0 ||
            indep_out[static_cast<size_t>(u)] !=
                expected[static_cast<size_t>(u)] ||
            coal_out[static_cast<size_t>(u)] !=
                expected[static_cast<size_t>(u)]) {
          row.bit_identical = false;
        }
      }
      coalesced_identical &= row.bit_identical;
      coalesced_amortized &= row.encode_amortized;
      ctable.AddRow(std::to_string(s_count),
                    {row.independent_wall_s, row.coalesced_wall_s, row.speedup,
                     static_cast<double>(row.encode_passes),
                     static_cast<double>(row.encode_pass_bound),
                     row.bit_identical ? 1.0 : 0.0},
                    2);
      coalesced_results.push_back(row);
    }
    ctable.Print();
    std::printf("coalesced results byte-identical to standalone: %s\n",
                coalesced_identical ? "yes"
                                    : "NO — determinism contract violated");
    std::printf("encode cost amortized (one shared pass per wave): %s\n",
                coalesced_amortized ? "yes" : "NO — coalescing ineffective");
  }

  const std::string json_path = JsonOutputPath();
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("could not open %s for writing\n", json_path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"multi_session_serving\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n",
                 SmokeMode() ? "smoke" : (FullScale() ? "full" : "scaled"));
    std::fprintf(f, "  \"rows\": %lld,\n", static_cast<long long>(rows));
    std::fprintf(f, "  \"reps\": %lld,\n", static_cast<long long>(reps));
    std::fprintf(f, "  \"hardware_threads\": %lld,\n",
                 static_cast<long long>(DefaultThreadCount()));
    std::fprintf(f, "  \"bit_identical\": %s,\n",
                 all_identical ? "true" : "false");
    std::fprintf(f, "  \"coalesced_bit_identical\": %s,\n",
                 coalesced_identical ? "true" : "false");
    std::fprintf(f, "  \"coalesced_encode_amortized\": %s,\n",
                 coalesced_amortized ? "true" : "false");
    std::fprintf(f, "  \"coalesced\": [\n");
    for (size_t i = 0; i < coalesced_results.size(); ++i) {
      const CoalescedRow& r = coalesced_results[i];
      std::fprintf(
          f,
          "    {\"sessions\": %lld, \"independent_wall_s\": %.6f, "
          "\"coalesced_wall_s\": %.6f, \"speedup\": %.3f, "
          "\"encode_passes\": %lld, \"encode_pass_bound\": %lld, "
          "\"encode_amortized\": %s, \"bit_identical\": %s}%s\n",
          static_cast<long long>(r.sessions), r.independent_wall_s,
          r.coalesced_wall_s, r.speedup,
          static_cast<long long>(r.encode_passes),
          static_cast<long long>(r.encode_pass_bound),
          r.encode_amortized ? "true" : "false",
          r.bit_identical ? "true" : "false",
          i + 1 < coalesced_results.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"sweep\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const SweepRow& r = results[i];
      std::fprintf(f,
                   "    {\"sessions\": %lld, \"threads_per_session\": %lld, "
                   "\"wall_s\": %.6f, \"rows_per_s\": %.1f, "
                   "\"bit_identical\": %s}%s\n",
                   static_cast<long long>(r.sessions),
                   static_cast<long long>(r.threads_per_session), r.wall_s,
                   r.rows_per_s, r.bit_identical ? "true" : "false",
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote JSON results to %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace lte::bench

int main() {
  lte::bench::Run();
  return 0;
}
