// Ablation studies for the design choices DESIGN.md §5 calls out (these go
// beyond the paper's own analysis):
//
//   (1) Memory-augmented optimization on/off (M_R / M_vR / M_CP, paper
//       Section VI-B): Meta with memories vs. plain first-order MAML.
//   (2) UIS feature expansion degree l (paper Section VI-A; default
//       0.1 * k_u): sparser or denser v_R bits.
//   (3) FP/FN optimizer expansion extents N_sup / N_sub (paper Section
//       VII-B; defaults 30% / 10% of k_u).
//
// Expected shapes: memories help modestly and never hurt much; accuracy is
// concave in l (too sparse starves v_R, too dense blurs it); Meta* is
// robust over a range of N_sup/N_sub but degrades when the outer region is
// too tight (recall loss) or the inner region too aggressive (precision
// loss).

#include "bench_common.h"
#include "eval/report.h"

namespace lte::bench {
namespace {

int64_t ScaledPsi(int64_t paper_psi) {
  return std::max<int64_t>(3, paper_psi * GetScale().k_u / 100);
}

std::vector<eval::GroundTruthUir> TestUirs(eval::ExperimentRunner* runner,
                                           int64_t count) {
  std::vector<eval::GroundTruthUir> uirs;
  for (int64_t i = 0; i < count; ++i) {
    uirs.push_back(runner->GenerateUir(
        {"M1", 4, ScaledPsi(20)},
        std::min<int64_t>(2,
                          static_cast<int64_t>(runner->subspaces().size()))));
  }
  return uirs;
}

void MemoryAblation() {
  const Scale scale = GetScale();
  const int64_t b30 = scale.budgets.size() > 1 ? scale.budgets[1] : 30;
  eval::TextTable table({"variant", "Meta F1", "Meta* F1"});
  for (const bool memory : {true, false}) {
    Rng rng(21);
    eval::RunnerOptions opt = BaseRunnerOptions(4, ScaledPsi(20), 211);
    opt.explorer.learner.use_memory = memory;
    eval::ExperimentRunner runner(data::MakeSdssLike(scale.sdss_rows, &rng),
                                  SdssSubspaces(), opt);
    if (!runner.Init().ok()) continue;
    const auto uirs = TestUirs(&runner, 2 * scale.uirs_per_config);
    double meta = 0.0;
    double meta_star = 0.0;
    if (!runner.MeanF1(eval::Method::kMeta, uirs, b30, &meta).ok()) meta = -1;
    if (!runner.MeanF1(eval::Method::kMetaStar, uirs, b30, &meta_star).ok()) {
      meta_star = -1;
    }
    table.AddRow(memory ? "with memories (MAMO-style)" : "plain FOMAML",
                 {meta, meta_star});
  }
  std::printf("\nAblation 1: memory-augmented optimization (B=%lld)\n",
              static_cast<long long>(b30));
  table.Print();
}

void ExpansionAblation() {
  const Scale scale = GetScale();
  const int64_t b30 = scale.budgets.size() > 1 ? scale.budgets[1] : 30;
  // l as a fraction of k_u; the paper's default is 0.1.
  const std::vector<double> fractions = {0.02, 0.05, 0.1, 0.2, 0.4};
  std::vector<std::string> header = {"method"};
  for (double f : fractions) {
    header.push_back("l=" + eval::FormatDouble(f, 2) + "*k_u");
  }
  eval::TextTable table(header);
  std::vector<double> row;
  for (double f : fractions) {
    Rng rng(22);
    eval::RunnerOptions opt = BaseRunnerOptions(4, ScaledPsi(20), 221);
    opt.explorer.task_gen.expansion_l = std::max<int64_t>(
        1, static_cast<int64_t>(f * static_cast<double>(scale.k_u)));
    eval::ExperimentRunner runner(data::MakeSdssLike(scale.sdss_rows, &rng),
                                  SdssSubspaces(), opt);
    if (!runner.Init().ok()) {
      row.push_back(-1);
      continue;
    }
    const auto uirs = TestUirs(&runner, 2 * scale.uirs_per_config);
    double f1 = 0.0;
    if (!runner.MeanF1(eval::Method::kMeta, uirs, b30, &f1).ok()) f1 = -1;
    row.push_back(f1);
  }
  table.AddRow("Meta", row);
  std::printf("\nAblation 2: UIS feature expansion degree l (B=%lld)\n",
              static_cast<long long>(b30));
  table.Print();
}

void FpFnAblation() {
  const Scale scale = GetScale();
  const int64_t b30 = scale.budgets.size() > 1 ? scale.budgets[1] : 30;
  struct Setting {
    double outer;
    double inner;
  };
  const std::vector<Setting> settings = {
      {0.10, 0.05}, {0.20, 0.05}, {0.30, 0.10}, {0.40, 0.15}, {0.60, 0.30}};
  eval::TextTable table({"N_sup", "N_sub", "Meta* F1", "precision", "recall"});
  for (const Setting& s : settings) {
    Rng rng(23);
    eval::RunnerOptions opt = BaseRunnerOptions(4, ScaledPsi(20), 231);
    opt.explorer.fpfn.outer_fraction = s.outer;
    opt.explorer.fpfn.inner_fraction = s.inner;
    eval::ExperimentRunner runner(data::MakeSdssLike(scale.sdss_rows, &rng),
                                  SdssSubspaces(), opt);
    if (!runner.Init().ok()) continue;
    const auto uirs = TestUirs(&runner, scale.uirs_per_config);
    double f1 = 0.0;
    double precision = 0.0;
    double recall = 0.0;
    int64_t n = 0;
    for (const auto& uir : uirs) {
      eval::ExperimentResult res;
      if (!runner.Run(eval::Method::kMetaStar, uir, b30, &res).ok()) continue;
      f1 += res.f1;
      precision += res.precision;
      recall += res.recall;
      ++n;
    }
    if (n == 0) continue;
    table.AddRow(eval::FormatDouble(s.outer, 2) + "*k_u",
                 {s.inner, f1 / n, precision / n, recall / n});
  }
  std::printf("\nAblation 3: FP/FN optimizer expansions (B=%lld)\n",
              static_cast<long long>(b30));
  table.Print();
}

void AlgorithmAblation() {
  // The paper claims the framework is orthogonal to the MAML-family
  // algorithm (Section VI-B): FOMAML vs. Reptile under identical task
  // generation, classifier, and memories.
  const Scale scale = GetScale();
  const int64_t b30 = scale.budgets.size() > 1 ? scale.budgets[1] : 30;
  eval::TextTable table({"algorithm", "Meta F1", "Meta* F1"});
  for (const bool reptile : {false, true}) {
    Rng rng(24);
    eval::RunnerOptions opt = BaseRunnerOptions(4, ScaledPsi(20), 241);
    opt.explorer.trainer.algorithm = reptile
                                         ? core::MetaAlgorithm::kReptile
                                         : core::MetaAlgorithm::kFomaml;
    if (reptile) opt.explorer.trainer.global_lr = 0.5;
    eval::ExperimentRunner runner(data::MakeSdssLike(scale.sdss_rows, &rng),
                                  SdssSubspaces(), opt);
    if (!runner.Init().ok()) continue;
    const auto uirs = TestUirs(&runner, 2 * scale.uirs_per_config);
    double meta = 0.0;
    double meta_star = 0.0;
    if (!runner.MeanF1(eval::Method::kMeta, uirs, b30, &meta).ok()) meta = -1;
    if (!runner.MeanF1(eval::Method::kMetaStar, uirs, b30, &meta_star).ok()) {
      meta_star = -1;
    }
    table.AddRow(reptile ? "Reptile" : "FOMAML", {meta, meta_star});
  }
  std::printf("\nAblation 4: meta-learning algorithm (B=%lld)\n",
              static_cast<long long>(b30));
  table.Print();
}

void Run() {
  PrintHeader("Ablations: memory augmentation, feature expansion, FP/FN "
              "optimizer, meta-algorithm");
  MemoryAblation();
  ExpansionAblation();
  FpFnAblation();
  AlgorithmAblation();
}

}  // namespace
}  // namespace lte::bench

int main() {
  lte::bench::Run();
  return 0;
}
