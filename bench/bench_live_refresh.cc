// Live-table refresh: serving latency and result quality across a
// drift-triggered hot model swap (DESIGN.md §2e).
//
// A serving host keeps answering PredictRows from a session pinned to the
// current model epoch while an ingest thread appends drifting batches; the
// DriftRefreshController rebuilds the model in the background and publishes
// it through the ModelRegistry. This bench measures the request latency of
// the pinned session before / during / after the rebuild, and the quality
// gap the refresh closes: a user whose interest lives in the newly arrived
// data region, served once by the stale (pre-drift) model and once by the
// refreshed one, with F1 against the ground-truth predicate.
//
// Two invariants ride along for the CI gate:
//   * swap_bit_identical — every answer the pinned session gives during and
//     after the swap is byte-identical to its pre-append answers (the
//     RCU-style epoch pinning contract).
//   * refresh_bit_identical — the background-published model is bit-equal to
//     a foreground pretrain of the same row-watermark snapshot with the same
//     epoch-derived seed (the rebuild is a pure function of its inputs).
//
// Expected shape: "during" latency stays within a small factor of "before"
// (the rebuild fans out on the shared pool, so some interference is
// expected — but serving never blocks on it), and refreshed F1 clearly
// exceeds stale F1 (the stale encoder saturates on the new region, so the
// stale model cannot separate structure inside it).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/exploration_session.h"
#include "data/table.h"
#include "eval/report.h"
#include "serving/live_refresh.h"
#include "serving/model_registry.h"

namespace lte::bench {
namespace {

struct PhaseLatency {
  std::string phase;
  std::vector<double> seconds;

  double MeanMs() const {
    if (seconds.empty()) return 0.0;
    double sum = 0.0;
    for (double s : seconds) sum += s;
    return 1000.0 * sum / static_cast<double>(seconds.size());
  }

  double P50Ms() const {
    if (seconds.empty()) return 0.0;
    std::vector<double> sorted = seconds;
    std::sort(sorted.begin(), sorted.end());
    return 1000.0 * sorted[sorted.size() / 2];
  }
};

/// Per-column shift pushing a row far outside the base table's observed
/// range: appended batches form a new, well-separated cluster region.
std::vector<double> ColumnShifts(const data::Table& base) {
  std::vector<double> shifts;
  for (int64_t c = 0; c < base.num_columns(); ++c) {
    const data::Column& col = base.column(c);
    shifts.push_back(1.75 * (col.max() - col.min() + 1.0));
  }
  return shifts;
}

std::vector<std::vector<double>> ShiftedBatch(const data::Table& base,
                                              const std::vector<double>& shifts,
                                              int64_t n, int64_t salt) {
  std::vector<std::vector<double>> batch;
  batch.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    std::vector<double> row = base.Row((salt * 131 + i * 7) % base.num_rows());
    for (size_t c = 0; c < row.size(); ++c) row[c] += shifts[c];
    batch.push_back(std::move(row));
  }
  return batch;
}

std::vector<std::vector<double>> SameDistributionBatch(const data::Table& base,
                                                       int64_t n,
                                                       int64_t salt) {
  std::vector<std::vector<double>> batch;
  batch.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    batch.push_back(base.Row((salt * 131 + i * 7) % base.num_rows()));
  }
  return batch;
}

/// Mixed start labels for the pinned serving session (subspace 0 only): the
/// usual below-median scheme over the model's own initial tuples.
std::vector<std::vector<double>> ServeLabels(
    const core::ExplorationModel& model) {
  const auto& tuples = *model.InitialTuples(0);
  std::vector<double> firsts;
  for (const auto& t : tuples) firsts.push_back(t[0]);
  std::sort(firsts.begin(), firsts.end());
  const double threshold = firsts[firsts.size() / 2];
  std::vector<std::vector<double>> labels(1);
  for (const auto& t : tuples) {
    labels[0].push_back(t[0] < threshold ? 1.0 : 0.0);
  }
  return labels;
}

double F1(const std::vector<double>& predictions,
          const std::vector<char>& truth) {
  int64_t tp = 0;
  int64_t fp = 0;
  int64_t fn = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const bool predicted = predictions[i] > 0.5;
    if (predicted && truth[i]) ++tp;
    if (predicted && !truth[i]) ++fp;
    if (!predicted && truth[i]) ++fn;
  }
  const int64_t denom = 2 * tp + fp + fn;
  return denom > 0 ? 2.0 * static_cast<double>(tp) / static_cast<double>(denom)
                   : 0.0;
}

void Run() {
  PrintHeader("Live refresh: latency + F1 across a drift-triggered hot swap");
  std::printf("hardware threads available: %lld\n",
              static_cast<long long>(DefaultThreadCount()));

  const int64_t rows = SmokeMode() ? 6000 : (FullScale() ? 60000 : 20000);
  const int64_t batch_rows = SmokeMode() ? 256 : 512;
  const int64_t drift_batches = SmokeMode() ? 4 : 8;
  const int64_t reps = SmokeMode() ? 5 : 20;
  const int64_t slice = 2048;

  Rng data_rng(11);
  const data::Table base = data::MakeSdssLike(rows, &data_rng);
  const std::vector<double> shifts = ColumnShifts(base);

  // Basic-variant serving against a shared model (as in bench_multi_session
  // and bench_session_churn): the refresh path re-runs the same offline
  // phase the initial pretrain ran, so meta-training stays off to keep
  // rebuild-vs-serving interference the only moving part.
  const core::ExplorerOptions opt = BaseRunnerOptions(1, ConvexPsi()).explorer;
  auto model = std::make_shared<core::ExplorationModel>(opt);
  Rng pretrain_rng(42);
  if (!model->Pretrain(base, SdssSubspaces(), /*train_meta=*/false,
                       &pretrain_rng)
           .ok()) {
    std::printf("pretrain failed\n");
    return;
  }

  data::Table live = base;
  serving::ModelRegistry registry(model);
  serving::DriftRefreshOptions refresh_options;
  refresh_options.drift.window_size = batch_rows;
  serving::DriftRefreshController controller(&registry, &live, SdssSubspaces(),
                                             refresh_options);

  // The pinned serving session: epoch 1, subspace 0 only, scanning a fixed
  // base-row slice — rows no append ever touches, so its answers must never
  // change.
  const serving::ModelSnapshot pinned = registry.Current();
  core::ExplorationSession session(pinned.model, /*num_threads=*/1);
  Rng serve_rng(1000);
  if (!session
           .StartExploration(ServeLabels(*pinned.model), core::Variant::kBasic,
                             &serve_rng)
           .ok()) {
    std::printf("StartExploration failed\n");
    return;
  }
  std::vector<int64_t> slice_rows(static_cast<size_t>(slice));
  std::iota(slice_rows.begin(), slice_rows.end(), 0);

  bool swap_bit_identical = true;
  std::vector<double> reference;
  if (!session.PredictRows(live, slice_rows, &reference).ok()) {
    std::printf("serving failed\n");
    return;
  }

  auto timed_rep = [&](PhaseLatency* phase) {
    std::vector<double> predictions;
    Stopwatch sw;
    if (!session.PredictRows(live, slice_rows, &predictions).ok()) {
      swap_bit_identical = false;
      return;
    }
    const double elapsed = sw.ElapsedSeconds();
    if (phase != nullptr) phase->seconds.push_back(elapsed);
    if (predictions != reference) swap_bit_identical = false;
  };

  PhaseLatency before{"before", {}};
  PhaseLatency during{"during", {}};
  PhaseLatency after{"after", {}};
  for (int64_t r = 0; r < reps; ++r) timed_rep(&before);

  // Ingest thread: one same-distribution warmup batch, then drifting
  // batches. The first shifted batch completes a detector window and
  // triggers the background rebuild; later batches land while it runs.
  // Trigger watermarks are recorded so the published model can be re-derived
  // in the foreground afterwards (join(ingest) orders them before the read).
  std::vector<std::pair<uint64_t, int64_t>> trigger_watermarks;
  std::atomic<bool> ingest_done{false};
  bool ingest_ok = true;
  std::thread ingest([&] {
    int64_t triggers_seen = 0;
    auto observe = [&](const std::vector<std::vector<double>>& batch) {
      if (!controller.AppendAndObserve(batch).ok()) {
        ingest_ok = false;
        return;
      }
      const int64_t triggered = controller.stats().refreshes_triggered;
      if (triggered > triggers_seen) {
        // The k-th trigger publishes epoch k + 1 at exactly this row count.
        triggers_seen = triggered;
        trigger_watermarks.emplace_back(
            static_cast<uint64_t>(triggers_seen) + 1, live.num_rows());
      }
    };
    observe(SameDistributionBatch(base, batch_rows, /*salt=*/0));
    for (int64_t b = 0; b < drift_batches && ingest_ok; ++b) {
      observe(ShiftedBatch(base, shifts, batch_rows, /*salt=*/b));
    }
    ingest_done.store(true, std::memory_order_release);
  });

  // Serve while the ingest and the rebuild run; reps overlapping the
  // rebuild land in the "during" bucket, the rest are discarded (still
  // checked for byte-identity).
  while (!ingest_done.load(std::memory_order_acquire) ||
         controller.refresh_in_flight()) {
    timed_rep(controller.refresh_in_flight() ? &during : nullptr);
  }
  ingest.join();
  controller.WaitForRefresh();
  for (int64_t r = 0; r < reps; ++r) timed_rep(&after);

  const serving::DriftRefreshStats stats = controller.stats();
  const serving::ModelSnapshot refreshed = registry.Current();
  if (!ingest_ok || stats.refreshes_completed == 0) {
    std::printf("refresh never completed (triggered=%lld, failures=%lld)\n",
                static_cast<long long>(stats.refreshes_triggered),
                static_cast<long long>(stats.refresh_failures));
    return;
  }

  // refresh_bit_identical: re-derive the last published model in the
  // foreground from its recorded watermark and epoch-derived seed.
  bool refresh_bit_identical = false;
  for (const auto& [epoch, watermark] : trigger_watermarks) {
    if (epoch != refreshed.epoch) continue;
    const data::Table snapshot = live.SnapshotPrefix(watermark);
    core::ExplorationModel foreground(opt);
    Rng rebuild_rng(refresh_options.rebuild_seed + epoch);
    if (foreground
            .Pretrain(snapshot, SdssSubspaces(), /*train_meta=*/false,
                      &rebuild_rng)
            .ok()) {
      refresh_bit_identical = foreground.fingerprint() == refreshed.fingerprint;
    }
  }

  // ---- Quality: a user whose interest lives in the new region. ----
  // Ground truth on subspace 0 (attributes 0, 1): interesting iff the row is
  // in the shifted region AND its attribute-1 value falls below the shifted
  // region's median — structure *inside* the new region, which the stale
  // encoder (fit before the region existed) collapses to a single saturated
  // code point.
  const double region_lo =
      base.column(0).max() +
      0.25 * (base.column(0).max() - base.column(0).min());
  std::vector<double> appended_attr1;
  for (int64_t r = rows; r < live.num_rows(); ++r) {
    appended_attr1.push_back(live.Row(r)[1]);
  }
  std::sort(appended_attr1.begin(), appended_attr1.end());
  const double attr1_median = appended_attr1[appended_attr1.size() / 2];
  auto truth_of = [&](const std::vector<double>& row) {
    return row[0] > region_lo && row[1] < attr1_median;
  };

  // Eval rows: every appended row plus an equal-size base sample, so the new
  // region carries real weight in the score.
  const int64_t appended = live.num_rows() - rows;
  std::vector<int64_t> eval_rows;
  for (int64_t r = rows; r < live.num_rows(); ++r) eval_rows.push_back(r);
  const int64_t stride = std::max<int64_t>(1, rows / appended);
  for (int64_t r = 0;
       r < rows && static_cast<int64_t>(eval_rows.size()) < 2 * appended;
       r += stride) {
    eval_rows.push_back(r);
  }
  std::vector<char> truth;
  for (int64_t r : eval_rows) {
    truth.push_back(truth_of(live.Row(r)) ? 1 : 0);
  }

  // Both sessions receive the *same* user feedback: start labels on their
  // own initial tuples under the ground-truth predicate, then identical
  // labeled batches mixing new-region and base points.
  auto explore_and_score =
      [&](const std::shared_ptr<const core::ExplorationModel>& m,
          uint64_t seed, double* f1) {
        core::ExplorationSession user(m, /*num_threads=*/1);
        std::vector<std::vector<double>> labels(1);
        for (const auto& t : *m->InitialTuples(0)) {
          labels[0].push_back(truth_of(t) ? 1.0 : 0.0);
        }
        Rng rng(seed);
        if (!user.StartExploration(labels, core::Variant::kBasic, &rng).ok()) {
          return false;
        }
        // Balanced feedback rounds: equal positive / negative picks from the
        // appended region plus a few base negatives, identical for both
        // models.
        std::vector<int64_t> positive_rows;
        std::vector<int64_t> negative_rows;
        for (int64_t r = rows; r < live.num_rows(); ++r) {
          (truth_of(live.Row(r)) ? positive_rows : negative_rows).push_back(r);
        }
        if (positive_rows.empty()) return false;
        for (int64_t round = 0; round < 20; ++round) {
          std::vector<std::vector<double>> points;
          std::vector<double> point_labels;
          for (int64_t i = 0; i < 25; ++i) {
            const std::vector<double> row = live.Row(
                positive_rows[(round * 25 + i * 13) % positive_rows.size()]);
            points.push_back({row[0], row[1]});
            point_labels.push_back(1.0);
          }
          for (int64_t i = 0; i < 20; ++i) {
            const std::vector<double> row = live.Row(
                negative_rows[(round * 20 + i * 17) % negative_rows.size()]);
            points.push_back({row[0], row[1]});
            point_labels.push_back(0.0);
          }
          for (int64_t i = 0; i < 5; ++i) {
            const std::vector<double> row =
                base.Row((round * 977 + i * 101) % rows);
            points.push_back({row[0], row[1]});
            point_labels.push_back(0.0);
          }
          if (!user.ContinueExploration(0, points, point_labels, &rng).ok()) {
            return false;
          }
        }
        std::vector<double> predictions;
        if (!user.PredictRows(live, eval_rows, &predictions).ok()) {
          return false;
        }
        *f1 = F1(predictions, truth);
        return true;
      };

  double stale_f1 = 0.0;
  double refreshed_f1 = 0.0;
  const bool quality_ok =
      explore_and_score(pinned.model, 2000, &stale_f1) &&
      explore_and_score(refreshed.model, 2000, &refreshed_f1);
  const bool f1_improved = quality_ok && refreshed_f1 > stale_f1;

  eval::TextTable table({"phase", "reps", "mean (ms)", "p50 (ms)"});
  for (const PhaseLatency* phase : {&before, &during, &after}) {
    table.AddRow(phase->phase,
                 {static_cast<double>(phase->seconds.size()), phase->MeanMs(),
                  phase->P50Ms()},
                 2);
  }
  table.Print();
  std::printf("epoch published: %llu (triggered %lld, completed %lld)\n",
              static_cast<unsigned long long>(refreshed.epoch),
              static_cast<long long>(stats.refreshes_triggered),
              static_cast<long long>(stats.refreshes_completed));
  std::printf("pinned session byte-identical across swap: %s\n",
              swap_bit_identical ? "yes" : "NO — epoch pinning violated");
  std::printf("background rebuild == foreground rebuild: %s\n",
              refresh_bit_identical ? "yes" : "NO — rebuild not deterministic");
  std::printf("F1 on the drifted workload: stale %.3f -> refreshed %.3f (%s)\n",
              stale_f1, refreshed_f1,
              f1_improved ? "improved" : "NOT improved");

  const std::string json_path = JsonOutputPath();
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("could not open %s for writing\n", json_path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"live_refresh\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n",
                 SmokeMode() ? "smoke" : (FullScale() ? "full" : "scaled"));
    std::fprintf(f, "  \"rows\": %lld,\n", static_cast<long long>(rows));
    std::fprintf(f, "  \"appended_rows\": %lld,\n",
                 static_cast<long long>(appended));
    std::fprintf(f, "  \"published_epoch\": %llu,\n",
                 static_cast<unsigned long long>(refreshed.epoch));
    std::fprintf(f, "  \"refreshes_triggered\": %lld,\n",
                 static_cast<long long>(stats.refreshes_triggered));
    std::fprintf(f, "  \"refreshes_completed\": %lld,\n",
                 static_cast<long long>(stats.refreshes_completed));
    std::fprintf(f, "  \"swap_bit_identical\": %s,\n",
                 swap_bit_identical ? "true" : "false");
    std::fprintf(f, "  \"refresh_bit_identical\": %s,\n",
                 refresh_bit_identical ? "true" : "false");
    std::fprintf(f, "  \"stale_f1\": %.6f,\n", stale_f1);
    std::fprintf(f, "  \"refreshed_f1\": %.6f,\n", refreshed_f1);
    std::fprintf(f, "  \"f1_improved\": %s,\n", f1_improved ? "true" : "false");
    std::fprintf(f, "  \"latency\": [\n");
    const PhaseLatency* phases[] = {&before, &during, &after};
    for (size_t i = 0; i < 3; ++i) {
      std::fprintf(f,
                   "    {\"phase\": \"%s\", \"reps\": %lld, "
                   "\"mean_ms\": %.4f, \"p50_ms\": %.4f}%s\n",
                   phases[i]->phase.c_str(),
                   static_cast<long long>(phases[i]->seconds.size()),
                   phases[i]->MeanMs(), phases[i]->P50Ms(),
                   i + 1 < 3 ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote JSON results to %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace lte::bench

int main() {
  lte::bench::Run();
  return 0;
}
