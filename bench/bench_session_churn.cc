// Session lifecycle churn: K-of-N reconnect workload through the
// serving::SessionManager (DESIGN.md §2d).
//
// A serving host keeps only K sessions resident over N known users; every
// reconnect of an evicted user pays one checkpoint restore, and every
// capacity miss pays one checkpoint write. This bench adapts N users once,
// then drives a scripted reconnect storm from 4 request threads while
// sweeping K, and reports reconnect throughput plus the manager's
// evict/restore ledger. The determinism invariant rides along: after any
// amount of churn, every user's predictions must be byte-identical to a
// standalone session that never left RAM.
//
// Expected shape: reconnects/s degrades gracefully as K shrinks (the
// evict+restore round-trip is two serializations of a few-KB session, not a
// re-adaptation), and the K = N row measures the pure lease/hit overhead.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/exploration_session.h"
#include "eval/report.h"
#include "serving/model_registry.h"
#include "serving/session_manager.h"

namespace lte::bench {
namespace {

/// One row of the K (resident capacity) sweep, kept for the JSON artifact.
struct ChurnRow {
  int64_t resident = 0;
  double wall_s = 0.0;
  double reconnects_per_s = 0.0;
  double rows_per_s = 0.0;
  int64_t evictions = 0;
  int64_t restores = 0;
  int64_t hits = 0;
  bool bit_identical = true;
};

/// Scripted per-user labels (same scheme as bench_multi_session): user `u`
/// likes a subspace point iff its first coordinate falls below a per-user
/// quantile of the initial tuples' first coordinates.
std::vector<std::vector<double>> UserLabels(const core::ExplorationModel& model,
                                            int64_t u) {
  std::vector<std::vector<double>> labels(
      static_cast<size_t>(model.num_subspaces()));
  for (int64_t s = 0; s < model.num_subspaces(); ++s) {
    const auto& tuples = *model.InitialTuples(s);
    std::vector<double> firsts;
    firsts.reserve(tuples.size());
    for (const auto& t : tuples) firsts.push_back(t[0]);
    std::sort(firsts.begin(), firsts.end());
    const size_t q = (static_cast<size_t>(3 + (u % 5)) * firsts.size()) / 10;
    const double threshold = firsts[std::min(q, firsts.size() - 1)];
    for (const auto& t : tuples) {
      labels[static_cast<size_t>(s)].push_back(t[0] < threshold ? 1.0 : 0.0);
    }
  }
  return labels;
}

/// The fixed row slice user `u` scans on every reconnect.
std::vector<int64_t> UserRows(int64_t u, int64_t num_rows, int64_t slice) {
  std::vector<int64_t> rows(static_cast<size_t>(slice));
  const int64_t start = (u * 997) % std::max<int64_t>(1, num_rows - slice);
  std::iota(rows.begin(), rows.end(), start);
  return rows;
}

std::string FreshDir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("lte_bench_churn_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  return dir;
}

void Run() {
  PrintHeader("Session churn: K-of-N reconnects through the SessionManager");
  std::printf("hardware threads available: %lld\n",
              static_cast<long long>(DefaultThreadCount()));

  const int64_t rows = SmokeMode() ? 8000 : (FullScale() ? 60000 : 20000);
  const int64_t users = SmokeMode() ? 16 : 48;
  const int64_t reconnects = SmokeMode() ? 96 : 480;
  const int64_t slice = 2048;
  constexpr int64_t kRequestThreads = 4;

  Rng data_rng(11);
  const data::Table sdss = data::MakeSdssLike(rows, &data_rng);

  // Basic-variant serving against a shared model, as in bench_multi_session:
  // the sweep measures the lifecycle machinery, not meta-training.
  core::ExplorerOptions opt = BaseRunnerOptions(1, ConvexPsi()).explorer;
  auto model = std::make_shared<core::ExplorationModel>(opt);
  Rng pretrain_rng(42);
  if (!model->Pretrain(sdss, SdssSubspaces(), /*train_meta=*/false,
                      &pretrain_rng)
           .ok()) {
    std::printf("pretrain failed\n");
    return;
  }

  serving::ModelRegistry registry(model);

  // Standalone ground truth per user: adapt once, never evict, scan the
  // user's slice. Every churn configuration must reproduce these bytes.
  std::vector<std::vector<double>> expected(static_cast<size_t>(users));
  for (int64_t u = 0; u < users; ++u) {
    core::ExplorationSession session(model, /*num_threads=*/1);
    session.SeedRng(1000 + static_cast<uint64_t>(u));
    if (!session
             .StartExploration(UserLabels(*model, u), core::Variant::kBasic,
                               session.session_rng())
             .ok() ||
        !session
             .PredictRows(sdss, UserRows(u, rows, slice),
                          &expected[static_cast<size_t>(u)])
             .ok()) {
      std::printf("standalone baseline failed for user %lld\n",
                  static_cast<long long>(u));
      return;
    }
  }

  const std::vector<int64_t> capacity_sweep = {
      std::max<int64_t>(1, users / 8), std::max<int64_t>(1, users / 4), users};

  bool all_identical = true;
  std::vector<ChurnRow> results;
  eval::TextTable table({"resident K / users N", "wall (s)", "reconnects/s",
                         "rows/s", "evictions", "restores", "identical"});
  for (const int64_t k : capacity_sweep) {
    serving::SessionManagerOptions mopt;
    mopt.max_resident = k;
    mopt.checkpoint_dir = FreshDir(std::to_string(k));
    mopt.session_num_threads = 1;
    serving::SessionManager manager(&registry, mopt);

    // Adapt phase (untimed): every user starts exploration once; with K < N
    // the tail of this phase already churns through checkpoints.
    bool ok = true;
    for (int64_t u = 0; u < users; ++u) {
      serving::SessionManager::Lease lease;
      if (!manager.Acquire("user" + std::to_string(u), &lease).ok()) {
        ok = false;
        break;
      }
      lease.session()->SeedRng(1000 + static_cast<uint64_t>(u));
      if (!lease.session()
               ->StartExploration(UserLabels(*model, u), core::Variant::kBasic,
                                  lease.session()->session_rng())
               .ok()) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      std::printf("adapt phase failed at K=%lld\n", static_cast<long long>(k));
      return;
    }
    const serving::SessionManagerStats before = manager.stats();

    // Reconnect storm (timed): a scripted user sequence with stride 7 — long
    // revisit distance, so K < N keeps missing — served from 4 request
    // threads. Reconnect scans are const, so concurrent leases on the same
    // user are safe; only the manager's own machinery is under test.
    std::vector<char> thread_ok(kRequestThreads, 1);
    Stopwatch sw;
    {
      std::vector<std::thread> threads;
      for (int64_t t = 0; t < kRequestThreads; ++t) {
        threads.emplace_back([&, t] {
          std::vector<double> predictions;
          for (int64_t i = t; i < reconnects; i += kRequestThreads) {
            const int64_t u = (i * 7 + 3) % users;
            serving::SessionManager::Lease lease;
            if (!manager.Acquire("user" + std::to_string(u), &lease).ok() ||
                !lease.session()
                     ->PredictRows(sdss, UserRows(u, rows, slice),
                                   &predictions)
                     .ok()) {
              thread_ok[static_cast<size_t>(t)] = 0;
              return;
            }
          }
        });
      }
      for (std::thread& t : threads) t.join();
    }

    ChurnRow row;
    row.resident = k;
    row.wall_s = sw.ElapsedSeconds();
    row.reconnects_per_s =
        row.wall_s > 0.0 ? static_cast<double>(reconnects) / row.wall_s : 0.0;
    row.rows_per_s = row.wall_s > 0.0
                         ? static_cast<double>(reconnects * slice) / row.wall_s
                         : 0.0;
    const serving::SessionManagerStats after = manager.stats();
    row.evictions = after.evictions - before.evictions;
    row.restores = after.restores - before.restores;
    row.hits = after.hits - before.hits;

    // Determinism invariant: after the storm, every user still answers
    // byte-for-byte what the never-evicted standalone session answers.
    for (int64_t t = 0; t < kRequestThreads; ++t) {
      if (thread_ok[static_cast<size_t>(t)] == 0) row.bit_identical = false;
    }
    for (int64_t u = 0; u < users; ++u) {
      serving::SessionManager::Lease lease;
      std::vector<double> predictions;
      if (!manager.Acquire("user" + std::to_string(u), &lease).ok() ||
          !lease.session()
               ->PredictRows(sdss, UserRows(u, rows, slice), &predictions)
               .ok() ||
          predictions != expected[static_cast<size_t>(u)]) {
        row.bit_identical = false;
      }
    }
    all_identical &= row.bit_identical;

    table.AddRow(std::to_string(k) + " / " + std::to_string(users),
                 {row.wall_s, row.reconnects_per_s, row.rows_per_s,
                  static_cast<double>(row.evictions),
                  static_cast<double>(row.restores),
                  row.bit_identical ? 1.0 : 0.0},
                 2);
    results.push_back(row);
    std::filesystem::remove_all(mopt.checkpoint_dir);
  }
  table.Print();
  std::printf("all churned sessions byte-identical to never-evicted: %s\n",
              all_identical ? "yes" : "NO — determinism contract violated");

  const std::string json_path = JsonOutputPath();
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("could not open %s for writing\n", json_path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"session_churn\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n",
                 SmokeMode() ? "smoke" : (FullScale() ? "full" : "scaled"));
    std::fprintf(f, "  \"rows\": %lld,\n", static_cast<long long>(rows));
    std::fprintf(f, "  \"users\": %lld,\n", static_cast<long long>(users));
    std::fprintf(f, "  \"reconnects\": %lld,\n",
                 static_cast<long long>(reconnects));
    std::fprintf(f, "  \"slice_rows\": %lld,\n",
                 static_cast<long long>(slice));
    std::fprintf(f, "  \"churn_bit_identical\": %s,\n",
                 all_identical ? "true" : "false");
    std::fprintf(f, "  \"sweep\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const ChurnRow& r = results[i];
      std::fprintf(
          f,
          "    {\"resident\": %lld, \"wall_s\": %.6f, "
          "\"reconnects_per_s\": %.1f, \"rows_per_s\": %.1f, "
          "\"evictions\": %lld, \"restores\": %lld, \"hits\": %lld, "
          "\"bit_identical\": %s}%s\n",
          static_cast<long long>(r.resident), r.wall_s, r.reconnects_per_s,
          r.rows_per_s, static_cast<long long>(r.evictions),
          static_cast<long long>(r.restores), static_cast<long long>(r.hits),
          r.bit_identical ? "true" : "false",
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote JSON results to %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace lte::bench

int main() {
  lte::bench::Run();
  return 0;
}
