// Columnar vs row-at-a-time serving throughput.
//
// The columnar fast path (DESIGN.md §2b "Columnar serving path") evaluates
// one subspace at a time over 1024-row blocks gathered straight from the
// table's column storage, carrying a survivor bitmask between subspaces,
// instead of materializing every row and looping subspaces per row. This
// bench sweeps variant x threads x scan path over a full-table PredictRows
// scan plus a bounded RetrieveMatches, reports throughput for all three
// paths (row-at-a-time, columnar scalar, columnar SIMD) and their ratios,
// and verifies the contracts as it goes: flipping between the row and
// scalar columnar paths must never change a single output byte, and the
// SIMD throughput mode must stay within statistical parity of the scalar
// verdicts (mismatch fraction and match-set F1 within epsilon — only rows
// whose probability sits exactly at the 0.5 threshold boundary may flip).
//
// Expected shape: columnar wins on every variant from the removed per-row
// heap traffic, the row-tiled batch kernels, and the once-per-call folding
// of the per-user-constant halves (the M_cp left half for the memory-mode
// variants; the emb_R head of f_clf's first layer for Basic, which also
// halves that layer's work — making Basic the largest winner). The
// acceptance bar for this path is >= 1.5x single-thread columnar speedup on
// the Meta variant in full (LTE_BENCH_FULL=1) mode. The SIMD mode rides on
// top of the columnar layout (float32 transposed tiles, vector kernels) and
// is reported as a further ratio over the scalar columnar pass.

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "bench_common.h"
#include "core/exploration_model.h"
#include "core/exploration_session.h"
#include "eval/report.h"

namespace lte::bench {
namespace {

/// One (variant, threads) configuration of the sweep, all three paths timed.
struct SweepRow {
  std::string variant;
  int64_t threads = 0;
  double row_wall_s = 0.0;
  double col_wall_s = 0.0;
  double simd_wall_s = 0.0;
  double row_rows_per_s = 0.0;
  double col_rows_per_s = 0.0;
  double simd_rows_per_s = 0.0;
  double speedup = 0.0;       // row / columnar (scalar).
  double simd_speedup = 0.0;  // columnar (scalar) / simd.
  bool bit_identical = true;  // row vs columnar scalar.
  double simd_mismatch_fraction = 0.0;
  double simd_match_f1 = 1.0;
  bool simd_parity = true;
};

// The SIMD parity gate thresholds (see DESIGN.md §2b): only rows whose
// probability sits at the 0.5 threshold boundary may flip under float32, a
// measure-zero set in practice.
constexpr double kMaxSimdMismatchFraction = 1e-3;
constexpr double kMinSimdMatchF1 = 1.0 - 1e-3;

double MismatchFraction(const std::vector<double>& a,
                        const std::vector<double>& b) {
  if (a.size() != b.size()) return 1.0;
  if (a.empty()) return 0.0;
  size_t mismatches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++mismatches;
  }
  return static_cast<double>(mismatches) / static_cast<double>(a.size());
}

// F1 between two ascending match-id sets: 1.0 means identical sets.
double MatchSetF1(const std::vector<int64_t>& ref,
                  const std::vector<int64_t>& got) {
  if (ref.empty() && got.empty()) return 1.0;
  std::vector<int64_t> both;
  std::set_intersection(ref.begin(), ref.end(), got.begin(), got.end(),
                        std::back_inserter(both));
  const double tp = static_cast<double>(both.size());
  const double denom = static_cast<double>(ref.size() + got.size());
  return denom == 0.0 ? 1.0 : 2.0 * tp / denom;
}

const char* VariantName(core::Variant v) {
  switch (v) {
    case core::Variant::kBasic:
      return "Basic";
    case core::Variant::kMeta:
      return "Meta";
    case core::Variant::kMetaStar:
      return "Meta*";
  }
  return "?";
}

/// Scripted user labels: interesting iff the subspace point's first
/// coordinate falls below the 40% quantile of the initial tuples' firsts —
/// guaranteed mixed, so the conjunctive scan has real survivors to narrow.
std::vector<std::vector<double>> UserLabels(
    const core::ExplorationModel& model) {
  std::vector<std::vector<double>> labels(
      static_cast<size_t>(model.num_subspaces()));
  for (int64_t s = 0; s < model.num_subspaces(); ++s) {
    const auto& tuples = *model.InitialTuples(s);
    std::vector<double> firsts;
    firsts.reserve(tuples.size());
    for (const auto& t : tuples) firsts.push_back(t[0]);
    std::sort(firsts.begin(), firsts.end());
    const double threshold = firsts[(4 * firsts.size()) / 10];
    for (const auto& t : tuples) {
      labels[static_cast<size_t>(s)].push_back(t[0] < threshold ? 1.0 : 0.0);
    }
  }
  return labels;
}

void Run() {
  PrintHeader("Columnar serving path: scan-path x variant x threads sweep");
  std::printf("hardware threads available: %lld\n",
              static_cast<long long>(DefaultThreadCount()));

  const int64_t rows = SmokeMode() ? 6000 : (FullScale() ? 100000 : 30000);
  const int64_t reps = SmokeMode() ? 2 : (FullScale() ? 5 : 3);
  Rng data_rng(11);
  const data::Table sdss = data::MakeSdssLike(rows, &data_rng);

  // One shared model with meta-training on, so the memory-mode variants are
  // servable. The serving path is what's measured, so meta-training itself
  // is kept cheap: few tasks and epochs, but the embedding (and with it the
  // per-row forward cost this bench exists to measure) stays at scale.
  core::ExplorerOptions opt = BaseRunnerOptions(1, ConvexPsi()).explorer;
  opt.num_meta_tasks = SmokeMode() ? 30 : 150;
  opt.trainer.epochs = SmokeMode() ? 1 : 2;
  auto model = std::make_shared<core::ExplorationModel>(opt);
  Rng pretrain_rng(42);
  if (!model->Pretrain(sdss, SdssSubspaces(), /*train_meta=*/true,
                      &pretrain_rng)
           .ok()) {
    std::printf("pretrain failed\n");
    return;
  }

  std::vector<int64_t> all_rows(static_cast<size_t>(sdss.num_rows()));
  std::iota(all_rows.begin(), all_rows.end(), 0);
  const std::vector<std::vector<double>> labels = UserLabels(*model);

  const std::vector<core::Variant> variants = {
      core::Variant::kBasic, core::Variant::kMeta, core::Variant::kMetaStar};
  const std::vector<int64_t> thread_sweep =
      SmokeMode() ? std::vector<int64_t>{1, 2}
                  : std::vector<int64_t>{1, 2, 4};

  bool all_identical = true;
  bool all_simd_parity = true;
  double max_simd_mismatch = 0.0;
  double meta_single_thread_speedup = 0.0;
  double meta_single_thread_simd_speedup = 0.0;
  std::vector<SweepRow> results;
  eval::TextTable table({"variant x threads", "row (s)", "columnar (s)",
                         "simd (s)", "simd rows/s", "col speedup",
                         "simd x col", "identical", "parity"});
  for (const core::Variant variant : variants) {
    for (const int64_t threads : thread_sweep) {
      core::ExplorationSession session(model, threads);
      Rng rng(1000);
      if (!session.StartExploration(labels, variant, &rng).ok()) {
        std::printf("StartExploration failed for %s\n", VariantName(variant));
        return;
      }

      SweepRow row;
      row.variant = VariantName(variant);
      row.threads = threads;

      // Same adapted session answers all paths, so any output difference
      // below is the scan implementation's fault alone. One untimed warmup
      // per path settles scratch capacities and the page cache; the untimed
      // RetrieveMatches calls feed the byte-identity and parity checks
      // without polluting the scan timing. The parity comparison runs over
      // unbounded retrievals — a bounded scalar prefix and a bounded SIMD
      // prefix could truncate at different rows and understate agreement.
      std::vector<double> row_preds;
      std::vector<double> col_preds;
      std::vector<double> simd_preds;
      std::vector<int64_t> row_matches;
      std::vector<int64_t> col_matches;
      std::vector<int64_t> col_matches_all;
      std::vector<int64_t> simd_matches_all;

      session.set_scan_path(core::ScanPath::kRowAtATime);
      if (!session.PredictRows(sdss, all_rows, &row_preds).ok()) return;
      if (!session.RetrieveMatches(sdss, /*limit=*/500, &row_matches).ok()) {
        return;
      }
      session.set_scan_path(core::ScanPath::kColumnar);
      if (!session.PredictRows(sdss, all_rows, &col_preds).ok()) return;
      if (!session.RetrieveMatches(sdss, /*limit=*/500, &col_matches).ok()) {
        return;
      }
      if (!session.RetrieveMatches(sdss, /*limit=*/-1, &col_matches_all)
               .ok()) {
        return;
      }
      session.set_scan_path(core::ScanPath::kColumnarSimd);
      if (!session.PredictRows(sdss, all_rows, &simd_preds).ok()) return;
      if (!session.RetrieveMatches(sdss, /*limit=*/-1, &simd_matches_all)
               .ok()) {
        return;
      }

      // Interleave single full-table passes and keep the minimum wall per
      // path. Back-to-back rep blocks attribute any machine-state drift
      // (frequency, competing load) to whichever path ran second; the
      // interleaved minimum compares the two paths' best under near-identical
      // conditions.
      row.row_wall_s = 0.0;
      row.col_wall_s = 0.0;
      row.simd_wall_s = 0.0;
      for (int64_t r = 0; r < reps; ++r) {
        session.set_scan_path(core::ScanPath::kRowAtATime);
        Stopwatch row_sw;
        if (!session.PredictRows(sdss, all_rows, &row_preds).ok()) return;
        const double row_s = row_sw.ElapsedSeconds();
        if (r == 0 || row_s < row.row_wall_s) row.row_wall_s = row_s;

        session.set_scan_path(core::ScanPath::kColumnar);
        Stopwatch col_sw;
        if (!session.PredictRows(sdss, all_rows, &col_preds).ok()) return;
        const double col_s = col_sw.ElapsedSeconds();
        if (r == 0 || col_s < row.col_wall_s) row.col_wall_s = col_s;

        session.set_scan_path(core::ScanPath::kColumnarSimd);
        Stopwatch simd_sw;
        if (!session.PredictRows(sdss, all_rows, &simd_preds).ok()) return;
        const double simd_s = simd_sw.ElapsedSeconds();
        if (r == 0 || simd_s < row.simd_wall_s) row.simd_wall_s = simd_s;
      }

      row.bit_identical = row_preds == col_preds && row_matches == col_matches;
      all_identical = all_identical && row.bit_identical;
      row.simd_mismatch_fraction = MismatchFraction(col_preds, simd_preds);
      row.simd_match_f1 = MatchSetF1(col_matches_all, simd_matches_all);
      row.simd_parity =
          row.simd_mismatch_fraction <= kMaxSimdMismatchFraction &&
          row.simd_match_f1 >= kMinSimdMatchF1;
      all_simd_parity = all_simd_parity && row.simd_parity;
      max_simd_mismatch =
          std::max(max_simd_mismatch, row.simd_mismatch_fraction);
      const double scanned = static_cast<double>(rows);
      row.row_rows_per_s =
          row.row_wall_s > 0.0 ? scanned / row.row_wall_s : 0.0;
      row.col_rows_per_s =
          row.col_wall_s > 0.0 ? scanned / row.col_wall_s : 0.0;
      row.simd_rows_per_s =
          row.simd_wall_s > 0.0 ? scanned / row.simd_wall_s : 0.0;
      row.speedup =
          row.col_wall_s > 0.0 ? row.row_wall_s / row.col_wall_s : 0.0;
      row.simd_speedup =
          row.simd_wall_s > 0.0 ? row.col_wall_s / row.simd_wall_s : 0.0;
      if (variant == core::Variant::kMeta && threads == 1) {
        meta_single_thread_speedup = row.speedup;
        meta_single_thread_simd_speedup = row.simd_speedup;
      }
      table.AddRow(row.variant + " x " + std::to_string(threads),
                   {row.row_wall_s, row.col_wall_s, row.simd_wall_s,
                    row.simd_rows_per_s, row.speedup, row.simd_speedup,
                    row.bit_identical ? 1.0 : 0.0,
                    row.simd_parity ? 1.0 : 0.0},
                   2);
      results.push_back(row);
    }
  }
  table.Print();
  std::printf("all row/columnar pairs byte-identical: %s\n",
              all_identical ? "yes" : "NO — scan-path contract violated");
  std::printf("all simd rows within statistical parity: %s "
              "(max mismatch fraction %.2e, gate <= %.0e)\n",
              all_simd_parity ? "yes" : "NO — parity contract violated",
              max_simd_mismatch, kMaxSimdMismatchFraction);
  std::printf("Meta single-thread columnar speedup: %.2fx (target >= 1.5x at "
              "full scale)\n",
              meta_single_thread_speedup);
  std::printf("Meta single-thread simd-over-columnar speedup: %.2fx\n",
              meta_single_thread_simd_speedup);

  const std::string json_path = JsonOutputPath();
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("could not open %s for writing\n", json_path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"columnar_scan\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n",
                 SmokeMode() ? "smoke" : (FullScale() ? "full" : "scaled"));
    std::fprintf(f, "  \"rows\": %lld,\n", static_cast<long long>(rows));
    std::fprintf(f, "  \"reps\": %lld,\n", static_cast<long long>(reps));
    std::fprintf(f, "  \"hardware_threads\": %lld,\n",
                 static_cast<long long>(DefaultThreadCount()));
    std::fprintf(f, "  \"bit_identical\": %s,\n",
                 all_identical ? "true" : "false");
    std::fprintf(f, "  \"simd_parity\": %s,\n",
                 all_simd_parity ? "true" : "false");
    std::fprintf(f, "  \"simd_max_mismatch_fraction\": %.6e,\n",
                 max_simd_mismatch);
    std::fprintf(f, "  \"meta_single_thread_speedup\": %.3f,\n",
                 meta_single_thread_speedup);
    std::fprintf(f, "  \"meta_single_thread_simd_speedup\": %.3f,\n",
                 meta_single_thread_simd_speedup);
    std::fprintf(f, "  \"sweep\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const SweepRow& r = results[i];
      std::fprintf(
          f,
          "    {\"variant\": \"%s\", \"threads\": %lld, "
          "\"row_wall_s\": %.6f, \"columnar_wall_s\": %.6f, "
          "\"simd_wall_s\": %.6f, "
          "\"row_rows_per_s\": %.1f, \"columnar_rows_per_s\": %.1f, "
          "\"simd_rows_per_s\": %.1f, "
          "\"speedup\": %.3f, \"simd_speedup\": %.3f, "
          "\"bit_identical\": %s, \"simd_parity\": %s, "
          "\"simd_mismatch_fraction\": %.6e, \"simd_match_f1\": %.6f}%s\n",
          r.variant.c_str(), static_cast<long long>(r.threads), r.row_wall_s,
          r.col_wall_s, r.simd_wall_s, r.row_rows_per_s, r.col_rows_per_s,
          r.simd_rows_per_s, r.speedup, r.simd_speedup,
          r.bit_identical ? "true" : "false",
          r.simd_parity ? "true" : "false", r.simd_mismatch_fraction,
          r.simd_match_f1, i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote JSON results to %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace lte::bench

int main() {
  lte::bench::Run();
  return 0;
}
