// Reproduces paper Figure 6: online exploration runtime w.r.t. budget B at
// 4D and 8D (SDSS), plus an offline-training scaling study over the shared
// thread pool (the paper reports offline cost in Figure 8(b); here the axis
// is the thread count).
//
// Expected shape (paper): DSM's online cost grows roughly linearly with the
// budget (every labelled batch retrains the SVM inside the active-learning
// loop) and with dimension, while Meta*'s online cost — a fixed number of
// fast-adaptation gradient steps — is orders of magnitude lower and almost
// flat in both budget and dimension. The offline section should show
// near-linear wall-clock speedup up to the machine's core count (subspaces
// and per-batch tasks are independent), with bit-identical trained models
// at every thread count.

#include <cstdio>
#include <numeric>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "bench_common.h"
#include "eval/report.h"

namespace lte::bench {
namespace {

/// One row of the online sweep, kept for the JSON artifact.
struct OnlineSweepRow {
  int64_t threads = 0;
  double start_exploration_s = 0.0;
  double predict_rows_s = 0.0;
  double retrieve_matches_s = 0.0;
};

/// Measures the online serving path at several thread counts and verifies
/// the determinism contract as it goes: StartExploration (per-subspace
/// adaptation lanes), PredictRows (batch scoring), and RetrieveMatches
/// (order-preserving early-exit scan) must be bit-identical at every thread
/// count. Pretrains once, saves, and reloads per thread count — LoadModel
/// keeps the constructed num_threads, so only the fan-out differs.
void RunOnlineThreads() {
  PrintHeader("Online serving wall clock w.r.t. threads");
  std::printf("hardware threads available: %lld\n",
              static_cast<long long>(DefaultThreadCount()));

  const int64_t rows =
      SmokeMode() ? 20000 : (FullScale() ? 100000 : 40000);
  const int64_t reps = SmokeMode() ? 3 : 10;
  Rng data_rng(11);
  const data::Table sdss = data::MakeSdssLike(rows, &data_rng);

  core::ExplorerOptions opt = BaseRunnerOptions(1, ConvexPsi()).explorer;
  core::Explorer pretrained(opt);
  Rng pretrain_rng(42);
  // Basic-variant serving: contexts + initial tuples only, no meta-training.
  if (!pretrained
           .Pretrain(sdss, SdssSubspaces(), /*train_meta=*/false,
                     &pretrain_rng)
           .ok()) {
    std::printf("pretrain failed\n");
    return;
  }
  const std::string model_path = "bench_fig6_online.ltemodel";
  if (!pretrained.Save(model_path).ok()) {
    std::printf("model save failed\n");
    return;
  }

  // Scripted labels: the same few-shot session replayed at every thread
  // count. Splitting each subspace at the mean of its initial tuples' first
  // coordinate guarantees mixed labels, so the adapted region is non-trivial
  // and RetrieveMatches has real matches to return.
  std::vector<std::vector<double>> labels(
      static_cast<size_t>(pretrained.num_subspaces()));
  for (int64_t s = 0; s < pretrained.num_subspaces(); ++s) {
    const auto& tuples = *pretrained.InitialTuples(s);
    double mean = 0.0;
    for (const auto& t : tuples) mean += t[0];
    mean /= static_cast<double>(tuples.size());
    for (const auto& t : tuples) {
      labels[static_cast<size_t>(s)].push_back(t[0] < mean ? 1.0 : 0.0);
    }
  }
  std::vector<int64_t> all_rows(static_cast<size_t>(sdss.num_rows()));
  std::iota(all_rows.begin(), all_rows.end(), 0);

  const std::vector<int64_t> sweep = SmokeMode()
                                         ? std::vector<int64_t>{1, 4}
                                         : std::vector<int64_t>{1, 2, 4, 8};
  std::vector<OnlineSweepRow> results;
  std::vector<double> baseline_preds;
  std::vector<int64_t> baseline_matches;
  bool bit_identical = true;
  eval::TextTable table({"threads", "adapt (s)", "predict rows (s)",
                         "retrieve (s)", "retrieve speedup"});
  for (int64_t threads : sweep) {
    core::ExplorerOptions serving_opt = opt;
    serving_opt.num_threads = threads;
    core::Explorer explorer(serving_opt);
    if (!explorer.LoadModel(model_path).ok()) {
      std::printf("model load failed at threads=%lld\n",
                  static_cast<long long>(threads));
      return;
    }

    OnlineSweepRow row;
    row.threads = threads;
    Rng online_rng(99);
    Stopwatch sw;
    if (!explorer.StartExploration(labels, core::Variant::kBasic, &online_rng)
             .ok()) {
      std::printf("adaptation failed at threads=%lld\n",
                  static_cast<long long>(threads));
      return;
    }
    row.start_exploration_s = sw.ElapsedSeconds();

    std::vector<double> preds;
    sw.Restart();
    for (int64_t r = 0; r < reps; ++r) {
      if (!explorer.PredictRows(sdss, all_rows, &preds).ok()) {
        std::printf("PredictRows failed at threads=%lld\n",
                    static_cast<long long>(threads));
        return;
      }
    }
    row.predict_rows_s = sw.ElapsedSeconds() / static_cast<double>(reps);

    std::vector<int64_t> matches;
    sw.Restart();
    for (int64_t r = 0; r < reps; ++r) {
      if (!explorer.RetrieveMatches(sdss, /*limit=*/-1, &matches).ok()) {
        std::printf("RetrieveMatches failed at threads=%lld\n",
                    static_cast<long long>(threads));
        return;
      }
    }
    row.retrieve_matches_s = sw.ElapsedSeconds() / static_cast<double>(reps);

    if (results.empty()) {
      baseline_preds = preds;
      baseline_matches = matches;
    } else if (preds != baseline_preds || matches != baseline_matches) {
      bit_identical = false;
    }
    const double speedup =
        results.empty() || row.retrieve_matches_s <= 0.0
            ? 1.0
            : results.front().retrieve_matches_s / row.retrieve_matches_s;
    table.AddRow(std::to_string(threads),
                 {row.start_exploration_s, row.predict_rows_s,
                  row.retrieve_matches_s, speedup},
                 4);
    results.push_back(row);
  }
  table.Print();
  std::printf("matches retrieved: %zu of %lld rows\n",
              baseline_matches.size(), static_cast<long long>(rows));
  std::printf("bit-identical across thread counts: %s\n",
              bit_identical ? "yes" : "NO — determinism contract violated");
  std::remove(model_path.c_str());

  const std::string json_path = JsonOutputPath();
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("could not open %s for writing\n", json_path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"fig6_runtime_online\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n",
                 SmokeMode() ? "smoke" : (FullScale() ? "full" : "scaled"));
    std::fprintf(f, "  \"rows\": %lld,\n", static_cast<long long>(rows));
    std::fprintf(f, "  \"hardware_threads\": %lld,\n",
                 static_cast<long long>(DefaultThreadCount()));
    std::fprintf(f, "  \"bit_identical\": %s,\n",
                 bit_identical ? "true" : "false");
    std::fprintf(f, "  \"sweep\": [\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const OnlineSweepRow& r = results[i];
      std::fprintf(f,
                   "    {\"threads\": %lld, \"start_exploration_s\": %.6f, "
                   "\"predict_rows_s\": %.6f, \"retrieve_matches_s\": %.6f}%s\n",
                   static_cast<long long>(r.threads), r.start_exploration_s,
                   r.predict_rows_s, r.retrieve_matches_s,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote JSON results to %s\n", json_path.c_str());
  }
}

void RunOfflineThreads() {
  const Scale scale = GetScale();
  PrintHeader(
      "Figure 6 addendum: offline meta-training wall clock w.r.t. threads");
  std::printf("hardware threads available: %lld\n",
              static_cast<long long>(DefaultThreadCount()));

  Rng data_rng(11);
  const data::Table sdss = data::MakeSdssLike(scale.sdss_rows, &data_rng);

  eval::TextTable table({"threads", "offline wall (s)", "speedup vs 1"});
  double baseline = 0.0;
  for (int64_t threads : {int64_t{1}, int64_t{2}, int64_t{4}, int64_t{8}}) {
    core::ExplorerOptions opt = BaseRunnerOptions(1, ConvexPsi()).explorer;
    opt.num_threads = threads;          // Subspace-level lanes.
    opt.trainer.num_threads = threads;  // Per-batch task lanes.
    core::Explorer explorer(opt);
    Rng rng(42);  // Same seed per row: identical work, identical model.
    Stopwatch sw;
    if (!explorer
             .Pretrain(sdss, SdssSubspaces(), /*train_meta=*/true, &rng)
             .ok()) {
      std::printf("pretrain failed at threads=%lld\n",
                  static_cast<long long>(threads));
      return;
    }
    const double wall = sw.ElapsedSeconds();
    if (threads == 1) baseline = wall;
    table.AddRow(std::to_string(threads),
                 {wall, baseline > 0.0 ? baseline / wall : 0.0}, 4);
  }
  table.Print();
}

void Run() {
  const Scale scale = GetScale();
  PrintHeader("Figure 6: online exploration time (seconds) w.r.t. budget");

  Rng rng(3);
  data::Table sdss = data::MakeSdssLike(scale.sdss_rows, &rng);
  // The runtime comparison needs a realistic pool: DSM/AL-SVM pay a full
  // pool scan (SVM decision + polytope three-set) every labelling batch, so
  // a trivially small pool would hide the cost the paper measures.
  eval::RunnerOptions options = BaseRunnerOptions(1, ConvexPsi());
  options.pool_rows = FullScale() ? 20000 : 4000;
  eval::ExperimentRunner runner(std::move(sdss), SdssSubspaces(), options);
  if (!runner.Init().ok()) {
    std::printf("runner init failed\n");
    return;
  }

  for (int64_t num_subspaces : {2, 4}) {  // 4D and 8D.
    std::vector<eval::GroundTruthUir> uirs;
    for (int64_t i = 0; i < scale.uirs_per_config; ++i) {
      uirs.push_back(
          runner.GenerateUir({"convex", 1, ConvexPsi()}, num_subspaces));
    }
    std::vector<std::string> header = {"method"};
    for (int64_t b : scale.budgets) header.push_back("B=" + std::to_string(b));
    eval::TextTable table(header);
    for (eval::Method m : {eval::Method::kDsm, eval::Method::kAlSvm,
                           eval::Method::kMetaStar}) {
      std::vector<double> row;
      for (int64_t b : scale.budgets) {
        double total = 0.0;
        bool ok = true;
        for (const auto& uir : uirs) {
          eval::ExperimentResult res;
          if (!runner.Run(m, uir, b, &res).ok()) {
            ok = false;
            break;
          }
          total += res.online_seconds;
        }
        row.push_back(ok ? total / static_cast<double>(uirs.size()) : -1.0);
      }
      table.AddRow(eval::MethodName(m), row, 4);
    }
    std::printf("\nFigure 6: %lldD online exploration time (s)\n",
                static_cast<long long>(2 * num_subspaces));
    table.Print();
  }
}

}  // namespace
}  // namespace lte::bench

int main() {
  // Smoke mode (CI) runs only the online sweep: it exercises the whole
  // serving path, checks the determinism contract, and finishes in seconds.
  if (!lte::bench::SmokeMode()) {
    lte::bench::Run();
    lte::bench::RunOfflineThreads();
  }
  lte::bench::RunOnlineThreads();
  return 0;
}
