// Reproduces paper Figure 6: online exploration runtime w.r.t. budget B at
// 4D and 8D (SDSS).
//
// Expected shape (paper): DSM's online cost grows roughly linearly with the
// budget (every labelled batch retrains the SVM inside the active-learning
// loop) and with dimension, while Meta*'s online cost — a fixed number of
// fast-adaptation gradient steps — is orders of magnitude lower and almost
// flat in both budget and dimension.

#include "bench_common.h"
#include "eval/report.h"

namespace lte::bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  PrintHeader("Figure 6: online exploration time (seconds) w.r.t. budget");

  Rng rng(3);
  data::Table sdss = data::MakeSdssLike(scale.sdss_rows, &rng);
  // The runtime comparison needs a realistic pool: DSM/AL-SVM pay a full
  // pool scan (SVM decision + polytope three-set) every labelling batch, so
  // a trivially small pool would hide the cost the paper measures.
  eval::RunnerOptions options = BaseRunnerOptions(1, ConvexPsi());
  options.pool_rows = FullScale() ? 20000 : 4000;
  eval::ExperimentRunner runner(std::move(sdss), SdssSubspaces(), options);
  if (!runner.Init().ok()) {
    std::printf("runner init failed\n");
    return;
  }

  for (int64_t num_subspaces : {2, 4}) {  // 4D and 8D.
    std::vector<eval::GroundTruthUir> uirs;
    for (int64_t i = 0; i < scale.uirs_per_config; ++i) {
      uirs.push_back(
          runner.GenerateUir({"convex", 1, ConvexPsi()}, num_subspaces));
    }
    std::vector<std::string> header = {"method"};
    for (int64_t b : scale.budgets) header.push_back("B=" + std::to_string(b));
    eval::TextTable table(header);
    for (eval::Method m : {eval::Method::kDsm, eval::Method::kAlSvm,
                           eval::Method::kMetaStar}) {
      std::vector<double> row;
      for (int64_t b : scale.budgets) {
        double total = 0.0;
        bool ok = true;
        for (const auto& uir : uirs) {
          eval::ExperimentResult res;
          if (!runner.Run(m, uir, b, &res).ok()) {
            ok = false;
            break;
          }
          total += res.online_seconds;
        }
        row.push_back(ok ? total / static_cast<double>(uirs.size()) : -1.0);
      }
      table.AddRow(eval::MethodName(m), row, 4);
    }
    std::printf("\nFigure 6: %lldD online exploration time (s)\n",
                static_cast<long long>(2 * num_subspaces));
    table.Print();
  }
}

}  // namespace
}  // namespace lte::bench

int main() {
  lte::bench::Run();
  return 0;
}
