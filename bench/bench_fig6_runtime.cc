// Reproduces paper Figure 6: online exploration runtime w.r.t. budget B at
// 4D and 8D (SDSS), plus an offline-training scaling study over the shared
// thread pool (the paper reports offline cost in Figure 8(b); here the axis
// is the thread count).
//
// Expected shape (paper): DSM's online cost grows roughly linearly with the
// budget (every labelled batch retrains the SVM inside the active-learning
// loop) and with dimension, while Meta*'s online cost — a fixed number of
// fast-adaptation gradient steps — is orders of magnitude lower and almost
// flat in both budget and dimension. The offline section should show
// near-linear wall-clock speedup up to the machine's core count (subspaces
// and per-batch tasks are independent), with bit-identical trained models
// at every thread count.

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "bench_common.h"
#include "eval/report.h"

namespace lte::bench {
namespace {

void RunOfflineThreads() {
  const Scale scale = GetScale();
  PrintHeader(
      "Figure 6 addendum: offline meta-training wall clock w.r.t. threads");
  std::printf("hardware threads available: %lld\n",
              static_cast<long long>(DefaultThreadCount()));

  Rng data_rng(11);
  const data::Table sdss = data::MakeSdssLike(scale.sdss_rows, &data_rng);

  eval::TextTable table({"threads", "offline wall (s)", "speedup vs 1"});
  double baseline = 0.0;
  for (int64_t threads : {int64_t{1}, int64_t{2}, int64_t{4}, int64_t{8}}) {
    core::ExplorerOptions opt = BaseRunnerOptions(1, ConvexPsi()).explorer;
    opt.num_threads = threads;          // Subspace-level lanes.
    opt.trainer.num_threads = threads;  // Per-batch task lanes.
    core::Explorer explorer(opt);
    Rng rng(42);  // Same seed per row: identical work, identical model.
    Stopwatch sw;
    if (!explorer
             .Pretrain(sdss, SdssSubspaces(), /*train_meta=*/true, &rng)
             .ok()) {
      std::printf("pretrain failed at threads=%lld\n",
                  static_cast<long long>(threads));
      return;
    }
    const double wall = sw.ElapsedSeconds();
    if (threads == 1) baseline = wall;
    table.AddRow(std::to_string(threads),
                 {wall, baseline > 0.0 ? baseline / wall : 0.0}, 4);
  }
  table.Print();
}

void Run() {
  const Scale scale = GetScale();
  PrintHeader("Figure 6: online exploration time (seconds) w.r.t. budget");

  Rng rng(3);
  data::Table sdss = data::MakeSdssLike(scale.sdss_rows, &rng);
  // The runtime comparison needs a realistic pool: DSM/AL-SVM pay a full
  // pool scan (SVM decision + polytope three-set) every labelling batch, so
  // a trivially small pool would hide the cost the paper measures.
  eval::RunnerOptions options = BaseRunnerOptions(1, ConvexPsi());
  options.pool_rows = FullScale() ? 20000 : 4000;
  eval::ExperimentRunner runner(std::move(sdss), SdssSubspaces(), options);
  if (!runner.Init().ok()) {
    std::printf("runner init failed\n");
    return;
  }

  for (int64_t num_subspaces : {2, 4}) {  // 4D and 8D.
    std::vector<eval::GroundTruthUir> uirs;
    for (int64_t i = 0; i < scale.uirs_per_config; ++i) {
      uirs.push_back(
          runner.GenerateUir({"convex", 1, ConvexPsi()}, num_subspaces));
    }
    std::vector<std::string> header = {"method"};
    for (int64_t b : scale.budgets) header.push_back("B=" + std::to_string(b));
    eval::TextTable table(header);
    for (eval::Method m : {eval::Method::kDsm, eval::Method::kAlSvm,
                           eval::Method::kMetaStar}) {
      std::vector<double> row;
      for (int64_t b : scale.budgets) {
        double total = 0.0;
        bool ok = true;
        for (const auto& uir : uirs) {
          eval::ExperimentResult res;
          if (!runner.Run(m, uir, b, &res).ok()) {
            ok = false;
            break;
          }
          total += res.online_seconds;
        }
        row.push_back(ok ? total / static_cast<double>(uirs.size()) : -1.0);
      }
      table.AddRow(eval::MethodName(m), row, 4);
    }
    std::printf("\nFigure 6: %lldD online exploration time (s)\n",
                static_cast<long long>(2 * num_subspaces));
    table.Print();
  }
}

}  // namespace
}  // namespace lte::bench

int main() {
  lte::bench::Run();
  lte::bench::RunOfflineThreads();
  return 0;
}
