// Reproduces paper Figure 7: performance on generalized (concave /
// disconnected) UIRs.
//
//   Figure 7(a): F1 w.r.t. budget on CAR   (mode M1 UISs).
//   Figure 7(b): F1 w.r.t. budget on SDSS  (mode M1 UISs).
//   Figure 7(c): F1 w.r.t. dimension at B=30 with complex UIRs (SDSS).
//
// Expected shape (paper): all methods except plain SVM improve with budget
// (SVM stalls — kernel/hyper-parameter limits on complex regions); Meta and
// Meta* reach a given accuracy at a visibly smaller budget than Basic; the
// meta variants stay stable across dimensions.

#include "bench_common.h"
#include "eval/report.h"

namespace lte::bench {
namespace {

int64_t ScaledPsi(int64_t paper_psi) {
  return std::max<int64_t>(3, paper_psi * GetScale().k_u / 100);
}

const std::vector<eval::Method> kMethods = {
    eval::Method::kMetaStar, eval::Method::kMeta, eval::Method::kBasic,
    eval::Method::kSvmR, eval::Method::kSvm};

void BudgetSweep(const std::string& name, data::Table table,
                 std::vector<data::Subspace> subspaces, uint64_t seed) {
  const Scale scale = GetScale();
  eval::ExperimentRunner runner(std::move(table), std::move(subspaces),
                                BaseRunnerOptions(4, ScaledPsi(20), seed));
  if (!runner.Init().ok()) {
    std::printf("runner init failed for %s\n", name.c_str());
    return;
  }
  // Mode M1 test UIRs (alpha=4, psi=20 at paper scale) over a 2-subspace
  // conjunction — deeper conjunctions are the subject of Figure 7(c).
  const int64_t num_subspaces =
      std::min<int64_t>(2, static_cast<int64_t>(runner.subspaces().size()));
  std::vector<eval::GroundTruthUir> uirs;
  for (int64_t i = 0; i < scale.uirs_per_config; ++i) {
    uirs.push_back(runner.GenerateUir({"M1", 4, ScaledPsi(20)}, num_subspaces));
  }
  std::vector<std::string> header = {"method"};
  for (int64_t b : scale.budgets) header.push_back("B=" + std::to_string(b));
  eval::TextTable table_out(header);
  for (eval::Method m : kMethods) {
    std::vector<double> row;
    for (int64_t b : scale.budgets) {
      double f1 = 0.0;
      if (!runner.MeanF1(m, uirs, b, &f1).ok()) f1 = -1.0;
      row.push_back(f1);
    }
    table_out.AddRow(eval::MethodName(m), row);
  }
  std::printf("\nFigure 7 (%s): F1 w.r.t. budget on generalized UIRs\n",
              name.c_str());
  table_out.Print();
}

void DimensionSweep() {
  const Scale scale = GetScale();
  Rng rng(6);
  eval::ExperimentRunner runner(data::MakeSdssLike(scale.sdss_rows, &rng),
                                SdssSubspaces(),
                                BaseRunnerOptions(4, ScaledPsi(20), 77));
  if (!runner.Init().ok()) {
    std::printf("runner init failed\n");
    return;
  }
  const int64_t b30 = scale.budgets.size() > 1 ? scale.budgets[1] : 30;
  eval::TextTable table_out({"method", "2D", "4D", "6D", "8D"});
  std::vector<std::vector<eval::GroundTruthUir>> uirs_per_dim;
  for (int64_t d : {1, 2, 3, 4}) {
    std::vector<eval::GroundTruthUir> uirs;
    for (int64_t i = 0; i < scale.uirs_per_config; ++i) {
      uirs.push_back(runner.GenerateUir({"M1", 4, ScaledPsi(20)}, d));
    }
    uirs_per_dim.push_back(std::move(uirs));
  }
  for (eval::Method m : kMethods) {
    std::vector<double> row;
    for (const auto& uirs : uirs_per_dim) {
      double f1 = 0.0;
      if (!runner.MeanF1(m, uirs, b30, &f1).ok()) f1 = -1.0;
      row.push_back(f1);
    }
    table_out.AddRow(eval::MethodName(m), row);
  }
  std::printf("\nFigure 7(c): F1 w.r.t. dimension, complex UIRs (B=%lld)\n",
              static_cast<long long>(b30));
  table_out.Print();
}

void Run() {
  PrintHeader("Figure 7: generalized (concave/disconnected) UIRs");
  const Scale scale = GetScale();
  Rng rng(5);
  BudgetSweep("CAR", data::MakeCarLike(scale.car_rows, &rng), CarSubspaces(),
              51);
  BudgetSweep("SDSS", data::MakeSdssLike(scale.sdss_rows, &rng),
              SdssSubspaces(), 52);
  DimensionSweep();
}

}  // namespace
}  // namespace lte::bench

int main() {
  lte::bench::Run();
  return 0;
}
