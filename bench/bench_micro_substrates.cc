// Google-benchmark micro-benchmarks for the substrate libraries: k-means,
// convex hulls, the tabular encoder, the SMO solver, and the meta-learner's
// forward/adaptation paths. These are not paper figures; they document the
// per-component costs behind the end-to-end numbers (e.g. why Meta*'s online
// phase in Figure 6 is flat: it is `steps x AccumulateBatch`, independent of
// the budget-driven SVM retraining DSM pays).

#include <benchmark/benchmark.h>

#include "cluster/kmeans.h"
#include "core/lte.h"
#include "data/synthetic.h"
#include "geom/convex_hull.h"
#include "preprocess/tabular_encoder.h"
#include "svm/svm.h"

namespace {

std::vector<std::vector<double>> RandomPoints(int64_t n, int64_t dim,
                                              lte::Rng* rng) {
  std::vector<std::vector<double>> pts;
  pts.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    std::vector<double> p(static_cast<size_t>(dim));
    for (double& x : p) x = rng->Uniform();
    pts.push_back(std::move(p));
  }
  return pts;
}

void BM_KMeans(benchmark::State& state) {
  lte::Rng rng(1);
  const auto pts = RandomPoints(state.range(0), 2, &rng);
  lte::cluster::KMeansOptions opt;
  opt.k = 50;
  for (auto _ : state) {
    lte::cluster::KMeansResult res;
    benchmark::DoNotOptimize(lte::cluster::KMeans(pts, opt, &rng, &res));
  }
}
BENCHMARK(BM_KMeans)->Arg(1000)->Arg(4000);

void BM_ConvexHull(benchmark::State& state) {
  lte::Rng rng(2);
  std::vector<lte::geom::Point2> pts;
  for (int64_t i = 0; i < state.range(0); ++i) {
    pts.push_back({rng.Uniform(), rng.Uniform()});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lte::geom::ConvexHull(pts));
  }
}
BENCHMARK(BM_ConvexHull)->Arg(64)->Arg(1024);

void BM_RegionContains(benchmark::State& state) {
  lte::Rng rng(3);
  lte::geom::Region region;
  for (int part = 0; part < 4; ++part) {
    std::vector<std::vector<double>> group;
    for (int i = 0; i < 20; ++i) {
      group.push_back({rng.Uniform(), rng.Uniform()});
    }
    region.AddPart(lte::geom::ConvexRegion::HullOf(group));
  }
  const std::vector<double> probe = {0.5, 0.5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(region.Contains(probe));
  }
}
BENCHMARK(BM_RegionContains);

void BM_TabularEncoderFit(benchmark::State& state) {
  lte::Rng rng(4);
  const lte::data::Table table =
      lte::data::MakeSdssLike(state.range(0), &rng);
  for (auto _ : state) {
    lte::preprocess::TabularEncoder enc;
    benchmark::DoNotOptimize(enc.Fit(table, &rng));
  }
}
BENCHMARK(BM_TabularEncoderFit)->Arg(2000)->Arg(8000);

void BM_TabularEncodeRow(benchmark::State& state) {
  lte::Rng rng(5);
  const lte::data::Table table = lte::data::MakeSdssLike(2000, &rng);
  lte::preprocess::TabularEncoder enc;
  if (!enc.Fit(table, &rng).ok()) {
    state.SkipWithError("encoder fit failed");
    return;
  }
  const std::vector<double> row = table.Row(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.EncodeRow(row));
  }
}
BENCHMARK(BM_TabularEncodeRow);

void BM_SvmTrain(benchmark::State& state) {
  lte::Rng rng(6);
  const auto x = RandomPoints(state.range(0), 2, &rng);
  std::vector<double> y;
  for (const auto& p : x) y.push_back(p[0] + p[1] > 1.0 ? 1.0 : 0.0);
  for (auto _ : state) {
    lte::svm::Svm svm;
    benchmark::DoNotOptimize(
        svm.Train(x, y, lte::svm::Kernel{}, lte::svm::SmoOptions{}, &rng));
  }
}
BENCHMARK(BM_SvmTrain)->Arg(30)->Arg(105);

// The meta-learner's online fast-adaptation: the per-user cost of LTE's
// online phase (paper Figure 6's flat line).
void BM_TaskModelAdaptation(benchmark::State& state) {
  lte::Rng rng(7);
  lte::core::MetaLearnerOptions opt;
  opt.uis_feature_dim = 100;
  opt.tuple_feature_dim = 26;
  opt.embedding_size = 32;
  opt.clf_hidden = {32};
  lte::core::MetaLearner learner(opt, &rng);
  std::vector<double> v_r(100);
  for (double& b : v_r) b = rng.Bernoulli(0.3) ? 1.0 : 0.0;
  const auto x = RandomPoints(30, 26, &rng);
  std::vector<double> y;
  for (const auto& p : x) y.push_back(p[0] > 0.5 ? 1.0 : 0.0);
  for (auto _ : state) {
    lte::core::TaskModel tm = learner.CreateTaskModel(v_r);
    lte::core::LocallyAdapt(&tm, x, y, /*steps=*/30, /*batch_size=*/10,
                            /*lr=*/0.2, &rng);
    benchmark::DoNotOptimize(tm.Logit(x[0]));
  }
}
BENCHMARK(BM_TaskModelAdaptation);

void BM_TaskModelPredict(benchmark::State& state) {
  lte::Rng rng(8);
  lte::core::MetaLearnerOptions opt;
  opt.uis_feature_dim = 100;
  opt.tuple_feature_dim = 26;
  opt.embedding_size = 32;
  opt.clf_hidden = {32};
  lte::core::MetaLearner learner(opt, &rng);
  std::vector<double> v_r(100);
  for (double& b : v_r) b = rng.Bernoulli(0.3) ? 1.0 : 0.0;
  lte::core::TaskModel tm = learner.CreateTaskModel(v_r);
  const auto x = RandomPoints(1, 26, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tm.PredictProbability(x[0]));
  }
}
BENCHMARK(BM_TaskModelPredict);

}  // namespace

BENCHMARK_MAIN();
