// Label-noise robustness study (an extension beyond the paper's noise-free
// protocol): real users mislabel tuples — misclicks, borderline judgements —
// so a deployable explore-by-example system must degrade gracefully.
//
// Part 1 (methods): each method runs the standard generalized-UIR task (mode
// M1, 2-subspace conjunction, B=30) while the simulated user flips each
// label with probability p. Expected shape: the NN variants degrade smoothly
// (SGD on BCE averages noise out); DSM is brittle — a single flipped
// positive-region label poisons its convex polytope; Meta* keeps an edge
// because the FP/FN optimizer's geometric consensus dampens individual
// flips.
//
// Part 2 (exploration policies, DESIGN.md §2f): the iterative
// label-efficiency protocol sweeps every SuggestPolicy per noise level and
// emits F1-vs-labels curves. Two invariants feed the CI regression gate:
//   policy_bit_identical — every policy's full trajectory is bit-identical
//     at session thread counts 1 and 4;
//   bootstrap vs uncertainty under the noisiest oracle — the
//     query-by-committee vote smooths single-model miscalibration, so
//     bootstrap should hold or beat pure uncertainty sampling when labels
//     are noisy.

#include <cmath>

#include "bench_common.h"
#include "eval/report.h"

namespace lte::bench {
namespace {

int64_t ScaledPsi(int64_t paper_psi) {
  return std::max<int64_t>(3, paper_psi * GetScale().k_u / 100);
}

std::vector<policy::PolicyOptions> PolicyMenu() {
  std::vector<policy::PolicyOptions> menu(5);
  menu[0].kind = policy::PolicyKind::kUncertainty;
  menu[1].kind = policy::PolicyKind::kEpsilonGreedy;
  menu[1].epsilon = 0.2;
  menu[2].kind = policy::PolicyKind::kTauFirst;
  menu[2].tau = 10;
  menu[3].kind = policy::PolicyKind::kSoftmax;
  menu[3].softmax_lambda = 12.0;
  menu[4].kind = policy::PolicyKind::kBootstrap;
  menu[4].bootstrap_bags = 16;
  menu[4].bootstrap_sigma = 0.75;
  return menu;
}

struct PolicyCell {
  std::string policy;
  double noise = 0.0;
  double mean_final_f1 = 0.0;
  // Mean curve over the UIRs: cumulative labels -> mean F1 per round.
  std::vector<int64_t> labels;
  std::vector<double> f1;
};

bool SameTrajectory(const eval::PolicyTrajectory& a,
                    const eval::PolicyTrajectory& b) {
  return a.labels == b.labels && a.f1 == b.f1 &&
         a.total_labels == b.total_labels;
}

void Run() {
  const Scale scale = GetScale();
  PrintHeader("Label-noise robustness (extension study)");
  const int64_t b30 = scale.budgets.size() > 1 ? scale.budgets[1] : 30;
  const std::vector<double> noise_levels =
      SmokeMode() ? std::vector<double>{0.0, 0.20}
                  : std::vector<double>{0.0, 0.05, 0.10, 0.20};
  const std::vector<eval::Method> methods =
      SmokeMode() ? std::vector<eval::Method>{eval::Method::kMetaStar,
                                              eval::Method::kDsm}
                  : std::vector<eval::Method>{
                        eval::Method::kMetaStar, eval::Method::kMeta,
                        eval::Method::kBasic, eval::Method::kDsm};
  const int64_t num_uirs = SmokeMode() ? 6 : 2 * scale.uirs_per_config;

  // One runner (and so one trained model + one UIR family) per noise level,
  // shared by every method and every policy at that level.
  std::vector<std::string> header = {"method"};
  for (double p : noise_levels) {
    header.push_back("noise=" + eval::FormatDouble(p, 2));
  }
  eval::TextTable table(header);
  std::vector<std::vector<double>> method_f1(
      methods.size(), std::vector<double>(noise_levels.size(), -1.0));

  eval::PolicySweepOptions sweep;
  sweep.variant = core::Variant::kMeta;
  sweep.rounds = SmokeMode() ? 4 : 5;
  sweep.batch = 10;
  sweep.candidate_pool = 200;
  std::vector<PolicyCell> cells;
  bool policy_bit_identical = true;
  double uncertainty_noise_f1 = -1.0;
  double bootstrap_noise_f1 = -1.0;

  for (size_t ni = 0; ni < noise_levels.size(); ++ni) {
    const double noise = noise_levels[ni];
    Rng rng(31);
    eval::RunnerOptions opt = BaseRunnerOptions(4, ScaledPsi(20), 311);
    opt.label_noise = noise;
    if (SmokeMode()) {
      opt.explorer.num_meta_tasks = 40;
      opt.explorer.trainer.epochs = 1;
      opt.eval_sample_rows = 400;
    }
    eval::ExperimentRunner runner(
        data::MakeSdssLike(SmokeMode() ? 6000 : scale.sdss_rows, &rng),
        SdssSubspaces(), opt);
    if (!runner.Init().ok()) {
      std::printf("runner init failed at noise %.2f\n", noise);
      continue;
    }
    std::vector<eval::GroundTruthUir> uirs;
    for (int64_t i = 0; i < num_uirs; ++i) {
      uirs.push_back(runner.GenerateUir({"M1", 4, ScaledPsi(20)}, 2));
    }

    for (size_t mi = 0; mi < methods.size(); ++mi) {
      double f1 = 0.0;
      if (runner.MeanF1(methods[mi], uirs, b30, &f1).ok()) {
        method_f1[mi][ni] = f1;
      }
    }

    // Policy sweep at this noise level: mean F1-vs-labels curve per policy.
    for (const policy::PolicyOptions& popt : PolicyMenu()) {
      PolicyCell cell;
      cell.policy = policy::PolicyKindName(popt.kind);
      cell.noise = noise;
      double sum_final = 0.0;
      int64_t runs = 0;
      for (size_t ui = 0; ui < uirs.size(); ++ui) {
        sweep.policy = popt;
        sweep.session_seed = 0xBEC5u + 977 * ni + 131 * ui +
                             static_cast<uint64_t>(popt.kind);
        sweep.session_threads = 1;
        eval::PolicyTrajectory traj;
        if (!runner.RunLteIterative(sweep, uirs[ui], b30, &traj).ok()) {
          continue;
        }
        // The determinism contract: the same sweep at 4 session threads
        // reproduces the trajectory bit for bit (policies draw only from
        // the session-owned rng; adaptation lanes use keyed splits).
        sweep.session_threads = 4;
        eval::PolicyTrajectory traj4;
        if (!runner.RunLteIterative(sweep, uirs[ui], b30, &traj4).ok() ||
            !SameTrajectory(traj, traj4)) {
          policy_bit_identical = false;
        }
        if (cell.labels.empty()) {
          cell.labels = traj.labels;
          cell.f1.assign(traj.f1.size(), 0.0);
        }
        for (size_t r = 0; r < traj.f1.size() && r < cell.f1.size(); ++r) {
          cell.f1[r] += traj.f1[r];
        }
        sum_final += traj.final_f1;
        ++runs;
      }
      if (runs > 0) {
        for (double& v : cell.f1) v /= static_cast<double>(runs);
        cell.mean_final_f1 = sum_final / static_cast<double>(runs);
      }
      if (ni + 1 == noise_levels.size()) {
        if (popt.kind == policy::PolicyKind::kUncertainty) {
          uncertainty_noise_f1 = cell.mean_final_f1;
        }
        if (popt.kind == policy::PolicyKind::kBootstrap) {
          bootstrap_noise_f1 = cell.mean_final_f1;
        }
      }
      cells.push_back(std::move(cell));
    }
  }

  for (size_t mi = 0; mi < methods.size(); ++mi) {
    table.AddRow(eval::MethodName(methods[mi]), method_f1[mi]);
  }
  std::printf("\nF1 w.r.t. label-noise probability (SDSS, B=%lld)\n",
              static_cast<long long>(b30));
  table.Print();

  eval::TextTable ptable({"policy", "noise", "final F1", "labels"});
  for (const PolicyCell& c : cells) {
    ptable.AddRow(c.policy,
                  {c.noise, c.mean_final_f1,
                   c.labels.empty() ? 0.0
                                    : static_cast<double>(c.labels.back())});
  }
  std::printf("\nExploration-policy sweep (iterative protocol, Meta, "
              "%lld rounds x %lld labels/subspace/round)\n",
              static_cast<long long>(sweep.rounds),
              static_cast<long long>(sweep.batch));
  ptable.Print();
  std::printf("policies bit-identical across session threads {1,4}: %s\n",
              policy_bit_identical ? "yes"
                                   : "NO — determinism contract violated");
  std::printf("noisiest oracle: bootstrap F1 %.4f vs uncertainty F1 %.4f\n",
              bootstrap_noise_f1, uncertainty_noise_f1);

  const std::string json_path = JsonOutputPath();
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::printf("could not open %s for writing\n", json_path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"label_noise\",\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n",
                 SmokeMode() ? "smoke" : (FullScale() ? "full" : "scaled"));
    std::fprintf(f, "  \"budget\": %lld,\n", static_cast<long long>(b30));
    std::fprintf(f, "  \"policy_bit_identical\": %s,\n",
                 policy_bit_identical ? "true" : "false");
    std::fprintf(f, "  \"uncertainty_noise_f1\": %.6f,\n",
                 uncertainty_noise_f1);
    std::fprintf(f, "  \"bootstrap_noise_f1\": %.6f,\n", bootstrap_noise_f1);
    std::fprintf(f, "  \"bootstrap_holds_under_noise\": %s,\n",
                 bootstrap_noise_f1 + 1e-9 >= uncertainty_noise_f1 ? "true"
                                                                   : "false");
    std::fprintf(f, "  \"methods\": [\n");
    for (size_t mi = 0; mi < methods.size(); ++mi) {
      std::fprintf(f, "    {\"method\": \"%s\"",
                   eval::MethodName(methods[mi]).c_str());
      for (size_t ni = 0; ni < noise_levels.size(); ++ni) {
        std::fprintf(f, ", \"f1_noise_%02d\": %.6f",
                     static_cast<int>(std::lround(noise_levels[ni] * 100)),
                     method_f1[mi][ni]);
      }
      std::fprintf(f, "}%s\n", mi + 1 < methods.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"policy_sweep\": [\n");
    for (size_t i = 0; i < cells.size(); ++i) {
      const PolicyCell& c = cells[i];
      std::fprintf(f,
                   "    {\"policy\": \"%s\", \"noise\": %.2f, "
                   "\"final_f1\": %.6f, \"curve\": [",
                   c.policy.c_str(), c.noise, c.mean_final_f1);
      for (size_t r = 0; r < c.labels.size(); ++r) {
        std::fprintf(f, "{\"labels\": %lld, \"f1\": %.6f}%s",
                     static_cast<long long>(c.labels[r]), c.f1[r],
                     r + 1 < c.labels.size() ? ", " : "");
      }
      std::fprintf(f, "]}%s\n", i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote JSON results to %s\n", json_path.c_str());
  }
}

}  // namespace
}  // namespace lte::bench

int main() {
  lte::bench::Run();
  return 0;
}
