// Label-noise robustness study (an extension beyond the paper's noise-free
// protocol): real users mislabel tuples — misclicks, borderline judgements —
// so a deployable explore-by-example system must degrade gracefully.
//
// Each method runs the standard generalized-UIR task (mode M1, 2-subspace
// conjunction, B=30) while the simulated user flips each label with
// probability p ∈ {0, 5%, 10%, 20%}.
//
// Expected shape: the NN variants degrade smoothly (SGD on BCE averages
// noise out); DSM is brittle — a single flipped *positive-region* label
// poisons its convex polytope, and a flipped negative carves provably-wrong
// cones; Meta* keeps an edge because the FP/FN optimizer's geometric
// consensus over all positive centers dampens individual flips.

#include "bench_common.h"
#include "eval/report.h"

namespace lte::bench {
namespace {

int64_t ScaledPsi(int64_t paper_psi) {
  return std::max<int64_t>(3, paper_psi * GetScale().k_u / 100);
}

void Run() {
  const Scale scale = GetScale();
  PrintHeader("Label-noise robustness (extension study)");
  const int64_t b30 = scale.budgets.size() > 1 ? scale.budgets[1] : 30;
  const std::vector<double> noise_levels = {0.0, 0.05, 0.10, 0.20};

  std::vector<std::string> header = {"method"};
  for (double p : noise_levels) {
    header.push_back("noise=" + eval::FormatDouble(p, 2));
  }
  eval::TextTable table(header);

  const std::vector<eval::Method> methods = {
      eval::Method::kMetaStar, eval::Method::kMeta, eval::Method::kBasic,
      eval::Method::kDsm};
  for (eval::Method m : methods) {
    std::vector<double> row;
    for (double noise : noise_levels) {
      Rng rng(31);
      eval::RunnerOptions opt = BaseRunnerOptions(4, ScaledPsi(20), 311);
      opt.label_noise = noise;
      eval::ExperimentRunner runner(data::MakeSdssLike(scale.sdss_rows, &rng),
                                    SdssSubspaces(), opt);
      if (!runner.Init().ok()) {
        row.push_back(-1);
        continue;
      }
      std::vector<eval::GroundTruthUir> uirs;
      for (int64_t i = 0; i < 2 * scale.uirs_per_config; ++i) {
        uirs.push_back(runner.GenerateUir({"M1", 4, ScaledPsi(20)}, 2));
      }
      double f1 = 0.0;
      if (!runner.MeanF1(m, uirs, b30, &f1).ok()) f1 = -1;
      row.push_back(f1);
    }
    table.AddRow(eval::MethodName(m), row);
  }
  std::printf("\nF1 w.r.t. label-noise probability (SDSS, B=%lld)\n",
              static_cast<long long>(b30));
  table.Print();
}

}  // namespace
}  // namespace lte::bench

int main() {
  lte::bench::Run();
  return 0;
}
