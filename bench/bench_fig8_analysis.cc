// Reproduces paper Figure 8 ("Analysis"):
//
//   8(a) GMM vs. JKC: the tabular-representation ablation on the Basic
//        classifier (min-max only / GMM only / JKC only / both).
//   8(b) Pre-training cost w.r.t. the number of meta-tasks |T^M|.
//   8(c) Accuracy w.r.t. |T^M|.
//   8(d) Effect of meta-learning w.r.t. the online learning rate
//        (Meta vs. Basic).
//
// Expected shape (paper): (a) both > GMM-only > min-max-only (which barely
// trains); (b) generation+training cost grows linearly in |T^M|; (c)
// accuracy saturates early — a small task set already peaks; (d) Meta is
// far less sensitive to the learning rate than Basic and dominates at small
// rates.

#include "bench_common.h"
#include "eval/report.h"

namespace lte::bench {
namespace {

int64_t ScaledPsi(int64_t paper_psi) {
  return std::max<int64_t>(3, paper_psi * GetScale().k_u / 100);
}

// --- Figure 8(a): tabular representation ablation. -------------------------
void EncoderAblation() {
  const Scale scale = GetScale();
  const int64_t b30 = scale.budgets.size() > 1 ? scale.budgets[1] : 30;
  struct Variant {
    std::string name;
    preprocess::EncodingMode mode;
  };
  const std::vector<Variant> variants = {
      {"w/o GMM+JKC (min-max)", preprocess::EncodingMode::kMinMaxOnly},
      {"GMM only", preprocess::EncodingMode::kGmmOnly},
      {"JKC only", preprocess::EncodingMode::kJenksOnly},
      {"Basic (GMM+JKC)", preprocess::EncodingMode::kCombined},
  };
  eval::TextTable table({"representation", "F1 (2D)", "F1 (4D)"});
  for (const Variant& v : variants) {
    Rng rng(8);
    eval::RunnerOptions opt = BaseRunnerOptions(4, ScaledPsi(20), 81);
    opt.explorer.encoder.mode = v.mode;
    eval::ExperimentRunner runner(data::MakeSdssLike(scale.sdss_rows, &rng),
                                  SdssSubspaces(), opt);
    if (!runner.Init().ok()) continue;
    std::vector<double> row;
    for (int64_t dims : {1, 2}) {
      std::vector<eval::GroundTruthUir> uirs;
      for (int64_t i = 0; i < scale.uirs_per_config; ++i) {
        uirs.push_back(runner.GenerateUir({"M1", 4, ScaledPsi(20)}, dims));
      }
      double f1 = 0.0;
      if (!runner.MeanF1(eval::Method::kBasic, uirs, b30, &f1).ok()) f1 = -1;
      row.push_back(f1);
    }
    table.AddRow(v.name, row);
  }
  std::printf("\nFigure 8(a): GMM vs. JKC (Basic classifier, B=%lld)\n",
              static_cast<long long>(b30));
  table.Print();
}

// --- Figures 8(b) and 8(c): pre-training cost / accuracy vs |T^M|. ---------
void TaskCountSweep() {
  const Scale scale = GetScale();
  const int64_t b30 = scale.budgets.size() > 1 ? scale.budgets[1] : 30;
  const std::vector<int64_t> task_counts =
      FullScale() ? std::vector<int64_t>{1000, 5000, 10000, 15000}
                  : std::vector<int64_t>{30, 60, 120, 240};

  eval::TextTable cost({"dataset", "|T^M|", "gen-sec", "train-sec", "F1"});
  struct DatasetSpec {
    std::string name;
    bool sdss;
    uint64_t seed;
  };
  for (const DatasetSpec& ds :
       {DatasetSpec{"SDSS", true, 91}, DatasetSpec{"CAR", false, 92}}) {
    for (int64_t n_tasks : task_counts) {
      Rng rng(9);
      eval::RunnerOptions opt = BaseRunnerOptions(4, ScaledPsi(20), ds.seed);
      opt.explorer.num_meta_tasks = n_tasks;
      data::Table table = ds.sdss ? data::MakeSdssLike(scale.sdss_rows, &rng)
                                  : data::MakeCarLike(scale.car_rows, &rng);
      eval::ExperimentRunner runner(
          std::move(table), ds.sdss ? SdssSubspaces() : CarSubspaces(), opt);
      if (!runner.Init().ok()) continue;
      std::vector<eval::GroundTruthUir> uirs;
      for (int64_t i = 0; i < 2 * scale.uirs_per_config; ++i) {
        // 2-subspace UIRs: deep conjunctions are studied in Figure 7(c).
        uirs.push_back(runner.GenerateUir(
            {"M1", 4, ScaledPsi(20)},
            std::min<int64_t>(
                2, static_cast<int64_t>(runner.subspaces().size()))));
      }
      double f1 = 0.0;
      if (!runner.MeanF1(eval::Method::kMeta, uirs, b30, &f1).ok()) f1 = -1;
      cost.AddRow({ds.name, std::to_string(n_tasks),
                   eval::FormatDouble(runner.TaskGenSeconds(b30), 2),
                   eval::FormatDouble(runner.PretrainSeconds(b30), 2),
                   eval::FormatDouble(f1, 3)});
    }
  }
  std::printf("\nFigures 8(b)+8(c): pre-training cost and accuracy w.r.t. "
              "|T^M|\n");
  cost.Print();
}

// --- Figure 8(d): effect of the learning rate, Meta vs Basic. --------------
void LearningRateSweep() {
  const Scale scale = GetScale();
  const int64_t b30 = scale.budgets.size() > 1 ? scale.budgets[1] : 30;
  // At paper scale the sweep matches the paper's grid; scaled-down models
  // need proportionally larger rates to move at all, so the grid shifts.
  const std::vector<double> rates =
      FullScale() ? std::vector<double>{0.01, 0.001, 0.0001, 0.00005}
                  : std::vector<double>{0.5, 0.2, 0.05, 0.01};

  std::vector<std::string> header = {"method"};
  for (double r : rates) header.push_back("lr=" + eval::FormatDouble(r, 5));
  eval::TextTable table(header);

  for (eval::Method m : {eval::Method::kMeta, eval::Method::kBasic}) {
    std::vector<double> row;
    for (double lr : rates) {
      Rng rng(10);
      eval::RunnerOptions opt = BaseRunnerOptions(4, ScaledPsi(20), 101);
      opt.explorer.online_lr = lr;
      eval::ExperimentRunner runner(data::MakeSdssLike(scale.sdss_rows, &rng),
                                    SdssSubspaces(), opt);
      if (!runner.Init().ok()) {
        row.push_back(-1);
        continue;
      }
      std::vector<eval::GroundTruthUir> uirs;
      for (int64_t i = 0; i < 2 * scale.uirs_per_config; ++i) {
        uirs.push_back(runner.GenerateUir(
            {"M1", 4, ScaledPsi(20)},
            std::min<int64_t>(
                2, static_cast<int64_t>(runner.subspaces().size()))));
      }
      double f1 = 0.0;
      if (!runner.MeanF1(m, uirs, b30, &f1).ok()) f1 = -1;
      row.push_back(f1);
    }
    table.AddRow(eval::MethodName(m), row);
  }
  std::printf("\nFigure 8(d): F1 w.r.t. online learning rate (SDSS, B=%lld)\n",
              static_cast<long long>(b30));
  table.Print();
}

void Run() {
  PrintHeader("Figure 8: analysis (representation, pre-training cost, "
              "meta-learning effect)");
  EncoderAblation();
  TaskCountSweep();
  LearningRateSweep();
}

}  // namespace
}  // namespace lte::bench

int main() {
  lte::bench::Run();
  return 0;
}
