// Reproduces paper Figure 4: Learn-to-explore vs. baselines on SDSS with
// convex, conjunctive UIRs (the setting DSM's assumptions fit best).
//
//   Figure 4(a): F1-score vs. dimensionality (2-8D) at budget B=30.
//   Figure 4(b): labels needed to reach F1 = 0.75 vs. dimensionality.
//
// Expected shape (paper): all methods degrade with dimension; SVM-based
// methods (AL-SVM, DSM) drop sharply while NN-based methods (Basic, Meta,
// Meta*) stay stable; Meta* needs far fewer labels at 6-8D.

#include "bench_common.h"
#include "eval/report.h"

namespace lte::bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  PrintHeader("Figure 4: LTE vs. baselines w.r.t. dimensionality (SDSS)");

  Rng rng(1);
  data::Table sdss = data::MakeSdssLike(scale.sdss_rows, &rng);
  // Convex setting: alpha = 1 with a wide psi.
  eval::ExperimentRunner runner(std::move(sdss), SdssSubspaces(),
                                BaseRunnerOptions(1, ConvexPsi()));
  if (!runner.Init().ok()) {
    std::printf("runner init failed\n");
    return;
  }

  const std::vector<eval::Method> methods = {
      eval::Method::kAide, eval::Method::kAlSvm, eval::Method::kDsm,
      eval::Method::kBasic, eval::Method::kMeta, eval::Method::kMetaStar};
  const std::vector<int64_t> dims = {1, 2, 3, 4};  // Subspaces => 2,4,6,8D.

  // --- Figure 4(a): accuracy w.r.t. dimension, B = 30 (scaled). ---
  const int64_t b30 = scale.budgets.size() > 1 ? scale.budgets[1] : 30;
  eval::TextTable fig4a({"method", "2D", "4D", "6D", "8D"});
  // Pre-generate test UIRs per dimension so all methods see the same ones.
  std::vector<std::vector<eval::GroundTruthUir>> uirs_per_dim;
  for (int64_t d : dims) {
    std::vector<eval::GroundTruthUir> uirs;
    for (int64_t i = 0; i < scale.uirs_per_config; ++i) {
      uirs.push_back(runner.GenerateUir({"convex", 1, ConvexPsi()}, d));
    }
    uirs_per_dim.push_back(std::move(uirs));
  }
  for (eval::Method m : methods) {
    std::vector<double> row;
    for (size_t di = 0; di < dims.size(); ++di) {
      double f1 = 0.0;
      if (!runner.MeanF1(m, uirs_per_dim[di], b30, &f1).ok()) f1 = -1.0;
      row.push_back(f1);
    }
    fig4a.AddRow(eval::MethodName(m), row);
  }
  std::printf("\nFigure 4(a): F1-score w.r.t. dimension (B=%lld)\n",
              static_cast<long long>(b30));
  fig4a.Print();

  // --- Figure 4(b): labels needed for F1 >= target w.r.t. dimension. ---
  const double target = FullScale() ? 0.75 : 0.6;
  eval::TextTable fig4b({"method", "2D", "4D", "6D", "8D"});
  for (eval::Method m : methods) {
    std::vector<std::string> cells = {eval::MethodName(m)};
    for (size_t di = 0; di < dims.size(); ++di) {
      int64_t budget = -1;
      if (!runner
               .FindBudgetForTarget(m, uirs_per_dim[di], target,
                                    scale.budgets, &budget)
               .ok()) {
        budget = -1;
      }
      cells.push_back(budget < 0 ? (">" + std::to_string(scale.budgets.back()))
                                 : std::to_string(budget));
    }
    fig4b.AddRow(cells);
  }
  std::printf("\nFigure 4(b): labels needed to reach F1 >= %.2f\n", target);
  fig4b.Print();
}

}  // namespace
}  // namespace lte::bench

int main() {
  lte::bench::Run();
  return 0;
}
