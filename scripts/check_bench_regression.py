#!/usr/bin/env python3
"""CI bench-regression gate: compare bench JSON artifacts to a baseline.

Reads the checked-in baseline (scripts/bench_baseline.json), resolves each
check's metric inside the freshly produced BENCH_*.json artifacts, prints a
before/after markdown table (and appends it to $GITHUB_STEP_SUMMARY when
set), and exits non-zero if any enforced check fails.

Check semantics, per entry in the baseline's "checks" list:
  {"file": ..., "metric": ..., "equals": <value>}
      Exact match — used for deterministic invariants (bit-identity,
      encode amortization) that must hold on any host.
  {"file": ..., "metric": ..., "baseline": <num>, "direction": "higher",
   "threshold": 0.25}
      Numeric gate: "higher" means bigger is better and the check fails
      when actual < baseline * (1 - threshold); "lower" means smaller is
      better and fails when actual > baseline * (1 + threshold).
  "informational": true
      Reported in the table but never fails the job — for absolute
      throughput numbers that depend on the runner's hardware.
  "note": free-form, carried into the table.

Metric selectors are dotted paths into the artifact JSON; a segment may
filter a list by field values, e.g.:
    coalesced[sessions=16].speedup
    sweep[variant=Meta,threads=1].columnar_rows_per_s
"""

import argparse
import json
import os
import re
import sys

_SEGMENT = re.compile(r"^(?P<name>[^\[\]]+)(?:\[(?P<filters>[^\]]+)\])?$")


class MetricError(Exception):
    pass


def values_equal(actual, expected):
    """Type-aware equality for "equals" gates.

    Python's == conflates bool with int (True == 1), so a baseline of
    `true` would silently accept an artifact that emits `1` (and vice
    versa) even though the bench changed its output type. Booleans only
    match booleans; int and float cross-compare numerically (5 == 5.0 is
    fine — JSON round-trips can change numeric representation); anything
    else falls back to plain equality between same-typed values.
    """
    if isinstance(actual, bool) or isinstance(expected, bool):
        return isinstance(actual, bool) and isinstance(expected, bool) and actual == expected
    if isinstance(actual, (int, float)) and isinstance(expected, (int, float)):
        return float(actual) == float(expected)
    return type(actual) is type(expected) and actual == expected


def field_matches(field, want):
    """Matches one list-filter selector value against an element field.

    Selector values arrive as strings; artifact fields are typed JSON.
    Booleans match "true"/"false", numbers match numerically (so the
    selector [threads=1] finds an element whose field is 1, 1.0, or "1"),
    everything else falls back to string equality.
    """
    if isinstance(field, bool):
        return want.lower() in ("true", "false") and field == (want.lower() == "true")
    if isinstance(field, (int, float)):
        try:
            return float(field) == float(want)
        except ValueError:
            return False
    return str(field) == want


def resolve(doc, path):
    """Walks `doc` down a dotted selector path, filtering lists by [k=v,...]."""
    node = doc
    for segment in path.split("."):
        m = _SEGMENT.match(segment)
        if m is None:
            raise MetricError(f"bad selector segment {segment!r}")
        name = m.group("name")
        if not isinstance(node, dict) or name not in node:
            raise MetricError(f"no field {name!r} (selector {path!r})")
        node = node[name]
        if m.group("filters") is not None:
            if not isinstance(node, list):
                raise MetricError(f"{name!r} is not a list (selector {path!r})")
            wanted = dict(kv.split("=", 1) for kv in m.group("filters").split(","))
            hits = [
                e
                for e in node
                if isinstance(e, dict)
                and all(field_matches(e.get(k), v) for k, v in wanted.items())
            ]
            if len(hits) != 1:
                raise MetricError(
                    f"filter [{m.group('filters')}] matched {len(hits)} "
                    f"elements of {name!r} (selector {path!r})"
                )
            node = hits[0]
    return node


def fmt(value):
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def run_check(check, artifacts):
    """Returns (status, baseline_repr, actual_repr, detail).

    status is one of "ok", "info", "FAIL".
    """
    informational = bool(check.get("informational", False))
    fail = "info" if informational else "FAIL"
    name = check["file"]
    if name not in artifacts:
        return (fail, "-", "missing artifact", f"{name} not found")
    try:
        actual = resolve(artifacts[name], check["metric"])
    except MetricError as e:
        return (fail, "-", "missing metric", str(e))

    if "equals" in check:
        expected = check["equals"]
        status = "ok" if values_equal(actual, expected) else fail
        return (status, fmt(expected), fmt(actual), "exact")

    baseline = float(check["baseline"])
    threshold = float(check.get("threshold", 0.25))
    direction = check.get("direction", "higher")
    try:
        value = float(actual)
    except (TypeError, ValueError):
        return (fail, fmt(baseline), fmt(actual), "not numeric")
    if informational:
        status = "info"
    elif direction == "higher":
        status = "ok" if value >= baseline * (1.0 - threshold) else "FAIL"
    elif direction == "lower":
        status = "ok" if value <= baseline * (1.0 + threshold) else "FAIL"
    else:
        return (fail, fmt(baseline), fmt(actual), f"bad direction {direction!r}")
    delta = (value - baseline) / baseline if baseline != 0.0 else float("inf")
    return (status, fmt(baseline), fmt(value), f"{delta:+.1%} ({direction} is better)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default="scripts/bench_baseline.json")
    parser.add_argument(
        "--dir", default=".", help="directory holding the BENCH_*.json artifacts"
    )
    parser.add_argument(
        "--summary",
        default=os.environ.get("GITHUB_STEP_SUMMARY", ""),
        help="markdown summary file to append to (defaults to CI step summary)",
    )
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)

    artifacts = {}
    for check in baseline["checks"]:
        name = check["file"]
        path = os.path.join(args.dir, name)
        if name not in artifacts and os.path.exists(path):
            with open(path, encoding="utf-8") as f:
                artifacts[name] = json.load(f)

    lines = [
        "### Bench regression gate",
        "",
        "| check | baseline | actual | delta | status |",
        "|---|---|---|---|---|",
    ]
    failed = 0
    for check in baseline["checks"]:
        status, base_repr, actual_repr, detail = run_check(check, artifacts)
        if status == "FAIL":
            failed += 1
        label = f"{check['file'].removeprefix('BENCH_').removesuffix('.json')}: {check['metric']}"
        if check.get("note"):
            label += f" ({check['note']})"
        icon = {"ok": "✅", "info": "ℹ️", "FAIL": "❌"}[status]
        lines.append(
            f"| {label} | {base_repr} | {actual_repr} | {detail} | {icon} {status} |"
        )
    lines.append("")
    lines.append(
        f"{failed} enforced check(s) failed."
        if failed
        else "All enforced checks passed."
    )
    report = "\n".join(lines) + "\n"

    sys.stdout.write(report)
    if args.summary:
        with open(args.summary, "a", encoding="utf-8") as f:
            f.write(report)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
