#!/usr/bin/env python3
"""Unit tests for check_bench_regression.py (run by ctest when python3 exists).

Regression coverage for two gate bugs:
  * "equals" used plain ==, and Python conflates bool with int
    (True == 1), so an artifact that switched a boolean invariant to the
    number 1 still passed the gate.
  * resolve()'s list filters compared str(field) == selector, so the
    selector [threads=1] never matched an element whose field was the
    JSON number 1.0 ("1.0" != "1").
"""

import unittest

import check_bench_regression as cbr


class ValuesEqualTest(unittest.TestCase):
    def test_bool_matches_only_bool(self):
        self.assertTrue(cbr.values_equal(True, True))
        self.assertTrue(cbr.values_equal(False, False))
        self.assertFalse(cbr.values_equal(True, False))
        # The regression: True == 1 in Python, but the gate must reject it.
        self.assertFalse(cbr.values_equal(True, 1))
        self.assertFalse(cbr.values_equal(1, True))
        self.assertFalse(cbr.values_equal(False, 0))
        self.assertFalse(cbr.values_equal(0.0, False))

    def test_numeric_cross_type(self):
        self.assertTrue(cbr.values_equal(5, 5.0))
        self.assertTrue(cbr.values_equal(5.0, 5))
        self.assertFalse(cbr.values_equal(5, 6.0))

    def test_other_types_need_same_type(self):
        self.assertTrue(cbr.values_equal("ok", "ok"))
        self.assertFalse(cbr.values_equal("1", 1))
        self.assertFalse(cbr.values_equal(None, 0))


class FieldMatchesTest(unittest.TestCase):
    def test_numeric_field_matches_selector_string(self):
        # The regression: a JSON field of 1.0 must match the selector "1".
        self.assertTrue(cbr.field_matches(1.0, "1"))
        self.assertTrue(cbr.field_matches(1, "1"))
        self.assertTrue(cbr.field_matches(1, "1.0"))
        self.assertFalse(cbr.field_matches(2, "1"))
        self.assertFalse(cbr.field_matches(1.5, "abc"))

    def test_bool_field(self):
        self.assertTrue(cbr.field_matches(True, "true"))
        self.assertTrue(cbr.field_matches(False, "false"))
        self.assertFalse(cbr.field_matches(True, "false"))
        self.assertFalse(cbr.field_matches(True, "1"))

    def test_string_field(self):
        self.assertTrue(cbr.field_matches("Meta", "Meta"))
        self.assertFalse(cbr.field_matches("Meta", "meta"))


class ResolveTest(unittest.TestCase):
    DOC = {
        "sweep": [
            {"variant": "Meta", "threads": 1.0, "rows_per_s": 10.0},
            {"variant": "Meta", "threads": 4, "rows_per_s": 30.0},
            {"variant": "AL", "threads": 1.0, "rows_per_s": 5.0},
        ],
        "parity": {"identical": True},
    }

    def test_numeric_filter_matches_float_field(self):
        got = cbr.resolve(self.DOC, "sweep[variant=Meta,threads=1].rows_per_s")
        self.assertEqual(got, 10.0)

    def test_int_field(self):
        got = cbr.resolve(self.DOC, "sweep[variant=Meta,threads=4].rows_per_s")
        self.assertEqual(got, 30.0)

    def test_dotted_path(self):
        self.assertIs(cbr.resolve(self.DOC, "parity.identical"), True)

    def test_no_match_raises(self):
        with self.assertRaises(cbr.MetricError):
            cbr.resolve(self.DOC, "sweep[variant=Meta,threads=2].rows_per_s")

    def test_ambiguous_match_raises(self):
        with self.assertRaises(cbr.MetricError):
            cbr.resolve(self.DOC, "sweep[variant=Meta].rows_per_s")


class RunCheckTest(unittest.TestCase):
    ARTIFACTS = {
        "BENCH_x.json": {
            "flag": True,
            "count": 1,
            "rows_per_s": 80.0,
        }
    }

    def test_equals_bool_vs_number_fails(self):
        check = {"file": "BENCH_x.json", "metric": "count", "equals": True}
        status, _, _, _ = cbr.run_check(check, self.ARTIFACTS)
        self.assertEqual(status, "FAIL")

    def test_equals_bool_ok(self):
        check = {"file": "BENCH_x.json", "metric": "flag", "equals": True}
        status, _, _, _ = cbr.run_check(check, self.ARTIFACTS)
        self.assertEqual(status, "ok")

    def test_numeric_gate(self):
        check = {
            "file": "BENCH_x.json",
            "metric": "rows_per_s",
            "baseline": 100.0,
            "direction": "higher",
            "threshold": 0.25,
        }
        status, _, _, _ = cbr.run_check(check, self.ARTIFACTS)
        self.assertEqual(status, "ok")
        check["threshold"] = 0.1
        status, _, _, _ = cbr.run_check(check, self.ARTIFACTS)
        self.assertEqual(status, "FAIL")

    def test_informational_never_fails(self):
        check = {
            "file": "BENCH_x.json",
            "metric": "count",
            "equals": True,
            "informational": True,
        }
        status, _, _, _ = cbr.run_check(check, self.ARTIFACTS)
        self.assertEqual(status, "info")


if __name__ == "__main__":
    unittest.main()
