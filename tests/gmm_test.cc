#include "preprocess/gmm.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace lte::preprocess {
namespace {

std::vector<double> BimodalSample(Rng* rng, int n_per_mode = 500) {
  std::vector<double> v;
  for (int i = 0; i < n_per_mode; ++i) v.push_back(rng->Normal(0.0, 0.5));
  for (int i = 0; i < n_per_mode; ++i) v.push_back(rng->Normal(10.0, 0.5));
  return v;
}

TEST(GmmTest, RecoversBimodalMeans) {
  Rng rng(1);
  const std::vector<double> v = BimodalSample(&rng);
  GaussianMixture g;
  ASSERT_TRUE(g.Fit(v, 2, &rng).ok());
  std::vector<double> means = {g.components()[0].mean, g.components()[1].mean};
  std::sort(means.begin(), means.end());
  EXPECT_NEAR(means[0], 0.0, 0.3);
  EXPECT_NEAR(means[1], 10.0, 0.3);
}

TEST(GmmTest, WeightsSumToOne) {
  Rng rng(2);
  const std::vector<double> v = BimodalSample(&rng);
  GaussianMixture g;
  ASSERT_TRUE(g.Fit(v, 3, &rng).ok());
  double total = 0.0;
  for (const auto& c : g.components()) total += c.weight;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(GmmTest, MostLikelyComponentSeparatesModes) {
  Rng rng(3);
  const std::vector<double> v = BimodalSample(&rng);
  GaussianMixture g;
  ASSERT_TRUE(g.Fit(v, 2, &rng).ok());
  EXPECT_NE(g.MostLikelyComponent(0.0), g.MostLikelyComponent(10.0));
  EXPECT_EQ(g.MostLikelyComponent(0.2), g.MostLikelyComponent(-0.2));
}

TEST(GmmTest, NormalizeWithinStaysInUnitInterval) {
  Rng rng(4);
  const std::vector<double> v = BimodalSample(&rng);
  GaussianMixture g;
  ASSERT_TRUE(g.Fit(v, 2, &rng).ok());
  for (double x : {-5.0, 0.0, 5.0, 10.0, 20.0}) {
    const int64_t c = g.MostLikelyComponent(x);
    const double n = g.NormalizeWithin(c, x);
    EXPECT_GE(n, 0.0);
    EXPECT_LE(n, 1.0);
  }
  // The component mean normalizes to the middle of its range.
  const int64_t c = g.MostLikelyComponent(0.0);
  EXPECT_NEAR(g.NormalizeWithin(c, g.components()[c].mean), 0.5, 1e-9);
}

TEST(GmmTest, MixtureLikelihoodBeatsSingleGaussianOnBimodalData) {
  Rng rng(5);
  const std::vector<double> v = BimodalSample(&rng);
  GaussianMixture g2;
  GaussianMixture g1;
  ASSERT_TRUE(g2.Fit(v, 2, &rng).ok());
  ASSERT_TRUE(g1.Fit(v, 1, &rng).ok());
  EXPECT_GT(g2.MeanLogLikelihood(v), g1.MeanLogLikelihood(v) + 0.5);
}

TEST(GmmTest, InvalidArguments) {
  Rng rng(6);
  GaussianMixture g;
  EXPECT_FALSE(g.Fit({1.0, 2.0}, 0, &rng).ok());
  EXPECT_FALSE(g.Fit({1.0}, 2, &rng).ok());
}

TEST(GmmTest, ConstantDataDoesNotCrash) {
  Rng rng(7);
  const std::vector<double> v(100, 5.0);
  GaussianMixture g;
  ASSERT_TRUE(g.Fit(v, 2, &rng).ok());
  EXPECT_EQ(g.MostLikelyComponent(5.0),
            g.MostLikelyComponent(5.0));  // Stable.
  const int64_t c = g.MostLikelyComponent(5.0);
  EXPECT_GE(g.NormalizeWithin(c, 5.0), 0.0);
}

}  // namespace
}  // namespace lte::preprocess
