#include "core/explorer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <iterator>
#include <numeric>
#include <set>
#include <string>

#include "data/synthetic.h"

namespace lte::core {
namespace {

ExplorerOptions SmallExplorerOptions() {
  ExplorerOptions opt;
  opt.task_gen.k_u = 30;
  opt.task_gen.k_s = 10;
  opt.task_gen.k_q = 30;
  opt.task_gen.delta = 5;
  opt.task_gen.alpha = 2;
  opt.task_gen.psi = 8;
  opt.learner.embedding_size = 12;
  opt.learner.clf_hidden = {12};
  opt.learner.num_memory_modes = 3;
  opt.num_meta_tasks = 25;
  opt.trainer.epochs = 3;
  opt.trainer.task_batch_size = 10;
  opt.trainer.local_steps = 6;
  opt.trainer.local_lr = 0.2;
  opt.trainer.global_lr = 0.1;
  opt.online_steps = 25;
  opt.online_lr = 0.2;
  opt.encoder.num_gmm_components = 3;
  opt.encoder.num_jenks_intervals = 3;
  return opt;
}

class ExplorerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(23);
    table_ = data::MakeBlobs(4000, 4, 5, rng_.get());
    subspaces_ = {data::Subspace{{0, 1}}, data::Subspace{{2, 3}}};
  }

  std::unique_ptr<Rng> rng_;
  data::Table table_;
  std::vector<data::Subspace> subspaces_;
};

TEST_F(ExplorerTest, PretrainWithoutMetaPreparesContexts) {
  Explorer ex(SmallExplorerOptions());
  ASSERT_TRUE(ex.Pretrain(table_, subspaces_, /*train_meta=*/false,
                          rng_.get())
                  .ok());
  EXPECT_EQ(ex.num_subspaces(), 2);
  EXPECT_FALSE(ex.meta_trained());
  ASSERT_NE(ex.InitialTuples(0), nullptr);
  EXPECT_EQ(ex.InitialTuples(0)->size(), 15u);  // k_s + delta.
  EXPECT_DOUBLE_EQ(ex.meta_training_seconds(), 0.0);
}

TEST_F(ExplorerTest, OfflineTrainingIsThreadCountInvariant) {
  // The per-subspace fan-out must not change the trained model: every
  // subspace trains on its own Rng::Fork(s) stream, so one lane and four
  // lanes serialize to the very same bytes. (Trainer options are not part
  // of the serialized state, so a byte comparison is exact.)
  auto pretrain_bytes = [&](int64_t threads) {
    ExplorerOptions opt = SmallExplorerOptions();
    opt.num_threads = threads;
    opt.trainer.num_threads = threads;
    Explorer ex(opt);
    Rng rng(23);
    EXPECT_TRUE(
        ex.Pretrain(table_, subspaces_, /*train_meta=*/true, &rng).ok());
    const std::string path =
        testing::TempDir() + "lte_threads_" + std::to_string(threads) +
        ".ltemodel";
    EXPECT_TRUE(ex.Save(path).ok());
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string sequential = pretrain_bytes(1);
  const std::string parallel4 = pretrain_bytes(4);
  ASSERT_FALSE(sequential.empty());
  EXPECT_EQ(sequential, parallel4);
}

TEST_F(ExplorerTest, MetaVariantRequiresMetaTraining) {
  Explorer ex(SmallExplorerOptions());
  ASSERT_TRUE(
      ex.Pretrain(table_, subspaces_, /*train_meta=*/false, rng_.get()).ok());
  std::vector<std::vector<double>> labels(2);
  for (int s = 0; s < 2; ++s) {
    labels[static_cast<size_t>(s)].assign(ex.InitialTuples(s)->size(), 0.0);
    labels[static_cast<size_t>(s)][0] = 1.0;
  }
  const Status status =
      ex.StartExploration(labels, Variant::kMeta, rng_.get());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  // Basic works without meta-training.
  EXPECT_TRUE(ex.StartExploration(labels, Variant::kBasic, rng_.get()).ok());
}

TEST_F(ExplorerTest, EndToEndBasicExploration) {
  Explorer ex(SmallExplorerOptions());
  ASSERT_TRUE(
      ex.Pretrain(table_, subspaces_, /*train_meta=*/false, rng_.get()).ok());

  // Ground truth: interesting iff attr0 below its median (per subspace 0)
  // — a simple axis-aligned region.
  const double median0 = 0.5 * (table_.column(0).min() + table_.column(0).max());
  std::vector<std::vector<double>> labels(2);
  for (int s = 0; s < 2; ++s) {
    for (const auto& tuple : *ex.InitialTuples(s)) {
      const bool interesting = s == 0 ? tuple[0] < median0 : true;
      labels[static_cast<size_t>(s)].push_back(interesting ? 1.0 : 0.0);
    }
  }
  ASSERT_TRUE(ex.StartExploration(labels, Variant::kBasic, rng_.get()).ok());
  EXPECT_EQ(ex.active_subspaces(), 2);

  // Prediction shape checks on arbitrary rows.
  for (int64_t r = 0; r < 10; ++r) {
    const double p = ex.PredictRow(table_.Row(r)).value_or(-1.0);
    EXPECT_TRUE(p == 0.0 || p == 1.0);
  }
}

TEST_F(ExplorerTest, MetaAndMetaStarExploration) {
  Explorer ex(SmallExplorerOptions());
  ASSERT_TRUE(
      ex.Pretrain(table_, subspaces_, /*train_meta=*/true, rng_.get()).ok());
  EXPECT_TRUE(ex.meta_trained());
  EXPECT_GT(ex.meta_training_seconds(), 0.0);
  EXPECT_GT(ex.task_generation_seconds(), 0.0);

  std::vector<std::vector<double>> labels(2);
  for (int s = 0; s < 2; ++s) {
    for (const auto& tuple : *ex.InitialTuples(s)) {
      labels[static_cast<size_t>(s)].push_back(tuple[0] < 5.0 ? 1.0 : 0.0);
    }
  }
  ASSERT_TRUE(ex.StartExploration(labels, Variant::kMeta, rng_.get()).ok());
  const double meta_pred = ex.PredictRow(table_.Row(0)).value_or(-1.0);
  EXPECT_TRUE(meta_pred == 0.0 || meta_pred == 1.0);

  ASSERT_TRUE(
      ex.StartExploration(labels, Variant::kMetaStar, rng_.get()).ok());
  // Meta*'s FP repair: a far-away point must be negative.
  std::vector<double> far_row = {1e6, 1e6, 1e6, 1e6};
  EXPECT_DOUBLE_EQ(ex.PredictRow(far_row).value_or(-1.0), 0.0);
}

TEST_F(ExplorerTest, PrefixExploration) {
  Explorer ex(SmallExplorerOptions());
  ASSERT_TRUE(
      ex.Pretrain(table_, subspaces_, /*train_meta=*/false, rng_.get()).ok());
  std::vector<std::vector<double>> labels(1);
  labels[0].assign(ex.InitialTuples(0)->size(), 1.0);
  ASSERT_TRUE(ex.StartExploration(labels, Variant::kBasic, rng_.get()).ok());
  EXPECT_EQ(ex.active_subspaces(), 1);
  // PredictRow conjoins only the first subspace.
  const double p = ex.PredictRow(table_.Row(0)).value_or(-1.0);
  EXPECT_TRUE(p == 0.0 || p == 1.0);
}

TEST_F(ExplorerTest, LabelShapeMismatchRejected) {
  Explorer ex(SmallExplorerOptions());
  ASSERT_TRUE(
      ex.Pretrain(table_, subspaces_, /*train_meta=*/false, rng_.get()).ok());
  std::vector<std::vector<double>> labels(2);
  labels[0].assign(3, 1.0);  // Wrong size.
  labels[1].assign(ex.InitialTuples(1)->size(), 1.0);
  EXPECT_FALSE(ex.StartExploration(labels, Variant::kBasic, rng_.get()).ok());
  // Too many label sets.
  std::vector<std::vector<double>> too_many(3);
  EXPECT_FALSE(
      ex.StartExploration(too_many, Variant::kBasic, rng_.get()).ok());
}

TEST_F(ExplorerTest, EncoderOptionsPropagate) {
  ExplorerOptions opt = SmallExplorerOptions();
  opt.encoder.mode = preprocess::EncodingMode::kMinMaxOnly;
  Explorer minmax(opt);
  ASSERT_TRUE(
      minmax.Pretrain(table_, subspaces_, /*train_meta=*/false, rng_.get())
          .ok());
  // Min-max encoding is one value per attribute.
  EXPECT_EQ(minmax.encoder().ProjectedWidth({0, 1}), 2);

  opt.encoder.mode = preprocess::EncodingMode::kCombined;
  Explorer combined(opt);
  ASSERT_TRUE(
      combined.Pretrain(table_, subspaces_, /*train_meta=*/false, rng_.get())
          .ok());
  EXPECT_GT(combined.encoder().ProjectedWidth({0, 1}), 2);
}

TEST_F(ExplorerTest, SuggestTuplesRanksByUncertainty) {
  Explorer ex(SmallExplorerOptions());
  ASSERT_TRUE(
      ex.Pretrain(table_, subspaces_, /*train_meta=*/false, rng_.get()).ok());
  std::vector<std::vector<double>> labels(1);
  for (const auto& t : *ex.InitialTuples(0)) {
    labels[0].push_back(t[0] < 5.0 ? 1.0 : 0.0);
  }
  ASSERT_TRUE(ex.StartExploration(labels, Variant::kBasic, rng_.get()).ok());

  std::vector<std::vector<double>> candidates;
  for (int64_t r = 0; r < 200; ++r) {
    const std::vector<double> row = table_.Row(r);
    candidates.push_back({row[0], row[1]});
  }
  std::vector<int64_t> picked;
  ASSERT_TRUE(ex.SuggestTuples(0, candidates, 5, &picked).ok());
  ASSERT_EQ(picked.size(), 5u);
  // Every index valid and distinct.
  std::set<int64_t> uniq(picked.begin(), picked.end());
  EXPECT_EQ(uniq.size(), 5u);
  for (int64_t i : picked) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 200);
  }
  // k larger than the candidate set clamps.
  ASSERT_TRUE(ex.SuggestTuples(0, candidates, 1000, &picked).ok());
  EXPECT_EQ(picked.size(), 200u);
}

TEST_F(ExplorerTest, ContinueExplorationRefinesModel) {
  Explorer ex(SmallExplorerOptions());
  ASSERT_TRUE(
      ex.Pretrain(table_, subspaces_, /*train_meta=*/false, rng_.get()).ok());
  const double threshold = 5.0;
  std::vector<std::vector<double>> labels(1);
  for (const auto& t : *ex.InitialTuples(0)) {
    labels[0].push_back(t[0] < threshold ? 1.0 : 0.0);
  }
  ASSERT_TRUE(ex.StartExploration(labels, Variant::kBasic, rng_.get()).ok());

  // Accuracy over a probe set before and after extra labelled rounds.
  auto accuracy = [&]() {
    int correct = 0;
    for (int64_t r = 0; r < 600; ++r) {
      const std::vector<double> row = table_.Row(r);
      const std::vector<double> p = {row[0], row[1]};
      const double truth = p[0] < threshold ? 1.0 : 0.0;
      if (ex.PredictSubspace(0, p).value_or(-1.0) == truth) ++correct;
    }
    return static_cast<double>(correct) / 600.0;
  };
  const double before = accuracy();
  // Feed 100 extra labelled tuples (cumulative with the initial ones).
  std::vector<std::vector<double>> points;
  std::vector<double> extra_labels;
  for (int64_t r = 0; r < 100; ++r) {
    const std::vector<double> row = table_.Row(r);
    points.push_back({row[0], row[1]});
    extra_labels.push_back(row[0] < threshold ? 1.0 : 0.0);
  }
  ASSERT_TRUE(
      ex.ContinueExploration(0, points, extra_labels, rng_.get()).ok());
  EXPECT_GE(accuracy(), before - 0.05);  // Must not collapse...
  EXPECT_GT(accuracy(), 0.7);            // ...and should be decent.

  // Invalid uses.
  EXPECT_FALSE(ex.ContinueExploration(5, points, extra_labels, rng_.get())
                   .ok());  // Inactive subspace.
  EXPECT_FALSE(ex.ContinueExploration(0, points, {1.0}, rng_.get()).ok());
  EXPECT_FALSE(ex.ContinueExploration(0, {}, {}, rng_.get()).ok());
  // Null rng is a misuse error, not a crash (regression).
  EXPECT_FALSE(ex.ContinueExploration(0, points, extra_labels, nullptr).ok());
  // The facade still serves queries after the rejected call.
  EXPECT_TRUE(ex.PredictSubspace(0, {1.0, 1.0}).has_value());
}

TEST_F(ExplorerTest, RetrieveMatchesReturnsPredictedRows) {
  Explorer ex(SmallExplorerOptions());
  ASSERT_TRUE(
      ex.Pretrain(table_, subspaces_, /*train_meta=*/false, rng_.get()).ok());
  std::vector<std::vector<double>> labels(2);
  for (int s = 0; s < 2; ++s) {
    for (const auto& t : *ex.InitialTuples(s)) {
      labels[static_cast<size_t>(s)].push_back(t[0] < 5.0 ? 1.0 : 0.0);
    }
  }
  ASSERT_TRUE(ex.StartExploration(labels, Variant::kBasic, rng_.get()).ok());
  std::vector<int64_t> matches;
  ASSERT_TRUE(ex.RetrieveMatches(table_, /*limit=*/-1, &matches).ok());
  for (int64_t r : matches) {
    EXPECT_DOUBLE_EQ(ex.PredictRow(table_.Row(r)).value_or(-1.0), 1.0);
  }
  // A limit caps and preserves the prefix.
  if (matches.size() > 3) {
    std::vector<int64_t> limited;
    ASSERT_TRUE(ex.RetrieveMatches(table_, 3, &limited).ok());
    ASSERT_EQ(limited.size(), 3u);
    EXPECT_EQ(limited[0], matches[0]);
    EXPECT_EQ(limited[2], matches[2]);
  }
  // limit == 0 is an empty result, not "scan everything".
  std::vector<int64_t> none = {123};
  ASSERT_TRUE(ex.RetrieveMatches(table_, 0, &none).ok());
  EXPECT_TRUE(none.empty());
}

TEST_F(ExplorerTest, OneDimensionalSubspaceEndToEnd) {
  // A 5-attribute table split as 2D + 2D + 1D (the CAR layout).
  data::Table table = data::MakeBlobs(4000, 5, 4, rng_.get());
  std::vector<data::Subspace> subspaces = {
      data::Subspace{{0, 1}}, data::Subspace{{2, 3}}, data::Subspace{{4}}};
  Explorer ex(SmallExplorerOptions());
  ASSERT_TRUE(
      ex.Pretrain(table, subspaces, /*train_meta=*/true, rng_.get()).ok());
  std::vector<std::vector<double>> labels(3);
  for (int s = 0; s < 3; ++s) {
    for (const auto& t : *ex.InitialTuples(s)) {
      labels[static_cast<size_t>(s)].push_back(t[0] < 5.0 ? 1.0 : 0.0);
    }
  }
  ASSERT_TRUE(
      ex.StartExploration(labels, Variant::kMetaStar, rng_.get()).ok());
  for (int64_t r = 0; r < 20; ++r) {
    const double p = ex.PredictRow(table.Row(r)).value_or(-1.0);
    EXPECT_TRUE(p == 0.0 || p == 1.0);
  }
}

TEST_F(ExplorerTest, StartBeforePretrainFails) {
  Explorer ex(SmallExplorerOptions());
  EXPECT_EQ(ex.StartExploration({{1.0}}, Variant::kBasic, rng_.get()).code(),
            StatusCode::kFailedPrecondition);
}

class ExplorerOnlineParallelTest : public ExplorerTest {
 protected:
  // A pretrained + adapted explorer at the given online thread count. Every
  // call pretrains from the same seed, so two instances differ only in the
  // number of pool lanes their online path may use.
  std::unique_ptr<Explorer> AdaptedExplorer(int64_t threads) {
    ExplorerOptions opt = SmallExplorerOptions();
    opt.num_threads = threads;
    auto ex = std::make_unique<Explorer>(opt);
    Rng rng(23);
    EXPECT_TRUE(
        ex->Pretrain(table_, subspaces_, /*train_meta=*/false, &rng).ok());
    std::vector<std::vector<double>> labels(2);
    for (int s = 0; s < 2; ++s) {
      for (const auto& t : *ex->InitialTuples(s)) {
        labels[static_cast<size_t>(s)].push_back(t[0] < 5.0 ? 1.0 : 0.0);
      }
    }
    Rng online_rng(99);
    EXPECT_TRUE(
        ex->StartExploration(labels, Variant::kBasic, &online_rng).ok());
    return ex;
  }

  std::vector<int64_t> AllRows() const {
    std::vector<int64_t> rows(static_cast<size_t>(table_.num_rows()));
    std::iota(rows.begin(), rows.end(), 0);
    return rows;
  }
};

TEST_F(ExplorerOnlineParallelTest, StartExplorationThreadCountInvariant) {
  // The per-subspace adaptation lanes read key-split RNG streams, so the
  // adapted models — observed through their predictions over the whole
  // table — must be bit-identical at 1, 2, and 4 threads.
  const std::unique_ptr<Explorer> e1 = AdaptedExplorer(1);
  const std::vector<int64_t> rows = AllRows();
  std::vector<double> p1;
  ASSERT_TRUE(e1->PredictRows(table_, rows, &p1).ok());
  ASSERT_EQ(p1.size(), rows.size());
  for (int64_t threads : {int64_t{2}, int64_t{4}}) {
    const std::unique_ptr<Explorer> ex = AdaptedExplorer(threads);
    std::vector<double> p;
    ASSERT_TRUE(ex->PredictRows(table_, rows, &p).ok());
    EXPECT_EQ(p, p1) << "threads=" << threads;
  }
}

TEST_F(ExplorerOnlineParallelTest, RetrieveMatchesThreadCountInvariant) {
  const std::unique_ptr<Explorer> e1 = AdaptedExplorer(1);
  std::vector<int64_t> sequential;
  ASSERT_TRUE(e1->RetrieveMatches(table_, -1, &sequential).ok());
  ASSERT_GT(sequential.size(), 3u);  // The labelling rule matches many rows.
  EXPECT_TRUE(std::is_sorted(sequential.begin(), sequential.end()));
  const int64_t limit = static_cast<int64_t>(sequential.size()) / 2;
  for (int64_t threads : {int64_t{2}, int64_t{4}}) {
    const std::unique_ptr<Explorer> ex = AdaptedExplorer(threads);
    std::vector<int64_t> parallel;
    ASSERT_TRUE(ex->RetrieveMatches(table_, -1, &parallel).ok());
    EXPECT_EQ(parallel, sequential) << "threads=" << threads;
    // Exact-limit truncation: byte-identical prefix of the full scan.
    std::vector<int64_t> limited;
    ASSERT_TRUE(ex->RetrieveMatches(table_, limit, &limited).ok());
    const std::vector<int64_t> prefix(
        sequential.begin(), sequential.begin() + limit);
    EXPECT_EQ(limited, prefix) << "threads=" << threads;
  }
}

TEST_F(ExplorerOnlineParallelTest, PredictRowsMatchesRowWisePredictRow) {
  const std::unique_ptr<Explorer> ex = AdaptedExplorer(4);
  // Unordered, repeating row list: output must follow the input order.
  const std::vector<int64_t> rows = {17, 3, 3999, 0, 17, 1024, 512};
  std::vector<double> preds;
  ASSERT_TRUE(ex->PredictRows(table_, rows, &preds).ok());
  ASSERT_EQ(preds.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(preds[i],
              ex->PredictRow(table_.Row(rows[i])).value_or(-1.0))
        << "row " << rows[i];
  }
}

TEST_F(ExplorerTest, QueryAccessorsReturnNullOnMisuse) {
  Explorer ex(SmallExplorerOptions());
  // Before Pretrain every accessor reports "nothing there" instead of
  // aborting.
  EXPECT_EQ(ex.subspace(0), nullptr);
  EXPECT_EQ(ex.InitialTuples(0), nullptr);
  EXPECT_EQ(ex.generator(0), nullptr);
  EXPECT_FALSE(ex.PredictRow(table_.Row(0)).has_value());
  EXPECT_FALSE(ex.PredictSubspace(0, {0.0, 0.0}).has_value());

  ASSERT_TRUE(
      ex.Pretrain(table_, subspaces_, /*train_meta=*/false, rng_.get()).ok());
  EXPECT_NE(ex.subspace(0), nullptr);
  EXPECT_NE(ex.InitialTuples(1), nullptr);
  EXPECT_NE(ex.generator(1), nullptr);
  EXPECT_EQ(ex.subspace(-1), nullptr);
  EXPECT_EQ(ex.subspace(2), nullptr);
  EXPECT_EQ(ex.InitialTuples(7), nullptr);
  EXPECT_EQ(ex.generator(-3), nullptr);
}

TEST_F(ExplorerTest, PredictionMisuseYieldsNullopt) {
  Explorer ex(SmallExplorerOptions());
  ASSERT_TRUE(
      ex.Pretrain(table_, subspaces_, /*train_meta=*/false, rng_.get()).ok());
  // Adapt only subspace 0.
  std::vector<std::vector<double>> labels(1);
  labels[0].assign(ex.InitialTuples(0)->size(), 1.0);
  ASSERT_TRUE(ex.StartExploration(labels, Variant::kBasic, rng_.get()).ok());

  EXPECT_TRUE(ex.PredictSubspace(0, {0.5, 0.5}).has_value());
  EXPECT_FALSE(ex.PredictSubspace(1, {0.5, 0.5}).has_value());  // Un-adapted.
  EXPECT_FALSE(ex.PredictSubspace(-1, {0.5, 0.5}).has_value());
  EXPECT_FALSE(ex.PredictSubspace(9, {0.5, 0.5}).has_value());
  EXPECT_FALSE(ex.PredictSubspace(0, {0.5}).has_value());  // Width mismatch.
  EXPECT_TRUE(ex.PredictRow(table_.Row(0)).has_value());
  EXPECT_FALSE(ex.PredictRow({0.5}).has_value());  // Row too narrow.
}

TEST_F(ExplorerTest, BatchQueryMisuseYieldsStatus) {
  Explorer ex(SmallExplorerOptions());
  std::vector<int64_t> matches;
  std::vector<double> preds;
  const std::vector<int64_t> rows = {0, 1, 2};
  // Before StartExploration both batch entry points fail cleanly.
  EXPECT_EQ(ex.RetrieveMatches(table_, -1, &matches).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ex.PredictRows(table_, rows, &preds).code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(
      ex.Pretrain(table_, subspaces_, /*train_meta=*/false, rng_.get()).ok());
  std::vector<std::vector<double>> labels(2);
  for (int s = 0; s < 2; ++s) {
    labels[static_cast<size_t>(s)].assign(ex.InitialTuples(s)->size(), 1.0);
  }
  ASSERT_TRUE(ex.StartExploration(labels, Variant::kBasic, rng_.get()).ok());

  // Out-of-range row indices.
  const std::vector<int64_t> negative = {-1};
  const std::vector<int64_t> past_end = {table_.num_rows()};
  EXPECT_EQ(ex.PredictRows(table_, negative, &preds).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(ex.PredictRows(table_, past_end, &preds).code(),
            StatusCode::kOutOfRange);
  // A table narrower than the active subspaces' attributes.
  const data::Table narrow = table_.Project({0, 1});
  EXPECT_EQ(ex.RetrieveMatches(narrow, -1, &matches).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ex.PredictRows(narrow, rows, &preds).code(),
            StatusCode::kInvalidArgument);

  // SuggestTuples misuse: un-adapted subspace, bad k, bad candidate width.
  std::vector<int64_t> picked;
  EXPECT_EQ(ex.SuggestTuples(5, {{0.5, 0.5}}, 1, &picked).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ex.SuggestTuples(0, {{0.5, 0.5}}, -1, &picked).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ex.SuggestTuples(0, {{0.5, 0.5, 0.5}}, 1, &picked).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace lte::core
