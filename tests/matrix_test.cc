#include "nn/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lte::nn {
namespace {

TEST(MatrixTest, ConstructionZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.size(), 6);
  for (int64_t r = 0; r < 2; ++r) {
    for (int64_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 0.0);
  }
}

TEST(MatrixTest, FillAndIndex) {
  Matrix m(2, 2);
  m.Fill(3.0);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(MatrixTest, MatVec) {
  Matrix m(2, 3);
  // [1 2 3; 4 5 6] * [1 1 1]^T = [6 15]^T
  double v = 1.0;
  for (int64_t r = 0; r < 2; ++r) {
    for (int64_t c = 0; c < 3; ++c) m(r, c) = v++;
  }
  EXPECT_EQ(m.MatVec({1, 1, 1}), (std::vector<double>{6, 15}));
  EXPECT_EQ(m.MatVec({1, 0, -1}), (std::vector<double>{-2, -2}));
}

TEST(MatrixTest, TransposeMatVec) {
  Matrix m(2, 3);
  double v = 1.0;
  for (int64_t r = 0; r < 2; ++r) {
    for (int64_t c = 0; c < 3; ++c) m(r, c) = v++;
  }
  // m^T * [1 1]^T = [5 7 9]^T
  EXPECT_EQ(m.TransposeMatVec({1, 1}), (std::vector<double>{5, 7, 9}));
}

TEST(MatrixTest, AddOuter) {
  Matrix m(2, 2);
  m.AddOuter({1, 2}, {3, 4}, 2.0);
  EXPECT_DOUBLE_EQ(m(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 12.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 16.0);
}

TEST(MatrixTest, Blend) {
  Matrix a(1, 2);
  Matrix b(1, 2);
  a.Fill(10.0);
  b.Fill(20.0);
  a.Blend(b, 0.25);  // 0.25*20 + 0.75*10 = 12.5
  EXPECT_DOUBLE_EQ(a(0, 0), 12.5);
}

TEST(MatrixTest, AddScaled) {
  Matrix a(1, 2);
  Matrix b(1, 2);
  a.Fill(1.0);
  b.Fill(4.0);
  a.AddScaled(b, -0.5);
  EXPECT_DOUBLE_EQ(a(0, 0), -1.0);
}

TEST(MatrixTest, RowRoundTrip) {
  Matrix m(2, 3);
  m.SetRow(1, {7, 8, 9});
  EXPECT_EQ(m.Row(1), (std::vector<double>{7, 8, 9}));
  EXPECT_EQ(m.Row(0), (std::vector<double>{0, 0, 0}));
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m(1, 2);
  m(0, 0) = 3.0;
  m(0, 1) = 4.0;
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(MatrixTest, KaimingInitBounded) {
  Rng rng(1);
  Matrix m(16, 64);
  m.InitKaiming(&rng, 64);
  const double limit = std::sqrt(6.0 / 64.0);
  for (double v : m.data()) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
  EXPECT_GT(m.FrobeniusNorm(), 0.0);
}

TEST(MatrixTest, GaussianInitSpread) {
  Rng rng(2);
  Matrix m(50, 50);
  m.InitGaussian(&rng, 0.1);
  double sumsq = 0.0;
  for (double v : m.data()) sumsq += v * v;
  const double std_est = std::sqrt(sumsq / static_cast<double>(m.size()));
  EXPECT_NEAR(std_est, 0.1, 0.02);
}

}  // namespace
}  // namespace lte::nn
