#include "eval/report.h"

#include <gtest/gtest.h>

namespace lte::eval {
namespace {

TEST(ReportTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.12345, 3), "0.123");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
  EXPECT_EQ(FormatDouble(-1.5, 2), "-1.50");
}

TEST(ReportTest, RendersHeaderAndRows) {
  TextTable t({"method", "f1"});
  t.AddRow({"DSM", "0.50"});
  t.AddRow("Meta*", {0.875}, 3);
  const std::string out = t.ToString();
  EXPECT_NE(out.find("method"), std::string::npos);
  EXPECT_NE(out.find("DSM"), std::string::npos);
  EXPECT_NE(out.find("0.875"), std::string::npos);
  EXPECT_NE(out.find("Meta*"), std::string::npos);
}

TEST(ReportTest, ColumnsAligned) {
  TextTable t({"a", "b"});
  t.AddRow({"short", "x"});
  t.AddRow({"a-much-longer-cell", "y"});
  const std::string out = t.ToString();
  // Every line must have the same length (aligned columns).
  size_t line_len = std::string::npos;
  size_t start = 0;
  while (start < out.size()) {
    const size_t end = out.find('\n', start);
    const size_t len = end - start;
    if (line_len == std::string::npos) {
      line_len = len;
    } else {
      EXPECT_EQ(len, line_len);
    }
    start = end + 1;
  }
}

TEST(ReportTest, ShortRowPadded) {
  TextTable t({"a", "b", "c"});
  t.AddRow({"only-one"});
  EXPECT_NE(t.ToString().find("only-one"), std::string::npos);
}

TEST(ReportTest, ExtraCellsTruncated) {
  TextTable t({"a"});
  t.AddRow({"x", "overflow"});
  EXPECT_EQ(t.ToString().find("overflow"), std::string::npos);
}

}  // namespace
}  // namespace lte::eval
