#include "data/synthetic.h"

#include <gtest/gtest.h>

#include "common/math_util.h"

namespace lte::data {
namespace {

TEST(SyntheticTest, SdssLikeShape) {
  Rng rng(1);
  const Table t = MakeSdssLike(500, &rng);
  EXPECT_EQ(t.num_rows(), 500);
  EXPECT_EQ(t.num_columns(), 8);
  EXPECT_EQ(t.AttributeNames()[0], "rowc");
  EXPECT_EQ(t.AttributeNames()[7], "colv");
}

TEST(SyntheticTest, CarLikeShape) {
  Rng rng(2);
  const Table t = MakeCarLike(500, &rng);
  EXPECT_EQ(t.num_rows(), 500);
  EXPECT_EQ(t.num_columns(), 5);
  EXPECT_EQ(t.AttributeNames()[0], "price");
}

TEST(SyntheticTest, CarLikeRanges) {
  Rng rng(3);
  const Table t = MakeCarLike(2000, &rng);
  const int64_t year = t.ColumnIndex("year");
  const int64_t price = t.ColumnIndex("price");
  const int64_t mileage = t.ColumnIndex("mileage");
  EXPECT_GE(t.column(year).min(), 1995.0);
  EXPECT_LE(t.column(year).max(), 2016.0);
  EXPECT_GT(t.column(price).min(), 0.0);
  EXPECT_GE(t.column(mileage).min(), 0.0);
}

TEST(SyntheticTest, SdssSkyMagnitudesAreMultimodal) {
  // sky_u is drawn from a 3-component mixture with means 21.5/22.8/24.0; its
  // sample variance must exceed any single component's variance.
  Rng rng(4);
  const Table t = MakeSdssLike(5000, &rng);
  const Column& c = t.column(t.ColumnIndex("sky_u"));
  const double var = Variance(c.values());
  EXPECT_GT(var, 0.4 * 0.4 * 1.5);
}

TEST(SyntheticTest, DeterministicGivenSeed) {
  Rng a(7);
  Rng b(7);
  const Table ta = MakeCarLike(50, &a);
  const Table tb = MakeCarLike(50, &b);
  for (int64_t r = 0; r < 50; ++r) {
    EXPECT_EQ(ta.Row(r), tb.Row(r));
  }
}

TEST(SyntheticTest, BlobsShapeAndSpread) {
  Rng rng(5);
  const Table t = MakeBlobs(1000, 3, 4, &rng);
  EXPECT_EQ(t.num_rows(), 1000);
  EXPECT_EQ(t.num_columns(), 3);
  // Values concentrate around [0, 10] within a few sigma.
  for (int64_t c = 0; c < 3; ++c) {
    EXPECT_GT(t.column(c).min(), -8.0);
    EXPECT_LT(t.column(c).max(), 18.0);
  }
}

}  // namespace
}  // namespace lte::data
