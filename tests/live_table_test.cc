// Live-table (segmented append) test battery: data::Table::AppendRows seals
// immutable segments behind previously vended views, and every scan path
// treats a segmented table exactly like the monolithic table holding the
// same rows. The argument for why appends are invisible to readers is in
// DESIGN.md §2e "Live tables & model epochs"; this file is the enforcement:
//
//  * Segment mechanics: atomic batch publication, base freeze, view
//    stability across later appends, snapshot prefixes.
//  * Byte-identity: ragged appends whose boundaries fall mid-block must
//    produce byte-identical PredictRows / RetrieveMatches against the
//    monolithic twin, across both scan paths and thread counts {1, 4}.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "core/exploration_model.h"
#include "core/exploration_session.h"
#include "data/synthetic.h"
#include "data/table.h"

namespace lte::data {
namespace {

Table TwoColumnTable() {
  Table table({"a", "b"});
  for (int64_t r = 0; r < 5; ++r) {
    EXPECT_TRUE(
        table.AppendRow({static_cast<double>(r), static_cast<double>(10 + r)})
            .ok());
  }
  return table;
}

TEST(LiveTableTest, AppendRowsPublishesAtomicallyAndSpansSegments) {
  Table table = TwoColumnTable();
  EXPECT_EQ(table.num_segments(), 0);

  ASSERT_TRUE(table.AppendRows({{5.0, 15.0}, {6.0, 16.0}}).ok());
  ASSERT_TRUE(table.AppendRows({{7.0, 17.0}}).ok());
  EXPECT_EQ(table.num_rows(), 8);
  EXPECT_EQ(table.num_segments(), 2);

  // Row access routes transparently across base and both segments.
  for (int64_t r = 0; r < 8; ++r) {
    EXPECT_EQ(table.Row(r),
              (std::vector<double>{static_cast<double>(r),
                                   static_cast<double>(10 + r)}));
  }
  std::vector<double> projected;
  table.RowProjectedInto(6, {1}, &projected);
  EXPECT_EQ(projected, std::vector<double>{16.0});

  // An empty batch is a no-op that seals nothing.
  ASSERT_TRUE(table.AppendRows({}).ok());
  EXPECT_EQ(table.num_segments(), 2);

  // Width mismatches fail without publishing anything.
  EXPECT_FALSE(table.AppendRows({{1.0}}).ok());
  EXPECT_FALSE(table.AppendRows({{1.0, 2.0, 3.0}}).ok());
  EXPECT_EQ(table.num_rows(), 8);
}

TEST(LiveTableTest, FirstSealFreezesTheBaseSegment) {
  Table table = TwoColumnTable();
  ASSERT_TRUE(table.AppendRow({5.0, 15.0}).ok());  // Still mutable.
  ASSERT_TRUE(table.AppendRows({{6.0, 16.0}}).ok());

  // The base is frozen: row-by-row growth and new columns are refused, so
  // every span vended before the seal stays valid forever.
  EXPECT_EQ(table.AppendRow({7.0, 17.0}).code(),
            StatusCode::kFailedPrecondition);
  Column extra("c");
  for (int64_t r = 0; r < 7; ++r) extra.Append(0.0);
  EXPECT_EQ(table.AddColumn(std::move(extra)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(table.num_rows(), 7);
}

TEST(LiveTableTest, ViewsVendedBeforeAppendStayValidAndStable) {
  Table table = TwoColumnTable();
  ASSERT_TRUE(table.AppendRows({{5.0, 15.0}}).ok());

  const ColumnView before = table.View(0);
  ASSERT_EQ(before.size(), 6);

  // Later appends must not move anything `before` addresses.
  ASSERT_TRUE(table.AppendRows({{6.0, 16.0}, {7.0, 17.0}}).ok());
  for (int64_t r = 0; r < before.size(); ++r) {
    EXPECT_EQ(before[r], static_cast<double>(r));
  }

  // A fresh view covers the appended rows too.
  const ColumnView after = table.View(0);
  ASSERT_EQ(after.size(), 8);
  EXPECT_EQ(after[7], 7.0);
}

TEST(LiveTableTest, SnapshotPrefixIsAMonolithicCopy) {
  Table table = TwoColumnTable();
  ASSERT_TRUE(table.AppendRows({{5.0, 15.0}, {6.0, 16.0}}).ok());
  ASSERT_TRUE(table.AppendRows({{7.0, 17.0}}).ok());

  // A watermark that splits the first sealed segment.
  const Table snapshot = table.SnapshotPrefix(6);
  EXPECT_EQ(snapshot.num_rows(), 6);
  EXPECT_EQ(snapshot.num_segments(), 0);
  for (int64_t r = 0; r < 6; ++r) EXPECT_EQ(snapshot.Row(r), table.Row(r));

  // The snapshot is independent: the live table keeps growing, the snapshot
  // does not.
  ASSERT_TRUE(table.AppendRows({{8.0, 18.0}}).ok());
  EXPECT_EQ(snapshot.num_rows(), 6);

  // Full-table and empty-prefix edges.
  EXPECT_EQ(table.SnapshotPrefix(table.num_rows()).num_rows(), 9);
  EXPECT_EQ(table.SnapshotPrefix(0).num_rows(), 0);
  EXPECT_EQ(table.SnapshotPrefix(0).num_columns(), 2);
}

TEST(LiveTableTest, CopiesAndProjectionsMaterializeSegments) {
  Table table = TwoColumnTable();
  ASSERT_TRUE(table.AppendRows({{5.0, 15.0}, {6.0, 16.0}}).ok());

  const Table copy = table;  // Deep copy, segment list shared structurally.
  EXPECT_EQ(copy.num_rows(), 7);
  EXPECT_EQ(copy.Row(6), table.Row(6));

  const Table projected = table.Project({1});
  EXPECT_EQ(projected.num_rows(), 7);
  EXPECT_EQ(projected.num_segments(), 0);
  EXPECT_EQ(projected.Row(6), std::vector<double>{16.0});

  const Table selected = table.SelectRows({0, 6});
  EXPECT_EQ(selected.num_rows(), 2);
  EXPECT_EQ(selected.Row(1), (std::vector<double>{6.0, 16.0}));
}

TEST(LiveTableTest, ReadersNeverObserveAPartialBatch) {
  // One writer appends batches while readers hammer num_rows()/Row(): every
  // observed row count lands on a batch boundary and every visible row is
  // fully formed. Runs under the TSan CI job.
  Table table({"a", "b"});
  for (int64_t r = 0; r < 64; ++r) {
    ASSERT_TRUE(
        table.AppendRow({static_cast<double>(r), static_cast<double>(r)})
            .ok());
  }
  constexpr int64_t kBatches = 50;
  constexpr int64_t kBatchRows = 16;

  std::vector<std::thread> readers;
  for (int64_t t = 0; t < 3; ++t) {
    readers.emplace_back([&table] {
      for (int64_t iter = 0; iter < 2000; ++iter) {
        const int64_t n = table.num_rows();
        EXPECT_EQ((n - 64) % kBatchRows, 0) << "partial batch visible";
        const std::vector<double> row = table.Row(n - 1);
        EXPECT_EQ(row[0], static_cast<double>(n - 1));
        EXPECT_EQ(row[1], row[0]);
      }
    });
  }
  for (int64_t b = 0; b < kBatches; ++b) {
    std::vector<std::vector<double>> batch;
    for (int64_t i = 0; i < kBatchRows; ++i) {
      const double v = static_cast<double>(64 + b * kBatchRows + i);
      batch.push_back({v, v});
    }
    ASSERT_TRUE(table.AppendRows(batch).ok());
  }
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(table.num_rows(), 64 + kBatches * kBatchRows);
}

// ---------------------------------------------------------------------------
// Byte-identity of the scan paths over segment boundaries.

core::ExplorerOptions SmallExplorerOptions() {
  core::ExplorerOptions opt;
  opt.task_gen.k_u = 30;
  opt.task_gen.k_s = 10;
  opt.task_gen.k_q = 30;
  opt.task_gen.delta = 5;
  opt.task_gen.alpha = 2;
  opt.task_gen.psi = 8;
  opt.learner.embedding_size = 12;
  opt.learner.clf_hidden = {12};
  opt.learner.num_memory_modes = 3;
  opt.num_meta_tasks = 25;
  opt.trainer.epochs = 3;
  opt.trainer.task_batch_size = 10;
  opt.trainer.local_steps = 6;
  opt.trainer.local_lr = 0.2;
  opt.online_steps = 25;
  opt.online_lr = 0.2;
  opt.encoder.num_gmm_components = 3;
  opt.encoder.num_jenks_intervals = 3;
  return opt;
}

class LiveTableScanTest : public ::testing::Test {
 protected:
  // One pretrain for the suite: scans are read-only against the model.
  static void SetUpTestSuite() {
    Rng rng(23);
    // 4000 rows: three full 1024-row serving blocks plus a ragged tail.
    monolithic_ = new data::Table(data::MakeBlobs(4000, 4, 5, &rng));
    subspaces_ = new std::vector<data::Subspace>{data::Subspace{{0, 1}},
                                                 data::Subspace{{2, 3}}};
    model_ =
        std::make_shared<core::ExplorationModel>(SmallExplorerOptions());
    Rng pretrain_rng(23);
    ASSERT_TRUE(model_
                    ->Pretrain(*monolithic_, *subspaces_, /*train_meta=*/true,
                               &pretrain_rng)
                    .ok());

    // The segmented twin: the same 4000 rows, but rows [2500, 4000) arrive
    // as ragged appends — 37 rows (mid-block), 1024 (exactly one block,
    // offset so its edges straddle two serving blocks), then 439.
    live_ = new data::Table(monolithic_->SnapshotPrefix(2500));
    int64_t next = 2500;
    for (const int64_t batch_rows : {int64_t{37}, int64_t{1024}, int64_t{439}}) {
      std::vector<std::vector<double>> batch;
      for (int64_t i = 0; i < batch_rows; ++i) {
        batch.push_back(monolithic_->Row(next++));
      }
      ASSERT_TRUE(live_->AppendRows(batch).ok());
    }
    ASSERT_EQ(live_->num_rows(), monolithic_->num_rows());
    ASSERT_EQ(live_->num_segments(), 3);
  }

  static void TearDownTestSuite() {
    delete live_;
    live_ = nullptr;
    model_.reset();
    delete subspaces_;
    subspaces_ = nullptr;
    delete monolithic_;
    monolithic_ = nullptr;
  }

  static std::vector<std::vector<double>> UserLabels() {
    std::vector<std::vector<double>> labels(subspaces_->size());
    for (size_t s = 0; s < subspaces_->size(); ++s) {
      const data::Column& col =
          monolithic_->column((*subspaces_)[s].attribute_indices[0]);
      const double threshold = col.min() + 0.45 * (col.max() - col.min());
      for (const auto& tuple :
           *model_->InitialTuples(static_cast<int64_t>(s))) {
        labels[s].push_back(tuple[0] < threshold ? 1.0 : 0.0);
      }
    }
    return labels;
  }

  static data::Table* monolithic_;
  static data::Table* live_;
  static std::vector<data::Subspace>* subspaces_;
  static std::shared_ptr<core::ExplorationModel> model_;
};

data::Table* LiveTableScanTest::monolithic_ = nullptr;
data::Table* LiveTableScanTest::live_ = nullptr;
std::vector<data::Subspace>* LiveTableScanTest::subspaces_ = nullptr;
std::shared_ptr<core::ExplorationModel> LiveTableScanTest::model_;

// The tentpole property: a segmented table is indistinguishable from its
// monolithic twin — byte for byte — on every scan path, at 1 and 4 threads,
// for all three variants, including row selections that cross the append
// boundary and both segment seams.
TEST_F(LiveTableScanTest, SegmentedScanByteIdenticalToMonolithic) {
  std::vector<int64_t> all_rows(static_cast<size_t>(monolithic_->num_rows()));
  std::iota(all_rows.begin(), all_rows.end(), 0);
  // Rows hugging the base/append boundary (2500) and both segment seams
  // (2537, 3561), plus duplicates.
  const std::vector<int64_t> seams = {0,    2499, 2500, 2501, 2536, 2537,
                                      2538, 3560, 3561, 3561, 3999, 42};
  const core::Variant variants[] = {core::Variant::kBasic,
                                    core::Variant::kMeta,
                                    core::Variant::kMetaStar};
  for (const core::Variant variant : variants) {
    for (const int64_t threads : {1, 4}) {
      core::ExplorationSession session(model_, threads);
      Rng rng(1000);
      ASSERT_TRUE(session.StartExploration(UserLabels(), variant, &rng).ok());
      for (const core::ScanPath path :
           {core::ScanPath::kRowAtATime, core::ScanPath::kColumnar}) {
        session.set_scan_path(path);
        for (const std::vector<int64_t>& rows : {all_rows, seams}) {
          std::vector<double> mono_preds;
          std::vector<double> live_preds;
          ASSERT_TRUE(
              session.PredictRows(*monolithic_, rows, &mono_preds).ok());
          ASSERT_TRUE(session.PredictRows(*live_, rows, &live_preds).ok());
          EXPECT_EQ(mono_preds, live_preds);
        }
        std::vector<int64_t> mono_matches;
        std::vector<int64_t> live_matches;
        ASSERT_TRUE(
            session.RetrieveMatches(*monolithic_, -1, &mono_matches).ok());
        ASSERT_TRUE(session.RetrieveMatches(*live_, -1, &live_matches).ok());
        EXPECT_EQ(mono_matches, live_matches);
        ASSERT_TRUE(
            session.RetrieveMatches(*monolithic_, 100, &mono_matches).ok());
        ASSERT_TRUE(session.RetrieveMatches(*live_, 100, &live_matches).ok());
        EXPECT_EQ(mono_matches, live_matches);
      }
    }
  }
}

// The refresh worker's rebuild input: pretraining on a full-table
// SnapshotPrefix of the segmented twin reproduces the monolithic pretrain
// bit for bit (same rows, same seed => same fingerprint).
TEST_F(LiveTableScanTest, PretrainOnSnapshotPrefixIsByteIdentical) {
  const data::Table snapshot = live_->SnapshotPrefix(live_->num_rows());
  core::ExplorationModel from_snapshot(SmallExplorerOptions());
  Rng rng(23);
  ASSERT_TRUE(from_snapshot
                  .Pretrain(snapshot, *subspaces_, /*train_meta=*/true, &rng)
                  .ok());
  EXPECT_EQ(from_snapshot.fingerprint(), model_->fingerprint());
}

}  // namespace
}  // namespace lte::data
