#include "eval/convergence.h"

#include <gtest/gtest.h>

namespace lte::eval {
namespace {

TEST(ConvergenceTest, FirstRoundNeverConverges) {
  ConvergenceTracker tracker(0.5, 1);
  tracker.AddRound({1, 0, 1});
  EXPECT_FALSE(tracker.Converged());
  EXPECT_DOUBLE_EQ(tracker.LastChurn(), 1.0);
}

TEST(ConvergenceTest, StablePredictionsConverge) {
  ConvergenceTracker tracker(0.01, 2);
  const std::vector<double> preds = {1, 0, 1, 0, 1};
  tracker.AddRound(preds);
  tracker.AddRound(preds);
  EXPECT_FALSE(tracker.Converged());  // One stable round, need two.
  tracker.AddRound(preds);
  EXPECT_TRUE(tracker.Converged());
  EXPECT_DOUBLE_EQ(tracker.LastChurn(), 0.0);
}

TEST(ConvergenceTest, ChurnComputedAsFlipFraction) {
  ConvergenceTracker tracker(0.1, 1);
  tracker.AddRound({1, 1, 1, 1});
  tracker.AddRound({1, 1, 0, 0});  // Two of four flipped.
  EXPECT_DOUBLE_EQ(tracker.LastChurn(), 0.5);
  EXPECT_FALSE(tracker.Converged());
}

TEST(ConvergenceTest, UnstableRoundResetsCounter) {
  ConvergenceTracker tracker(0.1, 2);
  const std::vector<double> a = {1, 0, 1, 0};
  const std::vector<double> b = {0, 1, 0, 1};
  tracker.AddRound(a);
  tracker.AddRound(a);  // Stable round 1.
  tracker.AddRound(b);  // Full churn: reset.
  tracker.AddRound(b);  // Stable round 1 again.
  EXPECT_FALSE(tracker.Converged());
  tracker.AddRound(b);  // Stable round 2.
  EXPECT_TRUE(tracker.Converged());
}

TEST(ConvergenceTest, ThresholdedPredictionsTreatedAsBinary) {
  ConvergenceTracker tracker(0.01, 1);
  tracker.AddRound({0.9, 0.1});
  tracker.AddRound({0.8, 0.2});  // Same side of 0.5: no flips.
  EXPECT_DOUBLE_EQ(tracker.LastChurn(), 0.0);
  EXPECT_TRUE(tracker.Converged());
}

TEST(ConvergenceTest, CountsRounds) {
  ConvergenceTracker tracker;
  EXPECT_EQ(tracker.rounds(), 0);
  tracker.AddRound({1});
  tracker.AddRound({1});
  EXPECT_EQ(tracker.rounds(), 2);
}

}  // namespace
}  // namespace lte::eval
