// Byte-identity property tests for the columnar serving fast path: the
// kColumnar scan behind PredictRows/RetrieveMatches must produce exactly the
// same bytes as the kRowAtATime reference — for every variant, at any thread
// count, for ragged block boundaries, and under retrieval limits. The
// argument for why this holds is in DESIGN.md §2b "Columnar serving path";
// this file is the enforcement.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <memory>
#include <numeric>
#include <optional>
#include <vector>

#include "core/exploration_model.h"
#include "core/exploration_session.h"
#include "data/synthetic.h"

namespace lte::core {
namespace {

ExplorerOptions SmallExplorerOptions() {
  ExplorerOptions opt;
  opt.task_gen.k_u = 30;
  opt.task_gen.k_s = 10;
  opt.task_gen.k_q = 30;
  opt.task_gen.delta = 5;
  opt.task_gen.alpha = 2;
  opt.task_gen.psi = 8;
  opt.learner.embedding_size = 12;
  opt.learner.clf_hidden = {12};
  opt.learner.num_memory_modes = 3;
  opt.num_meta_tasks = 25;
  opt.trainer.epochs = 3;
  opt.trainer.task_batch_size = 10;
  opt.trainer.local_steps = 6;
  opt.trainer.local_lr = 0.2;
  opt.trainer.global_lr = 0.1;
  opt.online_steps = 25;
  opt.online_lr = 0.2;
  opt.encoder.num_gmm_components = 3;
  opt.encoder.num_jenks_intervals = 3;
  return opt;
}

class ColumnarScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(23);
    // 4000 rows: three full 1024-row blocks plus a ragged 928-row tail, so
    // every scan below crosses uneven block boundaries.
    table_ = data::MakeBlobs(4000, 4, 5, &rng);
    subspaces_ = {data::Subspace{{0, 1}}, data::Subspace{{2, 3}}};
    model_ = std::make_shared<ExplorationModel>(SmallExplorerOptions());
    Rng pretrain_rng(23);
    ASSERT_TRUE(model_
                    ->Pretrain(table_, subspaces_, /*train_meta=*/true,
                               &pretrain_rng)
                    .ok());
  }

  // Simulated user: interesting iff the subspace point's first coordinate is
  // below a fixed fraction of that attribute's range.
  std::vector<std::vector<double>> UserLabels() const {
    std::vector<std::vector<double>> labels(subspaces_.size());
    for (size_t s = 0; s < subspaces_.size(); ++s) {
      const data::Column& col =
          table_.column(subspaces_[s].attribute_indices[0]);
      const double threshold = col.min() + 0.45 * (col.max() - col.min());
      for (const auto& tuple :
           *model_->InitialTuples(static_cast<int64_t>(s))) {
        labels[s].push_back(tuple[0] < threshold ? 1.0 : 0.0);
      }
    }
    return labels;
  }

  data::Table table_;
  std::vector<data::Subspace> subspaces_;
  std::shared_ptr<ExplorationModel> model_;
};

TEST_F(ColumnarScanTest, ColumnarIsDefault) {
  ExplorationSession session(model_);
  EXPECT_EQ(session.scan_path(), ScanPath::kColumnar);
  session.set_scan_path(ScanPath::kRowAtATime);
  EXPECT_EQ(session.scan_path(), ScanPath::kRowAtATime);
}

// The core property: for every variant and thread count, PredictRows and
// RetrieveMatches return the same bytes on both scan paths — over the whole
// ragged table, over subsets whose sizes are not multiples of the block
// size, and over non-contiguous row selections.
TEST_F(ColumnarScanTest, PathsAreByteIdentical) {
  const Variant variants[] = {Variant::kBasic, Variant::kMeta,
                              Variant::kMetaStar};
  const int64_t thread_counts[] = {1, 4};
  // All rows (ragged tail), a prime-sized prefix (ragged everywhere), and a
  // strided selection (exercises gathers from non-contiguous rows).
  std::vector<std::vector<int64_t>> row_sets;
  row_sets.emplace_back(table_.num_rows());
  std::iota(row_sets.back().begin(), row_sets.back().end(), 0);
  row_sets.emplace_back(1531);
  std::iota(row_sets.back().begin(), row_sets.back().end(), 37);
  row_sets.emplace_back();
  for (int64_t r = 1; r < table_.num_rows(); r += 7) {
    row_sets.back().push_back(r);
  }

  for (const Variant variant : variants) {
    for (const int64_t threads : thread_counts) {
      SCOPED_TRACE(testing::Message()
                   << "variant=" << static_cast<int>(variant)
                   << " threads=" << threads);
      ExplorationSession session(model_, threads);
      Rng rng(99);
      ASSERT_TRUE(session.StartExploration(UserLabels(), variant, &rng).ok());

      for (size_t i = 0; i < row_sets.size(); ++i) {
        SCOPED_TRACE(testing::Message() << "row_set=" << i);
        session.set_scan_path(ScanPath::kColumnar);
        std::vector<double> columnar;
        ASSERT_TRUE(session.PredictRows(table_, row_sets[i], &columnar).ok());
        session.set_scan_path(ScanPath::kRowAtATime);
        std::vector<double> row_at_a_time;
        ASSERT_TRUE(
            session.PredictRows(table_, row_sets[i], &row_at_a_time).ok());
        // Exact 0.0/1.0 equality — no tolerance.
        EXPECT_EQ(columnar, row_at_a_time);
        // Sanity: the scan found both classes (a degenerate all-0/all-1
        // prediction would make the identity check vacuous).
        if (i == 0) {
          const double ones =
              std::accumulate(columnar.begin(), columnar.end(), 0.0);
          EXPECT_GT(ones, 0.0);
          EXPECT_LT(ones, static_cast<double>(columnar.size()));
        }
      }

      for (const int64_t limit : {-1, 0, 1, 7, 100, 5000}) {
        SCOPED_TRACE(testing::Message() << "limit=" << limit);
        session.set_scan_path(ScanPath::kColumnar);
        std::vector<int64_t> columnar;
        ASSERT_TRUE(session.RetrieveMatches(table_, limit, &columnar).ok());
        session.set_scan_path(ScanPath::kRowAtATime);
        std::vector<int64_t> row_at_a_time;
        ASSERT_TRUE(
            session.RetrieveMatches(table_, limit, &row_at_a_time).ok());
        EXPECT_EQ(columnar, row_at_a_time);
        // Matches are ascending row ids regardless of path.
        EXPECT_TRUE(
            std::is_sorted(columnar.begin(), columnar.end()));
        if (limit >= 0) {
          EXPECT_LE(static_cast<int64_t>(columnar.size()), limit);
        }
      }
    }
  }
}

// Both scan paths must also agree with the scalar PredictRow API, which
// shares no batching machinery with either.
TEST_F(ColumnarScanTest, BlockScanAgreesWithScalarPredictRow) {
  ExplorationSession session(model_, /*num_threads=*/1);
  Rng rng(5);
  ASSERT_TRUE(
      session.StartExploration(UserLabels(), Variant::kMetaStar, &rng).ok());
  std::vector<int64_t> rows(300);
  std::iota(rows.begin(), rows.end(), 0);
  std::vector<double> batch;
  ASSERT_TRUE(session.PredictRows(table_, rows, &batch).ok());
  for (const int64_t r : rows) {
    const std::optional<double> scalar = session.PredictRow(table_.Row(r));
    ASSERT_TRUE(scalar.has_value());
    EXPECT_EQ(batch[static_cast<size_t>(r)], *scalar) << "row " << r;
  }
}

// Tiny tables (smaller than one block) and single-row scans go through the
// same block machinery; they must behave too.
TEST_F(ColumnarScanTest, SmallAndSingleRowScans) {
  ExplorationSession session(model_);
  Rng rng(11);
  ASSERT_TRUE(
      session.StartExploration(UserLabels(), Variant::kMeta, &rng).ok());
  for (const std::vector<int64_t>& rows :
       {std::vector<int64_t>{0}, std::vector<int64_t>{3999},
        std::vector<int64_t>{5, 5, 5}}) {
    std::vector<double> columnar;
    ASSERT_TRUE(session.PredictRows(table_, rows, &columnar).ok());
    session.set_scan_path(ScanPath::kRowAtATime);
    std::vector<double> reference;
    ASSERT_TRUE(session.PredictRows(table_, rows, &reference).ok());
    session.set_scan_path(ScanPath::kColumnar);
    EXPECT_EQ(columnar, reference);
  }
  std::vector<double> empty;
  ASSERT_TRUE(session.PredictRows(table_, {}, &empty).ok());
  EXPECT_TRUE(empty.empty());
}

// ---------------------------------------------------------------------------
// SIMD throughput mode (ScanPath::kColumnarSimd). The float32 vector kernels
// trade bit-identity for throughput, so the contract is *statistical* parity
// with the scalar verdicts — only rows whose probability sits exactly at the
// 0.5 threshold boundary may flip — plus full determinism of the SIMD path
// itself. These tests are the parity gate named in DESIGN.md §2b.
// ---------------------------------------------------------------------------

double MismatchFraction(const std::vector<double>& a,
                        const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  if (a.empty()) return 0.0;
  size_t mismatches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) ++mismatches;
  }
  return static_cast<double>(mismatches) / static_cast<double>(a.size());
}

// F1 between two ascending match-id sets: 1.0 means identical sets.
double MatchSetF1(const std::vector<int64_t>& ref,
                  const std::vector<int64_t>& got) {
  if (ref.empty() && got.empty()) return 1.0;
  std::vector<int64_t> both;
  std::set_intersection(ref.begin(), ref.end(), got.begin(), got.end(),
                        std::back_inserter(both));
  const double tp = static_cast<double>(both.size());
  const double denom = static_cast<double>(ref.size() + got.size());
  return denom == 0.0 ? 1.0 : 2.0 * tp / denom;
}

// The parity gate: for every variant and thread count, the SIMD scan's
// verdicts agree with the scalar columnar scan on all but a vanishing
// fraction of rows, and the retrieved match sets have F1 within epsilon of
// identical.
TEST_F(ColumnarScanTest, SimdParityAcrossVariantsAndThreads) {
  constexpr double kMaxMismatchFraction = 1e-3;
  constexpr double kMinMatchF1 = 1.0 - 1e-3;
  const Variant variants[] = {Variant::kBasic, Variant::kMeta,
                              Variant::kMetaStar};
  std::vector<int64_t> all_rows(table_.num_rows());
  std::iota(all_rows.begin(), all_rows.end(), 0);

  for (const Variant variant : variants) {
    for (const int64_t threads : {1, 4}) {
      SCOPED_TRACE(testing::Message()
                   << "variant=" << static_cast<int>(variant)
                   << " threads=" << threads);
      ExplorationSession session(model_, threads);
      Rng rng(99);
      ASSERT_TRUE(session.StartExploration(UserLabels(), variant, &rng).ok());

      session.set_scan_path(ScanPath::kColumnar);
      std::vector<double> scalar_preds;
      ASSERT_TRUE(session.PredictRows(table_, all_rows, &scalar_preds).ok());
      std::vector<int64_t> scalar_matches;
      ASSERT_TRUE(session.RetrieveMatches(table_, -1, &scalar_matches).ok());

      session.set_scan_path(ScanPath::kColumnarSimd);
      std::vector<double> simd_preds;
      ASSERT_TRUE(session.PredictRows(table_, all_rows, &simd_preds).ok());
      std::vector<int64_t> simd_matches;
      ASSERT_TRUE(session.RetrieveMatches(table_, -1, &simd_matches).ok());

      EXPECT_LE(MismatchFraction(scalar_preds, simd_preds),
                kMaxMismatchFraction);
      EXPECT_GE(MatchSetF1(scalar_matches, simd_matches), kMinMatchF1);
      EXPECT_TRUE(std::is_sorted(simd_matches.begin(), simd_matches.end()));

      // Non-vacuity: the SIMD scan found both classes.
      const double ones =
          std::accumulate(simd_preds.begin(), simd_preds.end(), 0.0);
      EXPECT_GT(ones, 0.0);
      EXPECT_LT(ones, static_cast<double>(simd_preds.size()));
    }
  }
}

// The SIMD path is deterministic in its own right: the same rows produce the
// same bits at any thread count, in any batch composition (whole table vs
// ragged subsets), and across repeated scans. Bounded retrieval over the
// SIMD path keeps the same prefix-truncation semantics as the scalar paths.
TEST_F(ColumnarScanTest, SimdPathIsDeterministic) {
  Rng rng(99);
  std::vector<int64_t> all_rows(table_.num_rows());
  std::iota(all_rows.begin(), all_rows.end(), 0);

  std::vector<double> reference;
  std::vector<int64_t> reference_matches;
  for (const int64_t threads : {1, 4, 1}) {
    SCOPED_TRACE(testing::Message() << "threads=" << threads);
    ExplorationSession session(model_, threads);
    Rng start_rng(99);
    ASSERT_TRUE(
        session.StartExploration(UserLabels(), Variant::kMeta, &start_rng)
            .ok());
    session.set_scan_path(ScanPath::kColumnarSimd);

    std::vector<double> preds;
    ASSERT_TRUE(session.PredictRows(table_, all_rows, &preds).ok());
    std::vector<int64_t> matches;
    ASSERT_TRUE(session.RetrieveMatches(table_, -1, &matches).ok());
    if (reference.empty()) {
      reference = preds;
      reference_matches = matches;
    } else {
      EXPECT_EQ(preds, reference);
      EXPECT_EQ(matches, reference_matches);
    }

    // A row's verdict does not depend on which batch it rides in: a ragged
    // strided subset reproduces the whole-table bits row for row.
    std::vector<int64_t> strided;
    for (int64_t r = 1; r < table_.num_rows(); r += 7) strided.push_back(r);
    std::vector<double> subset;
    ASSERT_TRUE(session.PredictRows(table_, strided, &subset).ok());
    for (size_t i = 0; i < strided.size(); ++i) {
      ASSERT_EQ(subset[i], reference[static_cast<size_t>(strided[i])])
          << "row " << strided[i];
    }

    // Bounded retrieval equals the prefix of the unlimited SIMD scan.
    for (const int64_t limit : {0, 1, 7, 100}) {
      std::vector<int64_t> bounded;
      ASSERT_TRUE(session.RetrieveMatches(table_, limit, &bounded).ok());
      const auto want = static_cast<size_t>(
          std::min<int64_t>(limit,
                            static_cast<int64_t>(reference_matches.size())));
      ASSERT_EQ(bounded.size(), want) << "limit=" << limit;
      EXPECT_TRUE(std::equal(bounded.begin(), bounded.end(),
                             reference_matches.begin()));
    }
  }
}

}  // namespace
}  // namespace lte::core
