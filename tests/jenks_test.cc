#include "preprocess/jenks.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace lte::preprocess {
namespace {

TEST(JenksTest, FindsObviousBreaks) {
  // Three tight value groups.
  std::vector<double> v;
  for (int i = 0; i < 30; ++i) v.push_back(1.0 + 0.01 * i);
  for (int i = 0; i < 30; ++i) v.push_back(50.0 + 0.01 * i);
  for (int i = 0; i < 30; ++i) v.push_back(100.0 + 0.01 * i);
  JenksBreaks j;
  ASSERT_TRUE(j.Fit(v, 3).ok());
  EXPECT_EQ(j.num_intervals(), 3);
  EXPECT_EQ(j.IntervalOf(1.1), 0);
  EXPECT_EQ(j.IntervalOf(50.1), 1);
  EXPECT_EQ(j.IntervalOf(100.1), 2);
  EXPECT_GT(j.goodness_of_fit(), 0.99);
}

TEST(JenksTest, BoundsArePartition) {
  Rng rng(1);
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(rng.Uniform(0, 100));
  JenksBreaks j;
  ASSERT_TRUE(j.Fit(v, 5).ok());
  const auto& lo = j.lower_bounds();
  const auto& hi = j.upper_bounds();
  ASSERT_EQ(lo.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_LE(lo[i], hi[i]);
  for (size_t i = 1; i < 5; ++i) EXPECT_LE(hi[i - 1], lo[i]);
}

TEST(JenksTest, OutOfRangeClampsToEdgeIntervals) {
  std::vector<double> v = {1, 2, 3, 10, 11, 12};
  JenksBreaks j;
  ASSERT_TRUE(j.Fit(v, 2).ok());
  EXPECT_EQ(j.IntervalOf(-100.0), 0);
  EXPECT_EQ(j.IntervalOf(1000.0), 1);
}

TEST(JenksTest, NormalizeWithinUnitInterval) {
  std::vector<double> v = {0, 1, 2, 3, 4, 10, 11, 12, 13, 14};
  JenksBreaks j;
  ASSERT_TRUE(j.Fit(v, 2).ok());
  for (double x : {-1.0, 0.0, 2.0, 7.0, 12.0, 20.0}) {
    const int64_t i = j.IntervalOf(x);
    const double n = j.NormalizeWithin(i, x);
    EXPECT_GE(n, 0.0);
    EXPECT_LE(n, 1.0);
  }
  EXPECT_DOUBLE_EQ(j.NormalizeWithin(0, 2.0), 0.5);
}

TEST(JenksTest, SingleInterval) {
  std::vector<double> v = {5, 6, 7};
  JenksBreaks j;
  ASSERT_TRUE(j.Fit(v, 1).ok());
  EXPECT_EQ(j.IntervalOf(6.0), 0);
  EXPECT_DOUBLE_EQ(j.goodness_of_fit(), 0.0);  // No split, no gain.
}

TEST(JenksTest, InvalidArguments) {
  JenksBreaks j;
  EXPECT_FALSE(j.Fit({1.0, 2.0}, 0).ok());
  EXPECT_FALSE(j.Fit({1.0}, 2).ok());
}

TEST(JenksTest, IdenticalValues) {
  std::vector<double> v(50, 42.0);
  JenksBreaks j;
  ASSERT_TRUE(j.Fit(v, 3).ok());
  EXPECT_GE(j.IntervalOf(42.0), 0);
  EXPECT_LT(j.IntervalOf(42.0), 3);
}

TEST(JenksTest, GoodnessImprovesWithMoreIntervals) {
  Rng rng(2);
  std::vector<double> v;
  for (int i = 0; i < 300; ++i) v.push_back(rng.Uniform(0, 100));
  JenksBreaks j2;
  JenksBreaks j8;
  ASSERT_TRUE(j2.Fit(v, 2).ok());
  ASSERT_TRUE(j8.Fit(v, 8).ok());
  EXPECT_GT(j8.goodness_of_fit(), j2.goodness_of_fit());
}

}  // namespace
}  // namespace lte::preprocess
