#include "baselines/active_learner.h"

#include <gtest/gtest.h>

namespace lte::baselines {
namespace {

// Pool: grid over [0,1]^2; target: x < 0.5 (linear boundary).
std::vector<std::vector<double>> GridPool(int side = 20) {
  std::vector<std::vector<double>> pool;
  for (int i = 0; i < side; ++i) {
    for (int j = 0; j < side; ++j) {
      pool.push_back({static_cast<double>(i) / (side - 1),
                      static_cast<double>(j) / (side - 1)});
    }
  }
  return pool;
}

TEST(ActiveLearnerTest, LearnsLinearTargetWithinBudget) {
  Rng rng(1);
  const auto pool = GridPool();
  const auto oracle = [&](int64_t i) {
    return pool[static_cast<size_t>(i)][0] < 0.5 ? 1.0 : 0.0;
  };
  ActiveLearnerOptions opt;
  ActiveLearnerSvm learner(opt);
  ASSERT_TRUE(learner.Explore(pool, oracle, 40, &rng).ok());
  EXPECT_EQ(learner.labels_used(), 40);

  int correct = 0;
  for (const auto& p : pool) {
    const double truth = p[0] < 0.5 ? 1.0 : 0.0;
    if (learner.Predict(p) == truth) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / pool.size(), 0.9);
}

TEST(ActiveLearnerTest, RespectsBudget) {
  Rng rng(2);
  const auto pool = GridPool(10);
  const auto oracle = [&](int64_t i) {
    return pool[static_cast<size_t>(i)][1] > 0.5 ? 1.0 : 0.0;
  };
  ActiveLearnerSvm learner(ActiveLearnerOptions{});
  ASSERT_TRUE(learner.Explore(pool, oracle, 17, &rng).ok());
  EXPECT_EQ(learner.labels_used(), 17);
}

TEST(ActiveLearnerTest, MoreBudgetDoesNotHurtMuch) {
  // Not strictly monotone, but a 4x budget should not be drastically worse.
  const auto pool = GridPool();
  const auto oracle = [&](int64_t i) {
    const auto& p = pool[static_cast<size_t>(i)];
    return (p[0] - 0.5) * (p[0] - 0.5) + (p[1] - 0.5) * (p[1] - 0.5) < 0.09
               ? 1.0
               : 0.0;
  };
  auto accuracy_at = [&](int64_t budget, uint64_t seed) {
    Rng rng(seed);
    ActiveLearnerSvm learner(ActiveLearnerOptions{});
    EXPECT_TRUE(learner.Explore(pool, oracle, budget, &rng).ok());
    int correct = 0;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (learner.Predict(pool[i]) == oracle(static_cast<int64_t>(i))) {
        ++correct;
      }
    }
    return static_cast<double>(correct) / static_cast<double>(pool.size());
  };
  EXPECT_GT(accuracy_at(80, 3), accuracy_at(12, 3) - 0.05);
}

TEST(ActiveLearnerTest, InvalidInputs) {
  Rng rng(4);
  ActiveLearnerSvm learner(ActiveLearnerOptions{});
  const auto oracle = [](int64_t) { return 1.0; };
  EXPECT_FALSE(learner.Explore({}, oracle, 10, &rng).ok());
  EXPECT_FALSE(learner.Explore({{0, 0}}, oracle, 0, &rng).ok());
}

TEST(ActiveLearnerTest, BudgetLargerThanPool) {
  Rng rng(5);
  const auto pool = GridPool(4);  // 16 points.
  const auto oracle = [&](int64_t i) {
    return pool[static_cast<size_t>(i)][0] < 0.5 ? 1.0 : 0.0;
  };
  ActiveLearnerSvm learner(ActiveLearnerOptions{});
  ASSERT_TRUE(learner.Explore(pool, oracle, 100, &rng).ok());
  EXPECT_LE(learner.labels_used(), 16);
}

}  // namespace
}  // namespace lte::baselines
