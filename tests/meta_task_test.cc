#include "core/meta_task.h"

#include <gtest/gtest.h>

namespace lte::core {
namespace {

std::vector<std::vector<double>> UniformPoints(Rng* rng, int n = 3000) {
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng->Uniform(), rng->Uniform()});
  }
  return pts;
}

MetaTaskGenOptions SmallOptions() {
  MetaTaskGenOptions opt;
  opt.k_u = 40;
  opt.k_s = 10;
  opt.k_q = 30;
  opt.delta = 5;
  opt.alpha = 3;
  opt.psi = 8;
  opt.min_cluster_sample = 512;
  return opt;
}

TEST(MetaTaskGeneratorTest, InitBuildsContexts) {
  Rng rng(1);
  MetaTaskGenerator gen(SmallOptions());
  ASSERT_TRUE(gen.Init(UniformPoints(&rng), &rng).ok());
  const SubspaceContext& ctx = gen.context();
  EXPECT_EQ(ctx.centers_u.size(), 40u);
  EXPECT_EQ(ctx.centers_s.size(), 10u);
  EXPECT_EQ(ctx.centers_q.size(), 30u);
  EXPECT_EQ(ctx.proximity_u.num_rows(), 40);
  EXPECT_EQ(ctx.proximity_u.num_cols(), 40);
  EXPECT_EQ(ctx.proximity_s.num_rows(), 10);
  EXPECT_EQ(ctx.proximity_s.num_cols(), 40);
}

TEST(MetaTaskGeneratorTest, TaskShapes) {
  Rng rng(2);
  MetaTaskGenerator gen(SmallOptions());
  ASSERT_TRUE(gen.Init(UniformPoints(&rng), &rng).ok());
  const MetaTask t = gen.GenerateTask(&rng);
  EXPECT_EQ(t.support_points.size(), 15u);  // k_s + delta.
  EXPECT_EQ(t.support_labels.size(), 15u);
  EXPECT_EQ(t.query_points.size(), 35u);  // k_q + delta.
  EXPECT_EQ(t.query_labels.size(), 35u);
  EXPECT_EQ(t.uis_feature.size(), 40u);  // k_u bits.
  EXPECT_FALSE(t.uis.empty());
  EXPECT_LE(static_cast<int64_t>(t.uis.parts().size()), 3);
}

TEST(MetaTaskGeneratorTest, LabelsConsistentWithUis) {
  Rng rng(3);
  MetaTaskGenerator gen(SmallOptions());
  ASSERT_TRUE(gen.Init(UniformPoints(&rng), &rng).ok());
  const MetaTask t = gen.GenerateTask(&rng);
  for (size_t i = 0; i < t.support_points.size(); ++i) {
    EXPECT_EQ(t.support_labels[i],
              t.uis.Contains(t.support_points[i]) ? 1.0 : 0.0);
  }
  for (size_t i = 0; i < t.query_points.size(); ++i) {
    EXPECT_EQ(t.query_labels[i],
              t.uis.Contains(t.query_points[i]) ? 1.0 : 0.0);
  }
}

TEST(MetaTaskGeneratorTest, UisFeatureBitsAreBinary) {
  Rng rng(4);
  MetaTaskGenerator gen(SmallOptions());
  ASSERT_TRUE(gen.Init(UniformPoints(&rng), &rng).ok());
  const MetaTask t = gen.GenerateTask(&rng);
  for (double b : t.uis_feature) {
    EXPECT_TRUE(b == 0.0 || b == 1.0);
  }
}

TEST(MetaTaskGeneratorTest, TasksVary) {
  Rng rng(5);
  MetaTaskGenerator gen(SmallOptions());
  ASSERT_TRUE(gen.Init(UniformPoints(&rng), &rng).ok());
  const std::vector<MetaTask> tasks = gen.GenerateTaskSet(10, &rng);
  // Not all tasks should share an identical feature vector.
  int distinct = 0;
  for (size_t i = 1; i < tasks.size(); ++i) {
    if (tasks[i].uis_feature != tasks[0].uis_feature) ++distinct;
  }
  EXPECT_GT(distinct, 0);
}

TEST(MetaTaskGeneratorTest, GenerateUisRespectsAlpha) {
  Rng rng(6);
  MetaTaskGenerator gen(SmallOptions());
  ASSERT_TRUE(gen.Init(UniformPoints(&rng), &rng).ok());
  const geom::Region r1 = gen.GenerateUis(1, 8, &rng);
  EXPECT_EQ(r1.parts().size(), 1u);
  const geom::Region r5 = gen.GenerateUis(5, 8, &rng);
  EXPECT_LE(r5.parts().size(), 5u);
  EXPECT_GE(r5.parts().size(), 1u);
}

TEST(MetaTaskGeneratorTest, ExpansionDefaultsToTenthOfKu) {
  MetaTaskGenOptions opt = SmallOptions();
  opt.expansion_l = -1;
  MetaTaskGenerator gen(opt);
  EXPECT_EQ(gen.expansion_l(), 4);  // 40 / 10.
  opt.expansion_l = 7;
  MetaTaskGenerator gen2(opt);
  EXPECT_EQ(gen2.expansion_l(), 7);
}

TEST(MetaTaskGeneratorTest, InitFailsOnTinySubspace) {
  Rng rng(7);
  MetaTaskGenerator gen(SmallOptions());
  EXPECT_FALSE(gen.Init(UniformPoints(&rng, 20), &rng).ok());
  EXPECT_FALSE(gen.Init({}, &rng).ok());
}

TEST(MetaTaskGeneratorTest, OneDimensionalSubspace) {
  Rng rng(8);
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 2000; ++i) pts.push_back({rng.Uniform()});
  MetaTaskGenerator gen(SmallOptions());
  ASSERT_TRUE(gen.Init(pts, &rng).ok());
  const MetaTask t = gen.GenerateTask(&rng);
  EXPECT_FALSE(t.uis.empty());
  EXPECT_EQ(t.support_points.front().size(), 1u);
}

}  // namespace
}  // namespace lte::core
