#include "svm/smo.h"

#include <gtest/gtest.h>

namespace lte::svm {
namespace {

// Builds the Gram matrix for a point set under a kernel.
std::vector<double> Gram(const std::vector<std::vector<double>>& x,
                         const Kernel& k, double gamma) {
  const auto n = static_cast<int64_t>(x.size());
  std::vector<double> g(static_cast<size_t>(n * n));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      g[static_cast<size_t>(i * n + j)] =
          k.Evaluate(x[static_cast<size_t>(i)], x[static_cast<size_t>(j)],
                     gamma);
    }
  }
  return g;
}

TEST(SmoTest, SeparableProblemFindsSeparator) {
  // 1-D points: negatives at -2,-1; positives at 1,2. Linear kernel.
  const std::vector<std::vector<double>> x = {{-2}, {-1}, {1}, {2}};
  const std::vector<double> y = {-1, -1, 1, 1};
  Kernel k;
  k.type = KernelType::kLinear;
  Rng rng(1);
  SmoResult res;
  ASSERT_TRUE(SolveSmo(Gram(x, k, 1.0), y, SmoOptions{}, &rng, &res).ok());
  // Decision value sign must match the labels.
  for (size_t i = 0; i < x.size(); ++i) {
    double f = res.bias;
    for (size_t j = 0; j < x.size(); ++j) {
      f += res.alphas[j] * y[j] * k.Evaluate(x[j], x[i], 1.0);
    }
    EXPECT_GT(f * y[i], 0.0) << "point " << i;
  }
  EXPECT_GT(res.num_support_vectors, 0);
}

TEST(SmoTest, AlphasRespectBoxConstraint) {
  const std::vector<std::vector<double>> x = {{-1}, {-0.5}, {0.5}, {1}};
  const std::vector<double> y = {-1, -1, 1, 1};
  Kernel k;
  k.type = KernelType::kRbf;
  Rng rng(2);
  SmoOptions opt;
  opt.c = 2.0;
  SmoResult res;
  ASSERT_TRUE(SolveSmo(Gram(x, k, 1.0), y, opt, &rng, &res).ok());
  for (double a : res.alphas) {
    EXPECT_GE(a, -1e-9);
    EXPECT_LE(a, opt.c + 1e-9);
  }
}

TEST(SmoTest, DualFeasibilitySumAlphaYZero) {
  const std::vector<std::vector<double>> x = {
      {-2, 0}, {-1, 1}, {1, -1}, {2, 0}, {1.5, 1}};
  const std::vector<double> y = {-1, -1, 1, 1, 1};
  Kernel k;
  k.type = KernelType::kRbf;
  Rng rng(3);
  SmoResult res;
  ASSERT_TRUE(SolveSmo(Gram(x, k, 0.5), y, SmoOptions{}, &rng, &res).ok());
  double s = 0.0;
  for (size_t i = 0; i < y.size(); ++i) s += res.alphas[i] * y[i];
  EXPECT_NEAR(s, 0.0, 1e-9);
}

TEST(SmoTest, InvalidInputs) {
  Rng rng(4);
  SmoResult res;
  EXPECT_FALSE(SolveSmo({}, {}, SmoOptions{}, &rng, &res).ok());
  EXPECT_FALSE(SolveSmo({1.0}, {0.5}, SmoOptions{}, &rng, &res).ok());
  EXPECT_FALSE(
      SolveSmo({1.0, 0.0, 0.0}, {1.0, -1.0}, SmoOptions{}, &rng, &res).ok());
}

}  // namespace
}  // namespace lte::svm
