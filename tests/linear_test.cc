#include "nn/linear.h"

#include <gtest/gtest.h>

namespace lte::nn {
namespace {

TEST(LinearTest, ForwardComputesAffineMap) {
  Rng rng(1);
  Linear layer(2, 2, &rng);
  // Overwrite parameters to known values via the flat interface.
  // Layout: weights row-major (out x in), then bias.
  std::vector<double> params = {1, 2,   // W row 0
                                3, 4,   // W row 1
                                0.5, -0.5};
  size_t offset = 0;
  layer.LoadParameters(params, &offset);
  EXPECT_EQ(offset, params.size());
  const std::vector<double> y = layer.Forward({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.5);
  EXPECT_DOUBLE_EQ(y[1], 6.5);
}

TEST(LinearTest, ParameterRoundTrip) {
  Rng rng(2);
  Linear layer(3, 4, &rng);
  EXPECT_EQ(layer.ParameterCount(), 3 * 4 + 4);
  std::vector<double> params;
  layer.AppendParameters(&params);
  EXPECT_EQ(params.size(), 16u);
  // Round-trip through LoadParameters.
  size_t offset = 0;
  layer.LoadParameters(params, &offset);
  std::vector<double> params2;
  layer.AppendParameters(&params2);
  EXPECT_EQ(params, params2);
}

TEST(LinearTest, BackwardGradInIsWTransposeG) {
  Rng rng(3);
  Linear layer(2, 2, &rng);
  std::vector<double> params = {1, 2, 3, 4, 0, 0};
  size_t offset = 0;
  layer.LoadParameters(params, &offset);
  const std::vector<double> gin = layer.Backward({1.0, 1.0}, {1.0, 1.0});
  // W^T g = [1+3, 2+4].
  EXPECT_DOUBLE_EQ(gin[0], 4.0);
  EXPECT_DOUBLE_EQ(gin[1], 6.0);
}

TEST(LinearTest, GradientsMatchFiniteDifference) {
  Rng rng(4);
  Linear layer(3, 2, &rng);
  const std::vector<double> x = {0.3, -0.7, 1.2};
  // Scalar objective: sum of outputs. dL/dy = (1, 1).
  auto objective = [&]() {
    const std::vector<double> y = layer.Forward(x);
    return y[0] + y[1];
  };
  layer.ZeroGrad();
  layer.Backward(x, {1.0, 1.0});
  std::vector<double> analytic;
  layer.AppendGradients(&analytic);

  std::vector<double> params;
  layer.AppendParameters(&params);
  const double eps = 1e-6;
  for (size_t i = 0; i < params.size(); ++i) {
    std::vector<double> p = params;
    p[i] += eps;
    size_t off = 0;
    layer.LoadParameters(p, &off);
    const double up = objective();
    p[i] -= 2 * eps;
    off = 0;
    layer.LoadParameters(p, &off);
    const double down = objective();
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric, 1e-5) << "param " << i;
    off = 0;
    layer.LoadParameters(params, &off);
  }
}

TEST(LinearTest, GradientsAccumulateAcrossBackwardCalls) {
  Rng rng(5);
  Linear layer(1, 1, &rng);
  layer.ZeroGrad();
  layer.Backward({2.0}, {1.0});
  layer.Backward({2.0}, {1.0});
  std::vector<double> grads;
  layer.AppendGradients(&grads);
  EXPECT_DOUBLE_EQ(grads[0], 4.0);  // dW accumulated twice.
  EXPECT_DOUBLE_EQ(grads[1], 2.0);  // db accumulated twice.
}

TEST(LinearTest, ApplyGradientsIsSgdStep) {
  Rng rng(6);
  Linear layer(1, 1, &rng);
  std::vector<double> params = {2.0, 1.0};
  size_t off = 0;
  layer.LoadParameters(params, &off);
  layer.ZeroGrad();
  layer.Backward({1.0}, {1.0});  // dW = 1, db = 1.
  layer.ApplyGradients(0.1);
  std::vector<double> updated;
  layer.AppendParameters(&updated);
  EXPECT_DOUBLE_EQ(updated[0], 1.9);
  EXPECT_DOUBLE_EQ(updated[1], 0.9);
}

}  // namespace
}  // namespace lte::nn
