#include "preprocess/tabular_encoder.h"

#include <gtest/gtest.h>

#include <sstream>

#include "data/synthetic.h"

namespace lte::preprocess {
namespace {

data::Table TwoColumnTable(Rng* rng, int n = 600) {
  // Column 0: bimodal (GMM-friendly); column 1: smooth ramp (JKC-friendly).
  data::Table t({"bimodal", "ramp"});
  for (int i = 0; i < n; ++i) {
    const double a =
        i % 2 == 0 ? rng->Normal(0.0, 0.5) : rng->Normal(10.0, 0.5);
    const double b = static_cast<double>(i) / n * 100.0;
    EXPECT_TRUE(t.AppendRow({a, b}).ok());
  }
  return t;
}

class EncoderModeTest : public ::testing::TestWithParam<EncodingMode> {};

TEST_P(EncoderModeTest, EncodedWidthMatchesDeclaredWidth) {
  Rng rng(1);
  const data::Table t = TwoColumnTable(&rng);
  EncoderOptions opt;
  opt.mode = GetParam();
  TabularEncoder enc(opt);
  ASSERT_TRUE(enc.Fit(t, &rng).ok());
  const std::vector<double> row = t.Row(0);
  const std::vector<double> encoded = enc.EncodeRow(row);
  EXPECT_EQ(static_cast<int64_t>(encoded.size()),
            enc.AttributeWidth(0) + enc.AttributeWidth(1));
  EXPECT_EQ(enc.ProjectedWidth({0, 1}),
            enc.AttributeWidth(0) + enc.AttributeWidth(1));
}

TEST_P(EncoderModeTest, EncodedValuesInUnitRange) {
  Rng rng(2);
  const data::Table t = TwoColumnTable(&rng);
  EncoderOptions opt;
  opt.mode = GetParam();
  TabularEncoder enc(opt);
  ASSERT_TRUE(enc.Fit(t, &rng).ok());
  for (int64_t r = 0; r < 20; ++r) {
    for (double v : enc.EncodeRow(t.Row(r))) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, EncoderModeTest,
                         ::testing::Values(EncodingMode::kMinMaxOnly,
                                           EncodingMode::kGmmOnly,
                                           EncodingMode::kJenksOnly,
                                           EncodingMode::kCombined,
                                           EncodingMode::kAuto));

TEST(TabularEncoderTest, CombinedWidth) {
  Rng rng(3);
  const data::Table t = TwoColumnTable(&rng);
  EncoderOptions opt;
  opt.mode = EncodingMode::kCombined;
  opt.num_gmm_components = 4;
  opt.num_jenks_intervals = 3;
  TabularEncoder enc(opt);
  ASSERT_TRUE(enc.Fit(t, &rng).ok());
  EXPECT_EQ(enc.AttributeWidth(0), 4 + 1 + 3 + 1);
}

TEST(TabularEncoderTest, OneHotIsExactlyOnePerModel) {
  Rng rng(4);
  const data::Table t = TwoColumnTable(&rng);
  EncoderOptions opt;
  opt.mode = EncodingMode::kGmmOnly;
  opt.num_gmm_components = 5;
  TabularEncoder enc(opt);
  ASSERT_TRUE(enc.Fit(t, &rng).ok());
  std::vector<double> out;
  enc.EncodeValue(0, 0.0, &out);
  ASSERT_EQ(out.size(), 6u);
  double ones = 0.0;
  for (size_t i = 0; i < 5; ++i) ones += out[i];
  EXPECT_DOUBLE_EQ(ones, 1.0);
}

TEST(TabularEncoderTest, AutoPicksGmmForPeakyAndJenksForSmooth) {
  Rng rng(5);
  const data::Table t = TwoColumnTable(&rng, 2000);
  EncoderOptions opt;
  opt.mode = EncodingMode::kAuto;
  TabularEncoder enc(opt);
  ASSERT_TRUE(enc.Fit(t, &rng).ok());
  EXPECT_EQ(enc.AttributeMode(0), EncodingMode::kGmmOnly);
  EXPECT_EQ(enc.AttributeMode(1), EncodingMode::kJenksOnly);
}

TEST(TabularEncoderTest, EncodeProjectedMatchesEncodeValueOrder) {
  Rng rng(6);
  const data::Table t = TwoColumnTable(&rng);
  TabularEncoder enc;
  ASSERT_TRUE(enc.Fit(t, &rng).ok());
  const std::vector<double> p = enc.EncodeProjected({50.0}, {1});
  std::vector<double> direct;
  enc.EncodeValue(1, 50.0, &direct);
  EXPECT_EQ(p, direct);
}

TEST(TabularEncoderTest, NearbyValuesShareBucket) {
  Rng rng(7);
  const data::Table t = TwoColumnTable(&rng);
  // One GMM component per mode so nearby values cannot straddle an
  // intra-mode component boundary.
  EncoderOptions opt;
  opt.mode = EncodingMode::kGmmOnly;
  opt.num_gmm_components = 2;
  TabularEncoder enc(opt);
  ASSERT_TRUE(enc.Fit(t, &rng).ok());
  // Two values in the same mode of the bimodal column: identical one-hot.
  std::vector<double> a;
  std::vector<double> b;
  enc.EncodeValue(0, 0.0, &a);
  enc.EncodeValue(0, 0.1, &b);
  for (int64_t i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(a[static_cast<size_t>(i)], b[static_cast<size_t>(i)]);
  }
}

TEST(TabularEncoderTest, EmptyTableFails) {
  Rng rng(8);
  data::Table t({"x"});
  TabularEncoder enc;
  EXPECT_FALSE(enc.Fit(t, &rng).ok());
}

TEST(TabularEncoderTest, WorksOnSyntheticDatasets) {
  Rng rng(9);
  const data::Table sdss = data::MakeSdssLike(800, &rng);
  TabularEncoder enc;
  ASSERT_TRUE(enc.Fit(sdss, &rng).ok());
  EXPECT_EQ(static_cast<int64_t>(enc.EncodeRow(sdss.Row(0)).size()),
            enc.ProjectedWidth({0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(CategoricalEncodingTest, OneHotOverDistinctValues) {
  Rng rng(20);
  data::Table t({"cat", "num"});
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(
        t.AppendRow({static_cast<double>(i % 3), rng.Uniform()}).ok());
  }
  EncoderOptions opt;
  opt.categorical_attributes = {0};
  TabularEncoder enc(opt);
  ASSERT_TRUE(enc.Fit(t, &rng).ok());
  EXPECT_EQ(enc.AttributeMode(0), EncodingMode::kCategorical);
  EXPECT_EQ(enc.AttributeWidth(0), 4);  // 3 categories + "other".

  std::vector<double> out;
  enc.EncodeValue(0, 1.0, &out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 0.0);
  EXPECT_DOUBLE_EQ(out[3], 0.0);
  // Exactly one bit on.
  double total = 0;
  for (double v : out) total += v;
  EXPECT_DOUBLE_EQ(total, 1.0);
}

TEST(CategoricalEncodingTest, UnseenValueMapsToOther) {
  Rng rng(21);
  data::Table t({"cat"});
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(t.AppendRow({static_cast<double>(i % 2)}).ok());
  }
  EncoderOptions opt;
  opt.categorical_attributes = {0};
  TabularEncoder enc(opt);
  ASSERT_TRUE(enc.Fit(t, &rng).ok());
  std::vector<double> out;
  enc.EncodeValue(0, 99.0, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_DOUBLE_EQ(out[2], 1.0);  // "other" slot.
}

TEST(CategoricalEncodingTest, MaxCategoriesKeepsMostFrequent) {
  Rng rng(22);
  data::Table t({"cat"});
  // Value 0 dominates; values 1..9 are rare.
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(t.AppendRow({0.0}).ok());
  for (int i = 1; i < 10; ++i) {
    ASSERT_TRUE(t.AppendRow({static_cast<double>(i)}).ok());
  }
  EncoderOptions opt;
  opt.categorical_attributes = {0};
  opt.max_categories = 2;
  opt.min_sample_rows = 600;  // Use (almost) the whole table.
  TabularEncoder enc(opt);
  ASSERT_TRUE(enc.Fit(t, &rng).ok());
  EXPECT_LE(enc.AttributeWidth(0), 3);  // <= 2 categories + other.
  std::vector<double> dominant;
  enc.EncodeValue(0, 0.0, &dominant);
  EXPECT_DOUBLE_EQ(dominant.back(), 0.0);  // Dominant value is kept.
}

TEST(CategoricalEncodingTest, CarListingsEndToEnd) {
  Rng rng(23);
  const data::Table t = data::MakeCarListings(2000, &rng);
  ASSERT_EQ(t.num_columns(), 7);
  EncoderOptions opt;
  opt.categorical_attributes = {5, 6};
  TabularEncoder enc(opt);
  ASSERT_TRUE(enc.Fit(t, &rng).ok());
  EXPECT_EQ(enc.AttributeMode(5), EncodingMode::kCategorical);
  EXPECT_EQ(enc.AttributeMode(6), EncodingMode::kCategorical);
  EXPECT_EQ(enc.AttributeMode(0), EncodingMode::kCombined);
  const std::vector<double> encoded = enc.EncodeRow(t.Row(0));
  EXPECT_EQ(static_cast<int64_t>(encoded.size()),
            enc.ProjectedWidth({0, 1, 2, 3, 4, 5, 6}));
}

TEST(CategoricalEncodingTest, SurvivesSerialization) {
  Rng rng(24);
  const data::Table t = data::MakeCarListings(1000, &rng);
  EncoderOptions opt;
  opt.categorical_attributes = {5, 6};
  TabularEncoder enc(opt);
  ASSERT_TRUE(enc.Fit(t, &rng).ok());

  std::stringstream buf;
  BinaryWriter w(&buf);
  enc.Save(&w);
  TabularEncoder loaded;
  BinaryReader r(&buf);
  ASSERT_TRUE(loaded.Load(&r).ok());
  EXPECT_EQ(loaded.AttributeMode(5), EncodingMode::kCategorical);
  for (int64_t row = 0; row < 10; ++row) {
    EXPECT_EQ(loaded.EncodeRow(t.Row(row)), enc.EncodeRow(t.Row(row)));
  }
}

}  // namespace
}  // namespace lte::preprocess
