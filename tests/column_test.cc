#include "data/column.h"

#include <gtest/gtest.h>

namespace lte::data {
namespace {

TEST(ColumnTest, EmptyColumn) {
  Column c("price");
  EXPECT_EQ(c.name(), "price");
  EXPECT_EQ(c.size(), 0);
  EXPECT_TRUE(c.empty());
  EXPECT_DOUBLE_EQ(c.min(), 0.0);
  EXPECT_DOUBLE_EQ(c.max(), 0.0);
}

TEST(ColumnTest, AppendTracksMinMax) {
  Column c("x");
  c.Append(3.0);
  EXPECT_DOUBLE_EQ(c.min(), 3.0);
  EXPECT_DOUBLE_EQ(c.max(), 3.0);
  c.Append(-1.0);
  c.Append(7.0);
  EXPECT_DOUBLE_EQ(c.min(), -1.0);
  EXPECT_DOUBLE_EQ(c.max(), 7.0);
  EXPECT_EQ(c.size(), 3);
  EXPECT_DOUBLE_EQ(c.value(1), -1.0);
}

TEST(ColumnTest, BulkConstructorComputesMinMax) {
  Column c("y", {5.0, 2.0, 9.0, 2.0});
  EXPECT_EQ(c.size(), 4);
  EXPECT_DOUBLE_EQ(c.min(), 2.0);
  EXPECT_DOUBLE_EQ(c.max(), 9.0);
}

TEST(ColumnTest, NegativeValues) {
  Column c("z", {-5.0, -2.0});
  EXPECT_DOUBLE_EQ(c.min(), -5.0);
  EXPECT_DOUBLE_EQ(c.max(), -2.0);
}

}  // namespace
}  // namespace lte::data
