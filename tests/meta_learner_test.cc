#include "core/meta_learner.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.h"

namespace lte::core {
namespace {

MetaLearnerOptions SmallOptions(bool memory) {
  MetaLearnerOptions opt;
  opt.uis_feature_dim = 12;
  opt.tuple_feature_dim = 6;
  opt.embedding_size = 8;
  opt.clf_hidden = {8};
  opt.use_memory = memory;
  opt.num_memory_modes = 4;
  opt.sigma = 0.1;
  return opt;
}

std::vector<double> RandomVec(Rng* rng, int64_t n, bool binary = false) {
  std::vector<double> v(static_cast<size_t>(n));
  for (double& x : v) {
    x = binary ? (rng->Bernoulli(0.4) ? 1.0 : 0.0) : rng->Uniform();
  }
  return v;
}

TEST(MetaLearnerTest, AttentionIsDistribution) {
  Rng rng(1);
  MetaLearner learner(SmallOptions(true), &rng);
  const std::vector<double> a = learner.Attention(RandomVec(&rng, 12, true));
  ASSERT_EQ(a.size(), 4u);
  double sum = 0.0;
  for (double x : a) {
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(MetaLearnerTest, AttentionEmptyWithoutMemory) {
  Rng rng(2);
  MetaLearner learner(SmallOptions(false), &rng);
  EXPECT_TRUE(learner.Attention(RandomVec(&rng, 12, true)).empty());
}

TEST(MetaLearnerTest, TaskModelInitializedFromGlobals) {
  Rng rng(3);
  MetaLearner learner(SmallOptions(false), &rng);
  const std::vector<double> v_r = RandomVec(&rng, 12, true);
  TaskModel tm = learner.CreateTaskModel(v_r);
  // Without memory, θ == φ exactly.
  EXPECT_EQ(tm.f_tau().GetParameters(), learner.phi_tau().GetParameters());
  EXPECT_EQ(tm.f_clf().GetParameters(), learner.phi_clf().GetParameters());
  EXPECT_EQ(tm.f_r().GetParameters(), learner.phi_r().GetParameters());
}

TEST(MetaLearnerTest, MemoryBiasesThetaR) {
  Rng rng(4);
  MetaLearner learner(SmallOptions(true), &rng);
  const std::vector<double> v_r = RandomVec(&rng, 12, true);
  TaskModel tm = learner.CreateTaskModel(v_r);
  // With memory, θ_R = φ_R − σ ω_R ≠ φ_R (ω_R ~ N(0, 0.01) rows, almost
  // surely non-zero).
  EXPECT_NE(tm.f_r().GetParameters(), learner.phi_r().GetParameters());
  // But still close (σ and memory rows are small).
  const std::vector<double> a = tm.f_r().GetParameters();
  const std::vector<double> b = learner.phi_r().GetParameters();
  double max_diff = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  EXPECT_LT(max_diff, 0.1);
}

TEST(MetaLearnerTest, ForwardProducesFiniteLogit) {
  Rng rng(5);
  for (bool memory : {false, true}) {
    MetaLearner learner(SmallOptions(memory), &rng);
    TaskModel tm = learner.CreateTaskModel(RandomVec(&rng, 12, true));
    const double logit = tm.Logit(RandomVec(&rng, 6));
    EXPECT_TRUE(std::isfinite(logit));
    const double p = tm.PredictProbability(RandomVec(&rng, 6));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(MetaLearnerTest, TrainingReducesLossOnTinyTask) {
  Rng rng(6);
  for (bool memory : {false, true}) {
    MetaLearner learner(SmallOptions(memory), &rng);
    TaskModel tm = learner.CreateTaskModel(RandomVec(&rng, 12, true));
    // Tiny synthetic task: label = 1 iff first feature > 0.5.
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 40; ++i) {
      std::vector<double> t = RandomVec(&rng, 6);
      y.push_back(t[0] > 0.5 ? 1.0 : 0.0);
      x.push_back(std::move(t));
    }
    const double before = tm.EvaluateLoss(x, y);
    for (int step = 0; step < 150; ++step) {
      tm.ZeroGrad();
      tm.AccumulateBatch(x, y);
      tm.ApplyAccumulated(0.3);
    }
    const double after = tm.EvaluateLoss(x, y);
    EXPECT_LT(after, before) << "memory=" << memory;
    EXPECT_LT(after, 0.4) << "memory=" << memory;
  }
}

// Gradient check of the full composed model (f_R + f_tau + M_cp + f_clf)
// against finite differences, for both memory settings.
TEST(MetaLearnerTest, ComposedGradientsMatchFiniteDifference) {
  Rng rng(7);
  for (bool memory : {false, true}) {
    MetaLearner learner(SmallOptions(memory), &rng);
    const std::vector<double> v_r = RandomVec(&rng, 12, true);
    TaskModel tm = learner.CreateTaskModel(v_r);
    const std::vector<std::vector<double>> x = {RandomVec(&rng, 6)};
    const std::vector<double> y = {1.0};

    tm.ZeroGrad();
    tm.AccumulateBatch(x, y);
    const std::vector<double> g_tau = tm.f_tau().GetGradients();

    // Perturb each f_tau parameter and compare.
    nn::Mlp probe = tm.f_tau();
    const std::vector<double> params = probe.GetParameters();
    const double eps = 1e-6;
    for (size_t i = 0; i < params.size(); i += 11) {
      auto loss_with = [&](double delta) {
        std::vector<double> p = params;
        p[i] += delta;
        TaskModel copy = tm;  // Identical blocks, perturbed f_tau.
        copy.mutable_f_tau()->SetParameters(p);
        return copy.EvaluateLoss(x, y);
      };
      const double numeric = (loss_with(eps) - loss_with(-eps)) / (2 * eps);
      EXPECT_NEAR(g_tau[i], numeric, 1e-5)
          << "param " << i << " memory=" << memory;
    }
  }
}

TEST(MetaLearnerTest, UpdateMemoriesMovesMemoryTowardTask) {
  Rng rng(8);
  MetaLearner learner(SmallOptions(true), &rng);
  const std::vector<double> v_r = RandomVec(&rng, 12, true);
  TaskModel tm = learner.CreateTaskModel(v_r);
  // One local step so support_grad_r is non-zero.
  tm.ZeroGrad();
  tm.AccumulateBatch({RandomVec(&rng, 6)}, {1.0});
  tm.ApplyAccumulated(0.1);

  const nn::Matrix before = learner.memory_vr();
  learner.UpdateMemories(tm, /*eta=*/0.5, /*beta=*/0.5, /*gamma=*/0.5);
  const nn::Matrix& after = learner.memory_vr();
  // The attended rows blend toward v_R: the matrix must change.
  bool changed = false;
  for (int64_t r = 0; r < before.rows() && !changed; ++r) {
    for (int64_t c = 0; c < before.cols(); ++c) {
      if (before(r, c) != after(r, c)) {
        changed = true;
        break;
      }
    }
  }
  EXPECT_TRUE(changed);
}

TEST(MetaLearnerTest, ZeroEtaKeepsMemoryScaled) {
  Rng rng(9);
  MetaLearner learner(SmallOptions(true), &rng);
  TaskModel tm = learner.CreateTaskModel(RandomVec(&rng, 12, true));
  const nn::Matrix before = learner.memory_vr();
  learner.UpdateMemories(tm, /*eta=*/0.0, /*beta=*/0.0, /*gamma=*/0.0);
  // eta = 0 leaves M_vR unchanged.
  for (int64_t r = 0; r < before.rows(); ++r) {
    for (int64_t c = 0; c < before.cols(); ++c) {
      EXPECT_DOUBLE_EQ(before(r, c), learner.memory_vr()(r, c));
    }
  }
}

TEST(MetaLearnerTest, RequiresTupleFeatureDim) {
  Rng rng(10);
  MetaLearnerOptions opt = SmallOptions(false);
  opt.tuple_feature_dim = 0;
  EXPECT_DEATH(MetaLearner(opt, &rng), "tuple_feature_dim");
}

}  // namespace
}  // namespace lte::core
