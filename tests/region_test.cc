#include "geom/region.h"

#include <gtest/gtest.h>

namespace lte::geom {
namespace {

TEST(ConvexRegionTest, TwoDimensionalHull) {
  const ConvexRegion r = ConvexRegion::HullOf({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  EXPECT_EQ(r.dimension(), 2);
  EXPECT_TRUE(r.Contains({1, 1}));
  EXPECT_TRUE(r.Contains({0, 0}));
  EXPECT_FALSE(r.Contains({3, 1}));
}

TEST(ConvexRegionTest, OneDimensionalInterval) {
  const ConvexRegion r = ConvexRegion::HullOf({{3.0}, {1.0}, {2.0}});
  EXPECT_EQ(r.dimension(), 1);
  EXPECT_DOUBLE_EQ(r.lo(), 1.0);
  EXPECT_DOUBLE_EQ(r.hi(), 3.0);
  EXPECT_TRUE(r.Contains({2.5}));
  EXPECT_TRUE(r.Contains({1.0}));
  EXPECT_FALSE(r.Contains({0.5}));
  EXPECT_FALSE(r.Contains({3.5}));
}

TEST(ConvexRegionTest, EmptyRegion) {
  const ConvexRegion r = ConvexRegion::HullOf({});
  EXPECT_TRUE(r.empty());
  EXPECT_FALSE(r.Contains({0.0}));
}

TEST(ConvexRegionTest, DegenerateSinglePoint2D) {
  const ConvexRegion r = ConvexRegion::HullOf({{1, 1}});
  EXPECT_TRUE(r.Contains({1, 1}));
  EXPECT_FALSE(r.Contains({2, 2}));
}

TEST(RegionTest, UnionOfDisjointParts) {
  Region region;
  region.AddPart(ConvexRegion::HullOf({{0, 0}, {1, 0}, {1, 1}, {0, 1}}));
  region.AddPart(ConvexRegion::HullOf({{5, 5}, {6, 5}, {6, 6}, {5, 6}}));
  EXPECT_EQ(region.parts().size(), 2u);
  EXPECT_TRUE(region.Contains({0.5, 0.5}));
  EXPECT_TRUE(region.Contains({5.5, 5.5}));
  EXPECT_FALSE(region.Contains({3.0, 3.0}));  // Between the parts.
}

TEST(RegionTest, ConcaveShapeFromConvexParts) {
  // An L-shape: two rectangles sharing a corner region.
  Region region;
  region.AddPart(ConvexRegion::HullOf({{0, 0}, {3, 0}, {3, 1}, {0, 1}}));
  region.AddPart(ConvexRegion::HullOf({{0, 0}, {1, 0}, {1, 3}, {0, 3}}));
  EXPECT_TRUE(region.Contains({2.5, 0.5}));
  EXPECT_TRUE(region.Contains({0.5, 2.5}));
  // The concave notch is outside even though its bounding box is covered.
  EXPECT_FALSE(region.Contains({2.5, 2.5}));
}

TEST(RegionTest, EmptyRegion) {
  Region region;
  EXPECT_TRUE(region.empty());
  EXPECT_FALSE(region.Contains({0, 0}));
}

TEST(RegionTest, EmptyPartsAreDropped) {
  Region region;
  region.AddPart(ConvexRegion::HullOf({}));
  EXPECT_TRUE(region.empty());
}

}  // namespace
}  // namespace lte::geom
