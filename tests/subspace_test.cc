#include "data/subspace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace lte::data {
namespace {

TEST(SubspaceTest, DecomposeCoversAllAttributesDisjointly) {
  Rng rng(1);
  const std::vector<int64_t> attrs = {0, 1, 2, 3, 4, 5, 6, 7};
  const std::vector<Subspace> subs = DecomposeSpace(attrs, 2, &rng);
  EXPECT_EQ(subs.size(), 4u);
  std::set<int64_t> seen;
  for (const Subspace& s : subs) {
    EXPECT_EQ(s.dimension(), 2);
    for (int64_t a : s.attribute_indices) {
      EXPECT_TRUE(seen.insert(a).second) << "attribute appears twice";
    }
  }
  EXPECT_EQ(seen.size(), attrs.size());
}

TEST(SubspaceTest, OddLeftoverFormsOneDimensionalSubspace) {
  Rng rng(2);
  const std::vector<Subspace> subs = DecomposeSpace({0, 1, 2, 3, 4}, 2, &rng);
  EXPECT_EQ(subs.size(), 3u);
  EXPECT_EQ(subs.back().dimension(), 1);
}

TEST(SubspaceTest, DecompositionIsRandomized) {
  const std::vector<int64_t> attrs = {0, 1, 2, 3, 4, 5, 6, 7};
  Rng rng_a(1);
  Rng rng_b(99);
  const auto a = DecomposeSpace(attrs, 2, &rng_a);
  const auto b = DecomposeSpace(attrs, 2, &rng_b);
  bool any_different = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].attribute_indices != b[i].attribute_indices) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(SubspaceTest, ProjectRows) {
  Table t({"a", "b", "c"});
  ASSERT_TRUE(t.AppendRow({1, 2, 3}).ok());
  ASSERT_TRUE(t.AppendRow({4, 5, 6}).ok());
  const Subspace s{{2, 0}};
  const auto pts = ProjectRows(t, s);
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0], (std::vector<double>{3, 1}));
  EXPECT_EQ(pts[1], (std::vector<double>{6, 4}));
}

TEST(SubspaceTest, ProjectSelectedRows) {
  Table t({"a", "b"});
  ASSERT_TRUE(t.AppendRow({1, 2}).ok());
  ASSERT_TRUE(t.AppendRow({3, 4}).ok());
  ASSERT_TRUE(t.AppendRow({5, 6}).ok());
  const Subspace s{{1}};
  const auto pts = ProjectRows(t, s, {2, 0});
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[0], (std::vector<double>{6}));
  EXPECT_EQ(pts[1], (std::vector<double>{2}));
}

}  // namespace
}  // namespace lte::data
