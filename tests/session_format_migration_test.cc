// Session checkpoint format v2 migration battery.
//
// The committed golden fixtures (tests/testdata/golden_v1.*) were written by
// a pre-format-v2 build — before per-subspace exploration policies existed —
// and pin the v1 compatibility contract forever:
//
//  * golden_v1.ltemodel / golden_v1.ltesession load on the current tree; the
//    restored session gets the implicit v1 policy (uncertainty sampling) on
//    every subspace and serves the exact match set recorded at fixture time
//    (golden_v1_matches.txt).
//  * A v1 session re-saved by this tree upgrades to v2 and becomes a fixed
//    point: save -> load -> save is byte-identical.
//  * Fresh v2 checkpoints round-trip byte-identically for every policy kind.
//  * Corrupting the v1 fixture (truncation, header bit flips) fails with an
//    error Status, never a crash.
//
// Fixture recipe (regenerate only if the v1 format itself must be re-pinned;
// the generator source is reproduced below so no pre-v2 checkout is needed —
// but note it must be BUILT against a pre-v2 tree to emit genuine v1 bytes):
//   table     = data::MakeBlobs(1200, 4, 5, &Rng(23))
//   subspaces = {{0, 1}, {2, 3}}
//   options   = the SmallExplorerOptions of session_persistence_test.cc
//   pretrain  with Rng(23)  -> fingerprint 0x896816A5A8EC51FB
//   session: threads=1, SeedRng(777), StartExploration(kMetaStar) on labels
//     "tuple[0] < min + 0.35 * range" over the initial tuples, then one
//     3-point ContinueExploration per subspace using initial tuples
//     (s + 2 + j) % count relabelled under the same threshold; Save; dump
//     RetrieveMatches(table, -1) to golden_v1_matches.txt.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/exploration_model.h"
#include "core/exploration_session.h"
#include "data/synthetic.h"
#include "policy/suggest_policy.h"

namespace lte::core {
namespace {

constexpr uint64_t kGoldenFingerprint = 0x896816A5A8EC51FBULL;

std::string TestDataPath(const std::string& name) {
  return std::string(LTE_TESTDATA_DIR) + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

uint64_t HeaderU64(const std::string& bytes, size_t offset) {
  uint64_t v = 0;
  EXPECT_GE(bytes.size(), offset + 8);
  std::memcpy(&v, bytes.data() + offset, 8);
  return v;
}

class SessionFormatMigrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(23);
    table_ = data::MakeBlobs(1200, 4, 5, &rng);
    subspaces_ = {data::Subspace{{0, 1}}, data::Subspace{{2, 3}}};
    // The model artifact carries its own options; the constructor argument
    // is irrelevant after Load.
    model_ = std::make_shared<ExplorationModel>(ExplorerOptions{});
    ASSERT_TRUE(model_->Load(TestDataPath("golden_v1.ltemodel")).ok());
    ASSERT_EQ(model_->fingerprint(), kGoldenFingerprint)
        << "golden model fixture drifted — the v1 compatibility pin is void";
  }

  std::vector<std::vector<double>> UserLabels() const {
    std::vector<std::vector<double>> labels(subspaces_.size());
    for (size_t s = 0; s < subspaces_.size(); ++s) {
      const data::Column& col =
          table_.column(subspaces_[s].attribute_indices[0]);
      const double threshold = col.min() + 0.35 * (col.max() - col.min());
      for (const auto& tuple :
           *model_->InitialTuples(static_cast<int64_t>(s))) {
        labels[s].push_back(tuple[0] < threshold ? 1.0 : 0.0);
      }
    }
    return labels;
  }

  std::vector<int64_t> GoldenMatches() const {
    std::ifstream in(TestDataPath("golden_v1_matches.txt"));
    EXPECT_TRUE(in.good());
    std::vector<int64_t> matches;
    int64_t m = 0;
    while (in >> m) matches.push_back(m);
    return matches;
  }

  data::Table table_;
  std::vector<data::Subspace> subspaces_;
  std::shared_ptr<ExplorationModel> model_;
};

// A v1 checkpoint loads on the v2 tree: every adapted subspace gets the
// implicit v1 policy (uncertainty sampling), the rng resumes, and the
// restored session reproduces the match set recorded at fixture time.
TEST_F(SessionFormatMigrationTest, GoldenV1LoadsWithDefaultPolicy) {
  const std::string bytes = ReadFileBytes(TestDataPath("golden_v1.ltesession"));
  ASSERT_EQ(HeaderU64(bytes, 8), 1u) << "fixture is not a v1 stream";

  ExplorationSession session(model_, 1);
  ASSERT_TRUE(session.Load(TestDataPath("golden_v1.ltesession")).ok());
  ASSERT_EQ(session.active_subspaces(), 2);
  ASSERT_NE(session.session_rng(), nullptr);
  for (int64_t s = 0; s < 2; ++s) {
    const policy::SuggestPolicy* p = session.suggest_policy(s);
    ASSERT_NE(p, nullptr) << "subspace " << s;
    EXPECT_EQ(p->kind(), policy::PolicyKind::kUncertainty);
    EXPECT_FALSE(p->stochastic());
  }

  const std::vector<int64_t> expected = GoldenMatches();
  ASSERT_FALSE(expected.empty());
  std::vector<int64_t> matches;
  ASSERT_TRUE(session.RetrieveMatches(table_, -1, &matches).ok());
  EXPECT_EQ(matches, expected);

  // The migrated default policy is live: SuggestTuples works without any
  // reconfiguration, exactly as it did on the v1 tree.
  std::vector<int64_t> suggested;
  ASSERT_TRUE(
      session.SuggestTuples(0, *model_->InitialTuples(0), 3, &suggested).ok());
  EXPECT_EQ(suggested.size(), 3u);
}

// Re-saving a migrated v1 session writes format v2, and v2 is a fixed
// point: save -> load -> save is byte-identical.
TEST_F(SessionFormatMigrationTest, GoldenV1UpgradesToV2FixedPoint) {
  ExplorationSession session(model_, 1);
  ASSERT_TRUE(session.Load(TestDataPath("golden_v1.ltesession")).ok());
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(session.SaveToStream(&out).ok());
  const std::string v2 = out.str();
  EXPECT_EQ(HeaderU64(v2, 8), 2u);

  ExplorationSession reloaded(model_, 1);
  std::istringstream in(v2, std::ios::binary);
  ASSERT_TRUE(reloaded.LoadFromStream(&in).ok());
  std::ostringstream out2(std::ios::binary);
  ASSERT_TRUE(reloaded.SaveToStream(&out2).ok());
  EXPECT_EQ(v2, out2.str());

  // The upgrade changed the container version, not the user's results.
  std::vector<int64_t> matches;
  ASSERT_TRUE(reloaded.RetrieveMatches(table_, -1, &matches).ok());
  EXPECT_EQ(matches, GoldenMatches());
}

// Fresh v2 checkpoints round-trip byte-identically for every policy kind,
// with mid-stream policy state (consumed tau budget, advanced rng, bootstrap
// committees) in the payload.
TEST_F(SessionFormatMigrationTest, V2RoundTripsByteIdenticallyPerPolicyKind) {
  std::vector<policy::PolicyOptions> menu(5);
  menu[0].kind = policy::PolicyKind::kUncertainty;
  menu[1].kind = policy::PolicyKind::kEpsilonGreedy;
  menu[1].epsilon = 0.3;
  menu[2].kind = policy::PolicyKind::kTauFirst;
  menu[2].tau = 4;
  menu[3].kind = policy::PolicyKind::kSoftmax;
  menu[4].kind = policy::PolicyKind::kBootstrap;
  menu[4].bootstrap_bags = 4;

  for (const policy::PolicyOptions& o : menu) {
    ExplorationSession session(model_, 1);
    session.SeedRng(321);
    ASSERT_TRUE(session
                    .StartExploration(UserLabels(), Variant::kMetaStar,
                                      session.session_rng())
                    .ok());
    std::vector<int64_t> suggested;
    for (int64_t s = 0; s < 2; ++s) {
      ASSERT_TRUE(session.ConfigureSuggestPolicy(s, o).ok());
      ASSERT_TRUE(
          session.SuggestTuples(s, *model_->InitialTuples(s), 3, &suggested)
              .ok());
    }
    std::ostringstream out(std::ios::binary);
    ASSERT_TRUE(session.SaveToStream(&out).ok());

    ExplorationSession restored(model_, 1);
    std::istringstream in(out.str(), std::ios::binary);
    ASSERT_TRUE(restored.LoadFromStream(&in).ok());
    const policy::SuggestPolicy* p = restored.suggest_policy(0);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->kind(), o.kind);
    std::ostringstream out2(std::ios::binary);
    ASSERT_TRUE(restored.SaveToStream(&out2).ok());
    EXPECT_EQ(out.str(), out2.str())
        << policy::PolicyKindName(o.kind) << " round-trip not byte-identical";
  }
}

// The corruption battery holds for genuine v1 bytes too: truncation at
// every byte boundary and bit flips across the header (magic, version,
// fingerprint stamp) are error Statuses, never crashes or silent loads.
TEST_F(SessionFormatMigrationTest, GoldenV1CorruptionFailsCleanly) {
  const std::string saved = ReadFileBytes(TestDataPath("golden_v1.ltesession"));
  ASSERT_GE(saved.size(), 24u);
  for (size_t len = 0; len < saved.size(); ++len) {
    ExplorationSession session(model_, 1);
    std::istringstream in(saved.substr(0, len), std::ios::binary);
    ASSERT_FALSE(session.LoadFromStream(&in).ok())
        << "truncation at byte " << len << " loaded";
  }
  for (size_t byte = 0; byte < 24; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = saved;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      ExplorationSession session(model_, 1);
      std::istringstream in(corrupt, std::ios::binary);
      ASSERT_FALSE(session.LoadFromStream(&in).ok())
          << "flip of byte " << byte << " bit " << bit;
      EXPECT_EQ(session.active_subspaces(), 0);
    }
  }
  // An unknown future version (v3) is rejected, not misparsed.
  std::string future = saved;
  future[8] = 3;
  ExplorationSession session(model_, 1);
  std::istringstream in(future, std::ios::binary);
  const Status st = session.LoadFromStream(&in);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace lte::core
