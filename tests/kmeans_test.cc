#include "cluster/kmeans.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.h"

namespace lte::cluster {
namespace {

std::vector<std::vector<double>> ThreeBlobs(Rng* rng, int per_blob = 100) {
  const std::vector<std::vector<double>> centers = {
      {0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  std::vector<std::vector<double>> pts;
  for (const auto& c : centers) {
    for (int i = 0; i < per_blob; ++i) {
      pts.push_back({c[0] + rng->Normal(0, 0.5), c[1] + rng->Normal(0, 0.5)});
    }
  }
  return pts;
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  Rng rng(1);
  const auto pts = ThreeBlobs(&rng);
  KMeansOptions opt;
  opt.k = 3;
  KMeansResult res;
  ASSERT_TRUE(KMeans(pts, opt, &rng, &res).ok());
  ASSERT_EQ(res.centers.size(), 3u);

  // Every true blob center should be close to some found center.
  for (const std::vector<double>& truth :
       {std::vector<double>{0, 0}, {10, 0}, {0, 10}}) {
    double best = 1e18;
    for (const auto& c : res.centers) {
      best = std::min(best, EuclideanDistance(truth, c));
    }
    EXPECT_LT(best, 1.0);
  }
}

TEST(KMeansTest, AssignmentsConsistentWithCenters) {
  Rng rng(2);
  const auto pts = ThreeBlobs(&rng);
  KMeansOptions opt;
  opt.k = 3;
  KMeansResult res;
  ASSERT_TRUE(KMeans(pts, opt, &rng, &res).ok());
  ASSERT_EQ(res.assignments.size(), pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    const auto assigned = static_cast<size_t>(res.assignments[i]);
    const double d_assigned = SquaredDistance(pts[i], res.centers[assigned]);
    for (const auto& c : res.centers) {
      EXPECT_LE(d_assigned, SquaredDistance(pts[i], c) + 1e-9);
    }
  }
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  Rng rng(3);
  const auto pts = ThreeBlobs(&rng);
  KMeansOptions opt;
  KMeansResult res2;
  KMeansResult res6;
  opt.k = 2;
  ASSERT_TRUE(KMeans(pts, opt, &rng, &res2).ok());
  opt.k = 6;
  ASSERT_TRUE(KMeans(pts, opt, &rng, &res6).ok());
  EXPECT_LT(res6.inertia, res2.inertia);
}

TEST(KMeansTest, KEqualsNumberOfPoints) {
  Rng rng(4);
  const std::vector<std::vector<double>> pts = {{0, 0}, {1, 1}, {2, 2}};
  KMeansOptions opt;
  opt.k = 3;
  KMeansResult res;
  ASSERT_TRUE(KMeans(pts, opt, &rng, &res).ok());
  EXPECT_NEAR(res.inertia, 0.0, 1e-18);
}

TEST(KMeansTest, InvalidArguments) {
  Rng rng(5);
  KMeansResult res;
  KMeansOptions opt;
  opt.k = 0;
  EXPECT_FALSE(KMeans({{0, 0}}, opt, &rng, &res).ok());
  opt.k = 5;
  EXPECT_FALSE(KMeans({{0, 0}}, opt, &rng, &res).ok());
  opt.k = 1;
  EXPECT_FALSE(KMeans({}, opt, &rng, &res).ok());
  EXPECT_FALSE(KMeans({{0, 0}, {1}}, opt, &rng, &res).ok());
}

TEST(KMeansTest, DuplicatePointsDoNotCrash) {
  Rng rng(6);
  std::vector<std::vector<double>> pts(50, {1.0, 1.0});
  KMeansOptions opt;
  opt.k = 4;
  KMeansResult res;
  ASSERT_TRUE(KMeans(pts, opt, &rng, &res).ok());
  EXPECT_EQ(res.centers.size(), 4u);
}

TEST(KMeansTest, ParallelAssignmentIsThreadCountInvariant) {
  // The parallel assignment step must be bit-identical to the sequential
  // one: per-point results land in per-point slots and the inertia
  // reduction runs in point order after the lanes join.
  Rng data_rng(31);
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 4000; ++i) {
    pts.push_back({data_rng.Uniform(), data_rng.Uniform()});
  }
  auto run_with = [&](int64_t threads) {
    KMeansOptions opt;
    opt.k = 12;
    opt.num_threads = threads;
    Rng rng(99);
    KMeansResult res;
    EXPECT_TRUE(KMeans(pts, opt, &rng, &res).ok());
    return res;
  };
  const KMeansResult seq = run_with(1);
  const KMeansResult par = run_with(4);
  EXPECT_EQ(seq.assignments, par.assignments);
  EXPECT_EQ(seq.iterations, par.iterations);
  ASSERT_EQ(seq.centers.size(), par.centers.size());
  for (size_t c = 0; c < seq.centers.size(); ++c) {
    ASSERT_EQ(seq.centers[c], par.centers[c]) << "center " << c;
  }
  EXPECT_DOUBLE_EQ(seq.inertia, par.inertia);
}

TEST(KMeansTest, OneDimensionalData) {
  Rng rng(7);
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 50; ++i) pts.push_back({rng.Normal(0, 0.1)});
  for (int i = 0; i < 50; ++i) pts.push_back({rng.Normal(5, 0.1)});
  KMeansOptions opt;
  opt.k = 2;
  KMeansResult res;
  ASSERT_TRUE(KMeans(pts, opt, &rng, &res).ok());
  std::vector<double> cs = {res.centers[0][0], res.centers[1][0]};
  std::sort(cs.begin(), cs.end());
  EXPECT_NEAR(cs[0], 0.0, 0.2);
  EXPECT_NEAR(cs[1], 5.0, 0.2);
}

}  // namespace
}  // namespace lte::cluster
