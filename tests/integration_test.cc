// End-to-end integration test of the LTE framework: offline meta-training on
// a synthetic dataset, online few-shot exploration against generated ground
// truth, and a sanity comparison of the method ordering the paper reports
// (NN-based variants beat the plain SVM under a small labelling budget).

#include <gtest/gtest.h>

#include "core/lte.h"
#include "data/synthetic.h"
#include "eval/experiment.h"

namespace lte {
namespace {

eval::RunnerOptions IntegrationOptions() {
  eval::RunnerOptions opt;
  opt.explorer.task_gen.k_u = 40;
  opt.explorer.task_gen.k_q = 40;
  opt.explorer.task_gen.delta = 5;
  opt.explorer.task_gen.alpha = 2;
  opt.explorer.task_gen.psi = 10;
  opt.explorer.learner.embedding_size = 16;
  opt.explorer.learner.clf_hidden = {16};
  opt.explorer.learner.num_memory_modes = 4;
  opt.explorer.num_meta_tasks = 150;
  opt.explorer.trainer.task_batch_size = 10;
  opt.explorer.trainer.local_steps = 3;
  opt.explorer.trainer.local_batch_size = 8;
  opt.explorer.online_steps = 40;
  opt.explorer.online_lr = 0.2;
  opt.explorer.encoder.num_gmm_components = 4;
  opt.explorer.encoder.num_jenks_intervals = 4;
  opt.eval_sample_rows = 500;
  opt.pool_rows = 400;
  opt.seed = 99;
  return opt;
}

TEST(IntegrationTest, MetaBeatsPlainSvmOnGeneratedUirs) {
  Rng rng(3);
  data::Table table = data::MakeSdssLike(6000, &rng);
  std::vector<data::Subspace> subspaces = {data::Subspace{{0, 1}},
                                           data::Subspace{{2, 3}}};
  eval::ExperimentRunner runner(std::move(table), subspaces,
                                IntegrationOptions());
  ASSERT_TRUE(runner.Init().ok());

  // Complex (concave/disconnected) targets — the regime where the paper
  // shows NN-based variants dominating SVM (Table II). On simple convex 2-D
  // regions a well-tuned SVM legitimately competes.
  std::vector<eval::GroundTruthUir> uirs;
  for (int i = 0; i < 3; ++i) {
    uirs.push_back(runner.GenerateUir({"M1", 4, 10}, 2));
  }
  double f1_meta = 0.0;
  double f1_svm = 0.0;
  ASSERT_TRUE(runner.MeanF1(eval::Method::kMeta, uirs, 25, &f1_meta).ok());
  ASSERT_TRUE(runner.MeanF1(eval::Method::kSvm, uirs, 25, &f1_svm).ok());
  EXPECT_GT(f1_meta, f1_svm) << "meta=" << f1_meta << " svm=" << f1_svm;
  EXPECT_GT(f1_meta, 0.3);
}

TEST(IntegrationTest, FullPipelineOnCarLikeData) {
  Rng rng(5);
  data::Table table = data::MakeCarLike(5000, &rng);

  // Normalize (the Explorer consumes comparable scales).
  preprocess::MinMaxNormalizer norm;
  ASSERT_TRUE(norm.Fit(table).ok());
  data::Table normalized(table.AttributeNames());
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    ASSERT_TRUE(normalized.AppendRow(norm.TransformRow(table.Row(r))).ok());
  }

  std::vector<int64_t> attrs = {0, 1, 2, 3};
  std::vector<data::Subspace> subspaces = data::DecomposeSpace(attrs, 2, &rng);

  core::ExplorerOptions opt = IntegrationOptions().explorer;
  core::Explorer explorer(opt);
  ASSERT_TRUE(
      explorer.Pretrain(normalized, subspaces, /*train_meta=*/true, &rng).ok());

  // Ground truth: a box region per subspace around the data median.
  const auto in_region = [](const std::vector<double>& p) {
    for (double v : p) {
      if (v < 0.25 || v > 0.75) return false;
    }
    return true;
  };
  std::vector<std::vector<double>> labels(subspaces.size());
  for (size_t s = 0; s < subspaces.size(); ++s) {
    for (const auto& tuple :
         *explorer.InitialTuples(static_cast<int64_t>(s))) {
      labels[s].push_back(in_region(tuple) ? 1.0 : 0.0);
    }
  }
  ASSERT_TRUE(
      explorer.StartExploration(labels, core::Variant::kMetaStar, &rng).ok());

  // Evaluate F1 against the box ground truth on a row sample.
  eval::ConfusionCounts counts;
  for (int64_t r = 0; r < 800; ++r) {
    const std::vector<double> row = normalized.Row(r);
    bool truth = true;
    for (const data::Subspace& s : subspaces) {
      std::vector<double> p;
      for (int64_t a : s.attribute_indices) {
        p.push_back(row[static_cast<size_t>(a)]);
      }
      truth = truth && in_region(p);
    }
    counts.Add(truth ? 1.0 : 0.0, explorer.PredictRow(row).value_or(0.0));
  }
  // The adapted model must do clearly better than chance on this easy box.
  EXPECT_GT(eval::F1Score(counts), 0.3);
}

TEST(IntegrationTest, DeterministicGivenSeed) {
  auto run_once = [] {
    Rng rng(42);
    data::Table table = data::MakeBlobs(2500, 4, 4, &rng);
    eval::ExperimentRunner runner(
        std::move(table),
        {data::Subspace{{0, 1}}, data::Subspace{{2, 3}}},
        IntegrationOptions());
    EXPECT_TRUE(runner.Init().ok());
    const eval::GroundTruthUir uir = runner.GenerateUir({"t", 1, 10}, 2);
    eval::ExperimentResult res;
    EXPECT_TRUE(runner.Run(eval::Method::kMeta, uir, 20, &res).ok());
    return res.f1;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace lte
