// Exploration-policy battery (DESIGN.md §2f).
//
// Unit level (bare policy::SuggestPolicy instances on synthetic probability
// vectors): selection semantics per kind, parameter validation, the
// epsilon=0 / sigma=0 / lambda->inf degeneracies that must recover pure
// uncertainty sampling, the tau-first exhaustion handoff, and SavePolicy /
// LoadPolicy resuming the suggestion stream draw-for-draw.
//
// Session level: every policy's suggestion sequence is bit-identical across
// session thread counts {1, 4} and across an evict/restore cycle through
// serving::SessionManager; stochastic policies without a session rng are
// FailedPrecondition at every entry point. Concurrent per-user sessions run
// SuggestTuples from real std::threads (TSan CI job).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/exploration_model.h"
#include "core/exploration_session.h"
#include "core/explorer.h"
#include "data/synthetic.h"
#include "policy/suggest_policy.h"
#include "serving/model_registry.h"
#include "serving/session_manager.h"

namespace lte::policy {
namespace {

using core::ExplorationModel;
using core::ExplorationSession;
using core::ExplorerOptions;
using core::Variant;

PolicyOptions Opts(PolicyKind kind) {
  PolicyOptions o;
  o.kind = kind;
  return o;
}

std::vector<int64_t> SelectOnce(SuggestPolicy* policy,
                                const std::vector<double>& probs, int64_t k,
                                Rng* rng) {
  std::vector<int64_t> out;
  policy->Select(probs, k, rng, &out);
  return out;
}

std::unique_ptr<SuggestPolicy> Make(const PolicyOptions& options,
                                    Rng* seed_rng) {
  std::unique_ptr<SuggestPolicy> policy;
  EXPECT_TRUE(MakePolicy(options, seed_rng, &policy).ok());
  return policy;
}

// The five kinds with parameters that keep every kind stochastic except
// uncertainty (the menu the session/bench sweeps use).
std::vector<PolicyOptions> Menu() {
  std::vector<PolicyOptions> menu(5);
  menu[0].kind = PolicyKind::kUncertainty;
  menu[1].kind = PolicyKind::kEpsilonGreedy;
  menu[1].epsilon = 0.3;
  menu[2].kind = PolicyKind::kTauFirst;
  menu[2].tau = 5;
  menu[3].kind = PolicyKind::kSoftmax;
  menu[3].softmax_lambda = 6.0;
  menu[4].kind = PolicyKind::kBootstrap;
  menu[4].bootstrap_bags = 4;
  return menu;
}

TEST(SuggestPolicyTest, ValidateRejectsOutOfRangeParameters) {
  EXPECT_TRUE(ValidatePolicyOptions(PolicyOptions{}).ok());
  PolicyOptions o = Opts(PolicyKind::kEpsilonGreedy);
  o.epsilon = -0.1;
  EXPECT_FALSE(ValidatePolicyOptions(o).ok());
  o.epsilon = 1.1;
  EXPECT_FALSE(ValidatePolicyOptions(o).ok());
  o.epsilon = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ValidatePolicyOptions(o).ok());
  o = Opts(PolicyKind::kTauFirst);
  o.tau = -1;
  EXPECT_FALSE(ValidatePolicyOptions(o).ok());
  o = Opts(PolicyKind::kSoftmax);
  o.softmax_lambda = -2.0;
  EXPECT_FALSE(ValidatePolicyOptions(o).ok());
  o = Opts(PolicyKind::kBootstrap);
  o.bootstrap_bags = 0;
  EXPECT_FALSE(ValidatePolicyOptions(o).ok());
  o.bootstrap_bags = 4096;
  EXPECT_FALSE(ValidatePolicyOptions(o).ok());
  o = Opts(PolicyKind::kBootstrap);
  o.bootstrap_sigma = -1.0;
  EXPECT_FALSE(ValidatePolicyOptions(o).ok());
  // MakePolicy surfaces the same validation...
  std::unique_ptr<SuggestPolicy> policy;
  PolicyOptions bad = Opts(PolicyKind::kEpsilonGreedy);
  bad.epsilon = 2.0;
  Rng rng(1);
  EXPECT_EQ(MakePolicy(bad, &rng, &policy).code(),
            StatusCode::kInvalidArgument);
  // ...and a bootstrap construction needs seed material.
  EXPECT_EQ(MakePolicy(Opts(PolicyKind::kBootstrap), nullptr, &policy).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SuggestPolicyTest, UncertaintyRanksByDistanceFromHalf) {
  auto policy = Make(PolicyOptions{}, nullptr);
  ASSERT_NE(policy, nullptr);
  EXPECT_FALSE(policy->stochastic());
  // |p - 0.5|: .4, .02, .4, .02, .0 — ties (1 vs 3) break to the lower
  // index; the rng may be null for a deterministic policy.
  const std::vector<double> probs = {0.1, 0.48, 0.9, 0.52, 0.5};
  EXPECT_EQ(SelectOnce(policy.get(), probs, 3, nullptr),
            (std::vector<int64_t>{4, 1, 3}));
  // k larger than the pool returns everything, still in score order.
  EXPECT_EQ(SelectOnce(policy.get(), probs, 10, nullptr),
            (std::vector<int64_t>{4, 1, 3, 0, 2}));
  EXPECT_TRUE(SelectOnce(policy.get(), {}, 3, nullptr).empty());
  EXPECT_TRUE(SelectOnce(policy.get(), probs, 0, nullptr).empty());
}

TEST(SuggestPolicyTest, DegenerateParametersRecoverUncertainty) {
  const std::vector<double> probs = {0.93, 0.48, 0.07, 0.61, 0.52, 0.35};
  auto uncertainty = Make(PolicyOptions{}, nullptr);
  const std::vector<int64_t> expected =
      SelectOnce(uncertainty.get(), probs, 4, nullptr);

  // epsilon = 0: the Bernoulli never fires, every slot is the greedy pick.
  PolicyOptions eps0 = Opts(PolicyKind::kEpsilonGreedy);
  eps0.epsilon = 0.0;
  // sigma = 0: every bag votes the unperturbed sign, all vote fractions
  // collapse, and the tie-break is the base uncertainty score.
  PolicyOptions sigma0 = Opts(PolicyKind::kBootstrap);
  sigma0.bootstrap_sigma = 0.0;
  // lambda -> inf: the softmax mass concentrates on the most uncertain
  // remaining candidate (or underflows entirely, hitting the greedy
  // fallback) — either way the greedy order.
  PolicyOptions sharp = Opts(PolicyKind::kSoftmax);
  sharp.softmax_lambda = 1e9;
  // tau = 0: the uniform phase is already exhausted.
  PolicyOptions tau0 = Opts(PolicyKind::kTauFirst);
  tau0.tau = 0;

  for (const PolicyOptions& o : {eps0, sigma0, sharp, tau0}) {
    Rng seed(17);
    auto policy = Make(o, &seed);
    ASSERT_NE(policy, nullptr);
    Rng rng(99);
    EXPECT_EQ(SelectOnce(policy.get(), probs, 4, &rng), expected)
        << PolicyKindName(o.kind);
  }
}

TEST(SuggestPolicyTest, TauFirstHandsOffAfterExhaustion) {
  PolicyOptions o = Opts(PolicyKind::kTauFirst);
  o.tau = 3;
  Rng seed(5);
  auto policy = Make(o, &seed);
  ASSERT_NE(policy, nullptr);
  EXPECT_TRUE(policy->stochastic());
  const std::vector<double> probs = {0.9, 0.48, 0.1, 0.55, 0.98, 0.02};
  Rng rng(7);
  // Calls of k=2 burn the tau=3 uniform budget across calls: 2 + 1.
  const auto first = SelectOnce(policy.get(), probs, 2, &rng);
  EXPECT_EQ(first.size(), 2u);
  const auto second = SelectOnce(policy.get(), probs, 2, &rng);
  EXPECT_EQ(second.size(), 2u);
  // From now on the policy is pure uncertainty: no draws, greedy order.
  auto uncertainty = Make(PolicyOptions{}, nullptr);
  const auto expected = SelectOnce(uncertainty.get(), probs, 3, nullptr);
  Rng replay = rng;  // Same state; the exhausted policy must not draw.
  EXPECT_EQ(SelectOnce(policy.get(), probs, 3, &rng), expected);
  EXPECT_EQ(rng.engine()(), replay.engine()());
}

TEST(SuggestPolicyTest, SaveLoadResumesDrawForDraw) {
  const std::vector<double> probs = {0.93, 0.48, 0.07, 0.61, 0.52, 0.35,
                                     0.5,  0.72, 0.18, 0.44};
  for (const PolicyOptions& o : Menu()) {
    Rng seed(11);
    auto policy = Make(o, &seed);
    ASSERT_NE(policy, nullptr);
    Rng rng(23);
    (void)SelectOnce(policy.get(), probs, 3, &rng);  // Mutate mid-stream.

    std::ostringstream out(std::ios::binary);
    BinaryWriter writer(&out);
    SavePolicy(*policy, &writer);
    std::istringstream in(out.str(), std::ios::binary);
    BinaryReader reader(&in);
    std::unique_ptr<SuggestPolicy> restored;
    ASSERT_TRUE(LoadPolicy(&reader, &restored).ok()) << PolicyKindName(o.kind);
    ASSERT_EQ(restored->kind(), o.kind);

    // From identical rng states, original and restored must continue the
    // suggestion stream identically (tau counters, bag seeds included).
    Rng rng_restored = rng;
    for (int call = 0; call < 4; ++call) {
      EXPECT_EQ(SelectOnce(policy.get(), probs, 3, &rng),
                SelectOnce(restored.get(), probs, 3, &rng_restored))
          << PolicyKindName(o.kind) << " call " << call;
    }
  }
}

TEST(SuggestPolicyTest, LoadRejectsCorruptEnvelopes) {
  Rng seed(3);
  auto policy = Make(Opts(PolicyKind::kBootstrap), &seed);
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(&out);
  SavePolicy(*policy, &writer);
  const std::string saved = out.str();
  // Truncation at every byte boundary fails with a Status, never a crash.
  for (size_t len = 0; len < saved.size(); ++len) {
    std::istringstream in(saved.substr(0, len), std::ios::binary);
    BinaryReader reader(&in);
    std::unique_ptr<SuggestPolicy> restored;
    EXPECT_FALSE(LoadPolicy(&reader, &restored).ok()) << "len " << len;
  }
  // An unknown kind tag is rejected up front.
  std::string bad_kind = saved;
  bad_kind[0] = 0x7F;
  std::istringstream in(bad_kind, std::ios::binary);
  BinaryReader reader(&in);
  std::unique_ptr<SuggestPolicy> restored;
  EXPECT_EQ(LoadPolicy(&reader, &restored).code(), StatusCode::kIoError);
}

TEST(SuggestPolicyTest, BootstrapVotesAreSeedReproducible) {
  const std::vector<double> probs = {0.93, 0.48, 0.07, 0.61, 0.52,
                                     0.35, 0.5,  0.72, 0.18};
  PolicyOptions o = Opts(PolicyKind::kBootstrap);
  o.bootstrap_bags = 6;
  Rng seed_a(29);
  Rng seed_b(29);
  auto a = Make(o, &seed_a);
  auto b = Make(o, &seed_b);
  Rng rng_a(101);
  Rng rng_b(101);
  for (int call = 0; call < 5; ++call) {
    EXPECT_EQ(SelectOnce(a.get(), probs, 3, &rng_a),
              SelectOnce(b.get(), probs, 3, &rng_b))
        << "call " << call;
  }
  // Different construction seed material => a different committee.
  Rng seed_c(30);
  auto c = Make(o, &seed_c);
  Rng rng_c(101);
  bool any_diff = false;
  for (int call = 0; call < 5 && !any_diff; ++call) {
    any_diff = SelectOnce(a.get(), probs, 4, &rng_a) !=
               SelectOnce(c.get(), probs, 4, &rng_c);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SuggestPolicyTest, SelectionIsAValidKSubset) {
  const std::vector<double> probs = {0.93, 0.48, 0.07, 0.61, 0.52,
                                     0.35, 0.5,  0.72, 0.18, 0.8};
  for (const PolicyOptions& o : Menu()) {
    Rng seed(41);
    auto policy = Make(o, &seed);
    Rng rng(77);
    for (const int64_t k : {int64_t{1}, int64_t{4}, int64_t{20}}) {
      std::vector<int64_t> out = SelectOnce(policy.get(), probs, k, &rng);
      EXPECT_EQ(out.size(),
                static_cast<size_t>(
                    std::min<int64_t>(k, static_cast<int64_t>(probs.size()))));
      std::vector<int64_t> sorted = out;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end())
          << PolicyKindName(o.kind) << " repeated a candidate";
      for (int64_t idx : out) {
        EXPECT_GE(idx, 0);
        EXPECT_LT(idx, static_cast<int64_t>(probs.size()));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Session-level battery.

ExplorerOptions SmallExplorerOptions() {
  ExplorerOptions opt;
  opt.task_gen.k_u = 30;
  opt.task_gen.k_s = 10;
  opt.task_gen.k_q = 30;
  opt.task_gen.delta = 5;
  opt.task_gen.alpha = 2;
  opt.task_gen.psi = 8;
  opt.learner.embedding_size = 12;
  opt.learner.clf_hidden = {12};
  opt.learner.num_memory_modes = 3;
  opt.num_meta_tasks = 25;
  opt.trainer.epochs = 3;
  opt.trainer.task_batch_size = 10;
  opt.trainer.local_steps = 6;
  opt.trainer.local_lr = 0.2;
  opt.trainer.global_lr = 0.1;
  opt.online_steps = 25;
  opt.online_lr = 0.2;
  opt.encoder.num_gmm_components = 3;
  opt.encoder.num_jenks_intervals = 3;
  return opt;
}

class SuggestPolicySessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(23);
    table_ = data::MakeBlobs(2500, 4, 5, &rng);
    subspaces_ = {data::Subspace{{0, 1}}, data::Subspace{{2, 3}}};
    model_ = std::make_shared<ExplorationModel>(SmallExplorerOptions());
    Rng pretrain_rng(23);
    ASSERT_TRUE(model_
                    ->Pretrain(table_, subspaces_, /*train_meta=*/true,
                               &pretrain_rng)
                    .ok());
  }

  std::vector<std::vector<double>> UserLabels() const {
    std::vector<std::vector<double>> labels(subspaces_.size());
    for (size_t s = 0; s < subspaces_.size(); ++s) {
      const data::Column& col =
          table_.column(subspaces_[s].attribute_indices[0]);
      const double threshold = col.min() + 0.35 * (col.max() - col.min());
      for (const auto& tuple :
           *model_->InitialTuples(static_cast<int64_t>(s))) {
        labels[s].push_back(tuple[0] < threshold ? 1.0 : 0.0);
      }
    }
    return labels;
  }

  // A deterministic candidate pool for (subspace, round): raw subspace
  // projections of a strided row slice.
  std::vector<std::vector<double>> Candidates(int64_t s, int64_t round) const {
    std::vector<std::vector<double>> pool;
    for (int64_t i = 0; i < 40; ++i) {
      const int64_t row = (round * 611 + i * 37) % table_.num_rows();
      std::vector<double> point;
      for (int64_t attr : subspaces_[static_cast<size_t>(s)].attribute_indices) {
        point.push_back(table_.column(attr).value(row));
      }
      pool.push_back(std::move(point));
    }
    return pool;
  }

  // Runs the full iterative loop for one policy at one thread count and
  // returns the concatenated suggestion sequence.
  std::vector<int64_t> SuggestionTrace(const PolicyOptions& options,
                                       int64_t threads, uint64_t seed) {
    ExplorationSession session(model_, threads);
    session.SeedRng(seed);
    EXPECT_TRUE(session
                    .StartExploration(UserLabels(), Variant::kMeta,
                                      session.session_rng())
                    .ok());
    std::vector<int64_t> trace;
    for (int64_t s = 0; s < 2; ++s) {
      EXPECT_TRUE(session.ConfigureSuggestPolicy(s, options).ok());
    }
    for (int64_t round = 0; round < 3; ++round) {
      for (int64_t s = 0; s < 2; ++s) {
        const auto pool = Candidates(s, round);
        std::vector<int64_t> suggested;
        EXPECT_TRUE(session.SuggestTuples(s, pool, 5, &suggested).ok());
        trace.insert(trace.end(), suggested.begin(), suggested.end());
      }
    }
    return trace;
  }

  data::Table table_;
  std::vector<data::Subspace> subspaces_;
  std::shared_ptr<ExplorationModel> model_;
};

// Every policy's suggestion sequence is a pure function of (model, labels,
// seed) — bit-identical across session thread counts.
TEST_F(SuggestPolicySessionTest, TraceBitIdenticalAcrossThreadCounts) {
  for (const PolicyOptions& o : Menu()) {
    const auto t1 = SuggestionTrace(o, 1, 555);
    const auto t4 = SuggestionTrace(o, 4, 555);
    EXPECT_EQ(t1, t4) << PolicyKindName(o.kind);
    EXPECT_EQ(t1.size(), 30u);
  }
}

// Save mid-loop, restore, and the suggestion stream continues draw-for-draw
// as if the save never happened.
TEST_F(SuggestPolicySessionTest, SaveLoadResumesSuggestionStream) {
  for (const PolicyOptions& o : Menu()) {
    ExplorationSession session(model_, 1);
    session.SeedRng(888);
    ASSERT_TRUE(session
                    .StartExploration(UserLabels(), Variant::kMeta,
                                      session.session_rng())
                    .ok());
    for (int64_t s = 0; s < 2; ++s) {
      ASSERT_TRUE(session.ConfigureSuggestPolicy(s, o).ok());
    }
    std::vector<int64_t> suggested;
    ASSERT_TRUE(session.SuggestTuples(0, Candidates(0, 0), 5, &suggested).ok());

    std::ostringstream out(std::ios::binary);
    ASSERT_TRUE(session.SaveToStream(&out).ok());
    ExplorationSession restored(model_, 1);
    std::istringstream in(out.str(), std::ios::binary);
    ASSERT_TRUE(restored.LoadFromStream(&in).ok());
    const SuggestPolicy* p = restored.suggest_policy(0);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->kind(), o.kind);

    for (int64_t round = 1; round < 4; ++round) {
      for (int64_t s = 0; s < 2; ++s) {
        std::vector<int64_t> a;
        std::vector<int64_t> b;
        const auto pool = Candidates(s, round);
        ASSERT_TRUE(session.SuggestTuples(s, pool, 5, &a).ok());
        ASSERT_TRUE(restored.SuggestTuples(s, pool, 5, &b).ok());
        EXPECT_EQ(a, b) << PolicyKindName(o.kind) << " round " << round;
      }
    }
  }
}

// Stochastic policies without a session rng are rejected up front — at
// StartExploration (model-default policy), at ConfigureSuggestPolicy, and
// the default-constructed session still suggests fine (uncertainty needs no
// rng).
TEST_F(SuggestPolicySessionTest, StochasticPoliciesRequireSessionRng) {
  ExplorationSession session(model_, 1);
  Rng external(5);
  ASSERT_TRUE(
      session.StartExploration(UserLabels(), Variant::kMeta, &external).ok());
  std::vector<int64_t> suggested;
  EXPECT_TRUE(session.SuggestTuples(0, Candidates(0, 0), 5, &suggested).ok());
  EXPECT_EQ(suggested.size(), 5u);

  PolicyOptions eps = Opts(PolicyKind::kEpsilonGreedy);
  EXPECT_EQ(session.ConfigureSuggestPolicy(0, eps).code(),
            StatusCode::kFailedPrecondition);
  // Invalid parameters are InvalidArgument, reported before the rng check.
  PolicyOptions bad = eps;
  bad.epsilon = 7.0;
  EXPECT_EQ(session.ConfigureSuggestPolicy(0, bad).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.ConfigureSuggestPolicy(99, eps).code(),
            StatusCode::kFailedPrecondition);

  // A model whose host default is stochastic refuses rng-less adaptation.
  ExplorerOptions opt = SmallExplorerOptions();
  opt.suggest_policy.kind = PolicyKind::kSoftmax;
  auto stochastic_model = std::make_shared<ExplorationModel>(opt);
  Rng pretrain_rng(23);
  ASSERT_TRUE(stochastic_model
                  ->Pretrain(table_, subspaces_, /*train_meta=*/true,
                             &pretrain_rng)
                  .ok());
  ExplorationSession no_rng(stochastic_model, 1);
  Rng adapt(6);
  EXPECT_EQ(
      no_rng.StartExploration(UserLabels(), Variant::kMeta, &adapt).code(),
      StatusCode::kFailedPrecondition);
  ExplorationSession with_rng(stochastic_model, 1);
  with_rng.SeedRng(10);
  EXPECT_TRUE(with_rng
                  .StartExploration(UserLabels(), Variant::kMeta,
                                    with_rng.session_rng())
                  .ok());
  const SuggestPolicy* p = with_rng.suggest_policy(0);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind(), PolicyKind::kSoftmax);
}

// The Explorer facade forwards ConfigureSuggestPolicy and the model-default
// policy knob.
TEST_F(SuggestPolicySessionTest, ExplorerFacadeConfiguresPolicies) {
  core::Explorer ex(SmallExplorerOptions());
  Rng rng(23);
  ASSERT_TRUE(
      ex.Pretrain(table_, subspaces_, /*train_meta=*/true, &rng).ok());
  ex.mutable_session()->SeedRng(12);
  ASSERT_TRUE(ex.StartExploration(UserLabels(), Variant::kMeta,
                                  ex.mutable_session()->session_rng())
                  .ok());
  PolicyOptions tau = Opts(PolicyKind::kTauFirst);
  tau.tau = 2;
  ASSERT_TRUE(ex.ConfigureSuggestPolicy(0, tau).ok());
  std::vector<int64_t> suggested;
  ASSERT_TRUE(ex.SuggestTuples(0, Candidates(0, 0), 4, &suggested).ok());
  EXPECT_EQ(suggested.size(), 4u);
  const SuggestPolicy* p = ex.session().suggest_policy(0);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->kind(), PolicyKind::kTauFirst);
  EXPECT_EQ(ex.session().suggest_policy(1)->kind(), PolicyKind::kUncertainty);
}

// An evict/restore cycle through the SessionManager preserves the policy
// stream: the restored session suggests exactly what a never-evicted session
// would. Runs the manager from real threads for the TSan job.
TEST_F(SuggestPolicySessionTest, ManagerEvictRestorePreservesPolicyStream) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::string dir =
      ::testing::TempDir() + "/suggest_policy_" + info->name();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  serving::ModelRegistry registry(model_);
  serving::SessionManagerOptions mopt;
  mopt.max_resident = 2;  // 4 users through 2 slots => constant churn.
  mopt.checkpoint_dir = dir;
  mopt.session_num_threads = 1;
  serving::SessionManager manager(&registry, mopt);

  const std::vector<PolicyOptions> menu = Menu();
  // Reference traces: one standalone session per user, never evicted.
  std::vector<std::vector<int64_t>> expected;
  for (size_t u = 0; u < 4; ++u) {
    expected.push_back(
        SuggestionTrace(menu[u % menu.size()], 1, 9000 + u));
  }

  // Managed run: same per-user setup, interleaved so users evict each other
  // between rounds; each user's mutating calls stay on one thread.
  std::vector<std::vector<int64_t>> actual(4);
  auto user_setup = [&](size_t u) {
    serving::SessionManager::Lease lease;
    ASSERT_TRUE(manager.Acquire("user" + std::to_string(u), &lease).ok());
    core::ExplorationSession* session = lease.session();
    session->SeedRng(9000 + u);
    ASSERT_TRUE(session
                    ->StartExploration(UserLabels(), Variant::kMeta,
                                       session->session_rng())
                    .ok());
    for (int64_t s = 0; s < 2; ++s) {
      ASSERT_TRUE(
          session->ConfigureSuggestPolicy(s, menu[u % menu.size()]).ok());
    }
  };
  for (size_t u = 0; u < 4; ++u) user_setup(u);
  for (int64_t round = 0; round < 3; ++round) {
    std::vector<std::thread> workers;
    for (size_t u = 0; u < 4; ++u) {
      workers.emplace_back([&, u, round] {
        serving::SessionManager::Lease lease;
        ASSERT_TRUE(
            manager.Acquire("user" + std::to_string(u), &lease).ok());
        for (int64_t s = 0; s < 2; ++s) {
          std::vector<int64_t> suggested;
          ASSERT_TRUE(lease.session()
                          ->SuggestTuples(s, Candidates(s, round), 5,
                                          &suggested)
                          .ok());
          actual[u].insert(actual[u].end(), suggested.begin(),
                           suggested.end());
        }
      });
    }
    for (std::thread& t : workers) t.join();
  }
  for (size_t u = 0; u < 4; ++u) {
    EXPECT_EQ(actual[u], expected[u]) << "user " << u;
  }
  EXPECT_GT(manager.stats().evictions, 0);
}

}  // namespace
}  // namespace lte::policy
