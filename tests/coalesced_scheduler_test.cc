// Byte-identity and queue-discipline tests for the coalesced scan scheduler
// (src/serving/): N sessions submitting through one scheduler — from real
// std::thread submitters — must each receive exactly the bytes they would
// have computed scanning alone, for ragged per-session row sets, mixed
// variants, mixed request kinds, and at scheduler thread counts {1, 4}. The
// determinism argument is in DESIGN.md §2c; this file is the enforcement
// (and runs under the TSan CI job).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "core/exploration_model.h"
#include "core/exploration_session.h"
#include "data/synthetic.h"
#include "serving/coalesced_scan_scheduler.h"

namespace lte::serving {
namespace {

core::ExplorerOptions SmallExplorerOptions() {
  core::ExplorerOptions opt;
  opt.task_gen.k_u = 30;
  opt.task_gen.k_s = 10;
  opt.task_gen.k_q = 30;
  opt.task_gen.delta = 5;
  opt.task_gen.alpha = 2;
  opt.task_gen.psi = 8;
  opt.learner.embedding_size = 12;
  opt.learner.clf_hidden = {12};
  opt.learner.num_memory_modes = 3;
  opt.num_meta_tasks = 25;
  opt.trainer.epochs = 3;
  opt.trainer.task_batch_size = 10;
  opt.trainer.local_steps = 6;
  opt.trainer.local_lr = 0.2;
  opt.trainer.global_lr = 0.1;
  opt.online_steps = 25;
  opt.online_lr = 0.2;
  opt.encoder.num_gmm_components = 3;
  opt.encoder.num_jenks_intervals = 3;
  return opt;
}

class CoalescedScanSchedulerTest : public ::testing::Test {
 protected:
  // One pretrain for the whole suite: the model is immutable and every test
  // only attaches read-only sessions to it.
  static void SetUpTestSuite() {
    Rng rng(23);
    // 4000 rows: three full 1024-row blocks plus a ragged 928-row tail.
    table_ = new data::Table(data::MakeBlobs(4000, 4, 5, &rng));
    subspaces_ = new std::vector<data::Subspace>{data::Subspace{{0, 1}},
                                                 data::Subspace{{2, 3}}};
    model_ = std::make_shared<core::ExplorationModel>(SmallExplorerOptions());
    Rng pretrain_rng(23);
    ASSERT_TRUE(model_
                    ->Pretrain(*table_, *subspaces_, /*train_meta=*/true,
                               &pretrain_rng)
                    .ok());
  }

  static void TearDownTestSuite() {
    model_.reset();
    delete subspaces_;
    subspaces_ = nullptr;
    delete table_;
    table_ = nullptr;
  }

  // Simulated user `u`: interesting iff the subspace point's first
  // coordinate falls below a per-user fraction of that attribute's range,
  // so distinct users adapt to distinct regions.
  static std::vector<std::vector<double>> UserLabels(int64_t u) {
    std::vector<std::vector<double>> labels(subspaces_->size());
    for (size_t s = 0; s < subspaces_->size(); ++s) {
      const data::Column& col =
          table_->column((*subspaces_)[s].attribute_indices[0]);
      const double fraction = 0.3 + 0.08 * static_cast<double>(u % 5);
      const double threshold = col.min() + fraction * (col.max() - col.min());
      for (const auto& tuple :
           *model_->InitialTuples(static_cast<int64_t>(s))) {
        labels[s].push_back(tuple[0] < threshold ? 1.0 : 0.0);
      }
    }
    return labels;
  }

  // A fast-adapted session for user `u`, variant cycling through all three.
  static std::unique_ptr<core::ExplorationSession> MakeSession(int64_t u) {
    const core::Variant variants[] = {core::Variant::kBasic,
                                      core::Variant::kMeta,
                                      core::Variant::kMetaStar};
    auto session = std::make_unique<core::ExplorationSession>(
        model_, /*num_threads=*/1);
    Rng rng(1000 + static_cast<uint64_t>(u));
    EXPECT_TRUE(
        session->StartExploration(UserLabels(u), variants[u % 3], &rng).ok());
    return session;
  }

  // Ragged per-session row selections: full table, a prime-sized offset
  // prefix, a strided selection, duplicates, and a single row.
  static std::vector<int64_t> RowSet(int64_t u) {
    std::vector<int64_t> rows;
    switch (u % 5) {
      case 0:
        rows.resize(static_cast<size_t>(table_->num_rows()));
        std::iota(rows.begin(), rows.end(), 0);
        break;
      case 1:
        rows.resize(1531);
        std::iota(rows.begin(), rows.end(), 37);
        break;
      case 2:
        for (int64_t r = 1; r < table_->num_rows(); r += 7) rows.push_back(r);
        break;
      case 3:
        rows = {5, 5, 2047, 5, 1024, 2047, 3999};
        break;
      default:
        rows = {1023};
        break;
    }
    return rows;
  }

  static data::Table* table_;
  static std::vector<data::Subspace>* subspaces_;
  static std::shared_ptr<core::ExplorationModel> model_;
};

data::Table* CoalescedScanSchedulerTest::table_ = nullptr;
std::vector<data::Subspace>* CoalescedScanSchedulerTest::subspaces_ = nullptr;
std::shared_ptr<core::ExplorationModel> CoalescedScanSchedulerTest::model_;

// The core property: concurrent PredictRows through the scheduler is
// byte-identical per session to that session scanning independently — for
// ragged row sets, all variants, and scheduler thread counts {1, 4}.
TEST_F(CoalescedScanSchedulerTest, ConcurrentPredictRowsByteIdentical) {
  constexpr int64_t kSessions = 6;
  std::vector<std::unique_ptr<core::ExplorationSession>> sessions;
  std::vector<std::vector<int64_t>> row_sets;
  std::vector<std::vector<double>> independent(kSessions);
  for (int64_t u = 0; u < kSessions; ++u) {
    sessions.push_back(MakeSession(u));
    row_sets.push_back(RowSet(u));
    ASSERT_TRUE(sessions.back()
                    ->PredictRows(*table_, row_sets.back(),
                                  &independent[static_cast<size_t>(u)])
                    .ok());
  }

  for (const int64_t threads : {1, 4}) {
    SCOPED_TRACE(testing::Message() << "scheduler threads=" << threads);
    CoalescedScanOptions options;
    options.num_threads = threads;
    options.max_batch_requests = kSessions;
    options.flush_deadline_micros = 2000;
    CoalescedScanScheduler scheduler(model_, table_, options);

    std::vector<std::vector<double>> coalesced(kSessions);
    std::vector<Status> statuses(kSessions);
    {
      std::vector<std::thread> submitters;
      for (int64_t u = 0; u < kSessions; ++u) {
        submitters.emplace_back([&, u] {
          statuses[static_cast<size_t>(u)] = scheduler.PredictRows(
              *sessions[static_cast<size_t>(u)], row_sets[static_cast<size_t>(u)],
              &coalesced[static_cast<size_t>(u)]);
        });
      }
      for (std::thread& t : submitters) t.join();
    }
    for (int64_t u = 0; u < kSessions; ++u) {
      SCOPED_TRACE(testing::Message() << "session=" << u);
      ASSERT_TRUE(statuses[static_cast<size_t>(u)].ok());
      // Exact 0.0/1.0 equality — no tolerance.
      EXPECT_EQ(coalesced[static_cast<size_t>(u)],
                independent[static_cast<size_t>(u)]);
    }
    const CoalescedScanStats stats = scheduler.stats();
    EXPECT_EQ(stats.requests, kSessions);
    EXPECT_GE(stats.batches, 1);
  }

  // Sanity: the full-table session found both classes, so the identity
  // checks above are not vacuous.
  const std::vector<double>& full = independent[0];
  const double ones = std::accumulate(full.begin(), full.end(), 0.0);
  EXPECT_GT(ones, 0.0);
  EXPECT_LT(ones, static_cast<double>(full.size()));
}

// Same property for RetrieveMatches across limits, including the early-exit
// truncation semantics: the coalesced result equals the prefix of that
// session's own unlimited scan.
TEST_F(CoalescedScanSchedulerTest, ConcurrentRetrieveMatchesByteIdentical) {
  const std::vector<int64_t> limits = {-1, 1, 7, 100, 5000};
  const auto kSessions = static_cast<int64_t>(limits.size());
  std::vector<std::unique_ptr<core::ExplorationSession>> sessions;
  std::vector<std::vector<int64_t>> independent(kSessions);
  for (int64_t u = 0; u < kSessions; ++u) {
    sessions.push_back(MakeSession(u));
    ASSERT_TRUE(sessions.back()
                    ->RetrieveMatches(*table_, limits[static_cast<size_t>(u)],
                                      &independent[static_cast<size_t>(u)])
                    .ok());
  }

  for (const int64_t threads : {1, 4}) {
    SCOPED_TRACE(testing::Message() << "scheduler threads=" << threads);
    CoalescedScanOptions options;
    options.num_threads = threads;
    options.max_batch_requests = kSessions;
    options.flush_deadline_micros = 2000;
    CoalescedScanScheduler scheduler(model_, table_, options);

    std::vector<std::vector<int64_t>> coalesced(kSessions);
    std::vector<Status> statuses(kSessions);
    {
      std::vector<std::thread> submitters;
      for (int64_t u = 0; u < kSessions; ++u) {
        submitters.emplace_back([&, u] {
          statuses[static_cast<size_t>(u)] = scheduler.RetrieveMatches(
              *sessions[static_cast<size_t>(u)], limits[static_cast<size_t>(u)],
              &coalesced[static_cast<size_t>(u)]);
        });
      }
      for (std::thread& t : submitters) t.join();
    }
    for (int64_t u = 0; u < kSessions; ++u) {
      SCOPED_TRACE(testing::Message() << "session=" << u << " limit="
                                      << limits[static_cast<size_t>(u)]);
      ASSERT_TRUE(statuses[static_cast<size_t>(u)].ok());
      EXPECT_EQ(coalesced[static_cast<size_t>(u)],
                independent[static_cast<size_t>(u)]);
      EXPECT_TRUE(std::is_sorted(coalesced[static_cast<size_t>(u)].begin(),
                                 coalesced[static_cast<size_t>(u)].end()));
    }
  }
}

// A mixed batch — predictions and retrievals coalesced together — still
// demultiplexes every request to its own independent bytes.
TEST_F(CoalescedScanSchedulerTest, MixedBatchDemultiplexes) {
  auto predictor = MakeSession(0);
  auto retriever = MakeSession(1);
  const std::vector<int64_t> rows = RowSet(2);
  std::vector<double> independent_preds;
  std::vector<int64_t> independent_matches;
  ASSERT_TRUE(predictor->PredictRows(*table_, rows, &independent_preds).ok());
  ASSERT_TRUE(
      retriever->RetrieveMatches(*table_, 50, &independent_matches).ok());

  CoalescedScanOptions options;
  options.max_batch_requests = 2;
  options.flush_deadline_micros = 5000000;  // Full-batch trigger only.
  CoalescedScanScheduler scheduler(model_, table_, options);
  std::vector<double> preds;
  std::vector<int64_t> matches;
  Status predict_status;
  Status retrieve_status;
  {
    std::thread a([&] {
      predict_status = scheduler.PredictRows(*predictor, rows, &preds);
    });
    std::thread b([&] {
      retrieve_status = scheduler.RetrieveMatches(*retriever, 50, &matches);
    });
    a.join();
    b.join();
  }
  ASSERT_TRUE(predict_status.ok());
  ASSERT_TRUE(retrieve_status.ok());
  EXPECT_EQ(preds, independent_preds);
  EXPECT_EQ(matches, independent_matches);
  EXPECT_EQ(scheduler.stats().batches, 1);
  EXPECT_EQ(scheduler.stats().largest_batch, 2);
}

// Mixed kernels in one shared pass: a kColumnarSimd subscriber coalesced
// with scalar subscribers still receives exactly the bytes of its own
// standalone SIMD scan, and the scalar subscribers theirs — ScoreEncodedBlock
// derives the kernel from each subscriber session's scan path, so one batch
// can serve both without cross-contamination.
TEST_F(CoalescedScanSchedulerTest, MixedKernelSubscribersMatchStandalone) {
  constexpr int64_t kSessions = 4;
  std::vector<int64_t> all_rows(static_cast<size_t>(table_->num_rows()));
  std::iota(all_rows.begin(), all_rows.end(), 0);
  std::vector<std::unique_ptr<core::ExplorationSession>> sessions;
  std::vector<std::vector<double>> independent(kSessions);
  for (int64_t u = 0; u < kSessions; ++u) {
    sessions.push_back(MakeSession(u));
    // Odd sessions opt into the SIMD throughput mode.
    if (u % 2 == 1) {
      sessions.back()->set_scan_path(core::ScanPath::kColumnarSimd);
    }
    ASSERT_TRUE(sessions.back()
                    ->PredictRows(*table_, all_rows,
                                  &independent[static_cast<size_t>(u)])
                    .ok());
  }

  CoalescedScanOptions options;
  options.max_batch_requests = kSessions;  // Deterministic single batch.
  options.flush_deadline_micros = 5000000;
  CoalescedScanScheduler scheduler(model_, table_, options);
  std::vector<std::vector<double>> coalesced(kSessions);
  std::vector<Status> statuses(kSessions);
  {
    std::vector<std::thread> submitters;
    for (int64_t u = 0; u < kSessions; ++u) {
      submitters.emplace_back([&, u] {
        statuses[static_cast<size_t>(u)] = scheduler.PredictRows(
            *sessions[static_cast<size_t>(u)], all_rows,
            &coalesced[static_cast<size_t>(u)]);
      });
    }
    for (std::thread& t : submitters) t.join();
  }
  for (int64_t u = 0; u < kSessions; ++u) {
    SCOPED_TRACE(testing::Message()
                 << "session=" << u
                 << (u % 2 == 1 ? " (simd)" : " (scalar)"));
    ASSERT_TRUE(statuses[static_cast<size_t>(u)].ok());
    EXPECT_EQ(coalesced[static_cast<size_t>(u)],
              independent[static_cast<size_t>(u)]);
  }
  EXPECT_EQ(scheduler.stats().batches, 1);
}

// The amortization the subsystem exists for: S sessions coalesced into one
// shared pass cost ONE gather+encode per (block, subspace) — not S.
TEST_F(CoalescedScanSchedulerTest, EncodeCostAmortizedAcrossSessions) {
  constexpr int64_t kSessions = 8;
  std::vector<std::unique_ptr<core::ExplorationSession>> sessions;
  std::vector<std::vector<double>> independent(kSessions);
  std::vector<int64_t> all_rows(static_cast<size_t>(table_->num_rows()));
  std::iota(all_rows.begin(), all_rows.end(), 0);
  for (int64_t u = 0; u < kSessions; ++u) {
    sessions.push_back(MakeSession(u));
    ASSERT_TRUE(sessions.back()
                    ->PredictRows(*table_, all_rows,
                                  &independent[static_cast<size_t>(u)])
                    .ok());
  }

  CoalescedScanOptions options;
  options.max_batch_requests = kSessions;  // Deterministic single batch:
  options.flush_deadline_micros = 5000000;  // flush fires at the S-th submit.
  CoalescedScanScheduler scheduler(model_, table_, options);
  std::vector<std::vector<double>> coalesced(kSessions);
  std::vector<Status> statuses(kSessions);
  {
    std::vector<std::thread> submitters;
    for (int64_t u = 0; u < kSessions; ++u) {
      submitters.emplace_back([&, u] {
        statuses[static_cast<size_t>(u)] = scheduler.PredictRows(
            *sessions[static_cast<size_t>(u)], all_rows,
            &coalesced[static_cast<size_t>(u)]);
      });
    }
    for (std::thread& t : submitters) t.join();
  }
  for (int64_t u = 0; u < kSessions; ++u) {
    ASSERT_TRUE(statuses[static_cast<size_t>(u)].ok());
    EXPECT_EQ(coalesced[static_cast<size_t>(u)],
              independent[static_cast<size_t>(u)]);
  }

  const CoalescedScanStats stats = scheduler.stats();
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.largest_batch, kSessions);
  EXPECT_EQ(stats.rows_served, kSessions * table_->num_rows());
  // One shared pass: at most blocks x subspaces encode rounds, independent
  // of the session count. S independent scans would pay up to S times this.
  const int64_t num_blocks =
      (table_->num_rows() + core::kServingBlockRows - 1) /
      core::kServingBlockRows;
  EXPECT_GT(stats.encode_passes, 0);
  EXPECT_LE(stats.encode_passes, num_blocks * model_->num_subspaces());
}

// The misuse-error contract mirrors the session's: every caller mistake
// surfaces as a Status on the submitting thread, never inside a batch.
TEST_F(CoalescedScanSchedulerTest, SubmissionValidation) {
  CoalescedScanScheduler scheduler(model_, table_);
  auto session = MakeSession(0);
  std::vector<double> preds;
  std::vector<int64_t> matches;

  // Null outputs.
  EXPECT_FALSE(scheduler.PredictRows(*session, {}, nullptr).ok());
  EXPECT_FALSE(scheduler.RetrieveMatches(*session, 1, nullptr).ok());

  // Session not adapted yet.
  core::ExplorationSession unadapted(model_);
  EXPECT_FALSE(scheduler.PredictRows(unadapted, {}, &preds).ok());
  EXPECT_FALSE(scheduler.RetrieveMatches(unadapted, 1, &matches).ok());

  // Session bound to a different model.
  auto other = std::make_shared<core::ExplorationModel>(SmallExplorerOptions());
  core::ExplorationSession foreign(other);
  EXPECT_FALSE(scheduler.PredictRows(foreign, {}, &preds).ok());

  // Out-of-range row index.
  const std::vector<int64_t> bad = {0, table_->num_rows()};
  EXPECT_FALSE(scheduler.PredictRows(*session, bad, &preds).ok());

  // Degenerate-but-valid requests complete without a shared pass.
  EXPECT_TRUE(scheduler.PredictRows(*session, {}, &preds).ok());
  EXPECT_TRUE(preds.empty());
  EXPECT_TRUE(scheduler.RetrieveMatches(*session, 0, &matches).ok());
  EXPECT_TRUE(matches.empty());
  EXPECT_EQ(scheduler.stats().batches, 0);
}

// Flush() releases a parked request without waiting out the deadline.
TEST_F(CoalescedScanSchedulerTest, FlushDrainsAParkedRequest) {
  auto session = MakeSession(0);
  std::vector<double> independent;
  const std::vector<int64_t> rows = RowSet(3);
  ASSERT_TRUE(session->PredictRows(*table_, rows, &independent).ok());

  CoalescedScanOptions options;
  options.max_batch_requests = 64;           // Never fills...
  options.flush_deadline_micros = 60000000;  // ...and the deadline is far out.
  CoalescedScanScheduler scheduler(model_, table_, options);
  std::vector<double> preds;
  Status status;
  std::thread submitter(
      [&] { status = scheduler.PredictRows(*session, rows, &preds); });
  // Keep triggering until the submitter is through (a Flush that raced ahead
  // of the enqueue is a no-op, so one call is not guaranteed to be enough).
  while (scheduler.stats().batches == 0) {
    scheduler.Flush();
    std::this_thread::yield();
  }
  submitter.join();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(preds, independent);
}

// Backpressure: a pending bound far below the offered load still serves
// everything, just in more batches.
TEST_F(CoalescedScanSchedulerTest, BackpressureStillServesEveryRequest) {
  constexpr int64_t kSessions = 8;
  std::vector<std::unique_ptr<core::ExplorationSession>> sessions;
  std::vector<std::vector<double>> independent(kSessions);
  std::vector<std::vector<int64_t>> row_sets;
  for (int64_t u = 0; u < kSessions; ++u) {
    sessions.push_back(MakeSession(u));
    row_sets.push_back(RowSet(u));
    ASSERT_TRUE(sessions.back()
                    ->PredictRows(*table_, row_sets.back(),
                                  &independent[static_cast<size_t>(u)])
                    .ok());
  }

  CoalescedScanOptions options;
  options.max_batch_requests = 2;
  options.max_pending_requests = 2;
  options.flush_deadline_micros = 100;
  CoalescedScanScheduler scheduler(model_, table_, options);
  std::vector<std::vector<double>> coalesced(kSessions);
  std::vector<Status> statuses(kSessions);
  {
    std::vector<std::thread> submitters;
    for (int64_t u = 0; u < kSessions; ++u) {
      submitters.emplace_back([&, u] {
        statuses[static_cast<size_t>(u)] = scheduler.PredictRows(
            *sessions[static_cast<size_t>(u)], row_sets[static_cast<size_t>(u)],
            &coalesced[static_cast<size_t>(u)]);
      });
    }
    for (std::thread& t : submitters) t.join();
  }
  for (int64_t u = 0; u < kSessions; ++u) {
    ASSERT_TRUE(statuses[static_cast<size_t>(u)].ok());
    EXPECT_EQ(coalesced[static_cast<size_t>(u)],
              independent[static_cast<size_t>(u)]);
  }
  const CoalescedScanStats stats = scheduler.stats();
  EXPECT_EQ(stats.requests, kSessions);
  EXPECT_LE(stats.largest_batch, 2);
}

}  // namespace
}  // namespace lte::serving
