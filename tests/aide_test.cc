#include "baselines/aide.h"

#include <gtest/gtest.h>

namespace lte::baselines {
namespace {

std::vector<std::vector<double>> GridPool(int side = 20) {
  std::vector<std::vector<double>> pool;
  for (int i = 0; i < side; ++i) {
    for (int j = 0; j < side; ++j) {
      pool.push_back({static_cast<double>(i) / (side - 1),
                      static_cast<double>(j) / (side - 1)});
    }
  }
  return pool;
}

TEST(AideTest, LearnsBoxTargetWithinBudget) {
  Rng rng(1);
  const auto pool = GridPool();
  const auto in_box = [](const std::vector<double>& p) {
    return p[0] > 0.2 && p[0] < 0.6 && p[1] > 0.2 && p[1] < 0.6;
  };
  const auto oracle = [&](int64_t i) {
    return in_box(pool[static_cast<size_t>(i)]) ? 1.0 : 0.0;
  };
  Aide aide{AideOptions{}};
  ASSERT_TRUE(aide.Explore(pool, oracle, 80, &rng).ok());
  EXPECT_EQ(aide.labels_used(), 80);
  int correct = 0;
  for (const auto& p : pool) {
    if ((aide.Predict(p) > 0.5) == in_box(p)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / pool.size(), 0.9);
}

TEST(AideTest, RespectsBudget) {
  Rng rng(2);
  const auto pool = GridPool(10);
  const auto oracle = [&](int64_t i) {
    return pool[static_cast<size_t>(i)][0] > 0.5 ? 1.0 : 0.0;
  };
  Aide aide{AideOptions{}};
  ASSERT_TRUE(aide.Explore(pool, oracle, 23, &rng).ok());
  EXPECT_EQ(aide.labels_used(), 23);
}

TEST(AideTest, TreeExposesLinearUirRepresentation) {
  Rng rng(3);
  const auto pool = GridPool();
  const auto oracle = [&](int64_t i) {
    const auto& p = pool[static_cast<size_t>(i)];
    return p[0] < 0.5 ? 1.0 : 0.0;
  };
  Aide aide{AideOptions{}};
  ASSERT_TRUE(aide.Explore(pool, oracle, 60, &rng).ok());
  // The learned UIR is a union of boxes (AIDE's "linear" representation).
  EXPECT_FALSE(aide.tree().ExtractPositivePaths().empty());
}

TEST(AideTest, InvalidInputs) {
  Rng rng(4);
  Aide aide{AideOptions{}};
  const auto oracle = [](int64_t) { return 1.0; };
  EXPECT_FALSE(aide.Explore({}, oracle, 10, &rng).ok());
  EXPECT_FALSE(aide.Explore({{0, 0}}, oracle, 0, &rng).ok());
}

TEST(AideTest, AllNegativePoolPredictsNegative) {
  Rng rng(5);
  const auto pool = GridPool(8);
  const auto oracle = [](int64_t) { return 0.0; };
  Aide aide{AideOptions{}};
  ASSERT_TRUE(aide.Explore(pool, oracle, 20, &rng).ok());
  for (const auto& p : pool) {
    EXPECT_EQ(aide.Predict(p), 0.0);
  }
}

}  // namespace
}  // namespace lte::baselines
