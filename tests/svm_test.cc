#include "svm/svm.h"

#include <gtest/gtest.h>

namespace lte::svm {
namespace {

// A ring of negatives around a cluster of positives: needs the RBF kernel.
void MakeRingData(Rng* rng, std::vector<std::vector<double>>* x,
                  std::vector<double>* y, int n = 120) {
  for (int i = 0; i < n / 2; ++i) {
    x->push_back({rng->Normal(0, 0.3), rng->Normal(0, 0.3)});
    y->push_back(1.0);
  }
  for (int i = 0; i < n / 2; ++i) {
    const double angle = rng->Uniform(0, 2 * M_PI);
    const double radius = 2.0 + rng->Uniform(0, 0.3);
    x->push_back({radius * std::cos(angle), radius * std::sin(angle)});
    y->push_back(0.0);
  }
}

TEST(SvmTest, LearnsLinearlySeparableData) {
  Rng rng(1);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 40; ++i) {
    x.push_back({rng.Normal(-2, 0.4), rng.Normal(0, 0.4)});
    y.push_back(0.0);
    x.push_back({rng.Normal(2, 0.4), rng.Normal(0, 0.4)});
    y.push_back(1.0);
  }
  Svm svm;
  ASSERT_TRUE(svm.Train(x, y, Kernel{}, SmoOptions{}, &rng).ok());
  int correct = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (svm.Predict(x[i]) == y[i]) ++correct;
  }
  EXPECT_GE(correct, static_cast<int>(x.size() * 95 / 100));
}

TEST(SvmTest, RbfHandlesNonLinearRing) {
  Rng rng(2);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  MakeRingData(&rng, &x, &y);
  Svm svm;
  Kernel k;
  k.type = KernelType::kRbf;
  k.gamma = 2.0;
  ASSERT_TRUE(svm.Train(x, y, k, SmoOptions{}, &rng).ok());
  EXPECT_EQ(svm.Predict({0.0, 0.0}), 1.0);
  EXPECT_EQ(svm.Predict({2.2, 0.0}), 0.0);
  EXPECT_EQ(svm.Predict({0.0, -2.2}), 0.0);
}

TEST(SvmTest, OneClassPositiveFallback) {
  Rng rng(3);
  Svm svm;
  ASSERT_TRUE(
      svm.Train({{0, 0}, {1, 1}}, {1.0, 1.0}, Kernel{}, SmoOptions{}, &rng)
          .ok());
  EXPECT_EQ(svm.Predict({100, 100}), 1.0);
  EXPECT_GT(svm.DecisionFunction({5, 5}), 0.0);
  EXPECT_EQ(svm.num_support_vectors(), 0);
}

TEST(SvmTest, OneClassNegativeFallback) {
  Rng rng(4);
  Svm svm;
  ASSERT_TRUE(
      svm.Train({{0, 0}, {1, 1}}, {0.0, 0.0}, Kernel{}, SmoOptions{}, &rng)
          .ok());
  EXPECT_EQ(svm.Predict({0, 0}), 0.0);
  EXPECT_LT(svm.DecisionFunction({0, 0}), 0.0);
}

TEST(SvmTest, InvalidInputs) {
  Rng rng(5);
  Svm svm;
  EXPECT_FALSE(svm.Train({}, {}, Kernel{}, SmoOptions{}, &rng).ok());
  EXPECT_FALSE(
      svm.Train({{0, 0}}, {1.0, 0.0}, Kernel{}, SmoOptions{}, &rng).ok());
  EXPECT_FALSE(
      svm.Train({{0, 0}}, {0.5}, Kernel{}, SmoOptions{}, &rng).ok());
}

TEST(SvmTest, AutoGammaUsesFeatureCount) {
  // Just a smoke check that auto-gamma (gamma <= 0) trains and predicts.
  Rng rng(6);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  MakeRingData(&rng, &x, &y);
  Svm svm;
  Kernel k;
  k.gamma = -1.0;
  ASSERT_TRUE(svm.Train(x, y, k, SmoOptions{}, &rng).ok());
  EXPECT_EQ(svm.Predict({0.0, 0.0}), 1.0);
}

}  // namespace
}  // namespace lte::svm
