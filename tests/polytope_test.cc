#include "baselines/polytope.h"

#include <gtest/gtest.h>

namespace lte::baselines {
namespace {

TEST(PolytopeTest, PositiveRegionIsHullOfPositives) {
  PolytopeModel m;
  m.Update({0, 0}, 1.0);
  m.Update({2, 0}, 1.0);
  m.Update({1, 2}, 1.0);
  EXPECT_EQ(m.Classify({1.0, 0.5}), ThreeSet::kPositive);
  EXPECT_EQ(m.Classify({0.0, 0.0}), ThreeSet::kPositive);  // Vertex.
  EXPECT_EQ(m.Classify({5.0, 5.0}), ThreeSet::kUncertain);
}

TEST(PolytopeTest, NegativeConeBlocksPointsBeyondNegative) {
  PolytopeModel m;
  m.Update({0, 0}, 1.0);
  m.Update({1, 0}, 1.0);
  m.Update({0, 1}, 1.0);
  // Negative example to the right of the hull.
  m.Update({2, 0}, 0.0);
  // Any point whose hull with the positives would contain (2,0) is provably
  // negative under convexity, e.g. a far point on the same ray.
  EXPECT_EQ(m.Classify({4.0, 0.0}), ThreeSet::kNegative);
  // A point elsewhere remains uncertain.
  EXPECT_EQ(m.Classify({0.0, 3.0}), ThreeSet::kUncertain);
}

TEST(PolytopeTest, NoLabelsEverythingUncertain) {
  PolytopeModel m;
  EXPECT_EQ(m.Classify({0, 0}), ThreeSet::kUncertain);
}

TEST(PolytopeTest, OnlyNegativesCatchExactDuplicates) {
  PolytopeModel m;
  m.Update({1, 1}, 0.0);
  EXPECT_EQ(m.Classify({1, 1}), ThreeSet::kNegative);
  EXPECT_EQ(m.Classify({2, 2}), ThreeSet::kUncertain);
}

TEST(PolytopeTest, OneDimensionalSubspace) {
  PolytopeModel m;
  m.Update({1.0}, 1.0);
  m.Update({3.0}, 1.0);
  m.Update({5.0}, 0.0);
  EXPECT_EQ(m.Classify({2.0}), ThreeSet::kPositive);
  EXPECT_EQ(m.Classify({6.0}), ThreeSet::kNegative);  // Beyond the negative.
  EXPECT_EQ(m.Classify({4.0}), ThreeSet::kUncertain);
  EXPECT_EQ(m.Classify({0.0}), ThreeSet::kUncertain);
}

TEST(PolytopeTest, CountsTracked) {
  PolytopeModel m;
  m.Update({0, 0}, 1.0);
  m.Update({1, 1}, 0.0);
  m.Update({2, 2}, 0.0);
  EXPECT_EQ(m.num_positive(), 1);
  EXPECT_EQ(m.num_negative(), 2);
}

TEST(PolytopeTest, PositiveRegionGrowsMonotonically) {
  PolytopeModel m;
  m.Update({0, 0}, 1.0);
  m.Update({1, 0}, 1.0);
  EXPECT_EQ(m.Classify({0.5, 0.5}), ThreeSet::kUncertain);
  m.Update({0.5, 1.0}, 1.0);
  EXPECT_EQ(m.Classify({0.5, 0.5}), ThreeSet::kPositive);
}

}  // namespace
}  // namespace lte::baselines
