#include "preprocess/normalizer.h"

#include <gtest/gtest.h>

namespace lte::preprocess {
namespace {

data::Table MakeTable() {
  data::Table t({"a", "b"});
  EXPECT_TRUE(t.AppendRow({0.0, 100.0}).ok());
  EXPECT_TRUE(t.AppendRow({10.0, 200.0}).ok());
  EXPECT_TRUE(t.AppendRow({5.0, 150.0}).ok());
  return t;
}

TEST(NormalizerTest, MapsToUnitInterval) {
  MinMaxNormalizer n;
  ASSERT_TRUE(n.Fit(MakeTable()).ok());
  EXPECT_DOUBLE_EQ(n.Transform(0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(n.Transform(0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(n.Transform(0, 5.0), 0.5);
  EXPECT_DOUBLE_EQ(n.Transform(1, 150.0), 0.5);
}

TEST(NormalizerTest, ClampsOutOfRange) {
  MinMaxNormalizer n;
  ASSERT_TRUE(n.Fit(MakeTable()).ok());
  EXPECT_DOUBLE_EQ(n.Transform(0, -5.0), 0.0);
  EXPECT_DOUBLE_EQ(n.Transform(0, 100.0), 1.0);
}

TEST(NormalizerTest, InverseRoundTrips) {
  MinMaxNormalizer n;
  ASSERT_TRUE(n.Fit(MakeTable()).ok());
  EXPECT_DOUBLE_EQ(n.Inverse(0, n.Transform(0, 7.0)), 7.0);
  EXPECT_DOUBLE_EQ(n.Inverse(1, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(n.Inverse(1, 1.0), 200.0);
}

TEST(NormalizerTest, ConstantColumnMapsToHalf) {
  data::Table t({"c"});
  ASSERT_TRUE(t.AppendRow({3.0}).ok());
  ASSERT_TRUE(t.AppendRow({3.0}).ok());
  MinMaxNormalizer n;
  ASSERT_TRUE(n.Fit(t).ok());
  EXPECT_DOUBLE_EQ(n.Transform(0, 3.0), 0.5);
}

TEST(NormalizerTest, EmptyTableFails) {
  data::Table t({"a"});
  MinMaxNormalizer n;
  EXPECT_FALSE(n.Fit(t).ok());
}

TEST(NormalizerTest, TransformRow) {
  MinMaxNormalizer n;
  ASSERT_TRUE(n.Fit(MakeTable()).ok());
  EXPECT_EQ(n.TransformRow({10.0, 100.0}), (std::vector<double>{1.0, 0.0}));
}

}  // namespace
}  // namespace lte::preprocess
