#include "core/uis_feature.h"

#include <gtest/gtest.h>

namespace lte::core {
namespace {

// C^s centers on a line at x = 0, 4, 8; C^u centers at x = 0..9.
cluster::ProximityMatrix MakeProximity() {
  std::vector<std::vector<double>> s = {{0.0}, {4.0}, {8.0}};
  std::vector<std::vector<double>> u;
  for (int i = 0; i < 10; ++i) u.push_back({static_cast<double>(i)});
  return cluster::ProximityMatrix(s, u);
}

TEST(UisFeatureTest, NoPositiveLabelsYieldsZeroVector) {
  const auto p = MakeProximity();
  const std::vector<double> v = BuildUisFeature({0, 0, 0}, p, 2);
  EXPECT_EQ(v.size(), 10u);
  for (double b : v) EXPECT_DOUBLE_EQ(b, 0.0);
}

TEST(UisFeatureTest, PositiveCenterTurnsOnNearestBits) {
  const auto p = MakeProximity();
  // Center at x=0 positive, expansion 2: nearest C^u centers are x=0 and x=1.
  const std::vector<double> v = BuildUisFeature({1, 0, 0}, p, 2);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 1.0);
  for (size_t i = 2; i < 10; ++i) EXPECT_DOUBLE_EQ(v[i], 0.0);
}

TEST(UisFeatureTest, MultiplePositivesUnionBits) {
  const auto p = MakeProximity();
  const std::vector<double> v = BuildUisFeature({1, 0, 1}, p, 2);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 1.0);
  EXPECT_DOUBLE_EQ(v[8], 1.0);
  // x=8's 2-NN are {8, 7} or {8, 9}; exactly 4 bits set overall.
  double total = 0;
  for (double b : v) total += b;
  EXPECT_DOUBLE_EQ(total, 4.0);
}

TEST(UisFeatureTest, LargerExpansionIsMonotone) {
  const auto p = MakeProximity();
  const std::vector<double> v2 = BuildUisFeature({0, 1, 0}, p, 2);
  const std::vector<double> v5 = BuildUisFeature({0, 1, 0}, p, 5);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_GE(v5[i], v2[i]);  // Bits never turn off as l grows.
  }
}

TEST(UisFeatureTest, FullExpansionCoversEverything) {
  const auto p = MakeProximity();
  const std::vector<double> v = BuildUisFeature({1, 1, 1}, p, 10);
  for (double b : v) EXPECT_DOUBLE_EQ(b, 1.0);
}

}  // namespace
}  // namespace lte::core
