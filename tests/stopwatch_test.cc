#include "common/stopwatch.h"

#include <gtest/gtest.h>

#include <thread>

namespace lte {
namespace {

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = sw.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.015);
  EXPECT_LT(elapsed, 5.0);  // Sanity upper bound.
}

TEST(StopwatchTest, MillisecondsConsistentWithSeconds) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double s = sw.ElapsedSeconds();
  const double ms = sw.ElapsedMillis();
  EXPECT_GE(ms, s * 1000.0 - 1.0);
}

TEST(StopwatchTest, RestartResetsOrigin) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sw.Restart();
  EXPECT_LT(sw.ElapsedSeconds(), 0.015);
}

TEST(StopwatchTest, MonotonicallyIncreasing) {
  Stopwatch sw;
  const double a = sw.ElapsedSeconds();
  const double b = sw.ElapsedSeconds();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace lte
