#include "core/exploration_session.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "core/exploration_model.h"
#include "core/explorer.h"
#include "data/synthetic.h"

namespace lte::core {
namespace {

ExplorerOptions SmallExplorerOptions() {
  ExplorerOptions opt;
  opt.task_gen.k_u = 30;
  opt.task_gen.k_s = 10;
  opt.task_gen.k_q = 30;
  opt.task_gen.delta = 5;
  opt.task_gen.alpha = 2;
  opt.task_gen.psi = 8;
  opt.learner.embedding_size = 12;
  opt.learner.clf_hidden = {12};
  opt.learner.num_memory_modes = 3;
  opt.num_meta_tasks = 25;
  opt.trainer.epochs = 3;
  opt.trainer.task_batch_size = 10;
  opt.trainer.local_steps = 6;
  opt.trainer.local_lr = 0.2;
  opt.trainer.global_lr = 0.1;
  opt.online_steps = 25;
  opt.online_lr = 0.2;
  opt.encoder.num_gmm_components = 3;
  opt.encoder.num_jenks_intervals = 3;
  return opt;
}

class ExplorationSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(23);
    table_ = data::MakeBlobs(4000, 4, 5, &rng);
    subspaces_ = {data::Subspace{{0, 1}}, data::Subspace{{2, 3}}};
    model_ = std::make_shared<ExplorationModel>(SmallExplorerOptions());
    Rng pretrain_rng(23);
    ASSERT_TRUE(
        model_->Pretrain(table_, subspaces_, /*train_meta=*/true,
                         &pretrain_rng)
            .ok());
  }

  // Simulated user `u`: interesting iff the subspace point's first
  // coordinate is below a per-user fraction of that attribute's range.
  // Distinct users get distinct thresholds (and therefore distinct adapted
  // models).
  std::vector<std::vector<double>> UserLabels(int64_t u) const {
    const double fraction = 0.35 + 0.12 * static_cast<double>(u);
    std::vector<std::vector<double>> labels(subspaces_.size());
    for (size_t s = 0; s < subspaces_.size(); ++s) {
      const data::Column& col =
          table_.column(subspaces_[s].attribute_indices[0]);
      const double threshold = col.min() + fraction * (col.max() - col.min());
      for (const auto& tuple :
           *model_->InitialTuples(static_cast<int64_t>(s))) {
        labels[s].push_back(tuple[0] < threshold ? 1.0 : 0.0);
      }
    }
    return labels;
  }

  static Variant UserVariant(int64_t u) {
    switch (u % 3) {
      case 0:
        return Variant::kMetaStar;
      case 1:
        return Variant::kMeta;
      default:
        return Variant::kBasic;
    }
  }

  // One user's complete exploration outcome, for exact comparison.
  struct Outcome {
    std::vector<double> predictions;
    std::vector<int64_t> matches;

    bool operator==(const Outcome& other) const {
      return predictions == other.predictions && matches == other.matches;
    }
  };

  // Runs user `u` start to finish on `session`: adapt, batch-predict a row
  // sample, and retrieve all matches.
  Outcome RunUser(ExplorationSession* session, int64_t u) const {
    Outcome out;
    Rng rng(100 + static_cast<uint64_t>(u));
    EXPECT_TRUE(
        session->StartExploration(UserLabels(u), UserVariant(u), &rng).ok());
    std::vector<int64_t> rows(500);
    std::iota(rows.begin(), rows.end(), 0);
    EXPECT_TRUE(session->PredictRows(table_, rows, &out.predictions).ok());
    EXPECT_TRUE(session->RetrieveMatches(table_, -1, &out.matches).ok());
    return out;
  }

  data::Table table_;
  std::vector<data::Subspace> subspaces_;
  std::shared_ptr<ExplorationModel> model_;
};

TEST_F(ExplorationSessionTest, SessionServesModelQueries) {
  ExplorationSession session(model_);
  Rng rng(99);
  ASSERT_TRUE(
      session.StartExploration(UserLabels(0), Variant::kMetaStar, &rng).ok());
  EXPECT_EQ(session.active_subspaces(), 2);
  const std::optional<double> pred = session.PredictRow(table_.Row(0));
  ASSERT_TRUE(pred.has_value());
  EXPECT_TRUE(*pred == 0.0 || *pred == 1.0);
}

// The tentpole contract: N sessions exploring concurrently against one
// shared model produce byte-identical results to N sequential standalone
// runs. Each user runs a different variant and distinct labels, every
// session fans its own scans out on the shared pool, and all adaptation
// happens concurrently too — the strongest interleaving the serving
// architecture promises to survive.
TEST_F(ExplorationSessionTest, ConcurrentSessionsMatchSequentialRuns) {
  constexpr int64_t kUsers = 4;

  std::vector<Outcome> sequential(kUsers);
  for (int64_t u = 0; u < kUsers; ++u) {
    ExplorationSession session(model_, /*num_threads=*/2);
    sequential[static_cast<size_t>(u)] = RunUser(&session, u);
  }

  std::vector<Outcome> concurrent(kUsers);
  {
    std::vector<std::thread> users;
    users.reserve(kUsers);
    for (int64_t u = 0; u < kUsers; ++u) {
      users.emplace_back([&, u] {
        ExplorationSession session(model_, /*num_threads=*/2);
        concurrent[static_cast<size_t>(u)] = RunUser(&session, u);
      });
    }
    for (std::thread& t : users) t.join();
  }

  for (int64_t u = 0; u < kUsers; ++u) {
    EXPECT_EQ(concurrent[static_cast<size_t>(u)],
              sequential[static_cast<size_t>(u)])
        << "user " << u << " diverged under concurrency";
  }
  // Distinct users genuinely explored distinct regions (the test would be
  // vacuous if every outcome were identical).
  EXPECT_NE(sequential[0], sequential[2]);
}

// The facade must be indistinguishable from a hand-rolled model + session
// with the same seeds.
TEST_F(ExplorationSessionTest, FacadeMatchesStandaloneSession) {
  Explorer facade(SmallExplorerOptions());
  Rng facade_rng(23);
  ASSERT_TRUE(
      facade.Pretrain(table_, subspaces_, /*train_meta=*/true, &facade_rng)
          .ok());

  const std::vector<std::vector<double>> labels = UserLabels(1);

  Rng facade_online(7);
  ASSERT_TRUE(
      facade.StartExploration(labels, Variant::kMetaStar, &facade_online)
          .ok());

  // model_ was pretrained with the same Rng(23) stream in SetUp, so the
  // initial tuples (and labels) line up.
  ExplorationSession session(model_);
  Rng session_online(7);
  ASSERT_TRUE(
      session.StartExploration(labels, Variant::kMetaStar, &session_online)
          .ok());

  std::vector<int64_t> rows(300);
  std::iota(rows.begin(), rows.end(), 0);
  std::vector<double> facade_preds;
  std::vector<double> session_preds;
  ASSERT_TRUE(facade.PredictRows(table_, rows, &facade_preds).ok());
  ASSERT_TRUE(session.PredictRows(table_, rows, &session_preds).ok());
  EXPECT_EQ(facade_preds, session_preds);

  std::vector<int64_t> facade_matches;
  std::vector<int64_t> session_matches;
  ASSERT_TRUE(facade.RetrieveMatches(table_, 50, &facade_matches).ok());
  ASSERT_TRUE(session.RetrieveMatches(table_, 50, &session_matches).ok());
  EXPECT_EQ(facade_matches, session_matches);
}

TEST_F(ExplorationSessionTest, SessionThreadOverrideIsResultInvariant) {
  // A session's private thread knob changes scheduling, never results.
  ExplorationSession seq(model_, /*num_threads=*/1);
  ExplorationSession par(model_, /*num_threads=*/4);
  EXPECT_EQ(seq.num_threads(), 1);
  EXPECT_EQ(par.num_threads(), 4);
  const Outcome a = RunUser(&seq, 1);
  const Outcome b = RunUser(&par, 1);
  EXPECT_EQ(a, b);
}

TEST_F(ExplorationSessionTest, InheritsModelThreadKnobByDefault) {
  ExplorationSession session(model_);
  EXPECT_EQ(session.num_threads(), model_->options().num_threads);
}

TEST_F(ExplorationSessionTest, MisuseReturnsStatusNotAbort) {
  ExplorationSession session(model_);
  // Query surface before StartExploration.
  EXPECT_FALSE(session.PredictRow(table_.Row(0)).has_value());
  EXPECT_FALSE(session.PredictSubspace(0, {0.5, 0.5}).has_value());
  std::vector<double> preds;
  std::vector<int64_t> rows = {0, 1};
  EXPECT_EQ(session.PredictRows(table_, rows, &preds).code(),
            StatusCode::kFailedPrecondition);
  std::vector<int64_t> matches;
  EXPECT_EQ(session.RetrieveMatches(table_, -1, &matches).code(),
            StatusCode::kFailedPrecondition);
  std::vector<int64_t> suggested;
  EXPECT_EQ(session.SuggestTuples(0, {{0.1, 0.2}}, 1, &suggested).code(),
            StatusCode::kFailedPrecondition);
  Rng rng(1);
  EXPECT_EQ(session.ContinueExploration(0, {{0.1, 0.2}}, {1.0}, &rng).code(),
            StatusCode::kInvalidArgument);

  // Untrained model.
  auto cold = std::make_shared<ExplorationModel>(SmallExplorerOptions());
  ExplorationSession cold_session(cold);
  EXPECT_EQ(
      cold_session.StartExploration({{1.0}}, Variant::kBasic, &rng).code(),
      StatusCode::kFailedPrecondition);
}

TEST_F(ExplorationSessionTest, ContinueExplorationNullRngIsError) {
  // Regression: a null rng used to reach the local-update path and
  // dereference, aborting the process; it must come back as a misuse error
  // like every other bad argument.
  ExplorationSession session(model_);
  Rng rng(7);
  ASSERT_TRUE(
      session.StartExploration(UserLabels(0), Variant::kMeta, &rng).ok());
  const Status s =
      session.ContinueExploration(0, {{0.1, 0.2}}, {1.0}, nullptr);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // The session is untouched and still serves queries.
  EXPECT_TRUE(session.PredictRow(table_.Row(0)).has_value());
}

TEST_F(ExplorationSessionTest, ResetDropsAdaptedState) {
  ExplorationSession session(model_);
  Rng rng(5);
  ASSERT_TRUE(
      session.StartExploration(UserLabels(0), Variant::kMeta, &rng).ok());
  ASSERT_EQ(session.active_subspaces(), 2);
  session.Reset();
  EXPECT_EQ(session.active_subspaces(), 0);
  EXPECT_FALSE(session.PredictRow(table_.Row(0)).has_value());
  // The model is untouched: a fresh exploration still works.
  ASSERT_TRUE(
      session.StartExploration(UserLabels(1), Variant::kMeta, &rng).ok());
  EXPECT_TRUE(session.PredictRow(table_.Row(0)).has_value());
}

TEST_F(ExplorationSessionTest, ModelAccessorsRejectOutOfRange) {
  EXPECT_EQ(model_->subspace(-1), nullptr);
  EXPECT_EQ(model_->subspace(2), nullptr);
  EXPECT_EQ(model_->InitialTuples(99), nullptr);
  EXPECT_EQ(model_->generator(-3), nullptr);
  EXPECT_EQ(model_->meta_learner(2), nullptr);
  EXPECT_NE(model_->meta_learner(0), nullptr);
}

}  // namespace
}  // namespace lte::core
