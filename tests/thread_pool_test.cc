#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

namespace lte {
namespace {

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(DefaultThreadCount(), 1);
}

TEST(ThreadPoolTest, ResolveThreadCountConvention) {
  EXPECT_EQ(ResolveThreadCount(0), DefaultThreadCount());  // 0 = auto.
  EXPECT_EQ(ResolveThreadCount(1), 1);
  EXPECT_EQ(ResolveThreadCount(7), 7);
  EXPECT_EQ(ResolveThreadCount(-3), 1);  // Clamped.
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4);
  std::vector<int> hits(10000, 0);
  pool.ParallelFor(0, 10000, 8, [&](int64_t i) {
    ++hits[static_cast<size_t>(i)];  // Disjoint slots: no synchronization.
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, NonZeroRangeBegin) {
  ThreadPool pool(3);
  std::atomic<int64_t> sum{0};
  pool.ParallelFor(100, 200, 4, [&](int64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), (100 + 199) * 100 / 2);
}

TEST(ThreadPoolTest, EmptyAndSingletonRanges) {
  ThreadPool pool(2);
  int64_t calls = 0;
  pool.ParallelFor(5, 5, 4, [&](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(5, 6, 4, [&](int64_t i) {
    ++calls;
    EXPECT_EQ(i, 5);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, MoreLanesThanWorkersStillCoversRange) {
  // Lanes are a partition of the range, not of the workers; a single worker
  // plus the caller must still execute all 16 lanes.
  ThreadPool pool(1);
  std::vector<int> hits(1000, 0);
  pool.ParallelFor(0, 1000, 16, [&](int64_t i) { ++hits[static_cast<size_t>(i)]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0);
  std::vector<int> hits(100, 0);
  pool.ParallelFor(0, 100, 8, [&](int64_t i) { ++hits[static_cast<size_t>(i)]; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 100);
}

TEST(ThreadPoolTest, ShardPartitionIsDeterministic) {
  // The lane boundaries depend only on (range, max_parallelism): two pools
  // of different sizes must produce identical shard decompositions.
  auto shards_of = [](ThreadPool* pool, int64_t n, int64_t lanes) {
    std::mutex mu;
    std::vector<std::pair<int64_t, int64_t>> shards;
    pool->ParallelForShards(0, n, lanes, [&](int64_t lo, int64_t hi) {
      std::lock_guard<std::mutex> lock(mu);
      shards.emplace_back(lo, hi);
    });
    std::sort(shards.begin(), shards.end());
    return shards;
  };
  ThreadPool small(2);
  ThreadPool large(8);
  for (int64_t n : {int64_t{7}, int64_t{64}, int64_t{1001}}) {
    for (int64_t lanes : {int64_t{2}, int64_t{3}, int64_t{8}}) {
      const auto a = shards_of(&small, n, lanes);
      const auto b = shards_of(&large, n, lanes);
      ASSERT_EQ(a, b) << "n=" << n << " lanes=" << lanes;
      // And they tile [0, n) exactly.
      int64_t expect_lo = 0;
      for (const auto& [lo, hi] : a) {
        ASSERT_EQ(lo, expect_lo);
        ASSERT_LT(lo, hi);
        expect_lo = hi;
      }
      ASSERT_EQ(expect_lo, n);
    }
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::vector<int> hits(64 * 64, 0);
  pool.ParallelFor(0, 64, 4, [&](int64_t outer) {
    // A nested call from inside a lane must complete (inline) rather than
    // deadlock waiting for the busy pool.
    pool.ParallelFor(0, 64, 4, [&](int64_t inner) {
      ++hits[static_cast<size_t>(outer * 64 + inner)];
    });
  });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64 * 64);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  // The pool is a long-lived substrate: thousands of small jobs (the shape
  // meta-training produces — one per batch per epoch) must not wedge it.
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  for (int round = 0; round < 2000; ++round) {
    pool.ParallelFor(0, 16, 4, [&](int64_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 2000 * 16);
}

TEST(ThreadPoolTest, EarlyExitRunsEveryChunkWhenNeverCancelled) {
  ThreadPool pool(4);
  std::vector<int> hits(500, 0);
  pool.ParallelForEarlyExit(
      500, 4, [&](int64_t c) { ++hits[static_cast<size_t>(c)]; },
      [] { return false; });
  for (size_t c = 0; c < hits.size(); ++c) {
    ASSERT_EQ(hits[c], 1) << "chunk " << c;
  }
}

TEST(ThreadPoolTest, EarlyExitExecutesContiguousPrefix) {
  // Cancel after ~50 chunks: whatever ran must be exactly [0, C) for some C
  // — chunks are claimed in increasing order, so no gaps are possible.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  std::atomic<int64_t> done{0};
  pool.ParallelForEarlyExit(
      1000, 4,
      [&](int64_t c) {
        hits[static_cast<size_t>(c)].fetch_add(1);
        done.fetch_add(1);
      },
      [&] { return done.load() >= 50; });
  int64_t executed = 0;
  for (const auto& h : hits) executed += h.load();
  EXPECT_GE(executed, 50);
  EXPECT_LT(executed, 1000);  // The cancellation actually cut the scan short.
  // Contiguity: once a zero appears, everything after it is zero too.
  bool seen_gap = false;
  for (const auto& h : hits) {
    if (h.load() == 0) seen_gap = true;
    else ASSERT_FALSE(seen_gap) << "executed chunk after an unexecuted one";
  }
}

TEST(ThreadPoolTest, EarlyExitCancelledUpFrontRunsNothing) {
  ThreadPool pool(2);
  int64_t calls = 0;
  pool.ParallelForEarlyExit(
      100, 4, [&](int64_t) { ++calls; }, [] { return true; });
  EXPECT_EQ(calls, 0);
  pool.ParallelForEarlyExit(
      0, 4, [&](int64_t) { ++calls; }, [] { return false; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, EarlyExitSequentialAndNestedFallbacks) {
  // max_parallelism <= 1 runs inline on the caller, in chunk order.
  ThreadPool pool(4);
  std::vector<int64_t> order;
  pool.ParallelForEarlyExit(
      8, 1, [&](int64_t c) { order.push_back(c); }, [] { return false; });
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4, 5, 6, 7}));
  // From inside a pool lane the early-exit loop must complete inline rather
  // than deadlock on the busy pool.
  std::atomic<int64_t> nested{0};
  pool.ParallelFor(0, 4, 4, [&](int64_t) {
    pool.ParallelForEarlyExit(
        16, 4, [&](int64_t) { nested.fetch_add(1); }, [] { return false; });
  });
  EXPECT_EQ(nested.load(), 4 * 16);
}

TEST(ThreadPoolTest, SharedPoolSingleton) {
  ThreadPool& a = ThreadPool::Shared();
  ThreadPool& b = ThreadPool::Shared();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.num_workers(), DefaultThreadCount());
  std::atomic<int64_t> sum{0};
  a.ParallelFor(0, 100, 0 /* <= 1: inline */, [&](int64_t i) {
    sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

}  // namespace
}  // namespace lte
