#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lte::nn {
namespace {

TEST(SgdTest, PlainStep) {
  SgdOptimizer opt(0.1);
  std::vector<double> params = {1.0, -2.0};
  opt.Step({10.0, -10.0}, &params);
  EXPECT_DOUBLE_EQ(params[0], 0.0);
  EXPECT_DOUBLE_EQ(params[1], -1.0);
}

TEST(SgdTest, MomentumAccumulates) {
  SgdOptimizer opt(0.1, 0.9);
  std::vector<double> params = {0.0};
  opt.Step({1.0}, &params);  // v = 1, p = -0.1
  EXPECT_DOUBLE_EQ(params[0], -0.1);
  opt.Step({1.0}, &params);  // v = 1.9, p = -0.1 - 0.19
  EXPECT_NEAR(params[0], -0.29, 1e-12);
}

TEST(SgdTest, MinimizesQuadratic) {
  // f(x) = (x - 3)^2, grad = 2(x - 3).
  SgdOptimizer opt(0.1);
  std::vector<double> x = {10.0};
  for (int i = 0; i < 200; ++i) opt.Step({2.0 * (x[0] - 3.0)}, &x);
  EXPECT_NEAR(x[0], 3.0, 1e-6);
}

TEST(AdamTest, MinimizesQuadratic) {
  AdamOptimizer opt(0.1);
  std::vector<double> x = {10.0};
  for (int i = 0; i < 500; ++i) opt.Step({2.0 * (x[0] - 3.0)}, &x);
  EXPECT_NEAR(x[0], 3.0, 1e-3);
}

TEST(AdamTest, FirstStepIsApproximatelyLearningRate) {
  // With bias correction the first Adam step has magnitude ~lr regardless of
  // gradient scale.
  AdamOptimizer opt(0.01);
  std::vector<double> a = {0.0};
  opt.Step({1e-4}, &a);
  EXPECT_NEAR(std::abs(a[0]), 0.01, 1e-3);

  AdamOptimizer opt2(0.01);
  std::vector<double> b = {0.0};
  opt2.Step({1e4}, &b);
  EXPECT_NEAR(std::abs(b[0]), 0.01, 1e-3);
}

TEST(AdamTest, HandlesMultipleParameters) {
  AdamOptimizer opt(0.05);
  std::vector<double> x = {5.0, -5.0};
  for (int i = 0; i < 1000; ++i) {
    opt.Step({2.0 * x[0], 2.0 * (x[1] + 1.0)}, &x);
  }
  EXPECT_NEAR(x[0], 0.0, 1e-2);
  EXPECT_NEAR(x[1], -1.0, 1e-2);
}

TEST(SgdTest, LearningRateMutable) {
  SgdOptimizer opt(0.1);
  opt.set_learning_rate(0.5);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.5);
  std::vector<double> p = {1.0};
  opt.Step({1.0}, &p);
  EXPECT_DOUBLE_EQ(p[0], 0.5);
}

}  // namespace
}  // namespace lte::nn
