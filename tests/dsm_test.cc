#include "baselines/dsm.h"

#include <gtest/gtest.h>

namespace lte::baselines {
namespace {

// 4-D pool; target: conjunctive convex box per 2-D subspace.
std::vector<std::vector<double>> RandomPool(Rng* rng, int n = 600) {
  std::vector<std::vector<double>> pool;
  for (int i = 0; i < n; ++i) {
    pool.push_back({rng->Uniform(), rng->Uniform(), rng->Uniform(),
                    rng->Uniform()});
  }
  return pool;
}

bool InTarget(const std::vector<double>& x) {
  // Subspace {0,1}: box [0.2,0.7]^2; subspace {2,3}: box [0.3,0.9]^2.
  return x[0] >= 0.2 && x[0] <= 0.7 && x[1] >= 0.2 && x[1] <= 0.7 &&
         x[2] >= 0.3 && x[2] <= 0.9 && x[3] >= 0.3 && x[3] <= 0.9;
}

TEST(DsmTest, LearnsConjunctiveConvexTarget) {
  Rng rng(1);
  const auto pool = RandomPool(&rng);
  const auto oracle = [&](int64_t i) {
    return InTarget(pool[static_cast<size_t>(i)]) ? 1.0 : 0.0;
  };
  Dsm dsm(DsmOptions{}, {{0, 1}, {2, 3}});
  ASSERT_TRUE(dsm.Explore(pool, oracle, 60, &rng).ok());
  EXPECT_EQ(dsm.labels_used(), 60);

  int correct = 0;
  for (const auto& p : pool) {
    if ((dsm.Predict(p) > 0.5) == InTarget(p)) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / pool.size(), 0.85);
}

TEST(DsmTest, ThreeSetConjunctionLogic) {
  Rng rng(2);
  Dsm dsm(DsmOptions{}, {{0, 1}, {2, 3}});
  const auto pool = RandomPool(&rng, 300);
  const auto oracle = [&](int64_t i) {
    return InTarget(pool[static_cast<size_t>(i)]) ? 1.0 : 0.0;
  };
  ASSERT_TRUE(dsm.Explore(pool, oracle, 50, &rng).ok());
  // Provably-positive tuples must actually be positive (soundness of the
  // polytope model under the convexity assumption).
  int checked = 0;
  for (const auto& p : pool) {
    if (dsm.ClassifyThreeSet(p) == ThreeSet::kPositive) {
      EXPECT_TRUE(InTarget(p));
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(DsmTest, NegativeVerdictIsSound) {
  Rng rng(3);
  Dsm dsm(DsmOptions{}, {{0, 1}, {2, 3}});
  const auto pool = RandomPool(&rng, 300);
  const auto oracle = [&](int64_t i) {
    return InTarget(pool[static_cast<size_t>(i)]) ? 1.0 : 0.0;
  };
  ASSERT_TRUE(dsm.Explore(pool, oracle, 50, &rng).ok());
  for (const auto& p : pool) {
    if (dsm.ClassifyThreeSet(p) == ThreeSet::kNegative) {
      EXPECT_FALSE(InTarget(p));
    }
  }
}

TEST(DsmTest, InvalidInputs) {
  Rng rng(4);
  Dsm dsm(DsmOptions{}, {{0, 1}});
  const auto oracle = [](int64_t) { return 1.0; };
  EXPECT_FALSE(dsm.Explore({}, oracle, 10, &rng).ok());
  EXPECT_FALSE(dsm.Explore({{0, 0}}, oracle, 0, &rng).ok());
}

TEST(DsmTest, OutperformsNothingnessOnAllNegativePool) {
  // Degenerate: no positive tuples at all; DSM should predict ~everything
  // negative rather than crash.
  Rng rng(5);
  const auto pool = RandomPool(&rng, 200);
  const auto oracle = [](int64_t) { return 0.0; };
  Dsm dsm(DsmOptions{}, {{0, 1}, {2, 3}});
  ASSERT_TRUE(dsm.Explore(pool, oracle, 30, &rng).ok());
  int positives = 0;
  for (const auto& p : pool) {
    if (dsm.Predict(p) > 0.5) ++positives;
  }
  EXPECT_EQ(positives, 0);
}

}  // namespace
}  // namespace lte::baselines
