// serving::DriftRefreshController: the drift-triggered background refresh
// loop over a live table (DESIGN.md §2e). Same-distribution appends never
// trigger a rebuild; drifting appends publish exactly one new epoch through
// the registry; the rebuild is a deterministic function of (watermark rows,
// options, seed, epoch); and — the end-to-end property — sessions pinned to
// the pre-swap epoch keep answering byte-identically to a static run while
// the swap happens under them. The serve-across-swap test runs real reader
// threads against the ingest thread and is part of the TSan CI job.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/exploration_model.h"
#include "core/exploration_session.h"
#include "data/synthetic.h"
#include "data/table.h"
#include "serving/live_refresh.h"
#include "serving/model_registry.h"

namespace lte::serving {
namespace {

core::ExplorerOptions SmallExplorerOptions() {
  core::ExplorerOptions opt;
  opt.task_gen.k_u = 30;
  opt.task_gen.k_s = 10;
  opt.task_gen.k_q = 30;
  opt.task_gen.delta = 5;
  opt.task_gen.alpha = 2;
  opt.task_gen.psi = 8;
  opt.learner.embedding_size = 12;
  opt.learner.clf_hidden = {12};
  opt.learner.num_memory_modes = 3;
  opt.num_meta_tasks = 25;
  opt.trainer.epochs = 3;
  opt.trainer.task_batch_size = 10;
  opt.trainer.local_steps = 6;
  opt.trainer.local_lr = 0.2;
  opt.online_steps = 25;
  opt.online_lr = 0.2;
  opt.encoder.num_gmm_components = 3;
  opt.encoder.num_jenks_intervals = 3;
  return opt;
}

constexpr int64_t kBaseRows = 1200;
constexpr int64_t kBatchRows = 64;

class LiveRefreshTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng data_rng(23);
    base_table_ = data::MakeBlobs(kBaseRows, 4, 3, &data_rng);
    subspaces_ = {data::Subspace{{0, 1}}, data::Subspace{{2, 3}}};
    // Contexts + initial tuples only (Basic-variant serving): keeps both the
    // initial pretrain and every background rebuild fast enough for TSan.
    model_ = std::make_shared<core::ExplorationModel>(SmallExplorerOptions());
    Rng pretrain_rng(23);
    ASSERT_TRUE(model_
                    ->Pretrain(base_table_, subspaces_, /*train_meta=*/false,
                               &pretrain_rng)
                    .ok());
  }

  DriftRefreshOptions RefreshOptions() const {
    DriftRefreshOptions options;
    // One kBatchRows append completes a detector window, so a drifting batch
    // triggers on arrival.
    options.drift.window_size = kBatchRows;
    return options;
  }

  /// `n` rows cycled from the base table: the no-drift ingest stream.
  std::vector<std::vector<double>> SameDistributionRows(int64_t n) const {
    std::vector<std::vector<double>> rows;
    for (int64_t i = 0; i < n; ++i) {
      rows.push_back(base_table_.Row((i * 13) % kBaseRows));
    }
    return rows;
  }

  /// `n` rows pushed far outside every attribute's observed range: the
  /// quantization error explodes past any threshold, so drift is certain.
  std::vector<std::vector<double>> ShiftedRows(int64_t n) const {
    std::vector<std::vector<double>> rows = SameDistributionRows(n);
    for (auto& row : rows) {
      for (int64_t c = 0; c < base_table_.num_columns(); ++c) {
        const data::Column& col = base_table_.column(c);
        row[static_cast<size_t>(c)] += 8.0 * (col.max() - col.min() + 1.0);
      }
    }
    return rows;
  }

  std::vector<std::vector<double>> UserLabels(
      const core::ExplorationModel& model) const {
    std::vector<std::vector<double>> labels(subspaces_.size());
    for (size_t s = 0; s < subspaces_.size(); ++s) {
      const data::Column& col =
          base_table_.column(subspaces_[s].attribute_indices[0]);
      const double threshold = col.min() + 0.45 * (col.max() - col.min());
      for (const auto& tuple : *model.InitialTuples(static_cast<int64_t>(s))) {
        labels[s].push_back(tuple[0] < threshold ? 1.0 : 0.0);
      }
    }
    return labels;
  }

  data::Table base_table_;
  std::vector<data::Subspace> subspaces_;
  std::shared_ptr<core::ExplorationModel> model_;
};

TEST_F(LiveRefreshTest, SameDistributionAppendsNeverTriggerARefresh) {
  data::Table table = base_table_;
  ModelRegistry registry(model_);
  DriftRefreshController controller(&registry, &table, subspaces_,
                                    RefreshOptions());
  for (int64_t b = 0; b < 3; ++b) {
    ASSERT_TRUE(controller.AppendAndObserve(SameDistributionRows(kBatchRows))
                    .ok());
  }
  controller.WaitForRefresh();

  const DriftRefreshStats stats = controller.stats();
  EXPECT_EQ(stats.batches_observed, 3);
  EXPECT_EQ(stats.rows_observed, 3 * kBatchRows);
  EXPECT_EQ(stats.refreshes_triggered, 0);
  EXPECT_FALSE(controller.AnySubspaceDrifted());
  EXPECT_EQ(registry.current_epoch(), 1u);
  EXPECT_EQ(table.num_rows(), kBaseRows + 3 * kBatchRows);
}

TEST_F(LiveRefreshTest, DriftPublishesExactlyOneNewEpoch) {
  data::Table table = base_table_;
  ModelRegistry registry(model_);
  DriftRefreshController controller(&registry, &table, subspaces_,
                                    RefreshOptions());
  const uint64_t old_fingerprint = registry.Current().fingerprint;

  ASSERT_TRUE(controller.AppendAndObserve(ShiftedRows(kBatchRows)).ok());
  controller.WaitForRefresh();

  const DriftRefreshStats stats = controller.stats();
  EXPECT_EQ(stats.refreshes_triggered, 1);
  EXPECT_EQ(stats.refreshes_completed, 1);
  EXPECT_EQ(stats.refresh_failures, 0);
  EXPECT_EQ(stats.last_published_epoch, 2u);
  const ModelSnapshot current = registry.Current();
  EXPECT_EQ(current.epoch, 2u);
  EXPECT_NE(current.fingerprint, old_fingerprint);
  EXPECT_TRUE(current.model->pretrained());

  // The detectors re-seeded from the refreshed model's contexts: the drift
  // verdict resets instead of latching on the old baseline forever.
  EXPECT_FALSE(controller.AnySubspaceDrifted());
}

TEST_F(LiveRefreshTest, RebuildIsDeterministic) {
  // Two independent stacks fed the same script publish identical models.
  uint64_t fingerprints[2] = {0, 0};
  int64_t watermarks[2] = {0, 0};
  for (int run = 0; run < 2; ++run) {
    data::Table table = base_table_;
    ModelRegistry registry(model_);
    DriftRefreshController controller(&registry, &table, subspaces_,
                                      RefreshOptions());
    ASSERT_TRUE(controller.AppendAndObserve(SameDistributionRows(kBatchRows))
                    .ok());
    ASSERT_TRUE(controller.AppendAndObserve(ShiftedRows(kBatchRows)).ok());
    controller.WaitForRefresh();
    ASSERT_EQ(controller.stats().refreshes_completed, 1);
    fingerprints[run] = registry.Current().fingerprint;
    watermarks[run] = table.num_rows();
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  ASSERT_EQ(watermarks[0], watermarks[1]);

  // And the published model is exactly what a foreground pretrain of the
  // watermark prefix with the epoch-derived seed produces — the
  // `refresh_bit_identical` invariant bench_live_refresh re-checks at scale.
  data::Table table = base_table_;
  ASSERT_TRUE(table.AppendRows(SameDistributionRows(kBatchRows)).ok());
  ASSERT_TRUE(table.AppendRows(ShiftedRows(kBatchRows)).ok());
  const data::Table snapshot = table.SnapshotPrefix(watermarks[0]);
  core::ExplorationModel foreground(SmallExplorerOptions());
  Rng rng(RefreshOptions().rebuild_seed + 2);  // Publishing epoch 2.
  ASSERT_TRUE(foreground
                  .Pretrain(snapshot, subspaces_, /*train_meta=*/false, &rng)
                  .ok());
  EXPECT_EQ(foreground.fingerprint(), fingerprints[0]);
}

TEST_F(LiveRefreshTest, DriftDuringRebuildNeverQueuesASecondRebuild) {
  data::Table table = base_table_;
  ModelRegistry registry(model_);
  DriftRefreshOptions options = RefreshOptions();
  options.drift.window_size = 8;  // Trigger off tiny batches.
  DriftRefreshController controller(&registry, &table, subspaces_, options);
  // The second drifting batch lands either while the first rebuild is still
  // in flight (coalesced into it: one trigger) or after it published (a
  // fresh trigger of its own). Both are correct; what must never happen is a
  // triggered rebuild that doesn't finish, or two in flight at once.
  ASSERT_TRUE(controller.AppendAndObserve(ShiftedRows(8)).ok());
  ASSERT_TRUE(controller.AppendAndObserve(ShiftedRows(8)).ok());
  controller.WaitForRefresh();
  const DriftRefreshStats stats = controller.stats();
  EXPECT_GE(stats.refreshes_triggered, 1);
  EXPECT_EQ(stats.refreshes_completed, stats.refreshes_triggered);
  EXPECT_EQ(stats.refresh_failures, 0);
  EXPECT_GE(registry.current_epoch(), 2u);
}

// The end-to-end hot-swap property (ISSUE acceptance): reader threads serve
// through sessions pinned to epoch 1 while the ingest thread appends
// drifting batches and the background rebuild publishes epoch 2. Every
// pre-swap-pinned answer is byte-identical to a static (never-appended,
// never-refreshed) run; post-swap sessions bind to the new model; stale
// checkpoints meet FailedPrecondition, never a torn model.
TEST_F(LiveRefreshTest, ServeAcrossSwapIsByteIdenticalToStaticRun) {
  // Static twin: the baseline bytes any pinned session must keep producing.
  std::vector<int64_t> rows(static_cast<size_t>(kBaseRows));
  std::iota(rows.begin(), rows.end(), 0);
  std::vector<double> baseline;
  {
    core::ExplorationSession static_session(model_, /*num_threads=*/1);
    Rng rng(1000);
    ASSERT_TRUE(static_session
                    .StartExploration(UserLabels(*model_),
                                      core::Variant::kBasic, &rng)
                    .ok());
    ASSERT_TRUE(
        static_session.PredictRows(base_table_, rows, &baseline).ok());
  }

  data::Table table = base_table_;
  ModelRegistry registry(model_);
  DriftRefreshController controller(&registry, &table, subspaces_,
                                    RefreshOptions());

  // Readers pin the epoch-1 snapshot up front, then serve throughout the
  // append + swap. Each scans only rows [0, kBaseRows) — rows whose bytes a
  // live append never touches.
  const ModelSnapshot pinned = registry.Current();
  ASSERT_EQ(pinned.epoch, 1u);
  std::vector<std::thread> readers;
  std::vector<int64_t> reader_failures(3, 0);
  for (size_t t = 0; t < reader_failures.size(); ++t) {
    readers.emplace_back([&, t] {
      core::ExplorationSession session(pinned.model, /*num_threads=*/1);
      Rng rng(1000);
      if (!session
               .StartExploration(UserLabels(*pinned.model),
                                 core::Variant::kBasic, &rng)
               .ok()) {
        ++reader_failures[t];
        return;
      }
      std::vector<double> predictions;
      for (int64_t iter = 0; iter < 20; ++iter) {
        if (!session.PredictRows(table, rows, &predictions).ok() ||
            predictions != baseline) {
          ++reader_failures[t];
        }
      }
    });
  }

  // Ingest: same-distribution warmup, then drifting batches until the
  // refresh has been triggered and completes.
  ASSERT_TRUE(controller.AppendAndObserve(SameDistributionRows(kBatchRows))
                  .ok());
  ASSERT_TRUE(controller.AppendAndObserve(ShiftedRows(kBatchRows)).ok());
  controller.WaitForRefresh();
  for (std::thread& reader : readers) reader.join();

  for (size_t t = 0; t < reader_failures.size(); ++t) {
    EXPECT_EQ(reader_failures[t], 0) << "reader " << t;
  }
  ASSERT_EQ(controller.stats().refreshes_completed, 1);
  const ModelSnapshot refreshed = registry.Current();
  ASSERT_EQ(refreshed.epoch, 2u);

  // A post-swap session binds to the refreshed model and serves the whole
  // live table, appended rows included.
  {
    core::ExplorationSession session(refreshed.model, /*num_threads=*/1);
    Rng rng(2000);
    ASSERT_TRUE(session
                    .StartExploration(UserLabels(*refreshed.model),
                                      core::Variant::kBasic, &rng)
                    .ok());
    std::vector<int64_t> all_rows(static_cast<size_t>(table.num_rows()));
    std::iota(all_rows.begin(), all_rows.end(), 0);
    std::vector<double> predictions;
    ASSERT_TRUE(session.PredictRows(table, all_rows, &predictions).ok());
    EXPECT_EQ(predictions.size(), all_rows.size());
  }

  // A checkpoint stamped with the epoch-1 fingerprint refuses to load into
  // an epoch-2 session — the stale-session contract across the swap.
  const std::string path = ::testing::TempDir() + "/swap.ltesession";
  {
    core::ExplorationSession old_session(pinned.model, /*num_threads=*/1);
    Rng rng(1000);
    ASSERT_TRUE(old_session
                    .StartExploration(UserLabels(*pinned.model),
                                      core::Variant::kBasic, &rng)
                    .ok());
    ASSERT_TRUE(old_session.Save(path).ok());
  }
  core::ExplorationSession new_session(refreshed.model, /*num_threads=*/1);
  EXPECT_EQ(new_session.Load(path).code(), StatusCode::kFailedPrecondition);
  uint64_t stamped = 0;
  ASSERT_TRUE(core::ExplorationSession::PeekCheckpointFingerprint(path,
                                                                  &stamped)
                  .ok());
  EXPECT_EQ(stamped, pinned.fingerprint);
  EXPECT_NE(stamped, refreshed.fingerprint);
}

}  // namespace
}  // namespace lte::serving
