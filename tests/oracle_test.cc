#include "eval/oracle.h"

#include <gtest/gtest.h>

#include "geom/region.h"

namespace lte::eval {
namespace {

class OracleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = data::Table({"x", "y"});
    ASSERT_TRUE(table_.AppendRow({0.5, 0.5}).ok());   // Inside.
    ASSERT_TRUE(table_.AppendRow({5.0, 5.0}).ok());   // Outside.
    uir_.subspaces = {data::Subspace{{0, 1}}};
    geom::Region region;
    region.AddPart(
        geom::ConvexRegion::HullOf({{0, 0}, {1, 0}, {1, 1}, {0, 1}}));
    uir_.regions.push_back(region);
  }

  data::Table table_;
  GroundTruthUir uir_;
};

TEST_F(OracleTest, LabelsRowsAgainstUir) {
  Oracle oracle(&uir_, &table_);
  EXPECT_DOUBLE_EQ(oracle.LabelRow(0), 1.0);
  EXPECT_DOUBLE_EQ(oracle.LabelRow(1), 0.0);
}

TEST_F(OracleTest, LabelsSubspacePoints) {
  Oracle oracle(&uir_, &table_);
  EXPECT_DOUBLE_EQ(oracle.LabelSubspacePoint(0, {0.2, 0.2}), 1.0);
  EXPECT_DOUBLE_EQ(oracle.LabelSubspacePoint(0, {2.0, 2.0}), 0.0);
}

TEST_F(OracleTest, CountsLabels) {
  Oracle oracle(&uir_, &table_);
  EXPECT_EQ(oracle.labels_used(), 0);
  oracle.LabelRow(0);
  oracle.LabelSubspacePoint(0, {0.1, 0.1});
  EXPECT_EQ(oracle.labels_used(), 2);
  oracle.ResetCount();
  EXPECT_EQ(oracle.labels_used(), 0);
}

}  // namespace
}  // namespace lte::eval
