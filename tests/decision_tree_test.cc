#include "tree/decision_tree.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace lte::tree {
namespace {

TEST(DecisionTreeTest, FitsAxisAlignedBox) {
  Rng rng(1);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 400; ++i) {
    const double a = rng.Uniform();
    const double b = rng.Uniform();
    x.push_back({a, b});
    y.push_back(a > 0.3 && a < 0.7 && b > 0.3 && b < 0.7 ? 1.0 : 0.0);
  }
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(x, y).ok());
  int correct = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (tree.Predict(x[i]) == y[i]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / x.size(), 0.95);
}

TEST(DecisionTreeTest, PureNodeBecomesLeaf) {
  DecisionTree tree;
  ASSERT_TRUE(tree.Train({{0}, {1}, {2}}, {1, 1, 1}).ok());
  EXPECT_EQ(tree.num_nodes(), 1);
  EXPECT_EQ(tree.Predict({5.0}), 1.0);
}

TEST(DecisionTreeTest, SimpleThresholdSplit) {
  DecisionTree tree;
  ASSERT_TRUE(
      tree.Train({{0}, {1}, {2}, {10}, {11}, {12}}, {0, 0, 0, 1, 1, 1}).ok());
  EXPECT_EQ(tree.Predict({1.5}), 0.0);
  EXPECT_EQ(tree.Predict({11.0}), 1.0);
  // The threshold lies between the classes.
  EXPECT_EQ(tree.Predict({5.9}), 0.0);
  EXPECT_EQ(tree.Predict({6.1}), 1.0);
}

TEST(DecisionTreeTest, MaxDepthRespected) {
  Rng rng(2);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    const double a = rng.Uniform();
    x.push_back({a});
    // A wiggly target that would need many splits.
    y.push_back(std::fmod(a * 10.0, 2.0) > 1.0 ? 1.0 : 0.0);
  }
  DecisionTreeOptions opt;
  opt.max_depth = 2;
  DecisionTree tree(opt);
  ASSERT_TRUE(tree.Train(x, y).ok());
  EXPECT_LE(tree.depth(), 2);
}

TEST(DecisionTreeTest, ProbabilityReflectsLeafPurity) {
  // A node that cannot be split further (min_samples_split) keeps a
  // fractional probability.
  DecisionTreeOptions opt;
  opt.max_depth = 0;
  DecisionTree tree(opt);
  ASSERT_TRUE(tree.Train({{0}, {1}, {2}, {3}}, {1, 1, 1, 0}).ok());
  EXPECT_DOUBLE_EQ(tree.PredictProbability({0}), 0.75);
  EXPECT_EQ(tree.Predict({0}), 1.0);
}

TEST(DecisionTreeTest, InvalidInputs) {
  DecisionTree tree;
  EXPECT_FALSE(tree.Train({}, {}).ok());
  EXPECT_FALSE(tree.Train({{0}}, {1, 0}).ok());
  EXPECT_FALSE(tree.Train({{0}}, {0.5}).ok());
  EXPECT_FALSE(tree.Train({{0}, {1, 2}}, {0, 1}).ok());
}

TEST(DecisionTreeTest, PositivePathsCoverPositiveRegion) {
  Rng rng(3);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double a = rng.Uniform();
    const double b = rng.Uniform();
    x.push_back({a, b});
    y.push_back(a < 0.5 && b < 0.5 ? 1.0 : 0.0);
  }
  DecisionTree tree;
  ASSERT_TRUE(tree.Train(x, y).ok());
  const auto paths = tree.ExtractPositivePaths();
  ASSERT_FALSE(paths.empty());
  // Every positive-predicted point must fall in some positive path box.
  auto in_some_box = [&](const std::vector<double>& p) {
    for (const auto& path : paths) {
      bool in = true;
      for (size_t f = 0; f < p.size(); ++f) {
        if (p[f] <= path.lower[f] || p[f] > path.upper[f]) {
          in = false;
          break;
        }
      }
      if (in) return true;
    }
    return false;
  };
  for (const auto& p : x) {
    EXPECT_EQ(tree.Predict(p) > 0.5, in_some_box(p));
  }
}

TEST(DecisionTreeTest, PathsCarrySupportAndProbability) {
  DecisionTree tree;
  ASSERT_TRUE(
      tree.Train({{0}, {1}, {2}, {10}, {11}, {12}}, {0, 0, 0, 1, 1, 1}).ok());
  const auto paths = tree.ExtractPositivePaths();
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].support, 3);
  EXPECT_DOUBLE_EQ(paths[0].probability, 1.0);
  EXPECT_GT(paths[0].lower[0], 2.0);
  EXPECT_TRUE(std::isinf(paths[0].upper[0]));
}

TEST(DecisionTreeTest, DuplicateFeatureValuesDoNotSplit) {
  DecisionTree tree;
  ASSERT_TRUE(tree.Train({{1}, {1}, {1}, {1}}, {0, 1, 0, 1}).ok());
  // No valid split exists; the root is a leaf predicting the majority tie.
  EXPECT_EQ(tree.num_nodes(), 1);
}

}  // namespace
}  // namespace lte::tree
