#include "core/optimizer_fpfn.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/meta_task.h"

namespace lte::core {
namespace {

class FpFnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(5);
    std::vector<std::vector<double>> points;
    for (int i = 0; i < 3000; ++i) {
      points.push_back({rng.Uniform(), rng.Uniform()});
    }
    MetaTaskGenOptions opt;
    opt.k_u = 40;
    opt.k_s = 10;
    opt.k_q = 20;
    generator_ = std::make_unique<MetaTaskGenerator>(opt);
    ASSERT_TRUE(generator_->Init(points, &rng).ok());
  }

  std::unique_ptr<MetaTaskGenerator> generator_;
};

TEST_F(FpFnTest, InnerIsSubsetOfOuter) {
  const SubspaceContext& ctx = generator_->context();
  std::vector<double> labels(10, 0.0);
  labels[3] = 1.0;
  labels[7] = 1.0;
  FpFnOptimizer opt(ctx, labels, FpFnOptions{});
  ASSERT_TRUE(opt.has_positive_centers());
  // Sample the unit square; every inner point must be an outer point.
  Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    const std::vector<double> p = {rng.Uniform(), rng.Uniform()};
    if (opt.inner_subregion().Contains(p)) {
      EXPECT_TRUE(opt.outer_subregion().Contains(p));
    }
  }
}

TEST_F(FpFnTest, RefineKillsFarPositives) {
  const SubspaceContext& ctx = generator_->context();
  std::vector<double> labels(10, 0.0);
  labels[0] = 1.0;
  FpFnOptimizer opt(ctx, labels, FpFnOptions{});
  // A point far outside the data range cannot be in the outer subregion.
  EXPECT_DOUBLE_EQ(opt.Refine({100.0, 100.0}, 1.0), 0.0);
}

TEST_F(FpFnTest, RefineFillsInnerHoles) {
  const SubspaceContext& ctx = generator_->context();
  std::vector<double> labels(10, 0.0);
  labels[4] = 1.0;
  FpFnOptimizer opt(ctx, labels, FpFnOptions{});
  // The positive center itself lies inside the inner subregion.
  const std::vector<double>& center = ctx.centers_s[4];
  EXPECT_DOUBLE_EQ(opt.Refine(center, 0.0), 1.0);
}

TEST_F(FpFnTest, RefineKeepsConsistentPredictions) {
  const SubspaceContext& ctx = generator_->context();
  std::vector<double> labels(10, 0.0);
  labels[2] = 1.0;
  FpFnOptimizer opt(ctx, labels, FpFnOptions{});
  // Positive prediction inside the outer region is kept.
  const std::vector<double>& center = ctx.centers_s[2];
  EXPECT_DOUBLE_EQ(opt.Refine(center, 1.0), 1.0);
}

TEST_F(FpFnTest, NoPositivesLeavesPredictionsUntouched) {
  const SubspaceContext& ctx = generator_->context();
  const std::vector<double> labels(10, 0.0);
  FpFnOptimizer opt(ctx, labels, FpFnOptions{});
  EXPECT_FALSE(opt.has_positive_centers());
  EXPECT_DOUBLE_EQ(opt.Refine({0.5, 0.5}, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(opt.Refine({0.5, 0.5}, 0.0), 0.0);
}

TEST_F(FpFnTest, LargerOuterFractionGrowsOuterRegion) {
  const SubspaceContext& ctx = generator_->context();
  std::vector<double> labels(10, 0.0);
  labels[5] = 1.0;
  FpFnOptions small_opt;
  small_opt.outer_fraction = 0.10;
  FpFnOptions big_opt;
  big_opt.outer_fraction = 0.60;
  FpFnOptimizer small(ctx, labels, small_opt);
  FpFnOptimizer big(ctx, labels, big_opt);
  Rng rng(7);
  int small_hits = 0;
  int big_hits = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::vector<double> p = {rng.Uniform(), rng.Uniform()};
    if (small.outer_subregion().Contains(p)) ++small_hits;
    if (big.outer_subregion().Contains(p)) ++big_hits;
  }
  EXPECT_GE(big_hits, small_hits);
}

}  // namespace
}  // namespace lte::core
