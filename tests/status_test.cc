#include "common/status.h"

#include <gtest/gtest.h>

namespace lte {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("k must be > 0");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "k must be > 0");
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be > 0");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

Status Propagate(const Status& inner) {
  LTE_RETURN_IF_ERROR(inner);
  return Status::Internal("should not reach here on error");
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  const Status err = Propagate(Status::IoError("disk"));
  EXPECT_EQ(err.code(), StatusCode::kIoError);
  const Status ok = Propagate(Status::OK());
  EXPECT_EQ(ok.code(), StatusCode::kInternal);
}

TEST(StatusTest, CopyPreservesState) {
  const Status s = Status::NotFound("row 7");
  const Status t = s;
  EXPECT_EQ(t.code(), StatusCode::kNotFound);
  EXPECT_EQ(t.message(), "row 7");
}

}  // namespace
}  // namespace lte
