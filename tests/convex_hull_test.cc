#include "geom/convex_hull.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace lte::geom {
namespace {

TEST(ConvexHullTest, Square) {
  const std::vector<Point2> pts = {
      {0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}};
  const std::vector<Point2> hull = ConvexHull(pts);
  EXPECT_EQ(hull.size(), 4u);  // Interior point excluded.
  EXPECT_GT(PolygonArea(hull), 0.0);
  EXPECT_NEAR(PolygonArea(hull), 1.0, 1e-12);
}

TEST(ConvexHullTest, CcwOrientation) {
  const std::vector<Point2> hull =
      ConvexHull({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  ASSERT_EQ(hull.size(), 4u);
  // A CCW polygon has positive signed area.
  EXPECT_GT(PolygonArea(hull), 0.0);
}

TEST(ConvexHullTest, CollinearPointsDegenerateToSegment) {
  const std::vector<Point2> hull =
      ConvexHull({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  ASSERT_EQ(hull.size(), 2u);
  EXPECT_DOUBLE_EQ(PolygonArea(hull), 0.0);
}

TEST(ConvexHullTest, SinglePoint) {
  const std::vector<Point2> hull = ConvexHull({{1, 2}});
  ASSERT_EQ(hull.size(), 1u);
  EXPECT_DOUBLE_EQ(hull[0].x, 1.0);
}

TEST(ConvexHullTest, DuplicatePointsRemoved) {
  const std::vector<Point2> hull =
      ConvexHull({{0, 0}, {0, 0}, {1, 0}, {1, 0}, {0, 1}});
  EXPECT_EQ(hull.size(), 3u);
}

TEST(ConvexHullTest, EmptyInput) {
  EXPECT_TRUE(ConvexHull({}).empty());
}

TEST(ConvexHullTest, PointInConvexPolygon) {
  const std::vector<Point2> hull =
      ConvexHull({{0, 0}, {4, 0}, {4, 4}, {0, 4}});
  EXPECT_TRUE(PointInConvexPolygon({2, 2}, hull));
  EXPECT_TRUE(PointInConvexPolygon({0, 0}, hull));   // Vertex.
  EXPECT_TRUE(PointInConvexPolygon({2, 0}, hull));   // Edge.
  EXPECT_FALSE(PointInConvexPolygon({5, 2}, hull));
  EXPECT_FALSE(PointInConvexPolygon({-0.1, 2}, hull));
}

TEST(ConvexHullTest, PointInDegenerateSegment) {
  const std::vector<Point2> seg = {{0, 0}, {2, 2}};
  EXPECT_TRUE(PointInConvexPolygon({1, 1}, seg));
  EXPECT_FALSE(PointInConvexPolygon({1, 1.5}, seg));
  EXPECT_FALSE(PointInConvexPolygon({3, 3}, seg));
}

TEST(ConvexHullTest, PointInDegeneratePoint) {
  const std::vector<Point2> pt = {{1, 1}};
  EXPECT_TRUE(PointInConvexPolygon({1, 1}, pt));
  EXPECT_FALSE(PointInConvexPolygon({1.1, 1}, pt));
}

TEST(ConvexHullTest, EmptyPolygonContainsNothing) {
  EXPECT_FALSE(PointInConvexPolygon({0, 0}, {}));
}

TEST(ConvexHullTest, CrossSign) {
  EXPECT_GT(Cross({0, 0}, {1, 0}, {1, 1}), 0.0);  // Left turn.
  EXPECT_LT(Cross({0, 0}, {1, 0}, {1, -1}), 0.0); // Right turn.
  EXPECT_DOUBLE_EQ(Cross({0, 0}, {1, 0}, {2, 0}), 0.0);
}

// Property: every input point is inside its own convex hull, and the hull
// vertices are a subset of the input.
TEST(ConvexHullTest, PropertyInputInsideHull) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Point2> pts;
    const int n = 3 + static_cast<int>(rng.UniformInt(60));
    for (int i = 0; i < n; ++i) {
      pts.push_back({rng.Uniform(-10, 10), rng.Uniform(-10, 10)});
    }
    const std::vector<Point2> hull = ConvexHull(pts);
    for (const Point2& p : pts) {
      EXPECT_TRUE(PointInConvexPolygon(p, hull, 1e-7))
          << "trial " << trial << " point (" << p.x << "," << p.y << ")";
    }
  }
}

// Property: hull of the hull is the hull (idempotence).
TEST(ConvexHullTest, PropertyIdempotent) {
  Rng rng(43);
  std::vector<Point2> pts;
  for (int i = 0; i < 40; ++i) {
    pts.push_back({rng.Uniform(0, 5), rng.Uniform(0, 5)});
  }
  const std::vector<Point2> h1 = ConvexHull(pts);
  const std::vector<Point2> h2 = ConvexHull(h1);
  EXPECT_EQ(h1.size(), h2.size());
  EXPECT_NEAR(PolygonArea(h1), PolygonArea(h2), 1e-9);
}

}  // namespace
}  // namespace lte::geom
