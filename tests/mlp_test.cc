#include "nn/mlp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "nn/activations.h"
#include "nn/loss.h"

namespace lte::nn {
namespace {

TEST(MlpTest, ShapesAndParameterCount) {
  Rng rng(1);
  Mlp mlp({4, 8, 2}, &rng);
  EXPECT_EQ(mlp.num_layers(), 2);
  EXPECT_EQ(mlp.in_features(), 4);
  EXPECT_EQ(mlp.out_features(), 2);
  EXPECT_EQ(mlp.ParameterCount(), (4 * 8 + 8) + (8 * 2 + 2));
  EXPECT_EQ(mlp.Forward({1, 2, 3, 4}).size(), 2u);
}

TEST(MlpTest, ParameterRoundTrip) {
  Rng rng(2);
  Mlp mlp({3, 5, 1}, &rng);
  const std::vector<double> params = mlp.GetParameters();
  EXPECT_EQ(static_cast<int64_t>(params.size()), mlp.ParameterCount());
  const std::vector<double> y1 = mlp.Forward({0.1, 0.2, 0.3});
  mlp.SetParameters(params);
  const std::vector<double> y2 = mlp.Forward({0.1, 0.2, 0.3});
  EXPECT_EQ(y1, y2);
}

TEST(MlpTest, CopySemanticsAreDeep) {
  Rng rng(3);
  Mlp a({2, 4, 1}, &rng);
  Mlp b = a;
  std::vector<double> params = b.GetParameters();
  for (double& p : params) p += 1.0;
  b.SetParameters(params);
  EXPECT_NE(a.Forward({1.0, 1.0})[0], b.Forward({1.0, 1.0})[0]);
}

// Full-network gradient check: loss = BCE(logit, 1) on a 2-hidden-layer MLP.
TEST(MlpTest, GradientsMatchFiniteDifference) {
  Rng rng(4);
  Mlp mlp({3, 6, 4, 1}, &rng);
  const std::vector<double> x = {0.5, -0.3, 0.8};
  const double label = 1.0;

  auto loss_at = [&](const std::vector<double>& params) {
    mlp.SetParameters(params);
    return BceWithLogits(mlp.Forward(x)[0], label);
  };

  const std::vector<double> params = mlp.GetParameters();
  Mlp::Cache cache;
  const double logit = mlp.Forward(x, &cache)[0];
  mlp.ZeroGrad();
  mlp.Backward(cache, {BceWithLogitsGrad(logit, label)});
  const std::vector<double> analytic = mlp.GetGradients();

  const double eps = 1e-6;
  for (size_t i = 0; i < params.size(); i += 7) {  // Spot-check every 7th.
    std::vector<double> p = params;
    p[i] += eps;
    const double up = loss_at(p);
    p[i] -= 2 * eps;
    const double down = loss_at(p);
    EXPECT_NEAR(analytic[i], (up - down) / (2 * eps), 1e-5) << "param " << i;
  }
  mlp.SetParameters(params);
}

TEST(MlpTest, BackwardReturnsInputGradient) {
  Rng rng(5);
  Mlp mlp({2, 3, 1}, &rng);
  const std::vector<double> x = {0.4, -0.6};
  Mlp::Cache cache;
  mlp.Forward(x, &cache);
  mlp.ZeroGrad();
  const std::vector<double> gin = mlp.Backward(cache, {1.0});
  ASSERT_EQ(gin.size(), 2u);

  // Finite-difference check of the input gradient.
  const double eps = 1e-6;
  for (size_t i = 0; i < 2; ++i) {
    std::vector<double> xp = x;
    xp[i] += eps;
    const double up = mlp.Forward(xp)[0];
    xp[i] -= 2 * eps;
    const double down = mlp.Forward(xp)[0];
    EXPECT_NEAR(gin[i], (up - down) / (2 * eps), 1e-5);
  }
}

TEST(MlpTest, TrainsToFitXor) {
  Rng rng(6);
  Mlp mlp({2, 16, 1}, &rng);
  const std::vector<std::vector<double>> xs = {
      {0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const std::vector<double> ys = {0, 1, 1, 0};
  for (int epoch = 0; epoch < 3000; ++epoch) {
    mlp.ZeroGrad();
    for (size_t i = 0; i < xs.size(); ++i) {
      Mlp::Cache cache;
      const double logit = mlp.Forward(xs[i], &cache)[0];
      mlp.Backward(cache, {BceWithLogitsGrad(logit, ys[i]) / 4.0});
    }
    mlp.ApplyGradients(0.5);
  }
  for (size_t i = 0; i < xs.size(); ++i) {
    const double p = Sigmoid(mlp.Forward(xs[i])[0]);
    EXPECT_NEAR(p, ys[i], 0.2) << "sample " << i;
  }
}

std::vector<double> RandomBatch(Rng* rng, int64_t count, int64_t width) {
  std::vector<double> x(static_cast<size_t>(count * width));
  for (double& v : x) v = rng->Uniform(-2.0, 2.0);
  return x;
}

// The SIMD kernel runs the scalar reference's operation order at float32
// precision, so outputs agree to float rounding accumulated over the
// network depth — a relative tolerance far tighter than any behavioural
// difference, far looser than double round-off.
void ExpectClose(const std::vector<double>& ref, const std::vector<double>& got,
                 const char* what) {
  ASSERT_EQ(ref.size(), got.size()) << what;
  for (size_t i = 0; i < ref.size(); ++i) {
    const double tol = 1e-4 * std::max(1.0, std::abs(ref[i]));
    EXPECT_NEAR(ref[i], got[i], tol) << what << " element " << i;
  }
}

// Tentpole coverage: the SIMD batch forward must agree with the scalar
// reference across ragged counts spanning every padding/tiling regime —
// empty, sub-lane, exactly one vector lane, lane+1, and around the 128-row
// serving slice.
TEST(MlpTest, SimdBatchMatchesScalarAcrossRaggedCounts) {
  Rng rng(7);
  Mlp mlp({6, 16, 8, 1}, &rng);
  Mlp::BatchScratch scratch;
  for (int64_t count : {0, 1, 7, 8, 9, 127, 128, 129}) {
    const std::vector<double> x = RandomBatch(&rng, count, 6);
    std::vector<double> ref;
    std::vector<double> got;
    mlp.ForwardBatchInto(x, count, &scratch, &ref);
    mlp.ForwardBatchSimdInto(x, count, &scratch, &got);
    ASSERT_EQ(ref.size(), static_cast<size_t>(count));
    ExpectClose(ref, got, ("count=" + std::to_string(count)).c_str());
  }
}

// Denormals and negative zero: the SIMD path must neither trap nor diverge
// behaviourally on the edges of float's representable range. Negative zero
// must come out of ReLU exactly like the scalar path maps it (to +0.0).
TEST(MlpTest, SimdBatchHandlesDenormalsAndNegativeZero) {
  Rng rng(8);
  Mlp mlp({4, 8, 1}, &rng);
  Mlp::BatchScratch scratch;
  const double denorm = std::numeric_limits<double>::denorm_min();
  const std::vector<double> x = {
      -0.0, 0.0,     denorm,  -denorm,  // All-tiny row.
      1.0,  -0.0,    -1.0,    denorm,   // Mixed row.
      -0.0, -0.0,    -0.0,    -0.0,     // All negative zero.
      1e-30, -1e-30, 1e-38,   -1e-38,   // Float-denormal magnitudes.
  };
  std::vector<double> ref;
  std::vector<double> got;
  mlp.ForwardBatchInto(x, 4, &scratch, &ref);
  mlp.ForwardBatchSimdInto(x, 4, &scratch, &got);
  ExpectClose(ref, got, "denormal batch");
  for (double v : got) EXPECT_TRUE(std::isfinite(v));
}

// The shared-head prefix contract holds for the SIMD kernel too: seeding
// the first layer from the (float-converted) prefix over a shared head must
// agree with running full rows that carry the head explicitly.
TEST(MlpTest, SimdBatchPrefixMatchesFullRows) {
  Rng rng(9);
  const int64_t head_w = 3;
  const int64_t tail_w = 4;
  Mlp mlp({head_w + tail_w, 12, 1}, &rng);
  Mlp::BatchScratch scratch;
  const std::vector<double> head = {0.25, -1.5, 0.75};
  std::vector<double> prefix;
  mlp.ComputeFirstLayerPrefix(head, &prefix);

  for (int64_t count : {1, 9, 129}) {
    const std::vector<double> tails = RandomBatch(&rng, count, tail_w);
    std::vector<double> full(static_cast<size_t>(count * (head_w + tail_w)));
    for (int64_t n = 0; n < count; ++n) {
      for (int64_t c = 0; c < head_w; ++c)
        full[static_cast<size_t>(n * (head_w + tail_w) + c)] =
            head[static_cast<size_t>(c)];
      for (int64_t c = 0; c < tail_w; ++c)
        full[static_cast<size_t>(n * (head_w + tail_w) + head_w + c)] =
            tails[static_cast<size_t>(n * tail_w + c)];
    }
    std::vector<double> with_prefix;
    std::vector<double> with_full;
    mlp.ForwardBatchSimdInto(tails, count, &scratch, &with_prefix, prefix);
    mlp.ForwardBatchSimdInto(full, count, &scratch, &with_full);
    ExpectClose(with_full, with_prefix,
                ("prefix count=" + std::to_string(count)).c_str());
  }
}

// SIMD determinism: a row's output must not depend on which batch it rides
// in — scoring rows one at a time, in a ragged tail, or inside a big block
// must produce the same bits (the padding lanes are zero-filled and each
// element's accumulation chain is independent of its neighbours).
TEST(MlpTest, SimdBatchIsDeterministicAcrossBatchCompositions) {
  Rng rng(10);
  Mlp mlp({5, 10, 1}, &rng);
  Mlp::BatchScratch scratch;
  const int64_t count = 37;
  const std::vector<double> x = RandomBatch(&rng, count, 5);

  std::vector<double> whole;
  mlp.ForwardBatchSimdInto(x, count, &scratch, &whole);

  for (int64_t n = 0; n < count; ++n) {
    std::vector<double> one;
    const std::span<const double> row(x.data() + n * 5, 5);
    mlp.ForwardBatchSimdInto(row, 1, &scratch, &one);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(whole[static_cast<size_t>(n)], one[0]) << "row " << n;
  }
}

// Satellite bugfix: a ragged batch (x.size() not a multiple of count) used
// to silently floor-divide into a wrong head width; it must now die with a
// message naming both sizes.
TEST(MlpDeathTest, BatchForwardRejectsRaggedInput) {
  Rng rng(11);
  Mlp mlp({4, 6, 1}, &rng);
  Mlp::BatchScratch scratch;
  std::vector<double> out;
  const std::vector<double> ragged(11, 0.5);  // 11 % 3 != 0.
  EXPECT_DEATH(mlp.ForwardBatchInto(ragged, 3, &scratch, &out),
               "x\\.size\\(\\)=11.*count=3");
  EXPECT_DEATH(mlp.ForwardBatchSimdInto(ragged, 3, &scratch, &out),
               "x\\.size\\(\\)=11.*count=3");
}

}  // namespace
}  // namespace lte::nn
