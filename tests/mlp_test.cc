#include "nn/mlp.h"

#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/loss.h"

namespace lte::nn {
namespace {

TEST(MlpTest, ShapesAndParameterCount) {
  Rng rng(1);
  Mlp mlp({4, 8, 2}, &rng);
  EXPECT_EQ(mlp.num_layers(), 2);
  EXPECT_EQ(mlp.in_features(), 4);
  EXPECT_EQ(mlp.out_features(), 2);
  EXPECT_EQ(mlp.ParameterCount(), (4 * 8 + 8) + (8 * 2 + 2));
  EXPECT_EQ(mlp.Forward({1, 2, 3, 4}).size(), 2u);
}

TEST(MlpTest, ParameterRoundTrip) {
  Rng rng(2);
  Mlp mlp({3, 5, 1}, &rng);
  const std::vector<double> params = mlp.GetParameters();
  EXPECT_EQ(static_cast<int64_t>(params.size()), mlp.ParameterCount());
  const std::vector<double> y1 = mlp.Forward({0.1, 0.2, 0.3});
  mlp.SetParameters(params);
  const std::vector<double> y2 = mlp.Forward({0.1, 0.2, 0.3});
  EXPECT_EQ(y1, y2);
}

TEST(MlpTest, CopySemanticsAreDeep) {
  Rng rng(3);
  Mlp a({2, 4, 1}, &rng);
  Mlp b = a;
  std::vector<double> params = b.GetParameters();
  for (double& p : params) p += 1.0;
  b.SetParameters(params);
  EXPECT_NE(a.Forward({1.0, 1.0})[0], b.Forward({1.0, 1.0})[0]);
}

// Full-network gradient check: loss = BCE(logit, 1) on a 2-hidden-layer MLP.
TEST(MlpTest, GradientsMatchFiniteDifference) {
  Rng rng(4);
  Mlp mlp({3, 6, 4, 1}, &rng);
  const std::vector<double> x = {0.5, -0.3, 0.8};
  const double label = 1.0;

  auto loss_at = [&](const std::vector<double>& params) {
    mlp.SetParameters(params);
    return BceWithLogits(mlp.Forward(x)[0], label);
  };

  const std::vector<double> params = mlp.GetParameters();
  Mlp::Cache cache;
  const double logit = mlp.Forward(x, &cache)[0];
  mlp.ZeroGrad();
  mlp.Backward(cache, {BceWithLogitsGrad(logit, label)});
  const std::vector<double> analytic = mlp.GetGradients();

  const double eps = 1e-6;
  for (size_t i = 0; i < params.size(); i += 7) {  // Spot-check every 7th.
    std::vector<double> p = params;
    p[i] += eps;
    const double up = loss_at(p);
    p[i] -= 2 * eps;
    const double down = loss_at(p);
    EXPECT_NEAR(analytic[i], (up - down) / (2 * eps), 1e-5) << "param " << i;
  }
  mlp.SetParameters(params);
}

TEST(MlpTest, BackwardReturnsInputGradient) {
  Rng rng(5);
  Mlp mlp({2, 3, 1}, &rng);
  const std::vector<double> x = {0.4, -0.6};
  Mlp::Cache cache;
  mlp.Forward(x, &cache);
  mlp.ZeroGrad();
  const std::vector<double> gin = mlp.Backward(cache, {1.0});
  ASSERT_EQ(gin.size(), 2u);

  // Finite-difference check of the input gradient.
  const double eps = 1e-6;
  for (size_t i = 0; i < 2; ++i) {
    std::vector<double> xp = x;
    xp[i] += eps;
    const double up = mlp.Forward(xp)[0];
    xp[i] -= 2 * eps;
    const double down = mlp.Forward(xp)[0];
    EXPECT_NEAR(gin[i], (up - down) / (2 * eps), 1e-5);
  }
}

TEST(MlpTest, TrainsToFitXor) {
  Rng rng(6);
  Mlp mlp({2, 16, 1}, &rng);
  const std::vector<std::vector<double>> xs = {
      {0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const std::vector<double> ys = {0, 1, 1, 0};
  for (int epoch = 0; epoch < 3000; ++epoch) {
    mlp.ZeroGrad();
    for (size_t i = 0; i < xs.size(); ++i) {
      Mlp::Cache cache;
      const double logit = mlp.Forward(xs[i], &cache)[0];
      mlp.Backward(cache, {BceWithLogitsGrad(logit, ys[i]) / 4.0});
    }
    mlp.ApplyGradients(0.5);
  }
  for (size_t i = 0; i < xs.size(); ++i) {
    const double p = Sigmoid(mlp.Forward(xs[i])[0]);
    EXPECT_NEAR(p, ys[i], 0.2) << "sample " << i;
  }
}

}  // namespace
}  // namespace lte::nn
