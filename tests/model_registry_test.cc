// serving::ModelRegistry: epoch-versioned model publication. Snapshots are
// immutable, copies pin their model alive across later publishes (the
// RCU-style guarantee every attachment point relies on), and concurrent
// readers racing a publish always see a whole snapshot — never a torn one.
// The reader/publisher race runs under the TSan CI job.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/exploration_model.h"
#include "core/exploration_session.h"
#include "data/synthetic.h"
#include "serving/model_registry.h"

namespace lte::serving {
namespace {

core::ExplorerOptions SmallExplorerOptions() {
  core::ExplorerOptions opt;
  opt.task_gen.k_u = 30;
  opt.task_gen.k_s = 10;
  opt.task_gen.k_q = 30;
  opt.task_gen.delta = 5;
  opt.task_gen.alpha = 2;
  opt.task_gen.psi = 8;
  opt.learner.embedding_size = 12;
  opt.learner.clf_hidden = {12};
  opt.learner.num_memory_modes = 3;
  opt.num_meta_tasks = 25;
  opt.trainer.epochs = 3;
  opt.trainer.task_batch_size = 10;
  opt.trainer.local_steps = 6;
  opt.trainer.local_lr = 0.2;
  opt.online_steps = 25;
  opt.online_lr = 0.2;
  opt.encoder.num_gmm_components = 3;
  opt.encoder.num_jenks_intervals = 3;
  return opt;
}

class ModelRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng data_rng(23);
    table_ = data::MakeBlobs(1200, 4, 3, &data_rng);
    subspaces_ = {data::Subspace{{0, 1}}, data::Subspace{{2, 3}}};
  }

  std::shared_ptr<core::ExplorationModel> PretrainedModel(uint64_t seed) {
    auto model =
        std::make_shared<core::ExplorationModel>(SmallExplorerOptions());
    Rng rng(seed);
    EXPECT_TRUE(
        model->Pretrain(table_, subspaces_, /*train_meta=*/false, &rng).ok());
    return model;
  }

  data::Table table_;
  std::vector<data::Subspace> subspaces_;
};

TEST_F(ModelRegistryTest, StartsAtEpochOneWithTheInitialModel) {
  const auto model = PretrainedModel(23);
  ModelRegistry registry(model);
  const ModelSnapshot snapshot = registry.Current();
  EXPECT_EQ(snapshot.epoch, 1u);
  EXPECT_EQ(registry.current_epoch(), 1u);
  EXPECT_EQ(snapshot.model.get(), model.get());
  EXPECT_EQ(snapshot.fingerprint, model->fingerprint());
}

TEST_F(ModelRegistryTest, PublishBumpsEpochAndSwapsTheModel) {
  ModelRegistry registry(PretrainedModel(23));
  const auto next = PretrainedModel(24);
  ASSERT_NE(next->fingerprint(), registry.Current().fingerprint);

  EXPECT_EQ(registry.Publish(next), 2u);
  const ModelSnapshot snapshot = registry.Current();
  EXPECT_EQ(snapshot.epoch, 2u);
  EXPECT_EQ(snapshot.model.get(), next.get());
  EXPECT_EQ(snapshot.fingerprint, next->fingerprint());
  EXPECT_EQ(registry.Publish(PretrainedModel(25)), 3u);
}

TEST_F(ModelRegistryTest, SnapshotsPinTheirEpochAcrossPublishes) {
  ModelRegistry registry(PretrainedModel(23));
  const ModelSnapshot pinned = registry.Current();
  const std::weak_ptr<const core::ExplorationModel> old_model = pinned.model;

  registry.Publish(PretrainedModel(24));
  // The pinned copy is untouched: same epoch, same model, model alive.
  EXPECT_EQ(pinned.epoch, 1u);
  EXPECT_EQ(pinned.model.get(), old_model.lock().get());
  EXPECT_EQ(pinned.fingerprint, pinned.model->fingerprint());
  EXPECT_NE(pinned.fingerprint, registry.Current().fingerprint);

  // A session bound before the publish keeps serving its pinned model even
  // when nothing else references it anymore.
  core::ExplorationSession session(pinned.model);
  EXPECT_EQ(&session.model(), pinned.model.get());
}

TEST_F(ModelRegistryTest, OldModelReclaimedWhenLastHandleDrops) {
  ModelRegistry registry(PretrainedModel(23));
  std::weak_ptr<const core::ExplorationModel> old_model;
  {
    const ModelSnapshot pinned = registry.Current();
    old_model = pinned.model;
    registry.Publish(PretrainedModel(24));
    EXPECT_FALSE(old_model.expired());  // The snapshot copy still pins it.
  }
  EXPECT_TRUE(old_model.expired());  // Last handle dropped => reclaimed.
}

TEST_F(ModelRegistryTest, ConcurrentReadersNeverSeeATornSnapshot) {
  ModelRegistry registry(PretrainedModel(23));
  const auto a = PretrainedModel(24);
  const auto b = PretrainedModel(25);

  std::vector<std::thread> readers;
  for (int64_t t = 0; t < 4; ++t) {
    readers.emplace_back([&registry] {
      uint64_t last_epoch = 0;
      for (int64_t i = 0; i < 2000; ++i) {
        const ModelSnapshot snapshot = registry.Current();
        // Whole or not at all: the fingerprint always matches the model, and
        // epochs are monotone from any single reader's point of view.
        ASSERT_NE(snapshot.model, nullptr);
        EXPECT_EQ(snapshot.fingerprint, snapshot.model->fingerprint());
        EXPECT_GE(snapshot.epoch, last_epoch);
        last_epoch = snapshot.epoch;
      }
    });
  }
  for (int64_t i = 0; i < 50; ++i) {
    registry.Publish(i % 2 == 0 ? a : b);
  }
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(registry.current_epoch(), 51u);
}

}  // namespace
}  // namespace lte::serving
