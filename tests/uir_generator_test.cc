#include "eval/uir_generator.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace lte::eval {
namespace {

core::MetaTaskGenOptions SmallGenOptions() {
  core::MetaTaskGenOptions opt;
  opt.k_u = 30;
  opt.k_s = 10;
  opt.k_q = 30;
  return opt;
}

class UirGeneratorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(31);
    table_ = data::MakeBlobs(4000, 4, 4, rng_.get());
    subspaces_ = {data::Subspace{{0, 1}}, data::Subspace{{2, 3}}};
    generator_ = std::make_unique<UirGenerator>(SmallGenOptions());
    ASSERT_TRUE(generator_->Init(table_, subspaces_, rng_.get()).ok());
  }

  std::unique_ptr<Rng> rng_;
  data::Table table_;
  std::vector<data::Subspace> subspaces_;
  std::unique_ptr<UirGenerator> generator_;
};

TEST(BenchmarkModesTest, TableThreeModes) {
  const std::vector<UisMode> modes = BenchmarkModes();
  ASSERT_EQ(modes.size(), 7u);
  EXPECT_EQ(modes[0].name, "M1");
  EXPECT_EQ(modes[0].alpha, 4);
  EXPECT_EQ(modes[0].psi, 20);
  EXPECT_EQ(modes[3].psi, 5);
  EXPECT_EQ(modes[4].alpha, 1);
  EXPECT_EQ(modes[6].alpha, 3);
}

TEST_F(UirGeneratorTest, GenerateFullUir) {
  const GroundTruthUir uir = generator_->Generate({"t", 2, 8}, rng_.get());
  EXPECT_EQ(uir.subspaces.size(), 2u);
  EXPECT_EQ(uir.regions.size(), 2u);
  for (const auto& r : uir.regions) EXPECT_FALSE(r.empty());
}

TEST_F(UirGeneratorTest, GeneratePrefixUir) {
  const GroundTruthUir uir = generator_->Generate({"t", 1, 8}, 1, rng_.get());
  EXPECT_EQ(uir.subspaces.size(), 1u);
}

TEST_F(UirGeneratorTest, ContainsIsConjunctive) {
  const GroundTruthUir uir = generator_->Generate({"t", 1, 20}, rng_.get());
  int row_hits = 0;
  for (int64_t r = 0; r < 500; ++r) {
    const std::vector<double> row = table_.Row(r);
    const bool full = uir.Contains(row);
    bool per_subspace = true;
    for (int64_t s = 0; s < 2; ++s) {
      std::vector<double> point;
      for (int64_t a : uir.subspaces[static_cast<size_t>(s)].attribute_indices) {
        point.push_back(row[static_cast<size_t>(a)]);
      }
      per_subspace = per_subspace && uir.ContainsSubspacePoint(s, point);
    }
    EXPECT_EQ(full, per_subspace);
    if (full) ++row_hits;
  }
  // A ψ=20-of-30-centers hull should cover a non-trivial share of the data.
  EXPECT_GT(row_hits, 0);
}

TEST_F(UirGeneratorTest, UirsNonTrivialSelectivity) {
  // Over several generated UIRs, positives should be neither empty nor all.
  int total_hits = 0;
  const int rows = 400;
  for (int t = 0; t < 5; ++t) {
    const GroundTruthUir uir = generator_->Generate({"t", 2, 10}, rng_.get());
    for (int64_t r = 0; r < rows; ++r) {
      if (uir.Contains(table_.Row(r))) ++total_hits;
    }
  }
  EXPECT_GT(total_hits, 0);
  EXPECT_LT(total_hits, 5 * rows);
}

TEST_F(UirGeneratorTest, InitFailuresPropagate) {
  UirGenerator g(SmallGenOptions());
  Rng rng(1);
  EXPECT_FALSE(g.Init(table_, {}, &rng).ok());
}

}  // namespace
}  // namespace lte::eval
