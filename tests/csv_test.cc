#include "data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace lte::data {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(CsvTest, RoundTrip) {
  Table t({"x", "y"});
  ASSERT_TRUE(t.AppendRow({1.5, -2.0}).ok());
  ASSERT_TRUE(t.AppendRow({3.25, 4.0}).ok());
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(t, path).ok());

  Table loaded;
  ASSERT_TRUE(ReadCsv(path, &loaded).ok());
  EXPECT_EQ(loaded.num_rows(), 2);
  EXPECT_EQ(loaded.AttributeNames(), (std::vector<std::string>{"x", "y"}));
  EXPECT_DOUBLE_EQ(loaded.column(0).value(0), 1.5);
  EXPECT_DOUBLE_EQ(loaded.column(1).value(1), 4.0);
}

TEST_F(CsvTest, MissingFileIsIoError) {
  Table t;
  const Status s = ReadCsv(TempPath("does_not_exist.csv"), &t);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST_F(CsvTest, EmptyFileFails) {
  const std::string path = TempPath("empty.csv");
  WriteFile(path, "");
  Table t;
  EXPECT_EQ(ReadCsv(path, &t).code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, NonNumericCellFails) {
  const std::string path = TempPath("nonnum.csv");
  WriteFile(path, "a,b\n1,hello\n");
  Table t;
  const Status s = ReadCsv(path, &t);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("hello"), std::string::npos);
}

TEST_F(CsvTest, RowWidthMismatchFails) {
  const std::string path = TempPath("ragged.csv");
  WriteFile(path, "a,b\n1,2\n3\n");
  Table t;
  EXPECT_EQ(ReadCsv(path, &t).code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, SkipsBlankLinesAndCarriageReturns) {
  const std::string path = TempPath("crlf.csv");
  WriteFile(path, "a,b\r\n1,2\r\n\r\n3,4\r\n");
  Table t;
  ASSERT_TRUE(ReadCsv(path, &t).ok());
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_DOUBLE_EQ(t.column(1).value(1), 4.0);
}

TEST_F(CsvTest, ScientificNotationParses) {
  const std::string path = TempPath("sci.csv");
  WriteFile(path, "a\n1e-3\n-2.5E2\n");
  Table t;
  ASSERT_TRUE(ReadCsv(path, &t).ok());
  EXPECT_DOUBLE_EQ(t.column(0).value(0), 1e-3);
  EXPECT_DOUBLE_EQ(t.column(0).value(1), -250.0);
}

}  // namespace
}  // namespace lte::data
