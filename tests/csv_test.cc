#include "data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace lte::data {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(CsvTest, RoundTrip) {
  Table t({"x", "y"});
  ASSERT_TRUE(t.AppendRow({1.5, -2.0}).ok());
  ASSERT_TRUE(t.AppendRow({3.25, 4.0}).ok());
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(t, path).ok());

  Table loaded;
  ASSERT_TRUE(ReadCsv(path, &loaded).ok());
  EXPECT_EQ(loaded.num_rows(), 2);
  EXPECT_EQ(loaded.AttributeNames(), (std::vector<std::string>{"x", "y"}));
  EXPECT_DOUBLE_EQ(loaded.column(0).value(0), 1.5);
  EXPECT_DOUBLE_EQ(loaded.column(1).value(1), 4.0);
}

TEST_F(CsvTest, MissingFileIsIoError) {
  Table t;
  const Status s = ReadCsv(TempPath("does_not_exist.csv"), &t);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST_F(CsvTest, EmptyFileFails) {
  const std::string path = TempPath("empty.csv");
  WriteFile(path, "");
  Table t;
  EXPECT_EQ(ReadCsv(path, &t).code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, NonNumericCellFails) {
  const std::string path = TempPath("nonnum.csv");
  WriteFile(path, "a,b\n1,hello\n");
  Table t;
  const Status s = ReadCsv(path, &t);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("hello"), std::string::npos);
}

TEST_F(CsvTest, RowWidthMismatchFails) {
  const std::string path = TempPath("ragged.csv");
  WriteFile(path, "a,b\n1,2\n3\n");
  Table t;
  EXPECT_EQ(ReadCsv(path, &t).code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, SkipsBlankLinesAndCarriageReturns) {
  const std::string path = TempPath("crlf.csv");
  WriteFile(path, "a,b\r\n1,2\r\n\r\n3,4\r\n");
  Table t;
  ASSERT_TRUE(ReadCsv(path, &t).ok());
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_DOUBLE_EQ(t.column(1).value(1), 4.0);
}

TEST_F(CsvTest, ScientificNotationParses) {
  const std::string path = TempPath("sci.csv");
  WriteFile(path, "a\n1e-3\n-2.5E2\n");
  Table t;
  ASSERT_TRUE(ReadCsv(path, &t).ok());
  EXPECT_DOUBLE_EQ(t.column(0).value(0), 1e-3);
  EXPECT_DOUBLE_EQ(t.column(0).value(1), -250.0);
}

TEST_F(CsvTest, OverflowingMagnitudeFails) {
  // strtod turns 1e999 into +inf with ERANGE; loading it would poison every
  // downstream distance computation, so it must be rejected, naming the cell
  // and the line it sits on.
  const std::string path = TempPath("overflow.csv");
  WriteFile(path, "a,b\n1,2\n1e999,4\n");
  Table t;
  const Status s = ReadCsv(path, &t);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("1e999"), std::string::npos);
  EXPECT_NE(s.message().find("line 3"), std::string::npos);
}

TEST_F(CsvTest, NegativeOverflowFails) {
  const std::string path = TempPath("neg_overflow.csv");
  WriteFile(path, "a\n-1e400\n");
  Table t;
  EXPECT_EQ(ReadCsv(path, &t).code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, NanAndInfSpellingsFail) {
  // strtod happily parses these spellings; the reader must not.
  for (const std::string cell : {"nan", "NaN", "inf", "-inf", "Infinity"}) {
    const std::string path = TempPath("nonfinite.csv");
    WriteFile(path, "a\n" + cell + "\n");
    Table t;
    const Status s = ReadCsv(path, &t);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << cell;
    EXPECT_NE(s.message().find(cell), std::string::npos) << cell;
  }
}

TEST_F(CsvTest, DenormalUnderflowStillParses) {
  // Underflow also sets ERANGE, but the denormal result is a valid finite
  // double — it must load, unlike true overflow.
  const std::string path = TempPath("denormal.csv");
  WriteFile(path, "a\n1e-320\n");
  Table t;
  ASSERT_TRUE(ReadCsv(path, &t).ok());
  EXPECT_GT(t.column(0).value(0), 0.0);
  EXPECT_LT(t.column(0).value(0), 1e-300);
}

TEST_F(CsvTest, QuotedFieldFailsLoudly) {
  // Quoting is unsupported: splitting '"1,2"' on commas would silently
  // produce two mangled cells, so the quote itself is the error.
  const std::string path = TempPath("quoted.csv");
  WriteFile(path, "a,b\n\"1,2\",3\n");
  Table t;
  const Status s = ReadCsv(path, &t);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("line 2"), std::string::npos);
  EXPECT_NE(s.message().find("quot"), std::string::npos);
}

TEST_F(CsvTest, QuotedHeaderFailsLoudly) {
  const std::string path = TempPath("quoted_header.csv");
  WriteFile(path, "\"a\",b\n1,2\n");
  Table t;
  const Status s = ReadCsv(path, &t);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("line 1"), std::string::npos);
}

}  // namespace
}  // namespace lte::data
