#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace lte::eval {
namespace {

TEST(MetricsTest, ConfusionCounting) {
  ConfusionCounts c;
  c.Add(1, 1);  // TP
  c.Add(0, 1);  // FP
  c.Add(0, 0);  // TN
  c.Add(1, 0);  // FN
  EXPECT_EQ(c.true_positive, 1);
  EXPECT_EQ(c.false_positive, 1);
  EXPECT_EQ(c.true_negative, 1);
  EXPECT_EQ(c.false_negative, 1);
}

TEST(MetricsTest, PerfectPrediction) {
  const ConfusionCounts c = Evaluate({1, 0, 1, 0}, {1, 0, 1, 0});
  EXPECT_DOUBLE_EQ(Precision(c), 1.0);
  EXPECT_DOUBLE_EQ(Recall(c), 1.0);
  EXPECT_DOUBLE_EQ(F1Score(c), 1.0);
}

TEST(MetricsTest, KnownValues) {
  // 2 TP, 1 FP, 1 FN: P = 2/3, R = 2/3, F1 = 2/3.
  const ConfusionCounts c = Evaluate({1, 1, 1, 0}, {1, 1, 0, 1});
  EXPECT_DOUBLE_EQ(Precision(c), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Recall(c), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(F1Score(c), 2.0 / 3.0);
}

TEST(MetricsTest, DegenerateCasesReturnZero) {
  // No predicted positives.
  const ConfusionCounts c1 = Evaluate({1, 1}, {0, 0});
  EXPECT_DOUBLE_EQ(Precision(c1), 0.0);
  EXPECT_DOUBLE_EQ(F1Score(c1), 0.0);
  // No actual positives.
  const ConfusionCounts c2 = Evaluate({0, 0}, {0, 0});
  EXPECT_DOUBLE_EQ(Recall(c2), 0.0);
  EXPECT_DOUBLE_EQ(F1Score(c2), 0.0);
}

TEST(MetricsTest, ThresholdAtHalf) {
  const ConfusionCounts c = Evaluate({1.0, 0.0}, {0.6, 0.4});
  EXPECT_EQ(c.true_positive, 1);
  EXPECT_EQ(c.true_negative, 1);
}

TEST(MetricsTest, ThreeSetMetric) {
  EXPECT_DOUBLE_EQ(ThreeSetMetric(10, 0), 1.0);
  EXPECT_DOUBLE_EQ(ThreeSetMetric(10, 10), 0.5);
  EXPECT_DOUBLE_EQ(ThreeSetMetric(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(ThreeSetMetric(0, 0), 0.0);
}

}  // namespace
}  // namespace lte::eval
