// Round-trip tests of the model-persistence layer, from the binary I/O
// primitives up to a full pre-trained Explorer.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/binary_io.h"
#include "core/lte.h"
#include "data/synthetic.h"
#include "nn/mlp.h"
#include "preprocess/tabular_encoder.h"

namespace lte {
namespace {

TEST(BinaryIoTest, PrimitivesRoundTrip) {
  std::stringstream buf;
  BinaryWriter w(&buf);
  w.WriteU64(42);
  w.WriteI64(-7);
  w.WriteDouble(3.25);
  w.WriteBool(true);
  w.WriteString("hello");
  w.WriteDoubleVector({1.5, -2.5});
  w.WriteI64Vector({10, 20});
  w.WritePointSet({{1, 2}, {3, 4}});
  ASSERT_TRUE(w.status().ok());

  BinaryReader r(&buf);
  uint64_t u = 0;
  int64_t i = 0;
  double d = 0;
  bool b = false;
  std::string s;
  std::vector<double> dv;
  std::vector<int64_t> iv;
  std::vector<std::vector<double>> ps;
  ASSERT_TRUE(r.ReadU64(&u).ok());
  ASSERT_TRUE(r.ReadI64(&i).ok());
  ASSERT_TRUE(r.ReadDouble(&d).ok());
  ASSERT_TRUE(r.ReadBool(&b).ok());
  ASSERT_TRUE(r.ReadString(&s).ok());
  ASSERT_TRUE(r.ReadDoubleVector(&dv).ok());
  ASSERT_TRUE(r.ReadI64Vector(&iv).ok());
  ASSERT_TRUE(r.ReadPointSet(&ps).ok());
  EXPECT_EQ(u, 42u);
  EXPECT_EQ(i, -7);
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_TRUE(b);
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(dv, (std::vector<double>{1.5, -2.5}));
  EXPECT_EQ(iv, (std::vector<int64_t>{10, 20}));
  EXPECT_EQ(ps, (std::vector<std::vector<double>>{{1, 2}, {3, 4}}));
}

TEST(BinaryIoTest, TruncatedStreamFails) {
  std::stringstream buf;
  BinaryWriter w(&buf);
  w.WriteU64(5);  // Claims 5 doubles follow; none do.
  BinaryReader r(&buf);
  std::vector<double> v;
  EXPECT_EQ(r.ReadDoubleVector(&v).code(), StatusCode::kIoError);
}

TEST(SerializationTest, MatrixRoundTrip) {
  Rng rng(1);
  nn::Matrix m(3, 4);
  m.InitGaussian(&rng, 1.0);
  std::stringstream buf;
  BinaryWriter w(&buf);
  m.Save(&w);
  nn::Matrix loaded;
  BinaryReader r(&buf);
  ASSERT_TRUE(loaded.Load(&r).ok());
  EXPECT_EQ(loaded.rows(), 3);
  EXPECT_EQ(loaded.cols(), 4);
  EXPECT_EQ(loaded.data(), m.data());
}

TEST(SerializationTest, MlpRoundTripPreservesOutputs) {
  Rng rng(2);
  nn::Mlp mlp({4, 8, 1}, &rng);
  std::stringstream buf;
  BinaryWriter w(&buf);
  mlp.Save(&w);
  nn::Mlp loaded;
  BinaryReader r(&buf);
  ASSERT_TRUE(loaded.Load(&r).ok());
  const std::vector<double> x = {0.1, -0.2, 0.3, 0.4};
  EXPECT_EQ(loaded.Forward(x), mlp.Forward(x));
  EXPECT_EQ(loaded.LayerSizes(), mlp.LayerSizes());
}

TEST(SerializationTest, EncoderRoundTripPreservesEncoding) {
  Rng rng(3);
  const data::Table table = data::MakeCarLike(1500, &rng);
  preprocess::TabularEncoder enc;
  ASSERT_TRUE(enc.Fit(table, &rng).ok());
  std::stringstream buf;
  BinaryWriter w(&buf);
  enc.Save(&w);
  preprocess::TabularEncoder loaded;
  BinaryReader r(&buf);
  ASSERT_TRUE(loaded.Load(&r).ok());
  EXPECT_TRUE(loaded.fitted());
  for (int64_t row = 0; row < 20; ++row) {
    EXPECT_EQ(loaded.EncodeRow(table.Row(row)), enc.EncodeRow(table.Row(row)));
  }
}

TEST(SerializationTest, MetaLearnerRoundTripPreservesPredictions) {
  Rng rng(4);
  core::MetaLearnerOptions opt;
  opt.uis_feature_dim = 12;
  opt.tuple_feature_dim = 6;
  opt.embedding_size = 8;
  opt.clf_hidden = {8};
  opt.use_memory = true;
  opt.num_memory_modes = 3;
  core::MetaLearner learner(opt, &rng);

  std::stringstream buf;
  BinaryWriter w(&buf);
  learner.Save(&w);
  std::unique_ptr<core::MetaLearner> loaded;
  BinaryReader r(&buf);
  ASSERT_TRUE(core::MetaLearner::LoadFrom(&r, &loaded).ok());

  std::vector<double> v_r(12, 0.0);
  v_r[2] = 1.0;
  v_r[7] = 1.0;
  const std::vector<double> x = {0.1, 0.9, 0.3, 0.7, 0.5, 0.2};
  core::TaskModel a = learner.CreateTaskModel(v_r);
  core::TaskModel b = loaded->CreateTaskModel(v_r);
  EXPECT_DOUBLE_EQ(a.Logit(x), b.Logit(x));
  EXPECT_EQ(learner.Attention(v_r), loaded->Attention(v_r));
}

TEST(SerializationTest, ExplorerRoundTripPreservesExploration) {
  Rng rng(5);
  data::Table table = data::MakeBlobs(3000, 4, 4, &rng);
  core::ExplorerOptions opt;
  opt.task_gen.k_u = 30;
  opt.task_gen.k_s = 10;
  opt.task_gen.k_q = 30;
  opt.learner.embedding_size = 12;
  opt.learner.clf_hidden = {12};
  opt.learner.num_memory_modes = 3;
  opt.num_meta_tasks = 25;
  opt.trainer.epochs = 3;
  opt.trainer.local_steps = 3;
  std::vector<data::Subspace> subspaces = {data::Subspace{{0, 1}},
                                           data::Subspace{{2, 3}}};
  core::Explorer original(opt);
  ASSERT_TRUE(
      original.Pretrain(table, subspaces, /*train_meta=*/true, &rng).ok());

  const std::string path = testing::TempDir() + "/explorer.ltemodel";
  ASSERT_TRUE(original.Save(path).ok());

  core::Explorer restored(core::ExplorerOptions{});
  ASSERT_TRUE(restored.LoadModel(path).ok());
  EXPECT_EQ(restored.num_subspaces(), 2);
  EXPECT_TRUE(restored.meta_trained());
  EXPECT_EQ(*restored.InitialTuples(0), *original.InitialTuples(0));
  EXPECT_EQ(*restored.InitialTuples(1), *original.InitialTuples(1));

  // Both adapt with identical labels and rngs and must agree exactly.
  std::vector<std::vector<double>> labels(2);
  for (int s = 0; s < 2; ++s) {
    for (const auto& t : *original.InitialTuples(s)) {
      labels[static_cast<size_t>(s)].push_back(t[0] < 5.0 ? 1.0 : 0.0);
    }
  }
  Rng rng_a(99);
  Rng rng_b(99);
  ASSERT_TRUE(
      original.StartExploration(labels, core::Variant::kMetaStar, &rng_a)
          .ok());
  ASSERT_TRUE(
      restored.StartExploration(labels, core::Variant::kMetaStar, &rng_b)
          .ok());
  for (int64_t r = 0; r < 50; ++r) {
    EXPECT_EQ(original.PredictRow(table.Row(r)).value_or(-1.0),
              restored.PredictRow(table.Row(r)).value_or(-2.0));
  }
}

// The legacy facade surface (Explorer::Save / LoadModel) and the bare
// ExplorationModel::Save / Load share one on-disk format: files written by
// either side load on the other with identical downstream behavior.
TEST(SerializationTest, FacadeAndModelFormatsAreInterchangeable) {
  Rng rng(6);
  data::Table table = data::MakeBlobs(3000, 4, 4, &rng);
  core::ExplorerOptions opt;
  opt.task_gen.k_u = 30;
  opt.task_gen.k_s = 10;
  opt.task_gen.k_q = 30;
  opt.learner.embedding_size = 12;
  opt.learner.clf_hidden = {12};
  opt.learner.num_memory_modes = 3;
  opt.num_meta_tasks = 25;
  opt.trainer.epochs = 3;
  opt.trainer.local_steps = 3;
  std::vector<data::Subspace> subspaces = {data::Subspace{{0, 1}},
                                           data::Subspace{{2, 3}}};
  core::Explorer facade(opt);
  ASSERT_TRUE(
      facade.Pretrain(table, subspaces, /*train_meta=*/true, &rng).ok());

  // Facade-written file → bare model.
  const std::string facade_path = testing::TempDir() + "/facade.ltemodel";
  ASSERT_TRUE(facade.Save(facade_path).ok());
  auto model = std::make_shared<core::ExplorationModel>(core::ExplorerOptions{});
  ASSERT_TRUE(model->Load(facade_path).ok());
  EXPECT_TRUE(model->meta_trained());
  ASSERT_EQ(model->num_subspaces(), 2);
  EXPECT_EQ(*model->InitialTuples(0), *facade.InitialTuples(0));

  // Model-written file → facade. Saving the just-loaded model must
  // reproduce the original bytes exactly (same format, no lossy fields).
  const std::string model_path = testing::TempDir() + "/model.ltemodel";
  ASSERT_TRUE(model->Save(model_path).ok());
  std::ifstream in_a(facade_path, std::ios::binary);
  std::ifstream in_b(model_path, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(in_a)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(in_b)),
                            std::istreambuf_iterator<char>());
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b);

  core::Explorer restored(core::ExplorerOptions{});
  ASSERT_TRUE(restored.LoadModel(model_path).ok());

  // All three adapt with identical labels and rngs and must agree exactly.
  std::vector<std::vector<double>> labels(2);
  for (int s = 0; s < 2; ++s) {
    for (const auto& t : *facade.InitialTuples(s)) {
      labels[static_cast<size_t>(s)].push_back(t[0] < 5.0 ? 1.0 : 0.0);
    }
  }
  Rng rng_a(99);
  Rng rng_b(99);
  Rng rng_c(99);
  core::ExplorationSession session(model);
  ASSERT_TRUE(
      facade.StartExploration(labels, core::Variant::kMetaStar, &rng_a).ok());
  ASSERT_TRUE(
      session.StartExploration(labels, core::Variant::kMetaStar, &rng_b)
          .ok());
  ASSERT_TRUE(
      restored.StartExploration(labels, core::Variant::kMetaStar, &rng_c)
          .ok());
  for (int64_t r = 0; r < 50; ++r) {
    const double truth = facade.PredictRow(table.Row(r)).value_or(-1.0);
    EXPECT_EQ(truth, session.PredictRow(table.Row(r)).value_or(-2.0));
    EXPECT_EQ(truth, restored.PredictRow(table.Row(r)).value_or(-3.0));
  }
}

TEST(SerializationTest, ModelLoadPreservesConstructedThreadKnob) {
  Rng rng(7);
  data::Table table = data::MakeBlobs(2000, 2, 3, &rng);
  core::ExplorerOptions opt;
  opt.task_gen.k_u = 20;
  opt.task_gen.k_s = 8;
  opt.task_gen.k_q = 20;
  opt.learner.embedding_size = 8;
  opt.learner.clf_hidden = {8};
  opt.learner.num_memory_modes = 3;
  opt.num_meta_tasks = 10;
  opt.trainer.epochs = 2;
  opt.trainer.local_steps = 2;
  core::ExplorationModel trained(opt);
  ASSERT_TRUE(trained
                  .Pretrain(table, {data::Subspace{{0, 1}}},
                            /*train_meta=*/false, &rng)
                  .ok());
  const std::string path = testing::TempDir() + "/threads.ltemodel";
  ASSERT_TRUE(trained.Save(path).ok());

  core::ExplorerOptions host_opt;
  host_opt.num_threads = 3;
  host_opt.trainer.num_threads = 2;
  core::ExplorationModel host(host_opt);
  ASSERT_TRUE(host.Load(path).ok());
  EXPECT_EQ(host.options().num_threads, 3);
  EXPECT_EQ(host.options().trainer.num_threads, 2);
  // The serialized hyper-parameters did come from the file.
  EXPECT_EQ(host.options().task_gen.k_s, 8);
}

TEST(SerializationTest, LoadRejectsGarbage) {
  const std::string path = testing::TempDir() + "/garbage.ltemodel";
  std::ofstream out(path, std::ios::binary);
  out << "this is not a model";
  out.close();
  core::Explorer ex(core::ExplorerOptions{});
  const Status s = ex.LoadModel(path);
  EXPECT_FALSE(s.ok());
}

TEST(SerializationTest, LoadRejectsMissingFile) {
  core::Explorer ex(core::ExplorerOptions{});
  EXPECT_EQ(ex.LoadModel("/nonexistent/dir/model.bin").code(),
            StatusCode::kIoError);
}

TEST(SerializationTest, SaveBeforePretrainFails) {
  core::Explorer ex(core::ExplorerOptions{});
  EXPECT_EQ(ex.Save(testing::TempDir() + "/x.ltemodel").code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace lte
