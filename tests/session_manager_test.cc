// Session lifecycle test battery, part 2: serving::SessionManager.
//
//  * LRU evict-to-disk and transparent restore, byte-identical to the
//    session never leaving RAM — including a K-of-N churn workload driven by
//    real std::threads (runs under the TSan CI job).
//  * Pinning: a leased session is never evicted mid-request.
//  * Crash consistency: a stale half-written `.tmp` never shadows the
//    previous checkpoint; a corrupted checkpoint surfaces an error Status
//    and leaves the manager usable; a restarted manager adopts the
//    checkpoints a previous process left behind.
//  * Leased sessions route through the CoalescedScanScheduler unchanged.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/exploration_model.h"
#include "core/exploration_session.h"
#include "data/synthetic.h"
#include "serving/coalesced_scan_scheduler.h"
#include "serving/model_registry.h"
#include "serving/session_manager.h"

namespace lte::serving {
namespace {

using core::ExplorationModel;
using core::ExplorationSession;
using core::ExplorerOptions;
using core::Variant;

ExplorerOptions SmallExplorerOptions() {
  ExplorerOptions opt;
  opt.task_gen.k_u = 30;
  opt.task_gen.k_s = 10;
  opt.task_gen.k_q = 30;
  opt.task_gen.delta = 5;
  opt.task_gen.alpha = 2;
  opt.task_gen.psi = 8;
  opt.learner.embedding_size = 12;
  opt.learner.clf_hidden = {12};
  opt.learner.num_memory_modes = 3;
  opt.num_meta_tasks = 25;
  opt.trainer.epochs = 3;
  opt.trainer.task_batch_size = 10;
  opt.trainer.local_steps = 6;
  opt.trainer.local_lr = 0.2;
  opt.trainer.global_lr = 0.1;
  opt.online_steps = 25;
  opt.online_lr = 0.2;
  opt.encoder.num_gmm_components = 3;
  opt.encoder.num_jenks_intervals = 3;
  return opt;
}

SessionManagerOptions ManagerOptions(const std::string& dir, int64_t k) {
  SessionManagerOptions options;
  options.max_resident = k;
  options.checkpoint_dir = dir;
  options.session_num_threads = 1;
  return options;
}

class SessionManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(23);
    table_ = data::MakeBlobs(2500, 4, 5, &rng);
    subspaces_ = {data::Subspace{{0, 1}}, data::Subspace{{2, 3}}};
    model_ = std::make_shared<ExplorationModel>(SmallExplorerOptions());
    Rng pretrain_rng(23);
    ASSERT_TRUE(model_
                    ->Pretrain(table_, subspaces_, /*train_meta=*/true,
                               &pretrain_rng)
                    .ok());
    registry_ = std::make_unique<ModelRegistry>(model_);
  }

  /// A fresh per-test checkpoint directory (cleared from previous runs).
  std::string TestDir(const std::string& tag) const {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string dir =
        ::testing::TempDir() + "/session_manager_" + info->name() + "_" + tag;
    std::filesystem::remove_all(dir);
    return dir;
  }

  static std::string UserId(int64_t u) { return "user" + std::to_string(u); }

  static Variant UserVariant(int64_t u) {
    switch (u % 3) {
      case 0:
        return Variant::kMetaStar;
      case 1:
        return Variant::kMeta;
      default:
        return Variant::kBasic;
    }
  }

  std::vector<std::vector<double>> UserLabels(int64_t u) const {
    const double fraction = 0.35 + 0.12 * static_cast<double>(u % 5);
    std::vector<std::vector<double>> labels(subspaces_.size());
    for (size_t s = 0; s < subspaces_.size(); ++s) {
      const data::Column& col =
          table_.column(subspaces_[s].attribute_indices[0]);
      const double threshold = col.min() + fraction * (col.max() - col.min());
      for (const auto& tuple :
           *model_->InitialTuples(static_cast<int64_t>(s))) {
        labels[s].push_back(tuple[0] < threshold ? 1.0 : 0.0);
      }
    }
    return labels;
  }

  void MakeBatch(int64_t u, int64_t v, int64_t s,
                 std::vector<std::vector<double>>* points,
                 std::vector<double>* labels) const {
    points->clear();
    labels->clear();
    const auto& initial = *model_->InitialTuples(s);
    const data::Column& col = table_.column(subspaces_[s].attribute_indices[0]);
    const double fraction = 0.35 + 0.12 * static_cast<double>(u % 5);
    const double threshold = col.min() + fraction * (col.max() - col.min());
    for (int64_t j = 0; j < 3; ++j) {
      const auto& p =
          initial[static_cast<size_t>((u + 2 * v + j) %
                                      static_cast<int64_t>(initial.size()))];
      points->push_back(p);
      labels->push_back(p[0] < threshold ? 1.0 : 0.0);
    }
  }

  struct Outcome {
    std::vector<double> predictions;
    std::vector<int64_t> matches;

    bool operator==(const Outcome& other) const {
      return predictions == other.predictions && matches == other.matches;
    }
  };

  Outcome Serve(const ExplorationSession& session) const {
    Outcome out;
    std::vector<int64_t> rows(400);
    std::iota(rows.begin(), rows.end(), 0);
    EXPECT_TRUE(session.PredictRows(table_, rows, &out.predictions).ok());
    EXPECT_TRUE(session.RetrieveMatches(table_, 100, &out.matches).ok());
    return out;
  }

  /// One scripted visit of user `u`: visit 0 seeds the session rng and
  /// starts exploration; later visits feed one ContinueExploration batch
  /// (alternating subspaces). Everything a visit does is a deterministic
  /// function of (u, v) and the session's own state, so per-user results are
  /// reproducible under any cross-user interleaving.
  void RunVisit(SessionManager* manager, int64_t u, int64_t v) {
    SessionManager::Lease lease;
    const Status st = manager->Acquire(UserId(u), &lease);
    EXPECT_TRUE(st.ok()) << st.message();
    if (!st.ok()) return;
    ExplorationSession* session = lease.session();
    ASSERT_NE(session, nullptr);
    if (v == 0) {
      session->SeedRng(1000 + static_cast<uint64_t>(u));
      EXPECT_TRUE(session
                      ->StartExploration(UserLabels(u), UserVariant(u),
                                         session->session_rng())
                      .ok());
    } else {
      std::vector<std::vector<double>> points;
      std::vector<double> labels;
      const int64_t s = v % 2;
      MakeBatch(u, v, s, &points, &labels);
      EXPECT_TRUE(session
                      ->ContinueExploration(s, points, labels,
                                            session->session_rng())
                      .ok());
    }
  }

  data::Table table_;
  std::vector<data::Subspace> subspaces_;
  std::shared_ptr<ExplorationModel> model_;
  std::unique_ptr<ModelRegistry> registry_;
};

// Create, evict to disk, restore: the restored session answers exactly what
// the standalone (never-evicted) session answers.
TEST_F(SessionManagerTest, CreateEvictRestoreRoundTrip) {
  const std::string dir = TestDir("a");
  SessionManager manager(registry_.get(), ManagerOptions(dir, /*k=*/1));

  // Standalone reference for alice, same seeds.
  ExplorationSession reference(model_, 1);
  reference.SeedRng(7);
  ASSERT_TRUE(reference
                  .StartExploration(UserLabels(0), Variant::kMetaStar,
                                    reference.session_rng())
                  .ok());
  const Outcome expected = Serve(reference);

  {
    SessionManager::Lease lease;
    ASSERT_TRUE(manager.Acquire("alice", &lease).ok());
    lease.session()->SeedRng(7);
    ASSERT_TRUE(lease.session()
                    ->StartExploration(UserLabels(0), Variant::kMetaStar,
                                       lease.session()->session_rng())
                    .ok());
    EXPECT_TRUE(Serve(*lease.session()) == expected);
  }
  // A second user forces alice out (K = 1): her checkpoint appears on disk.
  {
    SessionManager::Lease lease;
    ASSERT_TRUE(manager.Acquire("bob", &lease).ok());
    lease.session()->SeedRng(8);
    ASSERT_TRUE(lease.session()
                    ->StartExploration(UserLabels(1), Variant::kBasic,
                                       lease.session()->session_rng())
                    .ok());
  }
  EXPECT_TRUE(std::filesystem::exists(manager.CheckpointPath("alice")));
  EXPECT_EQ(manager.resident_count(), 1);

  // Alice reconnects: restored from disk, byte-identical answers.
  {
    SessionManager::Lease lease;
    ASSERT_TRUE(manager.Acquire("alice", &lease).ok());
    EXPECT_TRUE(Serve(*lease.session()) == expected);
  }
  const SessionManagerStats stats = manager.stats();
  EXPECT_EQ(stats.creates, 2);
  EXPECT_EQ(stats.restores, 1);
  EXPECT_GE(stats.evictions, 2);
  EXPECT_EQ(stats.eviction_failures, 0);
}

// A pinned session survives capacity pressure: the lease keeps it resident
// and its pointer valid while another user barges in.
TEST_F(SessionManagerTest, PinnedSessionIsNotEvicted) {
  const std::string dir = TestDir("a");
  SessionManager manager(registry_.get(), ManagerOptions(dir, /*k=*/1));

  SessionManager::Lease alice;
  ASSERT_TRUE(manager.Acquire("alice", &alice).ok());
  alice.session()->SeedRng(7);
  ASSERT_TRUE(alice.session()
                  ->StartExploration(UserLabels(0), Variant::kMetaStar,
                                     alice.session()->session_rng())
                  .ok());
  const Outcome expected = Serve(*alice.session());

  // Over-capacity while alice is pinned: transient overshoot, no eviction.
  SessionManager::Lease bob;
  ASSERT_TRUE(manager.Acquire("bob", &bob).ok());
  EXPECT_EQ(manager.resident_count(), 2);
  EXPECT_EQ(manager.stats().evictions, 0);
  EXPECT_TRUE(Serve(*alice.session()) == expected);  // Still fully usable.

  // Releasing bob makes him the only evictable session; the manager trims
  // back to capacity without touching pinned alice.
  bob.Release();
  EXPECT_EQ(manager.resident_count(), 1);
  EXPECT_EQ(manager.stats().evictions, 1);
  EXPECT_TRUE(Serve(*alice.session()) == expected);
  alice.Release();
  EXPECT_EQ(manager.stats().peak_resident, 2);
}

// K-of-N churn under real threads: 4 request threads drive 32 users through
// a manager holding only 4 sessions resident. Every user's final answers are
// byte-identical to an all-resident manager running the same per-user script
// — evictions and restores change scheduling, never bytes.
TEST_F(SessionManagerTest, ChurnByteIdenticalUnderEviction) {
  constexpr int64_t kUsers = 32;
  constexpr int64_t kVisits = 4;
  constexpr int64_t kThreads = 4;

  // All-resident baseline, sequential.
  SessionManager baseline(registry_.get(),
                          ManagerOptions(TestDir("baseline"), kUsers));
  std::vector<Outcome> expected(kUsers);
  for (int64_t u = 0; u < kUsers; ++u) {
    for (int64_t v = 0; v < kVisits; ++v) RunVisit(&baseline, u, v);
    SessionManager::Lease lease;
    ASSERT_TRUE(baseline.Acquire(UserId(u), &lease).ok());
    expected[u] = Serve(*lease.session());
  }
  EXPECT_EQ(baseline.stats().evictions, 0);

  // Churning manager: K = 4 of N = 32, users sharded across threads (u % 4)
  // so each user's own visits stay ordered while cross-user interleaving —
  // and therefore the eviction schedule — is up to the scheduler.
  SessionManager churn(registry_.get(), ManagerOptions(TestDir("churn"), 4));
  std::vector<Outcome> observed(kUsers);
  std::vector<std::thread> threads;
  for (int64_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, &churn, &observed, t] {
      for (int64_t v = 0; v < kVisits; ++v) {
        for (int64_t u = t; u < kUsers; u += kThreads) {
          RunVisit(&churn, u, v);
        }
      }
      // Final serving pass, lease held (pinned) across the whole scan.
      for (int64_t u = t; u < kUsers; u += kThreads) {
        SessionManager::Lease lease;
        const Status st = churn.Acquire(UserId(u), &lease);
        EXPECT_TRUE(st.ok()) << st.message();
        if (st.ok()) observed[u] = Serve(*lease.session());
      }
    });
  }
  for (auto& thread : threads) thread.join();

  for (int64_t u = 0; u < kUsers; ++u) {
    EXPECT_TRUE(observed[u] == expected[u]) << "user " << u;
  }
  const SessionManagerStats stats = churn.stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_GT(stats.restores, 0);
  EXPECT_EQ(stats.eviction_failures, 0);
  EXPECT_LE(stats.peak_resident, kThreads);
  EXPECT_LE(churn.resident_count(), 4);
}

// Crash mid-evict: a half-written `.tmp` left by a dying process never
// shadows the real checkpoint; a restarted manager adopts the intact one.
TEST_F(SessionManagerTest, StaleTmpNeverShadowsCheckpoint) {
  const std::string dir = TestDir("a");
  Outcome expected;
  {
    SessionManager manager(registry_.get(), ManagerOptions(dir, /*k=*/4));
    for (int64_t v = 0; v < 3; ++v) RunVisit(&manager, 0, v);
    SessionManager::Lease lease;
    ASSERT_TRUE(manager.Acquire(UserId(0), &lease).ok());
    expected = Serve(*lease.session());
    lease.Release();
    ASSERT_TRUE(manager.CheckpointAll().ok());
  }
  // Simulate the crash: a torn write under the temporary name.
  const std::string tmp = dir + "/" + UserId(0) + ".ltesession.tmp";
  {
    std::ofstream torn(tmp, std::ios::binary);
    torn << "torn write";
  }

  // A new process adopts the durable checkpoint and ignores the .tmp.
  SessionManager restarted(registry_.get(), ManagerOptions(dir, /*k=*/1));
  {
    SessionManager::Lease lease;
    ASSERT_TRUE(restarted.Acquire(UserId(0), &lease).ok());
    EXPECT_TRUE(Serve(*lease.session()) == expected);
  }
  EXPECT_EQ(restarted.stats().restores, 1);

  // The next eviction replaces the stale .tmp via the atomic rename.
  {
    SessionManager::Lease lease;
    ASSERT_TRUE(restarted.Acquire("other", &lease).ok());
  }
  EXPECT_FALSE(std::filesystem::exists(tmp));
  EXPECT_TRUE(std::filesystem::exists(restarted.CheckpointPath(UserId(0))));
}

// A corrupted checkpoint surfaces an error Status — never a crash, never a
// session attached to garbage — and the manager keeps serving other users.
TEST_F(SessionManagerTest, CorruptedCheckpointFailsCleanly) {
  const std::string dir = TestDir("a");
  SessionManager manager(registry_.get(), ManagerOptions(dir, /*k=*/2));
  std::filesystem::create_directories(dir);
  {
    std::ofstream corrupt(manager.CheckpointPath("eve"), std::ios::binary);
    corrupt << "this is not a session checkpoint";
  }
  SessionManager::Lease lease;
  EXPECT_FALSE(manager.Acquire("eve", &lease).ok());
  EXPECT_FALSE(lease.valid());
  EXPECT_TRUE(std::filesystem::exists(manager.CheckpointPath("eve")));

  // Other users are unaffected; eve keeps failing until the operator
  // removes the bad file, after which she starts fresh.
  ASSERT_TRUE(manager.Acquire("frank", &lease).ok());
  lease.Release();
  EXPECT_FALSE(manager.Acquire("eve", &lease).ok());
  std::filesystem::remove(manager.CheckpointPath("eve"));
  EXPECT_TRUE(manager.Acquire("eve", &lease).ok());
  EXPECT_EQ(manager.stats().creates, 2);
}

// A checkpoint written against model A refuses to restore under a manager
// bound to a refreshed model B (the session fingerprint stamp, surfaced
// through the manager path).
TEST_F(SessionManagerTest, RestoreAgainstRefreshedModelIsRefused) {
  const std::string dir = TestDir("a");
  {
    SessionManager manager(registry_.get(), ManagerOptions(dir, /*k=*/2));
    for (int64_t v = 0; v < 2; ++v) RunVisit(&manager, 0, v);
    ASSERT_TRUE(manager.CheckpointAll().ok());
  }
  auto refreshed = std::make_shared<ExplorationModel>(SmallExplorerOptions());
  Rng rng(24);
  ASSERT_TRUE(
      refreshed->Pretrain(table_, subspaces_, /*train_meta=*/true, &rng).ok());
  ASSERT_NE(refreshed->fingerprint(), model_->fingerprint());

  ModelRegistry refreshed_registry(refreshed);
  SessionManager manager(&refreshed_registry, ManagerOptions(dir, /*k=*/2));
  SessionManager::Lease lease;
  const Status st = manager.Acquire(UserId(0), &lease);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(lease.valid());
  // The stale checkpoint is left on disk untouched for the operator.
  EXPECT_TRUE(std::filesystem::exists(manager.CheckpointPath(UserId(0))));
}

// Leased sessions plug straight into the coalesced serving front-end: the
// lease keeps each session resident for the whole blocking submission, and
// the shared pass returns exactly the standalone answers.
TEST_F(SessionManagerTest, LeasesRouteThroughCoalescedScheduler) {
  constexpr int64_t kUsers = 4;
  const std::string dir = TestDir("a");
  SessionManager manager(registry_.get(), ManagerOptions(dir, /*k=*/2));
  for (int64_t u = 0; u < kUsers; ++u) {
    for (int64_t v = 0; v < 2; ++v) RunVisit(&manager, u, v);
  }

  CoalescedScanScheduler scheduler(model_, &table_);
  std::vector<int64_t> rows(400);
  std::iota(rows.begin(), rows.end(), 0);
  std::vector<std::vector<double>> coalesced(kUsers);
  std::vector<std::thread> threads;
  for (int64_t u = 0; u < kUsers; ++u) {
    threads.emplace_back([&, u] {
      SessionManager::Lease lease;
      const Status st = manager.Acquire(UserId(u), &lease);
      EXPECT_TRUE(st.ok()) << st.message();
      if (!st.ok()) return;
      EXPECT_TRUE(
          scheduler.PredictRows(*lease.session(), rows, &coalesced[u]).ok());
    });
  }
  for (auto& thread : threads) thread.join();

  for (int64_t u = 0; u < kUsers; ++u) {
    SessionManager::Lease lease;
    ASSERT_TRUE(manager.Acquire(UserId(u), &lease).ok());
    std::vector<double> direct;
    ASSERT_TRUE(lease.session()->PredictRows(table_, rows, &direct).ok());
    EXPECT_EQ(coalesced[u], direct) << "user " << u;
  }
  EXPECT_GT(manager.stats().evictions, 0);
}

// User ids name checkpoint files: traversal and hidden-file shapes are
// rejected up front, and a null lease is an error, not a crash.
TEST_F(SessionManagerTest, InvalidUserIdsAndNullLeaseAreRejected) {
  SessionManager manager(registry_.get(), ManagerOptions(TestDir("a"), 2));
  SessionManager::Lease lease;
  for (const std::string& bad :
       {std::string(""), std::string("a/b"), std::string("../escape"),
        std::string(".hidden"), std::string("sp ace"),
        std::string(200, 'x')}) {
    EXPECT_EQ(manager.Acquire(bad, &lease).code(),
              StatusCode::kInvalidArgument)
        << "id \"" << bad << "\"";
    EXPECT_FALSE(lease.valid());
  }
  EXPECT_EQ(manager.Acquire("fine", nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(manager.Acquire("A-z_0.9", &lease).ok());
}

// RemoveUser purges everything the manager holds for an id — resident
// session, checkpoint, stale tmp — and the next acquire starts fresh.
TEST_F(SessionManagerTest, RemoveUserPurgesSessionAndCheckpoint) {
  const std::string dir = TestDir("a");
  SessionManager manager(registry_.get(), ManagerOptions(dir, /*k=*/2));
  for (int64_t v = 0; v < 2; ++v) RunVisit(&manager, 0, v);
  ASSERT_TRUE(manager.CheckpointAll().ok());
  ASSERT_TRUE(std::filesystem::exists(manager.CheckpointPath(UserId(0))));
  ASSERT_EQ(manager.resident_count(), 1);

  ASSERT_TRUE(manager.RemoveUser(UserId(0)).ok());
  EXPECT_EQ(manager.resident_count(), 0);
  EXPECT_FALSE(std::filesystem::exists(manager.CheckpointPath(UserId(0))));

  // Removing an id with no state is a no-op, not an error.
  EXPECT_TRUE(manager.RemoveUser(UserId(0)).ok());
  EXPECT_EQ(manager.RemoveUser("../escape").code(),
            StatusCode::kInvalidArgument);

  // The user reconnects as a brand-new session (create, not restore).
  const int64_t creates_before = manager.stats().creates;
  SessionManager::Lease lease;
  ASSERT_TRUE(manager.Acquire(UserId(0), &lease).ok());
  EXPECT_EQ(manager.stats().creates, creates_before + 1);
  EXPECT_EQ(manager.stats().restores, 0);
}

// A leased user cannot be removed out from under its request thread.
TEST_F(SessionManagerTest, RemoveUserRefusesALeasedUser) {
  SessionManager manager(registry_.get(), ManagerOptions(TestDir("a"), 2));
  SessionManager::Lease lease;
  ASSERT_TRUE(manager.Acquire("alice", &lease).ok());
  EXPECT_EQ(manager.RemoveUser("alice").code(),
            StatusCode::kFailedPrecondition);
  lease.Release();
  EXPECT_TRUE(manager.RemoveUser("alice").ok());
}

// SweepStaleCheckpoints purges exactly the checkpoints whose fingerprint
// stamp no longer matches the registry's current model: stale ones go,
// current ones and unreadable files stay.
TEST_F(SessionManagerTest, SweepRemovesOnlyStaleCheckpoints) {
  const std::string dir = TestDir("a");
  SessionManager manager(registry_.get(), ManagerOptions(dir, /*k=*/4));
  for (int64_t u = 0; u < 3; ++u) RunVisit(&manager, u, 0);
  ASSERT_TRUE(manager.CheckpointAll().ok());

  // Garbage that must survive any sweep: not a readable checkpoint.
  const std::string garbage = dir + "/" + UserId(9) + ".ltesession";
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "not a checkpoint";
  }

  // Same model => nothing is stale.
  int64_t removed = -1;
  ASSERT_TRUE(manager.SweepStaleCheckpoints(&removed).ok());
  EXPECT_EQ(removed, 0);
  for (int64_t u = 0; u < 3; ++u) {
    EXPECT_TRUE(std::filesystem::exists(manager.CheckpointPath(UserId(u))));
  }

  // Publish a refreshed model: every old-epoch checkpoint is now stale.
  auto refreshed = std::make_shared<ExplorationModel>(SmallExplorerOptions());
  Rng rng(24);
  ASSERT_TRUE(
      refreshed->Pretrain(table_, subspaces_, /*train_meta=*/true, &rng)
          .ok());
  registry_->Publish(refreshed);

  ASSERT_TRUE(manager.SweepStaleCheckpoints(&removed).ok());
  EXPECT_EQ(removed, 3);
  for (int64_t u = 0; u < 3; ++u) {
    EXPECT_FALSE(std::filesystem::exists(manager.CheckpointPath(UserId(u))));
  }
  EXPECT_TRUE(std::filesystem::exists(garbage));

  // Swept users start fresh under the new epoch instead of tripping the
  // stale-restore FailedPrecondition.
  SessionManager::Lease lease;
  ASSERT_TRUE(manager.Acquire(UserId(0), &lease).ok());
}

// Construction adopts the checkpoint directory: orphan `.ltesession.tmp`
// files a crashed process left behind are unlinked, committed checkpoints
// are untouched.
TEST_F(SessionManagerTest, ConstructionUnlinksOrphanTmpFiles) {
  const std::string dir = TestDir("a");
  {
    SessionManager manager(registry_.get(), ManagerOptions(dir, /*k=*/2));
    RunVisit(&manager, 0, 0);
    ASSERT_TRUE(manager.CheckpointAll().ok());
  }
  const std::string orphan1 = dir + "/" + UserId(0) + ".ltesession.tmp";
  const std::string orphan2 = dir + "/" + UserId(7) + ".ltesession.tmp";
  for (const std::string& path : {orphan1, orphan2}) {
    std::ofstream out(path, std::ios::binary);
    out << "dead tmp";
  }

  SessionManager restarted(registry_.get(), ManagerOptions(dir, /*k=*/2));
  EXPECT_FALSE(std::filesystem::exists(orphan1));
  EXPECT_FALSE(std::filesystem::exists(orphan2));
  EXPECT_TRUE(
      std::filesystem::exists(restarted.CheckpointPath(UserId(0))));
  SessionManager::Lease lease;
  ASSERT_TRUE(restarted.Acquire(UserId(0), &lease).ok());
  EXPECT_EQ(restarted.stats().restores, 1);
}

// Re-acquiring into a held lease releases the old pin first, so a single
// long-lived lease object cannot pin the whole cache.
TEST_F(SessionManagerTest, ReacquireIntoHeldLeaseReleasesOldPin) {
  SessionManager manager(registry_.get(), ManagerOptions(TestDir("a"), 1));
  SessionManager::Lease lease;
  ASSERT_TRUE(manager.Acquire("alice", &lease).ok());
  ASSERT_NE(lease.session(), nullptr);
  // Same lease object: alice is unpinned first, becomes the LRU victim, and
  // bob fits without overshoot.
  ASSERT_TRUE(manager.Acquire("bob", &lease).ok());
  ASSERT_NE(lease.session(), nullptr);
  EXPECT_EQ(manager.resident_count(), 1);
  EXPECT_EQ(manager.stats().evictions, 1);
  EXPECT_EQ(manager.stats().peak_resident, 1);

  // Moved-from leases are empty; the moved-to lease carries the pin.
  SessionManager::Lease moved = std::move(lease);
  EXPECT_FALSE(lease.valid());
  EXPECT_TRUE(moved.valid());
}

}  // namespace
}  // namespace lte::serving
