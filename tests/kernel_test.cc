#include "svm/kernel.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lte::svm {
namespace {

TEST(KernelTest, Linear) {
  Kernel k;
  k.type = KernelType::kLinear;
  EXPECT_DOUBLE_EQ(k.Evaluate({1, 2}, {3, 4}, 1.0), 11.0);
}

TEST(KernelTest, RbfIsOneAtIdenticalPoints) {
  Kernel k;
  k.type = KernelType::kRbf;
  EXPECT_DOUBLE_EQ(k.Evaluate({1, 2}, {1, 2}, 0.5), 1.0);
}

TEST(KernelTest, RbfDecaysWithDistance) {
  Kernel k;
  k.type = KernelType::kRbf;
  const double near = k.Evaluate({0, 0}, {1, 0}, 0.5);
  const double far = k.Evaluate({0, 0}, {3, 0}, 0.5);
  EXPECT_GT(near, far);
  EXPECT_NEAR(near, std::exp(-0.5), 1e-12);
}

TEST(KernelTest, Polynomial) {
  Kernel k;
  k.type = KernelType::kPolynomial;
  k.coef0 = 1.0;
  k.degree = 2;
  // (0.5 * 2 + 1)^2 = 4.
  EXPECT_DOUBLE_EQ(k.Evaluate({1, 1}, {1, 1}, 0.5), 4.0);
}

TEST(KernelTest, SymmetricInArguments) {
  Kernel k;
  k.type = KernelType::kRbf;
  const std::vector<double> a = {1.0, -2.0, 0.5};
  const std::vector<double> b = {0.0, 3.0, 1.5};
  EXPECT_DOUBLE_EQ(k.Evaluate(a, b, 0.7), k.Evaluate(b, a, 0.7));
}

}  // namespace
}  // namespace lte::svm
