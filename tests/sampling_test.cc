#include "data/sampling.h"

#include <gtest/gtest.h>

#include <set>

#include "data/synthetic.h"

namespace lte::data {
namespace {

Table SmallTable(int64_t n) {
  Table t({"x"});
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_TRUE(t.AppendRow({static_cast<double>(i)}).ok());
  }
  return t;
}

TEST(SamplingTest, SampleRowIndicesDistinctInRange) {
  const Table t = SmallTable(50);
  Rng rng(1);
  const std::vector<int64_t> idx = SampleRowIndices(t, 20, &rng);
  ASSERT_EQ(idx.size(), 20u);
  std::set<int64_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (int64_t i : idx) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 50);
  }
}

TEST(SamplingTest, SampleClampsToTableSize) {
  const Table t = SmallTable(5);
  Rng rng(2);
  EXPECT_EQ(SampleRowIndices(t, 100, &rng).size(), 5u);
}

TEST(SamplingTest, SampleZeroOrNegativeEmpty) {
  const Table t = SmallTable(5);
  Rng rng(3);
  EXPECT_TRUE(SampleRowIndices(t, 0, &rng).empty());
  EXPECT_TRUE(SampleRowIndices(t, -3, &rng).empty());
}

TEST(SamplingTest, SampleFraction) {
  const Table t = SmallTable(200);
  Rng rng(4);
  EXPECT_EQ(SampleRowFraction(t, 0.1, &rng).size(), 20u);
  // At least one row even for tiny fractions.
  EXPECT_EQ(SampleRowFraction(t, 1e-6, &rng).size(), 1u);
}

TEST(SamplingTest, SampleRowsMaterializes) {
  const Table t = SmallTable(30);
  Rng rng(5);
  const Table s = SampleRows(t, 10, &rng);
  EXPECT_EQ(s.num_rows(), 10);
  EXPECT_EQ(s.num_columns(), 1);
}

TEST(SamplingTest, ReservoirKeepsCapacity) {
  Rng rng(6);
  ReservoirSampler sampler(10, &rng);
  for (int64_t i = 0; i < 1000; ++i) sampler.Offer(i);
  EXPECT_EQ(sampler.reservoir().size(), 10u);
  EXPECT_EQ(sampler.items_seen(), 1000);
}

TEST(SamplingTest, ReservoirShortStreamKeepsAll) {
  Rng rng(7);
  ReservoirSampler sampler(10, &rng);
  for (int64_t i = 0; i < 4; ++i) sampler.Offer(i);
  EXPECT_EQ(sampler.reservoir(), (std::vector<int64_t>{0, 1, 2, 3}));
}

TEST(SamplingTest, ReservoirIsApproximatelyUniform) {
  // Offer 0..99 into a reservoir of 10, many times; each item should be kept
  // with probability ~0.1.
  Rng rng(8);
  std::vector<int> hits(100, 0);
  const int trials = 2000;
  for (int tr = 0; tr < trials; ++tr) {
    ReservoirSampler sampler(10, &rng);
    for (int64_t i = 0; i < 100; ++i) sampler.Offer(i);
    for (int64_t v : sampler.reservoir()) ++hits[static_cast<size_t>(v)];
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]) / trials, 0.1, 0.04)
        << "item " << i;
  }
}

}  // namespace
}  // namespace lte::data
