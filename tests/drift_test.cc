#include "cluster/drift.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace lte::cluster {
namespace {

std::vector<std::vector<double>> Blob(Rng* rng, double cx, double cy, int n) {
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng->Normal(cx, 0.5), rng->Normal(cy, 0.5)});
  }
  return pts;
}

class DriftTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(3);
    // Two clusters with known centers.
    centers_ = {{0.0, 0.0}, {10.0, 10.0}};
    baseline_ = Blob(rng_.get(), 0, 0, 300);
    const auto second = Blob(rng_.get(), 10, 10, 300);
    baseline_.insert(baseline_.end(), second.begin(), second.end());
  }

  std::unique_ptr<Rng> rng_;
  std::vector<std::vector<double>> centers_;
  std::vector<std::vector<double>> baseline_;
};

TEST_F(DriftTest, SameDistributionNoDrift) {
  DriftDetectorOptions opt;
  opt.window_size = 200;
  DriftDetector detector(centers_, baseline_, opt);
  for (const auto& p : Blob(rng_.get(), 0, 0, 150)) detector.Offer(p);
  for (const auto& p : Blob(rng_.get(), 10, 10, 150)) detector.Offer(p);
  EXPECT_FALSE(detector.Drifted());
  EXPECT_NEAR(detector.ErrorRatio(), 1.0, 0.2);
}

TEST_F(DriftTest, NewRegionTripsErrorRatio) {
  DriftDetectorOptions opt;
  opt.window_size = 200;
  DriftDetector detector(centers_, baseline_, opt);
  // Data moved to a region far from both centers.
  for (const auto& p : Blob(rng_.get(), 30, -20, 250)) detector.Offer(p);
  EXPECT_TRUE(detector.Drifted());
  EXPECT_GT(detector.ErrorRatio(), 2.0);
}

TEST_F(DriftTest, MassShiftTripsAssignmentDistance) {
  DriftDetectorOptions opt;
  opt.window_size = 200;
  opt.error_ratio_threshold = 1e9;  // Disable the error criterion.
  DriftDetector detector(centers_, baseline_, opt);
  // All mass collapses onto one cluster (50/50 -> 100/0).
  for (const auto& p : Blob(rng_.get(), 0, 0, 250)) detector.Offer(p);
  EXPECT_GT(detector.AssignmentDistance(), 0.4);
  EXPECT_TRUE(detector.Drifted());
}

TEST_F(DriftTest, NoVerdictBeforeEnoughPoints) {
  DriftDetectorOptions opt;
  opt.window_size = 1000;
  DriftDetector detector(centers_, baseline_, opt);
  for (const auto& p : Blob(rng_.get(), 30, -20, 20)) detector.Offer(p);
  // 20 < window/4: not enough evidence yet.
  EXPECT_FALSE(detector.Drifted());
}

TEST_F(DriftTest, TumblingWindowUsesLatestComplete) {
  DriftDetectorOptions opt;
  opt.window_size = 100;
  DriftDetector detector(centers_, baseline_, opt);
  // First window: same distribution.
  for (const auto& p : Blob(rng_.get(), 0, 0, 50)) detector.Offer(p);
  for (const auto& p : Blob(rng_.get(), 10, 10, 50)) detector.Offer(p);
  EXPECT_FALSE(detector.Drifted());
  // Second window: drifted data.
  for (const auto& p : Blob(rng_.get(), 30, -20, 100)) detector.Offer(p);
  EXPECT_TRUE(detector.Drifted());
  EXPECT_EQ(detector.points_seen(), 200);
}

}  // namespace
}  // namespace lte::cluster
