#include "data/table.h"

#include <gtest/gtest.h>

namespace lte::data {
namespace {

Table MakeTable() {
  Table t({"a", "b", "c"});
  EXPECT_TRUE(t.AppendRow({1.0, 2.0, 3.0}).ok());
  EXPECT_TRUE(t.AppendRow({4.0, 5.0, 6.0}).ok());
  EXPECT_TRUE(t.AppendRow({7.0, 8.0, 9.0}).ok());
  return t;
}

TEST(TableTest, ShapeAndNames) {
  const Table t = MakeTable();
  EXPECT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.num_columns(), 3);
  EXPECT_EQ(t.AttributeNames(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(TableTest, ColumnIndex) {
  const Table t = MakeTable();
  EXPECT_EQ(t.ColumnIndex("b"), 1);
  EXPECT_EQ(t.ColumnIndex("missing"), -1);
}

TEST(TableTest, RowAccess) {
  const Table t = MakeTable();
  EXPECT_EQ(t.Row(1), (std::vector<double>{4.0, 5.0, 6.0}));
}

TEST(TableTest, RowProjected) {
  const Table t = MakeTable();
  EXPECT_EQ(t.RowProjected(2, {2, 0}), (std::vector<double>{9.0, 7.0}));
}

TEST(TableTest, AppendRowWidthMismatchFails) {
  Table t({"a", "b"});
  const Status s = t.AppendRow({1.0});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.num_rows(), 0);
}

TEST(TableTest, AddColumn) {
  Table t;
  EXPECT_TRUE(t.AddColumn(Column("x", {1.0, 2.0})).ok());
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_TRUE(t.AddColumn(Column("y", {3.0, 4.0})).ok());
  EXPECT_EQ(t.num_columns(), 2);
}

TEST(TableTest, AddColumnDuplicateNameFails) {
  Table t;
  ASSERT_TRUE(t.AddColumn(Column("x", {1.0})).ok());
  EXPECT_FALSE(t.AddColumn(Column("x", {2.0})).ok());
}

TEST(TableTest, AddColumnLengthMismatchFails) {
  Table t;
  ASSERT_TRUE(t.AddColumn(Column("x", {1.0, 2.0})).ok());
  EXPECT_FALSE(t.AddColumn(Column("y", {1.0})).ok());
}

TEST(TableTest, Project) {
  const Table t = MakeTable();
  const Table p = t.Project({2, 0});
  EXPECT_EQ(p.num_columns(), 2);
  EXPECT_EQ(p.num_rows(), 3);
  EXPECT_EQ(p.AttributeNames(), (std::vector<std::string>{"c", "a"}));
  EXPECT_EQ(p.Row(0), (std::vector<double>{3.0, 1.0}));
}

TEST(TableTest, SelectRows) {
  const Table t = MakeTable();
  const Table s = t.SelectRows({2, 0});
  EXPECT_EQ(s.num_rows(), 2);
  EXPECT_EQ(s.Row(0), (std::vector<double>{7.0, 8.0, 9.0}));
  EXPECT_EQ(s.Row(1), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(TableTest, MinMaxViaColumns) {
  const Table t = MakeTable();
  EXPECT_DOUBLE_EQ(t.column(0).min(), 1.0);
  EXPECT_DOUBLE_EQ(t.column(0).max(), 7.0);
}

}  // namespace
}  // namespace lte::data
