// Session lifecycle test battery, part 1: ExplorationSession::Save/Load.
//
//  * Round-trip determinism: Save -> Load -> continue is byte-identical to
//    the uninterrupted session, across scan paths and thread counts {1, 4}.
//  * Adversarial decodes: truncation at every byte boundary and bit flips
//    across the header + model stamp return an error Status — never a crash,
//    never a silent load (runs under the ASan/UBSan CI job).
//  * Model mismatch: a session saved against model A refuses to load against
//    model B (FailedPrecondition, both fingerprints in the message),
//    including through the legacy Explorer facade.
//
// Saved streams carry configured stateful exploration policies (tau-first +
// bootstrap), so the round-trip and corruption batteries exercise the
// format-v2 policy payload; see session_format_migration_test.cc for the
// v1-compat and per-kind round-trip coverage.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "core/exploration_model.h"
#include "core/exploration_session.h"
#include "core/explorer.h"
#include "data/synthetic.h"

namespace lte::core {
namespace {

ExplorerOptions SmallExplorerOptions() {
  ExplorerOptions opt;
  opt.task_gen.k_u = 30;
  opt.task_gen.k_s = 10;
  opt.task_gen.k_q = 30;
  opt.task_gen.delta = 5;
  opt.task_gen.alpha = 2;
  opt.task_gen.psi = 8;
  opt.learner.embedding_size = 12;
  opt.learner.clf_hidden = {12};
  opt.learner.num_memory_modes = 3;
  opt.num_meta_tasks = 25;
  opt.trainer.epochs = 3;
  opt.trainer.task_batch_size = 10;
  opt.trainer.local_steps = 6;
  opt.trainer.local_lr = 0.2;
  opt.trainer.global_lr = 0.1;
  opt.online_steps = 25;
  opt.online_lr = 0.2;
  opt.encoder.num_gmm_components = 3;
  opt.encoder.num_jenks_intervals = 3;
  return opt;
}

std::string HexU64(uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llX",
                static_cast<unsigned long long>(v));
  return buf;
}

class SessionPersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(23);
    table_ = data::MakeBlobs(2500, 4, 5, &rng);
    subspaces_ = {data::Subspace{{0, 1}}, data::Subspace{{2, 3}}};
    model_ = std::make_shared<ExplorationModel>(SmallExplorerOptions());
    Rng pretrain_rng(23);
    ASSERT_TRUE(model_
                    ->Pretrain(table_, subspaces_, /*train_meta=*/true,
                               &pretrain_rng)
                    .ok());
  }

  // Simulated user `u`: interesting iff the subspace point's first
  // coordinate is below a per-user fraction of that attribute's range.
  std::vector<std::vector<double>> UserLabels(int64_t u) const {
    const double fraction = 0.35 + 0.12 * static_cast<double>(u);
    std::vector<std::vector<double>> labels(subspaces_.size());
    for (size_t s = 0; s < subspaces_.size(); ++s) {
      const data::Column& col =
          table_.column(subspaces_[s].attribute_indices[0]);
      const double threshold = col.min() + fraction * (col.max() - col.min());
      for (const auto& tuple :
           *model_->InitialTuples(static_cast<int64_t>(s))) {
        labels[s].push_back(tuple[0] < threshold ? 1.0 : 0.0);
      }
    }
    return labels;
  }

  // A deterministic ContinueExploration batch for (user, visit, subspace):
  // initial tuples re-labelled under the user's threshold.
  void MakeBatch(int64_t u, int64_t v, int64_t s,
                 std::vector<std::vector<double>>* points,
                 std::vector<double>* labels) const {
    points->clear();
    labels->clear();
    const auto& initial = *model_->InitialTuples(s);
    const data::Column& col = table_.column(subspaces_[s].attribute_indices[0]);
    const double fraction = 0.35 + 0.12 * static_cast<double>(u);
    const double threshold = col.min() + fraction * (col.max() - col.min());
    for (int64_t j = 0; j < 3; ++j) {
      const auto& p =
          initial[static_cast<size_t>((u + 2 * v + j) %
                                      static_cast<int64_t>(initial.size()))];
      points->push_back(p);
      labels->push_back(p[0] < threshold ? 1.0 : 0.0);
    }
  }

  // Installs stateful exploration policies (format-v2 payload) and consumes
  // a suggestion batch per subspace, so saved streams carry a mid-count
  // tau-first counter, bootstrap bag seeds, and an advanced session rng.
  // Called identically on the reference and the to-be-saved session, the
  // policy draws stay in lockstep.
  void ConfigurePoliciesAndSuggest(ExplorationSession* session) const {
    policy::PolicyOptions tau;
    tau.kind = policy::PolicyKind::kTauFirst;
    tau.tau = 4;
    EXPECT_TRUE(session->ConfigureSuggestPolicy(0, tau).ok());
    policy::PolicyOptions boot;
    boot.kind = policy::PolicyKind::kBootstrap;
    boot.bootstrap_bags = 4;
    EXPECT_TRUE(session->ConfigureSuggestPolicy(1, boot).ok());
    std::vector<int64_t> suggested;
    for (int64_t s = 0; s < 2; ++s) {
      EXPECT_TRUE(
          session->SuggestTuples(s, *model_->InitialTuples(s), 3, &suggested)
              .ok());
      EXPECT_EQ(suggested.size(), 3u);
    }
  }

  // One session's complete serving outcome, for exact comparison.
  struct Outcome {
    std::vector<double> predictions;
    std::vector<int64_t> matches;
    std::vector<int64_t> limited;

    bool operator==(const Outcome& other) const {
      return predictions == other.predictions && matches == other.matches &&
             limited == other.limited;
    }
  };

  Outcome Serve(const ExplorationSession& session) const {
    Outcome out;
    std::vector<int64_t> rows(500);
    std::iota(rows.begin(), rows.end(), 0);
    EXPECT_TRUE(session.PredictRows(table_, rows, &out.predictions).ok());
    EXPECT_TRUE(session.RetrieveMatches(table_, -1, &out.matches).ok());
    EXPECT_TRUE(session.RetrieveMatches(table_, 50, &out.limited).ok());
    return out;
  }

  // Serializes a mid-exploration session (start + one continue batch on each
  // subspace, session-owned rng) to a string. kMetaStar exercises every
  // section of the format: memories, history, and the FP/FN rebuild.
  std::string SavedMidExploration(Variant variant, int64_t threads,
                                  ScanPath path) {
    ExplorationSession session(model_, threads);
    session.set_scan_path(path);
    session.SeedRng(777);
    EXPECT_TRUE(
        session.StartExploration(UserLabels(0), variant, session.session_rng())
            .ok());
    ConfigurePoliciesAndSuggest(&session);
    std::vector<std::vector<double>> points;
    std::vector<double> labels;
    for (int64_t s = 0; s < 2; ++s) {
      MakeBatch(0, 1, s, &points, &labels);
      EXPECT_TRUE(
          session.ContinueExploration(s, points, labels, session.session_rng())
              .ok());
    }
    std::ostringstream out(std::ios::binary);
    EXPECT_TRUE(session.SaveToStream(&out).ok());
    return out.str();
  }

  data::Table table_;
  std::vector<data::Subspace> subspaces_;
  std::shared_ptr<ExplorationModel> model_;
};

// Save -> Load -> continue must be byte-identical to never having saved, for
// every variant, scan path, and thread count — and across them: the loader
// may run a different host configuration than the saver.
TEST_F(SessionPersistenceTest, RoundTripContinuationMatchesUninterrupted) {
  for (const Variant variant : {Variant::kMetaStar, Variant::kBasic}) {
    for (const ScanPath path : {ScanPath::kColumnar, ScanPath::kRowAtATime}) {
      for (const int64_t save_threads : {int64_t{1}, int64_t{4}}) {
        // Uninterrupted reference: start, continue twice, serve.
        ExplorationSession reference(model_, save_threads);
        reference.set_scan_path(path);
        reference.SeedRng(777);
        ASSERT_TRUE(reference
                        .StartExploration(UserLabels(0), variant,
                                          reference.session_rng())
                        .ok());
        ConfigurePoliciesAndSuggest(&reference);
        std::vector<std::vector<double>> points;
        std::vector<double> labels;
        for (int64_t s = 0; s < 2; ++s) {
          MakeBatch(0, 1, s, &points, &labels);
          ASSERT_TRUE(reference
                          .ContinueExploration(s, points, labels,
                                               reference.session_rng())
                          .ok());
        }
        const std::string saved =
            SavedMidExploration(variant, save_threads, path);
        MakeBatch(0, 2, 0, &points, &labels);
        ASSERT_TRUE(reference
                        .ContinueExploration(0, points, labels,
                                             reference.session_rng())
                        .ok());
        const Outcome expected = Serve(reference);

        for (const int64_t load_threads : {int64_t{1}, int64_t{4}}) {
          ExplorationSession restored(model_, load_threads);
          restored.set_scan_path(path);
          std::istringstream in(saved, std::ios::binary);
          ASSERT_TRUE(restored.LoadFromStream(&in).ok());
          ASSERT_EQ(restored.active_subspaces(), 2);
          ASSERT_NE(restored.session_rng(), nullptr);
          MakeBatch(0, 2, 0, &points, &labels);
          ASSERT_TRUE(restored
                          .ContinueExploration(0, points, labels,
                                               restored.session_rng())
                          .ok());
          EXPECT_TRUE(Serve(restored) == expected)
              << "variant=" << static_cast<int>(variant)
              << " path=" << static_cast<int>(path)
              << " save_threads=" << save_threads
              << " load_threads=" << load_threads;
        }
      }
    }
  }
}

// The serialized bytes themselves are thread-count- and scan-path-invariant:
// persistence inherits the adaptation determinism contract.
TEST_F(SessionPersistenceTest, SavedBytesIdenticalAcrossHostKnobs) {
  const std::string base =
      SavedMidExploration(Variant::kMetaStar, 1, ScanPath::kColumnar);
  EXPECT_EQ(base, SavedMidExploration(Variant::kMetaStar, 4,
                                      ScanPath::kColumnar));
  EXPECT_EQ(base, SavedMidExploration(Variant::kMetaStar, 1,
                                      ScanPath::kRowAtATime));
}

// Truncating the file at every byte boundary must yield an error Status —
// never a crash, never a silent load — and must leave the destination
// session's previous state untouched.
TEST_F(SessionPersistenceTest, TruncationAtEveryByteFailsCleanly) {
  const std::string saved =
      SavedMidExploration(Variant::kMetaStar, 1, ScanPath::kColumnar);
  // Sanity: the intact stream loads.
  ExplorationSession intact(model_, 1);
  std::istringstream full(saved, std::ios::binary);
  ASSERT_TRUE(intact.LoadFromStream(&full).ok());

  ExplorationSession victim(model_, 1);
  victim.SeedRng(11);
  ASSERT_TRUE(victim
                  .StartExploration(UserLabels(1), Variant::kMeta,
                                    victim.session_rng())
                  .ok());
  const Outcome before = Serve(victim);
  for (size_t len = 0; len < saved.size(); ++len) {
    std::istringstream in(saved.substr(0, len), std::ios::binary);
    const Status st = victim.LoadFromStream(&in);
    ASSERT_FALSE(st.ok()) << "truncation at byte " << len << " loaded";
  }
  // Every failed decode left the previous exploration fully intact.
  EXPECT_EQ(victim.active_subspaces(), 2);
  EXPECT_TRUE(Serve(victim) == before);
}

// Bit flips across the header and model stamp (magic, version, fingerprint)
// must be rejected; a flipped fingerprint specifically reports the mismatch
// as FailedPrecondition.
TEST_F(SessionPersistenceTest, HeaderAndStampBitFlipsFailCleanly) {
  const std::string saved =
      SavedMidExploration(Variant::kMetaStar, 1, ScanPath::kColumnar);
  ASSERT_GE(saved.size(), 24u);
  for (size_t byte = 0; byte < 24; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = saved;
      corrupt[byte] = static_cast<char>(corrupt[byte] ^ (1 << bit));
      ExplorationSession session(model_, 1);
      std::istringstream in(corrupt, std::ios::binary);
      const Status st = session.LoadFromStream(&in);
      ASSERT_FALSE(st.ok()) << "flip of byte " << byte << " bit " << bit;
      EXPECT_EQ(session.active_subspaces(), 0);
      if (byte >= 16) {  // The model fingerprint stamp.
        EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
      }
    }
  }
}

// Garbage, too-short, and cross-format files all fail with an error Status.
TEST_F(SessionPersistenceTest, GarbageAndWrongFormatFilesAreRejected) {
  const std::string dir = ::testing::TempDir();
  ExplorationSession session(model_, 1);
  EXPECT_EQ(session.Load(dir + "/does_not_exist.ltesession").code(),
            StatusCode::kIoError);

  const std::string garbage_path = dir + "/garbage.ltesession";
  {
    std::ofstream out(garbage_path, std::ios::binary);
    out << "definitely not a session";
  }
  EXPECT_EQ(session.Load(garbage_path).code(), StatusCode::kInvalidArgument);

  const std::string short_path = dir + "/short.ltesession";
  {
    std::ofstream out(short_path, std::ios::binary);
    out << "abc";
  }
  EXPECT_EQ(session.Load(short_path).code(), StatusCode::kIoError);

  // A model artifact is not a session file (and vice versa).
  const std::string model_path = dir + "/model.ltemodel";
  ASSERT_TRUE(model_->Save(model_path).ok());
  EXPECT_EQ(session.Load(model_path).code(), StatusCode::kInvalidArgument);
  ExplorationSession donor(model_, 1);
  donor.SeedRng(5);
  ASSERT_TRUE(donor
                  .StartExploration(UserLabels(0), Variant::kBasic,
                                    donor.session_rng())
                  .ok());
  const std::string session_path = dir + "/donor.ltesession";
  ASSERT_TRUE(donor.Save(session_path).ok());
  ExplorationModel fresh(SmallExplorerOptions());
  EXPECT_FALSE(fresh.Load(session_path).ok());
}

// A session saved against model A refuses to attach to a refreshed model B:
// FailedPrecondition naming both fingerprints, and the destination session
// keeps its previous state.
TEST_F(SessionPersistenceTest, ModelMismatchRefusesLoad) {
  ExplorationSession session(model_, 1);
  session.SeedRng(3);
  ASSERT_TRUE(session
                  .StartExploration(UserLabels(0), Variant::kMetaStar,
                                    session.session_rng())
                  .ok());
  const std::string path = ::testing::TempDir() + "/mismatch.ltesession";
  ASSERT_TRUE(session.Save(path).ok());

  // Model B: same data, different pretraining stream => different artifact.
  auto other = std::make_shared<ExplorationModel>(SmallExplorerOptions());
  Rng other_rng(24);
  ASSERT_TRUE(
      other->Pretrain(table_, subspaces_, /*train_meta=*/true, &other_rng)
          .ok());
  ASSERT_NE(other->fingerprint(), model_->fingerprint());

  ExplorationSession wrong(other, 1);
  const Status st = wrong.Load(path);
  ASSERT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.message().find(HexU64(model_->fingerprint())),
            std::string::npos);
  EXPECT_NE(st.message().find(HexU64(other->fingerprint())),
            std::string::npos);
  EXPECT_EQ(wrong.active_subspaces(), 0);

  // The right model still accepts the file — including a model restored
  // from its own artifact, which fingerprints identically by construction.
  ExplorationSession right(model_, 1);
  ASSERT_TRUE(right.Load(path).ok());
  EXPECT_TRUE(Serve(right) == Serve(session));
  const std::string model_path = ::testing::TempDir() + "/model_rt.ltemodel";
  ASSERT_TRUE(model_->Save(model_path).ok());
  auto reloaded = std::make_shared<ExplorationModel>(SmallExplorerOptions());
  ASSERT_TRUE(reloaded->Load(model_path).ok());
  EXPECT_EQ(reloaded->fingerprint(), model_->fingerprint());
  ExplorationSession on_reloaded(reloaded, 1);
  EXPECT_TRUE(on_reloaded.Load(path).ok());
}

// The legacy Explorer facade exposes the same persistence surface and the
// same stale-session protection.
TEST_F(SessionPersistenceTest, ExplorerFacadeSaveLoadAndMismatch) {
  Explorer ex(SmallExplorerOptions());
  Rng rng(23);
  ASSERT_TRUE(
      ex.Pretrain(table_, subspaces_, /*train_meta=*/true, &rng).ok());
  ex.mutable_session()->SeedRng(9);
  ASSERT_TRUE(ex.StartExploration(UserLabels(0), Variant::kMetaStar,
                                  ex.mutable_session()->session_rng())
                  .ok());
  const std::string path = ::testing::TempDir() + "/facade.ltesession";
  ASSERT_TRUE(ex.SaveSession(path).ok());

  // Same pretraining stream => same fingerprint => the session transfers.
  Explorer same(SmallExplorerOptions());
  Rng same_rng(23);
  ASSERT_TRUE(
      same.Pretrain(table_, subspaces_, /*train_meta=*/true, &same_rng).ok());
  ASSERT_EQ(same.model().fingerprint(), ex.model().fingerprint());
  ASSERT_TRUE(same.LoadSession(path).ok());
  std::vector<int64_t> expected;
  std::vector<int64_t> restored;
  ASSERT_TRUE(ex.RetrieveMatches(table_, -1, &expected).ok());
  ASSERT_TRUE(same.RetrieveMatches(table_, -1, &restored).ok());
  EXPECT_EQ(expected, restored);

  // Refreshed facade model => FailedPrecondition with both fingerprints.
  Explorer refreshed(SmallExplorerOptions());
  Rng refreshed_rng(24);
  ASSERT_TRUE(refreshed
                  .Pretrain(table_, subspaces_, /*train_meta=*/true,
                            &refreshed_rng)
                  .ok());
  const Status st = refreshed.LoadSession(path);
  ASSERT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.message().find(HexU64(ex.model().fingerprint())),
            std::string::npos);
  EXPECT_NE(st.message().find(HexU64(refreshed.model().fingerprint())),
            std::string::npos);
}

// An unstarted session (rng only) round-trips, and the restored rng
// continues the stream draw-for-draw.
TEST_F(SessionPersistenceTest, UnstartedSessionRoundTripsWithRng) {
  ExplorationSession session(model_, 1);
  session.SeedRng(41);
  session.session_rng()->Uniform();  // Advance past the seed state.
  std::ostringstream out(std::ios::binary);
  ASSERT_TRUE(session.SaveToStream(&out).ok());

  ExplorationSession restored(model_, 1);
  std::istringstream in(out.str(), std::ios::binary);
  ASSERT_TRUE(restored.LoadFromStream(&in).ok());
  EXPECT_EQ(restored.active_subspaces(), 0);
  ASSERT_NE(restored.session_rng(), nullptr);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(session.session_rng()->engine()(),
              restored.session_rng()->engine()());
  }
}

}  // namespace
}  // namespace lte::core
