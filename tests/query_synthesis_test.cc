#include "core/query_synthesis.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "eval/metrics.h"

namespace lte::core {
namespace {

class QuerySynthesisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(7);
    table_ = data::MakeBlobs(4000, 4, 4, rng_.get());
    // Normalize to [0,1] so box bounds are easy to reason about.
    preprocess::MinMaxNormalizer norm;
    ASSERT_TRUE(norm.Fit(table_).ok());
    normalizer_ = norm;
    data::Table normalized(table_.AttributeNames());
    for (int64_t r = 0; r < table_.num_rows(); ++r) {
      ASSERT_TRUE(normalized.AppendRow(norm.TransformRow(table_.Row(r))).ok());
    }
    table_ = std::move(normalized);

    ExplorerOptions opt;
    opt.task_gen.k_u = 30;
    opt.task_gen.k_s = 10;
    opt.task_gen.k_q = 30;
    opt.learner.embedding_size = 12;
    opt.learner.clf_hidden = {12};
    opt.learner.num_memory_modes = 3;
    opt.num_meta_tasks = 25;
    opt.trainer.epochs = 3;
    opt.trainer.local_steps = 3;
    explorer_ = std::make_unique<Explorer>(opt);
    subspaces_ = {data::Subspace{{0, 1}}, data::Subspace{{2, 3}}};
    ASSERT_TRUE(explorer_
                    ->Pretrain(table_, subspaces_, /*train_meta=*/false,
                               rng_.get())
                    .ok());
  }

  void Explore(double threshold) {
    std::vector<std::vector<double>> labels(2);
    for (int s = 0; s < 2; ++s) {
      for (const auto& t : *explorer_->InitialTuples(s)) {
        labels[static_cast<size_t>(s)].push_back(t[0] < threshold ? 1.0 : 0.0);
      }
    }
    ASSERT_TRUE(
        explorer_->StartExploration(labels, Variant::kBasic, rng_.get()).ok());
  }

  std::unique_ptr<Rng> rng_;
  data::Table table_;
  preprocess::MinMaxNormalizer normalizer_;
  std::vector<data::Subspace> subspaces_;
  std::unique_ptr<Explorer> explorer_;
};

TEST_F(QuerySynthesisTest, RequiresExploration) {
  SynthesizedQuery query;
  EXPECT_EQ(SynthesizeQuery(*explorer_, QuerySynthesisOptions{}, &query).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(QuerySynthesisTest, QueryAgreesWithClassifier) {
  Explore(0.5);
  SynthesizedQuery query;
  ASSERT_TRUE(
      SynthesizeQuery(*explorer_, QuerySynthesisOptions{}, &query).ok());
  ASSERT_EQ(query.clauses.size(), 2u);

  // The synthesized predicate should closely agree with the classifier it
  // distilled, on held-out rows.
  eval::ConfusionCounts counts;
  for (int64_t r = 0; r < 1000; ++r) {
    const std::vector<double> row = table_.Row(r);
    counts.Add(explorer_->PredictRow(row).value_or(0.0),
               query.Matches(row) ? 1.0 : 0.0);
  }
  EXPECT_GT(eval::F1Score(counts), 0.8);
}

TEST_F(QuerySynthesisTest, SqlRendering) {
  Explore(0.5);
  SynthesizedQuery query;
  ASSERT_TRUE(
      SynthesizeQuery(*explorer_, QuerySynthesisOptions{}, &query).ok());
  const std::string sql =
      query.ToSql("blobs", table_.AttributeNames(), nullptr);
  EXPECT_NE(sql.find("SELECT * FROM blobs"), std::string::npos);
  EXPECT_NE(sql.find("BETWEEN"), std::string::npos);
  EXPECT_NE(sql.find("a0"), std::string::npos);
}

TEST_F(QuerySynthesisTest, SqlDenormalizesBounds) {
  Explore(0.5);
  SynthesizedQuery query;
  ASSERT_TRUE(
      SynthesizeQuery(*explorer_, QuerySynthesisOptions{}, &query).ok());
  const std::string raw_sql =
      query.ToSql("blobs", table_.AttributeNames(), &normalizer_);
  // Denormalized bounds live on the raw blob scale (roughly [-5, 15]), so
  // the SQL should not be identical to the normalized rendering.
  const std::string norm_sql =
      query.ToSql("blobs", table_.AttributeNames(), nullptr);
  EXPECT_NE(raw_sql, norm_sql);
}

TEST_F(QuerySynthesisTest, AllNegativeYieldsFalseClause) {
  // Label everything uninteresting: the synthesized query matches nothing.
  std::vector<std::vector<double>> labels(2);
  for (int s = 0; s < 2; ++s) {
    labels[static_cast<size_t>(s)].assign(
        explorer_->InitialTuples(s)->size(), 0.0);
  }
  ASSERT_TRUE(
      explorer_->StartExploration(labels, Variant::kBasic, rng_.get()).ok());
  SynthesizedQuery query;
  ASSERT_TRUE(
      SynthesizeQuery(*explorer_, QuerySynthesisOptions{}, &query).ok());
  int matches = 0;
  int classifier_positives = 0;
  for (int64_t r = 0; r < 500; ++r) {
    matches += query.Matches(table_.Row(r)) ? 1 : 0;
    classifier_positives +=
        explorer_->PredictRow(table_.Row(r)).value_or(0.0) > 0.5;
  }
  // The query may only match rows the classifier also accepts (both should
  // be near zero on all-negative labels).
  EXPECT_LE(matches, classifier_positives + 25);
}

TEST_F(QuerySynthesisTest, MaxBoxesRespected) {
  Explore(0.5);
  QuerySynthesisOptions opt;
  opt.max_boxes_per_subspace = 2;
  SynthesizedQuery query;
  ASSERT_TRUE(SynthesizeQuery(*explorer_, opt, &query).ok());
  for (const SubspaceClause& clause : query.clauses) {
    EXPECT_LE(clause.boxes.size(), 2u);
  }
}

}  // namespace
}  // namespace lte::core
