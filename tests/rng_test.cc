#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "common/binary_io.h"

namespace lte {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(1000), b.UniformInt(1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.UniformInt(1000000) != b.UniformInt(1000000)) ++differing;
  }
  EXPECT_GT(differing, 40);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
  }
}

TEST(RngTest, UniformRealInRange) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, NormalHasApproximateMoments) {
  Rng rng(5);
  double sum = 0.0;
  double sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(2.0, 3.0);
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(6);
  int heads = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) heads += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.03);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndSorted) {
  Rng rng(8);
  const std::vector<int64_t> s = rng.SampleWithoutReplacement(100, 30);
  ASSERT_EQ(s.size(), 30u);
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  const std::set<int64_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (int64_t v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(9);
  const std::vector<int64_t> s = rng.SampleWithoutReplacement(5, 5);
  EXPECT_EQ(s, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, SampleWithoutReplacementEmpty) {
  Rng rng(10);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(11);
  Rng child = parent.Fork();
  // The fork consumed parent state; both streams should still be valid and
  // (with overwhelming probability) different.
  EXPECT_NE(parent.UniformInt(1000000), child.UniformInt(1000000));
}

TEST(RngTest, KeyedForkIsAFunctionOfSeedAndKey) {
  Rng parent(11);
  Rng early = parent.Fork(3);
  parent.UniformInt(100);  // Advance the parent...
  Rng late = parent.Fork(3);
  // ...the key-split stream must not care: same seed + same key = same
  // stream, regardless of parent progress (that is what makes the split
  // safe to compute concurrently from worker threads).
  EXPECT_EQ(early.UniformInt(1 << 30), late.UniformInt(1 << 30));
  EXPECT_EQ(early.seed(), late.seed());
}

TEST(RngTest, KeyedForkDoesNotAdvanceParent) {
  Rng forked(11);
  (void)forked.Fork(0);
  (void)forked.Fork(1);
  Rng untouched(11);
  EXPECT_EQ(forked.UniformInt(1 << 30), untouched.UniformInt(1 << 30));
}

TEST(RngTest, KeyedForkSeparatesConsecutiveKeys) {
  // Consecutive keys (the common case: subspace/task indices) must give
  // well-separated streams — the SplitMix64 finalizer, not the raw key,
  // seeds the child.
  Rng parent(42);
  std::vector<uint64_t> seeds;
  for (uint64_t k = 0; k < 64; ++k) seeds.push_back(parent.Fork(k).seed());
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
}

TEST(RngTest, SaveLoadResumesStreamExactly) {
  Rng original(91);
  for (int i = 0; i < 37; ++i) original.Uniform();  // Mid-stream state.
  std::ostringstream bytes(std::ios::binary);
  {
    BinaryWriter writer(&bytes);
    original.Save(&writer);
    ASSERT_TRUE(writer.status().ok());
  }
  Rng restored(0);
  std::istringstream in(bytes.str(), std::ios::binary);
  BinaryReader reader(&in);
  ASSERT_TRUE(restored.Load(&reader).ok());
  EXPECT_EQ(restored.seed(), original.seed());
  // Sequential draws resume draw-for-draw...
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(original.UniformInt(1 << 30), restored.UniformInt(1 << 30));
  }
  // ...and keyed forks (functions of the construction seed) agree too.
  EXPECT_EQ(original.Fork(5).UniformInt(1 << 30),
            restored.Fork(5).UniformInt(1 << 30));
}

TEST(RngTest, LoadRejectsMalformedEngineState) {
  std::ostringstream bytes(std::ios::binary);
  {
    BinaryWriter writer(&bytes);
    writer.WriteU64(9);
    writer.WriteString("definitely not an mt19937_64 state");
    ASSERT_TRUE(writer.status().ok());
  }
  Rng restored(0);
  std::istringstream in(bytes.str(), std::ios::binary);
  BinaryReader reader(&in);
  EXPECT_FALSE(restored.Load(&reader).ok());
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(12);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace lte
