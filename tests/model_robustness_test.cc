// Robustness of model loading against damaged files: every truncation of a
// valid model must produce a clean Status error, never a crash or a
// half-initialized Explorer.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/lte.h"
#include "data/synthetic.h"

namespace lte {
namespace {

class ModelRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(5);
    data::Table table = data::MakeBlobs(2500, 2, 3, &rng);
    core::ExplorerOptions opt;
    opt.task_gen.k_u = 20;
    opt.task_gen.k_s = 8;
    opt.task_gen.k_q = 20;
    opt.learner.embedding_size = 8;
    opt.learner.clf_hidden = {8};
    opt.learner.num_memory_modes = 2;
    opt.num_meta_tasks = 10;
    opt.trainer.epochs = 1;
    opt.trainer.local_steps = 1;
    core::Explorer explorer(opt);
    ASSERT_TRUE(explorer
                    .Pretrain(table, {data::Subspace{{0, 1}}},
                              /*train_meta=*/true, &rng)
                    .ok());
    path_ = testing::TempDir() + "/robustness.ltemodel";
    ASSERT_TRUE(explorer.Save(path_).ok());

    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes_ = buf.str();
    ASSERT_GT(bytes_.size(), 64u);
  }

  void WriteTruncated(size_t n) {
    std::ofstream out(truncated_path(), std::ios::binary);
    out.write(bytes_.data(), static_cast<std::streamsize>(n));
  }

  std::string truncated_path() const {
    return testing::TempDir() + "/truncated.ltemodel";
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(ModelRobustnessTest, FullFileLoads) {
  core::Explorer ex(core::ExplorerOptions{});
  EXPECT_TRUE(ex.LoadModel(path_).ok());
}

TEST_F(ModelRobustnessTest, EveryTruncationFailsCleanly) {
  // Sweep truncation points across the file (every ~5% plus the first few
  // bytes, where the header parses).
  std::vector<size_t> cuts = {0, 1, 7, 8, 15, 16, 17};
  for (int i = 1; i < 20; ++i) {
    cuts.push_back(bytes_.size() * static_cast<size_t>(i) / 20);
  }
  for (size_t cut : cuts) {
    if (cut >= bytes_.size()) continue;
    WriteTruncated(cut);
    core::Explorer ex(core::ExplorerOptions{});
    const Status s = ex.LoadModel(truncated_path());
    EXPECT_FALSE(s.ok()) << "truncation at byte " << cut
                         << " unexpectedly loaded";
  }
}

TEST_F(ModelRobustnessTest, CorruptedMagicRejected) {
  std::string corrupted = bytes_;
  corrupted[0] = static_cast<char>(corrupted[0] ^ 0xFF);
  std::ofstream out(truncated_path(), std::ios::binary);
  out.write(corrupted.data(), static_cast<std::streamsize>(corrupted.size()));
  out.close();
  core::Explorer ex(core::ExplorerOptions{});
  const Status s = ex.LoadModel(truncated_path());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(ModelRobustnessTest, FailedLoadLeavesExplorerUnusable) {
  WriteTruncated(bytes_.size() / 2);
  core::Explorer ex(core::ExplorerOptions{});
  ASSERT_FALSE(ex.LoadModel(truncated_path()).ok());
  // The failed load must not report a pretrained explorer.
  EXPECT_EQ(ex.StartExploration({{1.0}}, core::Variant::kBasic, nullptr).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ModelRobustnessTest, FailedLoadPreservesPreviousModel) {
  core::Explorer ex(core::ExplorerOptions{});
  ASSERT_TRUE(ex.LoadModel(path_).ok());
  ASSERT_NE(ex.InitialTuples(0), nullptr);
  const std::vector<std::vector<double>> initial = *ex.InitialTuples(0);
  WriteTruncated(bytes_.size() / 3);
  ASSERT_FALSE(ex.LoadModel(truncated_path()).ok());
  // A failed re-load must not clobber the previously loaded model.
  ASSERT_NE(ex.InitialTuples(0), nullptr);
  EXPECT_EQ(*ex.InitialTuples(0), initial);
}

}  // namespace
}  // namespace lte
