#include "cluster/proximity.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lte::cluster {
namespace {

TEST(ProximityTest, DistancesAreEuclidean) {
  const std::vector<std::vector<double>> rows = {{0, 0}, {1, 1}};
  const std::vector<std::vector<double>> cols = {{3, 4}, {0, 0}};
  const ProximityMatrix p(rows, cols);
  EXPECT_EQ(p.num_rows(), 2);
  EXPECT_EQ(p.num_cols(), 2);
  EXPECT_DOUBLE_EQ(p.Distance(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(p.Distance(0, 1), 0.0);
  EXPECT_NEAR(p.Distance(1, 1), std::sqrt(2.0), 1e-12);
}

TEST(ProximityTest, SelfMatrixDiagonalIsZero) {
  const std::vector<std::vector<double>> c = {{0, 0}, {1, 0}, {5, 5}};
  const ProximityMatrix p(c, c);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(p.Distance(i, i), 0.0);
  }
}

TEST(ProximityTest, NearestColsOrderedByDistance) {
  const std::vector<std::vector<double>> rows = {{0.0, 0.0}};
  const std::vector<std::vector<double>> cols = {
      {3, 0}, {1, 0}, {2, 0}, {10, 0}};
  const ProximityMatrix p(rows, cols);
  EXPECT_EQ(p.NearestCols(0, 3), (std::vector<int64_t>{1, 2, 0}));
}

TEST(ProximityTest, NearestColsIncludesSelfForSelfMatrix) {
  const std::vector<std::vector<double>> c = {{0, 0}, {1, 0}, {2, 0}};
  const ProximityMatrix p(c, c);
  const std::vector<int64_t> nn = p.NearestCols(1, 2);
  EXPECT_EQ(nn[0], 1);  // Itself at distance zero.
}

TEST(ProximityTest, NearestColsClampsK) {
  const std::vector<std::vector<double>> rows = {{0.0}};
  const std::vector<std::vector<double>> cols = {{1.0}, {2.0}};
  const ProximityMatrix p(rows, cols);
  EXPECT_EQ(p.NearestCols(0, 10).size(), 2u);
  EXPECT_TRUE(p.NearestCols(0, 0).empty());
}

}  // namespace
}  // namespace lte::cluster
