#include "eval/experiment.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace lte::eval {
namespace {

RunnerOptions SmallRunnerOptions() {
  RunnerOptions opt;
  opt.explorer.task_gen.k_u = 30;
  opt.explorer.task_gen.k_s = 10;  // Overridden per budget.
  opt.explorer.task_gen.k_q = 30;
  opt.explorer.task_gen.delta = 5;
  opt.explorer.task_gen.alpha = 2;
  opt.explorer.task_gen.psi = 8;
  opt.explorer.learner.embedding_size = 12;
  opt.explorer.learner.clf_hidden = {12};
  opt.explorer.learner.num_memory_modes = 3;
  opt.explorer.num_meta_tasks = 20;
  opt.explorer.trainer.epochs = 2;
  opt.explorer.trainer.task_batch_size = 10;
  opt.explorer.trainer.local_steps = 5;
  opt.explorer.trainer.local_lr = 0.2;
  opt.explorer.trainer.global_lr = 0.1;
  opt.explorer.online_steps = 20;
  opt.explorer.online_lr = 0.2;
  opt.explorer.encoder.num_gmm_components = 3;
  opt.explorer.encoder.num_jenks_intervals = 3;
  opt.eval_sample_rows = 300;
  opt.pool_rows = 300;
  opt.seed = 77;
  return opt;
}

class ExperimentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(13);
    data::Table table = data::MakeBlobs(3000, 4, 4, &rng);
    runner_ = std::make_unique<ExperimentRunner>(
        std::move(table),
        std::vector<data::Subspace>{data::Subspace{{0, 1}},
                                    data::Subspace{{2, 3}}},
        SmallRunnerOptions());
    ASSERT_TRUE(runner_->Init().ok());
  }

  std::unique_ptr<ExperimentRunner> runner_;
};

TEST(MethodNameTest, AllNames) {
  EXPECT_EQ(MethodName(Method::kAide), "AIDE");
  EXPECT_EQ(MethodName(Method::kAlSvm), "AL-SVM");
  EXPECT_EQ(MethodName(Method::kDsm), "DSM");
  EXPECT_EQ(MethodName(Method::kSvm), "SVM");
  EXPECT_EQ(MethodName(Method::kSvmR), "SVM^r");
  EXPECT_EQ(MethodName(Method::kBasic), "Basic");
  EXPECT_EQ(MethodName(Method::kMeta), "Meta");
  EXPECT_EQ(MethodName(Method::kMetaStar), "Meta*");
}

TEST_F(ExperimentTest, NormalizedTableInUnitRange) {
  const data::Table& t = runner_->normalized_table();
  for (int64_t c = 0; c < t.num_columns(); ++c) {
    EXPECT_GE(t.column(c).min(), 0.0);
    EXPECT_LE(t.column(c).max(), 1.0);
  }
}

TEST_F(ExperimentTest, EveryMethodRuns) {
  const GroundTruthUir uir = runner_->GenerateUir({"t", 1, 10}, 2);
  for (Method m : {Method::kSvm, Method::kSvmR, Method::kBasic, Method::kMeta,
                   Method::kMetaStar, Method::kAide, Method::kAlSvm,
                   Method::kDsm}) {
    ExperimentResult res;
    ASSERT_TRUE(runner_->Run(m, uir, 15, &res).ok()) << MethodName(m);
    EXPECT_GE(res.f1, 0.0) << MethodName(m);
    EXPECT_LE(res.f1, 1.0) << MethodName(m);
    EXPECT_GT(res.labels_used, 0) << MethodName(m);
    EXPECT_GE(res.online_seconds, 0.0) << MethodName(m);
  }
}

TEST_F(ExperimentTest, BudgetTooSmallRejected) {
  const GroundTruthUir uir = runner_->GenerateUir({"t", 1, 10}, 2);
  ExperimentResult res;
  EXPECT_FALSE(runner_->Run(Method::kMeta, uir, 6, &res).ok());
}

TEST_F(ExperimentTest, ExplorerCachedAcrossRuns) {
  const GroundTruthUir uir = runner_->GenerateUir({"t", 1, 10}, 2);
  ExperimentResult res;
  ASSERT_TRUE(runner_->Run(Method::kMeta, uir, 15, &res).ok());
  const double t1 = runner_->PretrainSeconds(15);
  EXPECT_GT(t1, 0.0);
  ASSERT_TRUE(runner_->Run(Method::kMetaStar, uir, 15, &res).ok());
  EXPECT_DOUBLE_EQ(runner_->PretrainSeconds(15), t1);  // No retraining.
}

TEST_F(ExperimentTest, PrefixUirRestrictsDimensions) {
  const GroundTruthUir uir = runner_->GenerateUir({"t", 1, 10}, 1);
  EXPECT_EQ(uir.subspaces.size(), 1u);
  ExperimentResult res;
  ASSERT_TRUE(runner_->Run(Method::kBasic, uir, 15, &res).ok());
  ASSERT_TRUE(runner_->Run(Method::kDsm, uir, 15, &res).ok());
}

TEST_F(ExperimentTest, MeanF1AndBudgetSearch) {
  std::vector<GroundTruthUir> uirs;
  for (int i = 0; i < 2; ++i) uirs.push_back(runner_->GenerateUir({"t", 1, 12}, 2));
  double f1 = 0.0;
  ASSERT_TRUE(runner_->MeanF1(Method::kSvm, uirs, 15, &f1).ok());
  EXPECT_GE(f1, 0.0);
  EXPECT_LE(f1, 1.0);

  int64_t budget = 0;
  ASSERT_TRUE(runner_->FindBudgetForTarget(Method::kSvm, uirs, /*target=*/0.0,
                                           {15, 20}, &budget)
                  .ok());
  EXPECT_EQ(budget, 15);  // Target 0 is met immediately.
  ASSERT_TRUE(runner_->FindBudgetForTarget(Method::kSvm, uirs, /*target=*/1.1,
                                           {15}, &budget)
                  .ok());
  EXPECT_EQ(budget, -1);  // Unreachable target.
}

TEST_F(ExperimentTest, LabelNoisePlumbing) {
  // Full noise (p=1) flips every label; the resulting F1 against the clean
  // ground truth must be no better than the noise-free run's.
  Rng rng(13);
  data::Table table = data::MakeBlobs(3000, 4, 4, &rng);
  RunnerOptions noisy_opt = SmallRunnerOptions();
  noisy_opt.label_noise = 1.0;
  ExperimentRunner noisy(std::move(table),
                         {data::Subspace{{0, 1}}, data::Subspace{{2, 3}}},
                         noisy_opt);
  ASSERT_TRUE(noisy.Init().ok());
  const GroundTruthUir uir = noisy.GenerateUir({"t", 1, 10}, 2);
  ExperimentResult noisy_res;
  ASSERT_TRUE(noisy.Run(Method::kSvm, uir, 15, &noisy_res).ok());

  const GroundTruthUir clean_uir = runner_->GenerateUir({"t", 1, 10}, 2);
  ExperimentResult clean_res;
  ASSERT_TRUE(runner_->Run(Method::kSvm, clean_uir, 15, &clean_res).ok());
  // Fully inverted labels cannot beat clean labels by a wide margin.
  EXPECT_LE(noisy_res.f1, clean_res.f1 + 0.15);
}

TEST_F(ExperimentTest, InitValidation) {
  RunnerOptions opt = SmallRunnerOptions();
  data::Table empty({"a", "b"});
  ExperimentRunner bad(std::move(empty), {data::Subspace{{0, 1}}}, opt);
  EXPECT_FALSE(bad.Init().ok());
}

}  // namespace
}  // namespace lte::eval
