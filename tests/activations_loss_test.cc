#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "nn/loss.h"

namespace lte::nn {
namespace {

TEST(ActivationsTest, Relu) {
  EXPECT_EQ(Relu({-1.0, 0.0, 2.0}), (std::vector<double>{0.0, 0.0, 2.0}));
}

TEST(ActivationsTest, ReluBackwardMasksNonPositive) {
  EXPECT_EQ(ReluBackward({-1.0, 0.0, 2.0}, {5.0, 5.0, 5.0}),
            (std::vector<double>{0.0, 0.0, 5.0}));
}

TEST(ActivationsTest, SigmoidValues) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-100.0), 0.0, 1e-12);
  EXPECT_NEAR(Sigmoid(1.0) + Sigmoid(-1.0), 1.0, 1e-12);
}

TEST(ActivationsTest, SigmoidNumericallyStableAtExtremes) {
  EXPECT_TRUE(std::isfinite(Sigmoid(1000.0)));
  EXPECT_TRUE(std::isfinite(Sigmoid(-1000.0)));
}

TEST(LossTest, BceMatchesDefinition) {
  // loss = -y log p - (1-y) log(1-p) with p = sigmoid(z).
  for (double z : {-2.0, -0.5, 0.0, 0.5, 2.0}) {
    for (double y : {0.0, 1.0}) {
      const double p = Sigmoid(z);
      const double expected = -y * std::log(p) - (1 - y) * std::log(1 - p);
      EXPECT_NEAR(BceWithLogits(z, y), expected, 1e-9) << "z=" << z;
    }
  }
}

TEST(LossTest, BceStableAtExtremeLogits) {
  EXPECT_TRUE(std::isfinite(BceWithLogits(1000.0, 0.0)));
  EXPECT_TRUE(std::isfinite(BceWithLogits(-1000.0, 1.0)));
  EXPECT_NEAR(BceWithLogits(1000.0, 1.0), 0.0, 1e-9);
}

TEST(LossTest, GradMatchesFiniteDifference) {
  const double eps = 1e-6;
  for (double z : {-1.5, 0.0, 0.7}) {
    for (double y : {0.0, 1.0}) {
      const double num =
          (BceWithLogits(z + eps, y) - BceWithLogits(z - eps, y)) / (2 * eps);
      EXPECT_NEAR(BceWithLogitsGrad(z, y), num, 1e-6);
    }
  }
}

TEST(LossTest, GradSignPushesTowardLabel) {
  EXPECT_LT(BceWithLogitsGrad(0.0, 1.0), 0.0);  // Increase logit.
  EXPECT_GT(BceWithLogitsGrad(0.0, 0.0), 0.0);  // Decrease logit.
}

}  // namespace
}  // namespace lte::nn
