// Property-based tests: parameterized sweeps asserting invariants that must
// hold across the configuration space, not just at the defaults.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "cluster/kmeans.h"
#include "common/math_util.h"
#include "core/meta_task.h"
#include "core/optimizer_fpfn.h"
#include "geom/convex_hull.h"
#include "svm/svm.h"

namespace lte {
namespace {

// --- k-means invariants over (dimension, k). --------------------------------
class KMeansPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KMeansPropertyTest, Invariants) {
  const int dim = std::get<0>(GetParam());
  const int k = std::get<1>(GetParam());
  Rng rng(static_cast<uint64_t>(dim * 100 + k));
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 400; ++i) {
    std::vector<double> p(static_cast<size_t>(dim));
    for (double& x : p) x = rng.Uniform(-5, 5);
    pts.push_back(std::move(p));
  }
  cluster::KMeansOptions opt;
  opt.k = k;
  cluster::KMeansResult res;
  ASSERT_TRUE(cluster::KMeans(pts, opt, &rng, &res).ok());

  // (1) Exactly k centers of the right dimension.
  ASSERT_EQ(res.centers.size(), static_cast<size_t>(k));
  for (const auto& c : res.centers) {
    EXPECT_EQ(c.size(), static_cast<size_t>(dim));
    // (2) Centers lie inside the data bounding box.
    for (double x : c) {
      EXPECT_GE(x, -5.0);
      EXPECT_LE(x, 5.0);
    }
  }
  // (3) Every point is assigned to its nearest center.
  for (size_t i = 0; i < pts.size(); ++i) {
    const auto a = static_cast<size_t>(res.assignments[i]);
    const double d = SquaredDistance(pts[i], res.centers[a]);
    for (const auto& c : res.centers) {
      EXPECT_LE(d, SquaredDistance(pts[i], c) + 1e-9);
    }
  }
  // (4) Inertia equals the sum of assigned squared distances.
  double inertia = 0.0;
  for (size_t i = 0; i < pts.size(); ++i) {
    inertia += SquaredDistance(
        pts[i], res.centers[static_cast<size_t>(res.assignments[i])]);
  }
  EXPECT_NEAR(res.inertia, inertia, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(DimK, KMeansPropertyTest,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(2, 5, 16)));

// --- Meta-task invariants over (alpha, psi). ---------------------------------
class MetaTaskPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MetaTaskPropertyTest, Invariants) {
  const int alpha = std::get<0>(GetParam());
  const int psi = std::get<1>(GetParam());
  Rng rng(static_cast<uint64_t>(alpha * 31 + psi));
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 2000; ++i) {
    pts.push_back({rng.Uniform(), rng.Uniform()});
  }
  core::MetaTaskGenOptions opt;
  opt.k_u = 30;
  opt.k_s = 10;
  opt.k_q = 20;
  opt.alpha = alpha;
  opt.psi = psi;
  core::MetaTaskGenerator gen(opt);
  ASSERT_TRUE(gen.Init(pts, &rng).ok());

  for (int trial = 0; trial < 5; ++trial) {
    const core::MetaTask task = gen.GenerateTask(&rng);
    // (1) Shapes.
    EXPECT_EQ(task.support_points.size(), 15u);
    EXPECT_EQ(task.query_points.size(), 25u);
    EXPECT_EQ(task.uis_feature.size(), 30u);
    // (2) The UIS has between 1 and alpha convex parts.
    EXPECT_GE(task.uis.parts().size(), 1u);
    EXPECT_LE(task.uis.parts().size(), static_cast<size_t>(alpha));
    // (3) Labels match UIS membership exactly.
    for (size_t i = 0; i < task.support_points.size(); ++i) {
      EXPECT_EQ(task.support_labels[i],
                task.uis.Contains(task.support_points[i]) ? 1.0 : 0.0);
    }
    // (4) Feature bits are binary and only on when some center was positive.
    double bits = 0.0;
    double positives = 0.0;
    for (size_t i = 0; i < 10; ++i) positives += task.support_labels[i];
    for (double b : task.uis_feature) {
      EXPECT_TRUE(b == 0.0 || b == 1.0);
      bits += b;
    }
    if (positives == 0.0) {
      EXPECT_EQ(bits, 0.0);
    }
    if (positives > 0.0) {
      EXPECT_GT(bits, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AlphaPsi, MetaTaskPropertyTest,
                         ::testing::Combine(::testing::Values(1, 2, 4, 6),
                                            ::testing::Values(3, 8, 15)));

// --- Convex hull translation invariance. ------------------------------------
class HullTranslationTest : public ::testing::TestWithParam<double> {};

TEST_P(HullTranslationTest, MembershipIsTranslationInvariant) {
  const double shift = GetParam();
  Rng rng(static_cast<uint64_t>(std::abs(shift) * 1000 + 1));
  std::vector<geom::Point2> pts;
  for (int i = 0; i < 30; ++i) {
    pts.push_back({rng.Uniform(0, 4), rng.Uniform(0, 4)});
  }
  std::vector<geom::Point2> shifted = pts;
  for (auto& p : shifted) {
    p.x += shift;
    p.y += shift;
  }
  const auto hull = geom::ConvexHull(pts);
  const auto hull_shifted = geom::ConvexHull(shifted);
  EXPECT_EQ(hull.size(), hull_shifted.size());
  for (int i = 0; i < 50; ++i) {
    const geom::Point2 probe = {rng.Uniform(-1, 5), rng.Uniform(-1, 5)};
    const geom::Point2 probe_shifted = {probe.x + shift, probe.y + shift};
    EXPECT_EQ(geom::PointInConvexPolygon(probe, hull),
              geom::PointInConvexPolygon(probe_shifted, hull_shifted))
        << "shift " << shift;
  }
}

INSTANTIATE_TEST_SUITE_P(Shifts, HullTranslationTest,
                         ::testing::Values(-100.0, -1.0, 0.5, 7.0, 1000.0));

// --- SVM accuracy over the soft-margin parameter C. -------------------------
class SvmCSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(SvmCSweepTest, SeparableDataStaysAccurate) {
  Rng rng(9);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 60; ++i) {
    x.push_back({rng.Normal(-2, 0.3), rng.Normal(0, 0.3)});
    y.push_back(0.0);
    x.push_back({rng.Normal(2, 0.3), rng.Normal(0, 0.3)});
    y.push_back(1.0);
  }
  svm::SmoOptions smo;
  smo.c = GetParam();
  svm::Svm model;
  ASSERT_TRUE(model.Train(x, y, svm::Kernel{}, smo, &rng).ok());
  int correct = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (model.Predict(x[i]) == y[i]) ++correct;
  }
  EXPECT_GE(correct, static_cast<int>(x.size() * 9 / 10)) << "C=" << smo.c;
}

INSTANTIATE_TEST_SUITE_P(CValues, SvmCSweepTest,
                         ::testing::Values(0.1, 1.0, 10.0, 100.0));

// --- FP/FN optimizer: inner ⊆ outer across expansion settings. --------------
class FpFnContainmentTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(FpFnContainmentTest, InnerSubsetOfOuter) {
  const double outer = std::get<0>(GetParam());
  const double inner = std::get<1>(GetParam());
  if (inner > outer) GTEST_SKIP() << "configuration not meaningful";
  Rng rng(17);
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 2000; ++i) {
    pts.push_back({rng.Uniform(), rng.Uniform()});
  }
  core::MetaTaskGenOptions gopt;
  gopt.k_u = 30;
  gopt.k_s = 10;
  gopt.k_q = 20;
  core::MetaTaskGenerator gen(gopt);
  ASSERT_TRUE(gen.Init(pts, &rng).ok());

  std::vector<double> labels(10, 0.0);
  labels[static_cast<size_t>(rng.UniformInt(10))] = 1.0;
  labels[static_cast<size_t>(rng.UniformInt(10))] = 1.0;
  core::FpFnOptions opt;
  opt.outer_fraction = outer;
  opt.inner_fraction = inner;
  core::FpFnOptimizer fpfn(gen.context(), labels, opt);
  for (int i = 0; i < 300; ++i) {
    const std::vector<double> p = {rng.Uniform(), rng.Uniform()};
    if (fpfn.inner_subregion().Contains(p)) {
      EXPECT_TRUE(fpfn.outer_subregion().Contains(p))
          << "outer=" << outer << " inner=" << inner;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fractions, FpFnContainmentTest,
    ::testing::Combine(::testing::Values(0.1, 0.3, 0.6),
                       ::testing::Values(0.05, 0.1, 0.3)));

}  // namespace
}  // namespace lte
