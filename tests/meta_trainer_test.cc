#include "core/meta_trainer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/uis_feature.h"

namespace lte::core {
namespace {

// A miniature meta-learning problem over a 2-D unit square. Encoding is the
// identity (raw coordinates), so everything stays tiny and fast.
class MetaTrainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(17);
    std::vector<std::vector<double>> points;
    for (int i = 0; i < 3000; ++i) {
      points.push_back({rng_->Uniform(), rng_->Uniform()});
    }
    MetaTaskGenOptions gopt;
    gopt.k_u = 30;
    gopt.k_s = 10;
    gopt.k_q = 30;
    gopt.delta = 5;
    gopt.alpha = 2;
    gopt.psi = 8;
    generator_ = std::make_unique<MetaTaskGenerator>(gopt);
    ASSERT_TRUE(generator_->Init(points, rng_.get()).ok());
  }

  MetaLearnerOptions LearnerOptions(bool memory) const {
    MetaLearnerOptions opt;
    opt.uis_feature_dim = 30;
    opt.tuple_feature_dim = 2;  // Identity encoding.
    opt.embedding_size = 12;
    opt.clf_hidden = {12};
    opt.use_memory = memory;
    opt.num_memory_modes = 3;
    return opt;
  }

  std::vector<EncodedMetaTask> MakeTasks(int64_t n) {
    const std::vector<MetaTask> raw =
        generator_->GenerateTaskSet(n, rng_.get());
    return EncodeTasks(raw, [](const std::vector<double>& p) { return p; });
  }

  std::unique_ptr<Rng> rng_;
  std::unique_ptr<MetaTaskGenerator> generator_;
};

TEST_F(MetaTrainerTest, EncodeTasksPreservesShapes) {
  const std::vector<EncodedMetaTask> tasks = MakeTasks(3);
  ASSERT_EQ(tasks.size(), 3u);
  EXPECT_EQ(tasks[0].support_x.size(), 15u);
  EXPECT_EQ(tasks[0].query_x.size(), 35u);
  EXPECT_EQ(tasks[0].uis_feature.size(), 30u);
  EXPECT_EQ(tasks[0].support_x[0].size(), 2u);
}

TEST_F(MetaTrainerTest, LocallyAdaptFitsSupportSet) {
  const std::vector<EncodedMetaTask> tasks = MakeTasks(1);
  MetaLearner learner(LearnerOptions(false), rng_.get());
  TaskModel tm = learner.CreateTaskModel(tasks[0].uis_feature);
  const double before = tm.EvaluateLoss(tasks[0].support_x, tasks[0].support_y);
  LocallyAdapt(&tm, tasks[0].support_x, tasks[0].support_y, /*steps=*/120,
               /*batch_size=*/8, /*lr=*/0.3, rng_.get());
  const double after = tm.EvaluateLoss(tasks[0].support_x, tasks[0].support_y);
  EXPECT_LT(after, before);
}

TEST_F(MetaTrainerTest, MetaTrainingReducesQueryLoss) {
  for (bool memory : {false, true}) {
    const std::vector<EncodedMetaTask> tasks = MakeTasks(100);
    MetaLearner learner(LearnerOptions(memory), rng_.get());
    MetaTrainerOptions topt;
    topt.epochs = 12;
    topt.task_batch_size = 10;
    topt.local_steps = 2;
    topt.local_batch_size = 8;
    topt.local_lr = 0.2;
    topt.global_lr = 0.3;
    MetaTrainStats stats;
    ASSERT_TRUE(MetaTrain(tasks, topt, rng_.get(), &learner, &stats).ok());
    ASSERT_EQ(stats.epoch_query_loss.size(), 12u);
    // Epoch losses fluctuate; the tail must improve on the head.
    const double head = std::min(stats.epoch_query_loss[0],
                                 stats.epoch_query_loss[1]);
    const double tail = std::min(stats.epoch_query_loss[10],
                                 stats.epoch_query_loss[11]);
    EXPECT_LT(tail, head) << "memory=" << memory;
  }
}

TEST_F(MetaTrainerTest, MetaInitializationAdaptsFasterThanRandom) {
  // The headline claim of the paper in miniature: after meta-training, a few
  // local steps on a *new* task reach a lower query loss than the same steps
  // from random initialization. Needs enough global update steps
  // (epochs x tasks / batch) to show a robust gap.
  const std::vector<EncodedMetaTask> train_tasks = MakeTasks(150);
  MetaLearner meta(LearnerOptions(true), rng_.get());
  MetaTrainerOptions topt;
  topt.epochs = 20;
  topt.task_batch_size = 10;
  topt.local_steps = 2;
  topt.local_batch_size = 8;
  topt.local_lr = 0.2;
  topt.global_lr = 0.3;
  ASSERT_TRUE(MetaTrain(train_tasks, topt, rng_.get(), &meta, nullptr).ok());

  MetaLearner random(LearnerOptions(true), rng_.get());

  const std::vector<EncodedMetaTask> test_tasks = MakeTasks(10);
  double meta_loss = 0.0;
  double random_loss = 0.0;
  for (const EncodedMetaTask& task : test_tasks) {
    TaskModel tm_meta = meta.CreateTaskModel(task.uis_feature);
    TaskModel tm_rand = random.CreateTaskModel(task.uis_feature);
    // Paired adaptation randomness so the comparison is apples-to-apples.
    Rng rng_a(1234);
    Rng rng_b(1234);
    LocallyAdapt(&tm_meta, task.support_x, task.support_y, 8, 8, 0.2, &rng_a);
    LocallyAdapt(&tm_rand, task.support_x, task.support_y, 8, 8, 0.2, &rng_b);
    meta_loss += tm_meta.EvaluateLoss(task.query_x, task.query_y);
    random_loss += tm_rand.EvaluateLoss(task.query_x, task.query_y);
  }
  EXPECT_LT(meta_loss, random_loss);
}

TEST_F(MetaTrainerTest, ReptileAlsoBeatsRandomInitialization) {
  // The framework claims orthogonality to the meta-learning algorithm
  // (paper Section VI-B); Reptile must also produce an initialization that
  // adapts better than random.
  const std::vector<EncodedMetaTask> train_tasks = MakeTasks(150);
  MetaLearner meta(LearnerOptions(true), rng_.get());
  MetaTrainerOptions topt;
  topt.algorithm = MetaAlgorithm::kReptile;
  topt.epochs = 20;
  topt.task_batch_size = 10;
  topt.local_steps = 4;
  topt.local_batch_size = 8;
  topt.local_lr = 0.2;
  topt.global_lr = 0.5;  // Reptile steps are parameter deltas, not grads.
  ASSERT_TRUE(MetaTrain(train_tasks, topt, rng_.get(), &meta, nullptr).ok());

  MetaLearner random(LearnerOptions(true), rng_.get());
  const std::vector<EncodedMetaTask> test_tasks = MakeTasks(10);
  double meta_loss = 0.0;
  double random_loss = 0.0;
  for (const EncodedMetaTask& task : test_tasks) {
    TaskModel tm_meta = meta.CreateTaskModel(task.uis_feature);
    TaskModel tm_rand = random.CreateTaskModel(task.uis_feature);
    Rng rng_a(77);
    Rng rng_b(77);
    LocallyAdapt(&tm_meta, task.support_x, task.support_y, 8, 8, 0.2, &rng_a);
    LocallyAdapt(&tm_rand, task.support_x, task.support_y, 8, 8, 0.2, &rng_b);
    meta_loss += tm_meta.EvaluateLoss(task.query_x, task.query_y);
    random_loss += tm_rand.EvaluateLoss(task.query_x, task.query_y);
  }
  EXPECT_LT(meta_loss, random_loss);
}

TEST_F(MetaTrainerTest, ParallelTrainingIsThreadCountInvariant) {
  // The batch parallelization must be bit-identical to sequential training:
  // per-task forked RNGs, ordered aggregation, ordered memory writes.
  const std::vector<EncodedMetaTask> tasks = MakeTasks(30);
  auto train_with = [&](int64_t threads) {
    Rng rng(1234);
    MetaLearner learner(LearnerOptions(true), &rng);
    MetaTrainerOptions topt;
    topt.epochs = 3;
    topt.task_batch_size = 10;
    topt.local_steps = 3;
    topt.local_batch_size = 8;
    topt.num_threads = threads;
    MetaTrainStats stats;
    EXPECT_TRUE(MetaTrain(tasks, topt, &rng, &learner, &stats).ok());
    std::vector<double> params = learner.phi_r().GetParameters();
    const std::vector<double> tau = learner.phi_tau().GetParameters();
    const std::vector<double> clf = learner.phi_clf().GetParameters();
    params.insert(params.end(), tau.begin(), tau.end());
    params.insert(params.end(), clf.begin(), clf.end());
    params.insert(params.end(), stats.epoch_query_loss.begin(),
                  stats.epoch_query_loss.end());
    return params;
  };
  const std::vector<double> sequential = train_with(1);
  const std::vector<double> parallel4 = train_with(4);
  ASSERT_EQ(sequential.size(), parallel4.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    ASSERT_DOUBLE_EQ(sequential[i], parallel4[i]) << "param " << i;
  }
}

TEST_F(MetaTrainerTest, InvalidOptionsRejected) {
  const std::vector<EncodedMetaTask> tasks = MakeTasks(2);
  MetaLearner learner(LearnerOptions(false), rng_.get());
  MetaTrainerOptions topt;
  topt.epochs = 0;
  EXPECT_FALSE(MetaTrain(tasks, topt, rng_.get(), &learner, nullptr).ok());
  topt = MetaTrainerOptions{};
  EXPECT_FALSE(MetaTrain({}, topt, rng_.get(), &learner, nullptr).ok());
}

}  // namespace
}  // namespace lte::core
