#include "common/math_util.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lte {
namespace {

TEST(MathUtilTest, SquaredDistance) {
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({1, 1, 1}, {1, 1, 1}), 0.0);
}

TEST(MathUtilTest, EuclideanDistance) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
}

TEST(MathUtilTest, DotAndNorm) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Norm({3, 4}), 5.0);
}

TEST(MathUtilTest, CosineSimilarity) {
  EXPECT_NEAR(CosineSimilarity({1, 0}, {1, 0}), 1.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1, 0}, {0, 1}), 0.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1, 0}, {-1, 0}), -1.0, 1e-12);
  // Zero vector convention.
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, {1, 1}), 0.0);
}

TEST(MathUtilTest, SoftmaxSumsToOneAndOrders) {
  std::vector<double> v = {1.0, 2.0, 3.0};
  SoftmaxInPlace(&v);
  EXPECT_NEAR(v[0] + v[1] + v[2], 1.0, 1e-12);
  EXPECT_LT(v[0], v[1]);
  EXPECT_LT(v[1], v[2]);
}

TEST(MathUtilTest, SoftmaxStableForLargeInputs) {
  std::vector<double> v = {1000.0, 1000.0};
  SoftmaxInPlace(&v);
  EXPECT_NEAR(v[0], 0.5, 1e-12);
  EXPECT_NEAR(v[1], 0.5, 1e-12);
}

TEST(MathUtilTest, SoftmaxEmptyIsNoop) {
  std::vector<double> v;
  SoftmaxInPlace(&v);
  EXPECT_TRUE(v.empty());
}

TEST(MathUtilTest, MeanAndVariance) {
  EXPECT_DOUBLE_EQ(Mean({2, 4, 6}), 4.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({2, 4, 6}), 8.0 / 3.0);
  EXPECT_DOUBLE_EQ(Variance({5}), 0.0);
}

TEST(MathUtilTest, LogGaussianPdfMatchesClosedForm) {
  const double lp = LogGaussianPdf(0.0, 0.0, 1.0);
  EXPECT_NEAR(lp, -0.5 * std::log(2.0 * M_PI), 1e-12);
  // Variance floor prevents -inf.
  EXPECT_TRUE(std::isfinite(LogGaussianPdf(1.0, 0.0, 0.0)));
}

TEST(MathUtilTest, Clamp) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(MathUtilTest, ArgSmallestK) {
  const std::vector<double> v = {5.0, 1.0, 4.0, 2.0, 3.0};
  const std::vector<size_t> idx = ArgSmallestK(v, 3);
  EXPECT_EQ(idx, (std::vector<size_t>{1, 3, 4}));
}

TEST(MathUtilTest, ArgSmallestKZero) {
  EXPECT_TRUE(ArgSmallestK({1.0, 2.0}, 0).empty());
}

TEST(MathUtilTest, ArgSmallestKAll) {
  const std::vector<size_t> idx = ArgSmallestK({3.0, 1.0, 2.0}, 3);
  EXPECT_EQ(idx, (std::vector<size_t>{1, 2, 0}));
}

// Ties order lexicographically by (value, index): equal values keep
// ascending index order, for any k cut through the tie group. Suggestion
// policies lean on this — perturbed uncertainty scores collide routinely,
// and the selection must still be reproducible.
TEST(MathUtilTest, ArgSmallestKBreaksTiesByIndex) {
  const std::vector<double> v = {2.0, 1.0, 2.0, 1.0, 0.5, 1.0};
  EXPECT_EQ(ArgSmallestK(v, 6), (std::vector<size_t>{4, 1, 3, 5, 0, 2}));
  // A cut straight through the tie group takes its lowest indices.
  EXPECT_EQ(ArgSmallestK(v, 3), (std::vector<size_t>{4, 1, 3}));
  EXPECT_EQ(ArgSmallestK(std::vector<double>(4, 7.0), 2),
            (std::vector<size_t>{0, 1}));
}

}  // namespace
}  // namespace lte
