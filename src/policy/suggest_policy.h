#ifndef LTE_POLICY_SUGGEST_POLICY_H_
#define LTE_POLICY_SUGGEST_POLICY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/rng.h"
#include "common/status.h"

namespace lte::policy {

/// Which acquisition strategy `ExplorationSession::SuggestTuples` runs
/// (DESIGN.md §2f "Exploration policies"). The menu follows the classic
/// exploration-library catalog (epsilon-greedy, tau-first, softmax,
/// bootstrap) on top of the paper's pure uncertainty sampling.
enum class PolicyKind : uint64_t {
  /// The paper's default: rank candidates by |P(interesting) - 0.5| and take
  /// the k most uncertain. Fully deterministic; never draws from the rng.
  kUncertainty = 0,
  /// Uncertainty sampling, but each of the k slots is filled with a uniform
  /// random (unpicked) candidate with probability epsilon — keeps a trickle
  /// of off-boundary labels flowing so a miscalibrated classifier cannot
  /// lock onto a wrong boundary.
  kEpsilonGreedy = 1,
  /// The first tau suggestions (across calls — the counter is policy state)
  /// are uniform random; afterwards pure uncertainty. Frontloads unbiased
  /// coverage of the subspace before trusting the adapted model.
  kTauFirst = 2,
  /// Samples k candidates without replacement with probability proportional
  /// to exp(-lambda * |P - 0.5|): a temperature-controlled softening of
  /// uncertainty sampling (lambda -> inf recovers it, lambda = 0 is uniform).
  kSoftmax = 3,
  /// Query-by-committee over a bag of perturbed task models: each bag
  /// applies its own pseudo-random logit perturbation (equivalent to a
  /// bias-perturbed copy of the classifier, so the shared batch probability
  /// kernel is reused unchanged) and votes; candidates whose votes split
  /// closest to even are suggested. The committee smooths single-model
  /// miscalibration, which is exactly what noisy oracle labels produce — the
  /// policy expected to win under label noise (bench_label_noise).
  kBootstrap = 4,
};

/// Human-readable policy name ("uncertainty", "epsilon_greedy", ...), used
/// by the bench JSON sweep axes and error messages.
std::string PolicyKindName(PolicyKind kind);

/// Strategy choice plus per-strategy parameters. Carried by
/// `core::ExplorerOptions` (the default for new sessions; a host knob, never
/// serialized with the model) and per session via
/// `ExplorationSession::ConfigureSuggestPolicy`. Parameters are validated by
/// `MakePolicy`/`ConfigureSuggestPolicy`, not at struct fill time.
struct PolicyOptions {
  PolicyKind kind = PolicyKind::kUncertainty;
  /// kEpsilonGreedy: probability a slot is filled uniformly at random.
  double epsilon = 0.1;
  /// kTauFirst: number of uniform-random suggestions before handing off.
  int64_t tau = 30;
  /// kSoftmax: inverse temperature over the uncertainty score.
  double softmax_lambda = 12.0;
  /// kBootstrap: committee size (bag count).
  int64_t bootstrap_bags = 8;
  /// kBootstrap: stddev of each bag's logit perturbation.
  double bootstrap_sigma = 1.0;
};

/// Returns OK iff the parameters are in range for the chosen kind (epsilon
/// in [0, 1], tau >= 0, lambda >= 0, bags in [1, 1024], sigma >= 0, all
/// finite).
Status ValidatePolicyOptions(const PolicyOptions& options);

/// One subspace's pluggable acquisition strategy: given the shared
/// per-candidate probability vector (computed once by the session through
/// the columnar batch kernels), selects the k tuples most worth labelling
/// next.
///
/// Determinism contract: `Select` is sequential and draws only from the
/// caller-supplied `Rng` (the session-owned stream), so a policy's
/// suggestion sequence is bit-identical at any thread count and resumes
/// draw-for-draw across a Save/Load (session format v2 persists both the
/// rng and the policy state — see SaveState/LoadState). Policies whose
/// `stochastic()` is false never touch the rng and work on sessions that
/// never seeded one.
///
/// Thread-safety: single-writer, like the session's mutating calls — one
/// policy instance belongs to one subspace of one session.
class SuggestPolicy {
 public:
  virtual ~SuggestPolicy() = default;

  SuggestPolicy(const SuggestPolicy&) = delete;
  SuggestPolicy& operator=(const SuggestPolicy&) = delete;

  virtual PolicyKind kind() const = 0;
  const PolicyOptions& options() const { return options_; }

  /// True when Select draws from the rng. The session maps a stochastic
  /// policy with no session rng to FailedPrecondition before calling.
  virtual bool stochastic() const = 0;

  /// Stores the indices of the `k` candidates most worth labelling (fewer
  /// when `probs` is smaller than `k`) in `*out`, in selection order.
  /// `probs[i]` is the adapted classifier's P(interesting) for candidate i.
  /// `rng` may be null iff `stochastic()` is false. Ties on equal scores
  /// break toward the lower candidate index (see ArgSmallestK), so the
  /// output is reproducible even when perturbed scores collide.
  virtual void Select(std::span<const double> probs, int64_t k, Rng* rng,
                      std::vector<int64_t>* out) = 0;

  /// Serialization of the *mutable* policy state (tau counters, bootstrap
  /// bag seeds) for session checkpoint format v2. The parameters travel in
  /// the envelope written by `SavePolicy`; stateless policies write/read
  /// nothing here.
  virtual void SaveState(BinaryWriter* writer) const;
  virtual Status LoadState(BinaryReader* reader);

 protected:
  explicit SuggestPolicy(const PolicyOptions& options) : options_(options) {}

  PolicyOptions options_;
};

/// Instantiates the policy for one subspace. `seed_rng` supplies seed
/// material for policies that pre-draw randomized construction state
/// (bootstrap bag seeds); policies without such state never touch it, and it
/// may then be null. Fails on out-of-range parameters
/// (ValidatePolicyOptions) or a bootstrap construction without seed
/// material.
Status MakePolicy(const PolicyOptions& options, Rng* seed_rng,
                  std::unique_ptr<SuggestPolicy>* out);

/// Serialization envelope for session checkpoint format v2: kind, the full
/// parameter block, then the kind-specific mutable state.
void SavePolicy(const SuggestPolicy& policy, BinaryWriter* writer);

/// Reconstructs a policy (parameters + state) written by SavePolicy,
/// validating kind and parameters so a corrupted stream surfaces as an error
/// Status instead of a malformed policy.
Status LoadPolicy(BinaryReader* reader, std::unique_ptr<SuggestPolicy>* out);

}  // namespace lte::policy

#endif  // LTE_POLICY_SUGGEST_POLICY_H_
