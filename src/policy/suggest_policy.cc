#include "policy/suggest_policy.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/math_util.h"

namespace lte::policy {
namespace {

/// Uncertainty score: distance of P(interesting) from the decision boundary
/// (smaller = more informative, matching ArgSmallestK's ascending order).
double UncertaintyScore(double p) { return std::abs(p - 0.5); }

/// Index of the untaken candidate with the lexicographically smallest
/// (score, index) — the deterministic greedy pick every policy's
/// exploitation arm shares. Requires at least one untaken candidate.
int64_t GreedyPick(const std::vector<double>& scores,
                   const std::vector<uint8_t>& taken) {
  int64_t best = -1;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (taken[i]) continue;
    if (best < 0 || scores[i] < scores[static_cast<size_t>(best)]) {
      best = static_cast<int64_t>(i);
    }
  }
  LTE_CHECK_GE(best, 0);
  return best;
}

/// The j-th (0-based) untaken index in ascending index order — maps a
/// uniform draw over the remaining candidates to a concrete index the same
/// way regardless of selection history representation.
int64_t NthUntaken(const std::vector<uint8_t>& taken, int64_t j) {
  for (size_t i = 0; i < taken.size(); ++i) {
    if (taken[i]) continue;
    if (j == 0) return static_cast<int64_t>(i);
    --j;
  }
  LTE_CHECK_MSG(false, "policy: uniform pick past the remaining candidates");
  return -1;  // Unreachable.
}

class UncertaintyPolicy final : public SuggestPolicy {
 public:
  explicit UncertaintyPolicy(const PolicyOptions& options)
      : SuggestPolicy(options) {}

  PolicyKind kind() const override { return PolicyKind::kUncertainty; }
  bool stochastic() const override { return false; }

  void Select(std::span<const double> probs, int64_t k, Rng* /*rng*/,
              std::vector<int64_t>* out) override {
    out->clear();
    std::vector<double> scores;
    scores.reserve(probs.size());
    for (double p : probs) scores.push_back(UncertaintyScore(p));
    const size_t take =
        std::min(static_cast<size_t>(std::max<int64_t>(k, 0)), scores.size());
    for (size_t i : ArgSmallestK(scores, take)) {
      out->push_back(static_cast<int64_t>(i));
    }
  }
};

class EpsilonGreedyPolicy final : public SuggestPolicy {
 public:
  explicit EpsilonGreedyPolicy(const PolicyOptions& options)
      : SuggestPolicy(options) {}

  PolicyKind kind() const override { return PolicyKind::kEpsilonGreedy; }
  bool stochastic() const override { return true; }

  void Select(std::span<const double> probs, int64_t k, Rng* rng,
              std::vector<int64_t>* out) override {
    out->clear();
    const auto n = static_cast<int64_t>(probs.size());
    const int64_t take = std::min(std::max<int64_t>(k, 0), n);
    if (take == 0) return;
    std::vector<double> scores;
    scores.reserve(probs.size());
    for (double p : probs) scores.push_back(UncertaintyScore(p));
    std::vector<uint8_t> taken(probs.size(), 0);
    for (int64_t slot = 0; slot < take; ++slot) {
      const int64_t remaining = n - slot;
      // One Bernoulli per slot, drawn even at epsilon = 0 so the rng
      // consumption pattern does not depend on the parameter value; the
      // epsilon = 0 *output* is exactly uncertainty sampling.
      const int64_t pick = rng->Bernoulli(options_.epsilon)
                               ? NthUntaken(taken, rng->UniformInt(remaining))
                               : GreedyPick(scores, taken);
      taken[static_cast<size_t>(pick)] = 1;
      out->push_back(pick);
    }
  }
};

class TauFirstPolicy final : public SuggestPolicy {
 public:
  explicit TauFirstPolicy(const PolicyOptions& options)
      : SuggestPolicy(options) {}

  PolicyKind kind() const override { return PolicyKind::kTauFirst; }
  bool stochastic() const override { return true; }

  void Select(std::span<const double> probs, int64_t k, Rng* rng,
              std::vector<int64_t>* out) override {
    out->clear();
    const auto n = static_cast<int64_t>(probs.size());
    const int64_t take = std::min(std::max<int64_t>(k, 0), n);
    if (take == 0) return;
    // A batch straddling the tau boundary splits: the first
    // tau - suggested_so_far slots stay uniform, the rest hand off to the
    // greedy arm mid-call.
    const int64_t random_slots = std::clamp<int64_t>(
        options_.tau - suggested_so_far_, 0, take);
    std::vector<double> scores;
    scores.reserve(probs.size());
    for (double p : probs) scores.push_back(UncertaintyScore(p));
    std::vector<uint8_t> taken(probs.size(), 0);
    for (int64_t slot = 0; slot < take; ++slot) {
      const int64_t remaining = n - slot;
      const int64_t pick = slot < random_slots
                               ? NthUntaken(taken, rng->UniformInt(remaining))
                               : GreedyPick(scores, taken);
      taken[static_cast<size_t>(pick)] = 1;
      out->push_back(pick);
    }
    suggested_so_far_ += take;
  }

  void SaveState(BinaryWriter* writer) const override {
    writer->WriteI64(suggested_so_far_);
  }

  Status LoadState(BinaryReader* reader) override {
    int64_t count = 0;
    LTE_RETURN_IF_ERROR(reader->ReadI64(&count));
    if (count < 0) {
      return Status::IoError("policy load: negative tau-first counter");
    }
    suggested_so_far_ = count;
    return Status::OK();
  }

 private:
  /// Lifetime suggestion count — the exploration phase survives Save/Load.
  int64_t suggested_so_far_ = 0;
};

class SoftmaxPolicy final : public SuggestPolicy {
 public:
  explicit SoftmaxPolicy(const PolicyOptions& options)
      : SuggestPolicy(options) {}

  PolicyKind kind() const override { return PolicyKind::kSoftmax; }
  bool stochastic() const override { return true; }

  void Select(std::span<const double> probs, int64_t k, Rng* rng,
              std::vector<int64_t>* out) override {
    out->clear();
    const auto n = static_cast<int64_t>(probs.size());
    const int64_t take = std::min(std::max<int64_t>(k, 0), n);
    if (take == 0) return;
    // Scores live in [0, 0.5], so the exponent is in [-lambda/2, 0]: no
    // overflow, and underflow to an all-zero mass simply falls back to the
    // greedy pick below.
    std::vector<double> scores;
    std::vector<double> weights;
    scores.reserve(probs.size());
    weights.reserve(probs.size());
    for (double p : probs) {
      const double s = UncertaintyScore(p);
      scores.push_back(s);
      weights.push_back(std::exp(-options_.softmax_lambda * s));
    }
    std::vector<uint8_t> taken(probs.size(), 0);
    for (int64_t slot = 0; slot < take; ++slot) {
      double total = 0.0;
      for (size_t i = 0; i < weights.size(); ++i) {
        if (!taken[i]) total += weights[i];
      }
      int64_t pick = -1;
      if (total > 0.0) {
        const double u = rng->Uniform(0.0, total);
        double cum = 0.0;
        for (size_t i = 0; i < weights.size(); ++i) {
          if (taken[i]) continue;
          cum += weights[i];
          if (u < cum) {
            pick = static_cast<int64_t>(i);
            break;
          }
        }
        // Floating-point edge: u landed on the accumulated total. Take the
        // last remaining candidate (the one the < test just missed).
        if (pick < 0) pick = NthUntaken(taken, n - slot - 1);
      } else {
        pick = GreedyPick(scores, taken);
      }
      taken[static_cast<size_t>(pick)] = 1;
      out->push_back(pick);
    }
  }
};

class BootstrapPolicy final : public SuggestPolicy {
 public:
  BootstrapPolicy(const PolicyOptions& options, std::vector<uint64_t> seeds)
      : SuggestPolicy(options), bag_seeds_(std::move(seeds)) {}

  PolicyKind kind() const override { return PolicyKind::kBootstrap; }
  bool stochastic() const override { return true; }

  void Select(std::span<const double> probs, int64_t k, Rng* rng,
              std::vector<int64_t>* out) override {
    out->clear();
    const auto n = static_cast<int64_t>(probs.size());
    const int64_t take = std::min(std::max<int64_t>(k, 0), n);
    if (take == 0) return;
    // One session-rng draw keys this call's committee noise: bag b replays
    // the keyed stream Rng(seed_b).Fork(call_key), a pure function of the
    // persisted bag seed and the persisted session rng — so the vote is
    // reproducible across thread counts and across a Save/Load boundary.
    const uint64_t call_key = rng->engine()();
    std::vector<double> logits;
    logits.reserve(probs.size());
    for (double p : probs) {
      const double clamped = Clamp(p, 1e-12, 1.0 - 1e-12);
      logits.push_back(std::log(clamped / (1.0 - clamped)));
    }
    // Each bag is a bias-perturbed copy of the task model: adding bag noise
    // to the logit is exactly perturbing the classifier head's bias, so the
    // committee reuses the one shared probability vector instead of running
    // bags * candidates forward passes.
    std::vector<int64_t> votes(probs.size(), 0);
    for (const uint64_t seed : bag_seeds_) {
      Rng bag_rng = Rng(seed).Fork(call_key);
      for (size_t i = 0; i < logits.size(); ++i) {
        if (logits[i] + bag_rng.Normal(0.0, options_.bootstrap_sigma) > 0.0) {
          ++votes[i];
        }
      }
    }
    // Most-split vote first; ties fall back to the base uncertainty, then
    // the candidate index, so perturbation-induced score collisions stay
    // deterministic.
    const auto bags = static_cast<double>(bag_seeds_.size());
    std::vector<int64_t> order(probs.size());
    std::iota(order.begin(), order.end(), int64_t{0});
    std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
      const double sa =
          std::abs(static_cast<double>(votes[static_cast<size_t>(a)]) / bags -
                   0.5);
      const double sb =
          std::abs(static_cast<double>(votes[static_cast<size_t>(b)]) / bags -
                   0.5);
      if (sa != sb) return sa < sb;
      const double ua = UncertaintyScore(probs[static_cast<size_t>(a)]);
      const double ub = UncertaintyScore(probs[static_cast<size_t>(b)]);
      if (ua != ub) return ua < ub;
      return a < b;
    });
    out->assign(order.begin(), order.begin() + take);
  }

  void SaveState(BinaryWriter* writer) const override {
    writer->WriteU64(bag_seeds_.size());
    for (uint64_t seed : bag_seeds_) writer->WriteU64(seed);
  }

  Status LoadState(BinaryReader* reader) override {
    uint64_t count = 0;
    LTE_RETURN_IF_ERROR(reader->ReadU64(&count));
    if (count != static_cast<uint64_t>(options_.bootstrap_bags)) {
      return Status::IoError(
          "policy load: bootstrap seed count disagrees with bag count");
    }
    std::vector<uint64_t> seeds(static_cast<size_t>(count));
    for (uint64_t& seed : seeds) LTE_RETURN_IF_ERROR(reader->ReadU64(&seed));
    bag_seeds_ = std::move(seeds);
    return Status::OK();
  }

 private:
  /// One seed per committee member, drawn once at construction (and restored
  /// verbatim by LoadState): the bag's identity across the session lifetime.
  std::vector<uint64_t> bag_seeds_;
};

/// Shell construction for LoadPolicy (state arrives from the stream).
std::unique_ptr<SuggestPolicy> NewPolicyShell(const PolicyOptions& options) {
  switch (options.kind) {
    case PolicyKind::kUncertainty:
      return std::make_unique<UncertaintyPolicy>(options);
    case PolicyKind::kEpsilonGreedy:
      return std::make_unique<EpsilonGreedyPolicy>(options);
    case PolicyKind::kTauFirst:
      return std::make_unique<TauFirstPolicy>(options);
    case PolicyKind::kSoftmax:
      return std::make_unique<SoftmaxPolicy>(options);
    case PolicyKind::kBootstrap:
      return std::make_unique<BootstrapPolicy>(options,
                                               std::vector<uint64_t>{});
  }
  return nullptr;
}

}  // namespace

std::string PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kUncertainty:
      return "uncertainty";
    case PolicyKind::kEpsilonGreedy:
      return "epsilon_greedy";
    case PolicyKind::kTauFirst:
      return "tau_first";
    case PolicyKind::kSoftmax:
      return "softmax";
    case PolicyKind::kBootstrap:
      return "bootstrap";
  }
  return "?";
}

Status ValidatePolicyOptions(const PolicyOptions& options) {
  if (options.kind > PolicyKind::kBootstrap) {
    return Status::InvalidArgument("policy: unknown kind");
  }
  if (!std::isfinite(options.epsilon) || options.epsilon < 0.0 ||
      options.epsilon > 1.0) {
    return Status::InvalidArgument("policy: epsilon must be in [0, 1]");
  }
  if (options.tau < 0) {
    return Status::InvalidArgument("policy: tau must be >= 0");
  }
  if (!std::isfinite(options.softmax_lambda) || options.softmax_lambda < 0.0) {
    return Status::InvalidArgument(
        "policy: softmax_lambda must be finite and >= 0");
  }
  if (options.bootstrap_bags < 1 || options.bootstrap_bags > 1024) {
    return Status::InvalidArgument(
        "policy: bootstrap_bags must be in [1, 1024]");
  }
  if (!std::isfinite(options.bootstrap_sigma) ||
      options.bootstrap_sigma < 0.0) {
    return Status::InvalidArgument(
        "policy: bootstrap_sigma must be finite and >= 0");
  }
  return Status::OK();
}

void SuggestPolicy::SaveState(BinaryWriter* /*writer*/) const {}

Status SuggestPolicy::LoadState(BinaryReader* /*reader*/) {
  return Status::OK();
}

Status MakePolicy(const PolicyOptions& options, Rng* seed_rng,
                  std::unique_ptr<SuggestPolicy>* out) {
  if (out == nullptr) {
    return Status::InvalidArgument("policy: out must not be null");
  }
  LTE_RETURN_IF_ERROR(ValidatePolicyOptions(options));
  if (options.kind == PolicyKind::kBootstrap) {
    if (seed_rng == nullptr) {
      return Status::FailedPrecondition(
          "policy: bootstrap construction needs rng seed material");
    }
    std::vector<uint64_t> seeds(static_cast<size_t>(options.bootstrap_bags));
    for (uint64_t& seed : seeds) seed = seed_rng->engine()();
    *out = std::make_unique<BootstrapPolicy>(options, std::move(seeds));
    return Status::OK();
  }
  *out = NewPolicyShell(options);
  LTE_CHECK(*out != nullptr);
  return Status::OK();
}

void SavePolicy(const SuggestPolicy& policy, BinaryWriter* writer) {
  const PolicyOptions& opt = policy.options();
  writer->WriteU64(static_cast<uint64_t>(policy.kind()));
  writer->WriteDouble(opt.epsilon);
  writer->WriteI64(opt.tau);
  writer->WriteDouble(opt.softmax_lambda);
  writer->WriteI64(opt.bootstrap_bags);
  writer->WriteDouble(opt.bootstrap_sigma);
  policy.SaveState(writer);
}

Status LoadPolicy(BinaryReader* reader, std::unique_ptr<SuggestPolicy>* out) {
  if (out == nullptr) {
    return Status::InvalidArgument("policy: out must not be null");
  }
  uint64_t kind = 0;
  LTE_RETURN_IF_ERROR(reader->ReadU64(&kind));
  if (kind > static_cast<uint64_t>(PolicyKind::kBootstrap)) {
    return Status::IoError("policy load: unknown policy kind " +
                           std::to_string(kind));
  }
  PolicyOptions options;
  options.kind = static_cast<PolicyKind>(kind);
  LTE_RETURN_IF_ERROR(reader->ReadDouble(&options.epsilon));
  LTE_RETURN_IF_ERROR(reader->ReadI64(&options.tau));
  LTE_RETURN_IF_ERROR(reader->ReadDouble(&options.softmax_lambda));
  LTE_RETURN_IF_ERROR(reader->ReadI64(&options.bootstrap_bags));
  LTE_RETURN_IF_ERROR(reader->ReadDouble(&options.bootstrap_sigma));
  const Status valid = ValidatePolicyOptions(options);
  if (!valid.ok()) {
    return Status::IoError("policy load: " + valid.message());
  }
  std::unique_ptr<SuggestPolicy> policy = NewPolicyShell(options);
  LTE_CHECK(policy != nullptr);
  LTE_RETURN_IF_ERROR(policy->LoadState(reader));
  *out = std::move(policy);
  return Status::OK();
}

}  // namespace lte::policy
