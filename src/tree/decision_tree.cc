#include "tree/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace lte::tree {
namespace {

// Gini impurity of a node with `pos` positives among `n` samples.
double Gini(double pos, double n) {
  if (n <= 0.0) return 0.0;
  const double p = pos / n;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

Status DecisionTree::Train(const std::vector<std::vector<double>>& features,
                           const std::vector<double>& labels) {
  if (features.empty()) {
    return Status::InvalidArgument("decision tree: empty training set");
  }
  if (features.size() != labels.size()) {
    return Status::InvalidArgument("decision tree: features/labels mismatch");
  }
  num_features_ = static_cast<int64_t>(features.front().size());
  for (const auto& f : features) {
    if (static_cast<int64_t>(f.size()) != num_features_) {
      return Status::InvalidArgument("decision tree: ragged features");
    }
  }
  for (double y : labels) {
    if (y != 0.0 && y != 1.0) {
      return Status::InvalidArgument("decision tree: labels must be 0 or 1");
    }
  }
  nodes_.clear();
  depth_ = 0;
  std::vector<int64_t> indices(features.size());
  std::iota(indices.begin(), indices.end(), int64_t{0});
  Build(features, labels, &indices, 0, static_cast<int64_t>(indices.size()),
        0);
  return Status::OK();
}

int64_t DecisionTree::Build(const std::vector<std::vector<double>>& features,
                            const std::vector<double>& labels,
                            std::vector<int64_t>* indices, int64_t begin,
                            int64_t end, int64_t depth) {
  depth_ = std::max(depth_, depth);
  const int64_t n = end - begin;
  double positives = 0.0;
  for (int64_t i = begin; i < end; ++i) {
    positives += labels[static_cast<size_t>((*indices)[static_cast<size_t>(i)])];
  }

  const int64_t node_id = static_cast<int64_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[static_cast<size_t>(node_id)].num_samples = n;
  nodes_[static_cast<size_t>(node_id)].positive_fraction =
      n > 0 ? positives / static_cast<double>(n) : 0.0;

  const double impurity = Gini(positives, static_cast<double>(n));
  if (depth >= options_.max_depth || n < options_.min_samples_split ||
      impurity <= options_.min_impurity) {
    return node_id;
  }

  // Exhaustive best split: for each feature, sort the node's rows by that
  // feature and scan the split points.
  double best_gain = 0.0;
  int64_t best_feature = -1;
  double best_threshold = 0.0;
  std::vector<int64_t> node_rows(indices->begin() + begin,
                                 indices->begin() + end);
  for (int64_t f = 0; f < num_features_; ++f) {
    std::sort(node_rows.begin(), node_rows.end(), [&](int64_t a, int64_t b) {
      return features[static_cast<size_t>(a)][static_cast<size_t>(f)] <
             features[static_cast<size_t>(b)][static_cast<size_t>(f)];
    });
    double left_pos = 0.0;
    for (int64_t i = 0; i + 1 < n; ++i) {
      left_pos += labels[static_cast<size_t>(node_rows[static_cast<size_t>(i)])];
      const double x_i =
          features[static_cast<size_t>(node_rows[static_cast<size_t>(i)])]
                  [static_cast<size_t>(f)];
      const double x_next =
          features[static_cast<size_t>(node_rows[static_cast<size_t>(i + 1)])]
                  [static_cast<size_t>(f)];
      if (x_i == x_next) continue;  // No split between equal values.
      const int64_t left_n = i + 1;
      const int64_t right_n = n - left_n;
      if (left_n < options_.min_samples_leaf ||
          right_n < options_.min_samples_leaf) {
        continue;
      }
      const double right_pos = positives - left_pos;
      const double weighted =
          (static_cast<double>(left_n) * Gini(left_pos, static_cast<double>(left_n)) +
           static_cast<double>(right_n) *
               Gini(right_pos, static_cast<double>(right_n))) /
          static_cast<double>(n);
      const double gain = impurity - weighted;
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5 * (x_i + x_next);
      }
    }
  }
  if (best_feature < 0) return node_id;

  // Partition the index range by the chosen split.
  const auto mid_it = std::partition(
      indices->begin() + begin, indices->begin() + end, [&](int64_t row) {
        return features[static_cast<size_t>(row)]
                       [static_cast<size_t>(best_feature)] <= best_threshold;
      });
  const int64_t mid = mid_it - indices->begin();
  if (mid == begin || mid == end) return node_id;  // Degenerate partition.

  const int64_t left = Build(features, labels, indices, begin, mid, depth + 1);
  const int64_t right = Build(features, labels, indices, mid, end, depth + 1);
  Node& node = nodes_[static_cast<size_t>(node_id)];
  node.is_leaf = false;
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_id;
}

double DecisionTree::PredictProbability(const std::vector<double>& x) const {
  LTE_CHECK_MSG(trained(), "decision tree: Predict before Train");
  LTE_CHECK_EQ(static_cast<int64_t>(x.size()), num_features_);
  int64_t node = 0;
  while (!nodes_[static_cast<size_t>(node)].is_leaf) {
    const Node& cur = nodes_[static_cast<size_t>(node)];
    node = x[static_cast<size_t>(cur.feature)] <= cur.threshold ? cur.left
                                                                : cur.right;
  }
  return nodes_[static_cast<size_t>(node)].positive_fraction;
}

double DecisionTree::Predict(const std::vector<double>& x) const {
  return PredictProbability(x) > 0.5 ? 1.0 : 0.0;
}

void DecisionTree::CollectPaths(int64_t node, std::vector<double>* lower,
                                std::vector<double>* upper,
                                std::vector<PositivePath>* out) const {
  const Node& cur = nodes_[static_cast<size_t>(node)];
  if (cur.is_leaf) {
    if (cur.positive_fraction > 0.5) {
      PositivePath path;
      path.lower = *lower;
      path.upper = *upper;
      path.probability = cur.positive_fraction;
      path.support = cur.num_samples;
      out->push_back(std::move(path));
    }
    return;
  }
  const auto f = static_cast<size_t>(cur.feature);
  // Left: x[f] <= threshold.
  const double saved_upper = (*upper)[f];
  (*upper)[f] = std::min((*upper)[f], cur.threshold);
  CollectPaths(cur.left, lower, upper, out);
  (*upper)[f] = saved_upper;
  // Right: x[f] > threshold.
  const double saved_lower = (*lower)[f];
  (*lower)[f] = std::max((*lower)[f], cur.threshold);
  CollectPaths(cur.right, lower, upper, out);
  (*lower)[f] = saved_lower;
}

std::vector<DecisionTree::PositivePath> DecisionTree::ExtractPositivePaths()
    const {
  LTE_CHECK_MSG(trained(), "decision tree: ExtractPositivePaths before Train");
  std::vector<PositivePath> out;
  std::vector<double> lower(static_cast<size_t>(num_features_),
                            -std::numeric_limits<double>::infinity());
  std::vector<double> upper(static_cast<size_t>(num_features_),
                            std::numeric_limits<double>::infinity());
  CollectPaths(0, &lower, &upper, &out);
  return out;
}

}  // namespace lte::tree
