#ifndef LTE_TREE_DECISION_TREE_H_
#define LTE_TREE_DECISION_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace lte::tree {

/// Options for CART training.
struct DecisionTreeOptions {
  int64_t max_depth = 8;
  /// A node with fewer samples becomes a leaf.
  int64_t min_samples_split = 4;
  /// Minimum samples on each side of a split.
  int64_t min_samples_leaf = 1;
  /// Stop when a node's Gini impurity falls below this.
  double min_impurity = 1e-7;
};

/// An axis-aligned binary classification tree (CART with Gini impurity).
///
/// This is the classifier behind the AIDE baseline (paper Table I: AIDE
/// explores with decision trees) and the substrate of the SQL query
/// synthesis module: each root-to-leaf path of a fitted tree is a
/// conjunction of range predicates, i.e. exactly a relational selection.
class DecisionTree {
 public:
  DecisionTree() = default;
  explicit DecisionTree(DecisionTreeOptions options) : options_(options) {}

  /// Fits the tree on rows of `features` with labels in {0, 1}. Fails on
  /// empty input, shape mismatches, or non-binary labels.
  Status Train(const std::vector<std::vector<double>>& features,
               const std::vector<double>& labels);

  bool trained() const { return !nodes_.empty(); }

  /// 0/1 prediction: majority label of the reached leaf.
  double Predict(const std::vector<double>& x) const;

  /// Fraction of positive training samples in the reached leaf — a crude
  /// class probability used for uncertainty sampling.
  double PredictProbability(const std::vector<double>& x) const;

  int64_t num_nodes() const { return static_cast<int64_t>(nodes_.size()); }
  int64_t depth() const { return depth_; }

  /// One conjunctive clause of the tree's positive region: the tightened
  /// per-feature bounds along a root-to-positive-leaf path.
  struct PositivePath {
    /// lower[f] / upper[f]: bounds on feature f (±infinity when unbounded).
    std::vector<double> lower;
    std::vector<double> upper;
    double probability = 0.0;  // Positive fraction in the leaf.
    int64_t support = 0;       // Training samples in the leaf.
  };

  /// All positive-leaf paths; the predicted positive region is their union
  /// (a union of axis-aligned boxes — AIDE's "linear" UIR representation).
  std::vector<PositivePath> ExtractPositivePaths() const;

 private:
  struct Node {
    bool is_leaf = true;
    int64_t feature = -1;
    double threshold = 0.0;
    int64_t left = -1;   // x[feature] <= threshold.
    int64_t right = -1;  // x[feature] > threshold.
    double positive_fraction = 0.0;
    int64_t num_samples = 0;
  };

  int64_t Build(const std::vector<std::vector<double>>& features,
                const std::vector<double>& labels,
                std::vector<int64_t>* indices, int64_t begin, int64_t end,
                int64_t depth);

  void CollectPaths(int64_t node, std::vector<double>* lower,
                    std::vector<double>* upper,
                    std::vector<PositivePath>* out) const;

  DecisionTreeOptions options_;
  std::vector<Node> nodes_;
  int64_t num_features_ = 0;
  int64_t depth_ = 0;
};

}  // namespace lte::tree

#endif  // LTE_TREE_DECISION_TREE_H_
