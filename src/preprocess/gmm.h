#ifndef LTE_PREPROCESS_GMM_H_
#define LTE_PREPROCESS_GMM_H_

#include <cstdint>
#include <vector>

#include "common/binary_io.h"
#include "common/rng.h"
#include "common/status.h"

namespace lte::preprocess {

/// One component of a univariate Gaussian mixture.
struct GaussianComponent {
  double weight = 0.0;
  double mean = 0.0;
  double variance = 1.0;
};

/// Univariate Gaussian mixture model fitted with EM.
///
/// The tabular encoder (paper Section VII-A, Algorithm 3) fits one GMM per
/// numeric attribute on a sampled value set; the encoding of a value is the
/// one-hot of its maximum-likelihood component plus the value normalized
/// within that component's effective range (mean ± 3σ).
class GaussianMixture {
 public:
  GaussianMixture() = default;

  /// Fits `num_components` components to `values` by EM (quantile-based
  /// initialization). Fails when values.size() < num_components or
  /// num_components <= 0.
  Status Fit(const std::vector<double>& values, int64_t num_components,
             Rng* rng, int64_t max_iterations = 100);

  int64_t num_components() const {
    return static_cast<int64_t>(components_.size());
  }
  const std::vector<GaussianComponent>& components() const {
    return components_;
  }

  /// Index of the component maximizing the posterior responsibility of x.
  int64_t MostLikelyComponent(double x) const;

  /// x normalized to [0, 1] within component `c`'s effective range
  /// [mean - 3σ, mean + 3σ] (clamped).
  double NormalizeWithin(int64_t c, double x) const;

  /// Mean per-point log-likelihood of `values` under the fitted mixture.
  double MeanLogLikelihood(const std::vector<double>& values) const;

  /// Serialization (model persistence).
  void Save(BinaryWriter* writer) const;
  Status Load(BinaryReader* reader);

 private:
  std::vector<GaussianComponent> components_;
};

}  // namespace lte::preprocess

#endif  // LTE_PREPROCESS_GMM_H_
