#ifndef LTE_PREPROCESS_JENKS_H_
#define LTE_PREPROCESS_JENKS_H_

#include <cstdint>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"

namespace lte::preprocess {

/// Jenks natural-breaks classification (Fisher's optimal partition).
///
/// Divides a numeric attribute's distribution into |b| contiguous intervals
/// minimizing within-interval variance (paper Section VII-A). The dynamic
/// program is O(|b| * n^2) on the sorted sample, so callers fit on a bounded
/// sample (the tabular encoder caps it).
class JenksBreaks {
 public:
  JenksBreaks() = default;

  /// Computes `num_intervals` optimal classes over `values`. Fails when
  /// num_intervals <= 0 or values.size() < num_intervals.
  Status Fit(const std::vector<double>& values, int64_t num_intervals);

  int64_t num_intervals() const {
    return static_cast<int64_t>(upper_bounds_.size());
  }

  /// Interval boundaries: interval i covers
  /// (upper_bounds[i-1], upper_bounds[i]], with interval 0 starting at the
  /// sample minimum. upper_bounds.back() is the sample maximum.
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  const std::vector<double>& lower_bounds() const { return lower_bounds_; }

  /// Index of the interval containing x (values beyond the fitted range
  /// clamp to the first/last interval).
  int64_t IntervalOf(double x) const;

  /// x normalized to [0, 1] within interval `i` (clamped).
  double NormalizeWithin(int64_t i, double x) const;

  /// Goodness of variance fit in [0, 1]: 1 - SSD_within / SSD_total.
  double goodness_of_fit() const { return goodness_; }

  /// Serialization (model persistence).
  void Save(BinaryWriter* writer) const;
  Status Load(BinaryReader* reader);

 private:
  std::vector<double> lower_bounds_;
  std::vector<double> upper_bounds_;
  double goodness_ = 0.0;
};

}  // namespace lte::preprocess

#endif  // LTE_PREPROCESS_JENKS_H_
