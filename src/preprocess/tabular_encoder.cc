#include "preprocess/tabular_encoder.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.h"
#include "common/math_util.h"
#include "data/sampling.h"

namespace lte::preprocess {
namespace {

// Auto-mode heuristic (paper Section VII-A): GMM suits unimodal/multimodal
// "peaky" marginals; JKC suits smooth trend-like marginals. A marginal is
// peaky when two *adjacent* substantial mixture components (sorted by mean)
// are separated by a density valley — the gap between their means exceeds
// the sum of their spreads. Only adjacent pairs matter: in a smooth
// distribution the components tile the range, so non-adjacent pairs are far
// apart without any valley between them. (A pure likelihood-gain test
// misfires for the same reason: a uniform ramp also gains likelihood from
// extra overlapping components.)
bool MixtureIsPeaky(const GaussianMixture& gmm) {
  constexpr double kMinWeight = 0.10;
  constexpr double kSeparationSigmas = 2.5;
  std::vector<GaussianComponent> comps;
  for (const GaussianComponent& c : gmm.components()) {
    if (c.weight >= kMinWeight) comps.push_back(c);
  }
  std::sort(comps.begin(), comps.end(),
            [](const GaussianComponent& a, const GaussianComponent& b) {
              return a.mean < b.mean;
            });
  for (size_t i = 0; i + 1 < comps.size(); ++i) {
    const double gap = comps[i + 1].mean - comps[i].mean;
    const double spread =
        kSeparationSigmas *
        (std::sqrt(comps[i].variance) + std::sqrt(comps[i + 1].variance));
    if (gap > spread) return true;
  }
  return false;
}

}  // namespace

Status TabularEncoder::Fit(const data::Table& table, Rng* rng) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("encoder: empty table");
  }
  num_attributes_ = table.num_columns();
  LTE_RETURN_IF_ERROR(normalizer_.Fit(table));

  // Sample rows once; all per-attribute models share the sample.
  int64_t sample_size = static_cast<int64_t>(
      options_.sample_fraction * static_cast<double>(table.num_rows()));
  sample_size = std::max(sample_size, options_.min_sample_rows);
  sample_size = std::min(sample_size, options_.max_sample_rows);
  sample_size = std::min(sample_size, table.num_rows());
  const std::vector<int64_t> rows =
      data::SampleRowIndices(table, sample_size, rng);

  gmms_.assign(static_cast<size_t>(num_attributes_), GaussianMixture{});
  jenks_.assign(static_cast<size_t>(num_attributes_), JenksBreaks{});
  attr_modes_.assign(static_cast<size_t>(num_attributes_), options_.mode);
  categories_.assign(static_cast<size_t>(num_attributes_), {});

  for (int64_t a = 0; a < num_attributes_; ++a) {
    std::vector<double> values;
    values.reserve(rows.size());
    for (int64_t r : rows) values.push_back(table.column(a).value(r));

    if (std::find(options_.categorical_attributes.begin(),
                  options_.categorical_attributes.end(),
                  a) != options_.categorical_attributes.end()) {
      LTE_RETURN_IF_ERROR(FitCategorical(a, values));
      continue;
    }

    const bool need_gmm = options_.mode == EncodingMode::kGmmOnly ||
                          options_.mode == EncodingMode::kCombined ||
                          options_.mode == EncodingMode::kAuto;
    const bool need_jenks = options_.mode == EncodingMode::kJenksOnly ||
                            options_.mode == EncodingMode::kCombined ||
                            options_.mode == EncodingMode::kAuto;
    if (need_gmm) {
      LTE_RETURN_IF_ERROR(
          gmms_[static_cast<size_t>(a)].Fit(values,
                                            options_.num_gmm_components, rng));
    }
    if (need_jenks) {
      LTE_RETURN_IF_ERROR(jenks_[static_cast<size_t>(a)].Fit(
          values, options_.num_jenks_intervals));
    }
    if (options_.mode == EncodingMode::kAuto) {
      attr_modes_[static_cast<size_t>(a)] =
          MixtureIsPeaky(gmms_[static_cast<size_t>(a)])
              ? EncodingMode::kGmmOnly
              : EncodingMode::kJenksOnly;
    }
  }
  fitted_ = true;
  return Status::OK();
}

Status TabularEncoder::FitCategorical(int64_t attr,
                                      const std::vector<double>& values) {
  if (options_.max_categories <= 0) {
    return Status::InvalidArgument("encoder: max_categories must be > 0");
  }
  std::map<double, int64_t> counts;
  for (double v : values) ++counts[v];
  // Keep the most frequent values, then store them sorted for binary search.
  std::vector<std::pair<int64_t, double>> by_freq;
  by_freq.reserve(counts.size());
  for (const auto& [value, count] : counts) by_freq.push_back({count, value});
  std::sort(by_freq.begin(), by_freq.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  if (static_cast<int64_t>(by_freq.size()) > options_.max_categories) {
    by_freq.resize(static_cast<size_t>(options_.max_categories));
  }
  std::vector<double>& cats = categories_[static_cast<size_t>(attr)];
  cats.clear();
  for (const auto& [count, value] : by_freq) cats.push_back(value);
  std::sort(cats.begin(), cats.end());
  attr_modes_[static_cast<size_t>(attr)] = EncodingMode::kCategorical;
  return Status::OK();
}

EncodingMode TabularEncoder::AttributeMode(int64_t attr) const {
  LTE_CHECK(fitted_);
  LTE_CHECK_GE(attr, 0);
  LTE_CHECK_LT(attr, num_attributes_);
  return attr_modes_[static_cast<size_t>(attr)];
}

int64_t TabularEncoder::AttributeWidth(int64_t attr) const {
  switch (AttributeMode(attr)) {
    case EncodingMode::kMinMaxOnly:
      return 1;
    case EncodingMode::kGmmOnly:
      return options_.num_gmm_components + 1;
    case EncodingMode::kJenksOnly:
      return options_.num_jenks_intervals + 1;
    case EncodingMode::kCombined:
      return options_.num_gmm_components + options_.num_jenks_intervals + 2;
    case EncodingMode::kCategorical:
      return static_cast<int64_t>(categories_[static_cast<size_t>(attr)].size()) +
             1;  // +1 for the "other" slot.
    case EncodingMode::kAuto:
      break;  // Resolved at Fit time; unreachable.
  }
  LTE_CHECK_MSG(false, "unresolved encoding mode");
  return 0;
}

int64_t TabularEncoder::ProjectedWidth(
    const std::vector<int64_t>& attrs) const {
  int64_t w = 0;
  for (int64_t a : attrs) w += AttributeWidth(a);
  return w;
}

void TabularEncoder::EncodeValue(int64_t attr, double x,
                                 std::vector<double>* out) const {
  const EncodingMode mode = AttributeMode(attr);
  if (mode == EncodingMode::kMinMaxOnly) {
    out->push_back(normalizer_.Transform(attr, x));
    return;
  }
  const auto a = static_cast<size_t>(attr);
  if (mode == EncodingMode::kCategorical) {
    const std::vector<double>& cats = categories_[a];
    const auto it = std::lower_bound(cats.begin(), cats.end(), x);
    const bool known = it != cats.end() && *it == x;
    for (size_t i = 0; i < cats.size(); ++i) {
      out->push_back(known && cats[i] == x ? 1.0 : 0.0);
    }
    out->push_back(known ? 0.0 : 1.0);  // "other".
    return;
  }
  if (mode == EncodingMode::kGmmOnly || mode == EncodingMode::kCombined) {
    const int64_t c = gmms_[a].MostLikelyComponent(x);
    for (int64_t i = 0; i < gmms_[a].num_components(); ++i) {
      out->push_back(i == c ? 1.0 : 0.0);
    }
    out->push_back(gmms_[a].NormalizeWithin(c, x));
  }
  if (mode == EncodingMode::kJenksOnly || mode == EncodingMode::kCombined) {
    const int64_t b = jenks_[a].IntervalOf(x);
    for (int64_t i = 0; i < jenks_[a].num_intervals(); ++i) {
      out->push_back(i == b ? 1.0 : 0.0);
    }
    out->push_back(jenks_[a].NormalizeWithin(b, x));
  }
}

std::vector<double> TabularEncoder::EncodeProjected(
    const std::vector<double>& values,
    const std::vector<int64_t>& attrs) const {
  std::vector<double> out;
  EncodeProjectedInto(values, attrs, &out);
  return out;
}

void TabularEncoder::EncodeProjectedInto(const std::vector<double>& values,
                                         const std::vector<int64_t>& attrs,
                                         std::vector<double>* out) const {
  LTE_CHECK_EQ(values.size(), attrs.size());
  out->clear();
  out->reserve(static_cast<size_t>(ProjectedWidth(attrs)));
  for (size_t i = 0; i < attrs.size(); ++i) {
    EncodeValue(attrs[i], values[i], out);
  }
}

void TabularEncoder::EncodeGatheredInto(
    const std::vector<data::ColumnView>& columns,
    const std::vector<int64_t>& attrs, std::span<const int64_t> rows,
    std::vector<double>* out) const {
  LTE_CHECK_EQ(columns.size(), attrs.size());
  const auto width = static_cast<size_t>(ProjectedWidth(attrs));
  out->clear();
  out->reserve(rows.size() * width);
  // Same EncodeValue sequence per tuple as EncodeProjectedInto, so each
  // row-major slice of `*out` is bit-identical to the row-at-a-time encode;
  // the values just arrive from contiguous column views instead of a
  // materialized row.
  for (const int64_t r : rows) {
    for (size_t j = 0; j < attrs.size(); ++j) {
      EncodeValue(attrs[j], columns[j][r], out);
    }
  }
  LTE_CHECK_EQ(out->size(), rows.size() * width);
}

std::vector<double> TabularEncoder::EncodeRow(
    const std::vector<double>& row) const {
  LTE_CHECK_EQ(static_cast<int64_t>(row.size()), num_attributes_);
  std::vector<double> out;
  for (size_t i = 0; i < row.size(); ++i) {
    EncodeValue(static_cast<int64_t>(i), row[i], &out);
  }
  return out;
}

void TabularEncoder::Save(BinaryWriter* writer) const {
  LTE_CHECK_MSG(fitted_, "encoder: Save before Fit");
  writer->WriteI64(static_cast<int64_t>(options_.mode));
  writer->WriteI64(options_.num_gmm_components);
  writer->WriteI64(options_.num_jenks_intervals);
  writer->WriteDouble(options_.sample_fraction);
  writer->WriteI64(options_.min_sample_rows);
  writer->WriteI64(options_.max_sample_rows);
  writer->WriteI64(num_attributes_);
  normalizer_.Save(writer);
  for (int64_t a = 0; a < num_attributes_; ++a) {
    gmms_[static_cast<size_t>(a)].Save(writer);
    jenks_[static_cast<size_t>(a)].Save(writer);
    writer->WriteI64(static_cast<int64_t>(attr_modes_[static_cast<size_t>(a)]));
    writer->WriteDoubleVector(categories_[static_cast<size_t>(a)]);
  }
}

Status TabularEncoder::Load(BinaryReader* reader) {
  int64_t mode = 0;
  LTE_RETURN_IF_ERROR(reader->ReadI64(&mode));
  if (mode < 0 || mode > static_cast<int64_t>(EncodingMode::kAuto)) {
    return Status::IoError("encoder load: invalid mode");
  }
  options_.mode = static_cast<EncodingMode>(mode);
  LTE_RETURN_IF_ERROR(reader->ReadI64(&options_.num_gmm_components));
  LTE_RETURN_IF_ERROR(reader->ReadI64(&options_.num_jenks_intervals));
  LTE_RETURN_IF_ERROR(reader->ReadDouble(&options_.sample_fraction));
  LTE_RETURN_IF_ERROR(reader->ReadI64(&options_.min_sample_rows));
  LTE_RETURN_IF_ERROR(reader->ReadI64(&options_.max_sample_rows));
  LTE_RETURN_IF_ERROR(reader->ReadI64(&num_attributes_));
  if (num_attributes_ <= 0) {
    return Status::IoError("encoder load: invalid attribute count");
  }
  LTE_RETURN_IF_ERROR(normalizer_.Load(reader));
  gmms_.assign(static_cast<size_t>(num_attributes_), GaussianMixture{});
  jenks_.assign(static_cast<size_t>(num_attributes_), JenksBreaks{});
  attr_modes_.assign(static_cast<size_t>(num_attributes_), options_.mode);
  categories_.assign(static_cast<size_t>(num_attributes_), {});
  for (int64_t a = 0; a < num_attributes_; ++a) {
    LTE_RETURN_IF_ERROR(gmms_[static_cast<size_t>(a)].Load(reader));
    LTE_RETURN_IF_ERROR(jenks_[static_cast<size_t>(a)].Load(reader));
    int64_t attr_mode = 0;
    LTE_RETURN_IF_ERROR(reader->ReadI64(&attr_mode));
    if (attr_mode < 0 ||
        attr_mode > static_cast<int64_t>(EncodingMode::kCategorical)) {
      return Status::IoError("encoder load: invalid attribute mode");
    }
    attr_modes_[static_cast<size_t>(a)] = static_cast<EncodingMode>(attr_mode);
    LTE_RETURN_IF_ERROR(
        reader->ReadDoubleVector(&categories_[static_cast<size_t>(a)]));
  }
  fitted_ = true;
  return Status::OK();
}

}  // namespace lte::preprocess
