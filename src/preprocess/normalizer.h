#ifndef LTE_PREPROCESS_NORMALIZER_H_
#define LTE_PREPROCESS_NORMALIZER_H_

#include <cstdint>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "data/table.h"

namespace lte::preprocess {

/// Per-attribute min-max normalizer mapping each attribute into [0, 1].
///
/// This is the "straightforward" baseline representation the paper contrasts
/// with the GMM/JKC tabular encoding (Section VII-A), and it is also used to
/// bring subspace coordinates into a common range before clustering and
/// geometry.
class MinMaxNormalizer {
 public:
  MinMaxNormalizer() = default;

  /// Learns per-column [min, max] from `table`. Fails on tables with no rows.
  Status Fit(const data::Table& table);

  int64_t num_attributes() const {
    return static_cast<int64_t>(mins_.size());
  }

  /// Maps attribute `attr`'s value x into [0, 1] (clamped; constant columns
  /// map to 0.5).
  double Transform(int64_t attr, double x) const;

  /// Inverse of Transform.
  double Inverse(int64_t attr, double normalized) const;

  /// Normalizes a full-width row.
  std::vector<double> TransformRow(const std::vector<double>& row) const;

  /// Serialization (model persistence).
  void Save(BinaryWriter* writer) const;
  Status Load(BinaryReader* reader);

 private:
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

}  // namespace lte::preprocess

#endif  // LTE_PREPROCESS_NORMALIZER_H_
