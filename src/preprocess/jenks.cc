#include "preprocess/jenks.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/math_util.h"

namespace lte::preprocess {

Status JenksBreaks::Fit(const std::vector<double>& values,
                        int64_t num_intervals) {
  if (num_intervals <= 0) {
    return Status::InvalidArgument("jenks: num_intervals must be > 0");
  }
  if (static_cast<int64_t>(values.size()) < num_intervals) {
    return Status::InvalidArgument("jenks: fewer values than intervals");
  }
  std::vector<double> v = values;
  std::sort(v.begin(), v.end());
  const auto n = static_cast<size_t>(v.size());
  const auto k = static_cast<size_t>(num_intervals);

  // Prefix sums for O(1) segment SSD queries:
  // ssd(i..j) = sumsq - sum^2 / count over the closed index range.
  std::vector<double> prefix(n + 1, 0.0);
  std::vector<double> prefix_sq(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + v[i];
    prefix_sq[i + 1] = prefix_sq[i] + v[i] * v[i];
  }
  auto segment_ssd = [&](size_t i, size_t j) {  // Closed range [i, j].
    const double cnt = static_cast<double>(j - i + 1);
    const double s = prefix[j + 1] - prefix[i];
    const double sq = prefix_sq[j + 1] - prefix_sq[i];
    return std::max(0.0, sq - s * s / cnt);
  };

  // dp[c][j]: minimal SSD splitting v[0..j] into c+1 classes.
  constexpr double kInf = std::numeric_limits<double>::max();
  std::vector<std::vector<double>> dp(k, std::vector<double>(n, kInf));
  std::vector<std::vector<size_t>> split(k, std::vector<size_t>(n, 0));
  for (size_t j = 0; j < n; ++j) dp[0][j] = segment_ssd(0, j);
  for (size_t c = 1; c < k; ++c) {
    for (size_t j = c; j < n; ++j) {
      for (size_t m = c; m <= j; ++m) {  // Class c covers [m, j].
        const double cost = dp[c - 1][m - 1] + segment_ssd(m, j);
        if (cost < dp[c][j]) {
          dp[c][j] = cost;
          split[c][j] = m;
        }
      }
    }
  }

  // Recover the break positions.
  std::vector<size_t> starts(k, 0);  // starts[c]: first index of class c.
  size_t j = n - 1;
  for (size_t c = k; c-- > 1;) {
    starts[c] = split[c][j];
    j = starts[c] - 1;
  }
  starts[0] = 0;

  lower_bounds_.assign(k, 0.0);
  upper_bounds_.assign(k, 0.0);
  for (size_t c = 0; c < k; ++c) {
    const size_t lo = starts[c];
    const size_t hi = (c + 1 < k ? starts[c + 1] - 1 : n - 1);
    lower_bounds_[c] = v[lo];
    upper_bounds_[c] = v[hi];
  }

  const double total_ssd = segment_ssd(0, n - 1);
  goodness_ = total_ssd > 0.0 ? 1.0 - dp[k - 1][n - 1] / total_ssd : 1.0;
  return Status::OK();
}

int64_t JenksBreaks::IntervalOf(double x) const {
  LTE_CHECK_GT(num_intervals(), 0);
  // upper_bounds_ is non-decreasing; first interval whose upper bound covers x.
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), x);
  if (it == upper_bounds_.end()) return num_intervals() - 1;
  return static_cast<int64_t>(it - upper_bounds_.begin());
}

double JenksBreaks::NormalizeWithin(int64_t i, double x) const {
  LTE_CHECK_GE(i, 0);
  LTE_CHECK_LT(i, num_intervals());
  const double lo = lower_bounds_[static_cast<size_t>(i)];
  const double hi = upper_bounds_[static_cast<size_t>(i)];
  if (hi <= lo) return 0.5;
  return Clamp((x - lo) / (hi - lo), 0.0, 1.0);
}

void JenksBreaks::Save(BinaryWriter* writer) const {
  writer->WriteDoubleVector(lower_bounds_);
  writer->WriteDoubleVector(upper_bounds_);
  writer->WriteDouble(goodness_);
}

Status JenksBreaks::Load(BinaryReader* reader) {
  LTE_RETURN_IF_ERROR(reader->ReadDoubleVector(&lower_bounds_));
  LTE_RETURN_IF_ERROR(reader->ReadDoubleVector(&upper_bounds_));
  LTE_RETURN_IF_ERROR(reader->ReadDouble(&goodness_));
  if (lower_bounds_.size() != upper_bounds_.size()) {
    return Status::IoError("jenks load: bound count mismatch");
  }
  return Status::OK();
}

}  // namespace lte::preprocess
