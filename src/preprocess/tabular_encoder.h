#ifndef LTE_PREPROCESS_TABULAR_ENCODER_H_
#define LTE_PREPROCESS_TABULAR_ENCODER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/binary_io.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/table.h"
#include "preprocess/gmm.h"
#include "preprocess/jenks.h"
#include "preprocess/normalizer.h"

namespace lte::preprocess {

/// Which multi-modal feature model encodes each attribute (paper Fig. 8(a)
/// ablates these choices).
enum class EncodingMode {
  /// Plain min-max normalization only — the representation the paper shows
  /// "can hardly be trained" (Fig. 8(a), "without JKC and GMM").
  kMinMaxOnly,
  /// GMM component one-hot + within-component normalized value.
  kGmmOnly,
  /// Jenks interval one-hot + within-interval normalized value.
  kJenksOnly,
  /// Concatenation of the GMM and JKC parts — the default "Basic integrates
  /// JKC and GMM representations" configuration.
  kCombined,
  /// Per-attribute choice: GMM when the marginal is peaky (high mixture
  /// likelihood gain), otherwise JKC (smooth trends).
  kAuto,
  /// One-hot over the attribute's distinct values plus an "other" slot.
  /// Never chosen globally; attributes listed in
  /// EncoderOptions::categorical_attributes resolve to this mode.
  kCategorical,
};

struct EncoderOptions {
  EncodingMode mode = EncodingMode::kCombined;
  /// |g|: number of GMM components per attribute.
  int64_t num_gmm_components = 5;
  /// |b|: number of JKC intervals per attribute.
  int64_t num_jenks_intervals = 5;
  /// Fit models on a random sample of this fraction of rows (paper caps the
  /// sampling ratio at 1%)...
  double sample_fraction = 0.01;
  /// ...but never on fewer than this many rows (small tables are used whole).
  int64_t min_sample_rows = 256;
  /// Cap so the O(n^2) Jenks DP stays fast.
  int64_t max_sample_rows = 2000;
  /// Attributes holding category codes rather than quantities (e.g. the
  /// gearbox / fuel-type columns of a listings table). They are one-hot
  /// encoded over their distinct sampled values, regardless of `mode`.
  std::vector<int64_t> categorical_attributes;
  /// Most-frequent categories kept per attribute; rarer values map to the
  /// shared "other" slot.
  int64_t max_categories = 32;
};

/// Algorithm 3 of the paper: converts tabular tuples into feature-rich
/// vectors for NN training.
///
/// Per attribute the encoding is `[one-hot(model bucket of x), norm(x)]`
/// where the model is a GMM (peaky distributions) and/or JKC (smooth
/// distributions); a tuple's representation concatenates its attributes'
/// encodings. Fit() learns all per-attribute models from a sample.
class TabularEncoder {
 public:
  TabularEncoder() = default;
  explicit TabularEncoder(EncoderOptions options) : options_(options) {}

  /// Fits per-attribute GMM/JKC models (and the min-max fallback) on a
  /// sample of `table`.
  Status Fit(const data::Table& table, Rng* rng);

  /// Encoded width of one attribute's representation.
  int64_t AttributeWidth(int64_t attr) const;

  /// Width of a tuple projected on `attrs` (sum of attribute widths).
  int64_t ProjectedWidth(const std::vector<int64_t>& attrs) const;

  /// Encodes raw value x of attribute `attr`, appending to *out.
  void EncodeValue(int64_t attr, double x, std::vector<double>* out) const;

  /// Encodes a tuple projection: `values[i]` is the raw value of attribute
  /// `attrs[i]`.
  std::vector<double> EncodeProjected(const std::vector<double>& values,
                                      const std::vector<int64_t>& attrs) const;

  /// Allocation-free variant of EncodeProjected for hot prediction loops:
  /// clears and refills `*out` (capacity is retained across calls, so a
  /// reused buffer reaches a steady state with zero allocations per call).
  void EncodeProjectedInto(const std::vector<double>& values,
                           const std::vector<int64_t>& attrs,
                           std::vector<double>* out) const;

  /// Columnar block encode for the serving fast path: `columns[j]` is the
  /// segment-spanning value view of attribute `attrs[j]` over the whole
  /// table (`Table::View`), and `rows` selects the tuples to encode by
  /// global row id. Writes the encodings row-major into the reusable scratch
  /// matrix `*out` (resized to `rows.size() x ProjectedWidth(attrs)`;
  /// capacity is retained across calls, so a reused buffer reaches a steady
  /// state with zero allocations per block). Row k of `*out` is
  /// bit-identical to EncodeProjectedInto of the k-th selected tuple — the
  /// encode visits attributes in the same order with the same per-value
  /// models.
  void EncodeGatheredInto(const std::vector<data::ColumnView>& columns,
                          const std::vector<int64_t>& attrs,
                          std::span<const int64_t> rows,
                          std::vector<double>* out) const;

  /// Encodes a full-width row (all attributes in column order).
  std::vector<double> EncodeRow(const std::vector<double>& row) const;

  bool fitted() const { return fitted_; }
  const EncoderOptions& options() const { return options_; }

  /// The encoding mode actually used for `attr` (only differs from
  /// options().mode under kAuto).
  EncodingMode AttributeMode(int64_t attr) const;

  /// Serialization (model persistence): options, per-attribute models, and
  /// resolved modes.
  void Save(BinaryWriter* writer) const;
  Status Load(BinaryReader* reader);

 private:
  Status FitCategorical(int64_t attr, const std::vector<double>& values);

  EncoderOptions options_;
  bool fitted_ = false;
  int64_t num_attributes_ = 0;
  MinMaxNormalizer normalizer_;
  std::vector<GaussianMixture> gmms_;       // Indexed by attribute.
  std::vector<JenksBreaks> jenks_;          // Indexed by attribute.
  std::vector<EncodingMode> attr_modes_;    // Resolved per-attribute mode.
  /// Kept category values (sorted) for kCategorical attributes; empty
  /// elsewhere.
  std::vector<std::vector<double>> categories_;
};

}  // namespace lte::preprocess

#endif  // LTE_PREPROCESS_TABULAR_ENCODER_H_
