#include "preprocess/gmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/math_util.h"

namespace lte::preprocess {
namespace {

constexpr double kVarianceFloor = 1e-8;

double LogSumExp(const std::vector<double>& v) {
  const double mx = *std::max_element(v.begin(), v.end());
  if (!std::isfinite(mx)) return mx;
  double s = 0.0;
  for (double x : v) s += std::exp(x - mx);
  return mx + std::log(s);
}

}  // namespace

Status GaussianMixture::Fit(const std::vector<double>& values,
                            int64_t num_components, Rng* rng,
                            int64_t max_iterations) {
  if (num_components <= 0) {
    return Status::InvalidArgument("gmm: num_components must be > 0");
  }
  if (static_cast<int64_t>(values.size()) < num_components) {
    return Status::InvalidArgument("gmm: fewer values than components");
  }
  const auto n = static_cast<int64_t>(values.size());
  const auto kk = static_cast<size_t>(num_components);

  // Initialize means at quantiles of the sorted sample; shared variance.
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double total_var = std::max(Variance(values), kVarianceFloor);
  components_.assign(kk, GaussianComponent{});
  for (size_t c = 0; c < kk; ++c) {
    const size_t q = static_cast<size_t>(
        (static_cast<double>(c) + 0.5) / static_cast<double>(kk) *
        static_cast<double>(n - 1));
    components_[c].weight = 1.0 / static_cast<double>(kk);
    components_[c].mean = sorted[q];
    components_[c].variance = total_var / static_cast<double>(kk);
  }

  std::vector<std::vector<double>> resp(
      static_cast<size_t>(n), std::vector<double>(kk, 0.0));
  double prev_ll = -std::numeric_limits<double>::max();
  for (int64_t iter = 0; iter < max_iterations; ++iter) {
    // E-step.
    double ll = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      std::vector<double> logp(kk);
      for (size_t c = 0; c < kk; ++c) {
        logp[c] = std::log(std::max(components_[c].weight, 1e-12)) +
                  LogGaussianPdf(values[static_cast<size_t>(i)],
                                 components_[c].mean, components_[c].variance);
      }
      const double lse = LogSumExp(logp);
      ll += lse;
      for (size_t c = 0; c < kk; ++c) {
        resp[static_cast<size_t>(i)][c] = std::exp(logp[c] - lse);
      }
    }
    // M-step.
    for (size_t c = 0; c < kk; ++c) {
      double rsum = 0.0;
      double msum = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        rsum += resp[static_cast<size_t>(i)][c];
        msum += resp[static_cast<size_t>(i)][c] * values[static_cast<size_t>(i)];
      }
      if (rsum < 1e-10) {
        // Dead component: re-seed at a random sample point.
        components_[c].mean =
            values[static_cast<size_t>(rng->UniformInt(n))];
        components_[c].variance = total_var;
        components_[c].weight = 1.0 / static_cast<double>(kk);
        continue;
      }
      const double mean = msum / rsum;
      double vsum = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        const double d = values[static_cast<size_t>(i)] - mean;
        vsum += resp[static_cast<size_t>(i)][c] * d * d;
      }
      components_[c].mean = mean;
      components_[c].variance = std::max(vsum / rsum, kVarianceFloor);
      components_[c].weight = rsum / static_cast<double>(n);
    }
    if (std::abs(ll - prev_ll) < 1e-6 * std::abs(ll)) break;
    prev_ll = ll;
  }
  return Status::OK();
}

int64_t GaussianMixture::MostLikelyComponent(double x) const {
  LTE_CHECK_GT(num_components(), 0);
  int64_t best = 0;
  double best_lp = -std::numeric_limits<double>::max();
  for (int64_t c = 0; c < num_components(); ++c) {
    const GaussianComponent& g = components_[static_cast<size_t>(c)];
    const double lp = std::log(std::max(g.weight, 1e-12)) +
                      LogGaussianPdf(x, g.mean, g.variance);
    if (lp > best_lp) {
      best_lp = lp;
      best = c;
    }
  }
  return best;
}

double GaussianMixture::NormalizeWithin(int64_t c, double x) const {
  LTE_CHECK_GE(c, 0);
  LTE_CHECK_LT(c, num_components());
  const GaussianComponent& g = components_[static_cast<size_t>(c)];
  const double sigma = std::sqrt(g.variance);
  const double lo = g.mean - 3.0 * sigma;
  const double hi = g.mean + 3.0 * sigma;
  if (hi <= lo) return 0.5;
  return Clamp((x - lo) / (hi - lo), 0.0, 1.0);
}

double GaussianMixture::MeanLogLikelihood(
    const std::vector<double>& values) const {
  if (values.empty()) return 0.0;
  double ll = 0.0;
  for (double x : values) {
    std::vector<double> logp(static_cast<size_t>(num_components()));
    for (int64_t c = 0; c < num_components(); ++c) {
      const GaussianComponent& g = components_[static_cast<size_t>(c)];
      logp[static_cast<size_t>(c)] =
          std::log(std::max(g.weight, 1e-12)) +
          LogGaussianPdf(x, g.mean, g.variance);
    }
    ll += LogSumExp(logp);
  }
  return ll / static_cast<double>(values.size());
}

void GaussianMixture::Save(BinaryWriter* writer) const {
  writer->WriteU64(components_.size());
  for (const GaussianComponent& g : components_) {
    writer->WriteDouble(g.weight);
    writer->WriteDouble(g.mean);
    writer->WriteDouble(g.variance);
  }
}

Status GaussianMixture::Load(BinaryReader* reader) {
  uint64_t n = 0;
  LTE_RETURN_IF_ERROR(reader->ReadU64(&n));
  components_.assign(n, GaussianComponent{});
  for (GaussianComponent& g : components_) {
    LTE_RETURN_IF_ERROR(reader->ReadDouble(&g.weight));
    LTE_RETURN_IF_ERROR(reader->ReadDouble(&g.mean));
    LTE_RETURN_IF_ERROR(reader->ReadDouble(&g.variance));
    if (g.variance <= 0.0) {
      return Status::IoError("gmm load: non-positive variance");
    }
  }
  return Status::OK();
}

}  // namespace lte::preprocess
