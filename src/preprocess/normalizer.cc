#include "preprocess/normalizer.h"

#include "common/check.h"
#include "common/math_util.h"

namespace lte::preprocess {

Status MinMaxNormalizer::Fit(const data::Table& table) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("normalizer: empty table");
  }
  mins_.clear();
  maxs_.clear();
  for (int64_t c = 0; c < table.num_columns(); ++c) {
    mins_.push_back(table.column(c).min());
    maxs_.push_back(table.column(c).max());
  }
  return Status::OK();
}

double MinMaxNormalizer::Transform(int64_t attr, double x) const {
  LTE_CHECK_GE(attr, 0);
  LTE_CHECK_LT(attr, num_attributes());
  const double lo = mins_[static_cast<size_t>(attr)];
  const double hi = maxs_[static_cast<size_t>(attr)];
  if (hi <= lo) return 0.5;
  return Clamp((x - lo) / (hi - lo), 0.0, 1.0);
}

double MinMaxNormalizer::Inverse(int64_t attr, double normalized) const {
  LTE_CHECK_GE(attr, 0);
  LTE_CHECK_LT(attr, num_attributes());
  const double lo = mins_[static_cast<size_t>(attr)];
  const double hi = maxs_[static_cast<size_t>(attr)];
  return lo + normalized * (hi - lo);
}

std::vector<double> MinMaxNormalizer::TransformRow(
    const std::vector<double>& row) const {
  LTE_CHECK_EQ(static_cast<int64_t>(row.size()), num_attributes());
  std::vector<double> out(row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    out[i] = Transform(static_cast<int64_t>(i), row[i]);
  }
  return out;
}

void MinMaxNormalizer::Save(BinaryWriter* writer) const {
  writer->WriteDoubleVector(mins_);
  writer->WriteDoubleVector(maxs_);
}

Status MinMaxNormalizer::Load(BinaryReader* reader) {
  LTE_RETURN_IF_ERROR(reader->ReadDoubleVector(&mins_));
  LTE_RETURN_IF_ERROR(reader->ReadDoubleVector(&maxs_));
  if (mins_.size() != maxs_.size()) {
    return Status::IoError("normalizer load: bound count mismatch");
  }
  return Status::OK();
}

}  // namespace lte::preprocess
