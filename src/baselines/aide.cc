#include "baselines/aide.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace lte::baselines {

Status Aide::Explore(const std::vector<std::vector<double>>& pool,
                     const LabelOracle& oracle, int64_t budget, Rng* rng) {
  const auto n = static_cast<int64_t>(pool.size());
  if (n == 0) return Status::InvalidArgument("aide: empty pool");
  if (budget <= 0) return Status::InvalidArgument("aide: budget must be > 0");

  labels_used_ = 0;
  std::vector<bool> labelled(static_cast<size_t>(n), false);
  std::vector<std::vector<double>> train_x;
  std::vector<double> train_y;

  auto label_index = [&](int64_t idx) {
    labelled[static_cast<size_t>(idx)] = true;
    train_x.push_back(pool[static_cast<size_t>(idx)]);
    train_y.push_back(oracle(idx));
    ++labels_used_;
  };

  const int64_t init = std::min({options_.initial_samples, budget, n});
  for (int64_t idx : rng->SampleWithoutReplacement(n, init)) label_index(idx);
  tree_ = tree::DecisionTree(options_.tree);
  LTE_RETURN_IF_ERROR(tree_.Train(train_x, train_y));

  while (labels_used_ < budget && labels_used_ < n) {
    const int64_t batch = std::min(options_.batch_size, budget - labels_used_);
    const int64_t explore = std::min<int64_t>(
        batch, static_cast<int64_t>(
                   std::ceil(options_.explore_fraction *
                             static_cast<double>(batch))));
    const int64_t exploit = batch - explore;

    std::vector<int64_t> candidates;
    std::vector<double> purity;  // |p - 0.5|, lower = more uncertain.
    for (int64_t i = 0; i < n; ++i) {
      if (labelled[static_cast<size_t>(i)]) continue;
      candidates.push_back(i);
      purity.push_back(std::abs(
          tree_.PredictProbability(pool[static_cast<size_t>(i)]) - 0.5));
    }
    if (candidates.empty()) break;

    // Boundary exploitation: lowest-purity leaves first.
    const size_t take =
        std::min(static_cast<size_t>(exploit), candidates.size());
    std::vector<bool> chosen(candidates.size(), false);
    for (size_t j : ArgSmallestK(purity, take)) {
      chosen[j] = true;
      label_index(candidates[j]);
    }
    // Relevant-region discovery: random unlabelled tuples.
    std::vector<int64_t> remaining;
    for (size_t j = 0; j < candidates.size(); ++j) {
      if (!chosen[j]) remaining.push_back(candidates[j]);
    }
    const int64_t random_take =
        std::min<int64_t>(explore, static_cast<int64_t>(remaining.size()));
    for (int64_t idx : rng->SampleWithoutReplacement(
             static_cast<int64_t>(remaining.size()), random_take)) {
      label_index(remaining[static_cast<size_t>(idx)]);
    }

    tree_ = tree::DecisionTree(options_.tree);
    LTE_RETURN_IF_ERROR(tree_.Train(train_x, train_y));
  }
  return Status::OK();
}

double Aide::Predict(const std::vector<double>& x) const {
  return tree_.Predict(x);
}

double Aide::PredictProbability(const std::vector<double>& x) const {
  return tree_.PredictProbability(x);
}

}  // namespace lte::baselines
