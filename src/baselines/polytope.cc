#include "baselines/polytope.h"

#include "common/check.h"

namespace lte::baselines {

void PolytopeModel::Update(const std::vector<double>& point, double label) {
  LTE_CHECK_MSG(point.size() == 1 || point.size() == 2,
                "polytope model supports 1-D and 2-D subspaces");
  if (label > 0.5) {
    positives_.push_back(point);
    positive_region_ = geom::ConvexRegion::HullOf(positives_);
  } else {
    negatives_.push_back(point);
  }
}

ThreeSet PolytopeModel::Classify(const std::vector<double>& point) const {
  if (!positive_region_.empty() && positive_region_.Contains(point)) {
    return ThreeSet::kPositive;
  }
  // Negative-cone test: x is provably negative when adding it to the
  // positive hull would swallow a known negative example. With no positives
  // yet, the hull of {x} alone contains only x itself, so the test still
  // catches exact negative duplicates.
  if (!negatives_.empty()) {
    std::vector<std::vector<double>> extended = positives_;
    extended.push_back(point);
    const geom::ConvexRegion hull = geom::ConvexRegion::HullOf(extended);
    for (const auto& neg : negatives_) {
      if (hull.Contains(neg)) return ThreeSet::kNegative;
    }
  }
  return ThreeSet::kUncertain;
}

}  // namespace lte::baselines
