#ifndef LTE_BASELINES_DSM_H_
#define LTE_BASELINES_DSM_H_

#include <cstdint>
#include <vector>

#include "baselines/active_learner.h"
#include "baselines/polytope.h"
#include "common/rng.h"
#include "common/status.h"
#include "svm/svm.h"

namespace lte::baselines {

/// Options for the DSM baseline (paper [5]).
struct DsmOptions {
  /// Tuples labelled up-front (random sample of the pool).
  int64_t initial_samples = 10;
  /// Tuples labelled per active-learning iteration.
  int64_t batch_size = 5;
  svm::Kernel kernel;
  svm::SmoOptions smo;
};

/// DSM — the dual-space model: state of the art among the paper's baselines.
///
/// DSM factorizes the user interest space into low-dimensional subspaces
/// (given here as index lists into the feature vector), maintains a
/// `PolytopeModel` per subspace under the subspatial-convexity assumption,
/// and combines them conjunctively: a tuple is positive when *every*
/// subspace model says positive, negative when *any* says negative, and
/// otherwise is deferred to an SVM trained on the labelled tuples. Active
/// learning samples from the uncertain partition, closest to the SVM
/// boundary — exactly the part of the space the polytopes cannot decide.
///
/// Labels are conjunctive (whole-tuple), so a negative tuple only proves
/// that *some* subspace projection is outside its subregion. Following the
/// factorized DSM, a negative example is attributed to a subspace only when
/// every other subspace's projection is provably positive (inside that
/// subspace's positive polytope); unattributable negatives are retried as
/// the positive regions grow and meanwhile inform only the SVM.
class Dsm {
 public:
  Dsm(DsmOptions options, std::vector<std::vector<int64_t>> subspace_attrs);

  /// Runs the exploration loop over `pool` with at most `budget` labels.
  Status Explore(const std::vector<std::vector<double>>& pool,
                 const LabelOracle& oracle, int64_t budget, Rng* rng);

  /// 0/1 prediction (after Explore).
  double Predict(const std::vector<double>& x) const;

  /// Conjunctive three-set classification (before the SVM fallback). This
  /// feeds the three-set metric, DSM's convergence lower bound.
  ThreeSet ClassifyThreeSet(const std::vector<double>& x) const;

  int64_t labels_used() const { return labels_used_; }
  const std::vector<PolytopeModel>& subspace_models() const {
    return polytopes_;
  }

 private:
  std::vector<double> ProjectOnto(const std::vector<double>& x,
                                  size_t subspace) const;

  /// Attributes pending negative examples to subspaces where possible.
  void ResolvePendingNegatives();

  DsmOptions options_;
  std::vector<std::vector<int64_t>> subspace_attrs_;
  std::vector<PolytopeModel> polytopes_;
  /// Negative tuples not yet attributable to a single subspace.
  std::vector<std::vector<double>> pending_negatives_;
  svm::Svm svm_;
  int64_t labels_used_ = 0;
};

}  // namespace lte::baselines

#endif  // LTE_BASELINES_DSM_H_
