#ifndef LTE_BASELINES_POLYTOPE_H_
#define LTE_BASELINES_POLYTOPE_H_

#include <cstdint>
#include <vector>

#include "geom/region.h"

namespace lte::baselines {

/// Three-set partition of a subspace under DSM's dual-space (polytope) model.
enum class ThreeSet {
  kPositive,
  kNegative,
  kUncertain,
};

/// DSM's per-subspace polytope model (paper [5]).
///
/// Under the assumption that the target subregion is *convex*:
///  * the convex hull of the positively labelled points is provably inside
///    the target region (positive region);
///  * a point x is provably outside whenever some negative example e- falls
///    inside conv(positives ∪ {x}) — if x were positive, convexity would
///    force e- to be positive too (negative region);
///  * everything else is uncertain and is deferred to a learned classifier.
///
/// Points are 1-D or 2-D subspace projections.
class PolytopeModel {
 public:
  PolytopeModel() = default;

  /// Adds one labelled point (label 1 = interesting).
  void Update(const std::vector<double>& point, double label);

  /// Three-set classification of an arbitrary subspace point.
  ThreeSet Classify(const std::vector<double>& point) const;

  int64_t num_positive() const {
    return static_cast<int64_t>(positives_.size());
  }
  int64_t num_negative() const {
    return static_cast<int64_t>(negatives_.size());
  }

  /// The positive region (convex hull of positive examples); empty when no
  /// positives have been observed.
  const geom::ConvexRegion& positive_region() const {
    return positive_region_;
  }

 private:
  std::vector<std::vector<double>> positives_;
  std::vector<std::vector<double>> negatives_;
  geom::ConvexRegion positive_region_;
};

}  // namespace lte::baselines

#endif  // LTE_BASELINES_POLYTOPE_H_
