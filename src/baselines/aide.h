#ifndef LTE_BASELINES_AIDE_H_
#define LTE_BASELINES_AIDE_H_

#include <cstdint>
#include <vector>

#include "baselines/active_learner.h"
#include "common/rng.h"
#include "common/status.h"
#include "tree/decision_tree.h"

namespace lte::baselines {

/// Options for the AIDE baseline (paper [2], [4]: decision-tree-based
/// explore-by-example with active learning).
struct AideOptions {
  /// Tuples labelled up-front (random sample of the pool).
  int64_t initial_samples = 10;
  /// Tuples labelled per iteration.
  int64_t batch_size = 5;
  /// Fraction of each batch spent on random exploration of unseen space
  /// (AIDE's relevant-region *discovery* phase); the rest exploits the
  /// decision boundary (leaf probability near 0.5).
  double explore_fraction = 0.4;
  tree::DecisionTreeOptions tree;
};

/// AIDE: the original explore-by-example system. Trains a decision tree on
/// the labelled tuples each round and splits its labelling budget between
/// boundary exploitation (pool tuples whose leaf purity is lowest — the
/// tuples hardest to discriminate) and random exploration (discovering
/// relevant regions the tree has not seen). Its UIR representation is the
/// union of axis-aligned boxes induced by the tree's positive leaves
/// (Table I: "linear" UIS in subspace).
class Aide {
 public:
  explicit Aide(AideOptions options) : options_(options) {}

  /// Runs the exploration loop over `pool` with at most `budget` labels.
  Status Explore(const std::vector<std::vector<double>>& pool,
                 const LabelOracle& oracle, int64_t budget, Rng* rng);

  /// 0/1 prediction (after Explore).
  double Predict(const std::vector<double>& x) const;

  /// Leaf positive-fraction (after Explore).
  double PredictProbability(const std::vector<double>& x) const;

  int64_t labels_used() const { return labels_used_; }
  const tree::DecisionTree& tree() const { return tree_; }

 private:
  AideOptions options_;
  tree::DecisionTree tree_;
  int64_t labels_used_ = 0;
};

}  // namespace lte::baselines

#endif  // LTE_BASELINES_AIDE_H_
