#include "baselines/dsm.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace lte::baselines {

Dsm::Dsm(DsmOptions options, std::vector<std::vector<int64_t>> subspace_attrs)
    : options_(options), subspace_attrs_(std::move(subspace_attrs)) {
  LTE_CHECK(!subspace_attrs_.empty());
  polytopes_.resize(subspace_attrs_.size());
}

std::vector<double> Dsm::ProjectOnto(const std::vector<double>& x,
                                     size_t subspace) const {
  std::vector<double> p;
  p.reserve(subspace_attrs_[subspace].size());
  for (int64_t a : subspace_attrs_[subspace]) {
    LTE_CHECK_LT(static_cast<size_t>(a), x.size());
    p.push_back(x[static_cast<size_t>(a)]);
  }
  return p;
}

void Dsm::ResolvePendingNegatives() {
  // A negative tuple is attributable to subspace s when every *other*
  // subspace's projection lies inside its proven-positive region: the
  // conjunction then forces s's projection to be outside its subregion.
  for (size_t i = 0; i < pending_negatives_.size();) {
    const std::vector<double>& x = pending_negatives_[i];
    int64_t candidate = -1;
    int64_t not_proven_positive = 0;
    for (size_t s = 0; s < polytopes_.size(); ++s) {
      if (polytopes_[s].Classify(ProjectOnto(x, s)) != ThreeSet::kPositive) {
        ++not_proven_positive;
        candidate = static_cast<int64_t>(s);
      }
    }
    if (not_proven_positive == 1) {
      polytopes_[static_cast<size_t>(candidate)].Update(
          ProjectOnto(x, static_cast<size_t>(candidate)), 0.0);
      pending_negatives_.erase(pending_negatives_.begin() +
                               static_cast<long>(i));
      // Restart: the new negative cone may not unlock others, but keeping
      // the scan simple is fine at exploration label counts.
      i = 0;
      continue;
    }
    ++i;
  }
}

ThreeSet Dsm::ClassifyThreeSet(const std::vector<double>& x) const {
  bool all_positive = true;
  for (size_t s = 0; s < polytopes_.size(); ++s) {
    switch (polytopes_[s].Classify(ProjectOnto(x, s))) {
      case ThreeSet::kNegative:
        // Conjunction: one provably-negative subspace sinks the tuple.
        return ThreeSet::kNegative;
      case ThreeSet::kUncertain:
        all_positive = false;
        break;
      case ThreeSet::kPositive:
        break;
    }
  }
  return all_positive ? ThreeSet::kPositive : ThreeSet::kUncertain;
}

Status Dsm::Explore(const std::vector<std::vector<double>>& pool,
                    const LabelOracle& oracle, int64_t budget, Rng* rng) {
  const auto n = static_cast<int64_t>(pool.size());
  if (n == 0) return Status::InvalidArgument("dsm: empty pool");
  if (budget <= 0) return Status::InvalidArgument("dsm: budget must be > 0");

  labels_used_ = 0;
  polytopes_.assign(subspace_attrs_.size(), PolytopeModel{});
  pending_negatives_.clear();
  std::vector<bool> labelled(static_cast<size_t>(n), false);
  std::vector<std::vector<double>> train_x;
  std::vector<double> train_y;

  auto label_index = [&](int64_t idx) {
    labelled[static_cast<size_t>(idx)] = true;
    const double y = oracle(idx);
    const auto& x = pool[static_cast<size_t>(idx)];
    train_x.push_back(x);
    train_y.push_back(y);
    if (y > 0.5) {
      // A conjunctively-positive tuple is positive in every subspace.
      for (size_t s = 0; s < polytopes_.size(); ++s) {
        polytopes_[s].Update(ProjectOnto(x, s), 1.0);
      }
      // Grown positive regions may make held-back negatives attributable.
      ResolvePendingNegatives();
    } else {
      pending_negatives_.push_back(x);
      ResolvePendingNegatives();
    }
    ++labels_used_;
  };

  const int64_t init = std::min({options_.initial_samples, budget, n});
  for (int64_t idx : rng->SampleWithoutReplacement(n, init)) label_index(idx);
  LTE_RETURN_IF_ERROR(
      svm_.Train(train_x, train_y, options_.kernel, options_.smo, rng));

  while (labels_used_ < budget && labels_used_ < n) {
    const int64_t batch = std::min(options_.batch_size, budget - labels_used_);
    // Candidate selection: uncertain-partition tuples nearest the SVM
    // boundary; falls back to all unlabelled tuples when the polytopes have
    // already decided everything.
    std::vector<int64_t> candidates;
    std::vector<double> scores;
    for (int64_t i = 0; i < n; ++i) {
      if (labelled[static_cast<size_t>(i)]) continue;
      if (ClassifyThreeSet(pool[static_cast<size_t>(i)]) !=
          ThreeSet::kUncertain) {
        continue;
      }
      candidates.push_back(i);
      scores.push_back(
          std::abs(svm_.DecisionFunction(pool[static_cast<size_t>(i)])));
    }
    if (candidates.empty()) {
      for (int64_t i = 0; i < n; ++i) {
        if (labelled[static_cast<size_t>(i)]) continue;
        candidates.push_back(i);
        scores.push_back(
            std::abs(svm_.DecisionFunction(pool[static_cast<size_t>(i)])));
      }
    }
    if (candidates.empty()) break;
    const size_t take = std::min(static_cast<size_t>(batch), candidates.size());
    for (size_t j : ArgSmallestK(scores, take)) label_index(candidates[j]);
    LTE_RETURN_IF_ERROR(
        svm_.Train(train_x, train_y, options_.kernel, options_.smo, rng));
  }
  return Status::OK();
}

double Dsm::Predict(const std::vector<double>& x) const {
  switch (ClassifyThreeSet(x)) {
    case ThreeSet::kPositive:
      return 1.0;
    case ThreeSet::kNegative:
      return 0.0;
    case ThreeSet::kUncertain:
      return svm_.Predict(x);
  }
  LTE_CHECK_MSG(false, "unreachable");
  return 0.0;
}

}  // namespace lte::baselines
