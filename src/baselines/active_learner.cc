#include "baselines/active_learner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/math_util.h"

namespace lte::baselines {

Status ActiveLearnerSvm::Explore(const std::vector<std::vector<double>>& pool,
                                 const LabelOracle& oracle, int64_t budget,
                                 Rng* rng) {
  const auto n = static_cast<int64_t>(pool.size());
  if (n == 0) return Status::InvalidArgument("al-svm: empty pool");
  if (budget <= 0) return Status::InvalidArgument("al-svm: budget must be > 0");

  labels_used_ = 0;
  std::vector<bool> labelled(static_cast<size_t>(n), false);
  std::vector<std::vector<double>> train_x;
  std::vector<double> train_y;

  auto label_index = [&](int64_t idx) {
    labelled[static_cast<size_t>(idx)] = true;
    train_x.push_back(pool[static_cast<size_t>(idx)]);
    train_y.push_back(oracle(idx));
    ++labels_used_;
  };

  // Initial random sample.
  const int64_t init = std::min(options_.initial_samples, budget);
  for (int64_t idx : rng->SampleWithoutReplacement(n, std::min(init, n))) {
    label_index(idx);
  }
  LTE_RETURN_IF_ERROR(
      svm_.Train(train_x, train_y, options_.kernel, options_.smo, rng));

  // Active-learning iterations: label the pool tuples the SVM is least sure
  // about (smallest |margin|).
  while (labels_used_ < budget &&
         labels_used_ < n) {
    const int64_t batch =
        std::min(options_.batch_size, budget - labels_used_);
    std::vector<double> uncertainty;
    std::vector<int64_t> candidates;
    uncertainty.reserve(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      if (labelled[static_cast<size_t>(i)]) continue;
      candidates.push_back(i);
      uncertainty.push_back(std::abs(svm_.DecisionFunction(pool[static_cast<size_t>(i)])));
    }
    if (candidates.empty()) break;
    const size_t take =
        std::min(static_cast<size_t>(batch), candidates.size());
    for (size_t j : ArgSmallestK(uncertainty, take)) {
      label_index(candidates[j]);
    }
    LTE_RETURN_IF_ERROR(
        svm_.Train(train_x, train_y, options_.kernel, options_.smo, rng));
  }
  return Status::OK();
}

double ActiveLearnerSvm::Predict(const std::vector<double>& x) const {
  return svm_.Predict(x);
}

double ActiveLearnerSvm::DecisionFunction(const std::vector<double>& x) const {
  return svm_.DecisionFunction(x);
}

}  // namespace lte::baselines
