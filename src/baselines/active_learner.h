#ifndef LTE_BASELINES_ACTIVE_LEARNER_H_
#define LTE_BASELINES_ACTIVE_LEARNER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "svm/svm.h"

namespace lte::baselines {

/// Labels a pool tuple by index: returns 1.0 ("interesting") or 0.0. In the
/// evaluation harness this is backed by a ground-truth UIR oracle; in a live
/// system it would be the human user.
using LabelOracle = std::function<double(int64_t pool_index)>;

/// Options for the AL-SVM baseline (paper [4]: AIDE-style active learning
/// around an SVM classifier).
struct ActiveLearnerOptions {
  /// Tuples labelled up-front (random sample of the pool).
  int64_t initial_samples = 10;
  /// Tuples labelled per active-learning iteration (the most uncertain ones).
  int64_t batch_size = 5;
  svm::Kernel kernel;
  svm::SmoOptions smo;
};

/// AL-SVM: iteratively retrains an SVM and asks the oracle to label the pool
/// tuples closest to the decision boundary (uncertainty sampling), until the
/// labelling budget is exhausted.
class ActiveLearnerSvm {
 public:
  explicit ActiveLearnerSvm(ActiveLearnerOptions options)
      : options_(options) {}

  /// Runs the exploration loop over `pool` (each row a feature vector) with
  /// at most `budget` oracle labels. Fails on an empty pool or non-positive
  /// budget.
  Status Explore(const std::vector<std::vector<double>>& pool,
                 const LabelOracle& oracle, int64_t budget, Rng* rng);

  /// 0/1 prediction for an arbitrary tuple (after Explore).
  double Predict(const std::vector<double>& x) const;

  /// Signed SVM margin (after Explore).
  double DecisionFunction(const std::vector<double>& x) const;

  int64_t labels_used() const { return labels_used_; }
  const svm::Svm& svm() const { return svm_; }

 private:
  ActiveLearnerOptions options_;
  svm::Svm svm_;
  int64_t labels_used_ = 0;
};

}  // namespace lte::baselines

#endif  // LTE_BASELINES_ACTIVE_LEARNER_H_
