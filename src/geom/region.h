#ifndef LTE_GEOM_REGION_H_
#define LTE_GEOM_REGION_H_

#include <cstdint>
#include <vector>

#include "geom/convex_hull.h"

namespace lte::geom {

/// One convex building block of a user interest subregion (UIS).
///
/// The paper formulates a simulated UIS as the union of α convex hulls, each
/// circumscribing the ψ nearest cluster centers of a random seed center
/// (Section V-C). Subspaces are 1-D or 2-D: a 1-D convex region is an
/// interval, a 2-D one a convex polygon.
class ConvexRegion {
 public:
  /// Builds the convex hull of `points` (each of dimension 1 or 2; all points
  /// must share the same dimension). Empty input yields an empty region.
  static ConvexRegion HullOf(const std::vector<std::vector<double>>& points);

  ConvexRegion() = default;

  /// Boundary-inclusive membership. `point` must match the region dimension;
  /// an empty region contains nothing.
  bool Contains(const std::vector<double>& point, double eps = 1e-9) const;

  int64_t dimension() const { return dimension_; }
  bool empty() const { return dimension_ == 0; }

  /// 2-D hull vertices (CCW); empty for 1-D regions.
  const std::vector<Point2>& hull() const { return hull_; }
  /// 1-D interval bounds; meaningful only for dimension()==1.
  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  int64_t dimension_ = 0;
  std::vector<Point2> hull_;  // dimension == 2
  double lo_ = 0.0;           // dimension == 1
  double hi_ = 0.0;
};

/// A UIS of arbitrary shape: the union of convex parts. By the convex
/// decomposition theory the paper invokes, any (possibly concave or
/// disconnected) region can be represented this way.
class Region {
 public:
  Region() = default;

  void AddPart(ConvexRegion part);

  /// True when any convex part contains the point.
  bool Contains(const std::vector<double>& point, double eps = 1e-9) const;

  const std::vector<ConvexRegion>& parts() const { return parts_; }
  bool empty() const { return parts_.empty(); }

 private:
  std::vector<ConvexRegion> parts_;
};

}  // namespace lte::geom

#endif  // LTE_GEOM_REGION_H_
