#ifndef LTE_GEOM_CONVEX_HULL_H_
#define LTE_GEOM_CONVEX_HULL_H_

#include <vector>

namespace lte::geom {

/// A 2-D point. Geometry in LTE operates on low-dimensional subspace
/// projections; the paper decomposes the user interest space into 2-D
/// subspaces, with 1-D subspaces handled by intervals (see region.h).
struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

/// Cross product (b - a) x (c - a): positive when a->b->c turns left.
double Cross(const Point2& a, const Point2& b, const Point2& c);

/// Convex hull via Andrew's monotone chain; O(n log n).
///
/// Returns hull vertices in counter-clockwise order without the closing
/// duplicate. Degenerate inputs are handled: fewer than 3 distinct points or
/// collinear points yield the 1- or 2-point "hull" (a point / segment), which
/// `PointInConvexPolygon` treats as a degenerate region.
std::vector<Point2> ConvexHull(std::vector<Point2> points);

/// Boundary-inclusive membership test against a counter-clockwise convex
/// polygon (as produced by ConvexHull). Handles degenerate polygons of 1 or
/// 2 vertices (point / segment) with tolerance `eps`.
bool PointInConvexPolygon(const Point2& p, const std::vector<Point2>& hull,
                          double eps = 1e-9);

/// Area of a counter-clockwise convex polygon (0 for degenerate hulls).
double PolygonArea(const std::vector<Point2>& hull);

}  // namespace lte::geom

#endif  // LTE_GEOM_CONVEX_HULL_H_
