#include "geom/region.h"

#include <algorithm>

#include "common/check.h"

namespace lte::geom {

ConvexRegion ConvexRegion::HullOf(
    const std::vector<std::vector<double>>& points) {
  ConvexRegion r;
  if (points.empty()) return r;
  const int64_t dim = static_cast<int64_t>(points.front().size());
  LTE_CHECK_MSG(dim == 1 || dim == 2, "ConvexRegion supports 1-D and 2-D");
  r.dimension_ = dim;
  if (dim == 1) {
    r.lo_ = points.front()[0];
    r.hi_ = points.front()[0];
    for (const auto& p : points) {
      LTE_CHECK_EQ(static_cast<int64_t>(p.size()), dim);
      r.lo_ = std::min(r.lo_, p[0]);
      r.hi_ = std::max(r.hi_, p[0]);
    }
    return r;
  }
  std::vector<Point2> pts;
  pts.reserve(points.size());
  for (const auto& p : points) {
    LTE_CHECK_EQ(static_cast<int64_t>(p.size()), dim);
    pts.push_back({p[0], p[1]});
  }
  r.hull_ = ConvexHull(std::move(pts));
  return r;
}

bool ConvexRegion::Contains(const std::vector<double>& point,
                            double eps) const {
  if (empty()) return false;
  LTE_CHECK_EQ(static_cast<int64_t>(point.size()), dimension_);
  if (dimension_ == 1) {
    return point[0] >= lo_ - eps && point[0] <= hi_ + eps;
  }
  return PointInConvexPolygon({point[0], point[1]}, hull_, eps);
}

void Region::AddPart(ConvexRegion part) {
  if (!part.empty()) parts_.push_back(std::move(part));
}

bool Region::Contains(const std::vector<double>& point, double eps) const {
  for (const ConvexRegion& part : parts_) {
    if (part.Contains(point, eps)) return true;
  }
  return false;
}

}  // namespace lte::geom
