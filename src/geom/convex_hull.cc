#include "geom/convex_hull.h"

#include <algorithm>
#include <cmath>

namespace lte::geom {

double Cross(const Point2& a, const Point2& b, const Point2& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

namespace {

bool LexLess(const Point2& a, const Point2& b) {
  return a.x < b.x || (a.x == b.x && a.y < b.y);
}

bool NearlyEqual(const Point2& a, const Point2& b) {
  return a.x == b.x && a.y == b.y;
}

// Distance from p to segment [a, b].
double SegmentDistance(const Point2& p, const Point2& a, const Point2& b) {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double len2 = dx * dx + dy * dy;
  double t = 0.0;
  if (len2 > 0.0) {
    t = ((p.x - a.x) * dx + (p.y - a.y) * dy) / len2;
    t = std::clamp(t, 0.0, 1.0);
  }
  const double px = a.x + t * dx - p.x;
  const double py = a.y + t * dy - p.y;
  return std::sqrt(px * px + py * py);
}

}  // namespace

std::vector<Point2> ConvexHull(std::vector<Point2> points) {
  std::sort(points.begin(), points.end(), LexLess);
  points.erase(std::unique(points.begin(), points.end(), NearlyEqual),
               points.end());
  const size_t n = points.size();
  if (n <= 2) return points;

  std::vector<Point2> hull(2 * n);
  size_t k = 0;
  // Lower hull.
  for (size_t i = 0; i < n; ++i) {
    while (k >= 2 && Cross(hull[k - 2], hull[k - 1], points[i]) <= 0.0) --k;
    hull[k++] = points[i];
  }
  // Upper hull.
  const size_t lower = k + 1;
  for (size_t i = n - 1; i-- > 0;) {
    while (k >= lower && Cross(hull[k - 2], hull[k - 1], points[i]) <= 0.0) --k;
    hull[k++] = points[i];
  }
  hull.resize(k - 1);  // The last point equals the first.
  if (hull.size() < 3) {
    // All input points were collinear; the loop above degenerates to the two
    // extreme points.
    return {points.front(), points.back()};
  }
  return hull;
}

bool PointInConvexPolygon(const Point2& p, const std::vector<Point2>& hull,
                          double eps) {
  if (hull.empty()) return false;
  if (hull.size() == 1) {
    return std::abs(p.x - hull[0].x) <= eps && std::abs(p.y - hull[0].y) <= eps;
  }
  if (hull.size() == 2) {
    return SegmentDistance(p, hull[0], hull[1]) <= eps;
  }
  // p is inside a CCW polygon iff it is on the left of (or on) every edge.
  for (size_t i = 0; i < hull.size(); ++i) {
    const Point2& a = hull[i];
    const Point2& b = hull[(i + 1) % hull.size()];
    if (Cross(a, b, p) < -eps) return false;
  }
  return true;
}

double PolygonArea(const std::vector<Point2>& hull) {
  if (hull.size() < 3) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < hull.size(); ++i) {
    const Point2& a = hull[i];
    const Point2& b = hull[(i + 1) % hull.size()];
    s += a.x * b.y - b.x * a.y;
  }
  return 0.5 * s;
}

}  // namespace lte::geom
