#include "nn/activations.h"

#include <cmath>

#include "common/check.h"

namespace lte::nn {

std::vector<double> Relu(const std::vector<double>& x) {
  std::vector<double> y(x.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] = x[i] > 0.0 ? x[i] : 0.0;
  return y;
}

std::vector<double> ReluBackward(const std::vector<double>& x,
                                 const std::vector<double>& grad_out) {
  LTE_CHECK_EQ(x.size(), grad_out.size());
  std::vector<double> g(x.size());
  for (size_t i = 0; i < x.size(); ++i) g[i] = x[i] > 0.0 ? grad_out[i] : 0.0;
  return g;
}

double Sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace lte::nn
