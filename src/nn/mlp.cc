#include "nn/mlp.h"

#include <algorithm>
#include <string>

#include "common/check.h"
#include "nn/activations.h"
#include "nn/simd_kernels.h"

namespace lte::nn {
namespace {

/// Validates a batch input's shape and returns the implied shared-head
/// width. The modulo check runs before the width division: a ragged `x`
/// whose size is not a multiple of `count` used to silently floor-divide
/// into a garbage head width — now it aborts naming both sizes.
int64_t CheckedBatchHeadWidth(size_t x_size, int64_t count,
                              int64_t in_features, size_t prefix_size,
                              int64_t first_layer_out) {
  LTE_CHECK_GE(count, 0);
  LTE_CHECK_MSG(
      count == 0 || x_size % static_cast<size_t>(count) == 0,
      ("batch forward: x.size()=" + std::to_string(x_size) +
       " is not a multiple of count=" + std::to_string(count) +
       " — ragged batch input")
          .c_str());
  // With a first-layer prefix, rows of x carry only the features after the
  // shared head; the head's width is implied by the row width.
  const int64_t head_w =
      count > 0 ? in_features - static_cast<int64_t>(x_size) / count : 0;
  if (prefix_size == 0) {
    LTE_CHECK_EQ(static_cast<int64_t>(x_size), count * in_features);
  } else {
    LTE_CHECK_EQ(static_cast<int64_t>(prefix_size), first_layer_out);
    LTE_CHECK_GE(head_w, 0);
    LTE_CHECK_EQ(static_cast<int64_t>(x_size),
                 count * (in_features - head_w));
  }
  return head_w;
}

}  // namespace

Mlp::Mlp(const std::vector<int64_t>& layer_sizes, Rng* rng) {
  LTE_CHECK_GE(layer_sizes.size(), 2u);
  for (size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
    layers_.emplace_back(layer_sizes[i], layer_sizes[i + 1], rng);
  }
}

int64_t Mlp::in_features() const {
  LTE_CHECK(!layers_.empty());
  return layers_.front().in_features();
}

int64_t Mlp::out_features() const {
  LTE_CHECK(!layers_.empty());
  return layers_.back().out_features();
}

std::vector<double> Mlp::Forward(const std::vector<double>& x,
                                 Cache* cache) const {
  LTE_CHECK(!layers_.empty());
  if (cache != nullptr) {
    cache->inputs.clear();
    cache->pre_activations.clear();
  }
  std::vector<double> h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    if (cache != nullptr) cache->inputs.push_back(h);
    std::vector<double> z = layers_[i].Forward(h);
    if (cache != nullptr) cache->pre_activations.push_back(z);
    // No activation after the final layer.
    h = (i + 1 < layers_.size()) ? Relu(z) : std::move(z);
  }
  return h;
}

void Mlp::ForwardBatchInto(std::span<const double> x, int64_t count,
                           BatchScratch* scratch, std::vector<double>* out,
                           std::span<const double> first_layer_prefix) const {
  LTE_CHECK(!layers_.empty());
  const int64_t head_w =
      CheckedBatchHeadWidth(x.size(), count, in_features(),
                            first_layer_prefix.size(),
                            layers_.front().out_features());
  const double* in = x.data();
  for (size_t i = 0; i < layers_.size(); ++i) {
    const Linear& layer = layers_[i];
    const int64_t in_w = layer.in_features();
    const int64_t out_w = layer.out_features();
    const bool first = i == 0;
    const bool last = i + 1 == layers_.size();
    // The first layer may skip the shared head: its rows are narrower and
    // its accumulators start from the precomputed prefix.
    const int64_t skip = first && !first_layer_prefix.empty() ? head_w : 0;
    const int64_t data_w = in_w - skip;
    std::vector<double>* dst =
        last ? out : (in == scratch->a.data() ? &scratch->b : &scratch->a);
    dst->resize(static_cast<size_t>(count * out_w));
    const double* weights = layer.weights().data().data();
    const std::vector<double>& bias = layer.bias();
    // Tiled over rows: each weight row is streamed from cache once per
    // kRowTile rows instead of once per row, and the innermost loop runs
    // kRowTile independent scalar accumulator chains — breaking the
    // single-accumulator FP-add latency chain a per-row dot product is
    // stuck with. The tile rows are read in place at stride data_w rather
    // than packed contiguously: a transposed pack invites the
    // autovectorizer in, and on the deployment hosts packed-double SSE
    // arithmetic measures slower per element than the scalar chains this
    // shape compiles to (see bench_columnar_scan). Each row's own
    // accumulation is untouched: accumulator t sums row t's terms in
    // ascending input order with the bias added after the full dot (same
    // operation order as Linear::Forward, ReLU fused), so every row is
    // bit-identical to the vector-at-a-time path.
    constexpr int64_t kRowTile = 8;
    const int64_t full = count - count % kRowTile;
    for (int64_t n0 = 0; n0 < full; n0 += kRowTile) {
      const double* base = in + n0 * data_w;
      for (int64_t o = 0; o < out_w; ++o) {
        const double* w = weights + o * in_w + skip;
        const double init =
            skip > 0 ? first_layer_prefix[static_cast<size_t>(o)] : 0.0;
        double acc[kRowTile];
        for (int64_t t = 0; t < kRowTile; ++t) acc[t] = init;
        for (int64_t c = 0; c < data_w; ++c) {
          const double wc = w[c];
          for (int64_t t = 0; t < kRowTile; ++t) {
            acc[t] += wc * base[t * data_w + c];
          }
        }
        const double b = bias[static_cast<size_t>(o)];
        for (int64_t t = 0; t < kRowTile; ++t) {
          const double s = acc[t] + b;
          dst->data()[(n0 + t) * out_w + o] = last ? s : (s > 0.0 ? s : 0.0);
        }
      }
    }
    // Ragged tail: one row at a time, identical per-row operation order.
    for (int64_t n = full; n < count; ++n) {
      const double* row = in + n * data_w;
      for (int64_t o = 0; o < out_w; ++o) {
        const double* w = weights + o * in_w + skip;
        double s = skip > 0 ? first_layer_prefix[static_cast<size_t>(o)] : 0.0;
        for (int64_t c = 0; c < data_w; ++c) s += w[c] * row[c];
        s += bias[static_cast<size_t>(o)];
        dst->data()[n * out_w + o] = last ? s : (s > 0.0 ? s : 0.0);
      }
    }
    in = dst->data();
  }
}

void Mlp::ForwardBatchSimdInto(std::span<const double> x, int64_t count,
                               BatchScratch* scratch, std::vector<double>* out,
                               std::span<const double> first_layer_prefix)
    const {
  LTE_CHECK(!layers_.empty());
  const int64_t head_w =
      CheckedBatchHeadWidth(x.size(), count, in_features(),
                            first_layer_prefix.size(),
                            layers_.front().out_features());
  out->resize(static_cast<size_t>(count * out_features()));
  if (count == 0) return;
  // Pack once into the transposed/padded float layout; every layer chains on
  // it and only the final activations are unpacked back to row-major double.
  const int64_t padded = simd::PaddedCount(count);
  const int64_t data_w0 =
      layers_.front().in_features() -
      (first_layer_prefix.empty() ? int64_t{0} : head_w);
  scratch->fa.resize(static_cast<size_t>(data_w0 * padded));
  simd::PackTransposedFloat(x.data(), count, data_w0, padded,
                            scratch->fa.data());
  const float* in = scratch->fa.data();
  for (size_t i = 0; i < layers_.size(); ++i) {
    const Linear& layer = layers_[i];
    const int64_t in_w = layer.in_features();
    const int64_t out_w = layer.out_features();
    const bool first = i == 0;
    const bool last = i + 1 == layers_.size();
    const int64_t skip = first && !first_layer_prefix.empty() ? head_w : 0;
    const float* init = nullptr;
    if (skip > 0) {
      // The shared-head prefix seeds each accumulator chain, exactly where
      // the scalar path resumes — converted to float once per call.
      scratch->finit.resize(static_cast<size_t>(out_w));
      for (int64_t o = 0; o < out_w; ++o) {
        scratch->finit[static_cast<size_t>(o)] =
            static_cast<float>(first_layer_prefix[static_cast<size_t>(o)]);
      }
      init = scratch->finit.data();
    }
    std::vector<float>* dst =
        in == scratch->fa.data() ? &scratch->fb : &scratch->fa;
    dst->resize(static_cast<size_t>(out_w * padded));
    simd::LayerForwardTransposed(layer.weights().data().data(), in_w, skip,
                                 in_w - skip, out_w, in, padded, init,
                                 layer.bias().data(), /*relu=*/!last,
                                 dst->data());
    in = dst->data();
  }
  simd::UnpackTransposedToDouble(in, count, out_features(), padded,
                                 out->data());
}

void Mlp::ComputeFirstLayerPrefix(std::span<const double> head,
                                  std::vector<double>* prefix) const {
  LTE_CHECK(!layers_.empty());
  const Linear& layer = layers_.front();
  LTE_CHECK_LE(static_cast<int64_t>(head.size()), layer.in_features());
  const int64_t in_w = layer.in_features();
  const int64_t out_w = layer.out_features();
  const double* weights = layer.weights().data().data();
  prefix->resize(static_cast<size_t>(out_w));
  for (int64_t o = 0; o < out_w; ++o) {
    const double* w = weights + o * in_w;
    double s = 0.0;
    for (size_t c = 0; c < head.size(); ++c) s += w[c] * head[c];
    (*prefix)[static_cast<size_t>(o)] = s;
  }
}

std::vector<double> Mlp::Backward(const Cache& cache,
                                  const std::vector<double>& grad_out) {
  LTE_CHECK_EQ(cache.inputs.size(), layers_.size());
  std::vector<double> g = grad_out;
  for (size_t i = layers_.size(); i-- > 0;) {
    if (i + 1 < layers_.size()) {
      g = ReluBackward(cache.pre_activations[i], g);
    }
    g = layers_[i].Backward(cache.inputs[i], g);
  }
  return g;
}

void Mlp::ZeroGrad() {
  for (Linear& l : layers_) l.ZeroGrad();
}

void Mlp::ApplyGradients(double lr) {
  for (Linear& l : layers_) l.ApplyGradients(lr);
}

int64_t Mlp::ParameterCount() const {
  int64_t n = 0;
  for (const Linear& l : layers_) n += l.ParameterCount();
  return n;
}

std::vector<double> Mlp::GetParameters() const {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(ParameterCount()));
  for (const Linear& l : layers_) l.AppendParameters(&out);
  return out;
}

void Mlp::SetParameters(const std::vector<double>& params) {
  LTE_CHECK_EQ(static_cast<int64_t>(params.size()), ParameterCount());
  size_t offset = 0;
  for (Linear& l : layers_) l.LoadParameters(params, &offset);
}

std::vector<int64_t> Mlp::LayerSizes() const {
  std::vector<int64_t> sizes;
  if (layers_.empty()) return sizes;
  sizes.push_back(layers_.front().in_features());
  for (const Linear& l : layers_) sizes.push_back(l.out_features());
  return sizes;
}

void Mlp::Save(BinaryWriter* writer) const {
  writer->WriteI64Vector(LayerSizes());
  writer->WriteDoubleVector(GetParameters());
}

Status Mlp::Load(BinaryReader* reader) {
  std::vector<int64_t> sizes;
  LTE_RETURN_IF_ERROR(reader->ReadI64Vector(&sizes));
  if (sizes.size() < 2) return Status::IoError("mlp load: bad layer sizes");
  for (int64_t s : sizes) {
    if (s <= 0) return Status::IoError("mlp load: non-positive layer size");
  }
  std::vector<double> params;
  LTE_RETURN_IF_ERROR(reader->ReadDoubleVector(&params));
  Rng scratch(0);  // Parameters are overwritten below.
  Mlp rebuilt(sizes, &scratch);
  if (static_cast<int64_t>(params.size()) != rebuilt.ParameterCount()) {
    return Status::IoError("mlp load: parameter count mismatch");
  }
  rebuilt.SetParameters(params);
  *this = std::move(rebuilt);
  return Status::OK();
}

std::vector<double> Mlp::GetGradients() const {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(ParameterCount()));
  for (const Linear& l : layers_) l.AppendGradients(&out);
  return out;
}

}  // namespace lte::nn
