#include "nn/mlp.h"

#include "common/check.h"
#include "nn/activations.h"

namespace lte::nn {

Mlp::Mlp(const std::vector<int64_t>& layer_sizes, Rng* rng) {
  LTE_CHECK_GE(layer_sizes.size(), 2u);
  for (size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
    layers_.emplace_back(layer_sizes[i], layer_sizes[i + 1], rng);
  }
}

int64_t Mlp::in_features() const {
  LTE_CHECK(!layers_.empty());
  return layers_.front().in_features();
}

int64_t Mlp::out_features() const {
  LTE_CHECK(!layers_.empty());
  return layers_.back().out_features();
}

std::vector<double> Mlp::Forward(const std::vector<double>& x,
                                 Cache* cache) const {
  LTE_CHECK(!layers_.empty());
  if (cache != nullptr) {
    cache->inputs.clear();
    cache->pre_activations.clear();
  }
  std::vector<double> h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    if (cache != nullptr) cache->inputs.push_back(h);
    std::vector<double> z = layers_[i].Forward(h);
    if (cache != nullptr) cache->pre_activations.push_back(z);
    // No activation after the final layer.
    h = (i + 1 < layers_.size()) ? Relu(z) : std::move(z);
  }
  return h;
}

std::vector<double> Mlp::Backward(const Cache& cache,
                                  const std::vector<double>& grad_out) {
  LTE_CHECK_EQ(cache.inputs.size(), layers_.size());
  std::vector<double> g = grad_out;
  for (size_t i = layers_.size(); i-- > 0;) {
    if (i + 1 < layers_.size()) {
      g = ReluBackward(cache.pre_activations[i], g);
    }
    g = layers_[i].Backward(cache.inputs[i], g);
  }
  return g;
}

void Mlp::ZeroGrad() {
  for (Linear& l : layers_) l.ZeroGrad();
}

void Mlp::ApplyGradients(double lr) {
  for (Linear& l : layers_) l.ApplyGradients(lr);
}

int64_t Mlp::ParameterCount() const {
  int64_t n = 0;
  for (const Linear& l : layers_) n += l.ParameterCount();
  return n;
}

std::vector<double> Mlp::GetParameters() const {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(ParameterCount()));
  for (const Linear& l : layers_) l.AppendParameters(&out);
  return out;
}

void Mlp::SetParameters(const std::vector<double>& params) {
  LTE_CHECK_EQ(static_cast<int64_t>(params.size()), ParameterCount());
  size_t offset = 0;
  for (Linear& l : layers_) l.LoadParameters(params, &offset);
}

std::vector<int64_t> Mlp::LayerSizes() const {
  std::vector<int64_t> sizes;
  if (layers_.empty()) return sizes;
  sizes.push_back(layers_.front().in_features());
  for (const Linear& l : layers_) sizes.push_back(l.out_features());
  return sizes;
}

void Mlp::Save(BinaryWriter* writer) const {
  writer->WriteI64Vector(LayerSizes());
  writer->WriteDoubleVector(GetParameters());
}

Status Mlp::Load(BinaryReader* reader) {
  std::vector<int64_t> sizes;
  LTE_RETURN_IF_ERROR(reader->ReadI64Vector(&sizes));
  if (sizes.size() < 2) return Status::IoError("mlp load: bad layer sizes");
  for (int64_t s : sizes) {
    if (s <= 0) return Status::IoError("mlp load: non-positive layer size");
  }
  std::vector<double> params;
  LTE_RETURN_IF_ERROR(reader->ReadDoubleVector(&params));
  Rng scratch(0);  // Parameters are overwritten below.
  Mlp rebuilt(sizes, &scratch);
  if (static_cast<int64_t>(params.size()) != rebuilt.ParameterCount()) {
    return Status::IoError("mlp load: parameter count mismatch");
  }
  rebuilt.SetParameters(params);
  *this = std::move(rebuilt);
  return Status::OK();
}

std::vector<double> Mlp::GetGradients() const {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(ParameterCount()));
  for (const Linear& l : layers_) l.AppendGradients(&out);
  return out;
}

}  // namespace lte::nn
