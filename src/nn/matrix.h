#ifndef LTE_NN_MATRIX_H_
#define LTE_NN_MATRIX_H_

#include <cstdint>
#include <vector>

#include "common/binary_io.h"
#include "common/rng.h"

namespace lte::nn {

/// A dense row-major matrix of doubles.
///
/// This is the numeric workhorse of the NN substrate: layer weights, the
/// memory matrices of the memory-augmented optimizer (M_R, M_vR, M_CP), and
/// the embedding-conversion transform are all `Matrix`. The class stays
/// deliberately small — the library needs vector-in/vector-out products and
/// elementwise updates, not a full BLAS.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int64_t rows, int64_t cols);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t size() const { return rows_ * cols_; }

  double& operator()(int64_t r, int64_t c) {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  double operator()(int64_t r, int64_t c) const {
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>* mutable_data() { return &data_; }

  /// Sets every entry to v.
  void Fill(double v);

  /// Kaiming-uniform initialization: U(-limit, limit) with
  /// limit = sqrt(6 / fan_in); suitable for the ReLU MLPs used throughout.
  void InitKaiming(Rng* rng, int64_t fan_in);

  /// Gaussian initialization with the given standard deviation (used for the
  /// randomly initialized memory matrices, paper Section VI-B).
  void InitGaussian(Rng* rng, double stddev);

  /// y = this * x  (x has cols() entries, y has rows() entries).
  std::vector<double> MatVec(const std::vector<double>& x) const;

  /// y = this^T * x (x has rows() entries, y has cols() entries).
  std::vector<double> TransposeMatVec(const std::vector<double>& x) const;

  /// this += scale * (a outer b), where a has rows() and b has cols()
  /// entries. Used for gradient accumulation (dW += dy x^T) and the
  /// attentive memory updates (a_R x v_R^T).
  void AddOuter(const std::vector<double>& a, const std::vector<double>& b,
                double scale = 1.0);

  /// this = alpha * other + (1 - alpha) * this. Shapes must match. This is
  /// the exponential write used by the memory update rules (Eq. 14-16).
  void Blend(const Matrix& other, double alpha);

  /// this += scale * other (shapes must match).
  void AddScaled(const Matrix& other, double scale);

  /// One row as a vector copy.
  std::vector<double> Row(int64_t r) const;
  void SetRow(int64_t r, const std::vector<double>& values);

  /// Frobenius norm.
  double FrobeniusNorm() const;

  /// Serialization (model persistence; see core/serialization docs).
  void Save(BinaryWriter* writer) const;
  Status Load(BinaryReader* reader);

 private:
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace lte::nn

#endif  // LTE_NN_MATRIX_H_
