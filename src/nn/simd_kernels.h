#ifndef LTE_NN_SIMD_KERNELS_H_
#define LTE_NN_SIMD_KERNELS_H_

#include <cstdint>
#include <vector>

namespace lte::nn::simd {

/// Float lanes the vector kernels process per register chunk. 8 x f32 is one
/// AVX register on x86 and two NEON registers on aarch64; the kernels are
/// written against GCC/Clang vector extensions, so the compiler lowers the
/// chunk to whatever the target ISA provides (SSE2 splits it in two).
inline constexpr int64_t kFloatLanes = 8;

/// Accumulator chunks kept live per output row — the n-dimension tile is
/// kAccChunks * kFloatLanes columns wide, so each broadcast weight is reused
/// across 32 tuples and the FP-add latency chain is broken 32 ways.
inline constexpr int64_t kAccChunks = 4;

/// Columns every transposed buffer is padded to: a whole number of
/// accumulator tiles, so the kernels never need a ragged-edge epilogue. The
/// pad columns are zero-filled and their outputs are never read back.
int64_t PaddedCount(int64_t count);

/// Packs a row-major double matrix (`count` rows of `width`) into the
/// transposed float layout the kernels consume: `xt[c * padded + n]` =
/// `float(x[n * width + c])`, with columns `count..padded` zeroed. `xt` must
/// hold `width * padded` floats.
void PackTransposedFloat(const double* x, int64_t count, int64_t width,
                         int64_t padded, float* xt);

/// Unpacks the transposed float layout back into row-major doubles:
/// `out[n * width + o] = double(yt[o * padded + n])` for `n < count`.
void UnpackTransposedToDouble(const float* yt, int64_t count, int64_t width,
                              int64_t padded, double* out);

/// One dense layer over the transposed layout — the throughput-mode
/// counterpart of the scalar tile loop in `Mlp::ForwardBatchInto`:
///
///   yt[o * padded + n] = act( init[o]
///                             + sum_c weights[o * w_stride + skip + c]
///                                     * xt[c * padded + n]
///                             + (bias != nullptr ? bias[o] : 0) )
///
/// for o in [0, out_w), n in [0, padded), c ascending in [0, data_w), with
/// act = ReLU when `relu` and identity otherwise. `init` (per-output
/// starting accumulator, e.g. a folded constant-head prefix; nullptr = 0)
/// seeds the chain and `bias` is added after the full dot product — the same
/// element-level operation order as the scalar reference, so the only
/// difference from the bit-exact path is float32 arithmetic. Weights and
/// bias stay double and are converted on the fly: one convert per (o, c),
/// amortized over the whole n-tile by the broadcast.
///
/// Each output element's sum is a single ascending-c chain — vectorization
/// runs across n (independent tuples), never inside one element's
/// accumulation — so results are deterministic: independent of padding,
/// tiling, thread count, and of which other rows share the batch.
void LayerForwardTransposed(const double* weights, int64_t w_stride,
                            int64_t skip, int64_t data_w, int64_t out_w,
                            const float* xt, int64_t padded, const float* init,
                            const double* bias, bool relu, float* yt);

}  // namespace lte::nn::simd

#endif  // LTE_NN_SIMD_KERNELS_H_
