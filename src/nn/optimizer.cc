#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace lte::nn {

SgdOptimizer::SgdOptimizer(double learning_rate, double momentum)
    : learning_rate_(learning_rate), momentum_(momentum) {}

void SgdOptimizer::Step(const std::vector<double>& grads,
                        std::vector<double>* params) {
  LTE_CHECK_EQ(grads.size(), params->size());
  if (momentum_ == 0.0) {
    for (size_t i = 0; i < grads.size(); ++i) {
      (*params)[i] -= learning_rate_ * grads[i];
    }
    return;
  }
  if (velocity_.size() != grads.size()) velocity_.assign(grads.size(), 0.0);
  for (size_t i = 0; i < grads.size(); ++i) {
    velocity_[i] = momentum_ * velocity_[i] + grads[i];
    (*params)[i] -= learning_rate_ * velocity_[i];
  }
}

AdamOptimizer::AdamOptimizer(double learning_rate, double beta1, double beta2,
                             double epsilon)
    : learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {}

void AdamOptimizer::Step(const std::vector<double>& grads,
                         std::vector<double>* params) {
  LTE_CHECK_EQ(grads.size(), params->size());
  if (m_.size() != grads.size()) {
    m_.assign(grads.size(), 0.0);
    v_.assign(grads.size(), 0.0);
    t_ = 0;
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < grads.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grads[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grads[i] * grads[i];
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    (*params)[i] -= learning_rate_ * mhat / (std::sqrt(vhat) + epsilon_);
  }
}

}  // namespace lte::nn
