#ifndef LTE_NN_ACTIVATIONS_H_
#define LTE_NN_ACTIVATIONS_H_

#include <vector>

namespace lte::nn {

/// Elementwise ReLU.
std::vector<double> Relu(const std::vector<double>& x);

/// Gradient of ReLU: grad_in[i] = grad_out[i] * (x[i] > 0).
std::vector<double> ReluBackward(const std::vector<double>& x,
                                 const std::vector<double>& grad_out);

/// Numerically stable logistic sigmoid.
double Sigmoid(double z);

}  // namespace lte::nn

#endif  // LTE_NN_ACTIVATIONS_H_
