#include "nn/simd_kernels.h"

#include <cstring>

#include "common/check.h"

// The kernels are written against GCC/Clang vector extensions: a fixed
// 8 x f32 chunk type the compiler lowers to the target's native vectors
// (AVX ymm, two SSE xmm, two NEON q-registers). This keeps the kernels
// explicit about shape — broadcast weight times contiguous tuple lanes,
// kAccChunks independent accumulator chunks — without committing to one
// ISA's intrinsics. A scalar fallback with the identical per-element
// operation order covers other compilers, so results never depend on which
// path was compiled in.
#if defined(__GNUC__) || defined(__clang__)
#define LTE_SIMD_VECTOR_EXT 1
#endif

namespace lte::nn::simd {
namespace {

#if defined(LTE_SIMD_VECTOR_EXT)
typedef float VecF __attribute__((vector_size(kFloatLanes * sizeof(float))));

inline VecF LoadF(const float* p) {
  VecF v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void StoreF(float* p, VecF v) { std::memcpy(p, &v, sizeof(v)); }

inline VecF BroadcastF(float x) {
  return VecF{x, x, x, x, x, x, x, x};
}
#endif

}  // namespace

int64_t PaddedCount(int64_t count) {
  constexpr int64_t kTile = kAccChunks * kFloatLanes;
  return ((count + kTile - 1) / kTile) * kTile;
}

void PackTransposedFloat(const double* x, int64_t count, int64_t width,
                         int64_t padded, float* xt) {
  LTE_CHECK_GE(padded, count);
  for (int64_t c = 0; c < width; ++c) {
    float* col = xt + c * padded;
    for (int64_t n = 0; n < count; ++n) {
      col[n] = static_cast<float>(x[n * width + c]);
    }
    for (int64_t n = count; n < padded; ++n) col[n] = 0.0f;
  }
}

void UnpackTransposedToDouble(const float* yt, int64_t count, int64_t width,
                              int64_t padded, double* out) {
  for (int64_t n = 0; n < count; ++n) {
    for (int64_t o = 0; o < width; ++o) {
      out[n * width + o] = static_cast<double>(yt[o * padded + n]);
    }
  }
}

void LayerForwardTransposed(const double* weights, int64_t w_stride,
                            int64_t skip, int64_t data_w, int64_t out_w,
                            const float* xt, int64_t padded, const float* init,
                            const double* bias, bool relu, float* yt) {
  constexpr int64_t kTile = kAccChunks * kFloatLanes;
  LTE_CHECK_EQ(padded % kTile, 0);
#if defined(LTE_SIMD_VECTOR_EXT)
  const VecF zero = BroadcastF(0.0f);
  for (int64_t o = 0; o < out_w; ++o) {
    const double* w = weights + o * w_stride + skip;
    const VecF seed = init != nullptr ? BroadcastF(init[o]) : zero;
    const VecF b = bias != nullptr
                       ? BroadcastF(static_cast<float>(bias[o]))
                       : zero;
    float* row = yt + o * padded;
    for (int64_t n0 = 0; n0 < padded; n0 += kTile) {
      VecF acc[kAccChunks];
      for (int64_t t = 0; t < kAccChunks; ++t) acc[t] = seed;
      const float* base = xt + n0;
      for (int64_t c = 0; c < data_w; ++c) {
        const VecF wc = BroadcastF(static_cast<float>(w[c]));
        const float* col = base + c * padded;
        for (int64_t t = 0; t < kAccChunks; ++t) {
          acc[t] += wc * LoadF(col + t * kFloatLanes);
        }
      }
      for (int64_t t = 0; t < kAccChunks; ++t) {
        VecF s = acc[t] + b;
        if (relu) s = s > zero ? s : zero;  // Lanewise blend (vector ?:).
        StoreF(row + n0 + t * kFloatLanes, s);
      }
    }
  }
#else
  // Scalar fallback: the exact lane-level arithmetic of the vector path —
  // per element one ascending-c float chain seeded from init, bias after the
  // dot, ReLU last — so both compilations produce identical bits.
  for (int64_t o = 0; o < out_w; ++o) {
    const double* w = weights + o * w_stride + skip;
    const float seed = init != nullptr ? init[o] : 0.0f;
    const float b = bias != nullptr ? static_cast<float>(bias[o]) : 0.0f;
    float* row = yt + o * padded;
    for (int64_t n = 0; n < padded; ++n) {
      float acc = seed;
      for (int64_t c = 0; c < data_w; ++c) {
        acc += static_cast<float>(w[c]) * xt[c * padded + n];
      }
      float s = acc + b;
      if (relu) s = s > 0.0f ? s : 0.0f;  // -0.0f -> +0.0f, like the blend.
      row[n] = s;
    }
  }
#endif
}

}  // namespace lte::nn::simd
