#ifndef LTE_NN_MLP_H_
#define LTE_NN_MLP_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/binary_io.h"
#include "common/rng.h"
#include "nn/linear.h"

namespace lte::nn {

/// Which kernel implementation backs the batched inference forwards.
enum class BatchKernel {
  /// Default: scalar double tiles, bit-identical to the row-at-a-time path
  /// (the serving determinism contract). Always the reference.
  kScalar,
  /// Opt-in throughput mode: float32 arithmetic over a transposed/packed
  /// layout with explicit vector kernels (nn/simd_kernels.h). Outputs are
  /// statistically — not bitwise — equal to the scalar reference; callers
  /// gate it with a parity test, never a byte-identity test. Deterministic
  /// in its own right: the same inputs produce the same bits at any thread
  /// count and in any batch composition.
  kSimd,
};

/// A multi-layer perceptron: Linear -> ReLU -> ... -> Linear (no activation
/// on the final layer; callers apply sigmoid / BCE-with-logits as needed).
///
/// Serves as each of the three building blocks of the UIS classifier (paper
/// Section VI-A): the UIS feature embedding block f_R, the data tuple
/// embedding block f_tau, and the classification block f_clf. The flattened
/// parameter interface (GetParameters / SetParameters) is what lets the
/// meta-trainer copy φ -> θ per task and lets the UIS-feature memory store
/// parameter-shaped rows (|θ_R| columns).
class Mlp {
 public:
  Mlp() = default;

  /// `layer_sizes` = {in, hidden..., out}; must have >= 2 entries.
  Mlp(const std::vector<int64_t>& layer_sizes, Rng* rng);

  int64_t in_features() const;
  int64_t out_features() const;
  int64_t num_layers() const { return static_cast<int64_t>(layers_.size()); }

  /// Intermediate state captured by Forward for use by Backward.
  struct Cache {
    /// inputs[i] is the input to layer i (post-activation of layer i-1).
    std::vector<std::vector<double>> inputs;
    /// pre_activations[i] is layer i's linear output (pre-ReLU).
    std::vector<std::vector<double>> pre_activations;
  };

  /// Forward pass; fills *cache when non-null.
  std::vector<double> Forward(const std::vector<double>& x,
                              Cache* cache = nullptr) const;

  /// Reusable ping-pong activation buffers for ForwardBatchInto. Capacities
  /// reach a steady state after the first block, so batched inference
  /// allocates nothing per call. The float buffers are the kSimd
  /// throughput-mode counterparts (transposed/packed layout); they stay
  /// empty unless the SIMD path runs.
  struct BatchScratch {
    std::vector<double> a;
    std::vector<double> b;
    std::vector<float> fa;      // Transposed float activations (ping).
    std::vector<float> fb;      // Transposed float activations (pong).
    std::vector<float> finit;   // Per-output float accumulator seeds.
  };

  /// Batch inference forward for the columnar serving path: `x` holds
  /// `count` row-major inputs of in_features() doubles each; writes `count`
  /// row-major outputs of out_features() doubles into `*out` (resized).
  /// Captures no cache (inference only, no Backward). Each row's output is
  /// bit-identical to Forward on that row — every output element accumulates
  /// its dot product in the same order, adds the bias last, and applies the
  /// same ReLU — so batching rows never changes results.
  ///
  /// `first_layer_prefix` supports inputs whose leading features are the
  /// same for every row in the batch (e.g. a per-user embedding
  /// concatenated before per-tuple features): pass the shared head's
  /// partial dot products from ComputeFirstLayerPrefix and rows of `x` that
  /// carry only the remaining in_features() - head_width per-row features.
  /// The first layer then resumes each accumulation from the shared prefix
  /// — the exact running sum Forward reaches after the head's terms — so
  /// outputs stay bit-identical while the head is neither copied per row
  /// nor re-multiplied per row. Empty (default) = rows carry all features.
  void ForwardBatchInto(std::span<const double> x, int64_t count,
                        BatchScratch* scratch, std::vector<double>* out,
                        std::span<const double> first_layer_prefix = {}) const;

  /// SIMD throughput-mode counterpart of ForwardBatchInto (BatchKernel
  /// doc): same shapes, same `first_layer_prefix` contract, but the layers
  /// run in float32 over a transposed/packed layout with explicit vector
  /// kernels. Each output element still accumulates its dot product in
  /// ascending input order, seeds from the (float-converted) prefix, adds
  /// the bias last, and applies the same ReLU — the operation *order* of the
  /// scalar reference at float precision — so outputs are statistically
  /// close (parity-gated by callers) and fully deterministic, just not
  /// bit-equal to the double path.
  void ForwardBatchSimdInto(std::span<const double> x, int64_t count,
                            BatchScratch* scratch, std::vector<double>* out,
                            std::span<const double> first_layer_prefix = {})
      const;

  /// Partial first-layer dot products of a shared input head:
  /// (*prefix)[o] = sum_{c < head.size()} weights0[o][c] * head[c],
  /// accumulated in ascending c — the running-sum prefix Forward's first
  /// layer reaches after `head.size()` terms. Feed to ForwardBatchInto.
  void ComputeFirstLayerPrefix(std::span<const double> head,
                               std::vector<double>* prefix) const;

  /// Backpropagates grad_out (gradient w.r.t. the final linear output),
  /// accumulating layer gradients; returns the gradient w.r.t. the input.
  std::vector<double> Backward(const Cache& cache,
                               const std::vector<double>& grad_out);

  void ZeroGrad();

  /// SGD step on the accumulated gradients.
  void ApplyGradients(double lr);

  int64_t ParameterCount() const;
  std::vector<double> GetParameters() const;
  void SetParameters(const std::vector<double>& params);
  std::vector<double> GetGradients() const;

  /// Layer widths {in, hidden..., out} (the constructor argument).
  std::vector<int64_t> LayerSizes() const;

  /// Serialization: layer sizes + flattened parameters.
  void Save(BinaryWriter* writer) const;
  Status Load(BinaryReader* reader);

  const std::vector<Linear>& layers() const { return layers_; }

 private:
  std::vector<Linear> layers_;
};

}  // namespace lte::nn

#endif  // LTE_NN_MLP_H_
