#include "nn/loss.h"

#include <cmath>

#include "nn/activations.h"

namespace lte::nn {

double BceWithLogits(double logit, double label) {
  const double z = logit;
  return std::max(z, 0.0) - z * label + std::log1p(std::exp(-std::abs(z)));
}

double BceWithLogitsGrad(double logit, double label) {
  return Sigmoid(logit) - label;
}

}  // namespace lte::nn
