#include "nn/linear.h"

#include "common/check.h"

namespace lte::nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng* rng)
    : weights_(out_features, in_features),
      bias_(static_cast<size_t>(out_features), 0.0),
      grad_weights_(out_features, in_features),
      grad_bias_(static_cast<size_t>(out_features), 0.0) {
  weights_.InitKaiming(rng, in_features);
}

std::vector<double> Linear::Forward(const std::vector<double>& x) const {
  std::vector<double> y = weights_.MatVec(x);
  for (size_t i = 0; i < y.size(); ++i) y[i] += bias_[i];
  return y;
}

std::vector<double> Linear::Backward(const std::vector<double>& x,
                                     const std::vector<double>& grad_out) {
  LTE_CHECK_EQ(static_cast<int64_t>(grad_out.size()), out_features());
  grad_weights_.AddOuter(grad_out, x);
  for (size_t i = 0; i < grad_bias_.size(); ++i) grad_bias_[i] += grad_out[i];
  return weights_.TransposeMatVec(grad_out);
}

void Linear::ZeroGrad() {
  grad_weights_.Fill(0.0);
  for (double& g : grad_bias_) g = 0.0;
}

int64_t Linear::ParameterCount() const {
  return weights_.size() + static_cast<int64_t>(bias_.size());
}

void Linear::AppendParameters(std::vector<double>* out) const {
  out->insert(out->end(), weights_.data().begin(), weights_.data().end());
  out->insert(out->end(), bias_.begin(), bias_.end());
}

void Linear::LoadParameters(const std::vector<double>& data, size_t* offset) {
  LTE_CHECK_LE(*offset + static_cast<size_t>(ParameterCount()), data.size());
  std::vector<double>* w = weights_.mutable_data();
  std::copy(data.begin() + static_cast<long>(*offset),
            data.begin() + static_cast<long>(*offset) + weights_.size(),
            w->begin());
  *offset += static_cast<size_t>(weights_.size());
  std::copy(data.begin() + static_cast<long>(*offset),
            data.begin() + static_cast<long>(*offset) +
                static_cast<long>(bias_.size()),
            bias_.begin());
  *offset += bias_.size();
}

void Linear::AppendGradients(std::vector<double>* out) const {
  out->insert(out->end(), grad_weights_.data().begin(),
              grad_weights_.data().end());
  out->insert(out->end(), grad_bias_.begin(), grad_bias_.end());
}

void Linear::ApplyGradients(double lr) {
  weights_.AddScaled(grad_weights_, -lr);
  for (size_t i = 0; i < bias_.size(); ++i) bias_[i] -= lr * grad_bias_[i];
}

}  // namespace lte::nn
