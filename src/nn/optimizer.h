#ifndef LTE_NN_OPTIMIZER_H_
#define LTE_NN_OPTIMIZER_H_

#include <cstdint>
#include <vector>

namespace lte::nn {

/// First-order optimizers operating on flattened parameter vectors.
///
/// The meta-trainer's local updates are plain SGD (paper Eq. 12); the global
/// update (Eq. 13) is a one-step aggregated gradient step for which SGD is
/// also used. Adam is provided for the `Basic` (non-meta) classifier variant
/// and for users who plug the NN substrate into their own training loops.

/// Stochastic gradient descent with optional momentum.
class SgdOptimizer {
 public:
  explicit SgdOptimizer(double learning_rate, double momentum = 0.0);

  /// params -= lr * (grads + momentum buffer).
  void Step(const std::vector<double>& grads, std::vector<double>* params);

  double learning_rate() const { return learning_rate_; }
  void set_learning_rate(double lr) { learning_rate_ = lr; }

 private:
  double learning_rate_;
  double momentum_;
  std::vector<double> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class AdamOptimizer {
 public:
  explicit AdamOptimizer(double learning_rate, double beta1 = 0.9,
                         double beta2 = 0.999, double epsilon = 1e-8);

  void Step(const std::vector<double>& grads, std::vector<double>* params);

  double learning_rate() const { return learning_rate_; }
  void set_learning_rate(double lr) { learning_rate_ = lr; }

 private:
  double learning_rate_;
  double beta1_;
  double beta2_;
  double epsilon_;
  int64_t t_ = 0;
  std::vector<double> m_;
  std::vector<double> v_;
};

}  // namespace lte::nn

#endif  // LTE_NN_OPTIMIZER_H_
