#ifndef LTE_NN_LINEAR_H_
#define LTE_NN_LINEAR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "nn/matrix.h"

namespace lte::nn {

/// A fully connected layer y = W x + b with manual gradients.
///
/// Gradients accumulate into `grad_weights`/`grad_bias` until ZeroGrad();
/// callers decide when to step (the meta-trainer performs both local (θ) and
/// global (φ) updates from these accumulators).
class Linear {
 public:
  Linear() = default;
  Linear(int64_t in_features, int64_t out_features, Rng* rng);

  int64_t in_features() const { return weights_.cols(); }
  int64_t out_features() const { return weights_.rows(); }

  /// y = W x + b.
  std::vector<double> Forward(const std::vector<double>& x) const;

  /// Accumulates dW += grad_out x^T and db += grad_out; returns
  /// grad_in = W^T grad_out. `x` must be the input passed to Forward.
  std::vector<double> Backward(const std::vector<double>& x,
                               const std::vector<double>& grad_out);

  void ZeroGrad();

  /// Number of scalar parameters (weights + bias).
  int64_t ParameterCount() const;

  /// Appends parameters (row-major weights, then bias) to *out.
  void AppendParameters(std::vector<double>* out) const;

  /// Reads ParameterCount() values from data[*offset], advancing *offset.
  void LoadParameters(const std::vector<double>& data, size_t* offset);

  /// Appends accumulated gradients in the same layout as AppendParameters.
  void AppendGradients(std::vector<double>* out) const;

  /// In-place SGD step: params -= lr * grads (accumulators unchanged).
  void ApplyGradients(double lr);

  const Matrix& weights() const { return weights_; }
  const std::vector<double>& bias() const { return bias_; }

 private:
  Matrix weights_;                 // out x in.
  std::vector<double> bias_;       // out.
  Matrix grad_weights_;            // Same shape as weights_.
  std::vector<double> grad_bias_;  // Same shape as bias_.
};

}  // namespace lte::nn

#endif  // LTE_NN_LINEAR_H_
