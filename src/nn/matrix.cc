#include "nn/matrix.h"

#include <cmath>

#include "common/check.h"

namespace lte::nn {

Matrix::Matrix(int64_t rows, int64_t cols) : rows_(rows), cols_(cols) {
  LTE_CHECK_GE(rows, 0);
  LTE_CHECK_GE(cols, 0);
  data_.assign(static_cast<size_t>(rows * cols), 0.0);
}

void Matrix::Fill(double v) {
  for (double& x : data_) x = v;
}

void Matrix::InitKaiming(Rng* rng, int64_t fan_in) {
  LTE_CHECK_GT(fan_in, 0);
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in));
  for (double& x : data_) x = rng->Uniform(-limit, limit);
}

void Matrix::InitGaussian(Rng* rng, double stddev) {
  for (double& x : data_) x = rng->Normal(0.0, stddev);
}

std::vector<double> Matrix::MatVec(const std::vector<double>& x) const {
  LTE_CHECK_EQ(static_cast<int64_t>(x.size()), cols_);
  std::vector<double> y(static_cast<size_t>(rows_), 0.0);
  for (int64_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    const double* row = &data_[static_cast<size_t>(r * cols_)];
    for (int64_t c = 0; c < cols_; ++c) s += row[c] * x[static_cast<size_t>(c)];
    y[static_cast<size_t>(r)] = s;
  }
  return y;
}

std::vector<double> Matrix::TransposeMatVec(
    const std::vector<double>& x) const {
  LTE_CHECK_EQ(static_cast<int64_t>(x.size()), rows_);
  std::vector<double> y(static_cast<size_t>(cols_), 0.0);
  for (int64_t r = 0; r < rows_; ++r) {
    const double xr = x[static_cast<size_t>(r)];
    if (xr == 0.0) continue;
    const double* row = &data_[static_cast<size_t>(r * cols_)];
    for (int64_t c = 0; c < cols_; ++c) y[static_cast<size_t>(c)] += row[c] * xr;
  }
  return y;
}

void Matrix::AddOuter(const std::vector<double>& a,
                      const std::vector<double>& b, double scale) {
  LTE_CHECK_EQ(static_cast<int64_t>(a.size()), rows_);
  LTE_CHECK_EQ(static_cast<int64_t>(b.size()), cols_);
  for (int64_t r = 0; r < rows_; ++r) {
    const double ar = scale * a[static_cast<size_t>(r)];
    if (ar == 0.0) continue;
    double* row = &data_[static_cast<size_t>(r * cols_)];
    for (int64_t c = 0; c < cols_; ++c) row[c] += ar * b[static_cast<size_t>(c)];
  }
}

void Matrix::Blend(const Matrix& other, double alpha) {
  LTE_CHECK_EQ(rows_, other.rows_);
  LTE_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] = alpha * other.data_[i] + (1.0 - alpha) * data_[i];
  }
}

void Matrix::AddScaled(const Matrix& other, double scale) {
  LTE_CHECK_EQ(rows_, other.rows_);
  LTE_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

std::vector<double> Matrix::Row(int64_t r) const {
  LTE_CHECK_GE(r, 0);
  LTE_CHECK_LT(r, rows_);
  return std::vector<double>(data_.begin() + r * cols_,
                             data_.begin() + (r + 1) * cols_);
}

void Matrix::SetRow(int64_t r, const std::vector<double>& values) {
  LTE_CHECK_GE(r, 0);
  LTE_CHECK_LT(r, rows_);
  LTE_CHECK_EQ(static_cast<int64_t>(values.size()), cols_);
  std::copy(values.begin(), values.end(), data_.begin() + r * cols_);
}

void Matrix::Save(BinaryWriter* writer) const {
  writer->WriteI64(rows_);
  writer->WriteI64(cols_);
  writer->WriteDoubleVector(data_);
}

Status Matrix::Load(BinaryReader* reader) {
  int64_t rows = 0;
  int64_t cols = 0;
  LTE_RETURN_IF_ERROR(reader->ReadI64(&rows));
  LTE_RETURN_IF_ERROR(reader->ReadI64(&cols));
  if (rows < 0 || cols < 0) {
    return Status::IoError("matrix load: negative dimensions");
  }
  std::vector<double> data;
  LTE_RETURN_IF_ERROR(reader->ReadDoubleVector(&data));
  if (static_cast<int64_t>(data.size()) != rows * cols) {
    return Status::IoError("matrix load: size mismatch");
  }
  rows_ = rows;
  cols_ = cols;
  data_ = std::move(data);
  return Status::OK();
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

}  // namespace lte::nn
