#ifndef LTE_NN_LOSS_H_
#define LTE_NN_LOSS_H_

namespace lte::nn {

/// Binary cross-entropy on a single logit, fused with the sigmoid for
/// numerical stability: loss = max(z,0) - z*y + log(1 + exp(-|z|)).
/// `label` must be 0 or 1.
double BceWithLogits(double logit, double label);

/// d loss / d logit = sigmoid(logit) - label.
double BceWithLogitsGrad(double logit, double label);

}  // namespace lte::nn

#endif  // LTE_NN_LOSS_H_
