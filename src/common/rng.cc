#include "common/rng.h"

#include <algorithm>
#include <sstream>
#include <string>

#include "common/binary_io.h"
#include "common/check.h"

namespace lte {

int64_t Rng::UniformInt(int64_t n) {
  LTE_CHECK_GT(n, 0);
  std::uniform_int_distribution<int64_t> dist(0, n - 1);
  return dist(engine_);
}

double Rng::Uniform(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  LTE_CHECK_GE(k, 0);
  LTE_CHECK_LE(k, n);
  // Floyd's algorithm would avoid materializing [0, n), but reservoir-style
  // selection over the index range keeps the draw order deterministic and
  // n is small everywhere this is used (sampled tuple sets, cluster centers).
  std::vector<int64_t> all(n);
  for (int64_t i = 0; i < n; ++i) all[i] = i;
  std::shuffle(all.begin(), all.end(), engine_);
  all.resize(k);
  std::sort(all.begin(), all.end());
  return all;
}

Rng Rng::Fork() {
  std::uniform_int_distribution<uint64_t> dist;
  return Rng(dist(engine_));
}

void Rng::Save(BinaryWriter* writer) const {
  // mt19937_64 defines an exact textual state round-trip via operator<</>>
  // (624 words plus the position, space-separated decimal); storing that
  // string is simpler and no less precise than re-encoding the words.
  std::ostringstream state;
  state << engine_;
  writer->WriteU64(seed_);
  writer->WriteString(state.str());
}

Status Rng::Load(BinaryReader* reader) {
  uint64_t seed = 0;
  std::string state;
  LTE_RETURN_IF_ERROR(reader->ReadU64(&seed));
  LTE_RETURN_IF_ERROR(reader->ReadString(&state));
  std::istringstream in(state);
  std::mt19937_64 engine;
  in >> engine;
  if (in.fail()) {
    return Status::IoError("rng load: malformed engine state");
  }
  seed_ = seed;
  engine_ = engine;
  return Status::OK();
}

Rng Rng::Fork(uint64_t key) const {
  // SplitMix64 finalizer over the construction seed and the golden-ratio
  // spread of the key: well-mixed child seeds even for consecutive keys,
  // without touching the parent engine.
  uint64_t z = seed_ ^ (0x9E3779B97F4A7C15ULL * (key + 1));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return Rng(z ^ (z >> 31));
}

}  // namespace lte
