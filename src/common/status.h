#ifndef LTE_COMMON_STATUS_H_
#define LTE_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace lte {

/// Error codes for fallible operations across the LTE public API.
///
/// Following the database-library convention (RocksDB / Arrow), the library
/// does not throw exceptions across API boundaries; operations that can fail
/// return a `Status` (or a `Result<T>`-like out parameter pattern).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
};

/// A lightweight success-or-error value.
///
/// A default-constructed `Status` is OK. Error statuses carry a code and a
/// human-readable message. `Status` is cheaply copyable.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, e.g. `return Status::InvalidArgument("k must be > 0");`
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Propagates an error status from a callee, e.g.
/// `LTE_RETURN_IF_ERROR(table.AppendRow(row));`
#define LTE_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::lte::Status _lte_status = (expr);        \
    if (!_lte_status.ok()) return _lte_status; \
  } while (false)

}  // namespace lte

#endif  // LTE_COMMON_STATUS_H_
