#ifndef LTE_COMMON_RNG_H_
#define LTE_COMMON_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace lte {

/// Deterministic random number generator used throughout the library.
///
/// Every randomized component (sampling, k-means init, meta-task generation,
/// NN parameter init) takes an `Rng&` so that experiments are reproducible
/// from a single seed. Wraps std::mt19937_64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal draw scaled to mean/stddev.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p);

  /// k distinct indices sampled uniformly from [0, n) without replacement.
  /// Requires 0 <= k <= n.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  /// Derives an independent child generator (for per-subspace determinism).
  Rng Fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace lte

#endif  // LTE_COMMON_RNG_H_
