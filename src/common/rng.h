#ifndef LTE_COMMON_RNG_H_
#define LTE_COMMON_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "common/status.h"

namespace lte {

class BinaryWriter;
class BinaryReader;

/// Deterministic random number generator used throughout the library.
///
/// Every randomized component (sampling, k-means init, meta-task generation,
/// NN parameter init) takes an `Rng&` so that experiments are reproducible
/// from a single seed. Wraps std::mt19937_64.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : seed_(seed), engine_(seed) {}

  /// The seed this generator was constructed with (the keyed Fork base).
  uint64_t seed() const { return seed_; }

  /// Uniform integer in [0, n). Requires n > 0.
  int64_t UniformInt(int64_t n);

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0);

  /// Standard normal draw scaled to mean/stddev.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli draw with probability p of true.
  bool Bernoulli(double p);

  /// k distinct indices sampled uniformly from [0, n) without replacement.
  /// Requires 0 <= k <= n.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    std::shuffle(v->begin(), v->end(), engine_);
  }

  /// Derives an independent child generator by drawing the child's seed from
  /// this stream (advances this generator by one draw). Deterministic, but
  /// the child depends on how far the parent has already advanced — fork all
  /// children up-front (in a fixed order) before handing them to workers.
  Rng Fork();

  /// Splits off the key-addressed child stream: the child's seed is
  /// SplitMix64(seed ^ golden-ratio spread of `key`), a function of this
  /// generator's *construction seed* and `key` only. Unlike Fork(), it does
  /// not advance (or read) the parent's engine, so any number of threads may
  /// split keys concurrently, and parallel and sequential runs that split
  /// the same keys get identical streams. Fork(k) called twice returns the
  /// same stream — use distinct keys (e.g. the subspace or task index) for
  /// distinct parallel lanes, and Fork() first when a fresh base is needed
  /// per invocation.
  Rng Fork(uint64_t key) const;

  std::mt19937_64& engine() { return engine_; }

  /// Serialization (session persistence): the construction seed plus the
  /// exact mt19937_64 engine state, so a restored generator continues the
  /// stream draw-for-draw — both keyed Fork(key) children (functions of the
  /// seed) and sequential draws (functions of the engine state) resume
  /// bit-identically.
  void Save(BinaryWriter* writer) const;
  Status Load(BinaryReader* reader);

 private:
  uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace lte

#endif  // LTE_COMMON_RNG_H_
