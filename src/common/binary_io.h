#ifndef LTE_COMMON_BINARY_IO_H_
#define LTE_COMMON_BINARY_IO_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace lte {

/// Little-endian binary serialization helpers used by the model-persistence
/// layer (core/serialization.h). Writers are infallible until the final
/// `status()` check (stream errors are sticky); readers return Status so a
/// truncated or corrupted file surfaces as a clean error instead of garbage
/// state.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream* out) : out_(out) {}

  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteDouble(double v);
  void WriteBool(bool v);
  void WriteString(const std::string& s);
  void WriteDoubleVector(const std::vector<double>& v);
  void WriteI64Vector(const std::vector<int64_t>& v);
  /// Vector of equally important rows (e.g. cluster centers).
  void WritePointSet(const std::vector<std::vector<double>>& points);

  /// OK while every write so far succeeded.
  Status status() const;

 private:
  std::ostream* out_;
};

/// FNV-1a 64-bit hash of a byte buffer. Used as the model content
/// fingerprint stamped into saved sessions (see exploration_model.h):
/// fast, dependency-free, stable across hosts, and good enough to make an
/// accidental stale-session/refreshed-model collision vanishingly unlikely
/// (this is an integrity check, not a cryptographic commitment).
uint64_t Fnv1a64(const void* data, size_t size);

class BinaryReader {
 public:
  explicit BinaryReader(std::istream* in) : in_(in) {}

  Status ReadU64(uint64_t* v);
  Status ReadI64(int64_t* v);
  Status ReadDouble(double* v);
  Status ReadBool(bool* v);
  Status ReadString(std::string* s);
  Status ReadDoubleVector(std::vector<double>* v);
  Status ReadI64Vector(std::vector<int64_t>* v);
  Status ReadPointSet(std::vector<std::vector<double>>* points);

 private:
  Status ReadBytes(void* dst, size_t n);

  std::istream* in_;
};

}  // namespace lte

#endif  // LTE_COMMON_BINARY_IO_H_
