#include "common/binary_io.h"

#include <cstring>
#include <limits>

namespace lte {
namespace {

// Guards against absurd sizes from corrupted files before allocating.
constexpr uint64_t kMaxReasonableCount = uint64_t{1} << 32;

}  // namespace

void BinaryWriter::WriteU64(uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out_->write(buf, 8);
}

void BinaryWriter::WriteI64(int64_t v) {
  WriteU64(static_cast<uint64_t>(v));
}

void BinaryWriter::WriteDouble(double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out_->write(buf, 8);
}

void BinaryWriter::WriteBool(bool v) { WriteU64(v ? 1 : 0); }

void BinaryWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  out_->write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinaryWriter::WriteDoubleVector(const std::vector<double>& v) {
  WriteU64(v.size());
  for (double x : v) WriteDouble(x);
}

void BinaryWriter::WriteI64Vector(const std::vector<int64_t>& v) {
  WriteU64(v.size());
  for (int64_t x : v) WriteI64(x);
}

void BinaryWriter::WritePointSet(
    const std::vector<std::vector<double>>& points) {
  WriteU64(points.size());
  for (const auto& p : points) WriteDoubleVector(p);
}

Status BinaryWriter::status() const {
  return out_->good() ? Status::OK() : Status::IoError("binary write failed");
}

uint64_t Fnv1a64(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV offset basis.
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001B3ULL;  // FNV prime.
  }
  return h;
}

Status BinaryReader::ReadBytes(void* dst, size_t n) {
  in_->read(static_cast<char*>(dst), static_cast<std::streamsize>(n));
  if (static_cast<size_t>(in_->gcount()) != n) {
    return Status::IoError("binary read: unexpected end of stream");
  }
  return Status::OK();
}

Status BinaryReader::ReadU64(uint64_t* v) { return ReadBytes(v, 8); }

Status BinaryReader::ReadI64(int64_t* v) {
  uint64_t u = 0;
  LTE_RETURN_IF_ERROR(ReadU64(&u));
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

Status BinaryReader::ReadDouble(double* v) { return ReadBytes(v, 8); }

Status BinaryReader::ReadBool(bool* v) {
  uint64_t u = 0;
  LTE_RETURN_IF_ERROR(ReadU64(&u));
  if (u > 1) return Status::IoError("binary read: invalid bool");
  *v = u == 1;
  return Status::OK();
}

Status BinaryReader::ReadString(std::string* s) {
  uint64_t n = 0;
  LTE_RETURN_IF_ERROR(ReadU64(&n));
  if (n > kMaxReasonableCount) {
    return Status::IoError("binary read: implausible string length");
  }
  s->resize(n);
  return n == 0 ? Status::OK() : ReadBytes(s->data(), n);
}

Status BinaryReader::ReadDoubleVector(std::vector<double>* v) {
  uint64_t n = 0;
  LTE_RETURN_IF_ERROR(ReadU64(&n));
  if (n > kMaxReasonableCount) {
    return Status::IoError("binary read: implausible vector length");
  }
  v->resize(n);
  for (auto& x : *v) LTE_RETURN_IF_ERROR(ReadDouble(&x));
  return Status::OK();
}

Status BinaryReader::ReadI64Vector(std::vector<int64_t>* v) {
  uint64_t n = 0;
  LTE_RETURN_IF_ERROR(ReadU64(&n));
  if (n > kMaxReasonableCount) {
    return Status::IoError("binary read: implausible vector length");
  }
  v->resize(n);
  for (auto& x : *v) LTE_RETURN_IF_ERROR(ReadI64(&x));
  return Status::OK();
}

Status BinaryReader::ReadPointSet(std::vector<std::vector<double>>* points) {
  uint64_t n = 0;
  LTE_RETURN_IF_ERROR(ReadU64(&n));
  if (n > kMaxReasonableCount) {
    return Status::IoError("binary read: implausible point-set size");
  }
  points->resize(n);
  for (auto& p : *points) LTE_RETURN_IF_ERROR(ReadDoubleVector(&p));
  return Status::OK();
}

}  // namespace lte
