#ifndef LTE_COMMON_THREAD_POOL_H_
#define LTE_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lte {

/// Number of worker lanes used when an option's `num_threads` is 0 ("auto"):
/// the hardware concurrency, with a floor of 1.
int64_t DefaultThreadCount();

/// Resolves the `num_threads` convention used by every parallel option in
/// the library: 0 = auto (DefaultThreadCount()), otherwise max(value, 1).
int64_t ResolveThreadCount(int64_t num_threads);

/// A fixed-size pool of worker threads shared by the offline-training path
/// (meta-training batches, task encoding, per-subspace training, k-means
/// assignment). Workers are created once and block on a condition variable
/// between jobs, so per-call overhead is a wake-up, not a thread spawn.
///
/// Determinism contract: `ParallelFor` splits [begin, end) into at most
/// `max_parallelism` *contiguous lanes* whose boundaries depend only on the
/// range and `max_parallelism` — never on the worker count or on scheduling.
/// Which OS thread executes a lane is dynamic, but every index is executed
/// exactly once and callers that write to disjoint per-index slots get
/// bit-identical results for any pool size.
class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads (clamped to >= 0). The calling
  /// thread also participates in every ParallelFor, so a pool with 0 workers
  /// degenerates to the sequential loop.
  explicit ThreadPool(int64_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int64_t num_workers() const {
    return static_cast<int64_t>(workers_.size());
  }

  /// Runs `fn(i)` exactly once for every i in [begin, end) and returns when
  /// all calls have finished. Work is split into contiguous lanes as
  /// described above; the calling thread participates. `max_parallelism`
  /// <= 1, an empty range, or a nested call from inside a pool lane runs the
  /// plain sequential loop on the caller — byte-for-byte the legacy path.
  /// `fn` must not throw (the library is exception-free by convention).
  void ParallelFor(int64_t begin, int64_t end, int64_t max_parallelism,
                   const std::function<void(int64_t)>& fn);

  /// Shard-level variant for cheap per-index bodies: `fn(lo, hi)` is called
  /// once per lane with the lane's contiguous sub-range. Same determinism
  /// contract; same inline fallback (a single `fn(begin, end)` call).
  void ParallelForShards(int64_t begin, int64_t end, int64_t max_parallelism,
                         const std::function<void(int64_t, int64_t)>& fn);

  /// Early-exit variant for chunked scans (e.g. a `limit`-bounded table
  /// scan): up to `max_parallelism` lanes repeatedly claim the next chunk
  /// index from a shared counter and run `fn(chunk)`; before every claim a
  /// lane consults `cancelled()`, and once it returns true no further chunks
  /// are claimed (chunks already running finish normally). `cancelled` must
  /// be monotone (once true it stays true) and safe to call concurrently.
  ///
  /// Chunks are claimed in increasing order, so on return the set of
  /// executed chunks is a contiguous prefix [0, C) with C == num_chunks when
  /// cancellation never fired. Unlike ParallelFor, *which* chunks beyond the
  /// cancellation point still ran depends on timing — callers must derive
  /// their result only from chunk outputs that are timing-independent (e.g.
  /// concatenate per-chunk slots in chunk order and truncate at the limit;
  /// see Explorer::RetrieveMatches).
  void ParallelForEarlyExit(int64_t num_chunks, int64_t max_parallelism,
                            const std::function<void(int64_t)>& fn,
                            const std::function<bool()>& cancelled);

  /// Process-wide pool with DefaultThreadCount() workers, created on first
  /// use. All library internals share this instance.
  static ThreadPool& Shared();

 private:
  // One ParallelFor invocation. Lanes are claimed dynamically via
  // `next_lane`; `lanes_done` (guarded by the pool mutex) counts completed
  // lanes so the submitting thread knows when to return. Late-waking workers
  // hold a shared_ptr, so a job outlives the call that submitted it.
  struct Job {
    std::function<void(int64_t, int64_t)> shard_fn;
    int64_t begin = 0;
    int64_t end = 0;
    int64_t lanes = 0;
    std::atomic<int64_t> next_lane{0};
    int64_t lanes_done = 0;
  };

  void WorkerLoop();
  static void RunLane(const Job& job, int64_t lane);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> job_;   // Guarded by mu_.
  uint64_t job_generation_ = 0;  // Guarded by mu_.
  bool stopping_ = false;        // Guarded by mu_.
  std::vector<std::thread> workers_;
};

}  // namespace lte

#endif  // LTE_COMMON_THREAD_POOL_H_
