#ifndef LTE_COMMON_STOPWATCH_H_
#define LTE_COMMON_STOPWATCH_H_

#include <chrono>

namespace lte {

/// Wall-clock stopwatch used by the experiment harness to report the online
/// exploration cost (paper Figure 6) and pre-training cost (Figure 8(b)).
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the start point to now.
  void Restart();

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const;

  /// Milliseconds elapsed since construction or the last Restart().
  double ElapsedMillis() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace lte

#endif  // LTE_COMMON_STOPWATCH_H_
