#include "common/thread_pool.h"

#include <algorithm>

namespace lte {
namespace {

// True while the current thread is executing a pool lane; nested
// ParallelFor calls from inside a lane run inline instead of deadlocking on
// the (already busy) shared pool.
thread_local bool t_inside_lane = false;

}  // namespace

int64_t DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int64_t>(hw);
}

int64_t ResolveThreadCount(int64_t num_threads) {
  if (num_threads == 0) return DefaultThreadCount();
  return std::max<int64_t>(1, num_threads);
}

ThreadPool::ThreadPool(int64_t num_workers) {
  const int64_t n = std::max<int64_t>(0, num_workers);
  workers_.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(DefaultThreadCount());
  return *pool;
}

void ThreadPool::RunLane(const Job& job, int64_t lane) {
  // Contiguous static partition: lane L owns chunk indices
  // [begin + L*q + min(L, r), ...) where q = n / lanes, r = n % lanes.
  const int64_t n = job.end - job.begin;
  const int64_t q = n / job.lanes;
  const int64_t r = n % job.lanes;
  const int64_t lo = job.begin + lane * q + std::min(lane, r);
  const int64_t hi = lo + q + (lane < r ? 1 : 0);
  if (lo < hi) job.shard_fn(lo, hi);
}

void ThreadPool::WorkerLoop() {
  t_inside_lane = true;  // Workers only ever run inside jobs.
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [&] {
      return stopping_ || job_generation_ != seen_generation;
    });
    if (stopping_) return;
    seen_generation = job_generation_;
    std::shared_ptr<Job> job = job_;
    if (job == nullptr) continue;
    lock.unlock();

    int64_t completed = 0;
    for (int64_t lane = job->next_lane.fetch_add(1); lane < job->lanes;
         lane = job->next_lane.fetch_add(1)) {
      RunLane(*job, lane);
      ++completed;
    }

    lock.lock();
    job->lanes_done += completed;
    if (job->lanes_done == job->lanes) done_cv_.notify_all();
  }
}

void ThreadPool::ParallelForShards(
    int64_t begin, int64_t end, int64_t max_parallelism,
    const std::function<void(int64_t, int64_t)>& fn) {
  if (begin >= end) return;
  const int64_t n = end - begin;
  const int64_t lanes = std::min<int64_t>(std::max<int64_t>(max_parallelism, 1), n);
  // Sequential fallback: one lane requested, no workers to help, or a nested
  // call from inside a lane. Exactly the legacy single-threaded loop.
  if (lanes <= 1 || workers_.empty() || t_inside_lane) {
    fn(begin, end);
    return;
  }

  auto job = std::make_shared<Job>();
  job->shard_fn = fn;
  job->begin = begin;
  job->end = end;
  job->lanes = lanes;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++job_generation_;
  }
  work_cv_.notify_all();

  // The submitting thread participates too.
  t_inside_lane = true;
  int64_t completed = 0;
  for (int64_t lane = job->next_lane.fetch_add(1); lane < job->lanes;
       lane = job->next_lane.fetch_add(1)) {
    RunLane(*job, lane);
    ++completed;
  }
  t_inside_lane = false;

  std::unique_lock<std::mutex> lock(mu_);
  job->lanes_done += completed;
  if (job->lanes_done < job->lanes) {
    done_cv_.wait(lock, [&] { return job->lanes_done == job->lanes; });
  }
  if (job_ == job) job_ = nullptr;
}

void ThreadPool::ParallelForEarlyExit(int64_t num_chunks,
                                      int64_t max_parallelism,
                                      const std::function<void(int64_t)>& fn,
                                      const std::function<bool()>& cancelled) {
  if (num_chunks <= 0) return;
  const int64_t lanes =
      std::min<int64_t>(std::max<int64_t>(max_parallelism, 1), num_chunks);
  std::atomic<int64_t> next_chunk{0};
  const auto claim_loop = [&](int64_t /*lane*/) {
    while (!cancelled()) {
      const int64_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      fn(c);
    }
  };
  // Sequential fallback mirrors ParallelFor: chunks run in order on the
  // caller with the same per-claim cancellation checks.
  if (lanes <= 1 || workers_.empty() || t_inside_lane) {
    claim_loop(0);
    return;
  }
  ParallelFor(0, lanes, lanes, claim_loop);
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end,
                             int64_t max_parallelism,
                             const std::function<void(int64_t)>& fn) {
  ParallelForShards(begin, end, max_parallelism,
                    [&fn](int64_t lo, int64_t hi) {
                      for (int64_t i = lo; i < hi; ++i) fn(i);
                    });
}

}  // namespace lte
