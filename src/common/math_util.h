#ifndef LTE_COMMON_MATH_UTIL_H_
#define LTE_COMMON_MATH_UTIL_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace lte {

/// Squared Euclidean distance between two equally sized vectors.
double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b);

/// Euclidean distance between two equally sized vectors.
double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Dot product of two equally sized vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// L2 norm.
double Norm(const std::vector<double>& a);

/// Cosine similarity; returns 0 when either vector is all-zero.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

/// In-place numerically stable softmax.
void SoftmaxInPlace(std::vector<double>* v);

/// Arithmetic mean; returns 0 for an empty vector.
double Mean(const std::vector<double>& v);

/// Population variance; returns 0 for vectors with fewer than 1 element.
double Variance(const std::vector<double>& v);

/// Numerically stable log of the Gaussian pdf.
double LogGaussianPdf(double x, double mean, double variance);

/// Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);

/// Indices of the k smallest values of `values`, ascending by
/// (value, index) — equal values break toward the lower index, so the result
/// is a deterministic function of the input. Requires k <= values.size().
std::vector<size_t> ArgSmallestK(const std::vector<double>& values, size_t k);

}  // namespace lte

#endif  // LTE_COMMON_MATH_UTIL_H_
