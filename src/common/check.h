#ifndef LTE_COMMON_CHECK_H_
#define LTE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Invariant checks for conditions that indicate programmer error (as opposed
// to recoverable input errors, which return lte::Status). A failed check
// prints the condition and location, then aborts. Checks are active in all
// build modes: a database-style library must not silently corrupt state.

#define LTE_CHECK(cond)                                                    \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "LTE_CHECK failed: %s at %s:%d\n", #cond,       \
                   __FILE__, __LINE__);                                    \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#define LTE_CHECK_MSG(cond, msg)                                           \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "LTE_CHECK failed: %s (%s) at %s:%d\n", #cond,  \
                   msg, __FILE__, __LINE__);                               \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#define LTE_CHECK_EQ(a, b) LTE_CHECK((a) == (b))
#define LTE_CHECK_NE(a, b) LTE_CHECK((a) != (b))
#define LTE_CHECK_LT(a, b) LTE_CHECK((a) < (b))
#define LTE_CHECK_LE(a, b) LTE_CHECK((a) <= (b))
#define LTE_CHECK_GT(a, b) LTE_CHECK((a) > (b))
#define LTE_CHECK_GE(a, b) LTE_CHECK((a) >= (b))

#endif  // LTE_COMMON_CHECK_H_
