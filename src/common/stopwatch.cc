#include "common/stopwatch.h"

namespace lte {

void Stopwatch::Restart() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::ElapsedSeconds() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

double Stopwatch::ElapsedMillis() const { return ElapsedSeconds() * 1000.0; }

}  // namespace lte
