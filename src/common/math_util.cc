#include "common/math_util.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace lte {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  LTE_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

double EuclideanDistance(const std::vector<double>& a,
                         const std::vector<double>& b) {
  return std::sqrt(SquaredDistance(a, b));
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  LTE_CHECK_EQ(a.size(), b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm(const std::vector<double>& a) { return std::sqrt(Dot(a, a)); }

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  const double na = Norm(a);
  const double nb = Norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

void SoftmaxInPlace(std::vector<double>* v) {
  if (v->empty()) return;
  const double mx = *std::max_element(v->begin(), v->end());
  double sum = 0.0;
  for (double& x : *v) {
    x = std::exp(x - mx);
    sum += x;
  }
  for (double& x : *v) x /= sum;
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double LogGaussianPdf(double x, double mean, double variance) {
  constexpr double kMinVariance = 1e-12;
  const double var = std::max(variance, kMinVariance);
  const double d = x - mean;
  return -0.5 * (std::log(2.0 * M_PI * var) + d * d / var);
}

double Clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

std::vector<size_t> ArgSmallestK(const std::vector<double>& values, size_t k) {
  LTE_CHECK_LE(k, values.size());
  std::vector<size_t> idx(values.size());
  std::iota(idx.begin(), idx.end(), size_t{0});
  // Lexicographic (value, index) order: equal values keep ascending index, so
  // callers that perturb scores (exploration policies) stay deterministic
  // even when perturbed scores collide exactly.
  std::partial_sort(idx.begin(), idx.begin() + static_cast<long>(k), idx.end(),
                    [&](size_t a, size_t b) {
                      if (values[a] != values[b]) return values[a] < values[b];
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

}  // namespace lte
