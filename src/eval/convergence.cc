#include "eval/convergence.h"

#include "common/check.h"

namespace lte::eval {

ConvergenceTracker::ConvergenceTracker(double churn_threshold,
                                       int64_t stable_rounds)
    : churn_threshold_(churn_threshold), stable_rounds_(stable_rounds) {
  LTE_CHECK_GE(churn_threshold, 0.0);
  LTE_CHECK_GT(stable_rounds, 0);
}

void ConvergenceTracker::AddRound(const std::vector<double>& predictions) {
  LTE_CHECK(!predictions.empty());
  ++rounds_;
  if (previous_.empty()) {
    previous_ = predictions;
    last_churn_ = 1.0;
    return;
  }
  LTE_CHECK_EQ(previous_.size(), predictions.size());
  int64_t flips = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    if ((previous_[i] > 0.5) != (predictions[i] > 0.5)) ++flips;
  }
  last_churn_ =
      static_cast<double>(flips) / static_cast<double>(predictions.size());
  consecutive_stable_ =
      last_churn_ <= churn_threshold_ ? consecutive_stable_ + 1 : 0;
  previous_ = predictions;
}

bool ConvergenceTracker::Converged() const {
  return consecutive_stable_ >= stable_rounds_;
}

}  // namespace lte::eval
