#include "eval/uir_generator.h"

#include "common/check.h"

namespace lte::eval {

std::vector<UisMode> BenchmarkModes() {
  return {
      {"M1", 4, 20}, {"M2", 4, 15}, {"M3", 4, 10}, {"M4", 4, 5},
      {"M5", 1, 20}, {"M6", 2, 20}, {"M7", 3, 20},
  };
}

bool GroundTruthUir::Contains(const std::vector<double>& row) const {
  for (size_t s = 0; s < subspaces.size(); ++s) {
    std::vector<double> point;
    point.reserve(subspaces[s].attribute_indices.size());
    for (int64_t a : subspaces[s].attribute_indices) {
      LTE_CHECK_LT(static_cast<size_t>(a), row.size());
      point.push_back(row[static_cast<size_t>(a)]);
    }
    if (!regions[s].Contains(point)) return false;
  }
  return true;
}

bool GroundTruthUir::ContainsSubspacePoint(
    int64_t s, const std::vector<double>& point) const {
  LTE_CHECK_GE(s, 0);
  LTE_CHECK_LT(s, static_cast<int64_t>(regions.size()));
  return regions[static_cast<size_t>(s)].Contains(point);
}

Status UirGenerator::Init(const data::Table& table,
                          const std::vector<data::Subspace>& subspaces,
                          Rng* rng) {
  if (subspaces.empty()) {
    return Status::InvalidArgument("uir generator: no subspaces");
  }
  subspaces_ = subspaces;
  generators_.clear();
  for (const data::Subspace& s : subspaces_) {
    core::MetaTaskGenerator gen(options_);
    LTE_RETURN_IF_ERROR(gen.Init(data::ProjectRows(table, s), rng));
    generators_.push_back(std::move(gen));
  }
  return Status::OK();
}

GroundTruthUir UirGenerator::Generate(const UisMode& mode, Rng* rng) const {
  return Generate(mode, num_subspaces(), rng);
}

GroundTruthUir UirGenerator::Generate(const UisMode& mode,
                                      int64_t num_subspaces, Rng* rng) const {
  LTE_CHECK_GT(num_subspaces, 0);
  LTE_CHECK_LE(num_subspaces, static_cast<int64_t>(generators_.size()));
  GroundTruthUir uir;
  for (int64_t s = 0; s < num_subspaces; ++s) {
    uir.subspaces.push_back(subspaces_[static_cast<size_t>(s)]);
    uir.regions.push_back(generators_[static_cast<size_t>(s)].GenerateUis(
        mode.alpha, mode.psi, rng));
  }
  return uir;
}

}  // namespace lte::eval
