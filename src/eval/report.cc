#include "eval/report.h"

#include <cstdio>
#include <sstream>

namespace lte::eval {

std::string FormatDouble(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::AddRow(const std::string& label,
                       const std::vector<double>& values, int precision) {
  std::vector<std::string> cells = {label};
  for (double v : values) cells.push_back(FormatDouble(v, precision));
  AddRow(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << "| " << cell << std::string(widths[c] - cell.size() + 1, ' ');
    }
    os << "|\n";
  };
  emit(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace lte::eval
