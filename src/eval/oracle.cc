#include "eval/oracle.h"

#include "common/check.h"

namespace lte::eval {

double Oracle::LabelRow(int64_t row) const {
  ++labels_used_;
  return uir_->Contains(table_->Row(row)) ? 1.0 : 0.0;
}

double Oracle::LabelSubspacePoint(int64_t s,
                                  const std::vector<double>& point) const {
  ++labels_used_;
  return uir_->ContainsSubspacePoint(s, point) ? 1.0 : 0.0;
}

}  // namespace lte::eval
