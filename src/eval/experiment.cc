#include "eval/experiment.h"

#include <algorithm>

#include "common/check.h"
#include "common/stopwatch.h"
#include "data/sampling.h"

namespace lte::eval {

std::string MethodName(Method method) {
  switch (method) {
    case Method::kAide:
      return "AIDE";
    case Method::kAlSvm:
      return "AL-SVM";
    case Method::kDsm:
      return "DSM";
    case Method::kSvm:
      return "SVM";
    case Method::kSvmR:
      return "SVM^r";
    case Method::kBasic:
      return "Basic";
    case Method::kMeta:
      return "Meta";
    case Method::kMetaStar:
      return "Meta*";
  }
  return "?";
}

ExperimentRunner::ExperimentRunner(data::Table table,
                                   std::vector<data::Subspace> subspaces,
                                   RunnerOptions options)
    : raw_table_(std::move(table)),
      subspaces_(std::move(subspaces)),
      options_(options),
      rng_(options.seed),
      uir_generator_(options.explorer.task_gen) {}

Status ExperimentRunner::Init() {
  if (raw_table_.num_rows() == 0) {
    return Status::InvalidArgument("runner: empty table");
  }
  if (subspaces_.empty()) {
    return Status::InvalidArgument("runner: no subspaces");
  }
  // Normalize every attribute into [0, 1] so clustering, geometry, and the
  // SVM kernels all see comparable scales.
  LTE_RETURN_IF_ERROR(normalizer_.Fit(raw_table_));
  normalized_table_ = data::Table(raw_table_.AttributeNames());
  for (int64_t r = 0; r < raw_table_.num_rows(); ++r) {
    LTE_RETURN_IF_ERROR(
        normalized_table_.AppendRow(normalizer_.TransformRow(raw_table_.Row(r))));
  }

  eval_rows_ = data::SampleRowIndices(normalized_table_,
                                      options_.eval_sample_rows, &rng_);
  pool_rows_ =
      data::SampleRowIndices(normalized_table_, options_.pool_rows, &rng_);
  LTE_RETURN_IF_ERROR(
      uir_generator_.Init(normalized_table_, subspaces_, &rng_));
  initialized_ = true;
  return Status::OK();
}

Status ExperimentRunner::EnsureModel(int64_t budget, bool train_meta) {
  LTE_CHECK_MSG(initialized_, "runner: Init has not run");
  const int64_t k_s = budget - options_.explorer.task_gen.delta;
  if (k_s < 2) {
    return Status::InvalidArgument("runner: budget too small for k_s >= 2");
  }
  auto it = models_.find(budget);
  if (it != models_.end() && (it->second.meta || !train_meta)) {
    return Status::OK();
  }
  core::ExplorerOptions opt = options_.explorer;
  opt.task_gen.k_s = k_s;
  auto model = std::make_shared<core::ExplorationModel>(opt);
  LTE_RETURN_IF_ERROR(
      model->Pretrain(normalized_table_, subspaces_, train_meta, &rng_));
  models_[budget] = CachedModel{std::move(model), train_meta};
  return Status::OK();
}

GroundTruthUir ExperimentRunner::GenerateUir(const UisMode& mode,
                                             int64_t num_subspaces) {
  LTE_CHECK_MSG(initialized_, "runner: Init has not run");
  return uir_generator_.Generate(mode, num_subspaces, &rng_);
}

namespace {

// Flips a 0/1 label with the configured noise probability.
double MaybeFlip(double label, double noise, Rng* rng) {
  if (noise > 0.0 && rng->Bernoulli(noise)) return 1.0 - label;
  return label;
}

}  // namespace

template <typename Predictor>
void ExperimentRunner::Score(const GroundTruthUir& uir,
                             const Predictor& predict,
                             ExperimentResult* result) const {
  ConfusionCounts counts;
  for (int64_t r : eval_rows_) {
    const std::vector<double> row = normalized_table_.Row(r);
    const double truth = uir.Contains(row) ? 1.0 : 0.0;
    counts.Add(truth, predict(row));
  }
  result->f1 = F1Score(counts);
  result->precision = Precision(counts);
  result->recall = Recall(counts);
}

Status ExperimentRunner::RunLte(core::Variant variant,
                                const GroundTruthUir& uir, int64_t budget,
                                ExperimentResult* result) {
  const bool needs_meta = variant != core::Variant::kBasic;
  LTE_RETURN_IF_ERROR(EnsureModel(budget, needs_meta));
  const core::ExplorationModel& model = *models_.at(budget).model;

  const auto active = static_cast<int64_t>(uir.subspaces.size());
  std::vector<std::vector<double>> labels(static_cast<size_t>(active));
  int64_t labels_used = 0;
  for (int64_t s = 0; s < active; ++s) {
    for (const auto& tuple : *model.InitialTuples(s)) {
      labels[static_cast<size_t>(s)].push_back(MaybeFlip(
          uir.ContainsSubspacePoint(s, tuple) ? 1.0 : 0.0,
          options_.label_noise, &rng_));
      ++labels_used;
    }
  }

  // Each run is one simulated user: a fresh session against the cached
  // (shared, immutable) model.
  core::ExplorationSession session(models_.at(budget).model);
  Stopwatch sw;
  LTE_RETURN_IF_ERROR(session.StartExploration(labels, variant, &rng_));
  result->online_seconds = sw.ElapsedSeconds();
  result->labels_used = labels_used;
  Score(uir,
        [&session](const std::vector<double>& row) {
          return session.PredictRow(row).value_or(0.0);
        },
        result);
  return Status::OK();
}

Status ExperimentRunner::RunLteIterative(const PolicySweepOptions& sweep,
                                         const GroundTruthUir& uir,
                                         int64_t budget,
                                         PolicyTrajectory* out) {
  LTE_CHECK_MSG(initialized_, "runner: Init has not run");
  if (out == nullptr) {
    return Status::InvalidArgument("runner: out must not be null");
  }
  *out = PolicyTrajectory{};
  if (sweep.rounds < 0 || sweep.batch <= 0 || sweep.candidate_pool <= 0) {
    return Status::InvalidArgument("runner: bad iterative sweep shape");
  }
  const bool needs_meta = sweep.variant != core::Variant::kBasic;
  LTE_RETURN_IF_ERROR(EnsureModel(budget, needs_meta));
  const std::shared_ptr<core::ExplorationModel>& model =
      models_.at(budget).model;

  // Self-contained rng discipline: every draw below — session stream, label
  // noise, candidate pools — derives from session_seed alone, never from
  // the runner's shared rng, so a trajectory is a pure function of
  // (uir, budget, sweep). The bench's policy_bit_identical gate leans on
  // exactly that to compare trajectories across session thread counts.
  Rng noise_rng = Rng(sweep.session_seed).Fork(0x4C4E);   // "LN".
  Rng cand_rng = Rng(sweep.session_seed).Fork(0x4350);    // "CP".

  const auto active = static_cast<int64_t>(uir.subspaces.size());
  std::vector<std::vector<double>> labels(static_cast<size_t>(active));
  int64_t labels_used = 0;
  for (int64_t s = 0; s < active; ++s) {
    for (const auto& tuple : *model->InitialTuples(s)) {
      labels[static_cast<size_t>(s)].push_back(
          MaybeFlip(uir.ContainsSubspacePoint(s, tuple) ? 1.0 : 0.0,
                    options_.label_noise, &noise_rng));
      ++labels_used;
    }
  }

  core::ExplorationSession session(model, sweep.session_threads);
  session.SeedRng(sweep.session_seed);
  LTE_RETURN_IF_ERROR(
      session.StartExploration(labels, sweep.variant, session.session_rng()));
  for (int64_t s = 0; s < active; ++s) {
    LTE_RETURN_IF_ERROR(session.ConfigureSuggestPolicy(s, sweep.policy));
  }

  ExperimentResult round_result;
  const auto record = [&] {
    Score(uir,
          [&session](const std::vector<double>& row) {
            return session.PredictRow(row).value_or(0.0);
          },
          &round_result);
    out->labels.push_back(labels_used);
    out->f1.push_back(round_result.f1);
  };
  record();

  std::vector<std::vector<double>> candidates;
  std::vector<int64_t> picked;
  std::vector<std::vector<double>> picked_points;
  std::vector<double> picked_labels;
  for (int64_t round = 0; round < sweep.rounds; ++round) {
    for (int64_t s = 0; s < active; ++s) {
      const std::vector<int64_t>& attrs =
          uir.subspaces[static_cast<size_t>(s)].attribute_indices;
      const std::vector<int64_t> rows = data::SampleRowIndices(
          normalized_table_, sweep.candidate_pool, &cand_rng);
      candidates.clear();
      for (int64_t r : rows) {
        candidates.push_back(normalized_table_.RowProjected(r, attrs));
      }
      LTE_RETURN_IF_ERROR(
          session.SuggestTuples(s, candidates, sweep.batch, &picked));
      picked_points.clear();
      picked_labels.clear();
      for (int64_t i : picked) {
        const auto& point = candidates[static_cast<size_t>(i)];
        picked_points.push_back(point);
        picked_labels.push_back(
            MaybeFlip(uir.ContainsSubspacePoint(s, point) ? 1.0 : 0.0,
                      options_.label_noise, &noise_rng));
        ++labels_used;
      }
      if (!picked_points.empty()) {
        LTE_RETURN_IF_ERROR(session.ContinueExploration(
            s, picked_points, picked_labels, session.session_rng()));
      }
    }
    record();
  }
  out->final_f1 = out->f1.back();
  out->total_labels = labels_used;
  return Status::OK();
}

Status ExperimentRunner::RunSubspaceSvm(bool encoded,
                                        const GroundTruthUir& uir,
                                        int64_t budget,
                                        ExperimentResult* result) {
  // Reuse any cached model for this budget so all methods share the same
  // initial tuples (paper Section VIII-C: "All competitors are fed with the
  // same set of initial training tuples").
  LTE_RETURN_IF_ERROR(EnsureModel(budget, /*train_meta=*/false));
  const core::ExplorationModel& model = *models_.at(budget).model;

  const auto active = static_cast<int64_t>(uir.subspaces.size());
  std::vector<svm::Svm> models(static_cast<size_t>(active));
  int64_t labels_used = 0;
  Stopwatch sw;
  for (int64_t s = 0; s < active; ++s) {
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (const auto& tuple : *model.InitialTuples(s)) {
      x.push_back(encoded ? model.encoder().EncodeProjected(
                                tuple, uir.subspaces[static_cast<size_t>(s)]
                                           .attribute_indices)
                          : tuple);
      y.push_back(MaybeFlip(uir.ContainsSubspacePoint(s, tuple) ? 1.0 : 0.0,
                            options_.label_noise, &rng_));
      ++labels_used;
    }
    LTE_RETURN_IF_ERROR(models[static_cast<size_t>(s)].Train(
        x, y, options_.kernel, options_.smo, &rng_));
  }
  result->online_seconds = sw.ElapsedSeconds();
  result->labels_used = labels_used;

  const auto predict = [&](const std::vector<double>& row) -> double {
    for (int64_t s = 0; s < active; ++s) {
      std::vector<double> point;
      for (int64_t a : uir.subspaces[static_cast<size_t>(s)].attribute_indices) {
        point.push_back(row[static_cast<size_t>(a)]);
      }
      const std::vector<double> features =
          encoded ? model.encoder().EncodeProjected(
                        point,
                        uir.subspaces[static_cast<size_t>(s)].attribute_indices)
                  : point;
      if (models[static_cast<size_t>(s)].Predict(features) < 0.5) return 0.0;
    }
    return 1.0;
  };
  Score(uir, predict, result);
  return Status::OK();
}

Status ExperimentRunner::RunPoolBaseline(Method method,
                                         const GroundTruthUir& uir,
                                         int64_t budget,
                                         ExperimentResult* result) {
  // Restrict features to the attributes of the active subspaces (the
  // dimensionality sweeps explore 2-8 attribute prefixes).
  std::vector<int64_t> attrs;
  std::vector<std::vector<int64_t>> rel_subspaces;
  for (const data::Subspace& s : uir.subspaces) {
    std::vector<int64_t> rel;
    for (int64_t a : s.attribute_indices) {
      rel.push_back(static_cast<int64_t>(attrs.size()));
      attrs.push_back(a);
    }
    rel_subspaces.push_back(std::move(rel));
  }

  std::vector<std::vector<double>> pool;
  pool.reserve(pool_rows_.size());
  for (int64_t r : pool_rows_) {
    pool.push_back(normalized_table_.RowProjected(r, attrs));
  }
  const auto oracle = [&](int64_t pool_index) -> double {
    const int64_t row = pool_rows_[static_cast<size_t>(pool_index)];
    return MaybeFlip(uir.Contains(normalized_table_.Row(row)) ? 1.0 : 0.0,
                     options_.label_noise, &rng_);
  };

  Stopwatch sw;
  if (method == Method::kAide) {
    baselines::AideOptions opt;
    opt.initial_samples = options_.al_initial_samples;
    opt.batch_size = options_.al_batch;
    baselines::Aide aide(opt);
    LTE_RETURN_IF_ERROR(aide.Explore(pool, oracle, budget, &rng_));
    result->online_seconds = sw.ElapsedSeconds();
    result->labels_used = aide.labels_used();
    Score(uir,
          [&](const std::vector<double>& row) {
            std::vector<double> x;
            for (int64_t a : attrs) x.push_back(row[static_cast<size_t>(a)]);
            return aide.Predict(x);
          },
          result);
    return Status::OK();
  }
  if (method == Method::kAlSvm) {
    baselines::ActiveLearnerOptions opt;
    opt.initial_samples = options_.al_initial_samples;
    opt.batch_size = options_.al_batch;
    opt.kernel = options_.kernel;
    opt.smo = options_.smo;
    baselines::ActiveLearnerSvm learner(opt);
    LTE_RETURN_IF_ERROR(learner.Explore(pool, oracle, budget, &rng_));
    result->online_seconds = sw.ElapsedSeconds();
    result->labels_used = learner.labels_used();
    Score(uir,
          [&](const std::vector<double>& row) {
            std::vector<double> x;
            for (int64_t a : attrs) x.push_back(row[static_cast<size_t>(a)]);
            return learner.Predict(x);
          },
          result);
    return Status::OK();
  }

  LTE_CHECK(method == Method::kDsm);
  baselines::DsmOptions opt;
  opt.initial_samples = options_.al_initial_samples;
  opt.batch_size = options_.al_batch;
  opt.kernel = options_.kernel;
  opt.smo = options_.smo;
  baselines::Dsm dsm(opt, rel_subspaces);
  LTE_RETURN_IF_ERROR(dsm.Explore(pool, oracle, budget, &rng_));
  result->online_seconds = sw.ElapsedSeconds();
  result->labels_used = dsm.labels_used();
  Score(uir,
        [&](const std::vector<double>& row) {
          std::vector<double> x;
          for (int64_t a : attrs) x.push_back(row[static_cast<size_t>(a)]);
          return dsm.Predict(x);
        },
        result);
  return Status::OK();
}

Status ExperimentRunner::Run(Method method, const GroundTruthUir& uir,
                             int64_t budget, ExperimentResult* result) {
  LTE_CHECK_MSG(initialized_, "runner: Init has not run");
  *result = ExperimentResult{};
  switch (method) {
    case Method::kBasic:
      return RunLte(core::Variant::kBasic, uir, budget, result);
    case Method::kMeta:
      return RunLte(core::Variant::kMeta, uir, budget, result);
    case Method::kMetaStar:
      return RunLte(core::Variant::kMetaStar, uir, budget, result);
    case Method::kSvm:
      return RunSubspaceSvm(/*encoded=*/false, uir, budget, result);
    case Method::kSvmR:
      return RunSubspaceSvm(/*encoded=*/true, uir, budget, result);
    case Method::kAide:
    case Method::kAlSvm:
    case Method::kDsm:
      return RunPoolBaseline(method, uir, budget, result);
  }
  return Status::InvalidArgument("unknown method");
}

Status ExperimentRunner::MeanF1(Method method,
                                const std::vector<GroundTruthUir>& uirs,
                                int64_t budget, double* mean_f1) {
  if (uirs.empty()) return Status::InvalidArgument("runner: no test UIRs");
  double sum = 0.0;
  for (const GroundTruthUir& uir : uirs) {
    ExperimentResult res;
    LTE_RETURN_IF_ERROR(Run(method, uir, budget, &res));
    sum += res.f1;
  }
  *mean_f1 = sum / static_cast<double>(uirs.size());
  return Status::OK();
}

Status ExperimentRunner::FindBudgetForTarget(
    Method method, const std::vector<GroundTruthUir>& uirs, double target_f1,
    const std::vector<int64_t>& budgets, int64_t* budget_out) {
  for (int64_t b : budgets) {
    double f1 = 0.0;
    LTE_RETURN_IF_ERROR(MeanF1(method, uirs, b, &f1));
    if (f1 >= target_f1) {
      *budget_out = b;
      return Status::OK();
    }
  }
  *budget_out = -1;
  return Status::OK();
}

double ExperimentRunner::PretrainSeconds(int64_t budget) const {
  auto it = models_.find(budget);
  return it == models_.end() ? 0.0 : it->second.model->meta_training_seconds();
}

double ExperimentRunner::TaskGenSeconds(int64_t budget) const {
  auto it = models_.find(budget);
  return it == models_.end() ? 0.0
                             : it->second.model->task_generation_seconds();
}

}  // namespace lte::eval
