#ifndef LTE_EVAL_CONVERGENCE_H_
#define LTE_EVAL_CONVERGENCE_H_

#include <cstdint>
#include <vector>

namespace lte::eval {

/// Ground-truth-free convergence indicator for iterative exploration (paper
/// Section III-B, "Convergence": the user sets budgets or uses indicators
/// like DSM's three-set metric to decide when to stop).
///
/// The tracker watches the classifier's 0/1 predictions over a fixed probe
/// set across exploration rounds. The *churn* of a round is the fraction of
/// probe tuples whose prediction flipped relative to the previous round;
/// when churn stays below a threshold for a few consecutive rounds, the
/// explored region has stabilized and labelling can stop.
class ConvergenceTracker {
 public:
  /// `churn_threshold`: flips-per-probe below which a round counts as
  /// stable. `stable_rounds`: consecutive stable rounds required.
  explicit ConvergenceTracker(double churn_threshold = 0.01,
                              int64_t stable_rounds = 2);

  /// Records one round's predictions over the probe set (all rounds must
  /// use the same probe set, in the same order).
  void AddRound(const std::vector<double>& predictions);

  /// Flip fraction of the latest round vs. its predecessor; 1.0 until two
  /// rounds have been recorded.
  double LastChurn() const { return last_churn_; }

  /// True once `stable_rounds` consecutive rounds each churned below the
  /// threshold.
  bool Converged() const;

  int64_t rounds() const { return rounds_; }

 private:
  double churn_threshold_;
  int64_t stable_rounds_;
  int64_t rounds_ = 0;
  int64_t consecutive_stable_ = 0;
  double last_churn_ = 1.0;
  std::vector<double> previous_;
};

}  // namespace lte::eval

#endif  // LTE_EVAL_CONVERGENCE_H_
