#include "eval/metrics.h"

#include "common/check.h"

namespace lte::eval {

void ConfusionCounts::Add(double truth, double prediction) {
  const bool t = truth > 0.5;
  const bool p = prediction > 0.5;
  if (t && p) {
    ++true_positive;
  } else if (!t && p) {
    ++false_positive;
  } else if (!t && !p) {
    ++true_negative;
  } else {
    ++false_negative;
  }
}

double Precision(const ConfusionCounts& c) {
  const int64_t denom = c.true_positive + c.false_positive;
  return denom == 0 ? 0.0
                    : static_cast<double>(c.true_positive) /
                          static_cast<double>(denom);
}

double Recall(const ConfusionCounts& c) {
  const int64_t denom = c.true_positive + c.false_negative;
  return denom == 0 ? 0.0
                    : static_cast<double>(c.true_positive) /
                          static_cast<double>(denom);
}

double F1Score(const ConfusionCounts& c) {
  const double p = Precision(c);
  const double r = Recall(c);
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

ConfusionCounts Evaluate(const std::vector<double>& truths,
                         const std::vector<double>& predictions) {
  LTE_CHECK_EQ(truths.size(), predictions.size());
  ConfusionCounts c;
  for (size_t i = 0; i < truths.size(); ++i) c.Add(truths[i], predictions[i]);
  return c;
}

double ThreeSetMetric(int64_t num_positive, int64_t num_uncertain) {
  const int64_t denom = num_positive + num_uncertain;
  return denom == 0 ? 0.0
                    : static_cast<double>(num_positive) /
                          static_cast<double>(denom);
}

}  // namespace lte::eval
