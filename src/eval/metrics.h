#ifndef LTE_EVAL_METRICS_H_
#define LTE_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace lte::eval {

/// Binary confusion counts.
struct ConfusionCounts {
  int64_t true_positive = 0;
  int64_t false_positive = 0;
  int64_t true_negative = 0;
  int64_t false_negative = 0;

  void Add(double truth, double prediction);
};

/// Precision = TP / (TP + FP); 0 when undefined.
double Precision(const ConfusionCounts& c);

/// Recall = TP / (TP + FN); 0 when undefined.
double Recall(const ConfusionCounts& c);

/// F1 = 2PR / (P + R) — the paper's accuracy metric; 0 when undefined.
double F1Score(const ConfusionCounts& c);

/// Confusion counts over paired truth/prediction vectors (0/1 each).
ConfusionCounts Evaluate(const std::vector<double>& truths,
                         const std::vector<double>& predictions);

/// DSM's three-set metric (paper Section III-B "Convergence"): a lower
/// bound of the F1-score computable without ground truth, from the sizes of
/// the provably-positive and uncertain partitions of the evaluation set.
double ThreeSetMetric(int64_t num_positive, int64_t num_uncertain);

}  // namespace lte::eval

#endif  // LTE_EVAL_METRICS_H_
