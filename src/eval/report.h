#ifndef LTE_EVAL_REPORT_H_
#define LTE_EVAL_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lte::eval {

/// Fixed-width text table used by the benchmark binaries to print the rows
/// and series the paper's tables and figures report.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Adds a row of preformatted cells (width mismatch is padded/truncated
  /// to the header's column count).
  void AddRow(std::vector<std::string> cells);

  /// Convenience: first cell is a label, the rest are doubles rendered with
  /// `precision` digits.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 3);

  /// Renders the table with aligned columns.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision.
std::string FormatDouble(double v, int precision = 3);

}  // namespace lte::eval

#endif  // LTE_EVAL_REPORT_H_
