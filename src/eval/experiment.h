#ifndef LTE_EVAL_EXPERIMENT_H_
#define LTE_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/active_learner.h"
#include "baselines/aide.h"
#include "baselines/dsm.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/lte.h"
#include "data/subspace.h"
#include "data/table.h"
#include "eval/metrics.h"
#include "eval/uir_generator.h"
#include "preprocess/normalizer.h"
#include "svm/svm.h"

namespace lte::eval {

/// All methods evaluated by the paper (Section VIII-A), plus AIDE — the
/// decision-tree explore-by-example system of the paper's Table I.
enum class Method {
  kAide,      // Decision-tree explore-by-example baseline [2].
  kAlSvm,     // Active-learning SVM baseline [4].
  kDsm,       // Dual-space model baseline [5].
  kSvm,       // Plain SVM on the initial tuples (Section VIII-C).
  kSvmR,      // SVM + tabular data preprocessing (SVM^r).
  kBasic,     // LTE's NN classifier without meta-learning.
  kMeta,      // Meta-learned classifier.
  kMetaStar,  // Meta + FP/FN optimizer.
};

std::string MethodName(Method method);

/// Harness configuration shared by every benchmark binary.
struct RunnerOptions {
  core::ExplorerOptions explorer;
  svm::Kernel kernel;
  svm::SmoOptions smo;
  /// Rows sampled for F1 evaluation.
  int64_t eval_sample_rows = 1500;
  /// Pool size for the active-learning baselines.
  int64_t pool_rows = 1200;
  /// AL-SVM / DSM loop parameters.
  int64_t al_initial_samples = 10;
  int64_t al_batch = 5;
  /// Probability that the simulated user mislabels a tuple (flipped 0/1).
  /// 0 reproduces the paper's noise-free protocol; the label-noise
  /// robustness bench sweeps this.
  double label_noise = 0.0;
  uint64_t seed = 42;
};

/// One method's outcome on one exploration task.
struct ExperimentResult {
  double f1 = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  /// Online exploration wall-time (fast adaptation for the LTE variants,
  /// the whole active-learning loop for the baselines) — paper Figure 6.
  double online_seconds = 0.0;
  /// Oracle labels consumed.
  int64_t labels_used = 0;
};

/// Iterative label-efficiency protocol for the exploration-policy sweep
/// (DESIGN.md §2f): StartExploration on the initial budget, then `rounds`
/// active-learning rounds — sample `candidate_pool` rows, let the policy
/// pick `batch` of them via SuggestTuples, label through the (noisy)
/// oracle, ContinueExploration — recording F1 after every round.
struct PolicySweepOptions {
  policy::PolicyOptions policy;
  core::Variant variant = core::Variant::kMeta;
  int64_t rounds = 5;
  int64_t batch = 5;
  int64_t candidate_pool = 200;
  /// Session thread override; the trajectory is bit-identical across values
  /// (the bench's policy_bit_identical gate compares 1 vs 4).
  int64_t session_threads = 1;
  /// Seeds the session rng AND every harness-side draw (noise, candidate
  /// pools), so a trajectory is a pure function of (uir, budget, sweep) —
  /// independent of the runner's shared rng position.
  uint64_t session_seed = 1234;
};

/// One policy's F1-vs-labels curve: entry i is the state after round i
/// (entry 0 = right after StartExploration).
struct PolicyTrajectory {
  std::vector<int64_t> labels;  // Cumulative oracle labels consumed.
  std::vector<double> f1;
  double final_f1 = 0.0;
  int64_t total_labels = 0;
};

/// Drives every experiment of the paper: owns the (normalized) dataset, an
/// independent ground-truth UIR generator, the evaluation row sample, and a
/// cache of pre-trained `ExplorationModel`s keyed by labelling budget (each
/// run attaches a fresh `ExplorationSession` — the shape a serving
/// deployment uses).
///
/// Budget convention (paper Section VIII-A): for the LTE variants B is the
/// per-subspace support-set size (k_s + Δ = B); for the active-learning
/// baselines B is the total number of labels granted to the loop.
class ExperimentRunner {
 public:
  ExperimentRunner(data::Table table, std::vector<data::Subspace> subspaces,
                   RunnerOptions options);

  /// Normalizes the data, samples evaluation/pool rows, and initializes the
  /// ground-truth UIR generator. Must be called before anything else.
  Status Init();

  /// Pre-trains (and caches) the ExplorationModel for a budget.
  /// `train_meta=false` prepares contexts only (enough for Basic / SVM /
  /// SVM^r). Re-invoking with train_meta=true upgrades a context-only model.
  Status EnsureModel(int64_t budget, bool train_meta);

  /// Ground-truth UIR over the first `num_subspaces` subspaces.
  GroundTruthUir GenerateUir(const UisMode& mode, int64_t num_subspaces);

  /// Runs one method against one UIR at one budget.
  Status Run(Method method, const GroundTruthUir& uir, int64_t budget,
             ExperimentResult* result);

  /// Runs the iterative protocol above with the given exploration policy.
  /// Reuses the cached model for `budget` (call after warming it, or let the
  /// first call train it), so every policy in a sweep sees the same model
  /// and the same initial tuples.
  Status RunLteIterative(const PolicySweepOptions& sweep,
                         const GroundTruthUir& uir, int64_t budget,
                         PolicyTrajectory* out);

  /// Mean F1 of `method` over several UIRs at one budget.
  Status MeanF1(Method method, const std::vector<GroundTruthUir>& uirs,
                int64_t budget, double* mean_f1);

  /// Smallest budget from `budgets` (ascending) whose mean F1 over `uirs`
  /// reaches `target_f1`; sets -1 when none does (paper Figure 4(b)).
  Status FindBudgetForTarget(Method method,
                             const std::vector<GroundTruthUir>& uirs,
                             double target_f1,
                             const std::vector<int64_t>& budgets,
                             int64_t* budget_out);

  const data::Table& normalized_table() const { return normalized_table_; }
  const std::vector<data::Subspace>& subspaces() const { return subspaces_; }

  /// Pre-training cost of the cached meta model for `budget` (Figure
  /// 8(b)); 0 when not trained.
  double PretrainSeconds(int64_t budget) const;
  double TaskGenSeconds(int64_t budget) const;

 private:
  Status RunLte(core::Variant variant, const GroundTruthUir& uir,
                int64_t budget, ExperimentResult* result);
  Status RunSubspaceSvm(bool encoded, const GroundTruthUir& uir,
                        int64_t budget, ExperimentResult* result);
  Status RunPoolBaseline(Method method, const GroundTruthUir& uir,
                         int64_t budget, ExperimentResult* result);

  // Evaluates a 0/1 row predictor over the evaluation sample.
  template <typename Predictor>
  void Score(const GroundTruthUir& uir, const Predictor& predict,
             ExperimentResult* result) const;

  data::Table raw_table_;
  std::vector<data::Subspace> subspaces_;
  RunnerOptions options_;
  Rng rng_;

  bool initialized_ = false;
  data::Table normalized_table_;
  preprocess::MinMaxNormalizer normalizer_;
  UirGenerator uir_generator_;
  std::vector<int64_t> eval_rows_;
  std::vector<int64_t> pool_rows_;

  struct CachedModel {
    std::shared_ptr<core::ExplorationModel> model;
    bool meta = false;
  };
  std::map<int64_t, CachedModel> models_;  // Keyed by budget.
};

}  // namespace lte::eval

#endif  // LTE_EVAL_EXPERIMENT_H_
