#ifndef LTE_EVAL_UIR_GENERATOR_H_
#define LTE_EVAL_UIR_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/meta_task.h"
#include "data/subspace.h"
#include "data/table.h"
#include "geom/region.h"

namespace lte::eval {

/// A UIS generation mode (α, ψ) — paper Table III defines seven benchmark
/// modes M1-M7.
struct UisMode {
  std::string name;
  int64_t alpha = 1;
  int64_t psi = 20;
};

/// The seven benchmark modes of Table III:
/// α=4 with ψ ∈ {20,15,10,5} (M1-M4), then ψ=20 with α ∈ {1,2,3} (M5-M7).
std::vector<UisMode> BenchmarkModes();

/// A ground-truth user interest region: one region per subspace, combined
/// conjunctively (paper Section III-A).
struct GroundTruthUir {
  std::vector<data::Subspace> subspaces;
  std::vector<geom::Region> regions;

  /// Membership of a full-width row: every subspace projection must fall in
  /// its region.
  bool Contains(const std::vector<double>& row) const;

  /// Membership of a single subspace's projected point.
  bool ContainsSubspacePoint(int64_t s, const std::vector<double>& point) const;
};

/// Generates ground-truth UIRs the way the paper's evaluation does: each
/// subspace region is a union of `alpha` convex hulls over ψ-NN groups of
/// cluster centers, produced by the same formulation as meta-task generation
/// but from an *independent* clustering of the data (so the ground truth is
/// not tied to any method's internal state).
class UirGenerator {
 public:
  explicit UirGenerator(core::MetaTaskGenOptions options)
      : options_(options) {}

  /// Clusters each subspace of `table` once.
  Status Init(const data::Table& table,
              const std::vector<data::Subspace>& subspaces, Rng* rng);

  /// One UIR with the given mode applied to every subspace.
  GroundTruthUir Generate(const UisMode& mode, Rng* rng) const;

  /// One UIR restricted to the first `num_subspaces` subspaces (for the
  /// dimensionality sweeps, which explore 2-8 attribute spaces).
  GroundTruthUir Generate(const UisMode& mode, int64_t num_subspaces,
                          Rng* rng) const;

  int64_t num_subspaces() const {
    return static_cast<int64_t>(subspaces_.size());
  }

 private:
  core::MetaTaskGenOptions options_;
  std::vector<data::Subspace> subspaces_;
  std::vector<core::MetaTaskGenerator> generators_;
};

}  // namespace lte::eval

#endif  // LTE_EVAL_UIR_GENERATOR_H_
