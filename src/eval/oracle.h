#ifndef LTE_EVAL_ORACLE_H_
#define LTE_EVAL_ORACLE_H_

#include <cstdint>
#include <vector>

#include "data/table.h"
#include "eval/uir_generator.h"

namespace lte::eval {

/// Simulated user: answers "interesting?" against a ground-truth UIR,
/// counting how many labels were spent. This is how the paper's evaluation
/// labels tuples too (real user feedback is out of scope, paper footnote 5).
class Oracle {
 public:
  Oracle(const GroundTruthUir* uir, const data::Table* table)
      : uir_(uir), table_(table) {}

  /// Labels a full-width table row by index.
  double LabelRow(int64_t row) const;

  /// Labels a raw subspace point against subspace `s`'s region (the per-
  /// subspace labelling of the initial exploration phase).
  double LabelSubspacePoint(int64_t s, const std::vector<double>& point) const;

  /// Total labels issued so far (rows + subspace points).
  int64_t labels_used() const { return labels_used_; }
  void ResetCount() { labels_used_ = 0; }

 private:
  const GroundTruthUir* uir_;
  const data::Table* table_;
  mutable int64_t labels_used_ = 0;
};

}  // namespace lte::eval

#endif  // LTE_EVAL_ORACLE_H_
