#include "svm/smo.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace lte::svm {

Status SolveSmo(const std::vector<double>& kernel_matrix,
                const std::vector<double>& labels, const SmoOptions& options,
                Rng* rng, SmoResult* result) {
  const auto n = static_cast<int64_t>(labels.size());
  if (n == 0) return Status::InvalidArgument("smo: empty training set");
  if (kernel_matrix.size() != static_cast<size_t>(n * n)) {
    return Status::InvalidArgument("smo: kernel matrix size mismatch");
  }
  for (double y : labels) {
    if (y != 1.0 && y != -1.0) {
      return Status::InvalidArgument("smo: labels must be -1 or +1");
    }
  }
  auto k = [&](int64_t i, int64_t j) {
    return kernel_matrix[static_cast<size_t>(i * n + j)];
  };

  std::vector<double> alpha(static_cast<size_t>(n), 0.0);
  double b = 0.0;
  auto f = [&](int64_t i) {
    double s = b;
    for (int64_t j = 0; j < n; ++j) {
      const double aj = alpha[static_cast<size_t>(j)];
      if (aj != 0.0) s += aj * labels[static_cast<size_t>(j)] * k(j, i);
    }
    return s;
  };

  int64_t passes = 0;
  int64_t iters = 0;
  const double c = options.c;
  const double tol = options.tolerance;
  while (passes < options.max_passes && iters < options.max_iterations) {
    ++iters;
    int64_t changed = 0;
    for (int64_t i = 0; i < n; ++i) {
      const double yi = labels[static_cast<size_t>(i)];
      const double ei = f(i) - yi;
      const double ai_old = alpha[static_cast<size_t>(i)];
      if (!((yi * ei < -tol && ai_old < c) || (yi * ei > tol && ai_old > 0))) {
        continue;
      }
      // Pick a random j != i.
      int64_t j = rng->UniformInt(n - 1);
      if (j >= i) ++j;
      const double yj = labels[static_cast<size_t>(j)];
      const double ej = f(j) - yj;
      const double aj_old = alpha[static_cast<size_t>(j)];

      double lo;
      double hi;
      if (yi != yj) {
        lo = std::max(0.0, aj_old - ai_old);
        hi = std::min(c, c + aj_old - ai_old);
      } else {
        lo = std::max(0.0, ai_old + aj_old - c);
        hi = std::min(c, ai_old + aj_old);
      }
      if (lo >= hi) continue;
      const double eta = 2.0 * k(i, j) - k(i, i) - k(j, j);
      if (eta >= 0.0) continue;

      double aj = aj_old - yj * (ei - ej) / eta;
      aj = std::clamp(aj, lo, hi);
      if (std::abs(aj - aj_old) < 1e-7) continue;
      const double ai = ai_old + yi * yj * (aj_old - aj);
      alpha[static_cast<size_t>(i)] = ai;
      alpha[static_cast<size_t>(j)] = aj;

      const double b1 = b - ei - yi * (ai - ai_old) * k(i, i) -
                        yj * (aj - aj_old) * k(i, j);
      const double b2 = b - ej - yi * (ai - ai_old) * k(i, j) -
                        yj * (aj - aj_old) * k(j, j);
      if (ai > 0.0 && ai < c) {
        b = b1;
      } else if (aj > 0.0 && aj < c) {
        b = b2;
      } else {
        b = 0.5 * (b1 + b2);
      }
      ++changed;
    }
    passes = (changed == 0) ? passes + 1 : 0;
  }

  SmoResult res;
  res.alphas = std::move(alpha);
  res.bias = b;
  for (double a : res.alphas) {
    if (a > 1e-9) ++res.num_support_vectors;
  }
  *result = std::move(res);
  return Status::OK();
}

}  // namespace lte::svm
