#ifndef LTE_SVM_KERNEL_H_
#define LTE_SVM_KERNEL_H_

#include <vector>

namespace lte::svm {

enum class KernelType {
  kLinear,
  kRbf,
  kPolynomial,
};

/// A Mercer kernel for the SVM substrate. The AL-SVM baseline (paper [4])
/// and DSM's uncertain-region classifier (paper [5]) both use RBF kernels.
struct Kernel {
  KernelType type = KernelType::kRbf;
  /// RBF bandwidth / polynomial scale. gamma <= 0 means "auto":
  /// 1 / num_features at training time.
  double gamma = -1.0;
  double coef0 = 0.0;
  int degree = 3;

  /// K(a, b). `gamma_override` supplies the resolved auto-gamma.
  double Evaluate(const std::vector<double>& a, const std::vector<double>& b,
                  double gamma_override) const;
};

}  // namespace lte::svm

#endif  // LTE_SVM_KERNEL_H_
