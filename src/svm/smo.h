#ifndef LTE_SVM_SMO_H_
#define LTE_SVM_SMO_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "svm/kernel.h"

namespace lte::svm {

/// Options for the SMO dual solver.
struct SmoOptions {
  /// Soft-margin penalty.
  double c = 1.0;
  /// KKT violation tolerance.
  double tolerance = 1e-3;
  /// Stop after this many consecutive full passes without an alpha update.
  int64_t max_passes = 5;
  /// Hard cap on total passes (guards pathological non-convergence).
  int64_t max_iterations = 1000;
};

/// Result of solving the SVM dual.
struct SmoResult {
  std::vector<double> alphas;  // One per training point.
  double bias = 0.0;
  int64_t num_support_vectors = 0;
};

/// Simplified SMO (Platt): solves the soft-margin kernel SVM dual for labels
/// in {-1, +1}. The precomputed kernel matrix `kernel_matrix` is row-major
/// n x n. Training sets in IDE exploration are tiny (tens to a few hundred
/// labelled tuples), so the dense precomputed-kernel formulation is ideal.
Status SolveSmo(const std::vector<double>& kernel_matrix,
                const std::vector<double>& labels, const SmoOptions& options,
                Rng* rng, SmoResult* result);

}  // namespace lte::svm

#endif  // LTE_SVM_SMO_H_
