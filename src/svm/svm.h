#ifndef LTE_SVM_SVM_H_
#define LTE_SVM_SVM_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "svm/kernel.h"
#include "svm/smo.h"

namespace lte::svm {

/// A binary kernel SVM classifier (labels 0/1) trained with SMO.
///
/// This is the classifier underlying both baselines reproduced from the
/// paper: AL-SVM [4] (active learning around an SVM) and DSM [5] (polytope
/// model + SVM on the uncertain partition). Degenerate one-class training
/// sets — common in the first iterations of exploration — fall back to a
/// constant predictor.
class Svm {
 public:
  Svm() = default;

  /// Trains on rows of `features` with labels in {0, 1}.
  Status Train(const std::vector<std::vector<double>>& features,
               const std::vector<double>& labels, const Kernel& kernel,
               const SmoOptions& options, Rng* rng);

  bool trained() const { return trained_; }

  /// Signed margin; positive means class 1. For one-class fits this is a
  /// constant +/-1.
  double DecisionFunction(const std::vector<double>& x) const;

  /// 0/1 prediction.
  double Predict(const std::vector<double>& x) const;

  int64_t num_support_vectors() const {
    return static_cast<int64_t>(support_vectors_.size());
  }

 private:
  bool trained_ = false;
  bool one_class_ = false;
  double one_class_label_ = 0.0;
  Kernel kernel_;
  double resolved_gamma_ = 1.0;
  double bias_ = 0.0;
  std::vector<std::vector<double>> support_vectors_;
  std::vector<double> sv_coefficients_;  // alpha_i * y_i, y in {-1, +1}.
};

}  // namespace lte::svm

#endif  // LTE_SVM_SVM_H_
