#include "svm/kernel.h"

#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace lte::svm {

double Kernel::Evaluate(const std::vector<double>& a,
                        const std::vector<double>& b,
                        double gamma_override) const {
  switch (type) {
    case KernelType::kLinear:
      return Dot(a, b);
    case KernelType::kRbf:
      return std::exp(-gamma_override * SquaredDistance(a, b));
    case KernelType::kPolynomial:
      return std::pow(gamma_override * Dot(a, b) + coef0, degree);
  }
  LTE_CHECK_MSG(false, "unknown kernel type");
  return 0.0;
}

}  // namespace lte::svm
