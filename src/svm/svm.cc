#include "svm/svm.h"

#include "common/check.h"
#include "common/math_util.h"

namespace lte::svm {

Status Svm::Train(const std::vector<std::vector<double>>& features,
                  const std::vector<double>& labels, const Kernel& kernel,
                  const SmoOptions& options, Rng* rng) {
  const auto n = static_cast<int64_t>(features.size());
  if (n == 0) return Status::InvalidArgument("svm: empty training set");
  if (labels.size() != features.size()) {
    return Status::InvalidArgument("svm: features/labels size mismatch");
  }
  kernel_ = kernel;
  if (kernel.gamma > 0.0) {
    resolved_gamma_ = kernel.gamma;
  } else {
    // Auto ("scale") gamma: 1 / (d * mean per-dimension variance), so the
    // RBF bandwidth tracks the data spread instead of assuming unit-scale
    // features.
    const auto d = static_cast<double>(features.front().size());
    double var_sum = 0.0;
    for (size_t j = 0; j < features.front().size(); ++j) {
      std::vector<double> column;
      column.reserve(features.size());
      for (const auto& row : features) column.push_back(row[j]);
      var_sum += Variance(column);
    }
    const double mean_var = var_sum / d;
    resolved_gamma_ = mean_var > 1e-12 ? 1.0 / (d * mean_var) : 1.0 / d;
  }

  // One-class degenerate case: constant predictor.
  bool has_pos = false;
  bool has_neg = false;
  for (double y : labels) {
    if (y == 1.0) {
      has_pos = true;
    } else if (y == 0.0) {
      has_neg = true;
    } else {
      return Status::InvalidArgument("svm: labels must be 0 or 1");
    }
  }
  if (!has_pos || !has_neg) {
    trained_ = true;
    one_class_ = true;
    one_class_label_ = has_pos ? 1.0 : 0.0;
    support_vectors_.clear();
    sv_coefficients_.clear();
    return Status::OK();
  }

  // Map labels to {-1, +1} and precompute the kernel matrix.
  std::vector<double> y(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) y[i] = labels[i] > 0.5 ? 1.0 : -1.0;
  std::vector<double> gram(static_cast<size_t>(n * n));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i; j < n; ++j) {
      const double k = kernel_.Evaluate(features[static_cast<size_t>(i)],
                                        features[static_cast<size_t>(j)],
                                        resolved_gamma_);
      gram[static_cast<size_t>(i * n + j)] = k;
      gram[static_cast<size_t>(j * n + i)] = k;
    }
  }

  SmoResult res;
  LTE_RETURN_IF_ERROR(SolveSmo(gram, y, options, rng, &res));

  support_vectors_.clear();
  sv_coefficients_.clear();
  for (int64_t i = 0; i < n; ++i) {
    const double a = res.alphas[static_cast<size_t>(i)];
    if (a > 1e-9) {
      support_vectors_.push_back(features[static_cast<size_t>(i)]);
      sv_coefficients_.push_back(a * y[static_cast<size_t>(i)]);
    }
  }
  bias_ = res.bias;
  one_class_ = false;
  trained_ = true;
  return Status::OK();
}

double Svm::DecisionFunction(const std::vector<double>& x) const {
  LTE_CHECK_MSG(trained_, "svm: DecisionFunction before Train");
  if (one_class_) return one_class_label_ > 0.5 ? 1.0 : -1.0;
  double s = bias_;
  for (size_t i = 0; i < support_vectors_.size(); ++i) {
    s += sv_coefficients_[i] *
         kernel_.Evaluate(support_vectors_[i], x, resolved_gamma_);
  }
  return s;
}

double Svm::Predict(const std::vector<double>& x) const {
  return DecisionFunction(x) >= 0.0 ? 1.0 : 0.0;
}

}  // namespace lte::svm
