#include "serving/coalesced_scan_scheduler.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"

namespace lte::serving {
namespace {

using core::kServingBlockRows;

}  // namespace

CoalescedScanScheduler::CoalescedScanScheduler(
    std::shared_ptr<const core::ExplorationModel> model,
    const data::Table* table, CoalescedScanOptions options)
    : model_(std::move(model)), table_(table), options_(options) {
  LTE_CHECK(model_ != nullptr);
  LTE_CHECK(table != nullptr);
  options_.max_batch_requests = std::max<int64_t>(options_.max_batch_requests, 1);
  options_.max_pending_requests = std::max<int64_t>(
      options_.max_pending_requests, options_.max_batch_requests);
  options_.flush_deadline_micros =
      std::max<int64_t>(options_.flush_deadline_micros, 0);
  scheduler_ = std::thread([this] { SchedulerLoop(); });
}

CoalescedScanScheduler::~CoalescedScanScheduler() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  scheduler_cv_.notify_all();
  submit_cv_.notify_all();
  scheduler_.join();
}

void CoalescedScanScheduler::Flush() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return;  // Nothing queued; nothing to trigger.
    flush_requested_ = true;
  }
  scheduler_cv_.notify_all();
}

CoalescedScanStats CoalescedScanScheduler::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status CoalescedScanScheduler::ValidateSubmission(
    const core::ExplorationSession& session) const {
  if (&session.model() != model_.get()) {
    return Status::InvalidArgument(
        "scheduler: session is bound to a different model");
  }
  return session.ValidateServing(*table_);
}

Status CoalescedScanScheduler::PredictRows(
    const core::ExplorationSession& session, std::span<const int64_t> rows,
    std::vector<double>* predictions) {
  if (predictions == nullptr) {
    return Status::InvalidArgument("scheduler: predictions must not be null");
  }
  LTE_RETURN_IF_ERROR(ValidateSubmission(session));
  for (const int64_t r : rows) {
    if (r < 0 || r >= table_->num_rows()) {
      return Status::OutOfRange("scheduler: row index " + std::to_string(r) +
                                " outside [0, " +
                                std::to_string(table_->num_rows()) + ")");
    }
  }
  predictions->assign(rows.size(), 0.0);
  if (rows.empty()) return Status::OK();

  Request request;
  request.session = &session;
  request.retrieve = false;
  request.rows = rows;
  request.sorted_rows.assign(rows.begin(), rows.end());
  std::sort(request.sorted_rows.begin(), request.sorted_rows.end());
  request.sorted_rows.erase(
      std::unique(request.sorted_rows.begin(), request.sorted_rows.end()),
      request.sorted_rows.end());
  request.predictions = predictions;
  return Submit(&request);
}

Status CoalescedScanScheduler::RetrieveMatches(
    const core::ExplorationSession& session, int64_t limit,
    std::vector<int64_t>* matches) {
  if (matches == nullptr) {
    return Status::InvalidArgument("scheduler: matches must not be null");
  }
  matches->clear();
  LTE_RETURN_IF_ERROR(ValidateSubmission(session));
  if (limit == 0) return Status::OK();  // Only limit < 0 means "unlimited".
  if (table_->num_rows() == 0) return Status::OK();

  Request request;
  request.session = &session;
  request.retrieve = true;
  request.limit = limit;
  request.matches = matches;
  return Submit(&request);
}

Status CoalescedScanScheduler::Submit(Request* request) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Backpressure: park the submitter until the scheduler works the
    // pending set below the bound (each completed batch frees capacity).
    submit_cv_.wait(lock, [&] {
      return stopping_ || pending_ < options_.max_pending_requests;
    });
    if (stopping_) {
      return Status::FailedPrecondition("scheduler: shutting down");
    }
    request->enqueue_time = std::chrono::steady_clock::now();
    queue_.push_back(request);
    ++pending_;
  }
  scheduler_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  submit_cv_.wait(lock, [&] { return request->done; });
  return Status::OK();
}

void CoalescedScanScheduler::SchedulerLoop() {
  std::vector<Request*> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (queue_.empty()) {
          if (stopping_) return;
          flush_requested_ = false;  // Nothing left to flush.
          scheduler_cv_.wait(lock);
          continue;
        }
        if (stopping_ || flush_requested_ ||
            static_cast<int64_t>(queue_.size()) >=
                options_.max_batch_requests) {
          break;
        }
        const auto deadline =
            queue_.front()->enqueue_time +
            std::chrono::microseconds(options_.flush_deadline_micros);
        if (std::chrono::steady_clock::now() >= deadline) break;
        scheduler_cv_.wait_until(lock, deadline);
      }
      const auto take = std::min<int64_t>(
          static_cast<int64_t>(queue_.size()), options_.max_batch_requests);
      batch.assign(queue_.begin(), queue_.begin() + take);
      queue_.erase(queue_.begin(), queue_.begin() + take);
      if (queue_.empty()) flush_requested_ = false;
    }

    const BatchOutcome outcome = RunBatch(batch);

    {
      const std::lock_guard<std::mutex> lock(mu_);
      pending_ -= static_cast<int64_t>(batch.size());
      stats_.batches += 1;
      stats_.requests += static_cast<int64_t>(batch.size());
      stats_.largest_batch = std::max<int64_t>(
          stats_.largest_batch, static_cast<int64_t>(batch.size()));
      stats_.rows_served += outcome.rows_served;
      stats_.encode_passes += outcome.encode_passes;
      for (Request* request : batch) request->done = true;
    }
    submit_cv_.notify_all();
  }
}

CoalescedScanScheduler::BatchOutcome CoalescedScanScheduler::RunBatch(
    const std::vector<Request*>& batch) const {
  BatchOutcome outcome;
  // Union row domain of the batch, ascending. A retrieval subscribes to the
  // whole table; PredictRows requests contribute their (validated) row sets.
  std::vector<int64_t> union_rows;
  bool whole_table = false;
  for (const Request* request : batch) whole_table |= request->retrieve;
  if (whole_table) {
    union_rows.resize(static_cast<size_t>(table_->num_rows()));
    std::iota(union_rows.begin(), union_rows.end(), 0);
  } else {
    for (const Request* request : batch) {
      union_rows.insert(union_rows.end(), request->sorted_rows.begin(),
                        request->sorted_rows.end());
    }
    std::sort(union_rows.begin(), union_rows.end());
    union_rows.erase(std::unique(union_rows.begin(), union_rows.end()),
                     union_rows.end());
  }
  LTE_CHECK(!union_rows.empty());  // Empty requests never reach a pass.

  const auto union_count = static_cast<int64_t>(union_rows.size());
  const int64_t num_blocks =
      (union_count + kServingBlockRows - 1) / kServingBlockRows;
  for (Request* request : batch) {
    request->verdict.assign(union_rows.size(), 0);
  }

  // The whole pass can stop claiming blocks only when every subscriber is a
  // limit-bounded retrieval: those are satisfied by a prefix, anything else
  // needs its full row set.
  bool can_cancel = true;
  for (const Request* request : batch) {
    can_cancel &= request->retrieve && request->limit > 0;
  }

  std::atomic<int64_t> encode_passes{0};
  ThreadPool::Shared().ParallelForEarlyExit(
      num_blocks, ResolveThreadCount(options_.num_threads),
      [&](int64_t block) {
        ProcessBlock(batch, union_rows, block, &encode_passes);
      },
      [&] {
        if (!can_cancel) return false;
        for (const Request* request : batch) {
          if (request->found.load(std::memory_order_relaxed) <
              request->limit) {
            return false;
          }
        }
        return true;
      });
  outcome.encode_passes = encode_passes.load(std::memory_order_relaxed);

  // Demultiplex per request, preserving each caller's own order contract.
  for (Request* request : batch) {
    if (request->retrieve) {
      // Ascending union positions = ascending row ids; truncating at the
      // limit reproduces the prefix of that session's unlimited scan (the
      // executed blocks form a contiguous prefix covering it — same
      // argument as ExplorationSession::RetrieveMatches).
      for (int64_t p = 0; p < union_count; ++p) {
        if (request->verdict[static_cast<size_t>(p)] != 0) {
          request->matches->push_back(union_rows[static_cast<size_t>(p)]);
          if (request->limit > 0 &&
              static_cast<int64_t>(request->matches->size()) >=
                  request->limit) {
            break;
          }
        }
      }
      outcome.rows_served += union_count;
    } else {
      // Input order, duplicates included: every requested row is present in
      // the sorted union domain by construction.
      for (size_t i = 0; i < request->rows.size(); ++i) {
        const auto it =
            std::lower_bound(union_rows.begin(), union_rows.end(),
                             request->rows[i]);
        const auto p = static_cast<size_t>(it - union_rows.begin());
        (*request->predictions)[i] = request->verdict[p] != 0 ? 1.0 : 0.0;
      }
      outcome.rows_served += static_cast<int64_t>(request->rows.size());
    }
  }
  return outcome;
}

void CoalescedScanScheduler::ProcessBlock(
    const std::vector<Request*>& batch, std::span<const int64_t> union_rows,
    int64_t block, std::atomic<int64_t>* encode_passes) const {
  const int64_t lo = block * kServingBlockRows;
  const int64_t hi = std::min<int64_t>(lo + kServingBlockRows,
                                       static_cast<int64_t>(union_rows.size()));
  const std::span<const int64_t> blk =
      union_rows.subspan(static_cast<size_t>(lo), static_cast<size_t>(hi - lo));
  const auto n = static_cast<int64_t>(blk.size());
  const auto q_count = batch.size();

  // Per-request survivors: block-relative positions this session still has
  // to score. A session subscribes to a position only if it asked for that
  // row; a limit-bounded retrieval whose limit is already covered by
  // completed lower-index blocks skips the block outright (its unread
  // verdicts stay 0 — the demux truncates before ever reaching them).
  std::vector<std::vector<int64_t>> alive(q_count);
  std::vector<int64_t> next;
  int64_t max_active = 0;
  for (size_t q = 0; q < q_count; ++q) {
    const Request* request = batch[q];
    if (request->retrieve) {
      if (request->limit > 0 &&
          request->found.load(std::memory_order_relaxed) >= request->limit) {
        continue;
      }
      alive[q].resize(static_cast<size_t>(n));
      std::iota(alive[q].begin(), alive[q].end(), 0);
    } else {
      // Two-pointer intersection of two ascending lists: the block's rows
      // and the request's deduplicated row set.
      const std::vector<int64_t>& want = request->sorted_rows;
      const auto first =
          std::lower_bound(want.begin(), want.end(), blk[0]);
      for (auto it = first; it != want.end() && *it <= blk[n - 1]; ++it) {
        const auto pos = std::lower_bound(blk.begin(), blk.end(), *it);
        if (pos != blk.end() && *pos == *it) {
          alive[q].push_back(static_cast<int64_t>(pos - blk.begin()));
        }
      }
    }
    if (!alive[q].empty()) {
      max_active =
          std::max(max_active, request->session->active_subspaces());
    }
  }

  // Shared pass: one gather+encode per subspace with live subscribers, then
  // each subscriber's batch forward over its own survivor slice.
  std::vector<uint8_t> member(static_cast<size_t>(n));
  std::vector<int64_t> index_in_needed(static_cast<size_t>(n));
  std::vector<int64_t> gather_rows;
  std::vector<int64_t> sub_rows;
  std::vector<data::ColumnView> columns;
  std::vector<double> encoded;
  std::vector<double> sub_encoded;
  std::vector<double> preds;
  std::vector<double> point;
  core::TaskModel::BatchScratch batch_scratch;

  for (int64_t s = 0; s < max_active; ++s) {
    std::fill(member.begin(), member.end(), 0);
    bool any = false;
    for (size_t q = 0; q < q_count; ++q) {
      if (batch[q]->session->active_subspaces() <= s || alive[q].empty()) {
        continue;
      }
      for (const int64_t p : alive[q]) member[static_cast<size_t>(p)] = 1;
      any = true;
    }
    if (!any) break;

    gather_rows.clear();
    for (int64_t p = 0; p < n; ++p) {
      if (member[static_cast<size_t>(p)] != 0) {
        index_in_needed[static_cast<size_t>(p)] =
            static_cast<int64_t>(gather_rows.size());
        gather_rows.push_back(blk[static_cast<size_t>(p)]);
      }
    }
    const std::vector<int64_t>& attrs =
        model_->subspace(s)->attribute_indices;
    columns.clear();
    for (const int64_t a : attrs) columns.push_back(table_->View(a));
    model_->encoder().EncodeGatheredInto(columns, attrs, gather_rows,
                                         &encoded);
    encode_passes->fetch_add(1, std::memory_order_relaxed);
    const int64_t width = model_->encoder().ProjectedWidth(attrs);

    for (size_t q = 0; q < q_count; ++q) {
      if (batch[q]->session->active_subspaces() <= s || alive[q].empty()) {
        continue;
      }
      const auto count = static_cast<int64_t>(alive[q].size());
      sub_rows.resize(alive[q].size());
      std::span<const double> q_encoded;
      if (count == static_cast<int64_t>(gather_rows.size())) {
        // This session's survivors ARE the encoded set — score it in place.
        for (int64_t i = 0; i < count; ++i) {
          sub_rows[static_cast<size_t>(i)] =
              blk[static_cast<size_t>(alive[q][static_cast<size_t>(i)])];
        }
        q_encoded = encoded;
      } else {
        sub_encoded.resize(static_cast<size_t>(count * width));
        for (int64_t i = 0; i < count; ++i) {
          const int64_t p = alive[q][static_cast<size_t>(i)];
          sub_rows[static_cast<size_t>(i)] = blk[static_cast<size_t>(p)];
          std::memcpy(
              sub_encoded.data() + i * width,
              encoded.data() + index_in_needed[static_cast<size_t>(p)] * width,
              static_cast<size_t>(width) * sizeof(double));
        }
        q_encoded = sub_encoded;
      }
      preds.resize(alive[q].size());
      batch[q]->session->ScoreEncodedBlock(s, q_encoded, sub_rows, columns,
                                           &batch_scratch, &point, preds);
      next.clear();
      for (int64_t i = 0; i < count; ++i) {
        if (preds[static_cast<size_t>(i)] >= 0.5) {
          next.push_back(alive[q][static_cast<size_t>(i)]);
        }
      }
      alive[q].swap(next);
    }
  }

  for (size_t q = 0; q < q_count; ++q) {
    Request* request = batch[q];
    for (const int64_t p : alive[q]) {
      request->verdict[static_cast<size_t>(lo + p)] = 1;
    }
    if (request->retrieve && request->limit > 0 && !alive[q].empty()) {
      request->found.fetch_add(static_cast<int64_t>(alive[q].size()),
                               std::memory_order_relaxed);
    }
  }
}

}  // namespace lte::serving
