#ifndef LTE_SERVING_MODEL_REGISTRY_H_
#define LTE_SERVING_MODEL_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <mutex>

#include "core/exploration_model.h"

namespace lte::serving {

/// One published model epoch: the snapshot handle plus the metadata a
/// serving host routes on. Copies are cheap (one shared_ptr) and pin the
/// model alive for as long as any copy exists.
struct ModelSnapshot {
  std::shared_ptr<const core::ExplorationModel> model;
  /// Monotone publish counter, starting at 1 for the registry's initial
  /// model. Two snapshots with equal epoch are the same publish.
  uint64_t epoch = 0;
  /// The model's content fingerprint (`ExplorationModel::fingerprint()`),
  /// denormalized here so routing/GC decisions — e.g. "is this checkpoint
  /// stale?" — need no model dereference.
  uint64_t fingerprint = 0;
};

/// Epoch-versioned model publication point: the single place a serving
/// process swaps its `ExplorationModel` (DESIGN.md §2e).
///
/// The registry vends immutable `{handle, epoch, fingerprint}` snapshots.
/// Attachment points (sessions, the session manager, the coalesced
/// scheduler) take a snapshot at bind time and keep serving it RCU-style:
/// a concurrent `Publish` never tears a model out from under a reader,
/// because readers hold shared ownership of the epoch they pinned — the
/// old model is reclaimed only when the last handle drops. `Publish` is the
/// atomic epoch bump the background refresh path commits through; sessions
/// created after it see the new epoch, sessions created before it finish on
/// theirs, and stale *checkpoints* meeting the new epoch surface as
/// FailedPrecondition through the session fingerprint stamp (PR 7), never
/// as a crash.
///
/// Thread-safety: all methods may be called concurrently from any threads.
class ModelRegistry {
 public:
  /// Starts at epoch 1 with `initial` as the current model. The model must
  /// be non-null and pretrained (programmer configuration, so violations
  /// abort rather than return).
  explicit ModelRegistry(
      std::shared_ptr<const core::ExplorationModel> initial);

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// The currently published snapshot. The returned copy stays valid (and
  /// keeps its model alive) regardless of later publishes.
  ModelSnapshot Current() const;

  /// Epoch of the currently published snapshot.
  uint64_t current_epoch() const;

  /// Atomically replaces the current model, bumping the epoch by one, and
  /// returns the new epoch. The model must be non-null and pretrained.
  /// Sessions pinned to earlier epochs are unaffected.
  uint64_t Publish(std::shared_ptr<const core::ExplorationModel> model);

 private:
  mutable std::mutex mu_;
  ModelSnapshot current_;  // Guarded by mu_.
};

}  // namespace lte::serving

#endif  // LTE_SERVING_MODEL_REGISTRY_H_
