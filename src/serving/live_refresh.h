#ifndef LTE_SERVING_LIVE_REFRESH_H_
#define LTE_SERVING_LIVE_REFRESH_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/drift.h"
#include "common/status.h"
#include "data/subspace.h"
#include "data/table.h"
#include "serving/model_registry.h"

namespace lte::serving {

/// Knobs of the drift-triggered background refresh (DESIGN.md §2e).
struct DriftRefreshOptions {
  /// Per-subspace drift detection thresholds and window size.
  cluster::DriftDetectorOptions drift;
  /// Seed base of the background rebuild: the rebuild that publishes epoch e
  /// pretrains with `Rng(rebuild_seed + e)`. Together with the row-count
  /// watermark this makes every published model a pure function of
  /// (prefix rows, options, seed, epoch) — the determinism argument in
  /// DESIGN.md §2e, enforced by the `refresh_bit_identical` bench invariant.
  uint64_t rebuild_seed = 17;
};

/// Running totals since construction.
struct DriftRefreshStats {
  /// AppendAndObserve calls accepted.
  int64_t batches_observed = 0;
  /// Rows appended through this controller.
  int64_t rows_observed = 0;
  /// Background rebuilds started (drift fired while no rebuild was in
  /// flight).
  int64_t refreshes_triggered = 0;
  /// Rebuilds that published a new epoch.
  int64_t refreshes_completed = 0;
  /// Rebuilds whose Pretrain failed (the old epoch stays current).
  int64_t refresh_failures = 0;
  /// Epoch of the most recent successful publish; 0 before the first.
  uint64_t last_published_epoch = 0;
};

/// The live-table refresh loop: append → drift-detect → background rebuild →
/// atomic epoch publish (paper Section V-E "dynamic maintenance"; DESIGN.md
/// §2e).
///
/// The controller owns the ingest side of a live serving host. Each
/// `AppendAndObserve` batch is sealed into the table (readers keep serving
/// throughout) and streamed through one `cluster::DriftDetector` per
/// subspace, seeded from the *current* model's clustering contexts. When any
/// subspace drifts, a background worker thread snapshots the table at the
/// current row watermark, re-runs the full offline phase (clustering,
/// meta-task generation, meta-training — fanning out on the process-wide
/// ThreadPool like any Pretrain), and publishes the result through the
/// registry's atomic epoch bump. Live sessions finish on their pinned
/// snapshots; new sessions bind to the new epoch; the detectors re-seed from
/// the new contexts so subsequent drift is judged against what the refreshed
/// model actually learned.
///
/// Serving stays on the request path the whole time: the only work
/// `AppendAndObserve` does inline is the segment seal and the detector
/// update (a per-row nearest-center pass), both O(batch).
///
/// Thread-safety: `AppendAndObserve` is single-writer (one ingest thread),
/// matching `Table::AppendRows`. Everything else — stats, WaitForRefresh,
/// concurrent readers of the table and registry — may run from any thread.
/// The destructor joins any in-flight rebuild.
class DriftRefreshController {
 public:
  /// Watches `table` (not owned; this controller must be its only appender)
  /// and publishes refreshed models into `registry` (not owned). `subspaces`
  /// must be the subspace layout the registry's current model was pretrained
  /// on; rebuilds reuse it together with the current model's options and
  /// meta-training flag. Detectors seed from the current model's clustering
  /// contexts.
  DriftRefreshController(ModelRegistry* registry, data::Table* table,
                         std::vector<data::Subspace> subspaces,
                         DriftRefreshOptions options = {});

  /// Joins an in-flight rebuild, then returns. A rebuild that completes
  /// during destruction still publishes (the registry outlives this).
  ~DriftRefreshController();

  DriftRefreshController(const DriftRefreshController&) = delete;
  DriftRefreshController& operator=(const DriftRefreshController&) = delete;

  /// Seals `rows` into the table (`Table::AppendRows`), streams their
  /// subspace projections through the drift detectors, and — when a detector
  /// reports drift and no rebuild is already in flight — starts the
  /// background rebuild at the post-append row watermark. Returns the append
  /// error unchanged when sealing fails (nothing is observed); detector and
  /// trigger bookkeeping cannot fail.
  Status AppendAndObserve(const std::vector<std::vector<double>>& rows);

  /// True while a background rebuild is running.
  bool refresh_in_flight() const;

  /// Blocks until no rebuild is in flight (returns immediately when idle).
  void WaitForRefresh();

  /// Latest per-subspace drift verdicts (diagnostics; recomputed on call).
  bool AnySubspaceDrifted() const;

  DriftRefreshStats stats() const;

 private:
  /// Re-seeds the detectors from `model`'s clustering contexts. Caller holds
  /// `mu_`.
  void ReseedDetectorsLocked(const core::ExplorationModel& model);

  /// Background worker body: snapshot rows [0, watermark), pretrain with the
  /// epoch-derived seed, publish, re-seed detectors.
  void RunRefresh(int64_t watermark, uint64_t next_epoch);

  ModelRegistry* registry_;
  data::Table* table_;
  const std::vector<data::Subspace> subspaces_;
  const DriftRefreshOptions options_;
  const bool train_meta_;

  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  std::vector<cluster::DriftDetector> detectors_;  // One per subspace.
  bool refresh_in_flight_ = false;
  DriftRefreshStats stats_;
  std::thread worker_;  // Joined before relaunch and at destruction.
};

}  // namespace lte::serving

#endif  // LTE_SERVING_LIVE_REFRESH_H_
