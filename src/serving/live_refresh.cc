#include "serving/live_refresh.h"

#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "core/meta_task.h"

namespace lte::serving {

DriftRefreshController::DriftRefreshController(
    ModelRegistry* registry, data::Table* table,
    std::vector<data::Subspace> subspaces, DriftRefreshOptions options)
    : registry_(registry),
      table_(table),
      subspaces_(std::move(subspaces)),
      options_(options),
      train_meta_(registry != nullptr &&
                  registry->Current().model->meta_trained()) {
  LTE_CHECK(registry != nullptr);
  LTE_CHECK(table != nullptr);
  const ModelSnapshot snapshot = registry_->Current();
  LTE_CHECK_EQ(static_cast<int64_t>(subspaces_.size()),
               snapshot.model->num_subspaces());
  const std::lock_guard<std::mutex> lock(mu_);
  ReseedDetectorsLocked(*snapshot.model);
}

DriftRefreshController::~DriftRefreshController() {
  if (worker_.joinable()) worker_.join();
}

void DriftRefreshController::ReseedDetectorsLocked(
    const core::ExplorationModel& model) {
  detectors_.clear();
  detectors_.reserve(subspaces_.size());
  for (int64_t s = 0; s < static_cast<int64_t>(subspaces_.size()); ++s) {
    const core::MetaTaskGenerator* gen = model.generator(s);
    LTE_CHECK(gen != nullptr);
    const core::SubspaceContext& ctx = gen->context();
    detectors_.emplace_back(ctx.centers_s, ctx.sample_points, options_.drift);
  }
}

Status DriftRefreshController::AppendAndObserve(
    const std::vector<std::vector<double>>& rows) {
  LTE_RETURN_IF_ERROR(table_->AppendRows(rows));
  const int64_t watermark = table_->num_rows();

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.batches_observed;
  stats_.rows_observed += static_cast<int64_t>(rows.size());
  std::vector<double> point;
  for (size_t s = 0; s < subspaces_.size(); ++s) {
    const std::vector<int64_t>& attrs = subspaces_[s].attribute_indices;
    for (const std::vector<double>& row : rows) {
      point.clear();
      for (int64_t a : attrs) point.push_back(row[static_cast<size_t>(a)]);
      detectors_[s].Offer(point);
    }
  }

  bool drifted = false;
  for (const cluster::DriftDetector& d : detectors_) {
    if (d.Drifted()) {
      drifted = true;
      break;
    }
  }
  if (!drifted || refresh_in_flight_) return Status::OK();

  // One rebuild at a time: the previous worker (if any) has finished —
  // refresh_in_flight_ is false — but its thread object still needs joining
  // before reuse.
  if (worker_.joinable()) worker_.join();
  refresh_in_flight_ = true;
  ++stats_.refreshes_triggered;
  const uint64_t next_epoch = registry_->current_epoch() + 1;
  worker_ = std::thread([this, watermark, next_epoch] {
    RunRefresh(watermark, next_epoch);
  });
  return Status::OK();
}

void DriftRefreshController::RunRefresh(int64_t watermark,
                                        uint64_t next_epoch) {
  // Deterministic rebuild input: exactly the rows visible when drift fired,
  // unaffected by whatever the live table appends while we train.
  const data::Table snapshot = table_->SnapshotPrefix(watermark);
  const ModelSnapshot current = registry_->Current();
  auto next = std::make_shared<core::ExplorationModel>(
      current.model->options());
  Rng rng(options_.rebuild_seed + next_epoch);
  const Status st = next->Pretrain(snapshot, subspaces_, train_meta_, &rng);

  const std::lock_guard<std::mutex> lock(mu_);
  if (st.ok()) {
    const uint64_t epoch = registry_->Publish(next);
    ReseedDetectorsLocked(*next);
    ++stats_.refreshes_completed;
    stats_.last_published_epoch = epoch;
  } else {
    // The old epoch stays current; detectors keep their state, so the next
    // drifting batch retries the rebuild.
    ++stats_.refresh_failures;
  }
  refresh_in_flight_ = false;
  idle_cv_.notify_all();
}

bool DriftRefreshController::refresh_in_flight() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return refresh_in_flight_;
}

void DriftRefreshController::WaitForRefresh() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return !refresh_in_flight_; });
}

bool DriftRefreshController::AnySubspaceDrifted() const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const cluster::DriftDetector& d : detectors_) {
    if (d.Drifted()) return true;
  }
  return false;
}

DriftRefreshStats DriftRefreshController::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace lte::serving
