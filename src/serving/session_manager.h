#ifndef LTE_SERVING_SESSION_MANAGER_H_
#define LTE_SERVING_SESSION_MANAGER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/status.h"
#include "core/exploration_model.h"
#include "core/exploration_session.h"
#include "serving/model_registry.h"

namespace lte::serving {

/// Capacity and placement knobs of the session lifecycle manager
/// (DESIGN.md §2d).
struct SessionManagerOptions {
  /// K: sessions kept resident in RAM. The manager may transiently exceed
  /// this when more than K sessions are pinned at once (pinned sessions are
  /// never evicted); it trims back to K as pins release.
  int64_t max_resident = 64;
  /// Directory for per-user checkpoints (`<dir>/<user_id>.ltesession`).
  /// Created if missing. Required.
  std::string checkpoint_dir;
  /// Per-session thread override forwarded to every `ExplorationSession` the
  /// manager creates. The default 1 is the multi-user serving convention:
  /// sessions themselves are the parallelism. -1 inherits the model's knob.
  int64_t session_num_threads = 1;
};

/// Running totals since construction, for benchmarks and capacity planning.
struct SessionManagerStats {
  /// Acquire found the session resident.
  int64_t hits = 0;
  /// Acquire built a fresh session (no checkpoint existed).
  int64_t creates = 0;
  /// Acquire restored an evicted session from its checkpoint.
  int64_t restores = 0;
  /// Sessions checkpointed and dropped from RAM to make room.
  int64_t evictions = 0;
  /// Evictions abandoned because the checkpoint write failed (the session
  /// stays resident — state is never dropped without a durable copy).
  int64_t eviction_failures = 0;
  /// High-water mark of concurrently resident sessions (> max_resident only
  /// while more than K sessions were pinned at once).
  int64_t peak_resident = 0;
};

/// LRU session cache over durable per-user state: the third leg of the
/// serving architecture (immutable shared model → PR 4, coalesced scans →
/// PR 6, and now evictable per-user sessions), mirroring the client-state
/// split of the mwt-ds decision service.
///
/// The manager owns up to K resident `ExplorationSession`s over any number
/// of known users. `Acquire` pins the user's session while a request is in
/// flight and transparently restores it from its checkpoint when it was
/// evicted (or creates it fresh on first contact — including first contact
/// *after a process restart*, when the checkpoint directory already holds
/// the user's state). When capacity is exceeded, the least-recently-used
/// unpinned session is checkpointed to disk and dropped.
///
///   ModelRegistry registry(model);
///   SessionManager manager(&registry,
///                          {.max_resident = 256,
///                           .checkpoint_dir = "/var/lte/sessions"});
///   SessionManager::Lease lease;
///   LTE_RETURN_IF_ERROR(manager.Acquire(user_id, &lease));
///   lease.session()->RetrieveMatches(table, 100, &matches);
///   // lease destructor unpins; the session becomes evictable again.
///
/// Model epochs: every session the manager creates or restores binds to the
/// registry's *current* snapshot at that moment and pins it for the
/// session's resident lifetime (RCU-style — a background `Publish` never
/// tears a model out from under a resident session). After a refresh,
/// restoring a checkpoint written under the old epoch returns
/// FailedPrecondition from the fingerprint stamp; the caller decides
/// whether to `RemoveUser` and start that user fresh, and
/// `SweepStaleCheckpoints` batch-GCs such checkpoints.
///
/// Durability: checkpoints are written to `<path>.tmp` and renamed into
/// place, so a crash mid-evict leaves the previous checkpoint intact — a
/// restart never sees a half-written session file (and the stale `.tmp` is
/// simply overwritten by the next eviction). An eviction whose write fails
/// keeps the session resident: state is never dropped without a durable
/// copy. The manager never checkpoints implicitly at destruction; call
/// `CheckpointAll` before shutdown for exactly-current durable state.
///
/// Determinism: evict/restore round-trips are byte-exact
/// (`ExplorationSession::Save/Load`), so any interleaving of evictions with
/// a user's requests returns byte-identical results to that user's session
/// staying resident throughout — enforced by the churn tests under TSan and
/// the `bench_session_churn` invariant.
///
/// Thread-safety: all manager methods may be called concurrently from any
/// threads; internal state (including evict/restore I/O) is guarded by one
/// mutex, while leased sessions are used *outside* that mutex. Pinning makes
/// the handoff safe, not the session itself: a session is still
/// single-writer, so concurrent leases on the *same* user may only run const
/// queries concurrently — serialize a user's mutating calls (e.g. shard
/// users across request threads, as the tests do). Routing leased sessions
/// through a `CoalescedScanScheduler` is safe: the lease keeps the session
/// resident and un-evicted for the whole blocking submission.
class SessionManager {
 private:
  /// Map values are stable under rehash (node-based), so leases hold Entry
  /// pointers directly.
  struct Entry {
    std::unique_ptr<core::ExplorationSession> session;  // null = not resident.
    int64_t pins = 0;          // Leases outstanding; pinned ⇒ not evictable.
    uint64_t last_use = 0;     // LRU clock tick of the latest Acquire.
    bool on_disk = false;      // A checkpoint file exists for this user.
  };

 public:
  /// RAII pin on one user's session. Move-only; the destructor releases the
  /// pin (and lets the manager trim back to capacity). An empty lease —
  /// default-constructed, moved-from, or released — has session() == nullptr.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept;
    ~Lease() { Release(); }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    /// The pinned session; nullptr when the lease is empty. Valid until
    /// Release()/destruction — the manager cannot evict a pinned session.
    core::ExplorationSession* session() const {
      return entry_ == nullptr ? nullptr : entry_->session.get();
    }
    bool valid() const { return entry_ != nullptr; }

    /// Unpins now (idempotent). The session pointer is invalid afterwards.
    void Release();

   private:
    friend class SessionManager;
    SessionManager* manager_ = nullptr;
    Entry* entry_ = nullptr;
  };

  /// Serves sessions bound to `registry`'s published epochs (`registry` not
  /// owned; must outlive the manager). Construction also unlinks any orphan
  /// `<user>.ltesession.tmp` files in the checkpoint directory — a crash
  /// between a checkpoint's tmp write and its rename leaves one behind, and
  /// it is dead weight by construction (the rename is what commits).
  /// Requires `options.max_resident >= 1` and a non-empty checkpoint_dir
  /// (programmer configuration, so violations abort rather than return).
  SessionManager(ModelRegistry* registry, SessionManagerOptions options);

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Pins `user_id`'s session into `*lease` (any previous content of the
  /// lease is released first): resident sessions are handed out directly, a
  /// checkpointed session is restored from disk, and an unknown user gets a
  /// fresh session. May evict the LRU unpinned session first to make room.
  /// Fails (and leaves the lease empty) on an invalid user id — user ids
  /// name checkpoint files, so they are restricted to [A-Za-z0-9._-], no
  /// leading dot, at most 128 chars — or when a restore/eviction I/O error
  /// occurs; a failed restore keeps the checkpoint on disk untouched.
  Status Acquire(const std::string& user_id, Lease* lease);

  /// Checkpoints every resident session (pinned or not) without evicting,
  /// for graceful shutdown or periodic durability sweeps. Must not race with
  /// mutating calls on leased sessions (const queries are fine). Attempts
  /// every session; returns the first write error.
  Status CheckpointAll();

  /// Checkpoint GC for a departed user: drops the resident entry (if any)
  /// and unlinks the on-disk checkpoint and any stray `.tmp`. Fails with
  /// FailedPrecondition while the user's session is leased, with
  /// InvalidArgument on a malformed user id, and with IoError when an
  /// existing checkpoint cannot be removed; removing an unknown or
  /// checkpoint-less user succeeds as a no-op.
  Status RemoveUser(const std::string& user_id);

  /// Purges every checkpoint in the directory whose stamped model
  /// fingerprint differs from the registry's *current* one — the batch GC
  /// to run after a model refresh, when old-epoch checkpoints can never
  /// load again. Resident sessions are untouched (a resident entry whose
  /// checkpoint is purged is simply marked not-on-disk; its next eviction
  /// writes a fresh checkpoint). Files that are not readable session
  /// checkpoints are skipped, not deleted. Stores the number of purged
  /// checkpoints in `*removed` when non-null; returns the first unlink
  /// error, purging the rest regardless.
  Status SweepStaleCheckpoints(int64_t* removed);

  /// Sessions currently resident in RAM.
  int64_t resident_count() const;

  SessionManagerStats stats() const;

  const SessionManagerOptions& options() const { return options_; }
  ModelRegistry* registry() const { return registry_; }

  /// `<checkpoint_dir>/<user_id>.ltesession`.
  std::string CheckpointPath(const std::string& user_id) const;

 private:
  /// Atomic checkpoint write: Save to `<path>.tmp`, then rename into place.
  Status SaveCheckpointLocked(const core::ExplorationSession& session,
                              const std::string& user_id);

  /// Checkpoints and drops the LRU resident unpinned session. False when
  /// every resident session is pinned or the write failed (both leave
  /// residency above target; the next release/acquire retries).
  bool EvictOneLocked();

  /// Evicts until at most `target` sessions are resident (best effort).
  void TrimLocked(int64_t target);

  void ReleaseEntry(Entry* entry);

  ModelRegistry* registry_;
  SessionManagerOptions options_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;  // Guarded by mu_.
  int64_t resident_ = 0;                            // Guarded by mu_.
  uint64_t tick_ = 0;                               // LRU clock; guarded.
  SessionManagerStats stats_;                       // Guarded by mu_.
};

}  // namespace lte::serving

#endif  // LTE_SERVING_SESSION_MANAGER_H_
