#include "serving/session_manager.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string_view>
#include <system_error>

#include "common/check.h"

namespace lte::serving {
namespace {

// User ids name checkpoint files, so the alphabet is restricted to what is
// safe in a filename on every filesystem the serving hosts use. A leading
// dot is rejected so ids can never collide with hidden/tmp artifacts.
bool ValidUserId(const std::string& user_id) {
  if (user_id.empty() || user_id.size() > 128 || user_id.front() == '.') {
    return false;
  }
  for (char c : user_id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

SessionManager::Lease& SessionManager::Lease::operator=(
    Lease&& other) noexcept {
  if (this != &other) {
    Release();
    manager_ = other.manager_;
    entry_ = other.entry_;
    other.manager_ = nullptr;
    other.entry_ = nullptr;
  }
  return *this;
}

void SessionManager::Lease::Release() {
  if (manager_ != nullptr && entry_ != nullptr) {
    manager_->ReleaseEntry(entry_);
  }
  manager_ = nullptr;
  entry_ = nullptr;
}

SessionManager::SessionManager(ModelRegistry* registry,
                               SessionManagerOptions options)
    : registry_(registry), options_(std::move(options)) {
  LTE_CHECK(registry != nullptr);
  LTE_CHECK_GE(options_.max_resident, 1);
  LTE_CHECK_MSG(!options_.checkpoint_dir.empty(),
                "SessionManagerOptions::checkpoint_dir is required");
  // Best effort; a genuinely unusable directory surfaces as an IoError on
  // the first checkpoint write instead of aborting construction.
  std::error_code ec;
  std::filesystem::create_directories(options_.checkpoint_dir, ec);
  // Adopt the directory: a crash between a checkpoint's tmp write and its
  // rename leaves an orphan `.tmp` that nothing would ever reclaim (the
  // rename is what commits, so its content is dead by construction).
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.checkpoint_dir, ec)) {
    if (ec) break;
    if (!entry.is_regular_file(ec)) continue;
    if (entry.path().filename().string().ends_with(".ltesession.tmp")) {
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

std::string SessionManager::CheckpointPath(const std::string& user_id) const {
  return options_.checkpoint_dir + "/" + user_id + ".ltesession";
}

Status SessionManager::SaveCheckpointLocked(
    const core::ExplorationSession& session, const std::string& user_id) {
  const std::string path = CheckpointPath(user_id);
  const std::string tmp = path + ".tmp";
  const Status st = session.Save(tmp);
  if (!st.ok()) {
    std::remove(tmp.c_str());  // Best effort; a stale .tmp is harmless.
    return st;
  }
  // POSIX rename is atomic within a filesystem: a crash before this line
  // leaves the previous checkpoint intact, a crash after it leaves the new
  // one — never a half-written file under the checkpoint name.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("session manager: cannot rename " + tmp + " to " +
                           path);
  }
  return Status::OK();
}

bool SessionManager::EvictOneLocked() {
  Entry* victim = nullptr;
  const std::string* victim_id = nullptr;
  for (auto& [user_id, entry] : entries_) {
    if (entry.session == nullptr || entry.pins > 0) continue;
    if (victim == nullptr || entry.last_use < victim->last_use) {
      victim = &entry;
      victim_id = &user_id;
    }
  }
  if (victim == nullptr) return false;  // Everything resident is pinned.
  if (!SaveCheckpointLocked(*victim->session, *victim_id).ok()) {
    // Never drop state without a durable copy; the session stays resident
    // (transient overshoot) and a later acquire/release retries.
    ++stats_.eviction_failures;
    return false;
  }
  victim->session.reset();
  victim->on_disk = true;
  --resident_;
  ++stats_.evictions;
  return true;
}

void SessionManager::TrimLocked(int64_t target) {
  while (resident_ > target) {
    if (!EvictOneLocked()) break;
  }
}

Status SessionManager::Acquire(const std::string& user_id, Lease* lease) {
  if (lease == nullptr) {
    return Status::InvalidArgument("session manager: lease must not be null");
  }
  lease->Release();
  if (!ValidUserId(user_id)) {
    return Status::InvalidArgument("session manager: invalid user id \"" +
                                   user_id + "\"");
  }
  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = entries_.try_emplace(user_id);
  Entry& entry = it->second;
  if (inserted) {
    // First contact in this process. A checkpoint may still exist on disk —
    // left by a previous run of this manager or of the whole process — and
    // durable state must survive a restart, so adopt it.
    std::error_code ec;
    entry.on_disk = std::filesystem::exists(CheckpointPath(user_id), ec);
  }
  if (entry.session == nullptr) {
    // Make room for the incoming session first, so residency only
    // overshoots max_resident when everything else is pinned.
    TrimLocked(options_.max_resident - 1);
    // Bind to the registry's current epoch; the session pins that snapshot
    // for its resident lifetime. A checkpoint written under an older epoch
    // fails the fingerprint check inside Load below — the well-defined
    // stale-session Status, surfaced on the acquiring thread.
    auto session = std::make_unique<core::ExplorationSession>(
        registry_->Current().model, options_.session_num_threads);
    if (entry.on_disk) {
      const Status st = session->Load(CheckpointPath(user_id));
      if (!st.ok()) {
        // The checkpoint stays on disk untouched; the entry stays evicted.
        if (inserted) entries_.erase(it);
        return st;
      }
      ++stats_.restores;
    } else {
      ++stats_.creates;
    }
    entry.session = std::move(session);
    ++resident_;
    stats_.peak_resident = std::max(stats_.peak_resident, resident_);
  } else {
    ++stats_.hits;
  }
  ++entry.pins;
  entry.last_use = ++tick_;
  lease->manager_ = this;
  lease->entry_ = &entry;
  return Status::OK();
}

void SessionManager::ReleaseEntry(Entry* entry) {
  const std::lock_guard<std::mutex> lock(mu_);
  LTE_CHECK_GT(entry->pins, 0);
  --entry->pins;
  // A release may have just made an over-capacity session evictable.
  TrimLocked(options_.max_resident);
}

Status SessionManager::RemoveUser(const std::string& user_id) {
  if (!ValidUserId(user_id)) {
    return Status::InvalidArgument("session manager: invalid user id \"" +
                                   user_id + "\"");
  }
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(user_id);
  if (it != entries_.end()) {
    if (it->second.pins > 0) {
      return Status::FailedPrecondition("session manager: user \"" + user_id +
                                        "\" is leased");
    }
    if (it->second.session != nullptr) --resident_;
    entries_.erase(it);
  }
  const std::string path = CheckpointPath(user_id);
  std::error_code ec;
  std::filesystem::remove(path + ".tmp", ec);  // Best effort; dead weight.
  ec.clear();
  std::filesystem::remove(path, ec);
  if (ec) {
    return Status::IoError("session manager: cannot remove " + path + ": " +
                           ec.message());
  }
  return Status::OK();
}

Status SessionManager::SweepStaleCheckpoints(int64_t* removed) {
  if (removed != nullptr) *removed = 0;
  const uint64_t current = registry_->Current().fingerprint;
  const std::lock_guard<std::mutex> lock(mu_);
  Status first_error = Status::OK();
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(options_.checkpoint_dir, ec)) {
    if (ec) break;
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    constexpr std::string_view kSuffix = ".ltesession";
    if (!name.ends_with(kSuffix)) continue;
    uint64_t stamped = 0;
    if (!core::ExplorationSession::PeekCheckpointFingerprint(
             entry.path().string(), &stamped)
             .ok()) {
      continue;  // Not a readable checkpoint; never delete what we can't read.
    }
    if (stamped == current) continue;
    std::error_code remove_ec;
    if (!std::filesystem::remove(entry.path(), remove_ec) || remove_ec) {
      if (first_error.ok()) {
        first_error =
            Status::IoError("session manager: cannot remove " +
                            entry.path().string() + ": " + remove_ec.message());
      }
      continue;
    }
    if (removed != nullptr) ++*removed;
    // A resident user whose checkpoint was just purged is simply no longer
    // on disk; its next eviction writes a fresh (current-state) checkpoint.
    const auto user_it =
        entries_.find(name.substr(0, name.size() - kSuffix.size()));
    if (user_it != entries_.end()) user_it->second.on_disk = false;
  }
  return first_error;
}

Status SessionManager::CheckpointAll() {
  const std::lock_guard<std::mutex> lock(mu_);
  Status first_error = Status::OK();
  for (auto& [user_id, entry] : entries_) {
    if (entry.session == nullptr) continue;
    const Status st = SaveCheckpointLocked(*entry.session, user_id);
    if (st.ok()) {
      entry.on_disk = true;
    } else if (first_error.ok()) {
      first_error = st;
    }
  }
  return first_error;
}

int64_t SessionManager::resident_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return resident_;
}

SessionManagerStats SessionManager::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace lte::serving
