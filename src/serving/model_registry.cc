#include "serving/model_registry.h"

#include <utility>

#include "common/check.h"

namespace lte::serving {

ModelRegistry::ModelRegistry(
    std::shared_ptr<const core::ExplorationModel> initial) {
  LTE_CHECK(initial != nullptr);
  LTE_CHECK_MSG(initial->pretrained(),
                "ModelRegistry requires a pretrained model");
  current_.fingerprint = initial->fingerprint();
  current_.model = std::move(initial);
  current_.epoch = 1;
}

ModelSnapshot ModelRegistry::Current() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t ModelRegistry::current_epoch() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return current_.epoch;
}

uint64_t ModelRegistry::Publish(
    std::shared_ptr<const core::ExplorationModel> model) {
  LTE_CHECK(model != nullptr);
  LTE_CHECK_MSG(model->pretrained(),
                "ModelRegistry::Publish requires a pretrained model");
  const std::lock_guard<std::mutex> lock(mu_);
  current_.fingerprint = model->fingerprint();
  current_.model = std::move(model);
  ++current_.epoch;
  return current_.epoch;
}

}  // namespace lte::serving
