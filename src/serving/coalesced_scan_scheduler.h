#ifndef LTE_SERVING_COALESCED_SCAN_SCHEDULER_H_
#define LTE_SERVING_COALESCED_SCAN_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/exploration_model.h"
#include "core/exploration_session.h"
#include "data/table.h"

namespace lte::serving {

/// Queue/flush/backpressure knobs of the coalesced serving front-end
/// (DESIGN.md §2c). The defaults favor throughput under heavy concurrent
/// load; a latency-sensitive deployment lowers `flush_deadline_micros`.
struct CoalescedScanOptions {
  /// Full-batch flush trigger: a shared pass starts as soon as this many
  /// requests are queued, without waiting for the deadline.
  int64_t max_batch_requests = 64;
  /// Deadline flush trigger: a shared pass starts at the latest this long
  /// after the oldest queued request arrived, so a lone request is never
  /// parked waiting for company that may not come. <= 0 flushes immediately.
  int64_t flush_deadline_micros = 200;
  /// Backpressure bound: submission calls block while this many requests are
  /// queued or in flight, so a traffic burst queues at the callers instead
  /// of growing the scheduler's memory without bound.
  int64_t max_pending_requests = 256;
  /// Parallel lanes of the shared pass over blocks (the usual convention:
  /// 0 = auto, i.e. one lane per hardware thread). Scheduling only — results
  /// are bit-identical at any value.
  int64_t num_threads = 0;
};

/// Running totals since construction, for benchmarks and capacity planning.
struct CoalescedScanStats {
  /// Shared passes executed.
  int64_t batches = 0;
  /// Requests served through shared passes (early-validated failures and
  /// empty requests never reach a pass).
  int64_t requests = 0;
  /// Most requests coalesced into one shared pass.
  int64_t largest_batch = 0;
  /// Result rows delivered across all requests (a full-table PredictRows
  /// for S sessions counts S * num_rows).
  int64_t rows_served = 0;
  /// Gather+encode rounds executed, one per (block, subspace) with live
  /// subscribers — the quantity coalescing amortizes: independent sessions
  /// would pay one round per *session* per (block, subspace), the shared
  /// pass pays at most one regardless of how many sessions subscribe.
  int64_t encode_passes = 0;
};

/// Cross-session coalesced scan scheduler: the "many users, one table pass"
/// serving front-end (DESIGN.md §2c).
///
/// N concurrent `ExplorationSession`s scanning one table independently make
/// N full passes over the same columns, re-gathering and re-encoding every
/// subspace block N times even though the encoding is user-independent. This
/// scheduler accepts `PredictRows` / `RetrieveMatches` requests from many
/// sessions, groups whatever is queued when a flush trigger fires into one
/// shared pass, and for each subspace x `core::kServingBlockRows`-row block
/// gathers + encodes **once** (`TabularEncoder::EncodeGatheredInto`), then
/// runs each subscribed session's batch forward over its own survivors of
/// the shared encoded block (`ExplorationSession::ScoreEncodedBlock`). The
/// per-user work shrinks to the adapted-weights matmul plus the Meta* FP/FN
/// refinement.
///
///   CoalescedScanScheduler scheduler(model, &table);
///   // Per user, on the user's own thread:
///   std::vector<int64_t> matches;
///   Status s = scheduler.RetrieveMatches(session, /*limit=*/100, &matches);
///
/// Determinism contract: every (session, row) verdict is byte-identical to
/// that session scanning alone — batch composition, block boundaries, lane
/// count, and flush timing change scheduling only, never bytes (argument in
/// DESIGN.md §2c; enforced by tests/coalesced_scheduler_test.cc, including
/// under the TSan CI job). Per-session result order is preserved:
/// `PredictRows` demultiplexes verdicts back to the caller's input order
/// (duplicates included), `RetrieveMatches` returns ascending row ids
/// truncated at `limit` — the exact prefix of that session's unlimited scan.
///
/// Thread-safety: submission calls may race freely with each other; each
/// blocks until its request's shared pass completes. A submitted session
/// must stay alive and un-mutated (single-writer contract) until its call
/// returns, and every session must be bound to the scheduler's model. The
/// destructor drains queued requests, but must not race with in-flight
/// submission calls — join the submitting threads first.
class CoalescedScanScheduler {
 public:
  /// Serves scans of `table` for sessions bound to exactly this `model`
  /// snapshot (the scheduler co-owns and pins it, like a session does; after
  /// a registry refresh, host a second scheduler for the new epoch and
  /// retire this one when its sessions drain). `table` is not owned and must
  /// outlive the scheduler; it may keep appending live — a pass scans the
  /// row domain its requests name, and views span segments transparently.
  CoalescedScanScheduler(std::shared_ptr<const core::ExplorationModel> model,
                         const data::Table* table,
                         CoalescedScanOptions options = {});
  ~CoalescedScanScheduler();

  CoalescedScanScheduler(const CoalescedScanScheduler&) = delete;
  CoalescedScanScheduler& operator=(const CoalescedScanScheduler&) = delete;

  /// Coalesced counterpart of `ExplorationSession::PredictRows`: same
  /// validation, same output (one 0.0/1.0 per index, in input order), but
  /// the scan itself runs inside a shared pass. Blocks until served.
  Status PredictRows(const core::ExplorationSession& session,
                     std::span<const int64_t> rows,
                     std::vector<double>* predictions);

  /// Coalesced counterpart of `ExplorationSession::RetrieveMatches`: stores
  /// the first `limit` matching row ids in ascending order (`limit < 0` =
  /// all, `limit == 0` = empty). Blocks until served.
  Status RetrieveMatches(const core::ExplorationSession& session,
                         int64_t limit, std::vector<int64_t>* matches);

  /// Explicit drain trigger: flushes everything queued right now without
  /// waiting for a full batch or the deadline. Non-blocking — submitters are
  /// already waiting on their own requests.
  void Flush();

  CoalescedScanStats stats() const;

  const core::ExplorationModel& model() const { return *model_; }
  const data::Table& table() const { return *table_; }
  const CoalescedScanOptions& options() const { return options_; }

 private:
  /// One queued scan, owned by the stack frame of the submission call that
  /// is blocked on it (so spans and output pointers stay valid for free).
  struct Request {
    const core::ExplorationSession* session = nullptr;
    bool retrieve = false;
    /// PredictRows: caller's row selection, original order, duplicates kept.
    std::span<const int64_t> rows;
    /// PredictRows: sorted deduplicated copy of `rows` for block membership.
    std::vector<int64_t> sorted_rows;
    int64_t limit = -1;
    std::vector<double>* predictions = nullptr;
    std::vector<int64_t>* matches = nullptr;
    /// One slot per union-domain row position; 1 = predicted interesting.
    /// Lanes write disjoint block slices; read after the pass's pool join.
    std::vector<uint8_t> verdict;
    /// Matches found so far (limit-bounded retrievals only): lets later
    /// blocks skip scoring this session once the limit is already covered by
    /// completed lower-index blocks. Monotone, so relaxed ordering suffices
    /// — a stale low read only costs a redundant (bit-identical) score.
    std::atomic<int64_t> found{0};
    std::chrono::steady_clock::time_point enqueue_time;
    bool done = false;  // Guarded by the scheduler mutex.
  };

  /// What one shared pass reports back for the stats ledger.
  struct BatchOutcome {
    int64_t encode_passes = 0;
    int64_t rows_served = 0;
  };

  /// Validates what both entry points share; never enqueues on failure.
  Status ValidateSubmission(const core::ExplorationSession& session) const;

  /// Enqueues (honoring backpressure) and blocks until the request is done.
  Status Submit(Request* request);

  void SchedulerLoop();
  BatchOutcome RunBatch(const std::vector<Request*>& batch) const;
  void ProcessBlock(const std::vector<Request*>& batch,
                    std::span<const int64_t> union_rows, int64_t block,
                    std::atomic<int64_t>* encode_passes) const;

  std::shared_ptr<const core::ExplorationModel> model_;
  const data::Table* table_;
  CoalescedScanOptions options_;

  mutable std::mutex mu_;
  std::condition_variable scheduler_cv_;  // Wakes the scheduler thread.
  std::condition_variable submit_cv_;     // Wakes submitters (done/backpressure).
  std::deque<Request*> queue_;            // Guarded by mu_.
  int64_t pending_ = 0;                   // Queued + in flight; guarded by mu_.
  bool flush_requested_ = false;          // Guarded by mu_.
  bool stopping_ = false;                 // Guarded by mu_.
  CoalescedScanStats stats_;              // Guarded by mu_.
  std::thread scheduler_;                 // Last member: joins before the rest.
};

}  // namespace lte::serving

#endif  // LTE_SERVING_COALESCED_SCAN_SCHEDULER_H_
