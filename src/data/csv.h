#ifndef LTE_DATA_CSV_H_
#define LTE_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/table.h"

namespace lte::data {

/// Reads a comma-separated file with a header row of attribute names and
/// numeric cells into `*table`. Empty lines are skipped. Fails with IoError
/// if the file cannot be opened and InvalidArgument on malformed rows or
/// non-numeric cells.
Status ReadCsv(const std::string& path, Table* table);

/// Writes `table` to `path` as CSV with a header row.
Status WriteCsv(const Table& table, const std::string& path);

}  // namespace lte::data

#endif  // LTE_DATA_CSV_H_
