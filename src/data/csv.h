#ifndef LTE_DATA_CSV_H_
#define LTE_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/table.h"

namespace lte::data {

/// Reads a comma-separated file with a header row of attribute names and
/// numeric cells into `*table`. Empty lines are skipped. Fails with IoError
/// if the file cannot be opened and InvalidArgument on malformed input.
///
/// Strictness rules (every violation names the offending cell and line):
///  * cells must parse fully as doubles — no trailing junk;
///  * cells must be finite and in double range: `nan`/`inf` spellings and
///    overflowing magnitudes (e.g. `1e999`) are rejected rather than loaded
///    as values that would silently poison normalization and clustering;
///  * quoting is NOT supported — this is a numeric-matrix reader, not a
///    general CSV parser. A `"` anywhere in a line fails loudly instead of
///    mis-splitting a quoted field on its embedded commas.
Status ReadCsv(const std::string& path, Table* table);

/// Writes `table` to `path` as CSV with a header row.
Status WriteCsv(const Table& table, const std::string& path);

}  // namespace lte::data

#endif  // LTE_DATA_CSV_H_
