#ifndef LTE_DATA_TABLE_H_
#define LTE_DATA_TABLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/column.h"

namespace lte::data {

/// An in-memory columnar table: the exploratory database substrate.
///
/// All LTE components consume tuples (rows) or attribute columns from a
/// `Table`. Columns are equal-length and numeric. Fallible mutation returns
/// `Status`; accessors with index arguments check bounds via invariant checks
/// because out-of-range access is a programmer error, not an input error.
class Table {
 public:
  Table() = default;

  /// Creates a table with the given attribute names and no rows.
  explicit Table(const std::vector<std::string>& attribute_names);

  int64_t num_rows() const { return num_rows_; }
  int64_t num_columns() const { return static_cast<int64_t>(columns_.size()); }

  const Column& column(int64_t i) const;
  Column* mutable_column(int64_t i);

  /// Contiguous view of column `i`'s values (`ColumnValues(i)[r]` is the
  /// value at row `r`). The columnar serving path gathers attribute data
  /// through these views, one subspace at a time, instead of materializing
  /// each row; invalidated by AppendRow.
  std::span<const double> ColumnValues(int64_t i) const {
    return column(i).AsSpan();
  }

  /// All attribute names, in column order.
  std::vector<std::string> AttributeNames() const;

  /// Index of the column named `name`, or -1 if absent.
  int64_t ColumnIndex(const std::string& name) const;

  /// Appends a full-width row. Fails if row width != num_columns().
  Status AppendRow(const std::vector<double>& row);

  /// Adds a fully populated column. Fails on duplicate name or length
  /// mismatch with existing columns.
  Status AddColumn(Column column);

  /// The `row`-th tuple as a dense vector in column order.
  std::vector<double> Row(int64_t row) const;

  /// Projection of the `row`-th tuple onto the given column indices.
  std::vector<double> RowProjected(int64_t row,
                                   const std::vector<int64_t>& cols) const;

  /// Allocation-free variant of RowProjected for hot scan loops: clears and
  /// refills `*out` (capacity is retained across calls, so a reused buffer
  /// allocates only on its first use).
  void RowProjectedInto(int64_t row, const std::vector<int64_t>& cols,
                        std::vector<double>* out) const;

  /// A new table containing only the given columns (copied).
  Table Project(const std::vector<int64_t>& cols) const;

  /// A new table containing only the given rows (copied).
  Table SelectRows(const std::vector<int64_t>& rows) const;

 private:
  std::vector<Column> columns_;
  int64_t num_rows_ = 0;
};

}  // namespace lte::data

#endif  // LTE_DATA_TABLE_H_
