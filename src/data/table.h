#ifndef LTE_DATA_TABLE_H_
#define LTE_DATA_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/column.h"
#include "data/column_view.h"

namespace lte::data {

/// An in-memory columnar table: the exploratory database substrate.
///
/// All LTE components consume tuples (rows) or attribute columns from a
/// `Table`. Columns are equal-length and numeric. Fallible mutation returns
/// `Status`; accessors with index arguments check bounds via invariant checks
/// because out-of-range access is a programmer error, not an input error.
///
/// Live tables (DESIGN.md §2e): a table has a mutable *base* segment built
/// row-by-row (`AppendRow`, CSV load) plus zero or more **sealed, immutable
/// append segments** added in one shot by `AppendRows`. Sealing the first
/// segment freezes the base: every previously vended view (`View`, a
/// column's `AsSpan`) stays valid forever after, and further `AppendRow` /
/// `AddColumn` calls fail. The single-writer/many-reader contract is:
/// one thread appends via `AppendRows` while any number of threads read rows
/// `< num_rows()` through `View`/`Row`/the scan paths — readers never
/// observe a partially appended batch because `num_rows()` is published
/// after the segment is sealed. Copying/assigning a table is not
/// thread-safe against a concurrent appender.
class Table {
 public:
  Table() = default;

  /// Creates a table with the given attribute names and no rows.
  explicit Table(const std::vector<std::string>& attribute_names);

  Table(const Table& other);
  Table& operator=(const Table& other);
  Table(Table&& other) noexcept;
  Table& operator=(Table&& other) noexcept;

  int64_t num_rows() const {
    return num_rows_.load(std::memory_order_acquire);
  }
  int64_t num_columns() const { return static_cast<int64_t>(columns_.size()); }

  /// The base segment of column `i` (name, min/max, the rows loaded before
  /// the first `AppendRows`). Appended rows are not reachable through it —
  /// use `View(i)` for the full row space.
  const Column& column(int64_t i) const;

  /// Base-segment mutation hook; programmer error once a segment is sealed.
  Column* mutable_column(int64_t i);

  /// Contiguous view of the *base* segment of column `i`. Retained for
  /// static tables; programmer error (LTE_CHECK) once `AppendRows` has
  /// sealed a segment, because the span cannot address appended rows — the
  /// scan paths use `View(i)` instead. Invalidated by AppendRow.
  std::span<const double> ColumnValues(int64_t i) const;

  /// Segment-spanning snapshot view of column `i`: addresses every row
  /// `< num_rows()` at creation time by global row id, stays valid and
  /// stable while the table keeps appending (shared ownership of the sealed
  /// segments). The columnar serving path gathers attribute data through
  /// these views, one subspace at a time, instead of materializing rows.
  ColumnView View(int64_t i) const;

  /// All attribute names, in column order.
  std::vector<std::string> AttributeNames() const;

  /// Index of the column named `name`, or -1 if absent.
  int64_t ColumnIndex(const std::string& name) const;

  /// Appends a full-width row to the base segment. Fails if row width !=
  /// num_columns() or a sealed segment exists (live tables grow only through
  /// `AppendRows`, so vended views stay valid).
  Status AppendRow(const std::vector<double>& row);

  /// Live-append path: seals `rows` into one immutable segment and publishes
  /// it atomically — concurrent readers either see all of the batch (row ids
  /// `[old num_rows, old num_rows + rows.size())`) or none of it, and every
  /// previously vended view stays valid. Single writer: concurrent
  /// `AppendRows` calls must be serialized by the caller. Fails (appending
  /// nothing) on a width mismatch or a column-less table; an empty batch is
  /// a no-op that seals nothing.
  Status AppendRows(const std::vector<std::vector<double>>& rows);

  /// Sealed append segments so far (0 for a static table).
  int64_t num_segments() const;

  /// Adds a fully populated column to the base segment. Fails on duplicate
  /// name, length mismatch with existing columns, or a sealed segment.
  Status AddColumn(Column column);

  /// The `row`-th tuple as a dense vector in column order.
  std::vector<double> Row(int64_t row) const;

  /// Projection of the `row`-th tuple onto the given column indices.
  std::vector<double> RowProjected(int64_t row,
                                   const std::vector<int64_t>& cols) const;

  /// Allocation-free variant of RowProjected for hot scan loops: clears and
  /// refills `*out` (capacity is retained across calls, so a reused buffer
  /// allocates only on its first use).
  void RowProjectedInto(int64_t row, const std::vector<int64_t>& cols,
                        std::vector<double>* out) const;

  /// A new table containing only the given columns (copied; appended
  /// segments are materialized into the copy's base).
  Table Project(const std::vector<int64_t>& cols) const;

  /// A new table containing only the given rows (copied).
  Table SelectRows(const std::vector<int64_t>& rows) const;

  /// A monolithic (single-segment) copy of rows [0, n): the deterministic
  /// input of a background model rebuild — the refresh worker snapshots a
  /// row-count watermark and trains on exactly those rows, unaffected by
  /// whatever the live table appends meanwhile. Safe to call concurrently
  /// with `AppendRows`.
  Table SnapshotPrefix(int64_t n) const;

 private:
  /// One sealed batch: values[c][row - start] is column c's value at global
  /// row id `row`. Immutable after construction; shared by every directory
  /// snapshot that includes it.
  struct Segment {
    int64_t start = 0;
    int64_t rows = 0;
    std::vector<std::vector<double>> values;
  };

  /// Immutable snapshot of the segment list. Rebuilt (copy + one push_back)
  /// on every AppendRows and swapped under `dir_mu_`; readers grab the
  /// shared_ptr and read without further coordination. `slices[c]` indexes
  /// column c across all segments, ascending by start row.
  struct Directory {
    std::vector<std::shared_ptr<const Segment>> segments;
    std::vector<std::vector<ColumnSlice>> slices;
  };

  std::shared_ptr<const Directory> SnapshotDirectory() const;

  /// The segment containing global row `row` (>= base_rows_) in `dir`.
  static const Segment& SegmentFor(const Directory& dir, int64_t row);

  void CopyFrom(const Table& other);
  void MoveFrom(Table&& other);

  std::vector<Column> columns_;
  int64_t base_rows_ = 0;
  std::atomic<int64_t> num_rows_{0};
  mutable std::mutex dir_mu_;
  std::shared_ptr<const Directory> dir_;  // Null until the first AppendRows.
};

}  // namespace lte::data

#endif  // LTE_DATA_TABLE_H_
