#include "data/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace lte::data {
namespace {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  // A trailing comma denotes an empty last cell.
  if (!line.empty() && line.back() == ',') cells.emplace_back();
  return cells;
}

Status ParseDouble(const std::string& cell, int64_t line_no, double* out) {
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  if (end == cell.c_str() || *end != '\0') {
    return Status::InvalidArgument("non-numeric cell '" + cell + "' at line " +
                                   std::to_string(line_no));
  }
  *out = v;
  return Status::OK();
}

}  // namespace

Status ReadCsv(const std::string& path, Table* table) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV file: " + path);
  }
  // Strip a possible trailing carriage return from files written on Windows.
  if (!line.empty() && line.back() == '\r') line.pop_back();
  const std::vector<std::string> header = SplitLine(line);
  if (header.empty()) {
    return Status::InvalidArgument("CSV header has no columns: " + path);
  }
  Table out(header);
  int64_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::vector<std::string> cells = SplitLine(line);
    if (cells.size() != header.size()) {
      return Status::InvalidArgument("row width mismatch at line " +
                                     std::to_string(line_no));
    }
    std::vector<double> row(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      LTE_RETURN_IF_ERROR(ParseDouble(cells[i], line_no, &row[i]));
    }
    LTE_RETURN_IF_ERROR(out.AppendRow(row));
  }
  *table = std::move(out);
  return Status::OK();
}

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  const std::vector<std::string> names = table.AttributeNames();
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out << ',';
    out << names[i];
  }
  out << '\n';
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int64_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << ',';
      out << table.column(c).value(r);
    }
    out << '\n';
  }
  if (!out.good()) {
    return Status::IoError("write failure on " + path);
  }
  return Status::OK();
}

}  // namespace lte::data
