#include "data/csv.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace lte::data {
namespace {

// Quoting is deliberately unsupported (see csv.h): a quoted field would be
// silently mis-split on its embedded commas, so its mere presence is an
// error, checked before any splitting happens.
Status SplitLine(const std::string& line, int64_t line_no,
                 std::vector<std::string>* cells) {
  if (line.find('"') != std::string::npos) {
    return Status::InvalidArgument(
        "quoted field at line " + std::to_string(line_no) +
        " (CSV quoting is not supported; cells must be bare numbers)");
  }
  cells->clear();
  std::string cell;
  std::stringstream ss(line);
  while (std::getline(ss, cell, ',')) cells->push_back(cell);
  // A trailing comma denotes an empty last cell.
  if (!line.empty() && line.back() == ',') cells->emplace_back();
  return Status::OK();
}

Status ParseDouble(const std::string& cell, int64_t line_no, double* out) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(cell.c_str(), &end);
  if (end == cell.c_str() || *end != '\0') {
    return Status::InvalidArgument("non-numeric cell '" + cell + "' at line " +
                                   std::to_string(line_no));
  }
  // Overflow (ERANGE with a ±HUGE_VAL result) and the literal nan/inf
  // spellings strtod accepts both come back non-finite; loaded silently they
  // would poison every downstream distance computation (normalization,
  // k-means, proximity matrices). Underflow to a denormal is a valid finite
  // double and passes.
  const bool overflow = errno == ERANGE && (v >= HUGE_VAL || v <= -HUGE_VAL);
  if (overflow || !std::isfinite(v)) {
    return Status::InvalidArgument(
        "non-finite or out-of-range cell '" + cell + "' at line " +
        std::to_string(line_no) + " (values must be finite doubles)");
  }
  *out = v;
  return Status::OK();
}

}  // namespace

Status ReadCsv(const std::string& path, Table* table) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV file: " + path);
  }
  // Strip a possible trailing carriage return from files written on Windows.
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::vector<std::string> header;
  LTE_RETURN_IF_ERROR(SplitLine(line, /*line_no=*/1, &header));
  if (header.empty()) {
    return Status::InvalidArgument("CSV header has no columns: " + path);
  }
  Table out(header);
  int64_t line_no = 1;
  std::vector<std::string> cells;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    LTE_RETURN_IF_ERROR(SplitLine(line, line_no, &cells));
    if (cells.size() != header.size()) {
      return Status::InvalidArgument("row width mismatch at line " +
                                     std::to_string(line_no));
    }
    std::vector<double> row(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      LTE_RETURN_IF_ERROR(ParseDouble(cells[i], line_no, &row[i]));
    }
    LTE_RETURN_IF_ERROR(out.AppendRow(row));
  }
  *table = std::move(out);
  return Status::OK();
}

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  const std::vector<std::string> names = table.AttributeNames();
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out << ',';
    out << names[i];
  }
  out << '\n';
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int64_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << ',';
      out << table.column(c).value(r);
    }
    out << '\n';
  }
  if (!out.good()) {
    return Status::IoError("write failure on " + path);
  }
  return Status::OK();
}

}  // namespace lte::data
