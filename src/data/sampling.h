#ifndef LTE_DATA_SAMPLING_H_
#define LTE_DATA_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/table.h"

namespace lte::data {

/// Uniform sample of `k` distinct row indices from `table` (k is clamped to
/// num_rows). Used by the clustering step, which runs on a ~1% sample of the
/// meta-subspace (paper Section V-B), and by the tabular encoder, which fits
/// GMM/JKC on a sampled set (paper Section VII-A).
std::vector<int64_t> SampleRowIndices(const Table& table, int64_t k, Rng* rng);

/// Uniform sample of a `fraction` in (0, 1] of rows; at least one row is
/// returned for non-empty tables.
std::vector<int64_t> SampleRowFraction(const Table& table, double fraction,
                                       Rng* rng);

/// Materializes the sampled rows into a new table.
Table SampleRows(const Table& table, int64_t k, Rng* rng);

/// Reservoir sampling over a stream of row indices [0, n). Maintains a
/// uniform sample of size k without knowing n in advance; used for the
/// dynamic-maintenance path (paper Section V-E) where the exploratory
/// database is updated incrementally.
class ReservoirSampler {
 public:
  ReservoirSampler(int64_t capacity, Rng* rng);

  /// Offers one item; it replaces a random reservoir slot with probability
  /// capacity / items_seen.
  void Offer(int64_t item);

  const std::vector<int64_t>& reservoir() const { return reservoir_; }
  int64_t items_seen() const { return seen_; }

 private:
  int64_t capacity_;
  int64_t seen_ = 0;
  std::vector<int64_t> reservoir_;
  Rng* rng_;
};

}  // namespace lte::data

#endif  // LTE_DATA_SAMPLING_H_
