#include "data/table.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace lte::data {

Table::Table(const std::vector<std::string>& attribute_names) {
  columns_.reserve(attribute_names.size());
  for (const std::string& name : attribute_names) {
    columns_.emplace_back(name);
  }
}

void Table::CopyFrom(const Table& other) {
  columns_ = other.columns_;
  base_rows_ = other.base_rows_;
  num_rows_.store(other.num_rows(), std::memory_order_release);
  // Segments are immutable, so sharing the directory snapshot is safe; the
  // copy simply starts from the same sealed history.
  dir_ = other.SnapshotDirectory();
}

void Table::MoveFrom(Table&& other) {
  columns_ = std::move(other.columns_);
  base_rows_ = other.base_rows_;
  num_rows_.store(other.num_rows(), std::memory_order_release);
  dir_ = std::move(other.dir_);
  other.base_rows_ = 0;
  other.num_rows_.store(0, std::memory_order_release);
}

Table::Table(const Table& other) { CopyFrom(other); }

Table& Table::operator=(const Table& other) {
  if (this != &other) CopyFrom(other);
  return *this;
}

Table::Table(Table&& other) noexcept { MoveFrom(std::move(other)); }

Table& Table::operator=(Table&& other) noexcept {
  if (this != &other) MoveFrom(std::move(other));
  return *this;
}

const Column& Table::column(int64_t i) const {
  LTE_CHECK_GE(i, 0);
  LTE_CHECK_LT(i, num_columns());
  return columns_[static_cast<size_t>(i)];
}

Column* Table::mutable_column(int64_t i) {
  LTE_CHECK_GE(i, 0);
  LTE_CHECK_LT(i, num_columns());
  LTE_CHECK_MSG(SnapshotDirectory() == nullptr,
                "mutable_column on a table with sealed segments");
  return &columns_[static_cast<size_t>(i)];
}

std::span<const double> Table::ColumnValues(int64_t i) const {
  LTE_CHECK_MSG(SnapshotDirectory() == nullptr,
                "ColumnValues cannot address appended segments; use View");
  return column(i).AsSpan();
}

ColumnView Table::View(int64_t i) const {
  const Column& c = column(i);
  const std::shared_ptr<const Directory> dir = SnapshotDirectory();
  if (dir == nullptr) return ColumnView(c.AsSpan(), {}, nullptr);
  return ColumnView(c.AsSpan(),
                    std::span<const ColumnSlice>(dir->slices[static_cast<size_t>(i)]),
                    dir);
}

std::shared_ptr<const Table::Directory> Table::SnapshotDirectory() const {
  const std::lock_guard<std::mutex> lock(dir_mu_);
  return dir_;
}

const Table::Segment& Table::SegmentFor(const Directory& dir, int64_t row) {
  // Segments are ascending by start; find the first one ending past `row`.
  const auto it = std::upper_bound(
      dir.segments.begin(), dir.segments.end(), row,
      [](int64_t r, const std::shared_ptr<const Segment>& seg) {
        return r < seg->start + seg->rows;
      });
  LTE_CHECK(it != dir.segments.end());
  LTE_CHECK_GE(row, (*it)->start);
  return **it;
}

std::vector<std::string> Table::AttributeNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const Column& c : columns_) names.push_back(c.name());
  return names;
}

int64_t Table::ColumnIndex(const std::string& name) const {
  for (int64_t i = 0; i < num_columns(); ++i) {
    if (columns_[static_cast<size_t>(i)].name() == name) return i;
  }
  return -1;
}

Status Table::AppendRow(const std::vector<double>& row) {
  if (static_cast<int64_t>(row.size()) != num_columns()) {
    return Status::InvalidArgument("row width does not match table width");
  }
  if (SnapshotDirectory() != nullptr) {
    return Status::FailedPrecondition(
        "AppendRow on a live table: the base segment is sealed; use "
        "AppendRows");
  }
  for (size_t i = 0; i < row.size(); ++i) columns_[i].Append(row[i]);
  ++base_rows_;
  num_rows_.store(base_rows_, std::memory_order_release);
  return Status::OK();
}

Status Table::AppendRows(const std::vector<std::vector<double>>& rows) {
  if (columns_.empty()) {
    return Status::InvalidArgument("AppendRows on a table with no columns");
  }
  for (const std::vector<double>& row : rows) {
    if (static_cast<int64_t>(row.size()) != num_columns()) {
      return Status::InvalidArgument("row width does not match table width");
    }
  }
  if (rows.empty()) return Status::OK();

  auto seg = std::make_shared<Segment>();
  seg->start = num_rows();
  seg->rows = static_cast<int64_t>(rows.size());
  seg->values.resize(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    seg->values[c].reserve(rows.size());
    for (const std::vector<double>& row : rows) {
      seg->values[c].push_back(row[c]);
    }
  }

  const std::lock_guard<std::mutex> lock(dir_mu_);
  auto next = std::make_shared<Directory>();
  if (dir_ != nullptr) *next = *dir_;  // Shares the sealed segments.
  if (next->slices.empty()) next->slices.resize(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    next->slices[c].push_back(
        ColumnSlice{seg->start, seg->start + seg->rows, seg->values[c].data()});
  }
  next->segments.push_back(std::move(seg));
  dir_ = std::move(next);
  // Published last: a reader that sees the new count finds the rows in the
  // directory; one that does not simply serves the previous snapshot.
  num_rows_.store(dir_->segments.back()->start + dir_->segments.back()->rows,
                  std::memory_order_release);
  return Status::OK();
}

int64_t Table::num_segments() const {
  const std::shared_ptr<const Directory> dir = SnapshotDirectory();
  return dir == nullptr ? 0 : static_cast<int64_t>(dir->segments.size());
}

Status Table::AddColumn(Column column) {
  if (SnapshotDirectory() != nullptr) {
    return Status::FailedPrecondition(
        "AddColumn on a live table: the base segment is sealed");
  }
  if (ColumnIndex(column.name()) >= 0) {
    return Status::InvalidArgument("duplicate column name: " + column.name());
  }
  if (!columns_.empty() && column.size() != base_rows_) {
    return Status::InvalidArgument("column length mismatch: " + column.name());
  }
  if (columns_.empty()) {
    base_rows_ = column.size();
    num_rows_.store(base_rows_, std::memory_order_release);
  }
  columns_.push_back(std::move(column));
  return Status::OK();
}

std::vector<double> Table::Row(int64_t row) const {
  LTE_CHECK_GE(row, 0);
  LTE_CHECK_LT(row, num_rows());
  std::vector<double> out;
  out.reserve(columns_.size());
  if (row < base_rows_) {
    for (const Column& c : columns_) out.push_back(c.value(row));
    return out;
  }
  const std::shared_ptr<const Directory> dir = SnapshotDirectory();
  const Segment& seg = SegmentFor(*dir, row);
  for (size_t c = 0; c < columns_.size(); ++c) {
    out.push_back(seg.values[c][static_cast<size_t>(row - seg.start)]);
  }
  return out;
}

std::vector<double> Table::RowProjected(
    int64_t row, const std::vector<int64_t>& cols) const {
  std::vector<double> out;
  RowProjectedInto(row, cols, &out);
  return out;
}

void Table::RowProjectedInto(int64_t row, const std::vector<int64_t>& cols,
                             std::vector<double>* out) const {
  LTE_CHECK_GE(row, 0);
  LTE_CHECK_LT(row, num_rows());
  out->clear();
  out->reserve(cols.size());
  if (row < base_rows_) {
    for (int64_t c : cols) out->push_back(column(c).value(row));
    return;
  }
  const std::shared_ptr<const Directory> dir = SnapshotDirectory();
  const Segment& seg = SegmentFor(*dir, row);
  for (int64_t c : cols) {
    LTE_CHECK_GE(c, 0);
    LTE_CHECK_LT(c, num_columns());
    out->push_back(
        seg.values[static_cast<size_t>(c)][static_cast<size_t>(row - seg.start)]);
  }
}

Table Table::Project(const std::vector<int64_t>& cols) const {
  Table out;
  const int64_t n = num_rows();
  for (int64_t c : cols) {
    Column projected;
    if (n == base_rows_) {
      projected = column(c);  // Static fast path: one vector copy.
    } else {
      const ColumnView view = View(c);
      std::vector<double> values;
      values.reserve(static_cast<size_t>(n));
      for (int64_t r = 0; r < n; ++r) values.push_back(view[r]);
      projected = Column(column(c).name(), std::move(values));
    }
    Status s = out.AddColumn(std::move(projected));
    LTE_CHECK_MSG(s.ok(), s.ToString().c_str());
  }
  return out;
}

Table Table::SelectRows(const std::vector<int64_t>& rows) const {
  Table out(AttributeNames());
  for (int64_t r : rows) {
    Status s = out.AppendRow(Row(r));
    LTE_CHECK_MSG(s.ok(), s.ToString().c_str());
  }
  return out;
}

Table Table::SnapshotPrefix(int64_t n) const {
  LTE_CHECK_GE(n, 0);
  LTE_CHECK_LE(n, num_rows());
  Table out;
  const int64_t base = std::min<int64_t>(n, base_rows_);
  const std::shared_ptr<const Directory> dir = SnapshotDirectory();
  for (int64_t c = 0; c < num_columns(); ++c) {
    const std::span<const double> base_values = column(c).AsSpan();
    std::vector<double> values(base_values.begin(),
                               base_values.begin() + base);
    values.reserve(static_cast<size_t>(n));
    if (n > base_rows_) {
      for (const ColumnSlice& s : dir->slices[static_cast<size_t>(c)]) {
        const int64_t end = std::min<int64_t>(s.end, n);
        for (int64_t r = s.start; r < end; ++r) {
          values.push_back(s.data[r - s.start]);
        }
        if (end < s.end) break;
      }
    }
    Status st = out.AddColumn(Column(column(c).name(), std::move(values)));
    LTE_CHECK_MSG(st.ok(), st.ToString().c_str());
  }
  return out;
}

}  // namespace lte::data
