#include "data/table.h"

#include "common/check.h"

namespace lte::data {

Table::Table(const std::vector<std::string>& attribute_names) {
  columns_.reserve(attribute_names.size());
  for (const std::string& name : attribute_names) {
    columns_.emplace_back(name);
  }
}

const Column& Table::column(int64_t i) const {
  LTE_CHECK_GE(i, 0);
  LTE_CHECK_LT(i, num_columns());
  return columns_[static_cast<size_t>(i)];
}

Column* Table::mutable_column(int64_t i) {
  LTE_CHECK_GE(i, 0);
  LTE_CHECK_LT(i, num_columns());
  return &columns_[static_cast<size_t>(i)];
}

std::vector<std::string> Table::AttributeNames() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const Column& c : columns_) names.push_back(c.name());
  return names;
}

int64_t Table::ColumnIndex(const std::string& name) const {
  for (int64_t i = 0; i < num_columns(); ++i) {
    if (columns_[static_cast<size_t>(i)].name() == name) return i;
  }
  return -1;
}

Status Table::AppendRow(const std::vector<double>& row) {
  if (static_cast<int64_t>(row.size()) != num_columns()) {
    return Status::InvalidArgument("row width does not match table width");
  }
  for (size_t i = 0; i < row.size(); ++i) columns_[i].Append(row[i]);
  ++num_rows_;
  return Status::OK();
}

Status Table::AddColumn(Column column) {
  if (ColumnIndex(column.name()) >= 0) {
    return Status::InvalidArgument("duplicate column name: " + column.name());
  }
  if (!columns_.empty() && column.size() != num_rows_) {
    return Status::InvalidArgument("column length mismatch: " + column.name());
  }
  if (columns_.empty()) num_rows_ = column.size();
  columns_.push_back(std::move(column));
  return Status::OK();
}

std::vector<double> Table::Row(int64_t row) const {
  LTE_CHECK_GE(row, 0);
  LTE_CHECK_LT(row, num_rows_);
  std::vector<double> out;
  out.reserve(columns_.size());
  for (const Column& c : columns_) out.push_back(c.value(row));
  return out;
}

std::vector<double> Table::RowProjected(
    int64_t row, const std::vector<int64_t>& cols) const {
  LTE_CHECK_GE(row, 0);
  LTE_CHECK_LT(row, num_rows_);
  std::vector<double> out;
  out.reserve(cols.size());
  for (int64_t c : cols) out.push_back(column(c).value(row));
  return out;
}

void Table::RowProjectedInto(int64_t row, const std::vector<int64_t>& cols,
                             std::vector<double>* out) const {
  LTE_CHECK_GE(row, 0);
  LTE_CHECK_LT(row, num_rows_);
  out->clear();
  out->reserve(cols.size());
  for (int64_t c : cols) out->push_back(column(c).value(row));
}

Table Table::Project(const std::vector<int64_t>& cols) const {
  Table out;
  for (int64_t c : cols) {
    Status s = out.AddColumn(column(c));
    LTE_CHECK_MSG(s.ok(), s.ToString().c_str());
  }
  return out;
}

Table Table::SelectRows(const std::vector<int64_t>& rows) const {
  Table out(AttributeNames());
  for (int64_t r : rows) {
    Status s = out.AppendRow(Row(r));
    LTE_CHECK_MSG(s.ok(), s.ToString().c_str());
  }
  return out;
}

}  // namespace lte::data
