#ifndef LTE_DATA_SUBSPACE_H_
#define LTE_DATA_SUBSPACE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/table.h"

namespace lte::data {

/// A low-dimensional projection of the user interest space.
///
/// Existing IDEs (and LTE) decompose the user interest space D^u into a set of
/// disjoint low-dimensional subspaces D_1 x ... x D_n (paper Section III-A).
/// A `Subspace` holds the column indices (into the source table) it projects.
struct Subspace {
  std::vector<int64_t> attribute_indices;

  int64_t dimension() const {
    return static_cast<int64_t>(attribute_indices.size());
  }
};

/// Splits `attribute_indices` into disjoint subspaces of at most
/// `subspace_dim` attributes each (the paper uses 2-D subspaces). The split
/// is random (paper Section V-E: "the domain space is randomly split into
/// meta-subspaces, because we assume zero knowledge about data semantics").
/// An odd leftover attribute forms a 1-D subspace.
std::vector<Subspace> DecomposeSpace(const std::vector<int64_t>& attribute_indices,
                                     int64_t subspace_dim, Rng* rng);

/// Projects the rows of `table` onto a subspace: one dense point (of the
/// subspace's dimension) per row.
std::vector<std::vector<double>> ProjectRows(const Table& table,
                                             const Subspace& subspace);

/// Projects only the selected rows.
std::vector<std::vector<double>> ProjectRows(const Table& table,
                                             const Subspace& subspace,
                                             const std::vector<int64_t>& rows);

}  // namespace lte::data

#endif  // LTE_DATA_SUBSPACE_H_
