#ifndef LTE_DATA_SYNTHETIC_H_
#define LTE_DATA_SYNTHETIC_H_

#include <cstdint>
#include "common/rng.h"
#include "data/table.h"

namespace lte::data {

/// Synthetic stand-ins for the two evaluation datasets of the paper.
///
/// The real datasets (SDSS DR17 photometry, eBay used-car listings) are not
/// available offline; these generators reproduce the *properties the
/// algorithms consume*: numeric attributes, multi-modal marginal
/// distributions (exercising the GMM encoding path), smooth trend-like
/// marginals (exercising the Jenks encoding path), and pairwise correlations
/// that give 2-D subspaces non-trivial cluster structure. See DESIGN.md §4.

/// SDSS-like table: 8 attributes
/// {rowc, colc, ra, dec, sky_u, sky_g, rowv, colv}. Each attribute is a 2-4
/// component Gaussian mixture; (rowc, colc) and (ra, dec) are correlated
/// pairs, mimicking the spatial clustering of sky objects. The paper uses
/// 100K tuples; pass a smaller `num_rows` for fast runs.
Table MakeSdssLike(int64_t num_rows, Rng* rng);

/// CAR-like table: 5 attributes
/// {price, year, mileage, power_ps, displacement}. Marginals are skewed /
/// smoothly trending (log-normal price, mileage decaying with year), the
/// distribution family the paper motivates JKC for. The paper uses 50K
/// tuples; pass a smaller `num_rows` for fast runs.
Table MakeCarLike(int64_t num_rows, Rng* rng);

/// A d-attribute table of isotropic Gaussian blob mixtures, used by unit
/// tests and benchmarks that need a controllable dataset.
Table MakeBlobs(int64_t num_rows, int64_t num_attributes, int64_t num_blobs,
                Rng* rng);

/// CAR-like table extended with the two categorical columns real listings
/// carry: {price, year, mileage, power_ps, displacement, gearbox,
/// fuel_type}. `gearbox` is a 0/1 code (manual/automatic) and `fuel_type` a
/// 0/1/2 code (petrol/diesel/other); both correlate with power, so the
/// categorical encoding path carries real signal. Pair with
/// preprocess::EncoderOptions::categorical_attributes = {5, 6}.
Table MakeCarListings(int64_t num_rows, Rng* rng);

}  // namespace lte::data

#endif  // LTE_DATA_SYNTHETIC_H_
