#include "data/subspace.h"

#include "common/check.h"

namespace lte::data {

std::vector<Subspace> DecomposeSpace(
    const std::vector<int64_t>& attribute_indices, int64_t subspace_dim,
    Rng* rng) {
  LTE_CHECK_GT(subspace_dim, 0);
  std::vector<int64_t> shuffled = attribute_indices;
  rng->Shuffle(&shuffled);
  std::vector<Subspace> out;
  for (size_t i = 0; i < shuffled.size(); i += static_cast<size_t>(subspace_dim)) {
    Subspace s;
    for (size_t j = i;
         j < std::min(shuffled.size(), i + static_cast<size_t>(subspace_dim));
         ++j) {
      s.attribute_indices.push_back(shuffled[j]);
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::vector<double>> ProjectRows(const Table& table,
                                             const Subspace& subspace) {
  std::vector<std::vector<double>> pts;
  pts.reserve(static_cast<size_t>(table.num_rows()));
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    pts.push_back(table.RowProjected(r, subspace.attribute_indices));
  }
  return pts;
}

std::vector<std::vector<double>> ProjectRows(const Table& table,
                                             const Subspace& subspace,
                                             const std::vector<int64_t>& rows) {
  std::vector<std::vector<double>> pts;
  pts.reserve(rows.size());
  for (int64_t r : rows) {
    pts.push_back(table.RowProjected(r, subspace.attribute_indices));
  }
  return pts;
}

}  // namespace lte::data
