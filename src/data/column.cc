#include "data/column.h"

#include <algorithm>

namespace lte::data {

Column::Column(std::string name, std::vector<double> values)
    : name_(std::move(name)), values_(std::move(values)) {
  if (!values_.empty()) {
    const auto [lo, hi] = std::minmax_element(values_.begin(), values_.end());
    min_ = *lo;
    max_ = *hi;
  }
}

void Column::Append(double v) {
  if (values_.empty()) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  values_.push_back(v);
}

}  // namespace lte::data
