#include "data/sampling.h"

#include <algorithm>

#include "common/check.h"

namespace lte::data {

std::vector<int64_t> SampleRowIndices(const Table& table, int64_t k,
                                      Rng* rng) {
  const int64_t n = table.num_rows();
  k = std::min(k, n);
  if (k <= 0) return {};
  return rng->SampleWithoutReplacement(n, k);
}

std::vector<int64_t> SampleRowFraction(const Table& table, double fraction,
                                       Rng* rng) {
  LTE_CHECK_GT(fraction, 0.0);
  LTE_CHECK_LE(fraction, 1.0);
  const int64_t n = table.num_rows();
  if (n == 0) return {};
  const int64_t k =
      std::max<int64_t>(1, static_cast<int64_t>(fraction * static_cast<double>(n)));
  return SampleRowIndices(table, k, rng);
}

Table SampleRows(const Table& table, int64_t k, Rng* rng) {
  return table.SelectRows(SampleRowIndices(table, k, rng));
}

ReservoirSampler::ReservoirSampler(int64_t capacity, Rng* rng)
    : capacity_(capacity), rng_(rng) {
  LTE_CHECK_GT(capacity, 0);
  reservoir_.reserve(static_cast<size_t>(capacity));
}

void ReservoirSampler::Offer(int64_t item) {
  ++seen_;
  if (static_cast<int64_t>(reservoir_.size()) < capacity_) {
    reservoir_.push_back(item);
    return;
  }
  const int64_t j = rng_->UniformInt(seen_);
  if (j < capacity_) reservoir_[static_cast<size_t>(j)] = item;
}

}  // namespace lte::data
