#include "data/synthetic.h"

#include <cmath>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/math_util.h"

namespace lte::data {
namespace {

// One component of a 1-D Gaussian mixture.
struct MixComponent {
  double weight;
  double mean;
  double stddev;
};

double DrawMixture(const std::vector<MixComponent>& comps, Rng* rng) {
  double u = rng->Uniform();
  for (const MixComponent& c : comps) {
    if (u < c.weight) return rng->Normal(c.mean, c.stddev);
    u -= c.weight;
  }
  return rng->Normal(comps.back().mean, comps.back().stddev);
}

}  // namespace

Table MakeSdssLike(int64_t num_rows, Rng* rng) {
  LTE_CHECK_GT(num_rows, 0);
  Table t({"rowc", "colc", "ra", "dec", "sky_u", "sky_g", "rowv", "colv"});

  // Spatial cluster centers for the correlated (rowc, colc) and (ra, dec)
  // pairs, mimicking the patchy layout of sky-survey frames.
  const std::vector<std::pair<double, double>> frame_centers = {
      {200.0, 300.0}, {800.0, 700.0}, {1200.0, 400.0}, {500.0, 1100.0}};
  const std::vector<std::pair<double, double>> sky_centers = {
      {30.0, -10.0}, {150.0, 25.0}, {220.0, 5.0}};

  const std::vector<MixComponent> sky_u_mix = {
      {0.5, 21.5, 0.4}, {0.3, 22.8, 0.3}, {0.2, 24.0, 0.5}};
  const std::vector<MixComponent> sky_g_mix = {
      {0.6, 20.7, 0.35}, {0.4, 22.3, 0.45}};
  const std::vector<MixComponent> velocity_mix = {
      {0.7, 0.0, 0.8}, {0.15, -4.0, 1.2}, {0.15, 4.0, 1.2}};

  for (int64_t i = 0; i < num_rows; ++i) {
    const auto& fc =
        frame_centers[static_cast<size_t>(rng->UniformInt(
            static_cast<int64_t>(frame_centers.size())))];
    const auto& sc = sky_centers[static_cast<size_t>(
        rng->UniformInt(static_cast<int64_t>(sky_centers.size())))];
    std::vector<double> row = {
        rng->Normal(fc.first, 120.0),   // rowc
        rng->Normal(fc.second, 120.0),  // colc
        rng->Normal(sc.first, 12.0),    // ra
        rng->Normal(sc.second, 6.0),    // dec
        DrawMixture(sky_u_mix, rng),    // sky_u
        DrawMixture(sky_g_mix, rng),    // sky_g
        DrawMixture(velocity_mix, rng), // rowv
        DrawMixture(velocity_mix, rng), // colv
    };
    Status s = t.AppendRow(row);
    LTE_CHECK_MSG(s.ok(), s.ToString().c_str());
  }
  return t;
}

Table MakeCarLike(int64_t num_rows, Rng* rng) {
  LTE_CHECK_GT(num_rows, 0);
  Table t({"price", "year", "mileage", "power_ps", "displacement"});
  for (int64_t i = 0; i < num_rows; ++i) {
    // Year: smooth trend over 1995..2016 with more recent cars listed more.
    const double year = 1995.0 + 21.0 * std::sqrt(rng->Uniform());
    // Mileage decays with age; heavy right tail.
    const double age = 2016.0 - year;
    const double mileage =
        std::max(0.0, age * 12000.0 + std::exp(rng->Normal(9.2, 0.8)) - 5000.0);
    // Power: a few engine classes (smooth plateaus, suited to JKC).
    const double cls = rng->Uniform();
    double power;
    if (cls < 0.45) {
      power = rng->Normal(75.0, 10.0);
    } else if (cls < 0.8) {
      power = rng->Normal(115.0, 14.0);
    } else if (cls < 0.95) {
      power = rng->Normal(170.0, 18.0);
    } else {
      power = rng->Normal(260.0, 35.0);
    }
    power = std::max(30.0, power);
    const double displacement = std::max(0.8, power * 0.013 + rng->Normal(0.3, 0.15));
    // Price: log-normal, appreciating with recency and power, depreciating
    // with mileage.
    const double log_price = 7.0 + 0.09 * (year - 1995.0) + 0.004 * power -
                             mileage * 2.3e-6 + rng->Normal(0.0, 0.35);
    const double price = std::exp(log_price);
    Status s = t.AppendRow({price, year, mileage, power, displacement});
    LTE_CHECK_MSG(s.ok(), s.ToString().c_str());
  }
  return t;
}

Table MakeCarListings(int64_t num_rows, Rng* rng) {
  LTE_CHECK_GT(num_rows, 0);
  const Table base = MakeCarLike(num_rows, rng);
  Table t({"price", "year", "mileage", "power_ps", "displacement", "gearbox",
           "fuel_type"});
  for (int64_t r = 0; r < num_rows; ++r) {
    std::vector<double> row = base.Row(r);
    const double power = row[3];
    // Automatics skew toward powerful cars; diesels toward mid-range power
    // and high mileage.
    const double gearbox = rng->Bernoulli(Clamp(power / 300.0, 0.05, 0.8))
                               ? 1.0
                               : 0.0;
    double fuel;
    if (power > 90.0 && power < 160.0 && rng->Bernoulli(0.55)) {
      fuel = 1.0;  // diesel
    } else if (rng->Bernoulli(0.05)) {
      fuel = 2.0;  // other
    } else {
      fuel = 0.0;  // petrol
    }
    row.push_back(gearbox);
    row.push_back(fuel);
    Status s = t.AppendRow(row);
    LTE_CHECK_MSG(s.ok(), s.ToString().c_str());
  }
  return t;
}

Table MakeBlobs(int64_t num_rows, int64_t num_attributes, int64_t num_blobs,
                Rng* rng) {
  LTE_CHECK_GT(num_rows, 0);
  LTE_CHECK_GT(num_attributes, 0);
  LTE_CHECK_GT(num_blobs, 0);
  std::vector<std::string> names;
  for (int64_t a = 0; a < num_attributes; ++a) {
    names.push_back("a" + std::to_string(a));
  }
  // Blob centers uniform in [0, 10]^d with unit spread.
  std::vector<std::vector<double>> centers;
  for (int64_t b = 0; b < num_blobs; ++b) {
    std::vector<double> c;
    for (int64_t a = 0; a < num_attributes; ++a) c.push_back(rng->Uniform(0.0, 10.0));
    centers.push_back(std::move(c));
  }
  Table t(names);
  for (int64_t i = 0; i < num_rows; ++i) {
    const auto& c = centers[static_cast<size_t>(rng->UniformInt(num_blobs))];
    std::vector<double> row(static_cast<size_t>(num_attributes));
    for (size_t a = 0; a < row.size(); ++a) row[a] = rng->Normal(c[a], 1.0);
    Status s = t.AppendRow(row);
    LTE_CHECK_MSG(s.ok(), s.ToString().c_str());
  }
  return t;
}

}  // namespace lte::data
