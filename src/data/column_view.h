#ifndef LTE_DATA_COLUMN_VIEW_H_
#define LTE_DATA_COLUMN_VIEW_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>

#include "common/check.h"

namespace lte::data {

/// One sealed segment's contribution to a column: the values of global rows
/// [start, end), stored contiguously and indexed by `row - start`.
struct ColumnSlice {
  int64_t start = 0;
  int64_t end = 0;
  const double* data = nullptr;
};

/// Read-only view of one column across every segment of a (possibly live)
/// `Table`: the base segment as a contiguous span plus zero or more sealed
/// append slices, all addressed by global row id.
///
/// A view is a snapshot: it captures the table's segment directory at
/// creation time (shared ownership keeps the sealed data alive), so reads
/// through it are safe and stable even while the table keeps appending —
/// rows visible at snapshot time never move and never change value. The
/// serving scan paths gather attribute data through views instead of raw
/// spans so block iteration crosses segment boundaries transparently.
///
/// `operator[]` is the hot-path accessor: the base segment resolves with one
/// compare, appended rows walk the (few, ordered) slices. Out-of-range rows
/// are a programmer error (LTE_CHECK), matching `Table`'s accessor contract.
class ColumnView {
 public:
  ColumnView() = default;
  ColumnView(std::span<const double> base, std::span<const ColumnSlice> tail,
             std::shared_ptr<const void> owner)
      : base_(base), tail_(tail), owner_(std::move(owner)) {}

  double operator[](int64_t row) const {
    if (row >= 0 && row < static_cast<int64_t>(base_.size())) {
      return base_[static_cast<size_t>(row)];
    }
    for (const ColumnSlice& s : tail_) {
      if (row < s.end) {
        LTE_CHECK_GE(row, s.start);
        return s.data[row - s.start];
      }
    }
    LTE_CHECK_MSG(false, "ColumnView: row out of range");
    return 0.0;  // Unreachable.
  }

  /// Rows addressable through this view (base + sealed slices at snapshot
  /// time).
  int64_t size() const {
    return tail_.empty() ? static_cast<int64_t>(base_.size())
                         : tail_.back().end;
  }

 private:
  std::span<const double> base_;
  std::span<const ColumnSlice> tail_;
  std::shared_ptr<const void> owner_;  // Keeps the snapshot's segments alive.
};

}  // namespace lte::data

#endif  // LTE_DATA_COLUMN_VIEW_H_
