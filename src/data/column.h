#ifndef LTE_DATA_COLUMN_H_
#define LTE_DATA_COLUMN_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace lte::data {

/// A named numeric column.
///
/// LTE (like the IDE systems it reproduces: AIDE, DSM) operates on numeric
/// attributes — the SDSS photometric attributes and the CAR attributes are all
/// numeric — so the column store holds doubles only. Min/max are maintained
/// lazily for normalization and domain queries.
class Column {
 public:
  Column() = default;
  explicit Column(std::string name) : name_(std::move(name)) {}
  Column(std::string name, std::vector<double> values);

  const std::string& name() const { return name_; }
  const std::vector<double>& values() const { return values_; }

  /// Contiguous view of all values. The columnar serving path scans column
  /// data through this instead of materializing per-row tuples; the view is
  /// invalidated by Append (like any vector iterator).
  std::span<const double> AsSpan() const { return values_; }
  int64_t size() const { return static_cast<int64_t>(values_.size()); }
  bool empty() const { return values_.empty(); }

  double value(int64_t row) const { return values_[static_cast<size_t>(row)]; }

  /// Appends one value, updating cached min/max.
  void Append(double v);

  /// Smallest value; 0 for an empty column.
  double min() const { return empty() ? 0.0 : min_; }
  /// Largest value; 0 for an empty column.
  double max() const { return empty() ? 0.0 : max_; }

 private:
  std::string name_;
  std::vector<double> values_;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace lte::data

#endif  // LTE_DATA_COLUMN_H_
