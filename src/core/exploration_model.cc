#include "core/exploration_model.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "common/binary_io.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace lte::core {
namespace {

constexpr uint64_t kModelMagic = 0x4C54454D4F44454CULL;  // "LTEMODEL".
constexpr uint64_t kModelVersion = 1;

void SaveOptions(const ExplorerOptions& opt, BinaryWriter* w) {
  // MetaTaskGenOptions.
  w->WriteI64(opt.task_gen.k_u);
  w->WriteI64(opt.task_gen.k_s);
  w->WriteI64(opt.task_gen.k_q);
  w->WriteI64(opt.task_gen.delta);
  w->WriteI64(opt.task_gen.alpha);
  w->WriteI64(opt.task_gen.psi);
  w->WriteI64(opt.task_gen.expansion_l);
  w->WriteDouble(opt.task_gen.cluster_sample_fraction);
  w->WriteI64(opt.task_gen.min_cluster_sample);
  // MetaLearnerOptions (needed to rebuild the Basic variant online).
  w->WriteI64(opt.learner.uis_feature_dim);
  w->WriteI64(opt.learner.tuple_feature_dim);
  w->WriteI64(opt.learner.embedding_size);
  w->WriteI64Vector(opt.learner.uis_hidden);
  w->WriteI64Vector(opt.learner.tuple_hidden);
  w->WriteI64Vector(opt.learner.clf_hidden);
  w->WriteBool(opt.learner.use_memory);
  w->WriteI64(opt.learner.num_memory_modes);
  w->WriteDouble(opt.learner.sigma);
  // FpFnOptions + online schedule.
  w->WriteDouble(opt.fpfn.outer_fraction);
  w->WriteDouble(opt.fpfn.inner_fraction);
  w->WriteI64(opt.num_meta_tasks);
  w->WriteI64(opt.online_steps);
  w->WriteI64(opt.online_batch_size);
  w->WriteDouble(opt.online_lr);
}

Status LoadOptions(BinaryReader* r, ExplorerOptions* opt) {
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->task_gen.k_u));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->task_gen.k_s));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->task_gen.k_q));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->task_gen.delta));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->task_gen.alpha));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->task_gen.psi));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->task_gen.expansion_l));
  LTE_RETURN_IF_ERROR(r->ReadDouble(&opt->task_gen.cluster_sample_fraction));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->task_gen.min_cluster_sample));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->learner.uis_feature_dim));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->learner.tuple_feature_dim));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->learner.embedding_size));
  LTE_RETURN_IF_ERROR(r->ReadI64Vector(&opt->learner.uis_hidden));
  LTE_RETURN_IF_ERROR(r->ReadI64Vector(&opt->learner.tuple_hidden));
  LTE_RETURN_IF_ERROR(r->ReadI64Vector(&opt->learner.clf_hidden));
  LTE_RETURN_IF_ERROR(r->ReadBool(&opt->learner.use_memory));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->learner.num_memory_modes));
  LTE_RETURN_IF_ERROR(r->ReadDouble(&opt->learner.sigma));
  LTE_RETURN_IF_ERROR(r->ReadDouble(&opt->fpfn.outer_fraction));
  LTE_RETURN_IF_ERROR(r->ReadDouble(&opt->fpfn.inner_fraction));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->num_meta_tasks));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->online_steps));
  LTE_RETURN_IF_ERROR(r->ReadI64(&opt->online_batch_size));
  LTE_RETURN_IF_ERROR(r->ReadDouble(&opt->online_lr));
  return Status::OK();
}

}  // namespace

const data::Subspace* ExplorationModel::subspace(int64_t s) const {
  if (s < 0 || s >= num_subspaces()) return nullptr;
  return &subspaces_[static_cast<size_t>(s)];
}

const std::vector<std::vector<double>>* ExplorationModel::InitialTuples(
    int64_t s) const {
  if (!pretrained_ || s < 0 || s >= num_subspaces()) return nullptr;
  return &subspace_models_[static_cast<size_t>(s)].initial_tuples;
}

const MetaTaskGenerator* ExplorationModel::generator(int64_t s) const {
  if (!pretrained_ || s < 0 || s >= num_subspaces()) return nullptr;
  return &subspace_models_[static_cast<size_t>(s)].generator;
}

const MetaLearner* ExplorationModel::meta_learner(int64_t s) const {
  if (!pretrained_ || s < 0 || s >= num_subspaces()) return nullptr;
  return subspace_models_[static_cast<size_t>(s)].meta_learner.get();
}

TupleEncoder ExplorationModel::MakeEncoder(int64_t s) const {
  const std::vector<int64_t>& attrs =
      subspaces_[static_cast<size_t>(s)].attribute_indices;
  return [this, attrs](const std::vector<double>& point) {
    return encoder_.EncodeProjected(point, attrs);
  };
}

Status ExplorationModel::Pretrain(const data::Table& table,
                                  const std::vector<data::Subspace>& subspaces,
                                  bool train_meta, Rng* rng) {
  if (subspaces.empty()) {
    return Status::InvalidArgument("explorer: no subspaces");
  }
  subspaces_ = subspaces;
  encoder_ = preprocess::TabularEncoder(options_.encoder);
  LTE_RETURN_IF_ERROR(encoder_.Fit(table, rng));

  subspace_models_.clear();
  subspace_models_.resize(subspaces_.size());
  task_generation_seconds_ = 0.0;
  meta_training_seconds_ = 0.0;

  // Phase 1 — clustering contexts and initial tuples, sequential on the
  // caller's stream (draw-for-draw the pre-parallel path, so the Basic
  // variant is unaffected by the offline parallelization).
  for (size_t s = 0; s < subspaces_.size(); ++s) {
    SubspaceModel& model = subspace_models_[s];
    model.generator = MetaTaskGenerator(options_.task_gen);
    const std::vector<std::vector<double>> points =
        data::ProjectRows(table, subspaces_[s]);
    LTE_RETURN_IF_ERROR(model.generator.Init(points, rng));

    // Initial tuples: the k_s centers of C^s plus Δ random sample tuples —
    // the same construction as a meta-task's support set (paper Section
    // V-D), so the online labels line up with the meta-trained input.
    const SubspaceContext& ctx = model.generator.context();
    model.initial_tuples = ctx.centers_s;
    const auto n_sample = static_cast<int64_t>(ctx.sample_points.size());
    for (int64_t i = 0; i < options_.task_gen.delta; ++i) {
      model.initial_tuples.push_back(
          ctx.sample_points[static_cast<size_t>(rng->UniformInt(n_sample))]);
    }
  }

  // Phase 2 — task generation + encoding + meta-training. Meta-subspaces
  // are independent (Algorithm 2 runs once per subspace), so they fan out
  // on the shared pool. Subspace s trains on the key-split stream
  // fork_base.Fork(s): no lane ever touches another lane's RNG, which makes
  // the trained model bit-identical for any num_threads, including 1.
  if (train_meta) {
    Rng fork_base = rng->Fork();
    const auto n = static_cast<int64_t>(subspaces_.size());
    std::vector<Status> statuses(static_cast<size_t>(n));
    std::vector<double> gen_seconds(static_cast<size_t>(n), 0.0);
    std::vector<double> train_seconds(static_cast<size_t>(n), 0.0);
    ThreadPool::Shared().ParallelFor(
        0, n, ResolveThreadCount(options_.num_threads), [&](int64_t s) {
          SubspaceModel& model = subspace_models_[static_cast<size_t>(s)];
          Rng sub_rng = fork_base.Fork(static_cast<uint64_t>(s));
          Stopwatch sw;
          const std::vector<MetaTask> tasks =
              model.generator.GenerateTaskSet(options_.num_meta_tasks,
                                              &sub_rng);
          const std::vector<EncodedMetaTask> encoded = EncodeTasks(
              tasks, MakeEncoder(s), options_.trainer.num_threads);
          gen_seconds[static_cast<size_t>(s)] = sw.ElapsedSeconds();

          sw.Restart();
          MetaLearnerOptions lopt = options_.learner;
          lopt.uis_feature_dim = options_.task_gen.k_u;
          lopt.tuple_feature_dim = encoder_.ProjectedWidth(
              subspaces_[static_cast<size_t>(s)].attribute_indices);
          model.meta_learner = std::make_unique<MetaLearner>(lopt, &sub_rng);
          MetaTrainStats stats;
          statuses[static_cast<size_t>(s)] =
              MetaTrain(encoded, options_.trainer, &sub_rng,
                        model.meta_learner.get(), &stats);
          train_seconds[static_cast<size_t>(s)] = sw.ElapsedSeconds();
        });
    for (int64_t s = 0; s < n; ++s) {
      LTE_RETURN_IF_ERROR(statuses[static_cast<size_t>(s)]);
      task_generation_seconds_ += gen_seconds[static_cast<size_t>(s)];
      meta_training_seconds_ += train_seconds[static_cast<size_t>(s)];
    }
  }
  pretrained_ = true;
  meta_trained_ = train_meta;
  RecomputeFingerprint();
  return Status::OK();
}

void ExplorationModel::RecomputeFingerprint() {
  std::ostringstream bytes(std::ios::binary);
  const Status st = SaveToStream(&bytes);
  LTE_CHECK_MSG(st.ok(), "fingerprint: in-memory serialization cannot fail");
  const std::string s = bytes.str();
  fingerprint_ = Fnv1a64(s.data(), s.size());
}

Status ExplorationModel::Save(const std::string& path) const {
  if (!pretrained_) {
    return Status::FailedPrecondition("explorer: Save before Pretrain");
  }
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  return SaveToStream(&out);
}

Status ExplorationModel::SaveToStream(std::ostream* out) const {
  if (!pretrained_) {
    return Status::FailedPrecondition("explorer: Save before Pretrain");
  }
  BinaryWriter w(out);
  w.WriteU64(kModelMagic);
  w.WriteU64(kModelVersion);
  SaveOptions(options_, &w);
  encoder_.Save(&w);
  w.WriteBool(meta_trained_);
  w.WriteU64(subspaces_.size());
  for (size_t s = 0; s < subspaces_.size(); ++s) {
    w.WriteI64Vector(subspaces_[s].attribute_indices);
    const SubspaceContext& ctx = subspace_models_[s].generator.context();
    w.WritePointSet(ctx.centers_u);
    w.WritePointSet(ctx.centers_s);
    w.WritePointSet(ctx.centers_q);
    w.WritePointSet(ctx.sample_points);
    w.WritePointSet(subspace_models_[s].initial_tuples);
    const bool has_learner = subspace_models_[s].meta_learner != nullptr;
    w.WriteBool(has_learner);
    if (has_learner) subspace_models_[s].meta_learner->Save(&w);
  }
  return w.status();
}

Status ExplorationModel::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open " + path);
  }
  Status st = LoadFromStream(&in);
  if (!st.ok() && st.code() == StatusCode::kInvalidArgument) {
    return Status::InvalidArgument(path + ": " + st.message());
  }
  return st;
}

Status ExplorationModel::LoadFromStream(std::istream* in) {
  BinaryReader r(in);
  uint64_t magic = 0;
  uint64_t version = 0;
  LTE_RETURN_IF_ERROR(r.ReadU64(&magic));
  if (magic != kModelMagic) {
    return Status::InvalidArgument("not an LTE model file");
  }
  LTE_RETURN_IF_ERROR(r.ReadU64(&version));
  if (version != kModelVersion) {
    return Status::InvalidArgument("unsupported LTE model version " +
                                   std::to_string(version));
  }
  ExplorerOptions options;
  LTE_RETURN_IF_ERROR(LoadOptions(&r, &options));
  // Threading is a serving-host knob, not model state: keep the values this
  // instance was constructed with (neither is serialized — LoadOptions
  // leaves them at their defaults).
  options.num_threads = options_.num_threads;
  options.trainer.num_threads = options_.trainer.num_threads;
  preprocess::TabularEncoder encoder;
  LTE_RETURN_IF_ERROR(encoder.Load(&r));
  bool meta_trained = false;
  LTE_RETURN_IF_ERROR(r.ReadBool(&meta_trained));
  uint64_t num_subspaces = 0;
  LTE_RETURN_IF_ERROR(r.ReadU64(&num_subspaces));
  if (num_subspaces == 0) {
    return Status::IoError("model load: no subspaces");
  }

  std::vector<data::Subspace> subspaces(num_subspaces);
  std::vector<SubspaceModel> models(num_subspaces);
  for (uint64_t s = 0; s < num_subspaces; ++s) {
    LTE_RETURN_IF_ERROR(r.ReadI64Vector(&subspaces[s].attribute_indices));
    SubspaceContext ctx;
    LTE_RETURN_IF_ERROR(r.ReadPointSet(&ctx.centers_u));
    LTE_RETURN_IF_ERROR(r.ReadPointSet(&ctx.centers_s));
    LTE_RETURN_IF_ERROR(r.ReadPointSet(&ctx.centers_q));
    LTE_RETURN_IF_ERROR(r.ReadPointSet(&ctx.sample_points));
    if (static_cast<int64_t>(ctx.centers_u.size()) != options.task_gen.k_u ||
        static_cast<int64_t>(ctx.centers_s.size()) != options.task_gen.k_s ||
        static_cast<int64_t>(ctx.centers_q.size()) != options.task_gen.k_q) {
      return Status::IoError("model load: context shape mismatch");
    }
    models[s].generator = MetaTaskGenerator(options.task_gen);
    models[s].generator.RestoreContext(std::move(ctx));
    LTE_RETURN_IF_ERROR(r.ReadPointSet(&models[s].initial_tuples));
    bool has_learner = false;
    LTE_RETURN_IF_ERROR(r.ReadBool(&has_learner));
    if (has_learner) {
      LTE_RETURN_IF_ERROR(
          MetaLearner::LoadFrom(&r, &models[s].meta_learner));
    } else if (meta_trained) {
      return Status::IoError("model load: missing meta-learner");
    }
  }

  options_ = options;
  encoder_ = std::move(encoder);
  subspaces_ = std::move(subspaces);
  subspace_models_ = std::move(models);
  pretrained_ = true;
  meta_trained_ = meta_trained;
  task_generation_seconds_ = 0.0;
  meta_training_seconds_ = 0.0;
  RecomputeFingerprint();
  return Status::OK();
}

}  // namespace lte::core
