#ifndef LTE_CORE_LTE_H_
#define LTE_CORE_LTE_H_

/// Umbrella header for the LTE (Learn-to-Explore) public API.
///
/// The framework (ICDE 2023, "Learn to Explore: on Bootstrapping Interactive
/// Data Exploration with Meta-learning") bootstraps explore-by-example data
/// exploration with meta-learned neural classifiers:
///
///   * Offline, `core::ExplorationModel::Pretrain` decomposes the data space
///     into meta-subspaces, generates unsupervised meta-tasks
///     (`core::MetaTaskGenerator`), and meta-trains one memory-augmented
///     classifier per subspace (`core::MetaLearner`, `core::MetaTrain`). The
///     resulting model is immutable and shareable across threads.
///   * Online, each user holds a `core::ExplorationSession` against the
///     shared model: they label a few initial tuples per subspace
///     (`core::ExplorationModel::InitialTuples`), `StartExploration`
///     fast-adapts the meta-learners and (for the Meta* variant) the FP/FN
///     optimizer, after which `PredictRow`/`RetrieveMatches` answer UIR
///     membership for arbitrary tuples.
///   * `core::Explorer` bundles one model with one default session for the
///     single-user case.
///
/// See examples/quickstart.cc for a complete walkthrough.

#include "core/exploration_model.h"    // IWYU pragma: export
#include "core/exploration_session.h"  // IWYU pragma: export
#include "core/explorer.h"       // IWYU pragma: export
#include "core/meta_learner.h"   // IWYU pragma: export
#include "core/meta_task.h"      // IWYU pragma: export
#include "core/meta_trainer.h"   // IWYU pragma: export
#include "core/optimizer_fpfn.h" // IWYU pragma: export
#include "core/query_synthesis.h" // IWYU pragma: export
#include "core/uis_feature.h"    // IWYU pragma: export

#endif  // LTE_CORE_LTE_H_
