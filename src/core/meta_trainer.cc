#include "core/meta_trainer.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/thread_pool.h"

namespace lte::core {

std::vector<EncodedMetaTask> EncodeTasks(const std::vector<MetaTask>& tasks,
                                         const TupleEncoder& encoder,
                                         int64_t num_threads) {
  std::vector<EncodedMetaTask> out(tasks.size());
  ThreadPool::Shared().ParallelFor(
      0, static_cast<int64_t>(tasks.size()), ResolveThreadCount(num_threads),
      [&](int64_t i) {
        const MetaTask& t = tasks[static_cast<size_t>(i)];
        EncodedMetaTask& e = out[static_cast<size_t>(i)];
        e.uis_feature = t.uis_feature;
        e.support_y = t.support_labels;
        e.query_y = t.query_labels;
        e.support_x.reserve(t.support_points.size());
        for (const auto& p : t.support_points) e.support_x.push_back(encoder(p));
        e.query_x.reserve(t.query_points.size());
        for (const auto& p : t.query_points) e.query_x.push_back(encoder(p));
      });
  return out;
}

void LocallyAdapt(TaskModel* model, const std::vector<std::vector<double>>& x,
                  const std::vector<double>& y, int64_t steps,
                  int64_t batch_size, double lr, Rng* rng,
                  double max_grad_norm) {
  LTE_CHECK_EQ(x.size(), y.size());
  LTE_CHECK(!x.empty());
  const auto n = static_cast<int64_t>(x.size());
  std::vector<int64_t> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), int64_t{0});
  int64_t cursor = n;  // Forces an initial shuffle.

  for (int64_t step = 0; step < steps; ++step) {
    const int64_t take = std::min(batch_size, n);
    std::vector<std::vector<double>> bx;
    std::vector<double> by;
    bx.reserve(static_cast<size_t>(take));
    by.reserve(static_cast<size_t>(take));
    for (int64_t i = 0; i < take; ++i) {
      if (cursor >= n) {
        rng->Shuffle(&order);
        cursor = 0;
      }
      const int64_t idx = order[static_cast<size_t>(cursor++)];
      bx.push_back(x[static_cast<size_t>(idx)]);
      by.push_back(y[static_cast<size_t>(idx)]);
    }
    model->ZeroGrad();
    model->AccumulateBatch(bx, by);
    model->ApplyAccumulated(lr, max_grad_norm);
  }
}

namespace {

// Adds src into *dst (both flattened gradient vectors).
void AddInto(const std::vector<double>& src, std::vector<double>* dst) {
  if (dst->empty()) dst->assign(src.size(), 0.0);
  LTE_CHECK_EQ(src.size(), dst->size());
  for (size_t i = 0; i < src.size(); ++i) (*dst)[i] += src[i];
}

// One-step global update: φ ⇐ φ − λ/|batch| · Σ ∇ (Eq. 13).
void ApplyGlobal(nn::Mlp* phi, const std::vector<double>& grad_sum,
                 double lr, int64_t batch) {
  std::vector<double> params = phi->GetParameters();
  const double scale = lr / static_cast<double>(batch);
  LTE_CHECK_EQ(params.size(), grad_sum.size());
  for (size_t i = 0; i < params.size(); ++i) params[i] -= scale * grad_sum[i];
  phi->SetParameters(params);
}

}  // namespace

Status MetaTrain(const std::vector<EncodedMetaTask>& tasks,
                 const MetaTrainerOptions& options, Rng* rng,
                 MetaLearner* learner, MetaTrainStats* stats) {
  if (tasks.empty()) {
    return Status::InvalidArgument("meta-train: empty task set");
  }
  if (options.epochs <= 0 || options.task_batch_size <= 0 ||
      options.local_steps < 0 || options.local_batch_size <= 0) {
    return Status::InvalidArgument("meta-train: invalid options");
  }
  MetaTrainStats local_stats;

  std::vector<int64_t> order(tasks.size());
  std::iota(order.begin(), order.end(), int64_t{0});

  for (int64_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng->Shuffle(&order);
    double epoch_loss = 0.0;
    int64_t counted = 0;

    for (size_t start = 0; start < order.size();
         start += static_cast<size_t>(options.task_batch_size)) {
      const size_t end = std::min(
          order.size(), start + static_cast<size_t>(options.task_batch_size));
      const auto batch = static_cast<int64_t>(end - start);

      // Fork one RNG per task up-front so results do not depend on the
      // thread count or execution order.
      std::vector<Rng> task_rngs;
      task_rngs.reserve(static_cast<size_t>(batch));
      for (int64_t i = 0; i < batch; ++i) task_rngs.push_back(rng->Fork());

      // Local phase (Algorithm 2 lines 4-10) per task, against the globals
      // snapshotted at batch start; tasks are independent, so they can run
      // on worker threads. Each slot holds the adapted model plus its
      // query-set loss.
      struct TaskResult {
        TaskModel model;
        double query_loss = 0.0;
      };
      std::vector<TaskResult> results(static_cast<size_t>(batch));
      auto run_task = [&](int64_t i) {
        const EncodedMetaTask& task =
            tasks[static_cast<size_t>(order[start + static_cast<size_t>(i)])];
        TaskModel tm = learner->CreateTaskModel(task.uis_feature);
        LocallyAdapt(&tm, task.support_x, task.support_y, options.local_steps,
                     options.local_batch_size, options.local_lr,
                     &task_rngs[static_cast<size_t>(i)]);
        // Global phase contribution (lines 12-13): query-set gradients at
        // the adapted parameters (first-order meta-gradient; the paper's
        // one-step update "like [54]").
        tm.ZeroGrad();
        results[static_cast<size_t>(i)].query_loss =
            tm.AccumulateBatch(task.query_x, task.query_y);
        results[static_cast<size_t>(i)].model = std::move(tm);
      };

      // Fan the batch out on the shared pool (no per-batch thread spawns —
      // batches are the inner loop of training, so wake-up cost matters).
      ThreadPool::Shared().ParallelFor(
          0, batch, ResolveThreadCount(options.num_threads), run_task);

      // Aggregate in task order (thread-count invariant), then the one-step
      // global update and the memory writes. Under FOMAML the aggregate is
      // the query-set gradients at the adapted parameters; under Reptile it
      // is (φ − θ̂) per block, so the same descent step moves φ toward θ̂.
      const bool reptile = options.algorithm == MetaAlgorithm::kReptile;
      const std::vector<double> phi_r = learner->phi_r().GetParameters();
      const std::vector<double> phi_tau = learner->phi_tau().GetParameters();
      const std::vector<double> phi_clf = learner->phi_clf().GetParameters();
      auto reptile_delta = [](const std::vector<double>& phi,
                              const std::vector<double>& theta) {
        std::vector<double> d(phi.size());
        for (size_t j = 0; j < phi.size(); ++j) d[j] = phi[j] - theta[j];
        return d;
      };

      std::vector<double> grad_r;
      std::vector<double> grad_tau;
      std::vector<double> grad_clf;
      for (int64_t i = 0; i < batch; ++i) {
        const TaskModel& tm = results[static_cast<size_t>(i)].model;
        epoch_loss += results[static_cast<size_t>(i)].query_loss;
        ++counted;
        if (reptile) {
          AddInto(reptile_delta(phi_r, tm.f_r().GetParameters()), &grad_r);
          AddInto(reptile_delta(phi_tau, tm.f_tau().GetParameters()),
                  &grad_tau);
          AddInto(reptile_delta(phi_clf, tm.f_clf().GetParameters()),
                  &grad_clf);
        } else {
          AddInto(tm.f_r().GetGradients(), &grad_r);
          AddInto(tm.f_tau().GetGradients(), &grad_tau);
          AddInto(tm.f_clf().GetGradients(), &grad_clf);
        }
        learner->UpdateMemories(tm, options.eta, options.beta, options.gamma);
      }

      ApplyGlobal(learner->mutable_phi_r(), grad_r, options.global_lr, batch);
      ApplyGlobal(learner->mutable_phi_tau(), grad_tau, options.global_lr,
                  batch);
      ApplyGlobal(learner->mutable_phi_clf(), grad_clf, options.global_lr,
                  batch);
    }
    local_stats.epoch_query_loss.push_back(
        counted > 0 ? epoch_loss / static_cast<double>(counted) : 0.0);
  }
  if (stats != nullptr) *stats = std::move(local_stats);
  return Status::OK();
}

}  // namespace lte::core
