#ifndef LTE_CORE_META_TASK_H_
#define LTE_CORE_META_TASK_H_

#include <cstdint>
#include <vector>

#include "cluster/kmeans.h"
#include "cluster/proximity.h"
#include "common/rng.h"
#include "common/status.h"
#include "geom/region.h"

namespace lte::core {

/// A meta-task t : (R_t^M, S_t^sp, S_t^qs) — paper Definition 2.
///
/// The support set simulates the user's labelling actions; the query set
/// simulates the evaluation of the locally adapted learner. Points are raw
/// subspace coordinates; the meta-trainer encodes them with the tabular
/// encoder before feeding the classifier.
struct MetaTask {
  /// Simulated UIS: union of α convex hulls (paper Section V-C).
  geom::Region uis;

  /// Support set: the k_s cluster centers of C^s followed by Δ random
  /// subspace tuples (paper Section V-D). `support_labels[i]` is 1 when
  /// `support_points[i]` lies inside the UIS.
  std::vector<std::vector<double>> support_points;
  std::vector<double> support_labels;

  /// Query set: the k_q centers of C^q followed by Δ random tuples.
  std::vector<std::vector<double>> query_points;
  std::vector<double> query_labels;

  /// UIS feature vector v_R of length k_u (paper Section VI-A): the labels
  /// of the C^s centers expanded onto C^u via l-nearest-neighbour retrieval.
  std::vector<double> uis_feature;
};

/// Per-meta-subspace state shared by every meta-task: the three rounds of
/// k-means (C^u, C^s, C^q) and the two proximity matrices (paper Section
/// V-B).
struct SubspaceContext {
  std::vector<std::vector<double>> centers_u;  // k_u centers.
  std::vector<std::vector<double>> centers_s;  // k_s centers.
  std::vector<std::vector<double>> centers_q;  // k_q centers.
  cluster::ProximityMatrix proximity_u;        // k_u x k_u (P^u).
  cluster::ProximityMatrix proximity_s;        // k_s x k_u (P^s).
  /// Sampled subspace tuples the clustering ran on; also the source of the
  /// Δ random support/query tuples.
  std::vector<std::vector<double>> sample_points;
};

/// Parameters of meta-task generation (paper Algorithm 1 and Section VIII-A
/// defaults).
struct MetaTaskGenOptions {
  int64_t k_u = 100;
  int64_t k_s = 25;
  int64_t k_q = 200;
  /// Δ extra random tuples appended to each support/query set.
  int64_t delta = 5;
  /// α: number of convex parts composing a simulated UIS.
  int64_t alpha = 4;
  /// ψ: neighbourhood size of each convex part.
  int64_t psi = 20;
  /// l: UIS feature expansion degree; <= 0 means the paper default 0.1*k_u.
  int64_t expansion_l = -1;
  /// Clustering runs on a random sample of this fraction of the subspace
  /// tuples (paper: 1%), but at least `min_cluster_sample` points.
  double cluster_sample_fraction = 0.01;
  int64_t min_cluster_sample = 1024;
  cluster::KMeansOptions kmeans;
};

/// Generates meta-tasks for one meta-subspace (paper Algorithm 1).
///
/// `Init` performs the clustering step once; `GenerateTask` then produces
/// i.i.d. meta-tasks cheaply (UIS formulation + support/query formulation).
class MetaTaskGenerator {
 public:
  explicit MetaTaskGenerator(MetaTaskGenOptions options)
      : options_(options) {}

  /// Clustering step: three k-means rounds over a sample of
  /// `subspace_points` plus the proximity matrices. Fails when the subspace
  /// has fewer points than the largest k.
  Status Init(const std::vector<std::vector<double>>& subspace_points,
              Rng* rng);

  bool initialized() const { return initialized_; }
  const SubspaceContext& context() const { return context_; }
  const MetaTaskGenOptions& options() const { return options_; }

  /// Resolved expansion degree l.
  int64_t expansion_l() const;

  /// Formulates one meta-task: a simulated UIS of `alpha` convex hulls over
  /// ψ-NN center groups, plus labelled support and query sets.
  MetaTask GenerateTask(Rng* rng) const;

  /// Convenience: n tasks.
  std::vector<MetaTask> GenerateTaskSet(int64_t n, Rng* rng) const;

  /// Builds a simulated UIS with explicit α and ψ (used by the ground-truth
  /// UIR generator for the M1-M7 benchmark modes, Table III).
  geom::Region GenerateUis(int64_t alpha, int64_t psi, Rng* rng) const;

  /// Model persistence: re-installs a clustering context (center sets and
  /// sample points; the proximity matrices are rebuilt) without re-running
  /// k-means. The context must match this generator's options.
  void RestoreContext(SubspaceContext context);

 private:
  MetaTaskGenOptions options_;
  bool initialized_ = false;
  SubspaceContext context_;
};

}  // namespace lte::core

#endif  // LTE_CORE_META_TASK_H_
