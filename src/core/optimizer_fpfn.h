#ifndef LTE_CORE_OPTIMIZER_FPFN_H_
#define LTE_CORE_OPTIMIZER_FPFN_H_

#include <cstdint>
#include <vector>

#include "core/meta_task.h"
#include "geom/region.h"

namespace lte::core {

/// Expansion extents of the few-shot prediction optimizer (paper Section
/// VII-B). N_sup / N_sub are fractions of k_u; the paper's defaults are 30%
/// and 10%.
struct FpFnOptions {
  double outer_fraction = 0.30;
  double inner_fraction = 0.10;
};

/// Heuristic refinement of few-shot predictions (the Meta* variant).
///
/// From the positively labelled C^s centers it builds:
///  * an *outer-subregion* — the union of large convex hulls over each
///    positive center's N_sup nearest C^u centers — conceived to be a
///    superset of the real UIS: predictions outside it are revised from
///    positive to negative (kills far-away false positives);
///  * an *inner-subregion* — the same construction with the much smaller
///    N_sub ("conservative expansion") — conceived to be a subset of the
///    UIS: predictions inside it are revised from negative to positive
///    (fills small false-negative holes).
class FpFnOptimizer {
 public:
  /// `center_labels` are the user's 0/1 labels of the k_s C^s centers.
  FpFnOptimizer(const SubspaceContext& context,
                const std::vector<double>& center_labels,
                const FpFnOptions& options);

  /// Returns the refined 0/1 prediction for a raw subspace point.
  double Refine(const std::vector<double>& point, double prediction) const;

  const geom::Region& outer_subregion() const { return outer_; }
  const geom::Region& inner_subregion() const { return inner_; }
  bool has_positive_centers() const { return has_positive_; }

 private:
  geom::Region outer_;
  geom::Region inner_;
  bool has_positive_ = false;
};

}  // namespace lte::core

#endif  // LTE_CORE_OPTIMIZER_FPFN_H_
