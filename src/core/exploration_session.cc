#include "core/exploration_session.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <mutex>
#include <numeric>
#include <string>
#include <utility>

#include "common/binary_io.h"
#include "common/check.h"
#include "common/math_util.h"
#include "common/thread_pool.h"
#include "core/meta_trainer.h"
#include "core/uis_feature.h"

namespace lte::core {
namespace {

/// Rows per scan chunk: the unit RetrieveMatches lanes claim and the block
/// size of the columnar fast path (chunk == block keeps one encode/score
/// round per claimed chunk). Shared with the coalesced serving front-end
/// via the public alias so cross-session batches group at the same
/// granularity.
constexpr int64_t kScanChunkRows = kServingBlockRows;

// Session file header (see DESIGN.md §2d "Session lifecycle").
constexpr uint64_t kSessionMagic = 0x4C5445534553534EULL;  // "LTESESSN".
// v1: variant/rng/per-subspace history + task models. v2 appends one
// exploration-policy block per adapted subspace (DESIGN.md §2f); v1 files
// still load, installing the default UncertaintyPolicy per subspace.
constexpr uint64_t kSessionVersion = 2;
constexpr uint64_t kOldestLoadableSessionVersion = 1;

// Key-space offset separating the policy-construction streams from the
// per-subspace adaptation streams (both split from the same fork base in
// StartExploration). Any constant far outside [0, num_subspaces) works; the
// golden-ratio word keeps the XORed keys far from small integers.
constexpr uint64_t kPolicySeedKey = 0x9E3779B97F4A7C15ULL;

std::string HexU64(uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llX",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

ExplorationSession::ExplorationSession(
    std::shared_ptr<const ExplorationModel> model, int64_t num_threads)
    : model_(std::move(model)), num_threads_override_(num_threads) {
  LTE_CHECK(model_ != nullptr);
}

int64_t ExplorationSession::num_threads() const {
  return num_threads_override_ >= 0 ? num_threads_override_
                                    : model_->options().num_threads;
}

void ExplorationSession::Reset() {
  states_.clear();
  active_count_ = 0;
  variant_ = Variant::kBasic;
}

void ExplorationSession::SeedRng(uint64_t seed) { rng_.emplace(seed); }

Rng* ExplorationSession::session_rng() {
  return rng_.has_value() ? &*rng_ : nullptr;
}

Status ExplorationSession::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  return SaveToStream(&out);
}

Status ExplorationSession::SaveToStream(std::ostream* out) const {
  if (!model_->pretrained()) {
    return Status::FailedPrecondition(
        "session save: model has not been trained");
  }
  BinaryWriter w(out);
  w.WriteU64(kSessionMagic);
  w.WriteU64(kSessionVersion);
  w.WriteU64(model_->fingerprint());
  w.WriteU64(static_cast<uint64_t>(variant_));
  w.WriteI64(active_count_);
  w.WriteBool(rng_.has_value());
  if (rng_.has_value()) rng_->Save(&w);
  for (int64_t s = 0; s < active_count_; ++s) {
    const SubspaceSession& state = states_[static_cast<size_t>(s)];
    LTE_CHECK(state.task_model != nullptr);
    w.WriteDoubleVector(state.start_labels);
    w.WriteU64(state.history.size());
    for (const LabeledBatch& batch : state.history) {
      w.WritePointSet(batch.points);
      w.WriteDoubleVector(batch.labels);
    }
    state.task_model->Save(&w);
    // v2: the subspace's exploration policy — parameters and mutable state
    // (tau counters, bootstrap bag seeds) — so a restored session keeps
    // suggesting exactly where the saved one stopped.
    w.WriteBool(state.policy != nullptr);
    if (state.policy != nullptr) policy::SavePolicy(*state.policy, &w);
  }
  return w.status();
}

Status ExplorationSession::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open " + path);
  }
  Status st = LoadFromStream(&in);
  if (!st.ok() && st.code() == StatusCode::kInvalidArgument) {
    return Status::InvalidArgument(path + ": " + st.message());
  }
  return st;
}

Status ExplorationSession::PeekCheckpointFingerprint(const std::string& path,
                                                     uint64_t* fingerprint) {
  if (fingerprint == nullptr) {
    return Status::InvalidArgument(
        "session peek: fingerprint must not be null");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::IoError("cannot open " + path);
  }
  BinaryReader r(&in);
  uint64_t magic = 0;
  uint64_t version = 0;
  uint64_t stamped = 0;
  LTE_RETURN_IF_ERROR(r.ReadU64(&magic));
  if (magic != kSessionMagic) {
    return Status::InvalidArgument(path + ": not an LTE session file");
  }
  LTE_RETURN_IF_ERROR(r.ReadU64(&version));
  if (version < kOldestLoadableSessionVersion || version > kSessionVersion) {
    return Status::InvalidArgument(path + ": unsupported LTE session version " +
                                   std::to_string(version));
  }
  LTE_RETURN_IF_ERROR(r.ReadU64(&stamped));
  *fingerprint = stamped;
  return Status::OK();
}

Status ExplorationSession::LoadFromStream(std::istream* in) {
  try {
    return LoadFromStreamImpl(in);
  } catch (const std::exception& e) {
    // The library's error model never throws across API boundaries. The
    // plausibility guards stop corrupted length words before allocation,
    // but a length that is plausible yet beyond this host's memory can
    // still throw bad_alloc — map it to a Status like any other bad file.
    return Status::IoError(std::string("session load: ") + e.what());
  }
}

Status ExplorationSession::LoadFromStreamImpl(std::istream* in) {
  if (!model_->pretrained()) {
    return Status::FailedPrecondition(
        "session load: model has not been trained");
  }
  BinaryReader r(in);
  uint64_t magic = 0;
  uint64_t version = 0;
  uint64_t stamp = 0;
  uint64_t variant_u = 0;
  LTE_RETURN_IF_ERROR(r.ReadU64(&magic));
  if (magic != kSessionMagic) {
    return Status::InvalidArgument("not an LTE session file");
  }
  LTE_RETURN_IF_ERROR(r.ReadU64(&version));
  if (version < kOldestLoadableSessionVersion || version > kSessionVersion) {
    return Status::InvalidArgument("unsupported LTE session version " +
                                   std::to_string(version));
  }
  LTE_RETURN_IF_ERROR(r.ReadU64(&stamp));
  if (stamp != model_->fingerprint()) {
    return Status::FailedPrecondition(
        "session load: saved against model fingerprint " + HexU64(stamp) +
        " but the attached model's fingerprint is " +
        HexU64(model_->fingerprint()) +
        " — restart the exploration against the refreshed model");
  }
  LTE_RETURN_IF_ERROR(r.ReadU64(&variant_u));
  if (variant_u > static_cast<uint64_t>(Variant::kMetaStar)) {
    return Status::IoError("session load: invalid variant");
  }
  const Variant variant = static_cast<Variant>(variant_u);
  int64_t active = 0;
  LTE_RETURN_IF_ERROR(r.ReadI64(&active));
  if (active < 0 || active > model_->num_subspaces()) {
    return Status::IoError("session load: active subspace count out of range");
  }
  if ((variant == Variant::kMeta || variant == Variant::kMetaStar) &&
      active > 0 && !model_->meta_trained()) {
    // Unreachable when the fingerprint matched (meta_trained is part of the
    // hashed bytes); kept as defense in depth.
    return Status::IoError("session load: meta session, non-meta model");
  }
  bool has_rng = false;
  LTE_RETURN_IF_ERROR(r.ReadBool(&has_rng));
  std::optional<Rng> rng;
  if (has_rng) {
    rng.emplace(0);
    LTE_RETURN_IF_ERROR(rng->Load(&r));
  }

  // Decode and validate everything into temporaries; this session's state
  // is only replaced after the whole stream checked out, so a bad file
  // leaves the previous exploration intact.
  std::vector<SubspaceSession> states(
      static_cast<size_t>(model_->num_subspaces()));
  for (int64_t s = 0; s < active; ++s) {
    SubspaceSession& state = states[static_cast<size_t>(s)];
    LTE_RETURN_IF_ERROR(r.ReadDoubleVector(&state.start_labels));
    if (state.start_labels.size() != model_->InitialTuples(s)->size()) {
      return Status::IoError("session load: label count mismatch in subspace " +
                             std::to_string(s));
    }
    uint64_t num_batches = 0;
    LTE_RETURN_IF_ERROR(r.ReadU64(&num_batches));
    if (num_batches > (uint64_t{1} << 32)) {
      return Status::IoError("session load: implausible history length");
    }
    const size_t width = model_->subspace(s)->attribute_indices.size();
    state.history.resize(static_cast<size_t>(num_batches));
    for (LabeledBatch& batch : state.history) {
      LTE_RETURN_IF_ERROR(r.ReadPointSet(&batch.points));
      LTE_RETURN_IF_ERROR(r.ReadDoubleVector(&batch.labels));
      if (batch.points.empty() || batch.points.size() != batch.labels.size()) {
        return Status::IoError(
            "session load: malformed history batch in subspace " +
            std::to_string(s));
      }
      for (const auto& p : batch.points) {
        if (p.size() != width) {
          return Status::IoError(
              "session load: history point width mismatch in subspace " +
              std::to_string(s));
        }
      }
    }
    state.task_model = std::make_unique<TaskModel>();
    LTE_RETURN_IF_ERROR(TaskModel::LoadFrom(&r, state.task_model.get()));
    if (state.task_model->f_tau().in_features() !=
        model_->encoder().ProjectedWidth(
            model_->subspace(s)->attribute_indices)) {
      return Status::IoError(
          "session load: task model width mismatch in subspace " +
          std::to_string(s));
    }
    // Same handshake as StartExploration: warm the UIS-embedding cache so
    // the serving surface is write-free under concurrent scans.
    state.task_model->WarmUisEmbedding();
    if (variant == Variant::kMetaStar) {
      // The FP/FN optimizer is a pure function of the clustering context
      // and the center labels (the first k_s start labels), so it is
      // rebuilt rather than serialized.
      const MetaTaskGenerator& generator = *model_->generator(s);
      const auto k_s = static_cast<size_t>(generator.options().k_s);
      if (state.start_labels.size() < k_s) {
        return Status::IoError(
            "session load: too few center labels in subspace " +
            std::to_string(s));
      }
      const std::vector<double> center_labels(
          state.start_labels.begin(),
          state.start_labels.begin() + static_cast<int64_t>(k_s));
      state.fpfn.emplace(generator.context(), center_labels,
                         model_->options().fpfn);
    }
    if (version >= 2) {
      bool has_policy = false;
      LTE_RETURN_IF_ERROR(r.ReadBool(&has_policy));
      if (has_policy) {
        LTE_RETURN_IF_ERROR(policy::LoadPolicy(&r, &state.policy));
        if (state.policy->stochastic() && !has_rng) {
          // A legitimate save never produces this: installing a stochastic
          // policy requires the session rng, and the rng is never dropped.
          return Status::IoError(
              "session load: stochastic policy without a session rng in "
              "subspace " +
              std::to_string(s));
        }
      }
    }
    if (state.policy == nullptr) {
      // v1 files predate the policy layer: every adapted subspace ran pure
      // uncertainty sampling, so the migration installs exactly that.
      LTE_RETURN_IF_ERROR(
          policy::MakePolicy(policy::PolicyOptions{}, nullptr, &state.policy));
    }
  }
  // A well-formed file ends exactly at the payload boundary; trailing bytes
  // mean the header lied about the shape of what follows.
  char extra = 0;
  in->read(&extra, 1);
  if (in->gcount() != 0) {
    return Status::IoError("session load: trailing bytes after payload");
  }

  states_ = std::move(states);
  active_count_ = active;
  variant_ = variant;
  rng_ = std::move(rng);
  return Status::OK();
}

Status ExplorationSession::StartExploration(
    const std::vector<std::vector<double>>& labels_per_subspace,
    Variant variant, Rng* rng) {
  if (!model_->pretrained()) {
    return Status::FailedPrecondition("session: model has not been trained");
  }
  if (labels_per_subspace.empty() ||
      static_cast<int64_t>(labels_per_subspace.size()) >
          model_->num_subspaces()) {
    return Status::InvalidArgument(
        "session: label sets must cover 1..num_subspaces() subspaces");
  }
  if ((variant == Variant::kMeta || variant == Variant::kMetaStar) &&
      !model_->meta_trained()) {
    return Status::FailedPrecondition(
        "session: meta variant requires a meta-trained model");
  }
  if (rng == nullptr) {
    return Status::InvalidArgument("session: rng must not be null");
  }
  const policy::PolicyOptions& policy_options =
      model_->options().suggest_policy;
  LTE_RETURN_IF_ERROR(policy::ValidatePolicyOptions(policy_options));
  if (policy_options.kind != policy::PolicyKind::kUncertainty &&
      !rng_.has_value()) {
    return Status::FailedPrecondition(
        "session: stochastic suggest policy requires SeedRng — policy draws "
        "are served from (and persisted with) the session-owned stream");
  }
  // Validate every label set before mutating any online state, so a failed
  // call leaves the previous exploration intact.
  for (size_t s = 0; s < labels_per_subspace.size(); ++s) {
    if (labels_per_subspace[s].size() !=
        model_->InitialTuples(static_cast<int64_t>(s))->size()) {
      return Status::InvalidArgument(
          "session: label count mismatch in subspace " + std::to_string(s));
    }
  }
  variant_ = variant;
  active_count_ = static_cast<int64_t>(labels_per_subspace.size());
  states_.resize(static_cast<size_t>(model_->num_subspaces()));

  const ExplorerOptions& options = model_->options();
  // Subspaces adapt independently, so they fan out on the shared pool under
  // the same determinism contract as Pretrain: subspace s draws only from
  // the key-split stream fork_base.Fork(s), and every lane writes its own
  // states_[s] slot, so the adapted models are bit-identical for any
  // num_threads, including 1 — and for any number of sessions adapting
  // concurrently, since a session's lanes never read another session's
  // streams or state.
  Rng fork_base = rng->Fork();
  ThreadPool::Shared().ParallelFor(
      0, active_count_, ResolveThreadCount(num_threads()), [&](int64_t si) {
        const auto s = static_cast<size_t>(si);
        SubspaceSession& state = states_[s];
        Rng sub_rng = fork_base.Fork(static_cast<uint64_t>(si));
        const std::vector<double>& labels = labels_per_subspace[s];
        const MetaTaskGenerator& generator = *model_->generator(si);
        const SubspaceContext& ctx = generator.context();
        const auto k_s = static_cast<size_t>(generator.options().k_s);

        // v_R from the center labels (first k_s entries).
        const std::vector<double> center_labels(labels.begin(),
                                                labels.begin() + k_s);
        const std::vector<double> uis_feature = BuildUisFeature(
            center_labels, ctx.proximity_s, generator.expansion_l());

        // Basic trains the same architecture from scratch; Meta/Meta* adapt
        // the meta-learned initialization (the underlined path of
        // Algorithm 2).
        std::unique_ptr<MetaLearner> basic_learner;
        const MetaLearner* learner = model_->meta_learner(si);
        if (variant == Variant::kBasic) {
          MetaLearnerOptions lopt = options.learner;
          lopt.uis_feature_dim = options.task_gen.k_u;
          lopt.tuple_feature_dim = model_->encoder().ProjectedWidth(
              model_->subspace(si)->attribute_indices);
          lopt.use_memory = false;
          basic_learner = std::make_unique<MetaLearner>(lopt, &sub_rng);
          learner = basic_learner.get();
        }
        state.task_model =
            std::make_unique<TaskModel>(learner->CreateTaskModel(uis_feature));

        const TupleEncoder encode = model_->MakeEncoder(si);
        const std::vector<std::vector<double>>& initial =
            *model_->InitialTuples(si);
        std::vector<std::vector<double>> x;
        x.reserve(initial.size());
        for (const auto& p : initial) x.push_back(encode(p));
        LocallyAdapt(state.task_model.get(), x, labels, options.online_steps,
                     options.online_batch_size, options.online_lr, &sub_rng);
        // Adaptation is done: warm the cached UIS embedding so the serving
        // surface below is write-free and safe to fan out across threads.
        state.task_model->WarmUisEmbedding();

        if (variant == Variant::kMetaStar) {
          state.fpfn.emplace(ctx, center_labels, options.fpfn);
        } else {
          state.fpfn.reset();
        }
        // Install the model's default exploration policy. Seed material
        // (bootstrap bag seeds) comes from the lane's own keyed split —
        // kPolicySeedKey keeps it off the adaptation stream Fork(si), so the
        // adapted models (and the caller's rng position) are byte-identical
        // to a policy-less run, and identical at any thread count.
        Rng policy_rng =
            fork_base.Fork(kPolicySeedKey ^ static_cast<uint64_t>(si));
        const Status policy_status =
            policy::MakePolicy(policy_options, &policy_rng, &state.policy);
        LTE_CHECK_MSG(policy_status.ok(),
                      "policy construction failed after validation");
        // Persistence/audit record: the labels that produced this adapted
        // state (Save serializes them; Load rebuilds the FP/FN optimizer
        // from the center prefix).
        state.start_labels = labels;
        state.history.clear();
      });
  // Clear stale online state beyond the active prefix.
  for (size_t s = labels_per_subspace.size(); s < states_.size(); ++s) {
    states_[s].task_model.reset();
    states_[s].fpfn.reset();
    states_[s].policy.reset();
    states_[s].start_labels.clear();
    states_[s].history.clear();
  }
  return Status::OK();
}

Status ExplorationSession::ConfigureSuggestPolicy(
    int64_t s, const policy::PolicyOptions& options) {
  if (s < 0 || s >= active_count_ ||
      states_[static_cast<size_t>(s)].task_model == nullptr) {
    return Status::FailedPrecondition(
        "session: ConfigureSuggestPolicy on subspace " + std::to_string(s) +
        " before StartExploration adapted it");
  }
  LTE_RETURN_IF_ERROR(policy::ValidatePolicyOptions(options));
  if (options.kind != policy::PolicyKind::kUncertainty && !rng_.has_value()) {
    return Status::FailedPrecondition(
        "session: stochastic suggest policy requires SeedRng — policy draws "
        "are served from (and persisted with) the session-owned stream");
  }
  // Construction seed material (bootstrap bag seeds) comes from the session
  // rng: a sequential draw on the single-writer surface, persisted with the
  // session, so a reconfigure is reproducible run-to-run and the installed
  // policy survives Save/Load bit-identically.
  return policy::MakePolicy(options, rng_.has_value() ? &*rng_ : nullptr,
                            &states_[static_cast<size_t>(s)].policy);
}

const policy::SuggestPolicy* ExplorationSession::suggest_policy(
    int64_t s) const {
  if (s < 0 || static_cast<size_t>(s) >= states_.size()) return nullptr;
  return states_[static_cast<size_t>(s)].policy.get();
}

Status ExplorationSession::SuggestTuples(
    int64_t s, const std::vector<std::vector<double>>& candidates, int64_t k,
    std::vector<int64_t>* suggested) {
  if (suggested == nullptr) {
    return Status::InvalidArgument("session: suggested must not be null");
  }
  suggested->clear();
  if (s < 0 || s >= active_count_ ||
      states_[static_cast<size_t>(s)].task_model == nullptr) {
    return Status::FailedPrecondition(
        "session: SuggestTuples on subspace " + std::to_string(s) +
        " before StartExploration adapted it");
  }
  if (k < 0) {
    return Status::InvalidArgument("session: k must be >= 0");
  }
  SubspaceSession& state = states_[static_cast<size_t>(s)];
  LTE_CHECK(state.policy != nullptr);
  if (state.policy->stochastic() && !rng_.has_value()) {
    return Status::FailedPrecondition(
        "session: subspace " + std::to_string(s) +
        " runs a stochastic suggest policy but the session has no rng — "
        "call SeedRng first");
  }
  const std::vector<int64_t>& attrs = model_->subspace(s)->attribute_indices;
  const size_t width = attrs.size();
  for (const auto& point : candidates) {
    if (point.size() != width) {
      return Status::InvalidArgument(
          "session: candidate width mismatch in subspace " +
          std::to_string(s));
    }
  }
  const auto n = static_cast<int64_t>(candidates.size());
  if (n == 0) return Status::OK();

  // Columnar scoring: transpose the candidates into per-attribute arrays so
  // the same gather + batch-encode + batch-forward kernels as the scan path
  // score the whole batch in one pass (bit-identical to the per-point
  // encode/predict they replaced), into reused scratch — no per-call
  // allocations once capacities reach steady state.
  SuggestScratch& sc = suggest_scratch_;
  sc.transposed.resize(width * candidates.size());
  for (size_t j = 0; j < width; ++j) {
    double* col = sc.transposed.data() + j * candidates.size();
    for (size_t i = 0; i < candidates.size(); ++i) col[i] = candidates[i][j];
  }
  sc.columns.clear();
  for (size_t j = 0; j < width; ++j) {
    sc.columns.emplace_back(
        std::span<const double>(sc.transposed.data() + j * candidates.size(),
                                candidates.size()),
        std::span<const data::ColumnSlice>{}, nullptr);
  }
  // The "table" is the candidate batch itself, so the gather selects every
  // row — but the encode still wants real attribute ids for its per-column
  // models, while our views are positional. EncodeGatheredInto indexes
  // `columns` positionally and `attrs` by value, which is exactly this
  // split: columns[j] holds the values of attribute attrs[j].
  sc.rows.resize(candidates.size());
  std::iota(sc.rows.begin(), sc.rows.end(), int64_t{0});
  model_->encoder().EncodeGatheredInto(sc.columns, attrs, sc.rows,
                                       &sc.encoded);
  sc.probs.resize(candidates.size());
  state.task_model->PredictProbabilityBatch(
      sc.encoded, n, &sc.batch, sc.probs,
      scan_path_ == ScanPath::kColumnarSimd ? nn::BatchKernel::kSimd
                                            : nn::BatchKernel::kScalar);
  state.policy->Select(sc.probs, k, rng_.has_value() ? &*rng_ : nullptr,
                       suggested);
  return Status::OK();
}

Status ExplorationSession::ContinueExploration(
    int64_t s, const std::vector<std::vector<double>>& points,
    const std::vector<double>& labels, Rng* rng) {
  if (s < 0 || s >= active_count_) {
    return Status::InvalidArgument("session: subspace not active");
  }
  if (rng == nullptr) {
    return Status::InvalidArgument("session: rng must not be null");
  }
  if (points.empty() || points.size() != labels.size()) {
    return Status::InvalidArgument("session: points/labels mismatch");
  }
  const size_t width = model_->subspace(s)->attribute_indices.size();
  for (const auto& p : points) {
    if (p.size() != width) {
      return Status::InvalidArgument(
          "session: point width mismatch in subspace " + std::to_string(s));
    }
  }
  SubspaceSession& state = states_[static_cast<size_t>(s)];
  if (state.task_model == nullptr) {
    return Status::FailedPrecondition(
        "session: ContinueExploration before StartExploration");
  }
  const ExplorerOptions& options = model_->options();
  const TupleEncoder encode = model_->MakeEncoder(s);
  std::vector<std::vector<double>> x;
  x.reserve(points.size());
  for (const auto& p : points) x.push_back(encode(p));
  LocallyAdapt(state.task_model.get(), x, labels, options.online_steps,
               options.online_batch_size, options.online_lr, rng);
  state.task_model->WarmUisEmbedding();
  state.history.push_back(LabeledBatch{points, labels});
  return Status::OK();
}

Status ExplorationSession::ValidateServing(const data::Table& table) const {
  if (active_count_ <= 0) {
    return Status::FailedPrecondition(
        "session: RetrieveMatches/PredictRows before StartExploration");
  }
  for (int64_t s = 0; s < active_count_; ++s) {
    for (int64_t a : model_->subspace(s)->attribute_indices) {
      if (a >= table.num_columns()) {
        return Status::InvalidArgument(
            "session: table is narrower than subspace " + std::to_string(s) +
            " (needs attribute " + std::to_string(a) + ")");
      }
    }
  }
  return Status::OK();
}

double ExplorationSession::PredictSubspaceUnchecked(
    int64_t s, const std::vector<double>& point, Scratch* scratch) const {
  const SubspaceSession& state = states_[static_cast<size_t>(s)];
  model_->encoder().EncodeProjectedInto(
      point, model_->subspace(s)->attribute_indices, &scratch->encoded);
  double pred =
      state.task_model->PredictProbability(scratch->encoded) > 0.5 ? 1.0 : 0.0;
  if (state.fpfn.has_value()) pred = state.fpfn->Refine(point, pred);
  return pred;
}

double ExplorationSession::PredictRowInTable(const data::Table& table,
                                             int64_t r,
                                             Scratch* scratch) const {
  for (int64_t s = 0; s < active_count_; ++s) {
    table.RowProjectedInto(r, model_->subspace(s)->attribute_indices,
                           &scratch->point);
    if (PredictSubspaceUnchecked(s, scratch->point, scratch) < 0.5) return 0.0;
  }
  return 1.0;
}

void ExplorationSession::PredictBlockColumnar(const data::Table& table,
                                              std::span<const int64_t> rows,
                                              BlockScratch* scratch,
                                              double* out) const {
  const auto n = static_cast<int64_t>(rows.size());
  scratch->alive.assign(rows.size(), 1);
  scratch->survivors.resize(rows.size());
  for (int64_t k = 0; k < n; ++k) scratch->survivors[static_cast<size_t>(k)] = k;

  for (int64_t s = 0; s < active_count_ && !scratch->survivors.empty(); ++s) {
    const std::vector<int64_t>& attrs = model_->subspace(s)->attribute_indices;
    scratch->columns.clear();
    for (int64_t a : attrs) scratch->columns.push_back(table.View(a));
    // Gather + encode only the rows every earlier subspace accepted, one
    // subspace at a time over the whole block.
    const auto count = static_cast<int64_t>(scratch->survivors.size());
    scratch->gather.resize(scratch->survivors.size());
    for (int64_t i = 0; i < count; ++i) {
      scratch->gather[static_cast<size_t>(i)] =
          rows[static_cast<size_t>(scratch->survivors[static_cast<size_t>(i)])];
    }
    model_->encoder().EncodeGatheredInto(scratch->columns, attrs,
                                         scratch->gather, &scratch->encoded);
    scratch->probs.resize(scratch->survivors.size());
    ScoreEncodedBlock(s, scratch->encoded, scratch->gather, scratch->columns,
                      &scratch->batch, &scratch->point, scratch->probs);
    scratch->next.clear();
    for (int64_t i = 0; i < count; ++i) {
      const int64_t k = scratch->survivors[static_cast<size_t>(i)];
      if (scratch->probs[static_cast<size_t>(i)] < 0.5) {
        scratch->alive[static_cast<size_t>(k)] = 0;
      } else {
        scratch->next.push_back(k);
      }
    }
    std::swap(scratch->survivors, scratch->next);
  }
  for (int64_t k = 0; k < n; ++k) {
    out[k] = scratch->alive[static_cast<size_t>(k)] != 0 ? 1.0 : 0.0;
  }
}

void ExplorationSession::ScoreEncodedBlock(
    int64_t s, std::span<const double> encoded, std::span<const int64_t> rows,
    const std::vector<data::ColumnView>& columns,
    TaskModel::BatchScratch* batch_scratch, std::vector<double>* point_scratch,
    std::span<double> out) const {
  LTE_CHECK(s >= 0 && s < active_count_);
  const SubspaceSession& state = states_[static_cast<size_t>(s)];
  LTE_CHECK(state.task_model != nullptr);
  const auto count = static_cast<int64_t>(rows.size());
  LTE_CHECK(static_cast<int64_t>(out.size()) == count);
  const nn::BatchKernel kernel = scan_path_ == ScanPath::kColumnarSimd
                                     ? nn::BatchKernel::kSimd
                                     : nn::BatchKernel::kScalar;
  state.task_model->PredictProbabilityBatch(encoded, count, batch_scratch,
                                            out, kernel);
  for (int64_t i = 0; i < count; ++i) {
    double pred = out[static_cast<size_t>(i)] > 0.5 ? 1.0 : 0.0;
    if (state.fpfn.has_value()) {
      point_scratch->clear();
      const int64_t r = rows[static_cast<size_t>(i)];
      for (const data::ColumnView& col : columns) {
        point_scratch->push_back(col[r]);
      }
      pred = state.fpfn->Refine(*point_scratch, pred);
    }
    out[static_cast<size_t>(i)] = pred;
  }
}

std::optional<double> ExplorationSession::PredictSubspace(
    int64_t s, const std::vector<double>& point) const {
  if (s < 0 || s >= model_->num_subspaces() ||
      static_cast<size_t>(s) >= states_.size() ||
      states_[static_cast<size_t>(s)].task_model == nullptr) {
    return std::nullopt;
  }
  if (point.size() != model_->subspace(s)->attribute_indices.size()) {
    return std::nullopt;
  }
  Scratch scratch;
  return PredictSubspaceUnchecked(s, point, &scratch);
}

std::optional<double> ExplorationSession::PredictRow(
    const std::vector<double>& row) const {
  if (active_count_ <= 0) return std::nullopt;
  Scratch scratch;
  for (int64_t s = 0; s < active_count_; ++s) {
    scratch.point.clear();
    for (int64_t a : model_->subspace(s)->attribute_indices) {
      if (static_cast<size_t>(a) >= row.size()) return std::nullopt;
      scratch.point.push_back(row[static_cast<size_t>(a)]);
    }
    if (PredictSubspaceUnchecked(s, scratch.point, &scratch) < 0.5) {
      return 0.0;
    }
  }
  return 1.0;
}

Status ExplorationSession::PredictRows(const data::Table& table,
                                       std::span<const int64_t> rows,
                                       std::vector<double>* predictions) const {
  if (predictions == nullptr) {
    return Status::InvalidArgument("session: predictions must not be null");
  }
  LTE_RETURN_IF_ERROR(ValidateServing(table));
  for (int64_t r : rows) {
    if (r < 0 || r >= table.num_rows()) {
      return Status::OutOfRange("session: row index " + std::to_string(r) +
                                " outside [0, " +
                                std::to_string(table.num_rows()) + ")");
    }
  }
  const auto n = static_cast<int64_t>(rows.size());
  predictions->assign(rows.size(), 0.0);
  // Contiguous lanes writing disjoint per-index slots: bit-identical output
  // at any thread count. Every row's prediction is computed independently
  // (blocks only group work), so the columnar and row paths agree byte for
  // byte regardless of where shard or block boundaries fall. One scratch per
  // shard keeps the hot loop free of per-row allocations.
  ThreadPool::Shared().ParallelForShards(
      0, n, ResolveThreadCount(num_threads()), [&](int64_t lo, int64_t hi) {
        if (scan_path_ != ScanPath::kRowAtATime) {
          BlockScratch scratch;
          for (int64_t b = lo; b < hi; b += kScanChunkRows) {
            const int64_t e = std::min(b + kScanChunkRows, hi);
            PredictBlockColumnar(
                table, rows.subspan(static_cast<size_t>(b),
                                    static_cast<size_t>(e - b)),
                &scratch, predictions->data() + b);
          }
        } else {
          Scratch scratch;
          for (int64_t i = lo; i < hi; ++i) {
            (*predictions)[static_cast<size_t>(i)] = PredictRowInTable(
                table, rows[static_cast<size_t>(i)], &scratch);
          }
        }
      });
  return Status::OK();
}

Status ExplorationSession::RetrieveMatches(const data::Table& table,
                                           int64_t limit,
                                           std::vector<int64_t>* matches) const {
  if (matches == nullptr) {
    return Status::InvalidArgument("session: matches must not be null");
  }
  matches->clear();
  LTE_RETURN_IF_ERROR(ValidateServing(table));
  if (limit == 0) return Status::OK();  // Only limit < 0 means "unlimited".
  const int64_t num_rows = table.num_rows();
  if (num_rows == 0) return Status::OK();

  // Order-preserving chunked scan. Chunk boundaries depend only on the row
  // count, lanes collect match indices into per-chunk slots, and the slots
  // are concatenated in chunk order afterwards, so the result is
  // bit-identical at any thread count. With a positive limit, lanes stop
  // claiming chunks once the matches found so far already cover it: chunks
  // are claimed in increasing order, so every match found lies in a chunk
  // that precedes all unclaimed ones — the first `limit` matches in row
  // order are already in hand, and later chunks cannot contribute earlier
  // rows. Slots are recorded lazily per *claimed* chunk (not pre-sized to
  // O(num_chunks)), so a small-limit probe on a huge table allocates in
  // proportion to the handful of chunks it actually scans.
  const int64_t num_chunks = (num_rows + kScanChunkRows - 1) / kScanChunkRows;
  std::vector<std::pair<int64_t, std::vector<int64_t>>> claimed;
  std::mutex claimed_mu;
  std::atomic<int64_t> found{0};
  ThreadPool::Shared().ParallelForEarlyExit(
      num_chunks, ResolveThreadCount(num_threads()),
      [&](int64_t c) {
        const int64_t lo = c * kScanChunkRows;
        const int64_t hi = std::min(lo + kScanChunkRows, num_rows);
        std::vector<int64_t> slot;
        if (scan_path_ != ScanPath::kRowAtATime) {
          BlockScratch scratch;
          std::vector<int64_t> block(static_cast<size_t>(hi - lo));
          std::iota(block.begin(), block.end(), lo);
          std::vector<double> preds(block.size());
          PredictBlockColumnar(table, block, &scratch, preds.data());
          for (size_t i = 0; i < block.size(); ++i) {
            if (preds[i] > 0.5) slot.push_back(block[i]);
          }
        } else {
          Scratch scratch;
          for (int64_t r = lo; r < hi; ++r) {
            if (PredictRowInTable(table, r, &scratch) > 0.5) slot.push_back(r);
          }
        }
        if (!slot.empty()) {
          found.fetch_add(static_cast<int64_t>(slot.size()),
                          std::memory_order_relaxed);
          const std::lock_guard<std::mutex> lock(claimed_mu);
          claimed.emplace_back(c, std::move(slot));
        }
      },
      [&] {
        return limit > 0 && found.load(std::memory_order_relaxed) >= limit;
      });
  // Which chunks beyond the cancellation point still ran is
  // timing-dependent, but the executed set is always a contiguous prefix
  // containing the first `limit` matches; sorting the claimed slots by chunk
  // index and truncating reproduces the row-order result exactly.
  std::sort(claimed.begin(), claimed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [chunk, slot] : claimed) {
    for (int64_t r : slot) {
      matches->push_back(r);
      if (limit > 0 && static_cast<int64_t>(matches->size()) >= limit) {
        return Status::OK();
      }
    }
  }
  return Status::OK();
}

}  // namespace lte::core
