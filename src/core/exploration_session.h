#ifndef LTE_CORE_EXPLORATION_SESSION_H_
#define LTE_CORE_EXPLORATION_SESSION_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/exploration_model.h"
#include "core/meta_learner.h"
#include "core/optimizer_fpfn.h"
#include "data/table.h"
#include "policy/suggest_policy.h"

namespace lte::core {

/// Rows per serving scan block: the unit RetrieveMatches lanes claim, the
/// block size of the columnar fast path, and the granularity the coalesced
/// serving front-end (src/serving/) groups cross-session work at. One value
/// keeps a claimed chunk equal to one encode/score round everywhere.
inline constexpr int64_t kServingBlockRows = 1024;

/// Which LTE variant answers predictions (paper Section VIII-A).
enum class Variant {
  /// Basic UIS classifier: same architecture, randomly initialized, trained
  /// online only.
  kBasic,
  /// Meta: the classifier fast-adapts from meta-learned initialization
  /// parameters (and memories).
  kMeta,
  /// Meta*: Meta plus the FP/FN prediction optimizer.
  kMetaStar,
};

/// Which implementation backs the chunked table scans (`PredictRows`,
/// `RetrieveMatches`). kColumnar and kRowAtATime produce byte-identical
/// output; the row path is retained as the validation/benchmark reference
/// for the columnar fast path (see DESIGN.md §2b "Columnar serving path").
/// kColumnarSimd trades the byte-identity contract for throughput: it is
/// gated by statistical parity instead (same match sets up to an epsilon of
/// threshold-boundary rows), and stays opt-in.
enum class ScanPath {
  /// Default: evaluate one subspace at a time over 1024-row blocks gathered
  /// straight from column views, with a survivor bitmask carrying the
  /// conjunctive early-reject between subspaces. Scalar double kernels —
  /// byte-identical to kRowAtATime.
  kColumnar,
  /// Reference: materialize each row and loop subspaces per row.
  kRowAtATime,
  /// Opt-in throughput mode: the same block/survivor scan, but the batch
  /// forward runs the float32 vector kernels (nn::BatchKernel::kSimd).
  /// Deterministic — same inputs, same bits, at any thread count and in any
  /// batch composition — but parity-gated rather than byte-identical to the
  /// scalar paths: a row whose probability sits within float error of the
  /// 0.5 threshold may flip. tests/columnar_scan_test.cc bounds the
  /// mismatch fraction; bench_columnar_scan measures and gates it in CI.
  kColumnarSimd,
};

/// One user's online exploration against a shared `ExplorationModel` (paper
/// Figure 2, online phase): the fast-adapted per-subspace task models, the
/// Meta* FP/FN optimizers, and the full query surface.
///
/// A session is cheap — it owns only the adapted classifiers, never the
/// clustering contexts or meta-learners — so a serving process holds one
/// model and hands each concurrent user their own session:
///
///   auto model = std::make_shared<ExplorationModel>(options);
///   Rng rng(seed);
///   model->Pretrain(table, subspaces, /*train_meta=*/true, &rng);
///   // Per user, possibly on its own thread:
///   ExplorationSession session(model);
///   session.StartExploration(user_labels, Variant::kMetaStar, &user_rng);
///   session.RetrieveMatches(table, /*limit=*/-1, &matches);
///
/// Thread-safety: distinct sessions over one model are fully independent —
/// any number may run concurrently (adaptation included) with no external
/// locking; their parallel scans share the process-wide ThreadPool safely.
/// One session is single-writer: the mutating calls (StartExploration,
/// ContinueExploration) must not race with each other or with this session's
/// queries; the const query surface is safe to call concurrently with
/// itself. Results are bit-identical at any thread count and for any number
/// of co-resident sessions — a session computes exactly what a standalone
/// run with the same seeds computes.
///
/// The session shares ownership of its model (an epoch snapshot handle, in
/// registry terms — see serving/model_registry.h), so the model can never
/// die under a live session: when a background refresh publishes a new
/// epoch, sessions pinned to the old one finish on it RCU-style and the old
/// model is reclaimed when the last handle drops. The model must not be
/// mutated (Pretrain/Load) while any session is attached.
///
/// Misuse-error contract (same as the `Explorer` facade): the query surface
/// never aborts on out-of-range or premature calls. Predictions return
/// std::nullopt, and the batch/retrieval entry points return a Status — an
/// LTE_CHECK abort is reachable only through genuine internal invariant
/// violations, not through caller mistakes.
class ExplorationSession {
 public:
  /// Attaches to `model` (shared with any number of other sessions; must be
  /// non-null). The session co-owns the model, pinning the snapshot it was
  /// created against for its whole lifetime. `num_threads` overrides the
  /// model's `options().num_threads` for this session's fan-outs when >= 0;
  /// the default -1 inherits the model's knob. Multi-user hosts typically
  /// run each session with num_threads = 1 and let the sessions themselves
  /// be the parallelism.
  explicit ExplorationSession(std::shared_ptr<const ExplorationModel> model,
                              int64_t num_threads = -1);

  ExplorationSession(const ExplorationSession&) = delete;
  ExplorationSession& operator=(const ExplorationSession&) = delete;

  const ExplorationModel& model() const { return *model_; }

  /// The pinned snapshot handle, e.g. for attaching further sessions to
  /// exactly this session's model epoch.
  const std::shared_ptr<const ExplorationModel>& model_handle() const {
    return model_;
  }

  /// Pool lanes used by this session's fan-outs (adaptation and scans),
  /// after resolving the -1 inherit sentinel against the model's options.
  int64_t num_threads() const;

  /// Online phase: `labels_per_subspace[s][i]` is the 0/1 label of
  /// (*model().InitialTuples(s))[i]. Fast-adapts a task model per subspace
  /// (and builds the FP/FN optimizer for Meta*). Providing labels for only
  /// the first k subspaces explores a k-subspace prefix of the interest
  /// space (the dimensionality sweeps of the paper's Figures 4 and 7(c) use
  /// this); PredictRow then conjoins only those subspaces. Fails if the
  /// model is not pretrained, label shapes mismatch, or a meta variant is
  /// requested without meta-training.
  ///
  /// Subspaces adapt in parallel lanes capped by `num_threads()`; subspace s
  /// trains on its own `Rng::Fork(s)` stream split from one `rng->Fork()`
  /// base, so the adapted models are bit-identical at any thread count (rng
  /// itself advances by exactly one draw).
  Status StartExploration(
      const std::vector<std::vector<double>>& labels_per_subspace,
      Variant variant, Rng* rng);

  /// Number of subspaces adapted by the last StartExploration.
  int64_t active_subspaces() const { return active_count_; }

  /// Active-learning hook (paper Section III-B "Iterative exploration"):
  /// scores `candidates` (raw subspace-`s` points) through the columnar
  /// batch encode + batch forward, then lets the subspace's exploration
  /// policy (default: uncertainty sampling — probability closest to 0.5)
  /// pick the `k` tuples most worth asking the user about next; their
  /// indices land in `*suggested` in selection order (fewer when
  /// `candidates` is smaller than `k`). Stochastic policies draw from the
  /// session-owned rng (SeedRng), advancing it — which is why this is a
  /// mutating call under the single-writer contract, like
  /// ContinueExploration. Fails if StartExploration has not adapted subspace
  /// `s`, `k` is negative, a candidate's width differs from the subspace's,
  /// or the policy is stochastic and the session has no rng.
  Status SuggestTuples(int64_t s,
                       const std::vector<std::vector<double>>& candidates,
                       int64_t k, std::vector<int64_t>* suggested);

  /// Replaces subspace `s`'s exploration policy (DESIGN.md §2f). The
  /// subspace must have been adapted by StartExploration (which installs the
  /// model's `options().suggest_policy` default). Construction seed material
  /// for policies with randomized state (bootstrap bag seeds) is drawn from
  /// the session rng, so a stochastic policy requires SeedRng first
  /// (FailedPrecondition otherwise). The installed policy — parameters and
  /// mutable state — persists with the session (checkpoint format v2).
  Status ConfigureSuggestPolicy(int64_t s,
                                const policy::PolicyOptions& options);

  /// Subspace `s`'s installed policy, or nullptr when `s` is out of range or
  /// not adapted.
  const policy::SuggestPolicy* suggest_policy(int64_t s) const;

  /// Iterative exploration (paper Section III-B, "Other IDE Modules"):
  /// feeds additional labelled tuples of subspace `s` (raw subspace
  /// coordinates) through the same local-update path, continuing from the
  /// current adapted state. Use after StartExploration, e.g. from an active-
  /// learning loop that keeps querying the user.
  Status ContinueExploration(int64_t s,
                             const std::vector<std::vector<double>>& points,
                             const std::vector<double>& labels, Rng* rng);

  /// 1.0 when the adapted models consider the subspace point interesting,
  /// 0.0 when not; std::nullopt when `s` is out of range, subspace `s` has
  /// not been adapted by StartExploration, or `point`'s width differs from
  /// the subspace's.
  std::optional<double> PredictSubspace(int64_t s,
                                        const std::vector<double>& point) const;

  /// Conjunctive UIR membership of a full-width table row (paper Section
  /// III-A: R^u = ∧ R_i): 1.0 / 0.0, or std::nullopt before
  /// StartExploration or when `row` is too narrow for an active subspace.
  std::optional<double> PredictRow(const std::vector<double>& row) const;

  /// Batch counterpart of PredictRow and the primitive RetrieveMatches and
  /// the bench harness build on: evaluates the conjunctive membership of the
  /// given `rows` of `table` and stores one 0.0/1.0 per index (in input
  /// order) in `*predictions`. Rows are scanned in parallel lanes capped by
  /// `num_threads()`, each lane writing disjoint per-index slots, so the
  /// output is bit-identical at any thread count. Fails before
  /// StartExploration, when `table` is narrower than an active subspace's
  /// attributes, or on an out-of-range row index.
  Status PredictRows(const data::Table& table, std::span<const int64_t> rows,
                     std::vector<double>* predictions) const;

  /// Final retrieval (paper Section III-B): scans `table` and stores the row
  /// indices the adapted classifiers predict interesting — in ascending row
  /// order — in `*matches`. `limit < 0` scans everything, `limit == 0`
  /// returns an empty result, and `limit > 0` truncates to the first `limit`
  /// matches in row order. The scan is chunked across parallel lanes capped
  /// by `num_threads()`; lanes collect into per-chunk slots that are
  /// concatenated in row order, and with a positive `limit` lanes stop
  /// claiming chunks once the matches already found cover it, so the result
  /// is bit-identical at any thread count. Fails before StartExploration or
  /// when `table` is narrower than an active subspace's attributes.
  Status RetrieveMatches(const data::Table& table, int64_t limit,
                         std::vector<int64_t>* matches) const;

  /// Drops all adapted state (task models, FP/FN optimizers, and the
  /// labeled-tuple history), returning the session to its pre-
  /// StartExploration state. The model and the session rng are untouched.
  void Reset();

  /// Installs (or re-seeds) the session-owned rng. A session whose online
  /// updates draw from this stream — pass `session_rng()` to
  /// StartExploration/ContinueExploration — carries its full random state
  /// through Save/Load, so a restored session continues draw-for-draw where
  /// the saved one stopped (the byte-identical-reconnect contract the
  /// SessionManager churn tests enforce). Optional: callers managing their
  /// own Rng lifetimes can keep passing an external generator, at the price
  /// of persisting it themselves.
  void SeedRng(uint64_t seed);

  /// The session-owned rng, or nullptr when SeedRng has never run (and no
  /// Load restored one). Mutating like StartExploration: do not draw from it
  /// concurrently with this session's other calls.
  Rng* session_rng();

  /// Session persistence: writes this user's full online state — variant,
  /// per-subspace adapted `TaskModel`s, the labeled-tuple history
  /// (StartExploration labels plus every ContinueExploration batch), and the
  /// session rng if seeded — stamped with the owning model's content
  /// fingerprint (`ExplorationModel::fingerprint()`). The Meta* FP/FN
  /// optimizer is not serialized: it is a pure function of the clustering
  /// context and the initial center labels, so Load rebuilds it from the
  /// recorded history. Requires the model to be pretrained; an unstarted
  /// session saves fine (and restores to an unstarted session).
  Status Save(const std::string& path) const;

  /// Stream counterpart of Save (same format, no file handling).
  Status SaveToStream(std::ostream* out) const;

  /// Restores a session saved by `Save` into this session, replacing all
  /// online state. The file must have been saved against a model whose
  /// fingerprint matches this session's model — a stale session meeting a
  /// refreshed model returns FailedPrecondition (with both fingerprints in
  /// the message), never a crash. Any truncated or corrupted stream returns
  /// an error Status and leaves this session's previous state fully intact:
  /// the decode validates everything into temporaries and commits only on
  /// success. Host knobs (num_threads override, scan path) are not part of
  /// the file and keep their current values.
  Status Load(const std::string& path);

  /// Stream counterpart of Load (same format, no file handling).
  Status LoadFromStream(std::istream* in);

  /// Reads only the header of a session checkpoint file and stores the model
  /// fingerprint it was stamped with — the cheap "would Load even be
  /// possible?" probe checkpoint GC sweeps route on. Fails (leaving
  /// `*fingerprint` untouched) when the file is missing, truncated, or not a
  /// session checkpoint.
  static Status PeekCheckpointFingerprint(const std::string& path,
                                          uint64_t* fingerprint);

  /// FailedPrecondition before StartExploration; InvalidArgument when
  /// `table` is narrower than an active subspace's attribute indices. The
  /// scan entry points call this internally; the coalesced serving front-end
  /// (src/serving/) calls it at submission time so a misuse error surfaces
  /// on the submitting thread instead of inside a shared batch pass.
  Status ValidateServing(const data::Table& table) const;

  /// Low-level serving hook for the coalesced front-end: scores
  /// `rows.size()` pre-encoded subspace-`s` tuples and writes the final
  /// 0.0/1.0 verdicts (threshold, then the Meta* FP/FN refinement) into
  /// `out`. `encoded` holds the tuples row-major at the subspace's projected
  /// width — exactly what `TabularEncoder::EncodeGatheredInto` produces —
  /// with `rows[k]` the table row id of tuple k and `columns` the subspace's
  /// attribute column views (read only by the FP/FN refiner's raw-point
  /// gather). Scoring uses this session's scan-path kernel (kColumnarSimd →
  /// the float32 vector kernels, anything else → the scalar reference), so
  /// the coalesced front-end automatically honors each subscriber's own
  /// throughput choice inside one shared pass. `out[k]` is bit-identical to
  /// the same-kernel standalone verdict for that tuple — and, on the scalar
  /// kernel, to the row path's — because the encode and the batch forward
  /// are both row-independent: it does not matter which other rows — or
  /// which other sessions' rows — share the block (DESIGN.md §2c).
  ///
  /// Preconditions (LTE_CHECKed, not Status-mapped — callers are the scan
  /// paths and the scheduler, which validate via ValidateServing first):
  /// StartExploration has adapted subspace `s`, and the spans agree in size.
  /// Thread-safe under the same contract as the const query surface.
  void ScoreEncodedBlock(int64_t s, std::span<const double> encoded,
                         std::span<const int64_t> rows,
                         const std::vector<data::ColumnView>& columns,
                         TaskModel::BatchScratch* batch_scratch,
                         std::vector<double>* point_scratch,
                         std::span<double> out) const;

  /// Scan implementation behind PredictRows/RetrieveMatches (and the kernel
  /// SuggestTuples scores candidates with). The default kColumnar is the
  /// fast path; kRowAtATime keeps the reference implementation reachable for
  /// validation and benchmarking — those two are byte-identical
  /// (test-enforced), so flipping between them — like num_threads — changes
  /// scheduling and speed, never output. kColumnarSimd is the opt-in
  /// throughput mode: deterministic but parity-gated, not byte-identical
  /// (see the ScanPath doc). Single-writer like the mutating calls: do not
  /// flip it concurrently with this session's queries.
  ScanPath scan_path() const { return scan_path_; }
  void set_scan_path(ScanPath path) { scan_path_ = path; }

 private:
  /// One ContinueExploration call's labelled tuples (raw subspace
  /// coordinates), recorded for persistence and audit/replay.
  struct LabeledBatch {
    std::vector<std::vector<double>> points;
    std::vector<double> labels;
  };

  /// Per-subspace online state: the fast-adapted classifier, the Meta*
  /// prediction optimizer, and the labeled-tuple history that produced them
  /// (start_labels over the model's InitialTuples, then one LabeledBatch per
  /// ContinueExploration call — unbounded but tiny: a handful of doubles per
  /// user interaction).
  struct SubspaceSession {
    std::unique_ptr<TaskModel> task_model;
    std::optional<FpFnOptimizer> fpfn;
    /// Acquisition strategy for SuggestTuples; non-null whenever task_model
    /// is (installed by StartExploration, Load, or ConfigureSuggestPolicy).
    std::unique_ptr<policy::SuggestPolicy> policy;
    std::vector<double> start_labels;
    std::vector<LabeledBatch> history;
  };

  /// Reusable per-lane buffers for the hot prediction path: the raw
  /// projected point and its encoding. Capacity reaches a steady state after
  /// the first row, so chunked scans allocate nothing per row.
  struct Scratch {
    std::vector<double> point;
    std::vector<double> encoded;
  };

  /// Reusable per-lane buffers for the columnar fast path. All capacities
  /// reach a steady state after the first block.
  struct BlockScratch {
    std::vector<uint8_t> alive;      // Survivor bitmask over the block.
    std::vector<int64_t> survivors;  // Block positions still positive.
    std::vector<int64_t> next;       // Survivors after the current subspace.
    std::vector<int64_t> gather;     // Table row ids of the survivors.
    std::vector<data::ColumnView> columns;  // Active subspace's views.
    std::vector<double> encoded;     // Survivors x width scratch matrix.
    std::vector<double> probs;       // One probability per survivor.
    std::vector<double> point;       // Raw point for the FP/FN refiner.
    TaskModel::BatchScratch batch;
  };

  /// Reusable buffers for SuggestTuples: the candidate transpose (so the
  /// columnar batch encode can gather straight from contiguous per-attribute
  /// arrays), the encoded matrix, and the shared probability vector the
  /// policy selects from. Capacities reach a steady state after the first
  /// call, so an active-learning loop allocates nothing per round.
  struct SuggestScratch {
    std::vector<double> transposed;  // width x n, one column per attribute.
    std::vector<data::ColumnView> columns;
    std::vector<int64_t> rows;       // iota(n): candidate i is "row" i.
    std::vector<double> encoded;
    std::vector<double> probs;
    TaskModel::BatchScratch batch;
  };

  /// Columnar evaluation of one block of row indices (any order, at most
  /// ~1024 at a time for cache-sized scratch): for each active subspace in
  /// conjunction order, gathers the subspace's attribute columns for the
  /// rows still predicted positive, encodes them into the reusable scratch
  /// matrix, scores the whole block through the batch forward, and clears
  /// rejected rows from the survivor bitmask so later subspaces only score
  /// surviving rows — the same early-reject the row-at-a-time loop performs
  /// per row. Writes `rows.size()` 0.0/1.0 values to `out`, bit-identical to
  /// PredictRowInTable per row (callers validated via ValidateServing).
  void PredictBlockColumnar(const data::Table& table,
                            std::span<const int64_t> rows,
                            BlockScratch* scratch, double* out) const;

  /// LoadFromStream body; the wrapper maps any escaping allocation failure
  /// (e.g. a plausible-but-huge corrupted length) to an IoError Status.
  Status LoadFromStreamImpl(std::istream* in);

  /// PredictSubspace body minus the misuse checks (callers validated).
  double PredictSubspaceUnchecked(int64_t s, const std::vector<double>& point,
                                  Scratch* scratch) const;

  /// Conjunctive membership of row `r` of `table`; equals
  /// *PredictRow(table.Row(r)) once ValidateServing(table) passed.
  double PredictRowInTable(const data::Table& table, int64_t r,
                           Scratch* scratch) const;

  std::shared_ptr<const ExplorationModel> model_;
  int64_t num_threads_override_;
  std::vector<SubspaceSession> states_;
  int64_t active_count_ = 0;
  Variant variant_ = Variant::kBasic;
  ScanPath scan_path_ = ScanPath::kColumnar;
  std::optional<Rng> rng_;  // Session-owned stream; persisted when present.
  SuggestScratch suggest_scratch_;  // Mutating-call scratch (single-writer).
};

}  // namespace lte::core

#endif  // LTE_CORE_EXPLORATION_SESSION_H_
