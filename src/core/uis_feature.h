#ifndef LTE_CORE_UIS_FEATURE_H_
#define LTE_CORE_UIS_FEATURE_H_

#include <cstdint>
#include <vector>

#include "cluster/proximity.h"

namespace lte::core {

/// Builds the UIS feature vector v_R ∈ R^{k_u} (paper Section VI-A).
///
/// `center_labels` holds the 0/1 interest labels of the k_s cluster centers
/// of C^s (the tuples a user labels during initial exploration, or the
/// simulated labels of a meta-task's support set). For every center labelled
/// 1, its `expansion_l` nearest C^u centers (via the k_s x k_u proximity
/// matrix P^s) switch the corresponding bits of the k_u-length vector to 1 —
/// the heuristic expansion that densifies the otherwise sparse k_s-bit
/// vector.
std::vector<double> BuildUisFeature(const std::vector<double>& center_labels,
                                    const cluster::ProximityMatrix& proximity_s,
                                    int64_t expansion_l);

}  // namespace lte::core

#endif  // LTE_CORE_UIS_FEATURE_H_
