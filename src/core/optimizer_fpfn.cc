#include "core/optimizer_fpfn.h"

#include <algorithm>

#include "common/check.h"

namespace lte::core {
namespace {

// Union of convex hulls over each positive center's `n_expand`-NN group.
geom::Region BuildSubregion(const SubspaceContext& context,
                            const std::vector<double>& center_labels,
                            int64_t n_expand) {
  geom::Region region;
  for (int64_t s = 0; s < context.proximity_s.num_rows(); ++s) {
    if (center_labels[static_cast<size_t>(s)] <= 0.5) continue;
    std::vector<std::vector<double>> group;
    group.push_back(context.centers_s[static_cast<size_t>(s)]);
    for (int64_t u : context.proximity_s.NearestCols(s, n_expand)) {
      group.push_back(context.centers_u[static_cast<size_t>(u)]);
    }
    region.AddPart(geom::ConvexRegion::HullOf(group));
  }
  return region;
}

}  // namespace

FpFnOptimizer::FpFnOptimizer(const SubspaceContext& context,
                             const std::vector<double>& center_labels,
                             const FpFnOptions& options) {
  LTE_CHECK_EQ(static_cast<int64_t>(center_labels.size()),
               context.proximity_s.num_rows());
  const auto k_u = static_cast<double>(context.proximity_u.num_rows());
  const int64_t n_sup =
      std::max<int64_t>(1, static_cast<int64_t>(options.outer_fraction * k_u));
  const int64_t n_sub =
      std::max<int64_t>(1, static_cast<int64_t>(options.inner_fraction * k_u));
  for (double label : center_labels) {
    if (label > 0.5) {
      has_positive_ = true;
      break;
    }
  }
  outer_ = BuildSubregion(context, center_labels, n_sup);
  inner_ = BuildSubregion(context, center_labels, n_sub);
}

double FpFnOptimizer::Refine(const std::vector<double>& point,
                             double prediction) const {
  // With no positive labels there is nothing to anchor the subregions on;
  // leave the classifier's verdict untouched.
  if (!has_positive_) return prediction;
  if (prediction > 0.5) {
    // FP repair: a positive prediction outside the outer superset of the
    // UIS must be spurious.
    return outer_.Contains(point) ? 1.0 : 0.0;
  }
  // FN repair: a negative prediction inside the conservative inner subset
  // must be a hole.
  return inner_.Contains(point) ? 1.0 : 0.0;
}

}  // namespace lte::core
