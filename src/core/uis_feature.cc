#include "core/uis_feature.h"

#include "common/check.h"

namespace lte::core {

std::vector<double> BuildUisFeature(
    const std::vector<double>& center_labels,
    const cluster::ProximityMatrix& proximity_s, int64_t expansion_l) {
  LTE_CHECK_EQ(static_cast<int64_t>(center_labels.size()),
               proximity_s.num_rows());
  LTE_CHECK_GT(expansion_l, 0);
  std::vector<double> v(static_cast<size_t>(proximity_s.num_cols()), 0.0);
  for (int64_t s = 0; s < proximity_s.num_rows(); ++s) {
    if (center_labels[static_cast<size_t>(s)] <= 0.5) continue;
    for (int64_t u : proximity_s.NearestCols(s, expansion_l)) {
      v[static_cast<size_t>(u)] = 1.0;
    }
  }
  return v;
}

}  // namespace lte::core
