#ifndef LTE_CORE_EXPLORER_H_
#define LTE_CORE_EXPLORER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/exploration_model.h"
#include "core/exploration_session.h"
#include "data/subspace.h"
#include "data/table.h"
#include "preprocess/tabular_encoder.h"

namespace lte::core {

/// The LTE framework: offline meta-learning over the meta-subspaces of a
/// table, then few-shot online exploration (paper Figure 2).
///
/// `Explorer` is a thin facade bundling one `ExplorationModel` (the shared,
/// immutable offline artifacts) with one default `ExplorationSession` (this
/// user's online state) — the natural shape for a single-user program:
///
///   Explorer ex(options);
///   ex.Pretrain(table, subspaces, /*train_meta=*/true, &rng);
///   // Collect user labels for *ex.InitialTuples(s) in every subspace s...
///   ex.StartExploration(labels, Variant::kMetaStar, &rng);
///   bool interesting = ex.PredictRow(row).value_or(0.0) > 0.5;
///
/// Multi-user serving skips the facade: build one shared
/// `ExplorationModel` and attach one `ExplorationSession` per concurrent
/// user — or attach extra sessions to `ex.model_handle()` alongside the
/// facade's own. See exploration_session.h for the per-class thread-safety
/// contract and serving/model_registry.h for epoch-versioned hosting.
///
/// Misuse-error contract: the query surface never aborts on out-of-range or
/// premature calls. Accessors taking a subspace index return nullptr,
/// predictions return std::nullopt, and the batch/retrieval entry points
/// return a Status — an LTE_CHECK abort is reachable only through genuine
/// internal invariant violations, not through caller mistakes.
class Explorer {
 public:
  explicit Explorer(ExplorerOptions options)
      : model_(std::make_shared<ExplorationModel>(options)),
        session_(model_) {}

  // The facade's single-user semantics (Pretrain/LoadModel mutate the model
  // in place) do not compose with copies sharing one model.
  Explorer(const Explorer&) = delete;
  Explorer& operator=(const Explorer&) = delete;

  /// The shared offline artifacts.
  const ExplorationModel& model() const { return *model_; }

  /// Snapshot handle on the facade's model: attach additional
  /// ExplorationSessions to it to serve more users against the facade's
  /// training. The handle pins the model alive independently of the facade.
  std::shared_ptr<const ExplorationModel> model_handle() const {
    return model_;
  }

  /// The facade's own online session.
  const ExplorationSession& session() const { return session_; }
  ExplorationSession* mutable_session() { return &session_; }

  /// Offline phase: fits the tabular encoder, runs the clustering step per
  /// subspace, selects the initial tuples, and — when `train_meta` is set —
  /// generates meta-tasks and meta-trains one meta-learner per subspace.
  /// `train_meta=false` prepares the Basic variant (no pre-training cost).
  /// Drops any previous online state.
  Status Pretrain(const data::Table& table,
                  const std::vector<data::Subspace>& subspaces,
                  bool train_meta, Rng* rng) {
    session_.Reset();
    return model_->Pretrain(table, subspaces, train_meta, rng);
  }

  int64_t num_subspaces() const { return model_->num_subspaces(); }

  /// The `s`-th meta-subspace, or nullptr when `s` is out of
  /// [0, num_subspaces()).
  const data::Subspace* subspace(int64_t s) const {
    return model_->subspace(s);
  }

  /// The tuples of subspace `s` the user labels during initial exploration:
  /// the k_s cluster centers of C^s followed by Δ random tuples, in raw
  /// subspace coordinates. Fixed after Pretrain. Returns nullptr before
  /// Pretrain or when `s` is out of range.
  const std::vector<std::vector<double>>* InitialTuples(int64_t s) const {
    return model_->InitialTuples(s);
  }

  /// Online phase: `labels_per_subspace[s][i]` is the 0/1 label of
  /// (*InitialTuples(s))[i]. Fast-adapts a task model per subspace (and
  /// builds the FP/FN optimizer for Meta*). Providing labels for only the
  /// first k subspaces explores a k-subspace prefix of the interest space
  /// (the dimensionality sweeps of the paper's Figures 4 and 7(c) use this);
  /// PredictRow then conjoins only those subspaces. Fails if Pretrain has
  /// not run, label shapes mismatch, or a meta variant is requested without
  /// meta-training.
  ///
  /// Subspaces adapt in parallel lanes capped by `options().num_threads`;
  /// subspace s trains on its own `Rng::Fork(s)` stream split from one
  /// `rng->Fork()` base, so the adapted models are bit-identical at any
  /// thread count (rng itself advances by exactly one draw).
  Status StartExploration(
      const std::vector<std::vector<double>>& labels_per_subspace,
      Variant variant, Rng* rng) {
    return session_.StartExploration(labels_per_subspace, variant, rng);
  }

  /// Number of subspaces adapted by the last StartExploration.
  int64_t active_subspaces() const { return session_.active_subspaces(); }

  /// Active-learning hook (paper Section III-B "Iterative exploration"):
  /// scores `candidates` (raw subspace-`s` points) through the batch
  /// kernels, then lets the subspace's exploration policy (default:
  /// uncertainty sampling) pick the `k` tuples most worth asking the user
  /// about next; their indices land in `*suggested` in selection order
  /// (fewer when `candidates` is smaller than `k`). Mutating under the
  /// single-writer contract: stochastic policies advance the session rng.
  /// Fails if StartExploration has not adapted subspace `s`, `k` is
  /// negative, a candidate's width differs from the subspace's, or the
  /// policy is stochastic and the session has no rng.
  Status SuggestTuples(int64_t s,
                       const std::vector<std::vector<double>>& candidates,
                       int64_t k, std::vector<int64_t>* suggested) {
    return session_.SuggestTuples(s, candidates, k, suggested);
  }

  /// Replaces subspace `s`'s exploration policy (the default comes from
  /// `options().suggest_policy`). See
  /// `ExplorationSession::ConfigureSuggestPolicy` for the rng and
  /// persistence contract.
  Status ConfigureSuggestPolicy(int64_t s,
                                const policy::PolicyOptions& options) {
    return session_.ConfigureSuggestPolicy(s, options);
  }

  /// Iterative exploration (paper Section III-B, "Other IDE Modules"):
  /// feeds additional labelled tuples of subspace `s` (raw subspace
  /// coordinates) through the same local-update path, continuing from the
  /// current adapted state. Use after StartExploration, e.g. from an active-
  /// learning loop that keeps querying the user.
  Status ContinueExploration(int64_t s,
                             const std::vector<std::vector<double>>& points,
                             const std::vector<double>& labels, Rng* rng) {
    return session_.ContinueExploration(s, points, labels, rng);
  }

  /// 1.0 when the adapted models consider the subspace point interesting,
  /// 0.0 when not; std::nullopt when `s` is out of range, subspace `s` has
  /// not been adapted by StartExploration, or `point`'s width differs from
  /// the subspace's.
  std::optional<double> PredictSubspace(
      int64_t s, const std::vector<double>& point) const {
    return session_.PredictSubspace(s, point);
  }

  /// Conjunctive UIR membership of a full-width table row (paper Section
  /// III-A: R^u = ∧ R_i): 1.0 / 0.0, or std::nullopt before
  /// StartExploration or when `row` is too narrow for an active subspace.
  std::optional<double> PredictRow(const std::vector<double>& row) const {
    return session_.PredictRow(row);
  }

  /// Batch counterpart of PredictRow and the primitive RetrieveMatches and
  /// the bench harness build on: evaluates the conjunctive membership of the
  /// given `rows` of `table` and stores one 0.0/1.0 per index (in input
  /// order) in `*predictions`. Rows are scanned in parallel lanes capped by
  /// `options().num_threads`, each lane writing disjoint per-index slots, so
  /// the output is bit-identical at any thread count. Fails before
  /// StartExploration, when `table` is narrower than an active subspace's
  /// attributes, or on an out-of-range row index.
  Status PredictRows(const data::Table& table, std::span<const int64_t> rows,
                     std::vector<double>* predictions) const {
    return session_.PredictRows(table, rows, predictions);
  }

  /// Final retrieval (paper Section III-B): scans `table` and stores the row
  /// indices the adapted classifiers predict interesting — in ascending row
  /// order — in `*matches`. `limit < 0` scans everything, `limit == 0`
  /// returns an empty result, and `limit > 0` truncates to the first `limit`
  /// matches in row order. The scan is chunked across parallel lanes capped
  /// by `options().num_threads`; lanes collect into per-chunk slots that are
  /// concatenated in row order, and with a positive `limit` lanes stop
  /// claiming chunks once the matches already found cover it, so the result
  /// is bit-identical at any thread count. Fails before StartExploration or
  /// when `table` is narrower than an active subspace's attributes.
  Status RetrieveMatches(const data::Table& table, int64_t limit,
                         std::vector<int64_t>* matches) const {
    return session_.RetrieveMatches(table, limit, matches);
  }

  /// Per-subspace generator (exposes the clustering context), or nullptr
  /// before Pretrain or when `s` is out of range.
  const MetaTaskGenerator* generator(int64_t s) const {
    return model_->generator(s);
  }
  const preprocess::TabularEncoder& encoder() const {
    return model_->encoder();
  }
  const ExplorerOptions& options() const { return model_->options(); }
  bool meta_trained() const { return model_->meta_trained(); }

  /// Pre-training statistics (for the Figure 8(b) cost analysis). Summed
  /// over subspaces, i.e. total work; with num_threads > 1 the subspaces
  /// overlap in time, so wall clock is lower than these totals.
  double task_generation_seconds() const {
    return model_->task_generation_seconds();
  }
  double meta_training_seconds() const {
    return model_->meta_training_seconds();
  }

  /// Model persistence: writes the full pre-trained state (options, tabular
  /// encoder, per-subspace clustering contexts, initial tuples, and trained
  /// meta-learners) to `path`. Offline training and online serving can then
  /// live in separate processes. Requires Pretrain to have run. The format
  /// is `ExplorationModel`'s — files round-trip freely between the facade
  /// and a bare model.
  Status Save(const std::string& path) const { return model_->Save(path); }

  /// Restores a pre-trained model saved by Save (or by
  /// `ExplorationModel::Save`), replacing this instance's state. Online
  /// exploration (StartExploration/PredictRow) is available immediately; no
  /// re-clustering or re-training happens. The threading knob
  /// (`num_threads`) is a property of the serving host, not of the model, so
  /// the constructed value survives the load. Drops any previous online
  /// state.
  Status LoadModel(const std::string& path) {
    session_.Reset();
    return model_->Load(path);
  }

  /// Session persistence for the facade's own session: writes this user's
  /// online state (adapted task models, labeled-tuple history, session rng)
  /// stamped with `model().fingerprint()`. See
  /// `ExplorationSession::Save/Load` for the format and failure contract —
  /// in particular, a session saved against one model refuses to load
  /// against a facade whose model was retrained or replaced
  /// (FailedPrecondition, both fingerprints in the message).
  Status SaveSession(const std::string& path) const {
    return session_.Save(path);
  }
  Status LoadSession(const std::string& path) { return session_.Load(path); }

 private:
  std::shared_ptr<ExplorationModel> model_;
  ExplorationSession session_;
};

}  // namespace lte::core

#endif  // LTE_CORE_EXPLORER_H_
