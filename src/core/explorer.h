#ifndef LTE_CORE_EXPLORER_H_
#define LTE_CORE_EXPLORER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/meta_learner.h"
#include "core/meta_task.h"
#include "core/meta_trainer.h"
#include "core/optimizer_fpfn.h"
#include "data/subspace.h"
#include "data/table.h"
#include "preprocess/tabular_encoder.h"

namespace lte::core {

/// Which LTE variant answers predictions (paper Section VIII-A).
enum class Variant {
  /// Basic UIS classifier: same architecture, randomly initialized, trained
  /// online only.
  kBasic,
  /// Meta: the classifier fast-adapts from meta-learned initialization
  /// parameters (and memories).
  kMeta,
  /// Meta*: Meta plus the FP/FN prediction optimizer.
  kMetaStar,
};

/// End-to-end configuration of the LTE framework.
struct ExplorerOptions {
  preprocess::EncoderOptions encoder;
  MetaTaskGenOptions task_gen;
  MetaLearnerOptions learner;  // tuple_feature_dim is filled per subspace.
  MetaTrainerOptions trainer;
  FpFnOptions fpfn;
  /// |T^M|: meta-tasks generated per meta-subspace (paper default 15000;
  /// the library defaults smaller — see DESIGN.md).
  int64_t num_meta_tasks = 200;
  /// Pool lanes for every Explorer fan-out, offline and online: per-subspace
  /// task generation + encoding + meta-training in `Pretrain`, per-subspace
  /// fast adaptation in `StartExploration`, and the chunked table scans of
  /// `PredictRows`/`RetrieveMatches` all share this one knob on the
  /// process-wide ThreadPool. The library-wide convention applies: 0 = auto
  /// (one lane per hardware thread), 1 = the exact sequential path, N caps
  /// the lanes (matching `MetaTrainerOptions`/`KMeansOptions`). Parallel
  /// training reads key-split `Rng::Fork(subspace_index)` streams and scans
  /// collect into per-chunk slots concatenated in row order, so every result
  /// is bit-identical at any thread count (see rng.h for the split scheme).
  int64_t num_threads = 0;
  /// Online fast-adaptation schedule. A larger learning rate than the
  /// offline ρ is preferred online (paper Fig. 8(d) discussion).
  int64_t online_steps = 30;
  int64_t online_batch_size = 16;
  double online_lr = 0.1;
};

/// The LTE framework: offline meta-learning over the meta-subspaces of a
/// table, then few-shot online exploration (paper Figure 2).
///
/// Usage:
///   Explorer ex(options);
///   ex.Pretrain(table, subspaces, /*train_meta=*/true, &rng);
///   // Collect user labels for *ex.InitialTuples(s) in every subspace s...
///   ex.StartExploration(labels, Variant::kMetaStar, &rng);
///   bool interesting = ex.PredictRow(row) > 0.5;
///
/// Misuse-error contract: the query surface never aborts on out-of-range or
/// premature calls. Accessors taking a subspace index return nullptr,
/// predictions return std::nullopt, and the batch/retrieval entry points
/// return a Status — an LTE_CHECK abort is reachable only through genuine
/// internal invariant violations, not through caller mistakes.
class Explorer {
 public:
  explicit Explorer(ExplorerOptions options) : options_(options) {}

  /// Offline phase: fits the tabular encoder, runs the clustering step per
  /// subspace, selects the initial tuples, and — when `train_meta` is set —
  /// generates meta-tasks and meta-trains one meta-learner per subspace.
  /// `train_meta=false` prepares the Basic variant (no pre-training cost).
  Status Pretrain(const data::Table& table,
                  const std::vector<data::Subspace>& subspaces,
                  bool train_meta, Rng* rng);

  int64_t num_subspaces() const {
    return static_cast<int64_t>(subspaces_.size());
  }

  /// The `s`-th meta-subspace, or nullptr when `s` is out of
  /// [0, num_subspaces()).
  const data::Subspace* subspace(int64_t s) const;

  /// The tuples of subspace `s` the user labels during initial exploration:
  /// the k_s cluster centers of C^s followed by Δ random tuples, in raw
  /// subspace coordinates. Fixed after Pretrain. Returns nullptr before
  /// Pretrain or when `s` is out of range.
  const std::vector<std::vector<double>>* InitialTuples(int64_t s) const;

  /// Online phase: `labels_per_subspace[s][i]` is the 0/1 label of
  /// (*InitialTuples(s))[i]. Fast-adapts a task model per subspace (and
  /// builds the FP/FN optimizer for Meta*). Providing labels for only the
  /// first k subspaces explores a k-subspace prefix of the interest space
  /// (the dimensionality sweeps of the paper's Figures 4 and 7(c) use this);
  /// PredictRow then conjoins only those subspaces. Fails if Pretrain has
  /// not run, label shapes mismatch, or a meta variant is requested without
  /// meta-training.
  ///
  /// Subspaces adapt in parallel lanes capped by `options().num_threads`;
  /// subspace s trains on its own `Rng::Fork(s)` stream split from one
  /// `rng->Fork()` base, so the adapted models are bit-identical at any
  /// thread count (rng itself advances by exactly one draw).
  Status StartExploration(
      const std::vector<std::vector<double>>& labels_per_subspace,
      Variant variant, Rng* rng);

  /// Number of subspaces adapted by the last StartExploration.
  int64_t active_subspaces() const { return active_count_; }

  /// Active-learning hook (paper Section III-B "Iterative exploration"):
  /// ranks `candidates` (raw subspace-`s` points) by the adapted
  /// classifier's uncertainty — probability closest to 0.5 — and stores the
  /// indices of the `k` tuples most worth asking the user about next in
  /// `*suggested` (fewer when `candidates` is smaller than `k`). Fails if
  /// StartExploration has not adapted subspace `s`, `k` is negative, or a
  /// candidate's width differs from the subspace's.
  Status SuggestTuples(int64_t s,
                       const std::vector<std::vector<double>>& candidates,
                       int64_t k, std::vector<int64_t>* suggested) const;

  /// Iterative exploration (paper Section III-B, "Other IDE Modules"):
  /// feeds additional labelled tuples of subspace `s` (raw subspace
  /// coordinates) through the same local-update path, continuing from the
  /// current adapted state. Use after StartExploration, e.g. from an active-
  /// learning loop that keeps querying the user.
  Status ContinueExploration(int64_t s,
                             const std::vector<std::vector<double>>& points,
                             const std::vector<double>& labels, Rng* rng);

  /// 1.0 when the adapted models consider the subspace point interesting,
  /// 0.0 when not; std::nullopt when `s` is out of range, subspace `s` has
  /// not been adapted by StartExploration, or `point`'s width differs from
  /// the subspace's.
  std::optional<double> PredictSubspace(int64_t s,
                                        const std::vector<double>& point) const;

  /// Conjunctive UIR membership of a full-width table row (paper Section
  /// III-A: R^u = ∧ R_i): 1.0 / 0.0, or std::nullopt before
  /// StartExploration or when `row` is too narrow for an active subspace.
  std::optional<double> PredictRow(const std::vector<double>& row) const;

  /// Batch counterpart of PredictRow and the primitive RetrieveMatches and
  /// the bench harness build on: evaluates the conjunctive membership of the
  /// given `rows` of `table` and stores one 0.0/1.0 per index (in input
  /// order) in `*predictions`. Rows are scanned in parallel lanes capped by
  /// `options().num_threads`, each lane writing disjoint per-index slots, so
  /// the output is bit-identical at any thread count. Fails before
  /// StartExploration, when `table` is narrower than an active subspace's
  /// attributes, or on an out-of-range row index.
  Status PredictRows(const data::Table& table, std::span<const int64_t> rows,
                     std::vector<double>* predictions) const;

  /// Final retrieval (paper Section III-B): scans `table` and stores the row
  /// indices the adapted classifiers predict interesting — in ascending row
  /// order — in `*matches`. `limit < 0` scans everything, `limit == 0`
  /// returns an empty result, and `limit > 0` truncates to the first `limit`
  /// matches in row order. The scan is chunked across parallel lanes capped
  /// by `options().num_threads`; lanes collect into per-chunk slots that are
  /// concatenated in row order, and with a positive `limit` lanes stop
  /// claiming chunks once the matches already found cover it, so the result
  /// is bit-identical at any thread count. Fails before StartExploration or
  /// when `table` is narrower than an active subspace's attributes.
  Status RetrieveMatches(const data::Table& table, int64_t limit,
                         std::vector<int64_t>* matches) const;

  /// Per-subspace generator (exposes the clustering context), or nullptr
  /// before Pretrain or when `s` is out of range.
  const MetaTaskGenerator* generator(int64_t s) const;
  const preprocess::TabularEncoder& encoder() const { return encoder_; }
  const ExplorerOptions& options() const { return options_; }
  bool meta_trained() const { return meta_trained_; }

  /// Pre-training statistics (for the Figure 8(b) cost analysis). Summed
  /// over subspaces, i.e. total work; with num_threads > 1 the subspaces
  /// overlap in time, so wall clock is lower than these totals.
  double task_generation_seconds() const { return task_generation_seconds_; }
  double meta_training_seconds() const { return meta_training_seconds_; }

  /// Model persistence: writes the full pre-trained state (options, tabular
  /// encoder, per-subspace clustering contexts, initial tuples, and trained
  /// meta-learners) to `path`. Offline training and online serving can then
  /// live in separate processes. Requires Pretrain to have run.
  Status Save(const std::string& path) const;

  /// Restores a pre-trained Explorer saved by Save, replacing this
  /// instance's state. Online exploration (StartExploration/PredictRow) is
  /// available immediately; no re-clustering or re-training happens. The
  /// threading knob (`num_threads`) is a property of the serving host, not
  /// of the model, so the constructed value survives the load.
  Status LoadModel(const std::string& path);

 private:
  struct SubspaceState {
    MetaTaskGenerator generator{MetaTaskGenOptions{}};
    std::vector<std::vector<double>> initial_tuples;
    std::unique_ptr<MetaLearner> meta_learner;
    // Online state.
    std::unique_ptr<TaskModel> task_model;
    std::optional<FpFnOptimizer> fpfn;
  };

  TupleEncoder MakeEncoder(int64_t s) const;

  /// FailedPrecondition before StartExploration; InvalidArgument when
  /// `table` is narrower than an active subspace's attribute indices.
  Status ValidateServing(const data::Table& table) const;

  /// PredictSubspace body minus the misuse checks (callers validated).
  double PredictSubspaceUnchecked(int64_t s,
                                  const std::vector<double>& point) const;

  /// Conjunctive membership of row `r` of `table`; equals
  /// *PredictRow(table.Row(r)) once ValidateServing(table) passed.
  double PredictRowInTable(const data::Table& table, int64_t r) const;

  ExplorerOptions options_;
  preprocess::TabularEncoder encoder_;
  std::vector<data::Subspace> subspaces_;
  std::vector<SubspaceState> states_;
  bool pretrained_ = false;
  bool meta_trained_ = false;
  int64_t active_count_ = 0;
  Variant variant_ = Variant::kBasic;
  double task_generation_seconds_ = 0.0;
  double meta_training_seconds_ = 0.0;
};

}  // namespace lte::core

#endif  // LTE_CORE_EXPLORER_H_
