#include "core/query_synthesis.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "common/math_util.h"

namespace lte::core {
namespace {

// Formats a bound with enough precision for a usable SQL literal.
std::string FormatBound(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

}  // namespace

bool SynthesizedQuery::Matches(const std::vector<double>& row) const {
  for (const SubspaceClause& clause : clauses) {
    if (clause.always_true) continue;
    bool any_box = false;
    for (const BoxPredicate& box : clause.boxes) {
      bool in = true;
      for (size_t i = 0; i < clause.attributes.size(); ++i) {
        const double v =
            row[static_cast<size_t>(clause.attributes[i])];
        if (v < box.lower[i] || v > box.upper[i]) {
          in = false;
          break;
        }
      }
      if (in) {
        any_box = true;
        break;
      }
    }
    if (!any_box) return false;
  }
  return true;
}

std::string SynthesizedQuery::ToSql(
    const std::string& table_name,
    const std::vector<std::string>& attribute_names,
    const preprocess::MinMaxNormalizer* denormalizer) const {
  std::ostringstream sql;
  sql << "SELECT * FROM " << table_name;
  std::vector<std::string> clause_strings;
  for (const SubspaceClause& clause : clauses) {
    if (clause.always_true) continue;
    if (clause.boxes.empty()) {
      clause_strings.push_back("FALSE");
      continue;
    }
    std::vector<std::string> box_strings;
    for (const BoxPredicate& box : clause.boxes) {
      std::vector<std::string> conds;
      for (size_t i = 0; i < clause.attributes.size(); ++i) {
        const int64_t attr = clause.attributes[i];
        LTE_CHECK_LT(static_cast<size_t>(attr), attribute_names.size());
        double lo = box.lower[i];
        double hi = box.upper[i];
        if (denormalizer != nullptr) {
          lo = denormalizer->Inverse(attr, lo);
          hi = denormalizer->Inverse(attr, hi);
        }
        conds.push_back(attribute_names[static_cast<size_t>(attr)] +
                        " BETWEEN " + FormatBound(lo) + " AND " +
                        FormatBound(hi));
      }
      std::string joined = conds.front();
      for (size_t i = 1; i < conds.size(); ++i) joined += " AND " + conds[i];
      box_strings.push_back("(" + joined + ")");
    }
    std::string disjunction = box_strings.front();
    for (size_t i = 1; i < box_strings.size(); ++i) {
      disjunction += " OR " + box_strings[i];
    }
    clause_strings.push_back("(" + disjunction + ")");
  }
  if (clause_strings.empty()) return sql.str();
  sql << " WHERE " << clause_strings.front();
  for (size_t i = 1; i < clause_strings.size(); ++i) {
    sql << " AND " << clause_strings[i];
  }
  return sql.str();
}

Status SynthesizeQuery(const ExplorationSession& session,
                       const QuerySynthesisOptions& options,
                       SynthesizedQuery* query) {
  if (session.active_subspaces() == 0) {
    return Status::FailedPrecondition(
        "query synthesis: StartExploration has not run");
  }
  const ExplorationModel& model = session.model();
  SynthesizedQuery out;
  for (int64_t s = 0; s < session.active_subspaces(); ++s) {
    const data::Subspace* subspace = model.subspace(s);
    const MetaTaskGenerator* generator = model.generator(s);
    if (subspace == nullptr || generator == nullptr) {
      return Status::Internal("query synthesis: active subspace " +
                              std::to_string(s) + " has no state");
    }
    SubspaceClause clause;
    clause.attributes = subspace->attribute_indices;
    const auto dim = clause.attributes.size();

    // Label the clustering sample with the adapted classifier.
    const std::vector<std::vector<double>>& points =
        generator->context().sample_points;
    std::vector<double> labels;
    labels.reserve(points.size());
    int64_t positives = 0;
    for (const auto& p : points) {
      const std::optional<double> pred = session.PredictSubspace(s, p);
      if (!pred.has_value()) {
        return Status::Internal("query synthesis: prediction unavailable in "
                                "active subspace " + std::to_string(s));
      }
      const double y = *pred;
      positives += y > 0.5 ? 1 : 0;
      labels.push_back(y);
    }
    if (positives == 0) {
      // Clause stays with zero boxes: matches nothing.
      out.clauses.push_back(std::move(clause));
      continue;
    }
    if (positives == static_cast<int64_t>(points.size())) {
      clause.always_true = true;
      out.clauses.push_back(std::move(clause));
      continue;
    }

    // Distill into boxes via CART positive leaves.
    tree::DecisionTree cart(options.tree);
    LTE_RETURN_IF_ERROR(cart.Train(points, labels));
    std::vector<tree::DecisionTree::PositivePath> paths =
        cart.ExtractPositivePaths();
    std::sort(paths.begin(), paths.end(),
              [](const auto& a, const auto& b) { return a.support > b.support; });
    if (static_cast<int64_t>(paths.size()) > options.max_boxes_per_subspace) {
      paths.resize(static_cast<size_t>(options.max_boxes_per_subspace));
    }

    // Data range per dimension, to clip the trees' infinite bounds.
    std::vector<double> data_lo(dim, std::numeric_limits<double>::max());
    std::vector<double> data_hi(dim, std::numeric_limits<double>::lowest());
    for (const auto& p : points) {
      for (size_t i = 0; i < dim; ++i) {
        data_lo[i] = std::min(data_lo[i], p[i]);
        data_hi[i] = std::max(data_hi[i], p[i]);
      }
    }
    for (const auto& path : paths) {
      BoxPredicate box;
      for (size_t i = 0; i < dim; ++i) {
        box.lower.push_back(std::isinf(path.lower[i]) ? data_lo[i]
                                                      : path.lower[i]);
        box.upper.push_back(std::isinf(path.upper[i]) ? data_hi[i]
                                                      : path.upper[i]);
      }
      clause.boxes.push_back(std::move(box));
    }
    out.clauses.push_back(std::move(clause));
  }
  *query = std::move(out);
  return Status::OK();
}

Status SynthesizeQuery(const Explorer& explorer,
                       const QuerySynthesisOptions& options,
                       SynthesizedQuery* query) {
  return SynthesizeQuery(explorer.session(), options, query);
}

}  // namespace lte::core
