#ifndef LTE_CORE_META_LEARNER_H_
#define LTE_CORE_META_LEARNER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/binary_io.h"
#include "common/rng.h"
#include "nn/matrix.h"
#include "nn/mlp.h"

namespace lte::core {

/// Architecture and memory configuration of the UIS classifier
/// (paper Section VI-A/VI-B).
struct MetaLearnerOptions {
  /// k_u: length of the UIS feature vector v_R.
  int64_t uis_feature_dim = 100;
  /// N_r: length of the encoded tuple representation v_tau. Must be set.
  int64_t tuple_feature_dim = 0;
  /// N_e: embedding size shared by f_R and f_tau (paper default 100; the
  /// library defaults smaller for CPU-friendly benchmarks).
  int64_t embedding_size = 32;
  /// Hidden layers of the three blocks ({} = single linear layer).
  std::vector<int64_t> uis_hidden = {};
  std::vector<int64_t> tuple_hidden = {};
  std::vector<int64_t> clf_hidden = {32};
  /// Enables the memory-augmented optimization (UIS-feature memory M_R/M_vR
  /// and embedding-conversion memory M_CP). When disabled the classifier is
  /// plain MAML: [emb_R, emb_tau] feeds f_clf directly.
  bool use_memory = true;
  /// m: number of implicit modes stored by each memory.
  int64_t num_memory_modes = 6;
  /// σ: how much the task-wise bias ω_R adjusts φ_R (Eq. 6).
  double sigma = 0.1;
};

class MetaLearner;

/// Task-wise (local) parameters θ = {θ_R, θ_τ, θ_clf} plus the retrieved
/// conversion matrix M_cp, initialized from the meta-learned globals for one
/// task (Eq. 6, 10, 11) and then trained on the task's support set.
class TaskModel {
 public:
  /// One SGD micro-step's worth of accumulated gradients: runs forward and
  /// backward over the batch, adds gradients into the block accumulators,
  /// and returns the mean BCE loss. Call ApplyAccumulated() to step.
  double AccumulateBatch(const std::vector<std::vector<double>>& tuples,
                         const std::vector<double>& labels);

  /// Applies the accumulated gradients with learning rate `lr` (Eq. 12) and
  /// clears them. When `max_grad_norm` > 0 the joint gradient (all blocks
  /// plus M_cp) is rescaled to that L2 norm if it exceeds it — few-shot
  /// adaptation starts from a well-trained initialization whose early
  /// gradients can be violent; clipping keeps the first steps from
  /// overshooting into a saturated all-negative/all-positive regime.
  void ApplyAccumulated(double lr, double max_grad_norm = 0.0);

  void ZeroGrad();

  /// Classifier output before the sigmoid for one encoded tuple.
  ///
  /// Thread-safety: the first call after a parameter update lazily refreshes
  /// the cached UIS embedding (a benign-looking but real write under const).
  /// Call WarmUisEmbedding() once after the last update before fanning
  /// predictions out across threads; with a warm cache all const methods are
  /// safe to call concurrently.
  double Logit(const std::vector<double>& tuple) const;

  /// P(interesting) for one encoded tuple. Same thread-safety contract as
  /// Logit.
  double PredictProbability(const std::vector<double>& tuple) const;

  /// Reusable buffers for PredictProbabilityBatch. Capacities reach a steady
  /// state after the first block, so batched scoring allocates nothing per
  /// call.
  struct BatchScratch {
    nn::Mlp::BatchScratch mlp;
    std::vector<double> emb_tau;   // count x N_e tuple embeddings.
    std::vector<double> clf_in;    // count x f_clf input width.
    std::vector<double> logits;    // count x 1.
    std::vector<double> mcp_left;  // N_e: left half of M_cp applied to emb_R.
    std::vector<double> clf1_left; // f_clf layer-1 prefix over emb_R (kBasic).
    std::vector<float> fxt;        // kSimd: transposed emb_tau (M_cp stage).
    std::vector<float> fyt;        // kSimd: transposed M_cp outputs.
    std::vector<float> finit;      // kSimd: float seeds from mcp_left.
  };

  /// Block counterpart of PredictProbability for the columnar serving path:
  /// `tuples` holds `count` row-major encoded tuples of f_tau's input width
  /// each; writes P(interesting) for tuple n into `out[n]`. With the default
  /// kScalar kernel each probability is bit-identical to PredictProbability
  /// on that tuple — the batch runs the same operation sequence per row (the
  /// constant left half of the M_cp · [emb_R; emb_tau] product is evaluated
  /// once per block, which is exactly the per-row accumulation prefix, so
  /// the sum is unchanged). With kSimd every stage — f_tau, the M_cp
  /// right-half product, f_clf — runs through the float32 vector kernels
  /// instead: statistically equal, parity-gated, deterministic (see
  /// nn::BatchKernel). Same thread-safety contract as Logit.
  void PredictProbabilityBatch(
      std::span<const double> tuples, int64_t count, BatchScratch* scratch,
      std::span<double> out,
      nn::BatchKernel kernel = nn::BatchKernel::kScalar) const;

  /// Eagerly refreshes the cached UIS embedding emb_R so that subsequent
  /// const predictions perform no writes at all — the required handshake
  /// between adaptation (single-threaded) and serving (parallel scans).
  void WarmUisEmbedding();

  /// Mean BCE loss over a labelled set (no gradient accumulation).
  double EvaluateLoss(const std::vector<std::vector<double>>& tuples,
                      const std::vector<double>& labels) const;

  const std::vector<double>& attention() const { return attention_; }
  const std::vector<double>& uis_feature() const { return uis_feature_; }
  const nn::Mlp& f_r() const { return f_r_; }
  const nn::Mlp& f_tau() const { return f_tau_; }
  const nn::Mlp& f_clf() const { return f_clf_; }

  /// Mutable block access for custom adaptation schemes (invalidates the
  /// cached UIS embedding where needed).
  nn::Mlp* mutable_f_r() {
    emb_r_valid_ = false;
    return &f_r_;
  }
  nn::Mlp* mutable_f_tau() { return &f_tau_; }
  nn::Mlp* mutable_f_clf() { return &f_clf_; }
  const nn::Matrix& m_cp() const { return m_cp_; }
  const nn::Matrix& grad_m_cp() const { return grad_m_cp_; }

  /// Gradient of θ_R accumulated over every ApplyAccumulated() call so far
  /// (used by the M_R memory update, Eq. 15).
  const std::vector<double>& support_grad_r() const { return support_grad_r_; }

  /// Serialization (session persistence): the adapted parameters θ, the
  /// retrieved M_cp, v_R, the attention, and the accumulated θ_R support
  /// gradient. Per-step gradient accumulators are *not* written — every
  /// adaptation step ends with ApplyAccumulated → ZeroGrad, so a task model
  /// at rest has all-zero accumulators and LoadFrom recreates them fresh.
  void Save(BinaryWriter* writer) const;

  /// Reconstructs a task model from a stream written by Save, validating
  /// block shapes against each other so a corrupted stream surfaces as an
  /// error Status instead of a malformed model. The UIS-embedding cache
  /// starts cold — call WarmUisEmbedding() before fanning out predictions.
  static Status LoadFrom(BinaryReader* reader, TaskModel* out);

 private:
  friend class MetaLearner;

  // Forward pass for one tuple given a precomputed emb_R; fills caches for
  // the backward pass when requested.
  double ForwardLogit(const std::vector<double>& emb_r,
                      const std::vector<double>& tuple,
                      nn::Mlp::Cache* tau_cache, nn::Mlp::Cache* clf_cache,
                      std::vector<double>* concat,
                      std::vector<double>* conv) const;

  bool use_memory_ = false;
  std::vector<double> uis_feature_;
  std::vector<double> attention_;
  nn::Mlp f_r_;
  nn::Mlp f_tau_;
  nn::Mlp f_clf_;
  nn::Matrix m_cp_;       // N_e x 2N_e (only when use_memory_).
  nn::Matrix grad_m_cp_;  // Accumulator matching m_cp_.
  std::vector<double> support_grad_r_;

  // emb_R depends only on v_R and θ_R; cache it between parameter updates.
  mutable bool emb_r_valid_ = false;
  mutable std::vector<double> emb_r_cache_;
};

/// The meta-learner C^M_φ: global initialization parameters
/// φ = {φ_R, φ_τ, φ_clf} plus the two memories of Section VI-B.
///
/// `CreateTaskModel` instantiates the task-wise classifier
/// (θ_R = φ_R − σ·ω_R with ω_R = a_R^T M_R; θ_τ = φ_τ; θ_clf = φ_clf;
/// M_cp = a_R^T M_CP), which the caller adapts on labelled tuples — the
/// meta-trainer offline, the explorer online.
class MetaLearner {
 public:
  MetaLearner(MetaLearnerOptions options, Rng* rng);

  const MetaLearnerOptions& options() const { return options_; }

  /// Attention a_R over the m memory modes: softmax of cosine similarities
  /// between v_R and the rows of M_vR (Eq. 7). All-uniform when memories are
  /// disabled.
  std::vector<double> Attention(const std::vector<double>& uis_feature) const;

  /// Instantiates the task-wise classifier for a task with feature v_R.
  TaskModel CreateTaskModel(const std::vector<double>& uis_feature) const;

  /// Global parameter access for the meta-trainer's one-step global update
  /// (Eq. 13).
  nn::Mlp* mutable_phi_r() { return &phi_r_; }
  nn::Mlp* mutable_phi_tau() { return &phi_tau_; }
  nn::Mlp* mutable_phi_clf() { return &phi_clf_; }
  const nn::Mlp& phi_r() const { return phi_r_; }
  const nn::Mlp& phi_tau() const { return phi_tau_; }
  const nn::Mlp& phi_clf() const { return phi_clf_; }

  /// Attentive memory writes after a task's local adaptation
  /// (Eq. 14, 15, 16). No-op when memories are disabled.
  void UpdateMemories(const TaskModel& task_model, double eta, double beta,
                      double gamma);

  const nn::Matrix& memory_vr() const { return memory_vr_; }
  const nn::Matrix& memory_r() const { return memory_r_; }
  const std::vector<nn::Matrix>& memory_cp() const { return memory_cp_; }

  /// Serialization (model persistence): options, global parameters φ, and
  /// the memories.
  void Save(BinaryWriter* writer) const;
  /// Reconstructs a meta-learner from a stream written by Save.
  static Status LoadFrom(BinaryReader* reader,
                         std::unique_ptr<MetaLearner>* out);

 private:
  /// Internal: builds an empty shell for LoadFrom.
  MetaLearner() = default;

  MetaLearnerOptions options_;
  nn::Mlp phi_r_;
  nn::Mlp phi_tau_;
  nn::Mlp phi_clf_;
  nn::Matrix memory_vr_;              // m x k_u  (M_vR).
  nn::Matrix memory_r_;               // m x |θ_R| (M_R).
  std::vector<nn::Matrix> memory_cp_;  // m matrices of N_e x 2N_e (M_CP).
};

}  // namespace lte::core

#endif  // LTE_CORE_META_LEARNER_H_
