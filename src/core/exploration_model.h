#ifndef LTE_CORE_EXPLORATION_MODEL_H_
#define LTE_CORE_EXPLORATION_MODEL_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/meta_learner.h"
#include "core/meta_task.h"
#include "core/meta_trainer.h"
#include "core/optimizer_fpfn.h"
#include "data/subspace.h"
#include "data/table.h"
#include "policy/suggest_policy.h"
#include "preprocess/tabular_encoder.h"

namespace lte::core {

/// End-to-end configuration of the LTE framework.
struct ExplorerOptions {
  preprocess::EncoderOptions encoder;
  MetaTaskGenOptions task_gen;
  MetaLearnerOptions learner;  // tuple_feature_dim is filled per subspace.
  MetaTrainerOptions trainer;
  FpFnOptions fpfn;
  /// |T^M|: meta-tasks generated per meta-subspace (paper default 15000;
  /// the library defaults smaller — see DESIGN.md).
  int64_t num_meta_tasks = 200;
  /// Pool lanes for every fan-out, offline and online: per-subspace task
  /// generation + encoding + meta-training in `ExplorationModel::Pretrain`,
  /// per-subspace fast adaptation in `ExplorationSession::StartExploration`,
  /// and the chunked table scans of `PredictRows`/`RetrieveMatches` all
  /// share this one knob on the process-wide ThreadPool (sessions may
  /// override it per session). The library-wide convention applies: 0 = auto
  /// (one lane per hardware thread), 1 = the exact sequential path, N caps
  /// the lanes (matching `MetaTrainerOptions`/`KMeansOptions`). Parallel
  /// training reads key-split `Rng::Fork(subspace_index)` streams and scans
  /// collect into per-chunk slots concatenated in row order, so every result
  /// is bit-identical at any thread count (see rng.h for the split scheme).
  int64_t num_threads = 0;
  /// Online fast-adaptation schedule. A larger learning rate than the
  /// offline ρ is preferred online (paper Fig. 8(d) discussion).
  int64_t online_steps = 30;
  int64_t online_batch_size = 16;
  double online_lr = 0.1;
  /// Acquisition strategy new sessions install per subspace at
  /// StartExploration (DESIGN.md §2f). A host knob like num_threads: not
  /// part of the serialized model or its fingerprint, and overridable per
  /// session/subspace via `ExplorationSession::ConfigureSuggestPolicy`.
  policy::PolicyOptions suggest_policy;
};

/// The user-independent half of the LTE framework (paper Figure 2, offline
/// phase): the fitted tabular encoder, the per-subspace clustering contexts
/// and initial tuples, and the meta-trained learners.
///
/// Built once by `Pretrain` (or restored by `Load`) and then **immutable**:
/// every method below the build section is const and touches no hidden
/// mutable state, so one model can be shared *by reference* across any
/// number of threads — each holding its own `ExplorationSession` — with no
/// synchronization. The build methods themselves are not thread-safe and
/// must complete (on one thread) before the model is shared.
///
/// `Explorer` wraps one model plus one default session for the single-user
/// case; multi-user serving holds the model directly:
///
///   ExplorationModel model(options);
///   model.Pretrain(table, subspaces, /*train_meta=*/true, &rng);
///   // ...one ExplorationSession per concurrent user, all reading `model`.
class ExplorationModel {
 public:
  explicit ExplorationModel(ExplorerOptions options) : options_(options) {}

  ExplorationModel(const ExplorationModel&) = delete;
  ExplorationModel& operator=(const ExplorationModel&) = delete;

  /// Offline phase: fits the tabular encoder, runs the clustering step per
  /// subspace, selects the initial tuples, and — when `train_meta` is set —
  /// generates meta-tasks and meta-trains one meta-learner per subspace.
  /// `train_meta=false` prepares the Basic variant (no pre-training cost).
  /// Build method: must not race with any other use of this model.
  Status Pretrain(const data::Table& table,
                  const std::vector<data::Subspace>& subspaces,
                  bool train_meta, Rng* rng);

  /// Model persistence: writes the full pre-trained state (options, tabular
  /// encoder, per-subspace clustering contexts, initial tuples, and trained
  /// meta-learners) to `path`. Offline training and online serving can then
  /// live in separate processes. Requires Pretrain to have run. The format
  /// is shared with the legacy `Explorer::Save`/`LoadModel` surface — files
  /// round-trip freely between the two.
  Status Save(const std::string& path) const;

  /// Stream counterpart of Save (same format, no file handling).
  Status SaveToStream(std::ostream* out) const;

  /// Restores a pre-trained model saved by `Save` (or by the `Explorer`
  /// facade), replacing this instance's state. Sessions can start exploring
  /// immediately; no re-clustering or re-training happens. The threading
  /// knob (`num_threads`) is a property of the serving host, not of the
  /// model, so the constructed value survives the load. Build method: must
  /// not race with any other use of this model.
  Status Load(const std::string& path);

  /// Stream counterpart of Load (same format, no file handling).
  Status LoadFromStream(std::istream* in);

  /// True once Pretrain or Load has succeeded.
  bool pretrained() const { return pretrained_; }
  bool meta_trained() const { return meta_trained_; }

  /// Content fingerprint of the pre-trained state: the FNV-1a 64-bit hash of
  /// the model's serialized bytes, computed once at the end of Pretrain/Load
  /// (the model is immutable afterwards, so the value never changes while
  /// sessions are attached). Saved sessions are stamped with it so a stale
  /// session cannot silently attach to a refreshed model: two models
  /// fingerprint equal iff their serialized artifacts are byte-identical.
  /// Host-independent — threading knobs are not serialized. 0 before
  /// Pretrain/Load.
  uint64_t fingerprint() const { return fingerprint_; }

  int64_t num_subspaces() const {
    return static_cast<int64_t>(subspaces_.size());
  }

  /// The `s`-th meta-subspace, or nullptr when `s` is out of
  /// [0, num_subspaces()).
  const data::Subspace* subspace(int64_t s) const;

  /// The tuples of subspace `s` the user labels during initial exploration:
  /// the k_s cluster centers of C^s followed by Δ random tuples, in raw
  /// subspace coordinates. Fixed after Pretrain. Returns nullptr before
  /// Pretrain or when `s` is out of range.
  const std::vector<std::vector<double>>* InitialTuples(int64_t s) const;

  /// Per-subspace generator (exposes the clustering context), or nullptr
  /// before Pretrain or when `s` is out of range.
  const MetaTaskGenerator* generator(int64_t s) const;

  /// Meta-trained learner of subspace `s`, or nullptr before Pretrain, when
  /// `s` is out of range, or when the model was built with
  /// `train_meta=false`.
  const MetaLearner* meta_learner(int64_t s) const;

  const preprocess::TabularEncoder& encoder() const { return encoder_; }
  const ExplorerOptions& options() const { return options_; }

  /// Closure encoding raw subspace-`s` points with the fitted encoder.
  /// Requires `s` in range.
  TupleEncoder MakeEncoder(int64_t s) const;

  /// Pre-training statistics (for the Figure 8(b) cost analysis). Summed
  /// over subspaces, i.e. total work; with num_threads > 1 the subspaces
  /// overlap in time, so wall clock is lower than these totals.
  double task_generation_seconds() const { return task_generation_seconds_; }
  double meta_training_seconds() const { return meta_training_seconds_; }

 private:
  struct SubspaceModel {
    MetaTaskGenerator generator{MetaTaskGenOptions{}};
    std::vector<std::vector<double>> initial_tuples;
    std::unique_ptr<MetaLearner> meta_learner;
  };

  /// Serializes to a string and hashes it; called once at the end of
  /// Pretrain/Load so `fingerprint()` is a pure read afterwards.
  void RecomputeFingerprint();

  ExplorerOptions options_;
  preprocess::TabularEncoder encoder_;
  std::vector<data::Subspace> subspaces_;
  std::vector<SubspaceModel> subspace_models_;
  bool pretrained_ = false;
  bool meta_trained_ = false;
  uint64_t fingerprint_ = 0;
  double task_generation_seconds_ = 0.0;
  double meta_training_seconds_ = 0.0;
};

}  // namespace lte::core

#endif  // LTE_CORE_EXPLORATION_MODEL_H_
