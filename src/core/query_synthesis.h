#ifndef LTE_CORE_QUERY_SYNTHESIS_H_
#define LTE_CORE_QUERY_SYNTHESIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/explorer.h"
#include "preprocess/normalizer.h"
#include "tree/decision_tree.h"

namespace lte::core {

/// Options for distilling an adapted exploration into a relational query.
struct QuerySynthesisOptions {
  /// CART used to approximate each subspace's predicted region with
  /// axis-aligned boxes.
  tree::DecisionTreeOptions tree;
  /// Keep at most this many boxes per subspace (highest-support first).
  int64_t max_boxes_per_subspace = 8;
};

/// One axis-aligned box over a subspace's attributes: the building block of
/// the synthesized selection predicate.
struct BoxPredicate {
  /// Bounds per subspace attribute, clipped to the observed data range.
  std::vector<double> lower;
  std::vector<double> upper;
};

/// A disjunction of boxes for one subspace.
struct SubspaceClause {
  /// Attribute indices into the full-width row.
  std::vector<int64_t> attributes;
  std::vector<BoxPredicate> boxes;
  /// True when the subspace predicted everything positive (clause is TRUE).
  bool always_true = false;
};

/// The synthesized query: a conjunction of per-subspace clauses, mirroring
/// the UIR structure R^u = ∧_i R_i with each R_i a union of boxes.
struct SynthesizedQuery {
  std::vector<SubspaceClause> clauses;

  /// Evaluates the predicate on a full-width row (same coordinate space the
  /// explorer predicts in, i.e. normalized).
  bool Matches(const std::vector<double>& row) const;

  /// Renders `SELECT * FROM <table> WHERE ...`. `attribute_names` maps
  /// attribute indices to column names. When `denormalizer` is non-null the
  /// bounds are mapped back to raw attribute values (the explorer operates
  /// on normalized data, but the user's SQL should not).
  std::string ToSql(const std::string& table_name,
                    const std::vector<std::string>& attribute_names,
                    const preprocess::MinMaxNormalizer* denormalizer =
                        nullptr) const;
};

/// Distills the current adapted exploration of `session` into a
/// `SynthesizedQuery` (paper Section III-B, "Final retrieval": infer query
/// regions from the trained classifiers and transform them to query
/// filters). Per subspace it labels the clustering sample points with the
/// adapted classifier, fits a CART to those labels, and reads the positive
/// leaves off as boxes. Fails unless StartExploration has run.
Status SynthesizeQuery(const ExplorationSession& session,
                       const QuerySynthesisOptions& options,
                       SynthesizedQuery* query);

/// Facade convenience: synthesizes from `explorer`'s default session.
Status SynthesizeQuery(const Explorer& explorer,
                       const QuerySynthesisOptions& options,
                       SynthesizedQuery* query);

}  // namespace lte::core

#endif  // LTE_CORE_QUERY_SYNTHESIS_H_
